// Backfill demonstrates §5.6: the background recompression pass over a
// pre-existing photo library, run by the real engine against a live
// in-process fleet. Three blockservers come up on loopback; the engine
// walks a synthetic manifest, fans recompression across the fleet under
// per-node congestion windows, verifies every round trip before
// acknowledging it, and checkpoints progress through the durable disk
// store — kill the process mid-run and the next run resumes from the
// checkpoint. The run closes with the §5.6.1 cost-effectiveness
// arithmetic scaled by the measured throughput.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"lepton/internal/backfill"
	"lepton/internal/cluster"
	"lepton/internal/diskstore"
	"lepton/internal/server"
	"lepton/internal/store"
)

func main() {
	// A live fleet: three blockservers on loopback, one router over them.
	var addrs []string
	for i := 0; i < 3; i++ {
		b := &server.Blockserver{Store: store.New(), MaxConcurrent: 4}
		bound, err := server.ListenAndServe("tcp:127.0.0.1:0", b)
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		addrs = append(addrs, bound)
	}
	fleet, err := server.NewFleet(addrs, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	fmt.Printf("fleet up: %d nodes\n", len(addrs))

	// "Existing storage": a deterministic manifest of synthetic photos —
	// the same recipe corpusgen -manifest emits.
	const nFiles = 48
	m := backfill.Synthetic(9, nFiles)

	// Checkpoints go through the durable disk store; rerunning this
	// example against a kept directory would resume instead of restart.
	dir, err := os.MkdirTemp("", "backfill-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cs, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()

	eng, err := backfill.New(backfill.Config{
		Verify:          true, // round-trip + content-hash, as production did
		WindowCap:       8,
		CheckpointEvery: 100 * time.Millisecond,
		Logf:            log.Printf,
	}, fleet, &backfill.SyntheticSource{CacheCap: nFiles}, cs, m)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := eng.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	imagesPerSec := float64(res.Files) / elapsed.Seconds()
	savings := 1 - float64(res.TotalOut)/float64(res.TotalIn)
	fmt.Printf("\nbackfilled %d files in %v: %.1f images/s, %.2f%% savings, %d checkpoints\n",
		res.TotalFiles, elapsed.Round(time.Millisecond), imagesPerSec, 100*savings, res.Checkpoints)

	// §5.6.1 cost model, calibrated with this machine's measured rate.
	cfg := cluster.DefaultBackfillConfig()
	cfg.ImagesPerSecPerMachine = imagesPerSec
	cfg.SavingsRatio = savings
	cfg.AvgImageMB = float64(res.TotalIn) / float64(res.TotalFiles) / 1e6
	c := cluster.Cost(cfg)
	fmt.Printf("cost model (this machine as the backfill node):\n")
	fmt.Printf("  conversions per kWh:    %.0f\n", c.ConversionsPerKWh)
	fmt.Printf("  GiB saved per kWh:      %.1f\n", c.GiBSavedPerKWh)
	fmt.Printf("  breakeven electricity:  $%.2f/kWh (vs $120 depowered 5TB drive)\n", c.BreakevenUSDPerKWh)
	fmt.Printf("  images/year/machine:    %.3g\n", c.ImagesPerYearPerMachine)
	fmt.Printf("  TiB saved/year/machine: %.1f\n", c.TiBSavedPerYearPerMachine)
	fmt.Printf("  S3 IA value/year:       $%.0f\n", c.S3AnnualUSDPerMachine)
}
