// Backfill demonstrates §5.6: a DropSpot-style backfill pass over a
// pre-existing photo library. A metaserver shards the user table and hands
// workers batches of chunks; workers recompress each file with the real
// codec (double-checking the round trip, as production did three times),
// and the run reports the §5.6.1 cost-effectiveness arithmetic scaled by
// the measured throughput.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lepton"
	"lepton/internal/cluster"
	"lepton/internal/imagegen"
)

func main() {
	// "Existing storage": a library of synthetic photos.
	const nFiles = 48
	rng := rand.New(rand.NewSource(9))
	library := make([][]byte, nFiles)
	for i := range library {
		w := 256 + rng.Intn(512)
		h := 192 + rng.Intn(384)
		data, err := imagegen.Generate(rng.Int63(), w, h)
		if err != nil {
			log.Fatal(err)
		}
		library[i] = data
	}

	// The metaserver scans users and hands out work batches (§5.6).
	ms := cluster.NewMetaserver(1, 4, 64, 12)
	batches := 0
	for ms.Remaining() > 0 && batches < 16 {
		b := ms.NextBatch()
		batches++
		fmt.Printf("metaserver batch %d: shard %d, %d users, %d chunks\n",
			batches, b.Shard, b.Users, b.Chunks)
	}

	// Backfill workers recompress the library, verifying every file. The
	// whole run shares one context: cancelling it (an operator abort, a
	// batch deadline) stops every worker at its current file's next
	// checkpoint instead of letting the fleet finish work nobody wants —
	// the §5.6 backfill ran for a year, so operability mattered as much as
	// throughput.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var bytesIn, bytesOut, files atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan []byte)
	// One pooled codec shared by every worker: the long-lived backfill
	// process reuses model tables instead of allocating them per file.
	codec := lepton.NewCodec()
	for w := 0; w < runtime.NumCPU(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for data := range work {
				res, err := codec.CompressCtx(ctx, data, &lepton.Options{Verify: true})
				if err != nil {
					if ctx.Err() != nil {
						return // run aborted; drain quietly
					}
					log.Fatalf("backfill: %v", err)
				}
				bytesIn.Add(int64(len(data)))
				bytesOut.Add(int64(len(res.Compressed)))
				files.Add(1)
			}
		}()
	}
	for _, data := range library {
		work <- data
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	imagesPerSec := float64(files.Load()) / elapsed.Seconds()
	savings := 1 - float64(bytesOut.Load())/float64(bytesIn.Load())
	fmt.Printf("\nbackfilled %d files in %v: %.1f images/s, %.2f%% savings\n",
		files.Load(), elapsed.Round(time.Millisecond), imagesPerSec, 100*savings)

	// §5.6.1 cost model, calibrated with this machine's measured rate.
	cfg := cluster.DefaultBackfillConfig()
	cfg.ImagesPerSecPerMachine = imagesPerSec
	cfg.SavingsRatio = savings
	cfg.AvgImageMB = float64(bytesIn.Load()) / float64(files.Load()) / 1e6
	c := cluster.Cost(cfg)
	fmt.Printf("cost model (this machine as the backfill node):\n")
	fmt.Printf("  conversions per kWh:    %.0f\n", c.ConversionsPerKWh)
	fmt.Printf("  GiB saved per kWh:      %.1f\n", c.GiBSavedPerKWh)
	fmt.Printf("  breakeven electricity:  $%.2f/kWh (vs $120 depowered 5TB drive)\n", c.BreakevenUSDPerKWh)
	fmt.Printf("  images/year/machine:    %.3g\n", c.ImagesPerYearPerMachine)
	fmt.Printf("  TiB saved/year/machine: %.1f\n", c.TiBSavedPerYearPerMachine)
	fmt.Printf("  S3 IA value/year:       $%.0f\n", c.S3AnnualUSDPerMachine)
}
