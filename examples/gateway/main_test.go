package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lepton"
	"lepton/internal/imagegen"
)

// startGateway brings up a two-node loopback fleet and an HTTP gateway over
// it, wired for cleanup.
func startGateway(t *testing.T) *httptest.Server {
	t.Helper()
	fleet, stop, err := startFleet(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	fs, err := lepton.NewFleetStore(fleet, &lepton.FleetStoreOptions{ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(newGateway(fs))
	t.Cleanup(gw.Close)
	return gw
}

func doReq(t *testing.T, method, url, rangeHdr string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if rangeHdr != "" {
		req.Header.Set("Range", rangeHdr)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, got
}

// TestGatewayRangeServing is the end-to-end smoke: upload compresses into
// the fleet, a plain GET round-trips the exact bytes, and every satisfiable
// Range: request returns 206 with precisely the requested slice.
func TestGatewayRangeServing(t *testing.T) {
	gw := startGateway(t)
	jpg, err := imagegen.Generate(21, 1024, 768)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(jpg))
	url := gw.URL + "/files/a.jpg"

	resp, _ := doReq(t, http.MethodPut, url, "", jpg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}

	resp, got := doReq(t, http.MethodGet, url, "", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, jpg) {
		t.Fatalf("full GET: status %d, %d bytes", resp.StatusCode, len(got))
	}
	if resp.Header.Get("Accept-Ranges") != "bytes" {
		t.Fatal("missing Accept-Ranges header")
	}

	for _, tc := range []struct {
		hdr  string
		a, z int64 // expected slice of jpg
	}{
		{"bytes=0-0", 0, 1},
		{"bytes=0-1023", 0, 1024},
		{fmt.Sprintf("bytes=%d-%d", size/2, size/2+999), size / 2, size/2 + 1000},
		{fmt.Sprintf("bytes=%d-", size-33), size - 33, size},
		{fmt.Sprintf("bytes=%d-%d", size-5, size+100), size - 5, size}, // end clamped
		{"bytes=-4096", size - 4096, size},
		{fmt.Sprintf("bytes=-%d", size+999), 0, size}, // suffix longer than the file
	} {
		resp, got := doReq(t, http.MethodGet, url, tc.hdr, nil)
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("Range %q: status %d", tc.hdr, resp.StatusCode)
		}
		if !bytes.Equal(got, jpg[tc.a:tc.z]) {
			t.Fatalf("Range %q: %d bytes differ from jpg[%d:%d]", tc.hdr, len(got), tc.a, tc.z)
		}
		wantCR := fmt.Sprintf("bytes %d-%d/%d", tc.a, tc.z-1, size)
		if cr := resp.Header.Get("Content-Range"); cr != wantCR {
			t.Fatalf("Range %q: Content-Range %q, want %q", tc.hdr, cr, wantCR)
		}
	}

	// Every ranged read above must have gone through the range decode path.
	if lepton.RangeStats()["range_requests"] == 0 {
		t.Fatal("range counters never advanced")
	}
}

// TestGatewayRangeEdgeCases covers the fallback and rejection semantics:
// multipart and malformed headers serve the full body with 200, a range
// starting past the end is 416, and unknown names are 404.
func TestGatewayRangeEdgeCases(t *testing.T) {
	gw := startGateway(t)
	body := []byte(strings.Repeat("0123456789abcdef", 512))
	url := gw.URL + "/files/blob.bin"
	if resp, _ := doReq(t, http.MethodPut, url, "", body); resp.StatusCode != http.StatusCreated {
		t.Fatal("PUT failed")
	}

	for _, hdr := range []string{"bytes=0-1,8-9", "bytes=abc-def", "items=0-1", "bytes=9-5"} {
		resp, got := doReq(t, http.MethodGet, url, hdr, nil)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(got, body) {
			t.Fatalf("header %q: want full 200 fallback, got %d with %d bytes", hdr, resp.StatusCode, len(got))
		}
	}

	resp, _ := doReq(t, http.MethodGet, url, fmt.Sprintf("bytes=%d-", len(body)), nil)
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("past-end range: status %d, want 416", resp.StatusCode)
	}
	if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes */%d", len(body)) {
		t.Fatalf("416 Content-Range = %q", cr)
	}

	if resp, _ := doReq(t, http.MethodGet, gw.URL+"/files/nope", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown file: status %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodPost, url, "", []byte("x")); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d", resp.StatusCode)
	}
}

// TestParseRange pins the header grammar the gateway accepts.
func TestParseRange(t *testing.T) {
	for _, tc := range []struct {
		hdr    string
		size   int64
		off, n int64
		ok     bool
	}{
		{"bytes=0-99", 1000, 0, 100, true},
		{"bytes=500-", 1000, 500, 500, true},
		{"bytes=-200", 1000, 800, 200, true},
		{"bytes=-2000", 1000, 0, 1000, true},
		{"bytes= 5-9", 1000, 5, 5, true},
		{"", 1000, 0, 0, false},
		{"bytes=5-3", 1000, 0, 0, false},
		{"bytes=-0", 1000, 0, 0, false},
		{"bytes=0-1,5-9", 1000, 0, 0, false},
		{"chars=0-9", 1000, 0, 0, false},
		{"bytes=x-9", 1000, 0, 0, false},
	} {
		off, n, ok := parseRange(tc.hdr, tc.size)
		if ok != tc.ok || off != tc.off || n != tc.n {
			t.Errorf("parseRange(%q, %d) = (%d, %d, %v), want (%d, %d, %v)",
				tc.hdr, tc.size, off, n, ok, tc.off, tc.n, tc.ok)
		}
	}
}
