// Gateway demonstrates range serving end to end: an HTTP front end over a
// live fleet where files are Lepton-compressed on upload and HTTP Range
// requests are served by partial decode — a 1 KB read decodes roughly one
// thread segment of one chunk, not the whole file. Three blockservers come
// up on loopback, a FleetStore places chunks across them, and the gateway
// maps PUT to compress-on-ingest and GET with a Range: header onto
// FleetStore.GetFileRange. The demo uploads a JPEG, issues a spread of
// ranged reads, verifies every slice against the original, and prints the
// fast-path/fallback split from the range counters.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"

	"lepton"
	"lepton/internal/imagegen"
	"lepton/internal/server"
	"lepton/internal/store"
)

// maxUpload bounds one PUT body.
const maxUpload = 256 << 20

// gateway is the HTTP front end: a name→FileRef directory over a
// FleetStore. Uploads compress on ingest; ranged downloads decode only
// what the range touches.
type gateway struct {
	st *lepton.FleetStore

	mu    sync.RWMutex
	files map[string]lepton.FileRef
}

func newGateway(st *lepton.FleetStore) *gateway {
	return &gateway{st: st, files: make(map[string]lepton.FileRef)}
}

func (g *gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/files/")
	if name == "" || name == r.URL.Path {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodPut:
		g.put(w, r, name)
	case http.MethodGet, http.MethodHead:
		g.get(w, r, name)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// put compresses the body on ingest (chunked, round-trip verified; inputs
// Lepton cannot hold fall back to raw chunks) and places every chunk on
// its replicas.
func (g *gateway) put(w http.ResponseWriter, r *http.Request, name string) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxUpload+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) > maxUpload {
		http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
		return
	}
	ref, err := g.st.PutFile(r.Context(), data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	g.mu.Lock()
	g.files[name] = ref
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(map[string]any{"name": name, "size": ref.Size, "chunks": len(ref.Chunks)})
}

// get serves the file, honoring a single-range Range: header with a 206
// partial response backed by GetFileRange. Multipart or malformed range
// headers fall back to the full 200 response (allowed by RFC 9110); a
// range starting at or past the end is 416.
func (g *gateway) get(w http.ResponseWriter, r *http.Request, name string) {
	g.mu.RLock()
	ref, ok := g.files[name]
	g.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Accept-Ranges", "bytes")
	if off, n, ok := parseRange(r.Header.Get("Range"), ref.Size); ok {
		if off >= ref.Size {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", ref.Size))
			http.Error(w, "range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
			return
		}
		body, err := g.st.GetFileRange(r.Context(), ref, off, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+int64(len(body))-1, ref.Size))
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(http.StatusPartialContent)
		if r.Method != http.MethodHead {
			_, _ = w.Write(body)
		}
		return
	}
	body, err := g.st.GetFile(r.Context(), ref)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method != http.MethodHead {
		_, _ = w.Write(body)
	}
}

// parseRange parses a single-range "bytes=" header into (off, n). It
// reports ok=false for an absent, malformed, or multipart header — the
// caller serves the full file then — and handles the suffix form
// ("bytes=-k": the last k bytes).
func parseRange(h string, size int64) (off, n int64, ok bool) {
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	first, last, found := strings.Cut(strings.TrimSpace(spec), "-")
	if !found {
		return 0, 0, false
	}
	if first == "" {
		// Suffix form: the final k bytes.
		k, err := strconv.ParseInt(last, 10, 64)
		if err != nil || k <= 0 {
			return 0, 0, false
		}
		if k > size {
			k = size
		}
		return size - k, k, true
	}
	off, err := strconv.ParseInt(first, 10, 64)
	if err != nil || off < 0 {
		return 0, 0, false
	}
	if last == "" {
		return off, size - off, true
	}
	end, err := strconv.ParseInt(last, 10, 64)
	if err != nil || end < off {
		return 0, 0, false
	}
	return off, end - off + 1, true
}

// startFleet brings up n in-process blockservers on loopback and returns a
// router over them.
func startFleet(n int) (*lepton.Fleet, func(), error) {
	var addrs []string
	var closers []func()
	for i := 0; i < n; i++ {
		b := &server.Blockserver{Store: store.New(), MaxConcurrent: 4}
		bound, err := server.ListenAndServe("tcp:127.0.0.1:0", b)
		if err != nil {
			return nil, nil, err
		}
		closers = append(closers, func() { _ = b.Close() })
		addrs = append(addrs, bound)
	}
	fleet, err := lepton.DialFleet(addrs, nil)
	if err != nil {
		return nil, nil, err
	}
	stop := func() {
		_ = fleet.Close()
		for _, c := range closers {
			c()
		}
	}
	return fleet, stop, nil
}

func main() {
	fleet, stop, err := startFleet(3)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	fs, err := lepton.NewFleetStore(fleet, &lepton.FleetStoreOptions{ChunkSize: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	gw := httptest.NewServer(newGateway(fs))
	defer gw.Close()
	fmt.Printf("gateway on %s over %d blockservers\n\n", gw.URL, len(fleet.Nodes()))

	// Upload: compressed on ingest, chunks placed across the fleet.
	jpg, err := imagegen.Generate(7, 1600, 1200)
	if err != nil {
		log.Fatal(err)
	}
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodPut, gw.URL+"/files/photo.jpg", strings.NewReader(string(jpg)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	meta, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("PUT %d-byte JPEG -> %d %s", len(jpg), resp.StatusCode, meta)

	// Ranged reads: each decodes only the chunk rows the range touches.
	for _, rg := range []string{"bytes=0-1023", "bytes=120000-120999", "bytes=-4096"} {
		req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, gw.URL+"/files/photo.jpg", nil)
		req.Header.Set("Range", rg)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		off, n, _ := parseRange(rg, int64(len(jpg)))
		want := jpg[min(off, int64(len(jpg))):min(off+n, int64(len(jpg)))]
		match := "MATCH"
		if string(body) != string(want) {
			match = "MISMATCH"
		}
		fmt.Printf("GET Range: %-22s -> %d, %5d bytes, %s vs original slice\n", rg, resp.StatusCode, len(body), match)
	}

	stats := lepton.RangeStats()
	fmt.Printf("\nrange decode counters: fast=%d fallback_no_index=%d fallback_unsupported=%d segments_decoded=%d\n",
		stats["range_fast"], stats["range_fallback_no_index"], stats["range_fallback_unsupported"], stats["range_segments_decoded"])
}

func min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
