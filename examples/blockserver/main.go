// Blockserver demonstrates the serving path of §5.5: a frontend
// blockserver on a Unix-domain socket (the production transport), a
// dedicated outsourcing worker on TCP, and outsourcing kicking in when the
// frontend is oversubscribed.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lepton/internal/imagegen"
	"lepton/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "lepton-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A dedicated Lepton worker on TCP — the machines "packed full of
	// work" in the paper's best strategy.
	worker := &server.Blockserver{}
	workerAddr, err := server.ListenAndServe("tcp:127.0.0.1:0", worker)
	if err != nil {
		log.Fatal(err)
	}
	defer worker.Close()

	// The frontend blockserver on a Unix socket, outsourcing to the worker
	// when more than one conversion is already in flight.
	front := &server.Blockserver{
		Outsource:          server.NewDedicatedPool([]string{workerAddr}, 1),
		OutsourceThreshold: 1,
	}
	sock := filepath.Join(dir, "lepton.sock")
	frontAddr, err := server.ListenAndServe("unix:"+sock, front)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	fmt.Printf("frontend on %s\nworker on %s\n", frontAddr, workerAddr)

	// Eight clients upload photos concurrently — a burst like a camera
	// roll syncing. Each client holds one persistent connection and issues
	// all of its requests on it; the server's request loop serves them
	// back to back with no reconnects.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := server.Dial(frontAddr, 5*time.Second)
			if err != nil {
				log.Fatalf("client %d dial: %v", i, err)
			}
			defer cl.Close()
			data, err := imagegen.Generate(int64(i), 512, 384)
			if err != nil {
				log.Fatal(err)
			}
			comp, err := cl.Do(server.OpCompress, data, 30*time.Second)
			if err != nil {
				log.Fatalf("client %d: %v", i, err)
			}
			back, err := cl.Do(server.OpDecompress, comp, 30*time.Second)
			if err != nil {
				log.Fatalf("client %d decompress: %v", i, err)
			}
			if !bytes.Equal(back, data) {
				log.Fatalf("client %d: round trip mismatch", i)
			}
			fmt.Printf("client %d: %6d -> %6d bytes (%.1f%% savings)\n",
				i, len(data), len(comp), 100*(1-float64(len(comp))/float64(len(data))))
		}(i)
	}
	wg.Wait()

	fmt.Printf("\nfrontend: %d compressed locally, %d outsourced, %d decompressed\n",
		front.Stats.Compresses.Load(), front.Stats.Outsourced.Load(),
		front.Stats.Decompresses.Load())
	fmt.Printf("worker:   %d compressed\n", worker.Stats.Compresses.Load())
}
