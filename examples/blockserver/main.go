// Blockserver demonstrates the serving path of §5.5: a frontend
// blockserver on a Unix-domain socket (the production transport), a
// dedicated outsourcing worker on TCP, and outsourcing kicking in when the
// frontend is oversubscribed. Every request runs under a context, and both
// servers finish with a graceful drain (Shutdown), the §5.7 rollout
// discipline.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lepton/internal/imagegen"
	"lepton/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "lepton-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A dedicated Lepton worker on TCP — the machines "packed full of
	// work" in the paper's best strategy.
	worker := &server.Blockserver{}
	workerAddr, err := server.ListenAndServe("tcp:127.0.0.1:0", worker)
	if err != nil {
		log.Fatal(err)
	}

	// The frontend blockserver on a Unix socket, outsourcing to the worker
	// when more than one conversion is already in flight.
	front := &server.Blockserver{
		Outsource:          server.NewDedicatedPool([]string{workerAddr}, 1),
		OutsourceThreshold: 1,
	}
	sock := filepath.Join(dir, "lepton.sock")
	frontAddr, err := server.ListenAndServe("unix:"+sock, front)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frontend on %s\nworker on %s\n", frontAddr, workerAddr)

	// Eight clients upload photos concurrently — a burst like a camera
	// roll syncing. Each client holds one persistent connection, issues
	// all of its requests on it under a per-upload deadline, and the
	// server's request loop serves them back to back with no reconnects.
	// If a client walked away (cancelled its context), the server would
	// abort that conversion at its next checkpoint instead of finishing
	// work nobody wants.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			cl, err := server.DialContext(ctx, frontAddr)
			if err != nil {
				log.Fatalf("client %d dial: %v", i, err)
			}
			defer cl.Close()
			data, err := imagegen.Generate(int64(i), 512, 384)
			if err != nil {
				log.Fatal(err)
			}
			comp, err := cl.Compress(ctx, data)
			if err != nil {
				log.Fatalf("client %d: %v", i, err)
			}
			back, err := cl.Decompress(ctx, comp)
			if err != nil {
				log.Fatalf("client %d decompress: %v", i, err)
			}
			if !bytes.Equal(back, data) {
				log.Fatalf("client %d: round trip mismatch", i)
			}
			fmt.Printf("client %d: %6d -> %6d bytes (%.1f%% savings)\n",
				i, len(data), len(comp), 100*(1-float64(len(comp))/float64(len(data))))
		}(i)
	}
	wg.Wait()

	fmt.Printf("\nfrontend: %d compressed locally, %d outsourced, %d decompressed\n",
		front.Stats.Compresses.Load(), front.Stats.Outsourced.Load(),
		front.Stats.Decompresses.Load())
	fmt.Printf("worker:   %d compressed\n", worker.Stats.Compresses.Load())

	// Graceful drain: stop accepting, let in-flight work finish, cancel
	// stragglers only if the deadline passes.
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := front.Shutdown(drainCtx); err != nil {
		log.Fatalf("frontend drain: %v", err)
	}
	if err := worker.Shutdown(drainCtx); err != nil {
		log.Fatalf("worker drain: %v", err)
	}
	fmt.Println("both servers drained cleanly")
}
