// Quickstart: compress a JPEG with Lepton, decompress it, and verify the
// round trip is bit-exact. Run with no arguments to use a generated sample
// image, or pass a path to a baseline JPEG.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"lepton"
	"lepton/internal/imagegen"
)

func main() {
	var data []byte
	var err error
	if len(os.Args) > 1 {
		data, err = os.ReadFile(os.Args[1])
	} else {
		// A synthetic 640x480 "photo" from the corpus generator.
		data, err = imagegen.Generate(42, 640, 480)
	}
	if err != nil {
		log.Fatal(err)
	}

	// A reusable codec: anything converting more than one file should hold
	// one so the model tables and planes are pooled across conversions.
	codec := lepton.NewCodec()

	// Compress. The zero options are the deployed production configuration:
	// thread count by file size, full prediction model.
	res, err := codec.Compress(data, nil)
	if err != nil {
		log.Fatalf("compress: %v (reason: %v)", err, lepton.ReasonOf(err))
	}
	fmt.Printf("compressed %d -> %d bytes: %.2f%% savings, %d thread segment(s)\n",
		len(data), len(res.Compressed),
		100*(1-float64(len(res.Compressed))/float64(len(data))), res.Threads)

	// Decompress and verify bit-exactness — the property the whole system
	// is built around.
	back, err := codec.Decompress(res.Compressed)
	if err != nil {
		log.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(back, data) {
		log.Fatal("round trip mismatch: this should be impossible")
	}
	fmt.Println("round trip verified: output is byte-identical to the input")

	// Streaming decompression writes output as segments complete, for low
	// time-to-first-byte on the serving path.
	var buf bytes.Buffer
	if err := codec.DecompressTo(&buf, res.Compressed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming decode produced %d bytes\n", buf.Len())
}
