// Chunkstore demonstrates the property the Dropbox deployment depends on:
// a JPEG split into fixed-size storage chunks, each chunk compressed and
// decompressible *independently* — even chunks that begin mid-scan, in the
// middle of a Huffman-coded symbol (paper §1, §3.4).
//
// It stores a file into the public lepton.Store — the content-addressed
// store with §5.7 round-trip admission control — backed by the durable
// disk log, then serves individual chunks out of order and proves the
// chunks survive a restart: the store is closed, reopened from the same
// data directory, and the file read back with the replayed segments as
// the only source of the bytes. Everything runs under a context, as a
// real service front end would.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"lepton"
	"lepton/internal/imagegen"
)

func main() {
	dataDir := flag.String("data-dir", "",
		"directory for the durable chunk store (default: a throwaway temp dir)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// A larger synthetic photo so we get several chunks at a 64 KiB chunk
	// size (production uses 4 MiB; the mechanics are identical).
	const chunkSize = 64 << 10
	data, err := imagegen.Generate(7, 1280, 960)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d bytes (%d chunks of %d KiB)\n",
		len(data), (len(data)+chunkSize-1)/chunkSize, chunkSize>>10)

	// Path 1: the streaming chunk API — chunks are emitted as produced, so
	// the input could just as well be a Reader over a file larger than
	// memory. Cancelling ctx stops the stream between chunks.
	codec := lepton.NewCodec()
	var chunks [][]byte
	err = codec.CompressChunksFromCtx(ctx, bytes.NewReader(data),
		&lepton.ChunkOptions{ChunkSize: chunkSize, Verify: true},
		func(c []byte) error {
			chunks = append(chunks, c)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	var stored int
	for _, c := range chunks {
		stored += len(c)
	}
	fmt.Printf("compressed to %d bytes (%.2f%% savings)\n",
		stored, 100*(1-float64(stored)/float64(len(data))))

	// Decompress chunks in random order, each fully independently: no
	// shared state, no other chunk's bytes.
	for _, k := range rand.New(rand.NewSource(1)).Perm(len(chunks)) {
		part, err := codec.DecompressChunkCtx(ctx, chunks[k])
		if err != nil {
			log.Fatalf("chunk %d: %v", k, err)
		}
		o0 := k * chunkSize
		o1 := min(o0+chunkSize, len(data))
		if !bytes.Equal(part, data[o0:o1]) {
			log.Fatalf("chunk %d mismatch", k)
		}
		fmt.Printf("  chunk %2d decoded independently: %6d bytes OK\n", k, len(part))
	}

	// Path 2: the public store with §5.7 safety mechanisms (admission
	// round trip, checksums, deflate fallback, safety net), persisted to
	// an append-only segment log on disk.
	dir := *dataDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "lepton-chunkstore")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	st, err := lepton.NewDiskStore(dir, &lepton.StoreOptions{
		ChunkSize: chunkSize,
		SafetyNet: lepton.NewMemSafetyNet(),
		Codec:     codec,
	})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := st.PutFile(ctx, data)
	if err != nil {
		log.Fatal(err)
	}
	back, err := st.GetFile(ctx, ref)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		log.Fatal("store round trip mismatch")
	}
	// Disaster recovery: any chunk's raw bytes can come back from the
	// safety net, bypassing the codec entirely.
	if _, err := st.RecoverFromSafetyNet(ref.Chunks[0]); err != nil {
		log.Fatal(err)
	}
	c := st.Counters()
	fmt.Printf("store: %d Lepton chunks, %d deflate chunks, %d bytes in, %d stored\n",
		c.LeptonChunks, c.DeflateChunks, c.BytesIn, c.BytesStored)

	// Restart cycle: close the store (every acknowledged put is already
	// fsynced by the group commit, so this is no kinder than a crash) and
	// reopen the same directory. Replay rebuilds the index from the
	// segment log and the file comes back byte-identical with the disk as
	// the only source.
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	st2, err := lepton.NewDiskStore(dir, &lepton.StoreOptions{
		ChunkSize: chunkSize,
		Codec:     codec,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	again, err := st2.GetFile(ctx, ref)
	if err != nil {
		log.Fatalf("get after restart: %v", err)
	}
	fmt.Printf("restart from %s: %d chunks replayed, file byte-identical=%v\n",
		dir, st2.Len(), bytes.Equal(again, data))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
