// Clientsync demonstrates the paper's §7 future work: running the Lepton
// codec in the client instead of (only) the blockserver. Both deployments
// store the same compressed chunks; the difference is what crosses the
// network. Server-side coding moves raw JPEG bytes; client-side coding
// moves Lepton bytes and saves ~a quarter of upload and download bandwidth.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"lepton"
	"lepton/internal/imagegen"
	"lepton/internal/server"
	"lepton/internal/store"
)

func main() {
	st := store.New()
	st.ChunkSize = 64 << 10
	bs := &server.Blockserver{Store: st}
	addr, err := server.ListenAndServe("tcp:127.0.0.1:0", bs)
	if err != nil {
		log.Fatal(err)
	}
	defer bs.Close()

	photo, err := imagegen.Generate(11, 1024, 768)
	if err != nil {
		log.Fatal(err)
	}
	const chunkSize = 64 << 10
	fmt.Printf("photo: %d bytes\n\n", len(photo))

	// --- Deployment A: server-side codec (the production shape). --------
	var wireA int64
	var hashesA [][]byte
	for off := 0; off < len(photo); off += chunkSize {
		end := min(off+chunkSize, len(photo))
		raw := photo[off:end]
		wireA += int64(len(raw))
		h, err := server.Do(addr, server.OpPutChunkRaw, raw, 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		hashesA = append(hashesA, h)
	}
	var gotA []byte
	for _, h := range hashesA {
		raw, err := server.Do(addr, server.OpGetChunkRaw, h, 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		wireA += int64(len(raw))
		gotA = append(gotA, raw...)
	}
	if !bytes.Equal(gotA, photo) {
		log.Fatal("server-side round trip mismatch")
	}
	fmt.Printf("server-side codec: %d bytes on the wire (upload+download)\n", wireA)

	// --- Deployment B: client-side codec (§7). ---------------------------
	chunks, err := lepton.CompressChunks(photo, &lepton.ChunkOptions{ChunkSize: chunkSize, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	var wireB int64
	var hashesB [][]byte
	for _, cb := range chunks {
		wireB += int64(len(cb))
		h, err := server.Do(addr, server.OpPutChunkCompressed, cb, 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		hashesB = append(hashesB, h)
	}
	var gotB []byte
	for _, h := range hashesB {
		cb, err := server.Do(addr, server.OpGetChunkCompressed, h, 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		wireB += int64(len(cb))
		part, err := lepton.DecompressChunk(cb) // client decodes locally
		if err != nil {
			log.Fatal(err)
		}
		gotB = append(gotB, part...)
	}
	if !bytes.Equal(gotB, photo) {
		log.Fatal("client-side round trip mismatch")
	}
	fmt.Printf("client-side codec: %d bytes on the wire (upload+download)\n", wireB)
	fmt.Printf("\nnetwork bandwidth saved by moving the codec to the client: %.1f%%\n",
		100*(1-float64(wireB)/float64(wireA)))
	fmt.Println("(the paper projects ~23%, its average compression ratio)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
