// Fleet demonstrates the multi-node deployment: four blockservers on
// loopback TCP, a lepton.Fleet routing conversions across them by
// power-of-two load probes with retries and hedging, and a
// lepton.FleetStore placing replicated, content-addressed chunks over the
// same nodes. Midway, one node is hard-killed: the fleet retries its
// in-flight work elsewhere, evicts the dead node, and every stored file
// stays retrievable byte-identically from the surviving replicas — then
// the node restarts, is re-admitted by the health loop, and read-repair
// heals the chunks it missed.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"lepton"
	"lepton/internal/imagegen"
	"lepton/internal/server"
	"lepton/internal/store"
)

func main() {
	ctx := context.Background()

	// Four blockservers, each with its own chunk store — four machines.
	const n = 4
	nodes := make([]*server.Blockserver, n)
	addrs := make([]string, n)
	for i := range nodes {
		nodes[i] = &server.Blockserver{Store: store.New()}
		addr, err := server.ListenAndServe("tcp:127.0.0.1:0", nodes[i])
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = addr
	}
	fmt.Printf("fleet: %v\n", addrs)

	fleet, err := lepton.DialFleet(addrs, &lepton.FleetOptions{
		HedgeAfter:     200 * time.Millisecond,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	// Concurrent conversion roundtrips spread across the nodes.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := imagegen.Generate(int64(i+1), 200, 150)
			if err != nil {
				log.Fatal(err)
			}
			comp, err := fleet.Compress(ctx, data)
			if err != nil {
				log.Fatalf("compress %d: %v", i, err)
			}
			back, err := fleet.Decompress(ctx, comp)
			if err != nil {
				log.Fatalf("decompress %d: %v", i, err)
			}
			if !bytes.Equal(back, data) {
				log.Fatalf("roundtrip %d not byte-identical", i)
			}
		}(i)
	}
	wg.Wait()
	for i, b := range nodes {
		s := b.StatsSnapshot()
		fmt.Printf("node %d served %d conversions\n", i, s["compresses"]+s["decompresses"])
	}

	// A replicated file across the fleet: every chunk on 2 of 4 nodes.
	fs, err := lepton.NewFleetStore(fleet, &lepton.FleetStoreOptions{Replication: 2, ChunkSize: 16 << 10})
	if err != nil {
		log.Fatal(err)
	}
	file, err := imagegen.Generate(99, 512, 384)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := fs.PutFile(ctx, file)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d bytes as %d chunks x%d replicas\n", len(file), len(ref.Chunks), 2)

	// Kill node 0 — listener and all: the fleet must evict it and keep
	// serving, and the file must survive on the remaining replicas.
	_ = nodes[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for !fleet.NodeDown(addrs[0]) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("killed %s; fleet: %v up / %v down\n", addrs[0],
		fleet.StatsSnapshot()["nodes_up"], fleet.StatsSnapshot()["nodes_down"])

	back, err := fs.GetFile(ctx, ref)
	if err != nil {
		log.Fatalf("get after node kill: %v", err)
	}
	fmt.Printf("file retrieved after node kill: byte-identical=%v\n", bytes.Equal(back, file))

	// A second file stored while degraded, then the node returns (same
	// port) and read-repair heals the chunks it missed.
	file2, err := imagegen.Generate(100, 384, 288)
	if err != nil {
		log.Fatal(err)
	}
	ref2, err := fs.PutFile(ctx, file2)
	if err != nil {
		log.Fatal(err)
	}
	nodes[0] = &server.Blockserver{Store: store.New()}
	if _, err := server.ListenAndServe(addrs[0], nodes[0]); err != nil {
		log.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for fleet.NodeDown(addrs[0]) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("node restarted and readmitted (readmissions=%d)\n",
		fleet.StatsSnapshot()["readmissions"])

	back2, err := fs.GetFile(ctx, ref2)
	if err != nil {
		log.Fatal(err)
	}
	// Read-repair is lazy: a rejoined replica is healed when a read finds
	// it missing, which happens for chunks where it is the first replica
	// tried (placement depends on the nodes' addresses, so the count
	// varies run to run).
	firstReplica := 0
	for _, h := range ref2.Chunks {
		if fs.Placement(h)[0] == addrs[0] {
			firstReplica++
		}
	}
	c := fs.Counters()
	fmt.Printf("degraded-write file retrieved: byte-identical=%v, read repairs=%d (chunks fronted by the rejoined node: %d)\n",
		bytes.Equal(back2, file2), c.ReadRepairs, firstReplica)

	fmt.Printf("router: %v\n", fleet.StatsSnapshot())
	for _, b := range nodes[1:] {
		_ = b.Close()
	}
	_ = nodes[0].Close()
}
