// Fleet demonstrates the multi-node deployment: four blockservers on
// loopback TCP, a lepton.Fleet routing conversions across them by
// power-of-two load probes with retries and hedging, and a
// lepton.FleetStore placing replicated, content-addressed chunks over the
// same nodes. Midway, one node is hard-killed: the fleet retries its
// in-flight work elsewhere, evicts the dead node, and every stored file
// stays retrievable byte-identically from the surviving replicas — then
// the node restarts, is re-admitted by the health loop, and the chunks
// it missed are healed (by read-repair with in-memory stores; with
// -data-dir the node restarts against its intact disk and a warm-restart
// re-announce tops it up proactively, no client read involved).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"time"

	"lepton"
	"lepton/internal/admin"
	"lepton/internal/diskstore"
	"lepton/internal/imagegen"
	"lepton/internal/server"
	"lepton/internal/store"
)

func main() {
	dataDir := flag.String("data-dir", "",
		"parent directory for per-node durable stores (default: in-memory"+
			" stores; a restarted node then comes back empty)")
	adminAddr := flag.String("admin-addr", "",
		"optional HTTP address for the fleet admin plane: a status page plus"+
			" /api/stats over the router, store, and per-node counters")
	flag.Parse()

	ctx := context.Background()

	// Four blockservers, each with its own chunk store — four machines.
	// With -data-dir each store is a disk-backed segment log under its own
	// subdirectory, so a "machine" can reboot without losing its chunks.
	const n = 4
	newNodeStore := func(i int) *store.Store {
		if *dataDir == "" {
			return store.New()
		}
		ds, err := diskstore.Open(filepath.Join(*dataDir, fmt.Sprintf("node%d", i)), diskstore.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return store.NewWithBackend(ds)
	}
	nodes := make([]*server.Blockserver, n)
	stores := make([]*store.Store, n)
	addrs := make([]string, n)
	for i := range nodes {
		stores[i] = newNodeStore(i)
		nodes[i] = &server.Blockserver{Store: stores[i]}
		addr, err := server.ListenAndServe("tcp:127.0.0.1:0", nodes[i])
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = addr
	}
	fmt.Printf("fleet: %v\n", addrs)

	fleet, err := lepton.DialFleet(addrs, &lepton.FleetOptions{
		HedgeAfter:     200 * time.Millisecond,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	// The management plane: one HTTP server over the router's, the store's,
	// and every node's counters — what an operator watches while the demo's
	// kill/restart sequence plays out. nodeMu covers the restart below,
	// where a node's Blockserver is replaced while scrapes may be reading.
	var nodeMu sync.Mutex
	var adm *admin.Server
	if *adminAddr != "" {
		adm = admin.New()
		adm.Register("fleet", fleet.StatsSnapshot)
		for i := range nodes {
			adm.Register(fmt.Sprintf("node%d", i), func() map[string]int64 {
				nodeMu.Lock()
				b := nodes[i]
				nodeMu.Unlock()
				return b.StatsSnapshot()
			})
		}
		bound, err := adm.ListenAndServe(*adminAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("admin plane on http://%s/ (JSON at /api/stats)\n", bound)
	}

	// Concurrent conversion roundtrips spread across the nodes.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := imagegen.Generate(int64(i+1), 200, 150)
			if err != nil {
				log.Fatal(err)
			}
			comp, err := fleet.Compress(ctx, data)
			if err != nil {
				log.Fatalf("compress %d: %v", i, err)
			}
			back, err := fleet.Decompress(ctx, comp)
			if err != nil {
				log.Fatalf("decompress %d: %v", i, err)
			}
			if !bytes.Equal(back, data) {
				log.Fatalf("roundtrip %d not byte-identical", i)
			}
		}(i)
	}
	wg.Wait()
	for i, b := range nodes {
		s := b.StatsSnapshot()
		fmt.Printf("node %d served %d conversions\n", i, s["compresses"]+s["decompresses"])
	}

	// A replicated file across the fleet: every chunk on 2 of 4 nodes.
	fs, err := lepton.NewFleetStore(fleet, &lepton.FleetStoreOptions{Replication: 2, ChunkSize: 16 << 10})
	if err != nil {
		log.Fatal(err)
	}
	if adm != nil {
		adm.Register("store", fs.StatsSnapshot)
	}
	file, err := imagegen.Generate(99, 1024, 768)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := fs.PutFile(ctx, file)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d bytes as %d chunks x%d replicas\n", len(file), len(ref.Chunks), 2)

	// Kill node 0 — listener, store and all: the fleet must evict it and
	// keep serving, and the file must survive on the remaining replicas.
	_ = nodes[0].Close()
	_ = stores[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for !fleet.NodeDown(addrs[0]) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("killed %s; fleet: %v up / %v down\n", addrs[0],
		fleet.StatsSnapshot()["nodes_up"], fleet.StatsSnapshot()["nodes_down"])

	back, err := fs.GetFile(ctx, ref)
	if err != nil {
		log.Fatalf("get after node kill: %v", err)
	}
	fmt.Printf("file retrieved after node kill: byte-identical=%v\n", bytes.Equal(back, file))

	// A second file stored while degraded, then the node returns (same
	// port) and read-repair heals the chunks it missed.
	file2, err := imagegen.Generate(100, 384, 288)
	if err != nil {
		log.Fatal(err)
	}
	ref2, err := fs.PutFile(ctx, file2)
	if err != nil {
		log.Fatal(err)
	}
	nodeMu.Lock()
	stores[0] = newNodeStore(0) // same data dir: the segment log replays
	nodes[0] = &server.Blockserver{Store: stores[0]}
	nodeMu.Unlock()
	if _, err := server.ListenAndServe(addrs[0], nodes[0]); err != nil {
		log.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for fleet.NodeDown(addrs[0]) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("node restarted and readmitted (readmissions=%d)\n",
		fleet.StatsSnapshot()["readmissions"])

	if *dataDir != "" {
		// Warm restart: the disk kept every chunk from before the kill, and
		// the re-announce proactively copies over whatever placement
		// assigned the node while it was down — healing without waiting for
		// a client read to stumble on the hole.
		held, repaired, err := fs.Reannounce(ctx, addrs[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("warm restart: %d chunks replayed from disk; reannounce held=%d repaired=%d\n",
			stores[0].Len(), held, repaired)
	}

	back2, err := fs.GetFile(ctx, ref2)
	if err != nil {
		log.Fatal(err)
	}
	// Read-repair is lazy: a rejoined replica is healed when a read finds
	// it missing, which happens for chunks where it is the first replica
	// tried (placement depends on the nodes' addresses, so the count
	// varies run to run).
	firstReplica := 0
	for _, h := range ref2.Chunks {
		if fs.Placement(h)[0] == addrs[0] {
			firstReplica++
		}
	}
	c := fs.Counters()
	fmt.Printf("degraded-write file retrieved: byte-identical=%v, read repairs=%d (chunks fronted by the rejoined node: %d)\n",
		bytes.Equal(back2, file2), c.ReadRepairs, firstReplica)

	fmt.Printf("router: %v\n", fleet.StatsSnapshot())
	if adm != nil {
		// Graceful shutdown releases the admin port before the nodes go
		// away — the same drain discipline blockserverd applies.
		sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
		if err := adm.Shutdown(sctx); err != nil {
			log.Printf("admin shutdown: %v", err)
		}
		scancel()
	}
	for _, b := range nodes {
		_ = b.Close()
	}
	for _, s := range stores {
		_ = s.Close()
	}
}
