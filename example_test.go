package lepton_test

import (
	"bytes"
	"fmt"

	"lepton"
	"lepton/internal/imagegen"
)

// ExampleCompress round-trips a baseline JPEG through the codec.
func ExampleCompress() {
	jpegBytes, _ := imagegen.Generate(1, 160, 120)

	res, err := lepton.Compress(jpegBytes, nil)
	if err != nil {
		fmt.Println("rejected:", lepton.ReasonOf(err))
		return
	}
	orig, _ := lepton.Decompress(res.Compressed)
	fmt.Println("bit-exact:", bytes.Equal(orig, jpegBytes))
	fmt.Println("smaller:", len(res.Compressed) < len(jpegBytes))
	// Output:
	// bit-exact: true
	// smaller: true
}

// ExampleCompressChunks shows independent chunk decompression.
func ExampleCompressChunks() {
	jpegBytes, _ := imagegen.Generate(2, 400, 300)

	chunks, _ := lepton.CompressChunks(jpegBytes, &lepton.ChunkOptions{ChunkSize: 8 << 10})
	// Any chunk reconstructs its exact byte range with no other chunk's
	// data — even when the boundary falls mid-Huffman-symbol.
	part, _ := lepton.DecompressChunk(chunks[1])
	fmt.Println("chunk 1 matches:", bytes.Equal(part, jpegBytes[8<<10:16<<10]))
	// Output:
	// chunk 1 matches: true
}

// ExampleDecompressTo streams output with low time-to-first-byte.
func ExampleDecompressTo() {
	jpegBytes, _ := imagegen.Generate(3, 160, 120)
	res, _ := lepton.Compress(jpegBytes, &lepton.Options{Threads: 2})

	var buf bytes.Buffer
	_ = lepton.DecompressTo(&buf, res.Compressed)
	fmt.Println("streamed bit-exact:", bytes.Equal(buf.Bytes(), jpegBytes))
	// Output:
	// streamed bit-exact: true
}

// ExampleVerify is the production admission check.
func ExampleVerify() {
	jpegBytes, _ := imagegen.Generate(4, 96, 96)
	fmt.Println("admitted:", lepton.Verify(jpegBytes, nil) == nil)

	progressive := imagegen.MakeProgressive(jpegBytes)
	err := lepton.Verify(progressive, nil)
	fmt.Println("progressive rejected as:", lepton.ReasonOf(err))
	// Output:
	// admitted: true
	// progressive rejected as: Progressive
}
