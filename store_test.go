package lepton_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lepton"
	"lepton/internal/imagegen"
)

func TestStorePutGetFile(t *testing.T) {
	ctx := context.Background()
	data, err := imagegen.Generate(21, 1280, 960)
	if err != nil {
		t.Fatal(err)
	}
	st := lepton.NewStore(&lepton.StoreOptions{ChunkSize: 64 << 10})
	ref, err := st.PutFile(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Chunks) < 2 {
		t.Fatalf("want multiple chunks, got %d", len(ref.Chunks))
	}
	back, err := st.GetFile(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("store round trip mismatch")
	}
	c := st.Counters()
	if c.LeptonChunks == 0 {
		t.Fatalf("no Lepton chunks stored: %+v", c)
	}
	if c.BytesStored >= c.BytesIn {
		t.Fatalf("no savings: stored %d of %d bytes in", c.BytesStored, c.BytesIn)
	}

	// Chunk-level access: every chunk decodes independently.
	part, err := st.Get(ctx, ref.Chunks[1])
	if err != nil {
		t.Fatal(err)
	}
	end := 128 << 10
	if end > len(data) {
		end = len(data)
	}
	if !bytes.Equal(part, data[64<<10:end]) {
		t.Fatal("independent chunk decode mismatch")
	}
}

func TestStoreClientSidePath(t *testing.T) {
	ctx := context.Background()
	data, err := imagegen.Generate(22, 256, 192)
	if err != nil {
		t.Fatal(err)
	}
	codec := lepton.NewCodec()
	res, err := codec.Compress(data, &lepton.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	st := lepton.NewStore(&lepton.StoreOptions{Codec: codec})
	h, err := st.Put(ctx, res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	back, err := st.Get(ctx, h)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("client-side chunk round trip failed: %v", err)
	}
	cb, ok := st.GetCompressed(h)
	if !ok || !bytes.Equal(cb, res.Compressed) {
		t.Fatal("compressed bytes changed in store")
	}
	if _, err := st.Put(ctx, []byte("not a container")); err == nil {
		t.Fatal("Put accepted garbage")
	}
}

// TestStoreShutoffSwitch covers the §5.7 kill switch through the public
// API: with the shutoff file present, uploads bypass the encoder entirely.
func TestStoreShutoffSwitch(t *testing.T) {
	ctx := context.Background()
	shutoff := filepath.Join(t.TempDir(), "shutoff")
	if err := os.WriteFile(shutoff, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := imagegen.Generate(23, 256, 192)
	if err != nil {
		t.Fatal(err)
	}
	st := lepton.NewStore(&lepton.StoreOptions{ShutoffPath: shutoff})
	ref, err := st.PutFile(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	c := st.Counters()
	if c.LeptonChunks != 0 || c.DeflateChunks == 0 || c.ShutoffSkips != 1 {
		t.Fatalf("shutoff not honored: %+v", c)
	}
	// Removing the file re-enables the codec within one call.
	if err := os.Remove(shutoff); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PutFile(ctx, data); err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.LeptonChunks == 0 {
		t.Fatalf("codec still bypassed after shutoff removal: %+v", c)
	}
	back, err := st.GetFile(ctx, ref)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("deflate-mode file unreadable: %v", err)
	}
}

func TestStoreSafetyNet(t *testing.T) {
	ctx := context.Background()
	net := lepton.NewMemSafetyNet()
	data, err := imagegen.Generate(24, 256, 192)
	if err != nil {
		t.Fatal(err)
	}
	st := lepton.NewStore(&lepton.StoreOptions{SafetyNet: net})
	ref, err := st.PutFile(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := st.RecoverFromSafetyNet(ref.Chunks[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, data) {
		t.Fatal("safety net holds different bytes")
	}
	// The §6.5 incident: a failing safety net degrades uploads.
	net.FailPuts.Store(true)
	if _, err := st.PutFile(ctx, data); err == nil {
		t.Fatal("upload succeeded with a failing safety net")
	}
}

func TestStorePutFileCancelled(t *testing.T) {
	data, err := imagegen.Generate(25, 512, 384)
	if err != nil {
		t.Fatal(err)
	}
	st := lepton.NewStore(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.PutFile(ctx, data); !errors.Is(err, context.Canceled) {
		t.Fatalf("PutFile on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if c := st.Counters(); c.BytesStored != 0 {
		t.Fatalf("cancelled upload stored %d bytes", c.BytesStored)
	}
}
