package lepton_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lepton"
)

// updateGolden regenerates the golden-bitstream fixtures instead of checking
// against them. Only run it deliberately: a changed fixture means the coder
// produces a different stream, which breaks decodability of already-stored
// files (paper §5.2 determinism).
var updateGolden = flag.Bool("update-golden", false, "rewrite golden bitstream fixtures")

// goldenCases pins the exact compressed bytes for a spread of deterministic
// inputs: a multi-segment color image, a small single-segment image, a
// grayscale image, and the optional progressive and CMYK paths production
// kept disabled. Any coder or model change that silently alters the stream
// format fails this test loudly.
var goldenCases = []struct {
	name string
	seed int64
	w, h int
}{
	{"color-multiseg", 7, 640, 480},
	{"color-small", 3, 96, 64},
	{"gray", 11, 200, 150},
	{"progressive", 17, 240, 180},
	{"cmyk", 19, 176, 144},
}

// TestGoldenBitstream asserts that compression output is byte-identical to
// the checked-in fixtures generated before the table-driven entropy hot path
// (baseline cases) and the row-window streaming core (progressive/CMYK
// cases) landed, proving the refactors preserved the format bit for bit.
func TestGoldenBitstream(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			data, opt := goldenInput(t, tc.name, tc.seed, tc.w, tc.h)
			res, err := lepton.Compress(data, opt)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", fmt.Sprintf("golden-%s.lep", tc.name))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, res.Compressed, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(res.Compressed))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(res.Compressed, want) {
				t.Fatalf("%s: compressed output diverged from golden fixture: got %d bytes, want %d bytes (first diff at %d)",
					tc.name, len(res.Compressed), len(want), firstDiff(res.Compressed, want))
			}
			// The fixture must still round-trip to the original input.
			back, err := lepton.Decompress(want)
			if err != nil {
				t.Fatalf("fixture decompress: %v", err)
			}
			if !bytes.Equal(back, data) {
				t.Fatal("fixture does not decompress to the original JPEG")
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
