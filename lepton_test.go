package lepton_test

import (
	"bytes"
	"testing"

	"lepton"
	"lepton/internal/huffman"
	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

func gen(t testing.TB, seed int64, w, h int) []byte {
	t.Helper()
	data, err := imagegen.Generate(seed, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPublicCompressDecompress(t *testing.T) {
	data := gen(t, 1, 320, 240)
	res, err := lepton.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !lepton.IsCompressed(res.Compressed) {
		t.Fatal("missing magic")
	}
	back, err := lepton.Decompress(res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestPublicOptions(t *testing.T) {
	data := gen(t, 2, 400, 300)
	res, err := lepton.Compress(data, &lepton.Options{Threads: 4, Verify: true, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 4 {
		t.Fatalf("threads = %d", res.Threads)
	}
	var bits float64
	for _, b := range res.ClassBits {
		bits += b
	}
	if bits == 0 {
		t.Fatal("stats not collected")
	}
}

func TestPublicStreaming(t *testing.T) {
	data := gen(t, 3, 256, 256)
	res, err := lepton.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lepton.DecompressTo(&buf, res.Compressed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("streamed decompress mismatch")
	}
}

func TestPublicChunks(t *testing.T) {
	data := gen(t, 4, 512, 384)
	chunks, err := lepton.CompressChunks(data, &lepton.ChunkOptions{ChunkSize: 8 << 10, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := lepton.ReassembleChunks(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("chunk reassembly mismatch")
	}
	// One chunk alone.
	one, err := lepton.DecompressChunk(chunks[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, data[8<<10:16<<10]) {
		t.Fatal("independent chunk mismatch")
	}
}

func TestPublicVerify(t *testing.T) {
	data := gen(t, 5, 128, 128)
	if err := lepton.Verify(data, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRejection(t *testing.T) {
	_, err := lepton.Compress(imagegen.MakeProgressive(gen(t, 6, 64, 64)), nil)
	if lepton.ReasonOf(err) != lepton.ReasonProgressive {
		t.Fatalf("reason = %v", lepton.ReasonOf(err))
	}
	if lepton.ReasonOf(nil) != lepton.ReasonNone {
		t.Fatal("nil must map to ReasonNone")
	}
}

func TestPublicAblations(t *testing.T) {
	data := gen(t, 7, 256, 192)
	full, err := lepton.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	abl, err := lepton.Compress(data, &lepton.Options{DisableEdgePrediction: true, DisableDCGradient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Compressed) <= len(full.Compressed) {
		t.Fatalf("ablated model (%d) not worse than full (%d)",
			len(abl.Compressed), len(full.Compressed))
	}
	back, err := lepton.Decompress(abl.Compressed)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatal("ablated stream must still round trip")
	}
}

func TestPublicProgressive(t *testing.T) {
	// Build a spectral-selection progressive file via the internal helper
	// path, then exercise the public opt-in.
	base := gen(t, 8, 200, 150)
	res, err := lepton.Compress(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	prog := progressiveSample(t, 8, 200, 150)
	if _, err := lepton.Compress(prog, nil); lepton.ReasonOf(err) != lepton.ReasonProgressive {
		t.Fatalf("progressive accepted by default: %v", err)
	}
	pres, err := lepton.Compress(prog, &lepton.Options{AllowProgressive: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := lepton.Decompress(pres.Compressed)
	if err != nil || !bytes.Equal(back, prog) {
		t.Fatal("progressive public round trip failed")
	}
}

func TestPublicCMYK(t *testing.T) {
	img := imagegen.Synthesize(9, 120, 90)
	cmyk, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, CMYK: true, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lepton.Compress(cmyk, nil); lepton.ReasonOf(err) != lepton.ReasonCMYK {
		t.Fatalf("CMYK accepted by default: %v", err)
	}
	res, err := lepton.Compress(cmyk, &lepton.Options{AllowCMYK: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := lepton.Decompress(res.Compressed)
	if err != nil || !bytes.Equal(back, cmyk) {
		t.Fatal("CMYK public round trip failed")
	}
}

func progressiveSample(t testing.TB, seed int64, w, h int) []byte {
	t.Helper()
	img := imagegen.Synthesize(seed, w, h)
	base, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, SubsampleChroma: true, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.Parse(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		t.Fatal(err)
	}
	spec := &jpeg.ProgressiveSpec{}
	spec.Width, spec.Height = f.Width, f.Height
	for _, c := range f.Components {
		spec.Components = append(spec.Components, jpeg.Component{ID: c.ID, H: c.H, V: c.V, TQ: c.TQ})
	}
	spec.Quant = f.Quant
	spec.DC = [4]*huffman.Spec{&huffman.StdDCLuminance, &huffman.StdDCChrominance}
	spec.AC = [4]*huffman.Spec{&huffman.StdACLuminance, &huffman.StdACChrominance}
	spec.PadBit = 1
	data, err := jpeg.WriteProgressive(spec, s.Coeff)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPublicCodecReuse(t *testing.T) {
	// One codec across many files: outputs must match the package-level
	// (default-codec) path byte for byte, and reuse must never leak state
	// between conversions.
	codec := lepton.NewCodec()
	for round := 0; round < 2; round++ {
		for seed := int64(11); seed <= 14; seed++ {
			data := gen(t, seed, 200+int(seed)*8, 160)
			want, err := lepton.Compress(data, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := codec.Compress(data, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Compressed, want.Compressed) {
				t.Fatalf("seed %d: codec output differs from package-level path", seed)
			}
			back, err := codec.Decompress(got.Compressed)
			if err != nil || !bytes.Equal(back, data) {
				t.Fatalf("seed %d: codec round trip failed (%v)", seed, err)
			}
		}
	}
}

func TestPublicCompressTo(t *testing.T) {
	codec := lepton.NewCodec()
	data := gen(t, 21, 256, 192)
	want, err := codec.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := codec.CompressTo(&buf, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed != nil {
		t.Fatal("CompressTo must not retain the container")
	}
	if !bytes.Equal(buf.Bytes(), want.Compressed) {
		t.Fatal("CompressTo bytes differ from Compress")
	}
}

func TestPublicCompressChunksFrom(t *testing.T) {
	codec := lepton.NewCodec()
	data := gen(t, 22, 512, 384)
	want, err := codec.CompressChunks(data, &lepton.ChunkOptions{ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	err = codec.CompressChunksFrom(bytes.NewReader(data),
		&lepton.ChunkOptions{ChunkSize: 32 << 10},
		func(c []byte) error {
			got = append(got, c)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("chunk counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("chunk %d differs between streaming and in-memory paths", i)
		}
	}
	back, err := lepton.ReassembleChunks(got)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("reassembly failed (%v)", err)
	}
}
