// Package arith implements the adaptive binary arithmetic coder at the heart
// of Lepton. The paper uses "a modified version of a VP8 range coder"
// (§3.1); this implementation uses the equivalent carry-safe shift-low
// formulation (as in LZMA) because it avoids VP8's backward carry
// propagation, which is awkward to make robust at segment boundaries. The
// coding role, adaptivity, and performance envelope are the same: one
// binary symbol per call against a 12-bit probability drawn from an
// adaptive statistic bin.
//
// All state is integer; encode and decode are exact inverses and
// deterministic across platforms (paper §5.2).
package arith

import "errors"

// probBits is the precision of bin probabilities.
const probBits = 12

const (
	topValue = 1 << 24 // renormalization threshold
	probMax  = 1<<probBits - 1
)

// Bin is one adaptive statistic bin: it tracks how many zeros and ones have
// been coded in its context and yields the probability of the next bit being
// zero (paper §3.2). The zero value is a valid 50-50 bin.
type Bin struct {
	counts [2]uint16
}

// binRescaleLimit caps the per-bin counts; when a count saturates, both are
// halved so the bin keeps adapting to recent statistics.
const binRescaleLimit = 1024

// Prob returns the 12-bit probability that the next bit is zero, clamped to
// (0, 1) exclusive so both symbols stay codeable.
func (b *Bin) Prob() uint32 {
	c0 := uint32(b.counts[0]) + 1
	c1 := uint32(b.counts[1]) + 1
	p := (c0 << probBits) / (c0 + c1)
	if p < 1 {
		p = 1
	}
	if p > probMax {
		p = probMax
	}
	return p
}

// Update records an observed bit.
func (b *Bin) Update(bit int) {
	b.counts[bit]++
	if b.counts[bit] >= binRescaleLimit {
		b.counts[0] = (b.counts[0] + 1) >> 1
		b.counts[1] = (b.counts[1] + 1) >> 1
	}
}

// Reset returns the bin to its initial 50-50 state.
func (b *Bin) Reset() { b.counts[0], b.counts[1] = 0, 0 }

// Counts returns the observed (zeros, ones) counts.
func (b *Bin) Counts() (uint16, uint16) { return b.counts[0], b.counts[1] }

// Encoder encodes binary symbols into a byte buffer.
type Encoder struct {
	low      uint64
	rng      uint32
	cache    byte
	pending  int64 // count of pending 0xFF bytes awaiting carry resolution
	started  bool  // first shiftLow discards the initial zero cache
	out      []byte
	bitCount int64 // number of binary symbols encoded (for accounting)
}

// NewEncoder returns an Encoder ready for use.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xFFFFFFFF}
}

// Reset reinitializes the encoder, retaining the output buffer's capacity.
func (e *Encoder) Reset() {
	e.low, e.rng, e.cache, e.pending, e.started = 0, 0xFFFFFFFF, 0, 0, false
	e.out = e.out[:0]
	e.bitCount = 0
}

// EncodeBit encodes one bit with the given 12-bit probability of zero.
func (e *Encoder) EncodeBit(prob0 uint32, bit int) {
	bound := (e.rng >> probBits) * prob0
	if bit == 0 {
		e.rng = bound
	} else {
		e.low += uint64(bound)
		e.rng -= bound
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
	e.bitCount++
}

// Encode codes bit against bin and updates the bin. This pairing —
// probability lookup, code, adapt — is the fundamental operation of
// Lepton's model.
func (e *Encoder) Encode(bin *Bin, bit int) {
	e.EncodeBit(bin.Prob(), bit)
	bin.Update(bit)
}

func (e *Encoder) shiftLow() {
	if e.low < 0xFF000000 || e.low > 0xFFFFFFFF {
		carry := byte(e.low >> 32)
		if e.started {
			e.out = append(e.out, e.cache+carry)
		}
		for ; e.pending > 0; e.pending-- {
			e.out = append(e.out, 0xFF+carry)
		}
		e.cache = byte(e.low >> 24)
		e.started = true
	} else {
		e.pending++
	}
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// Flush terminates the stream and returns the encoded bytes. The encoder
// must not be used again without Reset.
func (e *Encoder) Flush() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// Bytes returns the output emitted so far (not including buffered state).
func (e *Encoder) Bytes() []byte { return e.out }

// BitsEncoded returns the number of binary symbols encoded.
func (e *Encoder) BitsEncoded() int64 { return e.bitCount }

// ErrShortStream is returned when the decoder runs out of input. A valid
// stream never triggers it; corrupt or truncated input does.
var ErrShortStream = errors.New("arith: truncated arithmetic-coded stream")

// Decoder decodes binary symbols from a byte slice produced by Encoder.
type Decoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
	err  error
}

// NewDecoder returns a Decoder over data.
func NewDecoder(data []byte) *Decoder {
	d := &Decoder{rng: 0xFFFFFFFF, in: data}
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *Decoder) next() byte {
	if d.pos >= len(d.in) {
		// Virtual zero padding: a truncated stream yields deterministic
		// garbage rather than a crash; the caller detects corruption via
		// the round-trip check (paper §5.7).
		d.err = ErrShortStream
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return b
}

// DecodeBit decodes one bit with the given 12-bit probability of zero.
func (d *Decoder) DecodeBit(prob0 uint32) int {
	bound := (d.rng >> probBits) * prob0
	var bit int
	if d.code < bound {
		d.rng = bound
		bit = 0
	} else {
		d.code -= bound
		d.rng -= bound
		bit = 1
	}
	for d.rng < topValue {
		d.code = d.code<<8 | uint32(d.next())
		d.rng <<= 8
	}
	return bit
}

// Decode decodes a bit against bin and updates the bin, mirroring
// Encoder.Encode.
func (d *Decoder) Decode(bin *Bin) int {
	bit := d.DecodeBit(bin.Prob())
	bin.Update(bit)
	return bit
}

// Err returns ErrShortStream if the decoder has read past the end of its
// input, and nil otherwise.
func (d *Decoder) Err() error { return d.err }

// Consumed returns the number of input bytes consumed so far.
func (d *Decoder) Consumed() int { return d.pos }
