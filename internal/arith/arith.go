// Package arith implements the adaptive binary arithmetic coder at the heart
// of Lepton. The paper uses "a modified version of a VP8 range coder"
// (§3.1); this implementation uses the equivalent carry-safe shift-low
// formulation (as in LZMA) because it avoids VP8's backward carry
// propagation, which is awkward to make robust at segment boundaries. The
// coding role, adaptivity, and performance envelope are the same: one
// binary symbol per call against a 12-bit probability drawn from an
// adaptive statistic bin.
//
// The hot path is division-free and table-driven, mirroring the deployed
// C++ system's precomputed probability tables (§3.1): Bin.Prob multiplies by
// a precomputed fixed-point reciprocal of count0+count1 instead of dividing
// (counts are capped at the rescale limit, so the table is small, and every
// reachable quotient is verified exact against the divide at init), the
// probability lookup, range-coder step, and bin update are fused into single
// Encoder.Encode / Decoder.Decode bodies, and renormalization is batched:
// the encoder writes into a pre-grown buffer with the capacity check hoisted
// out of the byte-emit loop, and the decoder refills from a 64-bit prefetch
// window loaded eight input bytes at a time.
//
// All state is integer; encode and decode are exact inverses and
// deterministic across platforms (paper §5.2).
package arith

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// probBits is the precision of bin probabilities.
const probBits = 12

const (
	topValue = 1 << 24 // renormalization threshold
	probMax  = 1<<probBits - 1
)

// Bin is one adaptive statistic bin: it tracks how many zeros and ones have
// been coded in its context and yields the probability of the next bit being
// zero (paper §3.2). The zero value is a valid 50-50 bin.
type Bin struct {
	counts [2]uint16
}

// binRescaleLimit caps the per-bin counts; when a count saturates, both are
// halved so the bin keeps adapting to recent statistics.
const binRescaleLimit = 1024

// maxBinTotal is the largest (count0+1)+(count1+1) the probability lookup can
// see: Update keeps each stored count below binRescaleLimit.
const maxBinTotal = 2 * binRescaleLimit

// recipShift is the fixed-point scale of the reciprocal table. With
// numerators at most binRescaleLimit<<probBits = 2^22 and divisors at most
// maxBinTotal = 2^11, a round-up reciprocal at scale 2^34 reproduces the
// truncating divide exactly (d·(n_max+d) ≤ 2^34); init verifies this for
// every reachable (numerator, divisor) pair anyway.
const recipShift = 34

// recipTable[t] is the round-up reciprocal ⌊2^recipShift/t⌋+1, so that
// n/t == n*recipTable[t] >> recipShift for every numerator the coder forms.
var recipTable [maxBinTotal + 1]uint64

func init() {
	for t := 2; t <= maxBinTotal; t++ {
		m := uint64(1)<<recipShift/uint64(t) + 1
		recipTable[t] = m
		// Verify the multiply-shift against the divide for every numerator
		// this divisor can meet: c0 ≤ binRescaleLimit and c0 < t.
		maxC0 := t - 1
		if maxC0 > binRescaleLimit {
			maxC0 = binRescaleLimit
		}
		for c0 := uint64(1); c0 <= uint64(maxC0); c0++ {
			n := c0 << probBits
			if n*m>>recipShift != n/uint64(t) {
				panic(fmt.Sprintf("arith: reciprocal table inexact for %d/%d", n, t))
			}
		}
	}
}

// Prob returns the 12-bit probability that the next bit is zero. The
// division-free lookup is exact: it returns (c0<<12)/(c0+c1) for the
// one-biased counts, which the count cap keeps strictly inside (0, 1<<12),
// so both symbols always stay codeable.
func (b *Bin) Prob() uint32 {
	c0 := uint32(b.counts[0]) + 1
	t := c0 + uint32(b.counts[1]) + 1
	return uint32(uint64(c0<<probBits) * recipTable[t] >> recipShift)
}

// Update records an observed bit.
func (b *Bin) Update(bit int) {
	b.counts[bit]++
	if b.counts[bit] >= binRescaleLimit {
		b.rescale()
	}
}

func (b *Bin) rescale() {
	b.counts[0] = (b.counts[0] + 1) >> 1
	b.counts[1] = (b.counts[1] + 1) >> 1
}

// Reset returns the bin to its initial 50-50 state.
func (b *Bin) Reset() { b.counts[0], b.counts[1] = 0, 0 }

// Counts returns the observed (zeros, ones) counts.
func (b *Bin) Counts() (uint16, uint16) { return b.counts[0], b.counts[1] }

// Encoder encodes binary symbols into a byte buffer.
type Encoder struct {
	low     uint64
	rng     uint32
	cache   byte
	pending int64 // count of pending 0xFF bytes awaiting carry resolution
	started bool  // first shiftLow discards the initial zero cache
	// buf is the output backing storage; n bytes of it are valid. Writes go
	// through direct indexing with the capacity check hoisted to renorm, so
	// the per-byte emit in shiftLow is branch-light.
	buf      []byte
	n        int
	bitCount int64 // number of binary symbols encoded (for accounting)
}

// NewEncoder returns an Encoder ready for use.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xFFFFFFFF}
}

// Reset reinitializes the encoder, retaining the output buffer's capacity.
// Output previously returned by Flush or Bytes aliases that buffer and is
// overwritten by further use; see Flush.
func (e *Encoder) Reset() {
	e.low, e.rng, e.cache, e.pending, e.started = 0, 0xFFFFFFFF, 0, 0, false
	e.n = 0
	e.bitCount = 0
}

// Grow ensures the output buffer can hold at least n bytes in total without
// further allocation. Callers that know the input segment size pre-size the
// encoder once so steady-state encodes never reallocate mid-stream.
func (e *Encoder) Grow(n int) {
	if n > len(e.buf) {
		e.ensure(n - e.n)
	}
}

// ensure grows the backing storage so at least spare bytes can be written.
func (e *Encoder) ensure(spare int) {
	need := e.n + spare
	if need <= len(e.buf) {
		return
	}
	c := 2 * len(e.buf)
	if c < need {
		c = need
	}
	if c < 256 {
		c = 256
	}
	nb := make([]byte, c)
	copy(nb, e.buf[:e.n])
	e.buf = nb
}

// EncodeBit encodes one bit with the given 12-bit probability of zero.
func (e *Encoder) EncodeBit(prob0 uint32, bit int) {
	bound := (e.rng >> probBits) * prob0
	if bit == 0 {
		e.rng = bound
	} else {
		e.low += uint64(bound)
		e.rng -= bound
	}
	if e.rng < topValue {
		e.renorm()
	}
	e.bitCount++
}

// Encode codes bit against bin and updates the bin. This pairing —
// probability lookup, code, adapt — is the fundamental operation of
// Lepton's model, fused into one body so the per-bit cost is a table
// lookup, one multiply, and the range step.
func (e *Encoder) Encode(bin *Bin, bit int) {
	c0 := uint32(bin.counts[0]) + 1
	t := c0 + uint32(bin.counts[1]) + 1
	prob0 := uint32(uint64(c0<<probBits) * recipTable[t] >> recipShift)
	bound := (e.rng >> probBits) * prob0
	if bit == 0 {
		e.rng = bound
		bin.counts[0]++
		if bin.counts[0] >= binRescaleLimit {
			bin.rescale()
		}
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		bin.counts[1]++
		if bin.counts[1] >= binRescaleLimit {
			bin.rescale()
		}
	}
	if e.rng < topValue {
		e.renorm()
	}
	e.bitCount++
}

// renorm emits bytes until rng is back above the renormalization threshold.
// The capacity check runs once here — valid probabilities keep the loop to
// at most two iterations of one byte each — so shiftLow itself writes with
// plain stores; only the rare pending-0xFF flush re-checks capacity.
func (e *Encoder) renorm() {
	if len(e.buf)-e.n < 8 {
		e.ensure(8)
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

func (e *Encoder) shiftLow() {
	if e.low < 0xFF000000 || e.low > 0xFFFFFFFF {
		carry := byte(e.low >> 32)
		if e.started {
			e.buf[e.n] = e.cache + carry
			e.n++
		}
		if e.pending > 0 {
			e.flushPending(0xFF + carry)
		}
		e.cache = byte(e.low >> 24)
		e.started = true
	} else {
		e.pending++
	}
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// flushPending resolves a run of carry-pending 0xFF bytes. Runs can be long,
// so this path — unlike shiftLow's single-byte store — checks capacity. It
// must leave the 8 bytes of headroom renorm and Flush established intact:
// their remaining shiftLow stores after this flush are unchecked.
func (e *Encoder) flushPending(b byte) {
	if int64(len(e.buf)-e.n) < e.pending+8 {
		e.ensure(int(e.pending) + 8)
	}
	for ; e.pending > 0; e.pending-- {
		e.buf[e.n] = b
		e.n++
	}
}

// Flush terminates the stream and returns the encoded bytes. The encoder
// must not be used again without Reset.
//
// Ownership: the returned slice aliases the encoder's internal buffer. It is
// valid until the next Reset (which truncates and reuses the storage) —
// callers that pool encoders, like core's segment pipeline, must copy the
// bytes out before recycling the encoder.
func (e *Encoder) Flush() []byte {
	if len(e.buf)-e.n < 8 {
		e.ensure(8)
	}
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.buf[:e.n]
}

// Bytes returns the output emitted so far (not including buffered state).
// Like Flush, the result aliases the internal buffer and is invalidated by
// Reset or further encoding.
func (e *Encoder) Bytes() []byte { return e.buf[:e.n] }

// BitsEncoded returns the number of binary symbols encoded.
func (e *Encoder) BitsEncoded() int64 { return e.bitCount }

// ErrShortStream is returned when the decoder runs out of input. A valid
// stream never triggers it; corrupt or truncated input does.
var ErrShortStream = errors.New("arith: truncated arithmetic-coded stream")

// Decoder decodes binary symbols from a byte slice produced by Encoder.
type Decoder struct {
	code uint32
	rng  uint32
	// window prefetches input MSB-aligned, eight bytes per refill, so the
	// renormalization loop consumes one shift per byte instead of a bounds
	// check and slice load each.
	window uint64
	wbytes int // bytes remaining in window
	in     []byte
	pos    int // bytes of in moved into the window (runs past len(in) once padding starts)
	err    error
}

// NewDecoder returns a Decoder over data.
func NewDecoder(data []byte) *Decoder {
	d := &Decoder{rng: 0xFFFFFFFF, in: data}
	for i := 0; i < 4; i++ {
		if d.wbytes == 0 {
			d.refill()
		}
		d.code = d.code<<8 | uint32(d.window>>56)
		d.window <<= 8
		d.wbytes--
	}
	return d
}

// refill reloads the prefetch window: a single 64-bit load on the fast path,
// byte-assembled near the end of input. Past the end it supplies virtual
// zero padding — a truncated stream yields deterministic garbage rather
// than a crash; the caller detects corruption via the round-trip check
// (paper §5.7).
func (d *Decoder) refill() {
	if d.pos+8 <= len(d.in) {
		d.window = binary.BigEndian.Uint64(d.in[d.pos:])
		d.pos += 8
		d.wbytes = 8
		return
	}
	rem := len(d.in) - d.pos
	if rem <= 0 {
		d.err = ErrShortStream
		d.window = 0
		d.wbytes = 8
		d.pos += 8
		return
	}
	var w uint64
	for i := 0; i < rem; i++ {
		w |= uint64(d.in[d.pos+i]) << (56 - 8*i)
	}
	d.window = w
	d.wbytes = rem
	d.pos += rem
}

// DecodeBit decodes one bit with the given 12-bit probability of zero.
func (d *Decoder) DecodeBit(prob0 uint32) int {
	bound := (d.rng >> probBits) * prob0
	var bit int
	if d.code < bound {
		d.rng = bound
	} else {
		d.code -= bound
		d.rng -= bound
		bit = 1
	}
	if d.rng < topValue {
		d.renorm()
	}
	return bit
}

// Decode decodes a bit against bin and updates the bin, mirroring
// Encoder.Encode's fused probability-lookup/code/adapt body.
func (d *Decoder) Decode(bin *Bin) int {
	c0 := uint32(bin.counts[0]) + 1
	t := c0 + uint32(bin.counts[1]) + 1
	prob0 := uint32(uint64(c0<<probBits) * recipTable[t] >> recipShift)
	bound := (d.rng >> probBits) * prob0
	var bit int
	if d.code < bound {
		d.rng = bound
		bin.counts[0]++
		if bin.counts[0] >= binRescaleLimit {
			bin.rescale()
		}
	} else {
		d.code -= bound
		d.rng -= bound
		bit = 1
		bin.counts[1]++
		if bin.counts[1] >= binRescaleLimit {
			bin.rescale()
		}
	}
	if d.rng < topValue {
		d.renorm()
	}
	return bit
}

func (d *Decoder) renorm() {
	for d.rng < topValue {
		if d.wbytes == 0 {
			d.refill()
		}
		d.code = d.code<<8 | uint32(d.window>>56)
		d.window <<= 8
		d.wbytes--
		d.rng <<= 8
	}
}

// Err returns ErrShortStream if the decoder has read past the end of its
// input, and nil otherwise.
func (d *Decoder) Err() error { return d.err }

// Consumed returns the number of input bytes consumed so far.
func (d *Decoder) Consumed() int {
	c := d.pos - d.wbytes
	if c > len(d.in) {
		c = len(d.in)
	}
	return c
}
