package arith

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedProbRoundTrip(t *testing.T) {
	e := NewEncoder()
	rng := rand.New(rand.NewSource(1))
	var bits []int
	var probs []uint32
	for i := 0; i < 20000; i++ {
		p := uint32(rng.Intn(probMax-2) + 1)
		b := 0
		if rng.Intn(100) < 37 {
			b = 1
		}
		probs = append(probs, p)
		bits = append(bits, b)
		e.EncodeBit(p, b)
	}
	data := e.Flush()
	d := NewDecoder(data)
	for i := range bits {
		if got := d.DecodeBit(probs[i]); got != bits[i] {
			t.Fatalf("bit %d: got %d want %d", i, got, bits[i])
		}
	}
	if d.Err() != nil {
		t.Fatalf("decoder overran: %v", d.Err())
	}
}

func TestAdaptiveBinRoundTrip(t *testing.T) {
	e := NewEncoder()
	var ebins [16]Bin
	rng := rand.New(rand.NewSource(2))
	var bits []int
	var ctxs []int
	for i := 0; i < 50000; i++ {
		c := rng.Intn(16)
		// Each context has its own bias so adaptation matters.
		b := 0
		if rng.Intn(16) < c {
			b = 1
		}
		ctxs = append(ctxs, c)
		bits = append(bits, b)
		e.Encode(&ebins[c], b)
	}
	data := e.Flush()
	d := NewDecoder(data)
	var dbins [16]Bin
	for i := range bits {
		if got := d.Decode(&dbins[ctxs[i]]); got != bits[i] {
			t.Fatalf("bit %d: got %d want %d", i, got, bits[i])
		}
	}
	// Encoder and decoder bins must end in identical states.
	for i := range ebins {
		if ebins[i] != dbins[i] {
			t.Fatalf("bin %d diverged: %v vs %v", i, ebins[i], dbins[i])
		}
	}
}

func TestCompressionOfSkewedSource(t *testing.T) {
	// A heavily biased source must compress well below 1 bit/symbol.
	e := NewEncoder()
	var bin Bin
	rng := rand.New(rand.NewSource(3))
	n := 100000
	for i := 0; i < n; i++ {
		b := 0
		if rng.Intn(100) < 3 {
			b = 1
		}
		e.Encode(&bin, b)
	}
	data := e.Flush()
	bitsPerSym := float64(len(data)*8) / float64(n)
	// H(0.03) ~ 0.194 bits; allow adaptation overhead.
	if bitsPerSym > 0.30 {
		t.Fatalf("poor compression: %.3f bits/symbol", bitsPerSym)
	}
}

func TestBalancedSourceNearOneBit(t *testing.T) {
	e := NewEncoder()
	var bin Bin
	rng := rand.New(rand.NewSource(4))
	n := 50000
	for i := 0; i < n; i++ {
		e.Encode(&bin, rng.Intn(2))
	}
	data := e.Flush()
	bitsPerSym := float64(len(data)*8) / float64(n)
	if bitsPerSym > 1.02 {
		t.Fatalf("expansion on random source: %.4f bits/symbol", bitsPerSym)
	}
}

func TestBinProbEvolution(t *testing.T) {
	var b Bin
	if p := b.Prob(); p != 1<<(probBits-1) {
		t.Fatalf("initial prob = %d, want %d", p, 1<<(probBits-1))
	}
	for i := 0; i < 100; i++ {
		b.Update(0)
	}
	if p := b.Prob(); p < 3500 {
		t.Fatalf("prob after 100 zeros = %d, want high", p)
	}
	b.Reset()
	for i := 0; i < 100; i++ {
		b.Update(1)
	}
	if p := b.Prob(); p > 600 {
		t.Fatalf("prob after 100 ones = %d, want low", p)
	}
}

func TestBinRescale(t *testing.T) {
	var b Bin
	for i := 0; i < 10*binRescaleLimit; i++ {
		b.Update(1)
	}
	c0, c1 := b.Counts()
	if c1 >= binRescaleLimit {
		t.Fatalf("counts not rescaled: %d/%d", c0, c1)
	}
	if p := b.Prob(); p > 100 {
		t.Fatalf("prob after rescale lost skew: %d", p)
	}
}

func TestTruncatedStreamDetected(t *testing.T) {
	e := NewEncoder()
	var bin Bin
	for i := 0; i < 10000; i++ {
		e.Encode(&bin, i%3&1)
	}
	data := e.Flush()
	d := NewDecoder(data[:len(data)/4])
	var dbin Bin
	for i := 0; i < 10000; i++ {
		d.Decode(&dbin)
	}
	if d.Err() == nil {
		t.Fatal("expected ErrShortStream on truncated input")
	}
}

func TestEmptyStream(t *testing.T) {
	e := NewEncoder()
	data := e.Flush()
	// Decoding from an empty encode must not panic.
	d := NewDecoder(data)
	_ = d.DecodeBit(2048)
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder()
	var bin Bin
	for i := 0; i < 100; i++ {
		e.Encode(&bin, i&1)
	}
	first := append([]byte(nil), e.Flush()...)
	e.Reset()
	bin.Reset()
	for i := 0; i < 100; i++ {
		e.Encode(&bin, i&1)
	}
	second := e.Flush()
	if string(first) != string(second) {
		t.Fatal("Reset did not restore initial state")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(pattern []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEncoder()
		var ebins [4]Bin
		var bits []int
		var ctxs []int
		for _, p := range pattern {
			for j := 0; j < int(p%7)+1; j++ {
				c := rng.Intn(4)
				b := int(p>>uint(j%8)) & 1
				e.Encode(&ebins[c], b)
				bits = append(bits, b)
				ctxs = append(ctxs, c)
			}
		}
		data := e.Flush()
		d := NewDecoder(data)
		var dbins [4]Bin
		for i := range bits {
			if d.Decode(&dbins[ctxs[i]]) != bits[i] {
				return false
			}
		}
		return d.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCarryPropagation drives the encoder toward maximal low values to
// exercise the pending-0xFF carry path.
func TestCarryPropagation(t *testing.T) {
	e := NewEncoder()
	// Encoding improbable bits (bit=1 with high prob of zero) pushes low up.
	var bits []int
	for i := 0; i < 5000; i++ {
		b := 1
		if i%97 == 0 {
			b = 0
		}
		bits = append(bits, b)
		e.EncodeBit(probMax, b)
	}
	data := e.Flush()
	d := NewDecoder(data)
	for i, want := range bits {
		if got := d.DecodeBit(probMax); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

// TestRecipTableExact re-verifies the division-free probability lookup
// against the plain divide for every (count0, count1) pair a bin can hold —
// the same property init asserts, stated here as an explicit regression
// test for anyone retuning binRescaleLimit, probBits, or recipShift.
func TestRecipTableExact(t *testing.T) {
	for c0 := uint32(1); c0 <= binRescaleLimit; c0++ {
		for c1 := uint32(1); c1 <= binRescaleLimit; c1++ {
			n := uint64(c0 << probBits)
			want := uint32(n / uint64(c0+c1))
			got := uint32(n * recipTable[c0+c1] >> recipShift)
			if got != want {
				t.Fatalf("recip(%d/%d) = %d, want %d", n, c0+c1, got, want)
			}
			if got < 1 || got > probMax {
				t.Fatalf("prob %d/%d = %d out of codeable range", c0, c1, got)
			}
		}
	}
}

// TestProbMatchesCounts pins Prob to the documented quotient for bins driven
// through real Update sequences, including across rescales.
func TestProbMatchesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b Bin
	for i := 0; i < 200000; i++ {
		b.Update(rng.Intn(2))
		c0, c1 := b.Counts()
		want := (uint32(c0) + 1) << probBits / (uint32(c0) + uint32(c1) + 2)
		if p := b.Prob(); p != want {
			t.Fatalf("after %d updates (counts %d/%d): Prob = %d, want %d", i+1, c0, c1, p, want)
		}
	}
}

// TestFlushAliasesBuffer documents the Flush/Bytes ownership contract: the
// returned slice aliases the encoder's internal buffer, so a pooled encoder
// reused via Reset overwrites earlier output in place. Callers pooling
// encoders must copy before recycling — exactly what core's segment
// pipeline does via Container marshaling before release.
func TestFlushAliasesBuffer(t *testing.T) {
	e := NewEncoder()
	var bin Bin
	for i := 0; i < 1000; i++ {
		e.Encode(&bin, i&1)
	}
	first := e.Flush()
	snapshot := append([]byte(nil), first...)

	// Reuse the encoder for a different message, as a pool would.
	e.Reset()
	var bin2 Bin
	for i := 0; i < 1000; i++ {
		e.Encode(&bin2, (i/3)&1)
	}
	second := e.Flush()

	if string(first[:min(len(first), len(second))]) == string(snapshot[:min(len(first), len(second))]) {
		t.Fatal("expected Flush result to alias the reused buffer; copy-on-return would change the documented ownership contract")
	}
	// The copied snapshot must still decode: copying is the correct way to
	// retain output across Reset.
	d := NewDecoder(snapshot)
	var dbin Bin
	for i := 0; i < 1000; i++ {
		if got := d.Decode(&dbin); got != i&1 {
			t.Fatalf("bit %d decoded %d from the snapshot copy", i, got)
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

// TestGrowPreventsReallocation checks that a Grow covering the final output
// keeps the buffer stable for the whole encode.
func TestGrowPreventsReallocation(t *testing.T) {
	e := NewEncoder()
	e.Grow(64 << 10)
	before := &e.buf[0]
	rng := rand.New(rand.NewSource(9))
	var bins [8]Bin
	for i := 0; i < 100000; i++ {
		e.Encode(&bins[rng.Intn(8)], rng.Intn(2))
	}
	out := e.Flush()
	if len(out) > 64<<10 {
		t.Skipf("output %d exceeded the grow hint; test needs a bigger hint", len(out))
	}
	if &e.buf[0] != before {
		t.Fatal("buffer reallocated despite sufficient Grow")
	}
}

// BenchmarkEncodeBit is the per-coded-bit regression series for the encode
// hot path (reciprocal-table probability, fused update, batched renorm),
// independent of the Figure-2 corpus.
func BenchmarkEncodeBit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 1<<16)
	for i := range bits {
		if rng.Intn(10) < 2 {
			bits[i] = 1
		}
	}
	e := NewEncoder()
	var bin Bin
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		bin.Reset()
		for _, bit := range bits {
			e.Encode(&bin, bit)
		}
		e.Flush()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(bits)), "ns/bit")
}

// BenchmarkDecodeBit is BenchmarkEncodeBit's decode-side counterpart
// (fused lookup plus the 64-bit prefetch window).
func BenchmarkDecodeBit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 1<<16)
	for i := range bits {
		if rng.Intn(10) < 2 {
			bits[i] = 1
		}
	}
	e := NewEncoder()
	var bin Bin
	for _, bit := range bits {
		e.Encode(&bin, bit)
	}
	data := e.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(data)
		var dbin Bin
		for range bits {
			d.Decode(&dbin)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(bits)), "ns/bit")
}

func BenchmarkEncodeAdaptive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 1<<16)
	for i := range bits {
		if rng.Intn(10) < 2 {
			bits[i] = 1
		}
	}
	b.SetBytes(int64(len(bits)) / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		var bin Bin
		for _, bit := range bits {
			e.Encode(&bin, bit)
		}
		e.Flush()
	}
}

func BenchmarkDecodeAdaptive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 1<<16)
	for i := range bits {
		if rng.Intn(10) < 2 {
			bits[i] = 1
		}
	}
	e := NewEncoder()
	var bin Bin
	for _, bit := range bits {
		e.Encode(&bin, bit)
	}
	data := e.Flush()
	b.SetBytes(int64(len(bits)) / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(data)
		var dbin Bin
		for range bits {
			d.Decode(&dbin)
		}
	}
}

// TestFlushPendingPreservesHeadroom reproduces the capacity hazard where a
// carry-pending 0xFF run lined up with the remaining buffer capacity: the
// pending flush consumed the 8-byte headroom that renorm and Flush had
// established for their remaining unchecked shiftLow stores, and the next
// store panicked. The crafted states sweep every (pending, spare)
// combination around the boundary, through both the renorm and Flush paths.
func TestFlushPendingPreservesHeadroom(t *testing.T) {
	for pending := int64(0); pending <= 12; pending++ {
		for spare := 8; spare <= 16; spare++ {
			// renorm path: low resolves the pending run, rng forces two
			// renormalization iterations (two byte stores around the flush).
			e := NewEncoder()
			e.buf = make([]byte, 64)
			e.n = len(e.buf) - spare
			e.started = true
			e.cache = 0x12
			e.pending = pending
			e.low = 0
			e.rng = 1 << 10
			e.renorm()

			// Flush path: five shiftLow calls after one headroom check.
			f := NewEncoder()
			f.buf = make([]byte, 64)
			f.n = len(f.buf) - spare
			f.started = true
			f.cache = 0x34
			f.pending = pending
			f.low = 0
			f.Flush()
		}
	}
}
