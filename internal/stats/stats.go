// Package stats provides the small statistical helpers the evaluation
// harness uses: percentiles, summaries, and fixed-width table rendering.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0..100) of values by linear
// interpolation. It copies and sorts internally.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary holds the percentile set the paper reports.
type Summary struct {
	N                  int
	P50, P75, P95, P99 float64
	Mean               float64
	Min, Max           float64
}

// Summarize computes a Summary over values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:    len(s),
		P50:  percentileSorted(s, 50),
		P75:  percentileSorted(s, 75),
		P95:  percentileSorted(s, 95),
		P99:  percentileSorted(s, 99),
		Mean: sum / float64(len(s)),
		Min:  s[0],
		Max:  s[len(s)-1],
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d p50=%.3f p75=%.3f p95=%.3f p99=%.3f mean=%.3f",
		s.N, s.P50, s.P75, s.P95, s.P99, s.Mean)
}

// Table renders rows with aligned columns for harness output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float for table cells.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// I formats an int for table cells.
func I(v int64) string { return fmt.Sprintf("%d", v) }
