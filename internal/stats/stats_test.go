package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(v, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(v, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(v, 50); p != 5.5 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile([]float64{42}, 99); p != 42 {
		t.Fatalf("single = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty = %v", p)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	v := []float64{9, 1, 5, 3, 7}
	if p := Percentile(v, 50); p != 5 {
		t.Fatalf("p50 = %v", p)
	}
	// Input must not be mutated.
	if v[0] != 9 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var v []float64
	for i := 0; i < 10000; i++ {
		v = append(v, rng.Float64()*100)
	}
	s := Summarize(v)
	if s.N != 10000 {
		t.Fatalf("n = %d", s.N)
	}
	if s.P50 < 45 || s.P50 > 55 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 < 95 || s.P99 > 100 {
		t.Fatalf("p99 = %v", s.P99)
	}
	if s.Mean < 45 || s.Mean > 55 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Min > s.P50 || s.P50 > s.P75 || s.P75 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			v[i] = float64(x)
		}
		last := Percentile(v, 0)
		for p := 5.0; p <= 100; p += 5 {
			cur := Percentile(v, p)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.Add("alpha", F(1.5, 2))
	tab.Add("a-much-longer-name", I(42))
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.50") || !strings.Contains(out, "42") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: every line has the same prefix width for column 2.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Fatalf("missing rule:\n%s", out)
	}
}
