package loadhist

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// oracle computes the exact quantile the histogram approximates: the
// ceil(q*n)-th smallest sample.
func oracle(sorted []int64, q float64) int64 {
	n := len(sorted)
	k := int(float64(n)*q + 0.9999999)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return sorted[k-1]
}

// TestQuantileAgainstSortedOracle checks every reported quantile against
// the exact sorted-sample answer within the histogram's documented relative
// error (1/subCount per bucket, doubled for safety at octave edges).
func TestQuantileAgainstSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dist := range []struct {
		name string
		draw func() int64
	}{
		{"uniform", func() int64 { return rng.Int63n(int64(2 * time.Second)) }},
		{"exponential", func() int64 { return int64(rng.ExpFloat64() * float64(50*time.Millisecond)) }},
		{"bimodal", func() int64 {
			if rng.Intn(10) == 0 {
				return int64(time.Second) + rng.Int63n(int64(time.Second))
			}
			return int64(time.Millisecond) + rng.Int63n(int64(5*time.Millisecond))
		}},
		{"tiny-values", func() int64 { return rng.Int63n(64) }},
	} {
		h := New()
		samples := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := dist.draw()
			samples = append(samples, v)
			h.Record(time.Duration(v))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
			want := oracle(samples, q)
			got := int64(h.Quantile(q))
			tol := want/(subCount/2) + 1
			if got < want-tol || got > want+tol {
				t.Errorf("%s q=%v: got %d, oracle %d (tol %d)", dist.name, q, got, want, tol)
			}
		}
		if h.Min() != time.Duration(samples[0]) || h.Max() != time.Duration(samples[len(samples)-1]) {
			t.Errorf("%s: min/max %v/%v, want %d/%d", dist.name, h.Min(), h.Max(), samples[0], samples[len(samples)-1])
		}
	}
}

// TestMergeAssociativity verifies that merging per-worker histograms in any
// grouping produces identical counts and quantiles — the property the load
// generator's end-of-run combine relies on.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := make([]*Hist, 4)
	for i := range parts {
		parts[i] = New()
		for j := 0; j < 5000; j++ {
			parts[i].Record(time.Duration(rng.Int63n(int64(time.Second) << uint(i))))
		}
	}
	clone := func(h *Hist) *Hist { c := *h; return &c }

	// ((a+b)+c)+d
	left := clone(parts[0])
	for _, p := range parts[1:] {
		left.Merge(p)
	}
	// a+(b+(c+d))
	right := clone(parts[3])
	tmp := clone(parts[2])
	tmp.Merge(right)
	right = clone(parts[1])
	right.Merge(tmp)
	tmp2 := clone(parts[0])
	tmp2.Merge(right)
	right = tmp2
	// (a+b)+(c+d), mixed order
	ab := clone(parts[1])
	ab.Merge(parts[0])
	cd := clone(parts[3])
	cd.Merge(parts[2])
	mid := clone(ab)
	mid.Merge(cd)

	for _, other := range []*Hist{right, mid} {
		if left.count != other.count || left.sum != other.sum || left.min != other.min || left.max != other.max {
			t.Fatalf("merge grouping changed summary: %+v vs %+v",
				[4]int64{left.count, left.sum, left.min, left.max},
				[4]int64{other.count, other.sum, other.min, other.max})
		}
		if left.counts != other.counts {
			t.Fatal("merge grouping changed bucket counts")
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			if left.Quantile(q) != other.Quantile(q) {
				t.Fatalf("q=%v differs across merge groupings", q)
			}
		}
	}

	// Merging an empty histogram is the identity.
	id := clone(left)
	id.Merge(New())
	if id.counts != left.counts || id.count != left.count || id.min != left.min {
		t.Fatal("merging an empty histogram changed the result")
	}
	empty := New()
	empty.Merge(left)
	if empty.counts != left.counts || empty.min != left.min || empty.max != left.max {
		t.Fatal("merging into an empty histogram lost data")
	}
}

// TestBucketBoundaries pins the bucket geometry: every value lands in a
// bucket whose [low, high] range contains it, indices are monotone, and
// exact bucket edges map to the bucket they open.
func TestBucketBoundaries(t *testing.T) {
	// Exhaustive over the linear region and the first octaves.
	last := -1
	for v := int64(0); v < 4*subCount; v++ {
		i := bucketIndex(v)
		if lo := bucketLow(i); lo > v {
			t.Fatalf("v=%d: bucketLow(%d)=%d > v", v, i, lo)
		}
		if hi := bucketLow(i+1) - 1; hi < v {
			t.Fatalf("v=%d: bucket %d ends at %d < v", v, i, hi)
		}
		if i < last {
			t.Fatalf("v=%d: index %d not monotone (prev %d)", v, i, last)
		}
		last = i
	}
	// Spot-check edges across the full range: bucketLow(i) must map back
	// to bucket i, and the value one below to bucket i-1.
	for _, v := range []int64{
		subCount, subCount + 1, 2*subCount - 1, 2 * subCount, 1 << 20,
		int64(time.Millisecond), int64(time.Second), int64(time.Minute), 1 << 40, 1 << 56,
	} {
		i := bucketIndex(v)
		if got := bucketIndex(bucketLow(i)); got != i {
			t.Fatalf("bucketLow(%d)=%d maps to bucket %d", i, bucketLow(i), got)
		}
		if lo := bucketLow(i); lo > 0 {
			if got := bucketIndex(lo - 1); got != i-1 {
				t.Fatalf("value %d below bucket %d's low edge maps to %d, want %d", lo-1, i, got, i-1)
			}
		}
	}
	// Negative durations are clamped, never panic.
	h := New()
	h.Record(-time.Second)
	if h.Count() != 1 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative record: count=%d min=%v q50=%v", h.Count(), h.Min(), h.Quantile(0.5))
	}
	// A single sample answers every quantile with itself (within a bucket).
	h2 := New()
	h2.Record(1500 * time.Microsecond)
	for _, q := range []float64{0.001, 0.5, 0.999, 1} {
		got := h2.Quantile(q)
		if got != 1500*time.Microsecond {
			t.Fatalf("single sample q=%v: got %v", q, got)
		}
	}
}

func TestMeanAndCount(t *testing.T) {
	h := New()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	if m := h.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean=%v, want 50.5ms", m)
	}
}
