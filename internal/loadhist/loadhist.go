// Package loadhist records latency distributions for the load-and-SLO
// harness: a log-linear histogram in the HdrHistogram shape, sized for
// durations from nanoseconds to minutes at a bounded relative error.
//
// Buckets are organized in octaves (powers of two) with subCount linear
// sub-buckets per octave, so the relative width of any bucket is at most
// 1/subCount (~3.1%): precise enough for p50..p999 SLO reporting, compact
// enough (15 KiB) that every worker can keep private histograms and merge
// them at the end — recording is a single array increment, no locks, no
// allocation, which is what an open-loop generator needs so measurement
// never perturbs the arrival schedule.
//
// A Hist is NOT safe for concurrent use; give each recording goroutine its
// own and combine with Merge (associative and commutative, tested).
package loadhist

import (
	"math"
	"math/bits"
	"time"
)

const (
	// subBits fixes the sub-bucket resolution: 2^subBits linear buckets
	// per octave, bounding relative quantile error at 2^-subBits.
	subBits  = 5
	subCount = 1 << subBits

	// numBuckets covers every non-negative int64 nanosecond value: octave
	// exponents 0..(64-subBits) with subCount sub-buckets each.
	numBuckets = (64 - subBits + 1) * subCount
)

// Hist is a log-linear histogram over time.Duration values. The zero value
// is ready to use.
type Hist struct {
	counts   [numBuckets]int64
	count    int64
	sum      int64 // nanoseconds; saturates instead of wrapping
	min, max int64
}

// New returns an empty histogram.
func New() *Hist { return &Hist{} }

// bucketIndex maps a nanosecond value to its bucket. Values < subCount get
// exact unit buckets; above, the top subBits+1 significant bits select
// (octave, sub-bucket).
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - subBits // >= 1
	sub := u >> uint(exp-1)        // in [subCount, 2*subCount)
	return exp<<subBits + int(sub) - subCount
}

// bucketLow returns the smallest value mapping to bucket i; bucket i covers
// [bucketLow(i), bucketLow(i+1)).
func bucketLow(i int) int64 {
	exp := i >> subBits
	sub := i & (subCount - 1)
	if exp == 0 {
		return int64(sub)
	}
	return int64(uint64(subCount+sub) << uint(exp-1))
}

// Record adds one observation. Negative durations count as zero (a clock
// step backwards must not corrupt the distribution).
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	if s := h.sum + v; s >= h.sum {
		h.sum = s
	} else {
		h.sum = math.MaxInt64
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.count }

// Min returns the smallest recorded value (0 when empty).
func (h *Hist) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Merge folds o into h. Merging is associative and commutative: merging
// per-worker histograms in any grouping yields the same distribution.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	if s := h.sum + o.sum; s >= h.sum {
		h.sum = s
	} else {
		h.sum = math.MaxInt64
	}
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1): the upper
// edge of the bucket holding the ceil(q*count)-th smallest observation,
// clamped into [Min, Max] so exact extremes stay exact. Empty histograms
// return 0.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			v := bucketLow(i+1) - 1 // inclusive upper edge of bucket i
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}
