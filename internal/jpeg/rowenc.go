package jpeg

import (
	"lepton/internal/bitio"
	"lepton/internal/huffman"
)

// This file is the consumer half of the row-window streaming pipeline: a
// scan re-encoder fed one component block row at a time, in the planar
// order the arithmetic model decodes (all of component 0's rows, then
// component 1's, ...), that still produces the MCU-interleaved scan bytes
// of the original JPEG.
//
// For a single-component scan the two orders coincide and rows are
// Huffman-coded straight into the output. For an interleaved scan they do
// not: the bits of component 0's rows sit byte- and bit-interleaved with
// the later components' bits. Each component therefore Huffman-codes its
// rows into a private *unstuffed* bit queue as they arrive — running its
// own DC-prediction chain and restart resets, which depend only on that
// component — and records its bit length per MCU. Finish then stitches the
// queues: it walks the MCU range once, copying each component's span for
// that MCU into the real (stuffed, seeded, padded) scan writer and
// emitting restart markers between MCUs, exactly where the sequential
// encoder would. The bit sequence is identical to EncodeMCURange over full
// planes; only the buffering differs — coefficients die with their row,
// and what is retained per segment is compressed-domain bits, roughly the
// size of the output itself.

// bitLen returns the total number of bits written to w (whole bytes plus
// the partial byte). Only meaningful for unstuffed writers.
func bitLen(w *bitio.Writer) int64 {
	_, n := w.Partial()
	return int64(w.Len())*8 + int64(n)
}

// copyBits appends n bits read from src starting at bit position *pos to
// dst, advancing *pos. src must be an unstuffed writer that is no longer
// written to.
func copyBits(dst *bitio.Writer, src *bitio.Writer, pos *int64, n uint32) {
	buf := src.Bytes()
	partial, pn := src.Partial()
	p := *pos
	for n > 0 {
		byteIdx := int(p >> 3)
		bitOff := uint8(p & 7)
		var cur byte
		if byteIdx < len(buf) {
			cur = buf[byteIdx]
		} else {
			cur = partial // already MSB-aligned; only the top pn bits are valid
			_ = pn
		}
		take := uint32(8 - bitOff)
		if take > n {
			take = n
		}
		bits := (cur >> (8 - bitOff - uint8(take))) & (1<<take - 1)
		dst.WriteBits(uint32(bits), uint8(take))
		p += int64(take)
		n -= take
	}
	*pos = p
}

// compQueue is one component's pending scan bits.
type compQueue struct {
	w       *bitio.Writer // unstuffed bit queue
	mcuBits []uint32      // bits appended per MCU of the range, in order
	dcTab   *huffman.Encoder
	acTab   *huffman.Encoder
	prevDC  int16
	rstDone int
	rpos    int64 // stitch read cursor
}

// StreamEncBuffers is reusable backing storage for a StreamScanEncoder's
// per-component bit queues; pooling it across conversions removes the
// queue allocations from the steady state.
type StreamEncBuffers struct {
	ws   [MaxComponents]*bitio.Writer
	lens [MaxComponents][]uint32
}

// StreamScanEncoder re-creates the entropy-coded bytes of an MCU range
// from block rows delivered in planar component order (see the file
// comment). Create one per thread segment, feed it with ConsumeGroup, and
// call Finish once every component's rows have been consumed.
type StreamScanEncoder struct {
	f          *File
	enc        *ScanEncoder
	start, end int
	queues     []compQueue // nil for single-component scans
}

// NewStreamScanEncoder builds a streaming encoder for MCUs [start, end) of
// f's scan, seeded from the range's Huffman handover word. padBit and
// rstCount are the scan-wide values recorded in the container. bufs, when
// non-nil, supplies pooled queue storage.
func NewStreamScanEncoder(f *File, padBit uint8, rstCount int, start, end int, seed MCUPos, bufs *StreamEncBuffers) (*StreamScanEncoder, error) {
	enc, err := NewScanEncoder(f, padBit, rstCount)
	if err != nil {
		return nil, err
	}
	enc.Seed(seed)
	se := &StreamScanEncoder{f: f, enc: enc, start: start, end: end}
	if len(f.Components) == 1 {
		return se, nil
	}
	se.queues = make([]compQueue, len(f.Components))
	for ci := range f.Components {
		c := &f.Components[ci]
		q := &se.queues[ci]
		if bufs != nil && bufs.ws[ci] != nil {
			q.w = bufs.ws[ci]
			q.w.Reset()
			q.mcuBits = bufs.lens[ci][:0]
		} else {
			q.w = bitio.NewRawWriter()
		}
		q.dcTab = enc.dcEnc[c.TD]
		q.acTab = enc.acEnc[c.TA]
		q.prevDC = seed.PrevDC[ci]
		q.rstDone = int(seed.RSTSeen)
	}
	return se, nil
}

// ReleaseBuffers returns the queue storage to bufs for reuse. Call it only
// once the encoder (and any slice returned by Finish — which aliases the
// sequential writer, not the queues) is no longer needed.
func (se *StreamScanEncoder) ReleaseBuffers(bufs *StreamEncBuffers) {
	if bufs == nil {
		return
	}
	for ci := range se.queues {
		bufs.ws[ci] = se.queues[ci].w
		bufs.lens[ci] = se.queues[ci].mcuBits
	}
}

// restartCheck mirrors ScanEncoder.maybeRestart for a private DC chain: at
// the boundary before MCU m the sequential encoder would emit a restart
// marker and reset every component's predictor. Only the reset matters
// here; the marker itself is emitted during stitching.
func (q *compQueue) restartCheck(m, ri, rstLimit int) {
	if ri == 0 || m%ri != 0 || q.rstDone >= rstLimit {
		return
	}
	q.rstDone++
	q.prevDC = 0
}

// ConsumeGroup appends component ci's share of MCU row mcuRow. rows holds
// the component's block rows covering that MCU row (V rows for interleaved
// scans, one for single-component), each BlocksWide*64 coefficients; they
// are only read during the call.
func (se *StreamScanEncoder) ConsumeGroup(ci, mcuRow int, rows [][]int16) error {
	f := se.f
	if se.queues == nil {
		// Planar order is MCU order: encode straight into the seeded,
		// stuffed output writer, restarts included.
		row := rows[0]
		for col := 0; col < f.MCUsWide; col++ {
			m := mcuRow*f.MCUsWide + col
			if m > se.start {
				if err := se.enc.maybeRestart(m); err != nil {
					return err
				}
			}
			if err := se.enc.encodeBlock(0, row[col*64:col*64+64]); err != nil {
				return err
			}
		}
		return nil
	}
	c := &f.Components[ci]
	q := &se.queues[ci]
	for mcuCol := 0; mcuCol < f.MCUsWide; mcuCol++ {
		m := mcuRow*f.MCUsWide + mcuCol
		if m > se.start {
			q.restartCheck(m, se.enc.ri, se.enc.rstLimit)
		}
		before := bitLen(q.w)
		for v := 0; v < c.V; v++ {
			for h := 0; h < c.H; h++ {
				bc := mcuCol*c.H + h
				if err := encodeBlockTo(q.w, q.dcTab, q.acTab, &q.prevDC, rows[v][bc*64:bc*64+64]); err != nil {
					return err
				}
			}
		}
		q.mcuBits = append(q.mcuBits, uint32(bitLen(q.w)-before))
	}
	return nil
}

// Finish completes the range: for interleaved scans it stitches the
// per-component queues into the output in MCU order, inserting restart
// markers (with padding) exactly where the sequential encoder would. When
// the range ends mid-scan, a restart marker belonging to the boundary is
// appended; when atScanEnd is set, the final byte is padded and the
// verbatim tail appended. The returned bytes alias the encoder's buffer.
func (se *StreamScanEncoder) Finish(tail []byte, atScanEnd bool) ([]byte, error) {
	if se.queues != nil {
		idx := 0
		for m := se.start; m < se.end; m++ {
			if m > se.start {
				if err := se.enc.maybeRestart(m); err != nil {
					return nil, err
				}
			}
			for ci := range se.queues {
				q := &se.queues[ci]
				copyBits(se.enc.w, q.w, &q.rpos, q.mcuBits[idx])
			}
			idx++
		}
	}
	if se.end < se.f.TotalMCUs() {
		if err := se.enc.maybeRestart(se.end); err != nil {
			return nil, err
		}
	}
	if atScanEnd {
		se.enc.Finish(tail)
	}
	return se.enc.Bytes(), nil
}
