package jpeg

import (
	"fmt"
	"math/bits"

	"lepton/internal/bitio"
	"lepton/internal/dct"
	"lepton/internal/huffman"
)

// ScanEncoder re-creates the entropy-coded bytes of a baseline JPEG scan
// from quantized coefficients. It can be seeded from a Huffman handover word
// (partial byte, bit offset, per-channel DC predictors, restart state) so
// that independent threads or chunks each regenerate their own byte range of
// the original file (paper §3.4).
type ScanEncoder struct {
	f     *File
	w     *bitio.Writer
	dcEnc [4]*huffman.Encoder
	acEnc [4]*huffman.Encoder

	prevDC   [MaxComponents]int16
	padBit   uint8
	ri       int
	rstLimit int // total restart markers present in the original scan
	rstDone  int // restart markers emitted (or skipped as before-our-segment)
}

// NewScanEncoder builds an encoder for f's scan. padBit is the original
// encoder's pad bit; rstCount the number of restart markers in the original
// scan.
func NewScanEncoder(f *File, padBit uint8, rstCount int) (*ScanEncoder, error) {
	e := &ScanEncoder{
		f:        f,
		w:        bitio.NewWriter(),
		padBit:   padBit,
		ri:       f.RestartInterval,
		rstLimit: rstCount,
	}
	for i := 0; i < 4; i++ {
		if f.DC[i] != nil {
			enc, err := huffman.NewEncoder(f.DC[i])
			if err != nil {
				return nil, err
			}
			e.dcEnc[i] = enc
		}
		if f.AC[i] != nil {
			enc, err := huffman.NewEncoder(f.AC[i])
			if err != nil {
				return nil, err
			}
			e.acEnc[i] = enc
		}
	}
	return e, nil
}

// Seed initializes mid-scan state from a handover word. It must be called
// before any MCU is encoded.
func (e *ScanEncoder) Seed(pos MCUPos) {
	e.w.Seed(pos.Partial, pos.BitOff)
	e.prevDC = pos.PrevDC
	e.rstDone = int(pos.RSTSeen)
}

// SetLimit bounds the output length in bytes (chunk spill clipping).
func (e *ScanEncoder) SetLimit(n int) { e.w.SetLimit(n) }

// Writer exposes the underlying bit writer (for inspection in tests).
func (e *ScanEncoder) Writer() *bitio.Writer { return e.w }

// EncodeMCURange encodes MCUs [start, end) of the scan, including any
// restart marker that belongs *between* MCUs of the range or immediately
// after its last MCU (the position of MCU `end` is recorded after that
// marker, so the marker belongs to this range).
func (e *ScanEncoder) EncodeMCURange(s *Scan, start, end int) error {
	total := e.f.TotalMCUs()
	for mcu := start; mcu < end; mcu++ {
		if mcu > start {
			if err := e.maybeRestart(mcu); err != nil {
				return err
			}
		}
		if err := e.encodeMCU(s, mcu); err != nil {
			return err
		}
	}
	if end < total {
		if err := e.maybeRestart(end); err != nil {
			return err
		}
	}
	return nil
}

func (e *ScanEncoder) maybeRestart(mcu int) error {
	if e.ri == 0 || mcu%e.ri != 0 || e.rstDone >= e.rstLimit {
		return nil
	}
	e.w.AlignPad(e.padBit)
	e.w.WriteMarker(mRST0 + byte(e.rstDone%8))
	e.rstDone++
	e.prevDC = [MaxComponents]int16{}
	return nil
}

// Finish pads the final byte and appends the verbatim scan tail.
func (e *ScanEncoder) Finish(tail []byte) {
	if !e.w.Aligned() {
		e.w.AlignPad(e.padBit)
	}
	e.w.AppendRaw(tail)
}

// Bytes returns the encoded output so far.
func (e *ScanEncoder) Bytes() []byte { return e.w.Bytes() }

func (e *ScanEncoder) encodeMCU(s *Scan, mcu int) error {
	f := e.f
	if len(f.Components) == 1 {
		c := &f.Components[0]
		row := mcu / c.BlocksWide
		col := mcu % c.BlocksWide
		b := (row*c.BlocksWide + col) * 64
		return e.encodeBlock(0, s.Coeff[0][b:b+64])
	}
	mcuRow := mcu / f.MCUsWide
	mcuCol := mcu % f.MCUsWide
	for ci := range f.Components {
		c := &f.Components[ci]
		for v := 0; v < c.V; v++ {
			for h := 0; h < c.H; h++ {
				br := mcuRow*c.V + v
				bc := mcuCol*c.H + h
				b := (br*c.BlocksWide + bc) * 64
				if err := e.encodeBlock(ci, s.Coeff[ci][b:b+64]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// category returns the JPEG magnitude category (bit length) of v.
func category(v int32) uint8 {
	if v < 0 {
		v = -v
	}
	var s uint8
	for v != 0 {
		v >>= 1
		s++
	}
	return s
}

func (e *ScanEncoder) encodeBlock(comp int, blk []int16) error {
	c := &e.f.Components[comp]
	return encodeBlockTo(e.w, e.dcEnc[c.TD], e.acEnc[c.TA], &e.prevDC[comp], blk)
}

// encodeBlockTo Huffman-codes one block into w: the DC delta against
// *prevDC (which it updates) followed by the AC run/size symbols. It is the
// single block coder behind both the sequential ScanEncoder and the
// streaming per-component bit queues, so the two paths cannot drift.
func encodeBlockTo(w *bitio.Writer, dcTab, acTab *huffman.Encoder, prevDC *int16, blk []int16) error {
	diff := int32(blk[0]) - int32(*prevDC)
	*prevDC = blk[0]
	sCat := category(diff)
	// Codeword and value bits go out in one batched write: the category code
	// is at most 16 bits and the value at most 11, so both fit one word.
	dcCode := dcTab.Lookup(sCat)
	if dcCode.Len == 0 {
		return fmt.Errorf("DC: huffman: symbol %#02x has no code", sCat)
	}
	v := diff
	if v < 0 {
		v += int32(1<<sCat) - 1
	}
	w.WriteBits(uint32(dcCode.Bits)<<sCat|uint32(v), dcCode.Len+sCat)

	// Occupancy-driven AC loop: a vectorized scan finds the nonzero
	// coefficients, the zigzag bit permute orders them, and the loop visits
	// only set bits — a sparse block costs its population count, not 63
	// table-indexed loads. Zero runs fall out of the gaps between
	// consecutive set bits, emitting the identical ZRL/EOB sequence the
	// position walk produced. (zigzagTable matches dct.Zigzag; a test pins
	// the two tables together since the mask permute relies on it.)
	zmask := dct.ZigzagMask(dct.NonzeroMask(blk)) >> 1 // bit k-1 = zigzag position k
	prev := 0
	for m := zmask; m != 0; m &= m - 1 {
		k := bits.TrailingZeros64(m) + 1
		run := k - prev - 1
		prev = k
		for run >= 16 {
			if err := acTab.Encode(w, 0xF0); err != nil { // ZRL
				return fmt.Errorf("ZRL: %w", err)
			}
			run -= 16
		}
		v := int32(blk[zigzagTable[k]])
		size := category(v)
		if size > 10 {
			return reject(ReasonACRange, "AC magnitude %d", v)
		}
		sym := byte(run<<4) | size
		acCode := acTab.Lookup(sym)
		if acCode.Len == 0 {
			return fmt.Errorf("AC: huffman: symbol %#02x has no code", sym)
		}
		if v < 0 {
			v += int32(1<<size) - 1
		}
		// Run/size code plus value bits in one batched write (<= 26 bits).
		w.WriteBits(uint32(acCode.Bits)<<size|uint32(v), acCode.Len+size)
	}
	if prev != 63 {
		if err := acTab.Encode(w, 0x00); err != nil { // EOB
			return fmt.Errorf("EOB: %w", err)
		}
	}
	return nil
}

// EncodeScan re-creates the full entropy-coded segment of s and returns it.
// The result must be byte-identical to s.File.ScanData for a well-formed
// input; Lepton's admission control depends on verifying exactly that.
func EncodeScan(s *Scan) ([]byte, error) {
	e, err := NewScanEncoder(s.File, s.PadBit, s.RSTCount)
	if err != nil {
		return nil, err
	}
	if err := e.EncodeMCURange(s, 0, s.File.TotalMCUs()); err != nil {
		return nil, err
	}
	e.Finish(s.Tail)
	return e.Bytes(), nil
}
