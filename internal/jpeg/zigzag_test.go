package jpeg

import (
	"testing"

	"lepton/internal/dct"
)

// TestZigzagTableMatchesDCT pins this package's wire-format zigzag table to
// dct.Zigzag: encodeBlockTo's occupancy-mask iteration permutes raster
// masks with dct.ZigzagMask (built from dct.Unzigzag) but indexes
// coefficients through zigzagTable, which is only sound while the two
// tables are the same permutation.
func TestZigzagTableMatchesDCT(t *testing.T) {
	for k := 0; k < 64; k++ {
		if zigzagTable[k] != dct.Zigzag[k] {
			t.Fatalf("zigzagTable[%d] = %d, dct.Zigzag[%d] = %d", k, zigzagTable[k], k, dct.Zigzag[k])
		}
	}
}
