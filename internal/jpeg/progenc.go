package jpeg

import (
	"fmt"

	"lepton/internal/bitio"
	"lepton/internal/huffman"
)

// Progressive scan re-encoding. For files this package accepts (spectral
// selection only), the encoding of each scan is fully determined by the
// coefficients, the scan script, and the maximal-EOB-run convention every
// known encoder uses — so re-encoding is bit-exact.

// encodeProgDC regenerates a DC scan's entropy bytes.
func encodeProgDC(f *File, scan *ProgScan, coeff [][]int16) ([]byte, error) {
	w := bitio.NewWriter()
	enc := map[int]*huffman.Encoder{}
	for _, ci := range scan.Comps {
		td := f.Components[ci].TD
		e, err := huffman.NewEncoder(f.DC[td])
		if err != nil {
			return nil, err
		}
		enc[ci] = e
	}
	var prevDC [MaxComponents]int16
	ri := f.RestartInterval
	total, iter := progMCUIter(f, scan)
	rstDone := 0
	for m := 0; m < total; m++ {
		if ri > 0 && m > 0 && m%ri == 0 && rstDone < scan.RSTCount {
			w.AlignPad(scan.PadBit)
			w.WriteMarker(mRST0 + byte(rstDone%8))
			rstDone++
			prevDC = [MaxComponents]int16{}
		}
		for _, bl := range iter(m) {
			dc := coeff[bl.comp][bl.off]
			diff := int32(dc) - int32(prevDC[bl.comp])
			prevDC[bl.comp] = dc
			s := category(diff)
			if err := enc[bl.comp].Encode(w, s); err != nil {
				return nil, fmt.Errorf("progressive DC: %w", err)
			}
			if s > 0 {
				v := diff
				if v < 0 {
					v += int32(1<<s) - 1
				}
				w.WriteBits(uint32(v), s)
			}
		}
	}
	w.AlignPad(scan.PadBit)
	w.AppendRaw(scan.Tail)
	return w.Bytes(), nil
}

// encodeProgAC regenerates an AC band scan with maximal EOB runs (capped
// at 0x7FFF, the T.81 limit).
func encodeProgAC(f *File, scan *ProgScan, plane []int16, ci int) ([]byte, error) {
	ta := f.Components[ci].TA
	enc, err := huffman.NewEncoder(f.AC[ta])
	if err != nil {
		return nil, err
	}
	w := bitio.NewWriter()
	bw := f.Components[ci].BlocksWide
	uw, uh := unpaddedBlocks(f, ci)
	ri := f.RestartInterval
	eobrun := 0
	rstDone := 0

	flushEOB := func() error {
		for eobrun > 0 {
			n := eobrun
			if n > 0x7FFF {
				n = 0x7FFF
			}
			r := 0
			for (1 << (r + 1)) <= n {
				r++
			}
			if err := enc.Encode(w, byte(r<<4)); err != nil {
				return fmt.Errorf("EOB run: %w", err)
			}
			w.WriteBits(uint32(n-(1<<r)), uint8(r))
			eobrun -= n
		}
		return nil
	}

	for m := 0; m < uw*uh; m++ {
		if ri > 0 && m > 0 && m%ri == 0 {
			if err := flushEOB(); err != nil {
				return nil, err
			}
			if rstDone < scan.RSTCount {
				w.AlignPad(scan.PadBit)
				w.WriteMarker(mRST0 + byte(rstDone%8))
				rstDone++
			}
		}
		row := m / uw
		col := m % uw
		base := (row*bw + col) * 64
		// Find the last nonzero coefficient in the band.
		last := scan.Ss - 1
		for k := scan.Se; k >= scan.Ss; k-- {
			if plane[base+int(zigzagTable[k])] != 0 {
				last = k
				break
			}
		}
		if last < scan.Ss {
			eobrun++
			if eobrun == 0x7FFF {
				if err := flushEOB(); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := flushEOB(); err != nil {
			return nil, err
		}
		run := 0
		for k := scan.Ss; k <= last; k++ {
			v := int32(plane[base+int(zigzagTable[k])])
			if v == 0 {
				run++
				continue
			}
			for run >= 16 {
				if err := enc.Encode(w, 0xF0); err != nil {
					return nil, fmt.Errorf("ZRL: %w", err)
				}
				run -= 16
			}
			size := category(v)
			if size > 10 {
				return nil, reject(ReasonACRange, "AC magnitude %d", v)
			}
			if err := enc.Encode(w, byte(run<<4)|size); err != nil {
				return nil, fmt.Errorf("AC: %w", err)
			}
			if v < 0 {
				v += int32(1<<size) - 1
			}
			w.WriteBits(uint32(v), size)
			run = 0
		}
		if last < scan.Se {
			eobrun++
			if eobrun == 0x7FFF {
				if err := flushEOB(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flushEOB(); err != nil {
		return nil, err
	}
	w.AlignPad(scan.PadBit)
	w.AppendRaw(scan.Tail)
	return w.Bytes(), nil
}

// ProgressiveSpec configures the synthetic progressive writer.
type ProgressiveSpec struct {
	EncodeSpec
	// Bands for the luma AC scans (split points in zigzag indices); chroma
	// components each get one full 1..63 scan. Nil selects {1..5, 6..63}.
	LumaBands [][2]int
}

// WriteProgressive synthesizes a spectral-selection progressive JPEG from
// quantized coefficients: one interleaved DC scan, then AC band scans. It
// builds optimal Huffman tables for each scan's actual symbol statistics
// (progressive needs EOBn symbols absent from the Annex K tables).
func WriteProgressive(spec *ProgressiveSpec, coeff [][]int16) ([]byte, error) {
	f, err := fileFromSpec(&spec.EncodeSpec)
	if err != nil {
		return nil, err
	}
	bands := spec.LumaBands
	if bands == nil {
		bands = [][2]int{{1, 5}, {6, 63}}
	}
	// Build the scan list.
	var scans []ProgScan
	dcComps := make([]int, len(f.Components))
	for i := range dcComps {
		dcComps[i] = i
	}
	scans = append(scans, ProgScan{Comps: dcComps, Ss: 0, Se: 0, PadBit: spec.PadBit})
	for _, b := range bands {
		scans = append(scans, ProgScan{Comps: []int{0}, Ss: b[0], Se: b[1], PadBit: spec.PadBit})
	}
	for ci := 1; ci < len(f.Components); ci++ {
		scans = append(scans, ProgScan{Comps: []int{ci}, Ss: 1, Se: 63, PadBit: spec.PadBit})
	}
	// Restart counts per scan.
	if f.RestartInterval > 0 {
		for i := range scans {
			var total int
			if scans[i].Ss == 0 {
				total = f.TotalMCUs()
			} else {
				uw, uh := unpaddedBlocks(f, scans[i].Comps[0])
				total = uw * uh
			}
			scans[i].RSTCount = (total - 1) / f.RestartInterval
		}
	}

	// Tally symbol frequencies to build per-class optimal tables: one DC
	// table for luma, one for chroma, likewise AC.
	dcFreq, acFreq := progFrequencies(f, scans, coeff)
	for i := 0; i < 2; i++ {
		if hasAnySym(&dcFreq[i]) {
			s, err := huffman.BuildOptimal(&dcFreq[i])
			if err != nil {
				return nil, err
			}
			f.DC[i] = s
		} else {
			f.DC[i] = &huffman.StdDCLuminance
		}
		if hasAnySym(&acFreq[i]) {
			s, err := huffman.BuildOptimal(&acFreq[i])
			if err != nil {
				return nil, err
			}
			f.AC[i] = s
		} else {
			f.AC[i] = &huffman.StdACLuminance
		}
	}
	for i := range f.Components {
		tid := byte(0)
		if i > 0 {
			tid = 1
		}
		f.Components[i].TD = tid
		f.Components[i].TA = tid
	}
	for si := range scans {
		scan := &scans[si]
		scan.Sel = scan.Sel[:0]
		for _, ci := range scan.Comps {
			c := &f.Components[ci]
			scan.Sel = append(scan.Sel, c.TD<<4|c.TA)
		}
	}

	// Emit: header (SOF2), then scans with their SOS headers.
	hdr := buildProgHeader(f, &spec.EncodeSpec)
	out := append([]byte(nil), hdr...)
	for si := range scans {
		scan := &scans[si]
		sos := buildProgSOS(f, scan)
		if si > 0 {
			scan.HeaderBytes = sos
		}
		out = append(out, sos...)
		var data []byte
		var err error
		if scan.Ss == 0 {
			data, err = encodeProgDC(f, scan, coeff)
		} else {
			data, err = encodeProgAC(f, scan, coeff[scan.Comps[0]], scan.Comps[0])
		}
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return append(out, 0xFF, mEOI), nil
}

func hasAnySym(freq *[256]int64) bool {
	n := 0
	for _, v := range freq {
		if v > 0 {
			n++
		}
	}
	return n >= 2
}

// progFrequencies counts the Huffman symbols each scan will emit, grouped
// into luma (table 0) and chroma (table 1) classes.
func progFrequencies(f *File, scans []ProgScan, coeff [][]int16) (dc, ac [2][256]int64) {
	for si := range scans {
		scan := &scans[si]
		if scan.Ss == 0 {
			var prevDC [MaxComponents]int16
			total, iter := progMCUIter(f, scan)
			ri := f.RestartInterval
			for m := 0; m < total; m++ {
				if ri > 0 && m > 0 && m%ri == 0 {
					prevDC = [MaxComponents]int16{}
				}
				for _, bl := range iter(m) {
					d := coeff[bl.comp][bl.off]
					diff := int32(d) - int32(prevDC[bl.comp])
					prevDC[bl.comp] = d
					dc[tableClass(bl.comp)][category(diff)]++
				}
			}
			continue
		}
		ci := scan.Comps[0]
		cls := tableClass(ci)
		bw := f.Components[ci].BlocksWide
		uw, uh := unpaddedBlocks(f, ci)
		plane := coeff[ci]
		eobrun := 0
		ri := f.RestartInterval
		flush := func() {
			for eobrun > 0 {
				n := eobrun
				if n > 0x7FFF {
					n = 0x7FFF
				}
				r := 0
				for (1 << (r + 1)) <= n {
					r++
				}
				ac[cls][byte(r<<4)]++
				eobrun -= n
			}
		}
		for m := 0; m < uw*uh; m++ {
			if ri > 0 && m > 0 && m%ri == 0 {
				flush()
			}
			base := ((m/uw)*bw + m%uw) * 64
			last := scan.Ss - 1
			for k := scan.Se; k >= scan.Ss; k-- {
				if plane[base+int(zigzagTable[k])] != 0 {
					last = k
					break
				}
			}
			if last < scan.Ss {
				eobrun++
				if eobrun == 0x7FFF {
					flush()
				}
				continue
			}
			flush()
			run := 0
			for k := scan.Ss; k <= last; k++ {
				v := int32(plane[base+int(zigzagTable[k])])
				if v == 0 {
					run++
					continue
				}
				for run >= 16 {
					ac[cls][0xF0]++
					run -= 16
				}
				ac[cls][byte(run<<4)|category(v)]++
				run = 0
			}
			if last < scan.Se {
				eobrun++
				if eobrun == 0x7FFF {
					flush()
				}
			}
		}
		flush()
	}
	return dc, ac
}

func tableClass(ci int) int {
	if ci == 0 {
		return 0
	}
	return 1
}

// buildProgHeader emits SOI..DHT (everything before the first SOS).
func buildProgHeader(f *File, spec *EncodeSpec) []byte {
	hdr := []byte{0xFF, mSOI}
	hdr = appendSegment(hdr, mAPP0, []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0})
	written := [4]bool{}
	for _, c := range f.Components {
		if written[c.TQ] {
			continue
		}
		written[c.TQ] = true
		payload := make([]byte, 65)
		payload[0] = c.TQ
		for z := 0; z < 64; z++ {
			payload[1+z] = byte(f.Quant[c.TQ][zigzagTable[z]])
		}
		hdr = appendSegment(hdr, mDQT, payload)
	}
	sof := []byte{8,
		byte(f.Height >> 8), byte(f.Height),
		byte(f.Width >> 8), byte(f.Width),
		byte(len(f.Components)),
	}
	for _, c := range f.Components {
		sof = append(sof, c.ID, byte(c.H<<4|c.V), c.TQ)
	}
	hdr = appendSegment(hdr, mSOF2, sof)
	wdc, wac := [4]bool{}, [4]bool{}
	for _, c := range f.Components {
		if !wdc[c.TD] {
			wdc[c.TD] = true
			hdr = appendSegment(hdr, mDHT, dhtPayload(0, c.TD, f.DC[c.TD]))
		}
		if !wac[c.TA] {
			wac[c.TA] = true
			hdr = appendSegment(hdr, mDHT, dhtPayload(1, c.TA, f.AC[c.TA]))
		}
	}
	if f.RestartInterval > 0 {
		hdr = appendSegment(hdr, mDRI, []byte{byte(f.RestartInterval >> 8), byte(f.RestartInterval)})
	}
	return hdr
}

func buildProgSOS(f *File, scan *ProgScan) []byte {
	sos := []byte{byte(len(scan.Comps))}
	for _, ci := range scan.Comps {
		c := &f.Components[ci]
		sos = append(sos, c.ID, c.TD<<4|c.TA)
	}
	sos = append(sos, byte(scan.Ss), byte(scan.Se), 0)
	return appendSegment(nil, mSOS, sos)
}
