package jpeg

import (
	"bytes"
	"errors"
	"fmt"

	"lepton/internal/bitio"
	"lepton/internal/huffman"
)

// Progressive JPEG support (SOF2), restricted to spectral selection
// (Ah = Al = 0). The deployed Lepton intentionally rejected progressive
// files "for simplicity" even though the binary could handle them (§6.2);
// this implements that optional capability for the spectral-selection
// subset: a DC scan followed by per-component AC band scans, each
// re-encodable bit-exactly (including EOB-run coding).
//
// Successive-approximation scans (Ah or Al nonzero) remain rejected: their
// refinement coding has encoder freedom this round-trip cannot pin down
// without the original encoder's implementation.

// ProgScan is one scan of a progressive file.
type ProgScan struct {
	// HeaderBytes are the verbatim marker segments preceding this scan's
	// entropy data (DHT/DRI/SOS...), excluded for the first scan whose
	// headers live in ProgFile.Header.
	HeaderBytes []byte
	// Comps indexes Frame components participating in this scan.
	Comps []int
	// Sel holds each scan component's Huffman table selectors (Td<<4|Ta),
	// parallel to Comps; applied before decoding or re-encoding the scan.
	Sel []byte
	// Spectral band.
	Ss, Se int
	// Entropy-coded bytes of this scan.
	Data []byte
	// PadBit / PadSeen / RSTCount / Tail mirror the baseline Scan fields,
	// per scan.
	PadBit   uint8
	PadSeen  bool
	RSTCount int
	Tail     []byte
}

// ProgFile is a parsed spectral-selection progressive JPEG.
type ProgFile struct {
	Frame *File
	// Header holds SOI through the first SOS header, verbatim.
	Header  []byte
	Scans   []ProgScan
	Trailer []byte
}

// unpaddedBlocks returns the block geometry of a component for
// non-interleaved scans (no padding to sampling-factor multiples).
func unpaddedBlocks(f *File, ci int) (w, h int) {
	c := &f.Components[ci]
	compW := (f.Width*c.H + f.HMax - 1) / f.HMax
	compH := (f.Height*c.V + f.VMax - 1) / f.VMax
	return (compW + 7) / 8, (compH + 7) / 8
}

// ParseProgressive parses a progressive JPEG. Unlike Parse it walks every
// scan; unsupported features are rejected with classified reasons.
func ParseProgressive(data []byte, memLimit int64) (*ProgFile, error) {
	if len(data) < 4 || data[0] != 0xFF || data[1] != mSOI {
		return nil, reject(ReasonNotImage, "missing SOI marker")
	}
	p := &ProgFile{Frame: &File{}}
	f := p.Frame
	sawSOF := false
	pos := 2
	segStart := 2 // start of the current inter-scan header region
	for {
		if pos >= len(data) {
			return nil, reject(ReasonTruncated, "EOF in progressive structure")
		}
		if data[pos] != 0xFF {
			return nil, reject(ReasonUnsupported, "garbage byte %#02x at %d", data[pos], pos)
		}
		for pos < len(data) && data[pos] == 0xFF {
			pos++
		}
		if pos >= len(data) {
			return nil, reject(ReasonTruncated, "EOF in marker")
		}
		marker := data[pos]
		pos++
		switch {
		case marker == mSOS:
			if !sawSOF {
				return nil, reject(ReasonUnsupported, "SOS before SOF")
			}
			scan, segEnd, err := p.parseProgSOS(data, pos)
			if err != nil {
				return nil, err
			}
			if len(p.Scans) == 0 {
				p.Header = data[:segEnd]
			} else {
				scan.HeaderBytes = data[segStart:segEnd]
			}
			scanEnd, err := findScanEnd(data, segEnd)
			if err != nil {
				return nil, err
			}
			scan.Data = data[segEnd:scanEnd]
			p.Scans = append(p.Scans, scan)
			pos = scanEnd
			segStart = scanEnd
		case marker == mEOI:
			if len(p.Scans) == 0 {
				return nil, reject(ReasonUnsupported, "EOI before any scan")
			}
			p.Trailer = data[segStart:]
			return p, nil
		case marker == mSOF2:
			n, err := f.parseSOF(data, pos, memLimit, false)
			if err != nil {
				return nil, err
			}
			sawSOF = true
			pos += n
		case marker == mSOF0 || marker == mSOF1:
			return nil, reject(ReasonUnsupported, "baseline SOF in progressive parser")
		case marker == mDQT:
			n, err := f.parseDQT(data, pos)
			if err != nil {
				return nil, err
			}
			pos += n
		case marker == mDHT:
			n, err := f.parseDHT(data, pos)
			if err != nil {
				return nil, err
			}
			pos += n
		case marker == mDRI:
			if pos+4 > len(data) || u16(data[pos:]) != 4 {
				return nil, reject(ReasonUnsupported, "bad DRI length")
			}
			f.RestartInterval = u16(data[pos+2:])
			pos += 4
		case marker == mDAC || marker == mSOF9 || marker == mSOFA:
			return nil, reject(ReasonUnsupported, "arithmetic-coded progressive")
		case marker == mSOI, marker == mDNL:
			return nil, reject(ReasonUnsupported, "marker %#02x", marker)
		case marker >= mRST0 && marker <= mRST7:
			return nil, reject(ReasonUnsupported, "restart marker outside scan")
		case marker == 0x01 || marker == 0x00:
			// TEM / stuffed zero: no payload.
		default:
			if pos+2 > len(data) {
				return nil, reject(ReasonTruncated, "EOF in segment length")
			}
			l := u16(data[pos:])
			if l < 2 || pos+l > len(data) {
				return nil, reject(ReasonTruncated, "segment overruns file")
			}
			pos += l
		}
	}
}

// parseProgSOS validates a progressive scan header; returns the scan
// skeleton and the offset where entropy data begins.
func (p *ProgFile) parseProgSOS(data []byte, pos int) (ProgScan, int, error) {
	f := p.Frame
	var scan ProgScan
	if pos+2 > len(data) {
		return scan, 0, reject(ReasonTruncated, "EOF in SOS")
	}
	l := u16(data[pos:])
	if pos+l > len(data) || l < 3 {
		return scan, 0, reject(ReasonTruncated, "SOS overruns file")
	}
	seg := data[pos+2 : pos+l]
	ns := int(seg[0])
	if ns < 1 || ns > len(f.Components) || len(seg) < 1+2*ns+3 {
		return scan, 0, reject(ReasonUnsupported, "scan with %d components", ns)
	}
	for i := 0; i < ns; i++ {
		cs := seg[1+2*i]
		sel := seg[2+2*i]
		if sel>>4 > 3 || sel&15 > 3 {
			return scan, 0, reject(ReasonUnsupported, "table selector out of range")
		}
		found := false
		for j := range f.Components {
			if f.Components[j].ID == cs {
				scan.Comps = append(scan.Comps, j)
				scan.Sel = append(scan.Sel, sel)
				found = true
				break
			}
		}
		if !found {
			return scan, 0, reject(ReasonUnsupported, "scan component %d not in frame", cs)
		}
	}
	scan.Ss = int(seg[1+2*ns])
	scan.Se = int(seg[2+2*ns])
	ah := seg[3+2*ns] >> 4
	al := seg[3+2*ns] & 15
	if ah != 0 || al != 0 {
		return scan, 0, reject(ReasonProgressive,
			"successive approximation (Ah=%d Al=%d) unsupported", ah, al)
	}
	if scan.Ss > scan.Se || scan.Se > 63 {
		return scan, 0, reject(ReasonUnsupported, "spectral band %d..%d", scan.Ss, scan.Se)
	}
	if scan.Ss == 0 && scan.Se != 0 {
		return scan, 0, reject(ReasonUnsupported, "mixed DC/AC scan")
	}
	if scan.Ss > 0 && len(scan.Comps) != 1 {
		return scan, 0, reject(ReasonUnsupported, "interleaved AC scan")
	}
	return scan, pos + l, nil
}

// ParseProgressiveHeader parses a progressive file's leading header bytes
// (SOI through the first SOS, as stored in a Lepton container) and returns
// the frame structure. Scan parameters come from the container's per-scan
// records, not from this header.
func ParseProgressiveHeader(hdr []byte) (*File, error) {
	// Append a minimal empty body so the scan-walking parser terminates:
	// the first scan gets empty Data and the loop ends at EOI.
	data := append(append([]byte(nil), hdr...), 0xFF, mEOI)
	p, err := ParseProgressive(data, 0)
	if err != nil {
		return nil, err
	}
	return p.Frame, nil
}

// DecodeProgressive entropy-decodes every scan into full coefficient
// planes (padded geometry, matching baseline layout).
func DecodeProgressive(p *ProgFile) ([][]int16, error) {
	f := p.Frame
	coeff := make([][]int16, len(f.Components))
	for i := range f.Components {
		c := &f.Components[i]
		coeff[i] = make([]int16, c.BlocksWide*c.BlocksHigh*64)
	}
	seenDC := false
	covered := make([][64]bool, len(f.Components))
	for si := range p.Scans {
		scan := &p.Scans[si]
		// Scan headers may redefine Huffman tables; re-parse them.
		if len(scan.HeaderBytes) > 0 {
			if err := reparseTables(f, scan.HeaderBytes); err != nil {
				return nil, err
			}
		}
		scan.applySelectors(f)
		if scan.Ss == 0 {
			if err := decodeProgDC(f, scan, coeff); err != nil {
				return nil, err
			}
			seenDC = true
			for _, ci := range scan.Comps {
				covered[ci][0] = true
			}
		} else {
			if !seenDC {
				return nil, reject(ReasonUnsupported, "AC scan before DC scan")
			}
			ci := scan.Comps[0]
			for k := scan.Ss; k <= scan.Se; k++ {
				if covered[ci][k] {
					return nil, reject(ReasonUnsupported, "band %d..%d re-covers coefficients", scan.Ss, scan.Se)
				}
				covered[ci][k] = true
			}
			if err := decodeProgAC(f, scan, coeff[ci], ci); err != nil {
				return nil, err
			}
		}
	}
	return coeff, nil
}

// reparseTables processes DHT/DRI segments in a verbatim header region
// (inter-scan headers, or the leading file header when restoring initial
// table state).
func reparseTables(f *File, hdr []byte) error {
	pos := 0
	for pos+1 < len(hdr) {
		if hdr[pos] != 0xFF {
			return reject(ReasonUnsupported, "garbage between scans")
		}
		for pos < len(hdr) && hdr[pos] == 0xFF {
			pos++
		}
		if pos >= len(hdr) {
			break
		}
		marker := hdr[pos]
		pos++
		switch {
		case marker == mDHT:
			n, err := f.parseDHT(hdr, pos)
			if err != nil {
				return err
			}
			pos += n
		case marker == mDRI:
			if pos+4 > len(hdr) {
				return reject(ReasonTruncated, "short DRI")
			}
			f.RestartInterval = u16(hdr[pos+2:])
			pos += 4
		case marker == mSOI || marker == mEOI || marker == 0x01 || marker == 0x00 ||
			(marker >= mRST0 && marker <= mRST7):
			// No-payload markers.
		default:
			// Everything else (SOS, SOF, DQT, APPn, COM...) was parsed when
			// the file was first walked; skip by segment length.
			if pos+2 > len(hdr) {
				return reject(ReasonTruncated, "short segment")
			}
			l := u16(hdr[pos:])
			if l < 2 || pos+l > len(hdr) {
				return reject(ReasonTruncated, "segment overruns header region")
			}
			pos += l
		}
	}
	return nil
}

// progRestart consumes an expected restart marker; unlike the baseline
// decoder this is strict (our progressive writer always emits them).
func progRestart(r *bitio.Reader, expect int, pads *[]uint8) error {
	bits, nbits, err := r.AlignSkipPad()
	if err != nil && !errors.Is(err, bitio.ErrMarker) {
		return wrapEntropyErr(err)
	}
	*pads = append(*pads, bits[:nbits]...)
	if _, err := r.ReadBit(); !errors.Is(err, bitio.ErrMarker) {
		return reject(ReasonRoundtrip, "missing restart marker in progressive scan")
	}
	code, err := r.SkipMarker()
	if err != nil {
		return wrapEntropyErr(err)
	}
	if code != mRST0+byte(expect%8) {
		return reject(ReasonRoundtrip, "wrong restart marker %#02x", code)
	}
	return nil
}

func notePads(scan *ProgScan, bits []uint8) error {
	for _, b := range bits {
		if !scan.PadSeen {
			scan.PadBit = b
			scan.PadSeen = true
		} else if b != scan.PadBit {
			return reject(ReasonRoundtrip, "inconsistent pad bits in progressive scan")
		}
	}
	return nil
}

// decodeProgDC decodes a DC scan (interleaved over the scan's components).
func decodeProgDC(f *File, scan *ProgScan, coeff [][]int16) error {
	r := bitio.NewReader(scan.Data)
	dcDec, err := buildDCDecoders(f, scan)
	if err != nil {
		return err
	}
	var prevDC [MaxComponents]int16
	ri := f.RestartInterval
	total, iter := progMCUIter(f, scan)
	rstSeen := 0
	var pads []uint8
	for m := 0; m < total; m++ {
		if ri > 0 && m > 0 && m%ri == 0 {
			if err := progRestart(r, rstSeen, &pads); err != nil {
				return err
			}
			if err := notePads(scan, pads); err != nil {
				return err
			}
			pads = nil
			rstSeen++
			prevDC = [MaxComponents]int16{}
		}
		blocks := iter(m)
		for _, bl := range blocks {
			s, err := dcDec[bl.comp].Decode(r)
			if err != nil {
				return wrapEntropyErr(err)
			}
			if s > 11 {
				return reject(ReasonACRange, "DC category %d", s)
			}
			raw, err := r.ReadBits(s)
			if err != nil {
				return wrapEntropyErr(err)
			}
			dc := int32(prevDC[bl.comp]) + extend(raw, s)
			if dc < -2048 || dc > 2047 {
				return reject(ReasonACRange, "DC %d", dc)
			}
			prevDC[bl.comp] = int16(dc)
			coeff[bl.comp][bl.off] = int16(dc)
		}
	}
	scan.RSTCount = rstSeen
	tailBits, nTail, err := r.AlignSkipPad()
	if err != nil && !errors.Is(err, bitio.ErrTruncated) && !errors.Is(err, bitio.ErrMarker) {
		return wrapEntropyErr(err)
	}
	if err := notePads(scan, tailBits[:nTail]); err != nil {
		return err
	}
	scan.Tail = append([]byte(nil), r.Remaining()...)
	return nil
}

type progBlock struct {
	comp int
	off  int // coefficient base offset (block index * 64)
}

// progMCUIter returns the MCU count and a function yielding the blocks of
// MCU m for a progressive scan (interleaved if >1 component,
// unpadded-raster otherwise).
func progMCUIter(f *File, scan *ProgScan) (int, func(int) []progBlock) {
	if len(scan.Comps) == 1 {
		ci := scan.Comps[0]
		w, h := unpaddedBlocks(f, ci)
		bw := f.Components[ci].BlocksWide
		return w * h, func(m int) []progBlock {
			row := m / w
			col := m % w
			return []progBlock{{comp: ci, off: (row*bw + col) * 64}}
		}
	}
	return f.TotalMCUs(), func(m int) []progBlock {
		mcuRow := m / f.MCUsWide
		mcuCol := m % f.MCUsWide
		var out []progBlock
		for _, ci := range scan.Comps {
			c := &f.Components[ci]
			for v := 0; v < c.V; v++ {
				for hh := 0; hh < c.H; hh++ {
					br := mcuRow*c.V + v
					bc := mcuCol*c.H + hh
					out = append(out, progBlock{comp: ci, off: (br*c.BlocksWide + bc) * 64})
				}
			}
		}
		return out
	}
}

func buildDCDecoders(f *File, scan *ProgScan) (map[int]*huffman.Decoder, error) {
	out := map[int]*huffman.Decoder{}
	for _, ci := range scan.Comps {
		td := f.Components[ci].TD
		if f.DC[td] == nil {
			return nil, reject(ReasonUnsupported, "missing DC table %d", td)
		}
		d, err := huffman.NewDecoder(f.DC[td])
		if err != nil {
			return nil, reject(ReasonUnsupported, "DC table: %v", err)
		}
		out[ci] = d
	}
	return out, nil
}

// decodeProgAC decodes one AC band scan of a single component.
func decodeProgAC(f *File, scan *ProgScan, plane []int16, ci int) error {
	ta := f.Components[ci].TA
	if f.AC[ta] == nil {
		return reject(ReasonUnsupported, "missing AC table %d", ta)
	}
	dec, err := huffman.NewDecoder(f.AC[ta])
	if err != nil {
		return reject(ReasonUnsupported, "AC table: %v", err)
	}
	r := bitio.NewReader(scan.Data)
	w, h := unpaddedBlocks(f, ci)
	bw := f.Components[ci].BlocksWide
	ri := f.RestartInterval
	eobrun := 0
	rstSeen := 0
	var pads []uint8
	for m := 0; m < w*h; m++ {
		if ri > 0 && m > 0 && m%ri == 0 {
			if eobrun > 0 {
				return reject(ReasonRoundtrip, "EOB run crosses restart interval")
			}
			if err := progRestart(r, rstSeen, &pads); err != nil {
				return err
			}
			if err := notePads(scan, pads); err != nil {
				return err
			}
			pads = nil
			rstSeen++
		}
		if eobrun > 0 {
			eobrun--
			continue
		}
		row := m / w
		col := m % w
		base := (row*bw + col) * 64
		k := scan.Ss
		for k <= scan.Se {
			rs, err := dec.Decode(r)
			if err != nil {
				return wrapEntropyErr(err)
			}
			run, size := int(rs>>4), rs&15
			if size == 0 {
				if run == 15 { // ZRL
					k += 16
					continue
				}
				extra, err := r.ReadBits(uint8(run))
				if err != nil {
					return wrapEntropyErr(err)
				}
				eobrun = (1 << run) - 1 + int(extra)
				break
			}
			if size > 10 {
				return reject(ReasonACRange, "AC category %d", size)
			}
			k += run
			if k > scan.Se {
				return reject(ReasonACRange, "AC run past band end")
			}
			raw, err := r.ReadBits(size)
			if err != nil {
				return wrapEntropyErr(err)
			}
			plane[base+int(zigzagTable[k])] = int16(extend(raw, size))
			k++
		}
	}
	if eobrun > 0 {
		return reject(ReasonRoundtrip, "EOB run extends past final block")
	}
	scan.RSTCount = rstSeen
	tailBits, nTail, err := r.AlignSkipPad()
	if err != nil && !errors.Is(err, bitio.ErrTruncated) && !errors.Is(err, bitio.ErrMarker) {
		return wrapEntropyErr(err)
	}
	if err := notePads(scan, tailBits[:nTail]); err != nil {
		return err
	}
	scan.Tail = append([]byte(nil), r.Remaining()...)
	return nil
}

// applySelectors installs this scan's Huffman table selectors on the frame
// components, as the scan's SOS header did at decode time.
func (s *ProgScan) applySelectors(f *File) {
	for i, ci := range s.Comps {
		if i < len(s.Sel) {
			f.Components[ci].TD = s.Sel[i] >> 4
			f.Components[ci].TA = s.Sel[i] & 15
		}
	}
}

// Reassemble regenerates the complete progressive file from coefficient
// planes: verbatim headers spliced with re-encoded scan data. The result
// must be byte-identical to the original for files this package accepts.
// p must be the ProgFile the coefficients were decoded from (the decoder
// records per-scan pad bits, restart counts, and tails on it).
func (p *ProgFile) Reassemble(coeff [][]int16) ([]byte, error) {
	f := p.Frame
	// Restore the initial Huffman/DRI state: decoding may have left the
	// frame holding tables redefined by later scans.
	if err := reparseTables(f, p.Header); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.Write(p.Header)
	for si := range p.Scans {
		scan := &p.Scans[si]
		if si > 0 {
			out.Write(scan.HeaderBytes)
			if err := reparseTables(f, scan.HeaderBytes); err != nil {
				return nil, err
			}
		}
		scan.applySelectors(f)
		var data []byte
		var err error
		if scan.Ss == 0 {
			data, err = encodeProgDC(f, scan, coeff)
		} else {
			data, err = encodeProgAC(f, scan, coeff[scan.Comps[0]], scan.Comps[0])
		}
		if err != nil {
			return nil, fmt.Errorf("scan %d: %w", si, err)
		}
		out.Write(data)
	}
	out.Write(p.Trailer)
	return out.Bytes(), nil
}
