package jpeg_test

import (
	"math/rand"
	"testing"

	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

// TestMutationRobustness is the in-repo analogue of the fuzzing campaign
// that produced the paper's third alarm (§6.7): a security researcher found
// buffer overruns in the upstream JPEG-parsing library. Every mutation of a
// valid file must either parse+decode or return a classified error — never
// panic, never read out of bounds (the race detector and Go's bounds checks
// enforce the latter).
func TestMutationRobustness(t *testing.T) {
	base, err := imagegen.Generate(77, 120, 96)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		data := append([]byte(nil), base...)
		// 1-4 byte mutations anywhere in the file.
		for m := 0; m < 1+rng.Intn(4); m++ {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		f, err := jpeg.Parse(data, 1<<24)
		if err != nil {
			if jpeg.ReasonOf(err) == jpeg.ReasonNone {
				t.Fatalf("trial %d: error with no classification: %v", trial, err)
			}
			continue
		}
		s, err := jpeg.DecodeScan(f)
		if err != nil {
			continue
		}
		// If it decoded, re-encoding must not panic either.
		_, _ = jpeg.EncodeScan(s)
	}
}

// TestTruncationRobustness cuts a valid file at every length and requires
// classified errors (or success for trailing-garbage-only cuts).
func TestTruncationRobustness(t *testing.T) {
	base, err := imagegen.Generate(78, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(base) > 2000 {
		step = len(base) / 2000
	}
	for n := 0; n < len(base); n += step {
		f, err := jpeg.Parse(base[:n], 0)
		if err != nil {
			continue
		}
		_, _ = jpeg.DecodeScan(f)
	}
}

// TestDHTOverrunRejected reproduces the exact uncmpjpg bug class from §6.7:
// a DHT segment whose symbol counts claim more data than the segment holds.
func TestDHTOverrunRejected(t *testing.T) {
	base, err := imagegen.Generate(79, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Find the first DHT and inflate a count byte beyond the segment.
	for i := 0; i+4 < len(base); i++ {
		if base[i] == 0xFF && base[i+1] == 0xC4 {
			bad := append([]byte(nil), base...)
			bad[i+5] = 0xFF // counts[0] = 255 codes of length 1
			_, err := jpeg.Parse(bad, 0)
			if err == nil {
				t.Fatal("oversubscribed DHT accepted")
			}
			if jpeg.ReasonOf(err) == jpeg.ReasonNone {
				t.Fatalf("unclassified: %v", err)
			}
			return
		}
	}
	t.Fatal("no DHT found in generated file")
}

// TestQuantIndexOutOfRange reproduces the companion uncmpjpg bug: a
// quantization table selector beyond the table array.
func TestQuantIndexOutOfRange(t *testing.T) {
	base, err := imagegen.Generate(80, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the DQT's Pq/Tq byte to table id 9.
	for i := 0; i+4 < len(base); i++ {
		if base[i] == 0xFF && base[i+1] == 0xDB {
			bad := append([]byte(nil), base...)
			bad[i+4] = 0x09
			if _, err := jpeg.Parse(bad, 0); err == nil {
				t.Fatal("quant table id 9 accepted")
			}
			return
		}
	}
	t.Fatal("no DQT found")
}

// Test16BitDQTParses verifies the Pq=1 (16-bit quantizer) path.
func Test16BitDQTParses(t *testing.T) {
	var b []byte
	b = append(b, 0xFF, 0xD8)
	// DQT with pq=1: 2 + 1 + 128 bytes.
	payload := make([]byte, 129)
	payload[0] = 0x10 // pq=1, tq=0
	for i := 0; i < 64; i++ {
		payload[1+2*i] = 0x01 // big-endian 256+i
		payload[2+2*i] = byte(i)
	}
	l := len(payload) + 2
	b = append(b, 0xFF, 0xDB, byte(l>>8), byte(l))
	b = append(b, payload...)
	b = append(b, 0xFF, 0xD9)
	_, err := jpeg.Parse(b, 0)
	// Header-only file: rejected as Unsupported, but the DQT must have
	// parsed (a parse failure in DQT would say so in the detail).
	if jpeg.ReasonOf(err) != jpeg.ReasonUnsupported {
		t.Fatalf("reason = %v (%v)", jpeg.ReasonOf(err), err)
	}
}

// TestFillBytesBeforeMarkers: 0xFF fill bytes before a marker are legal.
func TestFillBytesBeforeMarkers(t *testing.T) {
	base, err := imagegen.Generate(81, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a fill byte before the SOF marker.
	for i := 0; i+1 < len(base); i++ {
		if base[i] == 0xFF && base[i+1] == 0xC0 {
			padded := append([]byte(nil), base[:i]...)
			padded = append(padded, 0xFF) // fill
			padded = append(padded, base[i:]...)
			if _, err := jpeg.Parse(padded, 0); err != nil {
				t.Fatalf("fill byte rejected: %v", err)
			}
			return
		}
	}
}
