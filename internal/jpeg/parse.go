package jpeg

import (
	"lepton/internal/huffman"
)

// JPEG marker codes (the byte following 0xFF).
const (
	mSOF0 = 0xC0 // baseline sequential DCT
	mSOF1 = 0xC1 // extended sequential DCT
	mSOF2 = 0xC2 // progressive DCT
	mSOF3 = 0xC3 // lossless
	mDHT  = 0xC4
	mSOF5 = 0xC5
	mSOF6 = 0xC6
	mSOF7 = 0xC7
	mJPG  = 0xC8
	mSOF9 = 0xC9 // extended sequential, arithmetic
	mSOFA = 0xCA // progressive, arithmetic
	mSOFB = 0xCB
	mDAC  = 0xCC
	mSOFD = 0xCD
	mSOFE = 0xCE
	mSOFF = 0xCF
	mRST0 = 0xD0
	mRST7 = 0xD7
	mSOI  = 0xD8
	mEOI  = 0xD9
	mSOS  = 0xDA
	mDQT  = 0xDB
	mDNL  = 0xDC
	mDRI  = 0xDD
	mAPP0 = 0xE0
	mAPPF = 0xEF
	mCOM  = 0xFE
)

// MaxComponents is the number of color components the format supports.
// Production Lepton handled three (YCbCr/grayscale) and rejected CMYK; the
// fourth channel is the optional "extra model for the 4th color channel"
// the paper mentions (§6.2), enabled via ParseOpt's allowCMYK.
const MaxComponents = 4

// Component describes one color component of the frame.
type Component struct {
	ID byte
	H  int // horizontal sampling factor, 1..4
	V  int // vertical sampling factor, 1..4
	TQ byte
	// Entropy-coding table selectors from the SOS header.
	TD byte
	TA byte
	// Geometry derived from the frame header; all counts in 8x8 blocks.
	BlocksWide int // padded to a multiple of H for interleaved scans
	BlocksHigh int // padded to a multiple of V
}

// File is a parsed baseline JPEG: the verbatim header bytes, the
// entropy-coded scan bytes, the verbatim trailer, and the decoded structure
// needed to re-create the scan.
type File struct {
	// Header holds every byte from SOI through the end of the SOS header —
	// the bytes Lepton stores verbatim (zlib-compressed) in its container.
	Header []byte
	// ScanData holds the entropy-coded segment, including restart markers
	// and stuffing bytes, up to (not including) the terminating marker.
	ScanData []byte
	// Trailer holds everything from the terminating marker (normally EOI)
	// to the end of the file, stored verbatim.
	Trailer []byte

	Width, Height   int
	Components      []Component
	HMax, VMax      int
	MCUsWide        int
	MCUsHigh        int
	RestartInterval int

	Quant   [4][64]uint16 // raster order
	QuantOK [4]bool
	DC      [4]*huffman.Spec
	AC      [4]*huffman.Spec
}

// TotalMCUs returns the number of MCUs in the scan.
func (f *File) TotalMCUs() int { return f.MCUsWide * f.MCUsHigh }

// BlocksPerMCU returns the number of coefficient blocks per MCU.
func (f *File) BlocksPerMCU() int {
	if len(f.Components) == 1 {
		return 1
	}
	n := 0
	for _, c := range f.Components {
		n += c.H * c.V
	}
	return n
}

// CoefficientCount returns the total number of stored DCT coefficients.
func (f *File) CoefficientCount() int {
	n := 0
	for _, c := range f.Components {
		n += c.BlocksWide * c.BlocksHigh * 64
	}
	return n
}

func u16(b []byte) int { return int(b[0])<<8 | int(b[1]) }

// Parse splits a JPEG file into header, scan, and trailer, decoding the
// structural segments needed for entropy coding. It does not decode the
// scan itself; see DecodeScan.
//
// Budget limits (paper §5.1, §6.2): memLimit bounds the coefficient memory
// the caller is willing to spend. Pass 0 for no limit.
func Parse(data []byte, memLimit int64) (*File, error) {
	return parse(data, memLimit, false, false)
}

// ParseOpt is Parse with the optional CMYK capability enabled.
func ParseOpt(data []byte, memLimit int64, allowCMYK bool) (*File, error) {
	return parse(data, memLimit, false, allowCMYK)
}

// ParseHeader parses a header-only blob (SOI through the SOS header, as
// stored in a Lepton container) and returns a File with empty ScanData.
// Four-component headers are accepted: a stored container was admitted by
// an encoder that allowed them.
func ParseHeader(data []byte) (*File, error) {
	return parse(data, 0, true, true)
}

func parse(data []byte, memLimit int64, headerOnly, allowCMYK bool) (*File, error) {
	if len(data) < 4 || data[0] != 0xFF || data[1] != mSOI {
		return nil, reject(ReasonNotImage, "missing SOI marker")
	}
	f := &File{}
	sawSOF := false
	seenSegment := false
	pos := 2
	for {
		// Skip fill bytes (0xFF may be repeated before a marker).
		if pos >= len(data) {
			return nil, reject(ReasonTruncated, "EOF before SOS")
		}
		if data[pos] != 0xFF {
			if !seenSegment {
				// Garbage right after SOI: the file merely starts with the
				// JPEG magic and has no structure ("Not an image", §6.2).
				return nil, reject(ReasonNotImage, "no JPEG structure after SOI")
			}
			return nil, reject(ReasonUnsupported, "garbage byte %#02x at %d", data[pos], pos)
		}
		seenSegment = true
		for pos < len(data) && data[pos] == 0xFF {
			pos++
		}
		if pos >= len(data) {
			return nil, reject(ReasonTruncated, "EOF in marker")
		}
		marker := data[pos]
		pos++
		switch {
		case marker == mSOS:
			if !sawSOF {
				return nil, reject(ReasonUnsupported, "SOS before SOF")
			}
			segEnd, err := f.parseSOS(data, pos)
			if err != nil {
				return nil, err
			}
			f.Header = data[:segEnd]
			if headerOnly {
				return f, nil
			}
			// The entropy-coded segment runs until a marker other than RST.
			scanEnd, err := findScanEnd(data, segEnd)
			if err != nil {
				return nil, err
			}
			f.ScanData = data[segEnd:scanEnd]
			f.Trailer = data[scanEnd:]
			return f, nil
		case marker == mEOI:
			return nil, reject(ReasonUnsupported, "EOI before SOS (header-only file)")
		case marker == mSOF2 || marker == mSOFA:
			return nil, reject(ReasonProgressive, "progressive SOF%#02x", marker)
		case marker == mSOF3 || marker == mSOF5 || marker == mSOF6 ||
			marker == mSOF7 || marker == mSOF9 || marker == mSOFB ||
			marker == mSOFD || marker == mSOFE || marker == mSOFF ||
			marker == mDAC:
			return nil, reject(ReasonUnsupported, "SOF/DAC marker %#02x", marker)
		case marker == mSOF0 || marker == mSOF1:
			n, err := f.parseSOF(data, pos, memLimit, allowCMYK)
			if err != nil {
				return nil, err
			}
			sawSOF = true
			pos += n
		case marker == mDQT:
			n, err := f.parseDQT(data, pos)
			if err != nil {
				return nil, err
			}
			pos += n
		case marker == mDHT:
			n, err := f.parseDHT(data, pos)
			if err != nil {
				return nil, err
			}
			pos += n
		case marker == mDRI:
			if pos+4 > len(data) || u16(data[pos:]) != 4 {
				return nil, reject(ReasonUnsupported, "bad DRI length")
			}
			f.RestartInterval = u16(data[pos+2:])
			pos += 4
		case marker >= mRST0 && marker <= mRST7:
			return nil, reject(ReasonUnsupported, "restart marker outside scan")
		case marker == mSOI:
			return nil, reject(ReasonUnsupported, "nested SOI")
		case marker == mDNL:
			return nil, reject(ReasonUnsupported, "DNL marker")
		case marker == 0x01 || marker == 0x00:
			// TEM or stuffed zero outside a scan: skip, no payload.
		default:
			// Segments with a 16-bit length: APPn, COM, and others.
			if pos+2 > len(data) {
				return nil, reject(ReasonTruncated, "EOF in segment length")
			}
			l := u16(data[pos:])
			if l < 2 || pos+l > len(data) {
				return nil, reject(ReasonTruncated, "segment overruns file")
			}
			pos += l
		}
	}
}

func (f *File) parseSOF(data []byte, pos int, memLimit int64, allowCMYK bool) (int, error) {
	if pos+2 > len(data) {
		return 0, reject(ReasonTruncated, "EOF in SOF")
	}
	l := u16(data[pos:])
	if pos+l > len(data) || l < 8 {
		return 0, reject(ReasonTruncated, "SOF overruns file")
	}
	seg := data[pos+2 : pos+l]
	precision := int(seg[0])
	if precision != 8 {
		return 0, reject(ReasonUnsupported, "%d-bit precision", precision)
	}
	f.Height = u16(seg[1:])
	f.Width = u16(seg[3:])
	if f.Width == 0 || f.Height == 0 {
		return 0, reject(ReasonUnsupported, "zero dimension %dx%d", f.Width, f.Height)
	}
	nc := int(seg[5])
	if nc == 4 && !allowCMYK {
		return 0, reject(ReasonCMYK, "4 components")
	}
	if nc != 1 && nc != 3 && nc != 4 {
		return 0, reject(ReasonUnsupported, "%d components", nc)
	}
	if len(seg) < 6+3*nc {
		return 0, reject(ReasonTruncated, "short SOF")
	}
	f.HMax, f.VMax = 1, 1
	for i := 0; i < nc; i++ {
		c := Component{
			ID: seg[6+3*i],
			H:  int(seg[7+3*i] >> 4),
			V:  int(seg[7+3*i] & 15),
			TQ: seg[8+3*i],
		}
		if c.H < 1 || c.H > 4 || c.V < 1 || c.V > 4 {
			return 0, reject(ReasonUnsupported, "sampling %dx%d", c.H, c.V)
		}
		if c.TQ > 3 {
			return 0, reject(ReasonUnsupported, "quant table id %d", c.TQ)
		}
		if c.H > f.HMax {
			f.HMax = c.H
		}
		if c.V > f.VMax {
			f.VMax = c.V
		}
		f.Components = append(f.Components, c)
	}
	// The deployed Lepton keeps a bounded slice of the framebuffer per
	// component; outsized chroma subsampling ratios overflow it (§6.2).
	for i := range f.Components {
		c := &f.Components[i]
		if f.HMax/c.H > 2 || f.VMax/c.V > 2 {
			return 0, reject(ReasonChromaSub, "subsampling ratio %d:%d", f.HMax/c.H, f.VMax/c.V)
		}
	}
	f.MCUsWide = (f.Width + 8*f.HMax - 1) / (8 * f.HMax)
	f.MCUsHigh = (f.Height + 8*f.VMax - 1) / (8 * f.VMax)
	for i := range f.Components {
		c := &f.Components[i]
		if len(f.Components) == 1 {
			// Non-interleaved single-component scan: the MCU is one block
			// and there is no padding to sampling-factor multiples.
			c.BlocksWide = (f.Width + 7) / 8
			c.BlocksHigh = (f.Height + 7) / 8
			f.MCUsWide = c.BlocksWide
			f.MCUsHigh = c.BlocksHigh
		} else {
			c.BlocksWide = f.MCUsWide * c.H
			c.BlocksHigh = f.MCUsHigh * c.V
		}
	}
	if memLimit > 0 {
		// The streaming pipelines hold a sliding window of block rows per
		// component — (V+1 rows) × width — never whole planes, so the
		// budget bounds that working set. It scales with image width only;
		// a tall image streams through row by row (§5.1). Callers layer
		// per-segment multiples on top (see core.DecodeWindowBytes); this
		// is the single-segment floor no decode can go below.
		var winBytes int64
		for _, c := range f.Components {
			v := c.V
			if len(f.Components) == 1 {
				v = 1
			}
			winBytes += int64(v+1) * int64(c.BlocksWide) * 64 * 2
		}
		if winBytes > memLimit {
			return 0, reject(ReasonMemDecode, "row windows need %d bytes > %d budget", winBytes, memLimit)
		}
	}
	return l, nil
}

func (f *File) parseDQT(data []byte, pos int) (int, error) {
	if pos+2 > len(data) {
		return 0, reject(ReasonTruncated, "EOF in DQT")
	}
	l := u16(data[pos:])
	if pos+l > len(data) || l < 2 {
		return 0, reject(ReasonTruncated, "DQT overruns file")
	}
	seg := data[pos+2 : pos+l]
	for len(seg) > 0 {
		pq := seg[0] >> 4
		tq := seg[0] & 15
		if tq > 3 || pq > 1 {
			return 0, reject(ReasonUnsupported, "DQT pq=%d tq=%d", pq, tq)
		}
		n := 64
		if pq == 1 {
			n = 128
		}
		if len(seg) < 1+n {
			return 0, reject(ReasonTruncated, "short DQT table")
		}
		for i := 0; i < 64; i++ {
			var v uint16
			if pq == 1 {
				v = uint16(seg[1+2*i])<<8 | uint16(seg[2+2*i])
			} else {
				v = uint16(seg[1+i])
			}
			if v == 0 {
				return 0, reject(ReasonUnsupported, "zero quantizer")
			}
			// DQT entries are in zigzag order; store raster.
			f.Quant[tq][zigzagRaster(i)] = v
		}
		f.QuantOK[tq] = true
		seg = seg[1+n:]
	}
	return l, nil
}

func (f *File) parseDHT(data []byte, pos int) (int, error) {
	if pos+2 > len(data) {
		return 0, reject(ReasonTruncated, "EOF in DHT")
	}
	l := u16(data[pos:])
	if pos+l > len(data) || l < 2 {
		return 0, reject(ReasonTruncated, "DHT overruns file")
	}
	seg := data[pos+2 : pos+l]
	for len(seg) > 0 {
		if len(seg) < 17 {
			return 0, reject(ReasonTruncated, "short DHT")
		}
		tc := seg[0] >> 4
		th := seg[0] & 15
		if tc > 1 || th > 3 {
			return 0, reject(ReasonUnsupported, "DHT tc=%d th=%d", tc, th)
		}
		spec := &huffman.Spec{}
		total := 0
		for i := 0; i < 16; i++ {
			spec.Counts[i] = seg[1+i]
			total += int(seg[1+i])
		}
		// The fuzzing incident (§6.7): validate that the table payload
		// actually fits before reading symbols.
		if len(seg) < 17+total {
			return 0, reject(ReasonUnsupported, "DHT symbols overrun segment")
		}
		spec.Symbols = append([]byte(nil), seg[17:17+total]...)
		if err := spec.Validate(); err != nil {
			return 0, reject(ReasonUnsupported, "invalid Huffman table: %v", err)
		}
		if tc == 0 {
			f.DC[th] = spec
		} else {
			f.AC[th] = spec
		}
		seg = seg[17+total:]
	}
	return l, nil
}

// parseSOS validates the scan header and returns the file offset where the
// entropy-coded data begins.
func (f *File) parseSOS(data []byte, pos int) (int, error) {
	if pos+2 > len(data) {
		return 0, reject(ReasonTruncated, "EOF in SOS")
	}
	l := u16(data[pos:])
	if pos+l > len(data) || l < 3 {
		return 0, reject(ReasonTruncated, "SOS overruns file")
	}
	seg := data[pos+2 : pos+l]
	ns := int(seg[0])
	if ns != len(f.Components) {
		return 0, reject(ReasonUnsupported, "scan has %d of %d components", ns, len(f.Components))
	}
	if len(seg) < 1+2*ns+3 {
		return 0, reject(ReasonTruncated, "short SOS")
	}
	for i := 0; i < ns; i++ {
		cs := seg[1+2*i]
		td := seg[2+2*i] >> 4
		ta := seg[2+2*i] & 15
		found := false
		for j := range f.Components {
			if f.Components[j].ID == cs {
				if td > 3 || ta > 3 {
					return 0, reject(ReasonUnsupported, "table selector out of range")
				}
				f.Components[j].TD = td
				f.Components[j].TA = ta
				found = true
				break
			}
		}
		if !found {
			return 0, reject(ReasonUnsupported, "scan component %d not in frame", cs)
		}
	}
	ss, se, ahal := seg[1+2*ns], seg[2+2*ns], seg[3+2*ns]
	if ss != 0 || se != 63 || ahal != 0 {
		return 0, reject(ReasonUnsupported, "spectral selection %d..%d ah/al %d", ss, se, ahal)
	}
	// Every component must have its tables defined.
	for _, c := range f.Components {
		if !f.QuantOK[c.TQ] {
			return 0, reject(ReasonUnsupported, "missing quant table %d", c.TQ)
		}
		if f.DC[c.TD] == nil || f.AC[c.TA] == nil {
			return 0, reject(ReasonUnsupported, "missing Huffman table")
		}
	}
	return pos + l, nil
}

// findScanEnd scans the entropy-coded segment for the terminating marker
// (any marker except RST0-7 and stuffed 0xFF00).
func findScanEnd(data []byte, start int) (int, error) {
	i := start
	for i+1 < len(data) {
		if data[i] != 0xFF {
			i++
			continue
		}
		m := data[i+1]
		if m == 0x00 || (m >= mRST0 && m <= mRST7) {
			i += 2
			continue
		}
		return i, nil
	}
	return 0, reject(ReasonTruncated, "no marker terminates the scan")
}

func zigzagRaster(z int) int {
	return int(zigzagTable[z])
}

// zigzagTable duplicates dct.Zigzag to keep this package's wire-format
// handling self-contained.
var zigzagTable = [64]uint8{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}
