package jpeg_test

import (
	"bytes"
	"testing"

	"lepton/internal/dct"
	"lepton/internal/huffman"
	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

// progSample builds a spectral-selection progressive JPEG from a synthetic
// image.
func progSample(t testing.TB, seed int64, w, h int, subsample bool, ri int) []byte {
	t.Helper()
	img := imagegen.Synthesize(seed, w, h)
	// Reuse the baseline pipeline to produce coefficients, then re-wrap
	// them progressively.
	base, err := imagegen.EncodeJPEG(img, imagegen.Options{
		Quality: 85, SubsampleChroma: subsample, PadBit: 1, RestartInterval: ri,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.Parse(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		t.Fatal(err)
	}
	spec := &jpeg.ProgressiveSpec{}
	spec.Width = f.Width
	spec.Height = f.Height
	spec.Components = make([]jpeg.Component, len(f.Components))
	for i, c := range f.Components {
		spec.Components[i] = jpeg.Component{ID: c.ID, H: c.H, V: c.V, TQ: c.TQ}
	}
	spec.Quant = f.Quant
	spec.DC = [4]*huffman.Spec{&huffman.StdDCLuminance, &huffman.StdDCChrominance}
	spec.AC = [4]*huffman.Spec{&huffman.StdACLuminance, &huffman.StdACChrominance}
	spec.RestartInterval = ri
	spec.PadBit = 1
	data, err := jpeg.WriteProgressive(spec, s.Coeff)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func progRoundTrip(t *testing.T, data []byte) [][]int16 {
	t.Helper()
	p, err := jpeg.ParseProgressive(data, 0)
	if err != nil {
		t.Fatalf("ParseProgressive: %v", err)
	}
	coeff, err := jpeg.DecodeProgressive(p)
	if err != nil {
		t.Fatalf("DecodeProgressive: %v", err)
	}
	got, err := p.Reassemble(coeff)
	if err != nil {
		t.Fatalf("Reassemble: %v", err)
	}
	if !bytes.Equal(got, data) {
		i := 0
		for i < len(got) && i < len(data) && got[i] == data[i] {
			i++
		}
		t.Fatalf("progressive round trip differs at byte %d (lens %d vs %d)",
			i, len(got), len(data))
	}
	return coeff
}

func TestProgressiveRoundTripBasic(t *testing.T) {
	progRoundTrip(t, progSample(t, 1, 160, 120, true, 0))
}

func TestProgressiveRoundTripMatrix(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		w, h int
		sub  bool
		ri   int
	}{
		{2, 64, 64, false, 0},
		{3, 200, 152, true, 0},
		{4, 97, 63, false, 0},
		{5, 128, 128, true, 4},
		{6, 320, 240, true, 16},
		{7, 48, 48, false, 2},
	} {
		progRoundTrip(t, progSample(t, tc.seed, tc.w, tc.h, tc.sub, tc.ri))
	}
}

func TestProgressiveCoefficientsMatchBaseline(t *testing.T) {
	// The progressive wrapper must carry the same coefficients as the
	// baseline encoding it was derived from — except the AC of padded
	// blocks, which non-interleaved AC scans structurally cannot carry
	// (the DC scan, being interleaved, covers even padded blocks).
	img := imagegen.Synthesize(8, 120, 88)
	base, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, SubsampleChroma: true, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := jpeg.Parse(base, 0)
	s, _ := jpeg.DecodeScan(f)

	prog := progSample(t, 8, 120, 88, true, 0)
	coeff := progRoundTrip(t, prog)
	for ci := range s.Coeff {
		c := &f.Components[ci]
		compW := (f.Width*c.H + f.HMax - 1) / f.HMax
		compH := (f.Height*c.V + f.VMax - 1) / f.VMax
		uw, uh := (compW+7)/8, (compH+7)/8
		for j := range s.Coeff[ci] {
			blk := j / 64
			pos := j % 64
			row, col := blk/c.BlocksWide, blk%c.BlocksWide
			padded := row >= uh || col >= uw
			if padded && pos != 0 {
				continue // AC of padded blocks is not representable
			}
			if s.Coeff[ci][j] != coeff[ci][j] {
				t.Fatalf("comp %d block %d pos %d: %d != %d", ci, blk, pos,
					coeff[ci][j], s.Coeff[ci][j])
			}
		}
	}
}

func TestProgressiveHeaderOnlyParse(t *testing.T) {
	data := progSample(t, 9, 96, 96, true, 0)
	p, err := jpeg.ParseProgressive(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.ParseProgressiveHeader(p.Header)
	if err != nil {
		t.Fatalf("ParseProgressiveHeader: %v", err)
	}
	if f.Width != 96 || f.Height != 96 || len(f.Components) != 3 {
		t.Fatalf("frame = %dx%d %d comps", f.Width, f.Height, len(f.Components))
	}
}

func TestProgressiveRejectsSuccessiveApproximation(t *testing.T) {
	data := progSample(t, 10, 64, 64, false, 0)
	// Patch the first SOS's Ah/Al byte: find the SOS and set Al=1.
	for i := 0; i+2 < len(data); i++ {
		if data[i] == 0xFF && data[i+1] == 0xDA {
			l := int(data[i+2])<<8 | int(data[i+3])
			bad := append([]byte(nil), data...)
			bad[i+2+l-1] = 0x01 // Al = 1
			_, err := jpeg.ParseProgressive(bad, 0)
			if jpeg.ReasonOf(err) != jpeg.ReasonProgressive {
				t.Fatalf("reason = %v", jpeg.ReasonOf(err))
			}
			return
		}
	}
	t.Fatal("no SOS found")
}

func TestProgressiveMutationRobustness(t *testing.T) {
	data := progSample(t, 11, 80, 80, true, 0)
	for i := 0; i < len(data); i += 7 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		p, err := jpeg.ParseProgressive(bad, 1<<24)
		if err != nil {
			continue
		}
		_, _ = jpeg.DecodeProgressive(p) // must not panic
	}
}

func TestProgressiveUnpaddedGeometry(t *testing.T) {
	// A 100x60 4:2:0 image: luma blocks padded to 14x8 but unpadded 13x8;
	// chroma unpadded 7x4. AC scans must touch only unpadded blocks.
	data := progSample(t, 12, 100, 60, true, 0)
	coeff := progRoundTrip(t, data)
	_ = coeff
	_ = dct.Zigzag // keep import stable if assertions change
}
