package jpeg_test

import (
	"bytes"
	"testing"

	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

// reassemble re-creates the full file bytes from a parsed+decoded scan.
func reassemble(t *testing.T, f *jpeg.File, s *jpeg.Scan) []byte {
	t.Helper()
	scan, err := jpeg.EncodeScan(s)
	if err != nil {
		t.Fatalf("EncodeScan: %v", err)
	}
	out := append([]byte(nil), f.Header...)
	out = append(out, scan...)
	return append(out, f.Trailer...)
}

func roundTrip(t *testing.T, data []byte) {
	t.Helper()
	f, err := jpeg.Parse(data, 0)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		t.Fatalf("DecodeScan: %v", err)
	}
	got := reassemble(t, f, s)
	if !bytes.Equal(got, data) {
		i := 0
		for i < len(got) && i < len(data) && got[i] == data[i] {
			i++
		}
		t.Fatalf("round trip differs: len %d vs %d, first diff at byte %d", len(got), len(data), i)
	}
}

func TestRoundTripBasic(t *testing.T) {
	data, err := imagegen.Generate(1, 128, 96)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, data)
}

func TestRoundTripMatrix(t *testing.T) {
	cases := []imagegen.Options{
		{Quality: 85, SubsampleChroma: false, PadBit: 1},
		{Quality: 85, SubsampleChroma: true, PadBit: 1},
		{Quality: 50, SubsampleChroma: true, PadBit: 0},
		{Quality: 95, SubsampleChroma: false, PadBit: 0},
		{Quality: 75, Grayscale: true, PadBit: 1},
		{Quality: 85, SubsampleChroma: true, RestartInterval: 4, PadBit: 1},
		{Quality: 85, SubsampleChroma: false, RestartInterval: 1, PadBit: 1},
		{Quality: 60, Grayscale: true, RestartInterval: 7, PadBit: 0},
		{Quality: 92, SubsampleChroma: true, RestartInterval: 16, PadBit: 1,
			TrailerGarbage: []byte{1, 2, 3, 0xFF, 0xD8, 0, 0, 0}},
	}
	sizes := [][2]int{{64, 64}, {136, 104}, {17, 23}, {8, 8}, {320, 200}, {7, 5}}
	for ci, opt := range cases {
		for si, sz := range sizes {
			img := imagegen.Synthesize(int64(ci*100+si), sz[0], sz[1])
			data, err := imagegen.EncodeJPEG(img, opt)
			if err != nil {
				t.Fatalf("case %d size %v: encode: %v", ci, sz, err)
			}
			roundTrip(t, data)
		}
	}
}

func TestParseRejectsProgressive(t *testing.T) {
	data, _ := imagegen.Generate(2, 64, 64)
	_, err := jpeg.Parse(imagegen.MakeProgressive(data), 0)
	if jpeg.ReasonOf(err) != jpeg.ReasonProgressive {
		t.Fatalf("reason = %v, want Progressive", jpeg.ReasonOf(err))
	}
}

func TestParseRejectsCMYK(t *testing.T) {
	_, err := jpeg.Parse(imagegen.CMYKStub(), 0)
	if jpeg.ReasonOf(err) != jpeg.ReasonCMYK {
		t.Fatalf("reason = %v, want CMYK", jpeg.ReasonOf(err))
	}
}

func TestParseRejectsNotImage(t *testing.T) {
	_, err := jpeg.Parse(imagegen.NotImage(1, 1024), 0)
	if r := jpeg.ReasonOf(err); r != jpeg.ReasonNotImage {
		t.Fatalf("reason = %v, want NotImage", r)
	}
	_, err = jpeg.Parse([]byte{0x00, 0x01, 0x02}, 0)
	if r := jpeg.ReasonOf(err); r != jpeg.ReasonNotImage {
		t.Fatalf("no SOI: reason = %v, want NotImage", r)
	}
}

func TestParseRejectsHeaderOnly(t *testing.T) {
	data, _ := imagegen.Generate(3, 64, 64)
	_, err := jpeg.Parse(imagegen.HeaderOnly(data), 0)
	if r := jpeg.ReasonOf(err); r != jpeg.ReasonUnsupported {
		t.Fatalf("reason = %v, want Unsupported", r)
	}
}

func TestParseRejectsBigChroma(t *testing.T) {
	_, err := jpeg.Parse(imagegen.BigChromaStub(), 0)
	if r := jpeg.ReasonOf(err); r != jpeg.ReasonChromaSub {
		t.Fatalf("reason = %v, want ChromaSub", r)
	}
}

func TestParseMemBudget(t *testing.T) {
	data, _ := imagegen.Generate(4, 640, 480)
	_, err := jpeg.Parse(data, 1024) // absurdly small budget
	if r := jpeg.ReasonOf(err); r != jpeg.ReasonMemDecode {
		t.Fatalf("reason = %v, want MemDecode", r)
	}
	if _, err := jpeg.Parse(data, 64<<20); err != nil {
		t.Fatalf("generous budget rejected: %v", err)
	}
}

func TestTruncatedScan(t *testing.T) {
	data, _ := imagegen.Generate(5, 256, 256)
	cut := imagegen.Truncate(data, 0.5)
	f, err := jpeg.Parse(cut, 0)
	if err != nil {
		// Truncation may land in the header; that is a valid rejection too.
		return
	}
	if _, err := jpeg.DecodeScan(f); err == nil {
		t.Fatal("expected decode error on truncated scan")
	}
}

func TestTrailerSecondImage(t *testing.T) {
	a, _ := imagegen.Generate(6, 96, 96)
	b, _ := imagegen.Generate(7, 48, 48)
	data := imagegen.AppendSecondImage(a, b)
	roundTrip(t, data)
	f, _ := jpeg.Parse(data, 0)
	if len(f.Trailer) < len(b) {
		t.Fatalf("trailer %d bytes, want >= %d", len(f.Trailer), len(b))
	}
}

func TestHandoverMidScanEncode(t *testing.T) {
	// Re-encode only the suffix of the scan starting at an arbitrary MCU,
	// seeded from the recorded handover state; output must match the
	// corresponding suffix bytes of the original scan.
	img := imagegen.Synthesize(8, 200, 152)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, SubsampleChroma: true, RestartInterval: 5, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.Parse(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		t.Fatal(err)
	}
	total := f.TotalMCUs()
	for _, startMCU := range []int{1, 2, total / 3, total / 2, total - 1} {
		pos := s.Positions[startMCU]
		e, err := jpeg.NewScanEncoder(f, s.PadBit, s.RSTCount)
		if err != nil {
			t.Fatal(err)
		}
		e.Seed(pos)
		if err := e.EncodeMCURange(s, startMCU, total); err != nil {
			t.Fatal(err)
		}
		e.Finish(s.Tail)
		got := e.Bytes()
		want := f.ScanData[pos.ByteOff:]
		// The first byte of got includes handover bits; compare whole bytes.
		if !bytes.Equal(got, want) {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			t.Fatalf("startMCU %d: suffix differs at byte %d (lens %d vs %d)",
				startMCU, i, len(got), len(want))
		}
	}
}

func TestHandoverSplitEncode(t *testing.T) {
	// Encode the scan in k independent pieces and verify concatenation
	// equals the original — the basis of multithreaded decode.
	img := imagegen.Synthesize(9, 168, 168)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 77, SubsampleChroma: true, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.Parse(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		t.Fatal(err)
	}
	total := f.TotalMCUs()
	for _, k := range []int{2, 3, 4, 7} {
		var out []byte
		for seg := 0; seg < k; seg++ {
			start := seg * total / k
			end := (seg + 1) * total / k
			e, err := jpeg.NewScanEncoder(f, s.PadBit, s.RSTCount)
			if err != nil {
				t.Fatal(err)
			}
			if start > 0 {
				e.Seed(s.Positions[start])
			}
			if err := e.EncodeMCURange(s, start, end); err != nil {
				t.Fatal(err)
			}
			if seg == k-1 {
				e.Finish(s.Tail)
			}
			// Concatenation is exact: a segment whose boundary falls
			// mid-byte leaves that byte unemitted (partial), and the next
			// segment, seeded with the partial bits, emits it in full.
			out = append(out, e.Bytes()...)
		}
		if !bytes.Equal(out, f.ScanData) {
			t.Fatalf("k=%d: concatenated segments differ from original scan", k)
		}
	}
}

func TestZeroFillTailRejectsOrRoundTrips(t *testing.T) {
	data, _ := imagegen.Generate(10, 256, 192)
	z := imagegen.ZeroFillTail(data, 64)
	f, err := jpeg.Parse(z, 0)
	if err != nil {
		return // acceptable rejection
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		return // acceptable rejection
	}
	// If decode succeeded, re-encode must reproduce the zero-filled bytes
	// or the caller will classify it as a round-trip failure; either way it
	// must not panic and must be detectable.
	scan, err := jpeg.EncodeScan(s)
	if err != nil {
		return
	}
	got := append(append(append([]byte(nil), f.Header...), scan...), f.Trailer...)
	_ = bytes.Equal(got, z) // both outcomes acceptable; no crash is the test
}

func TestCoefficientGeometry(t *testing.T) {
	img := imagegen.Synthesize(11, 100, 60)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, SubsampleChroma: true, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.Parse(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 100x60 4:2:0 -> MCUs are 16x16: 7x4 MCUs; luma 14x8 blocks padded,
	// chroma 7x4.
	if f.MCUsWide != 7 || f.MCUsHigh != 4 {
		t.Fatalf("MCUs = %dx%d", f.MCUsWide, f.MCUsHigh)
	}
	if f.Components[0].BlocksWide != 14 || f.Components[0].BlocksHigh != 8 {
		t.Fatalf("luma blocks = %dx%d", f.Components[0].BlocksWide, f.Components[0].BlocksHigh)
	}
	if f.Components[1].BlocksWide != 7 || f.Components[1].BlocksHigh != 4 {
		t.Fatalf("chroma blocks = %dx%d", f.Components[1].BlocksWide, f.Components[1].BlocksHigh)
	}
	if f.BlocksPerMCU() != 6 {
		t.Fatalf("blocks per MCU = %d", f.BlocksPerMCU())
	}
}

func TestPadBitDetection(t *testing.T) {
	for _, pad := range []uint8{0, 1} {
		img := imagegen.Synthesize(12, 96, 64)
		data, err := imagegen.EncodeJPEG(img, imagegen.Options{
			Quality: 70, SubsampleChroma: true, RestartInterval: 3, PadBit: pad,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := jpeg.Parse(data, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := jpeg.DecodeScan(f)
		if err != nil {
			t.Fatal(err)
		}
		if s.PadSeen && s.PadBit != pad {
			t.Fatalf("pad bit detected as %d, want %d", s.PadBit, pad)
		}
	}
}

func TestRSTCount(t *testing.T) {
	img := imagegen.Synthesize(13, 128, 128)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{
		Quality: 80, SubsampleChroma: true, RestartInterval: 3, PadBit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := jpeg.Parse(data, 0)
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		t.Fatal(err)
	}
	// 128x128 4:2:0 -> 8x8=64 MCUs, interval 3 -> 21 markers.
	if s.RSTCount != 21 {
		t.Fatalf("RSTCount = %d, want 21", s.RSTCount)
	}
}
