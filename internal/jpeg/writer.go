package jpeg

import (
	"fmt"

	"lepton/internal/huffman"
)

// EncodeSpec describes a baseline JPEG to synthesize. The corpus generator
// uses it to produce realistic files for the evaluation (paper §4).
type EncodeSpec struct {
	Width, Height int
	// Components defines ID/sampling/table selectors; 1 or 3 entries.
	Components []Component
	// Quant tables in raster order, indexed by TQ.
	Quant [4][64]uint16
	// DC and AC Huffman table specs, indexed by TD/TA.
	DC [4]*huffman.Spec
	AC [4]*huffman.Spec
	// RestartInterval in MCUs; 0 disables restart markers.
	RestartInterval int
	// PadBit used for byte alignment (0 or 1).
	PadBit uint8
	// Extra raw marker segments (APPn/COM, full segments including the
	// 0xFF marker bytes) inserted after SOI.
	Extra []byte
}

// fileFromSpec assembles a File with derived geometry from an EncodeSpec.
func fileFromSpec(spec *EncodeSpec) (*File, error) {
	if len(spec.Components) != 1 && len(spec.Components) != 3 && len(spec.Components) != 4 {
		return nil, fmt.Errorf("jpeg: %d components unsupported", len(spec.Components))
	}
	if spec.Width <= 0 || spec.Height <= 0 || spec.Width > 65535 || spec.Height > 65535 {
		return nil, fmt.Errorf("jpeg: bad dimensions %dx%d", spec.Width, spec.Height)
	}
	f := &File{
		Width:           spec.Width,
		Height:          spec.Height,
		Components:      append([]Component(nil), spec.Components...),
		RestartInterval: spec.RestartInterval,
		Quant:           spec.Quant,
		DC:              spec.DC,
		AC:              spec.AC,
	}
	f.HMax, f.VMax = 1, 1
	for _, c := range f.Components {
		if c.H > f.HMax {
			f.HMax = c.H
		}
		if c.V > f.VMax {
			f.VMax = c.V
		}
	}
	f.MCUsWide = (f.Width + 8*f.HMax - 1) / (8 * f.HMax)
	f.MCUsHigh = (f.Height + 8*f.VMax - 1) / (8 * f.VMax)
	for i := range f.Components {
		c := &f.Components[i]
		if len(f.Components) == 1 {
			c.BlocksWide = (f.Width + 7) / 8
			c.BlocksHigh = (f.Height + 7) / 8
			f.MCUsWide = c.BlocksWide
			f.MCUsHigh = c.BlocksHigh
		} else {
			c.BlocksWide = f.MCUsWide * c.H
			c.BlocksHigh = f.MCUsHigh * c.V
		}
		f.QuantOK[c.TQ] = true
	}
	return f, nil
}

func appendSegment(dst []byte, marker byte, payload []byte) []byte {
	dst = append(dst, 0xFF, marker)
	l := len(payload) + 2
	dst = append(dst, byte(l>>8), byte(l))
	return append(dst, payload...)
}

// buildHeader serializes SOI through SOS for f.
func buildHeader(f *File, spec *EncodeSpec) []byte {
	hdr := []byte{0xFF, mSOI}
	if len(spec.Extra) > 0 {
		hdr = append(hdr, spec.Extra...)
	} else {
		// Minimal JFIF APP0.
		hdr = appendSegment(hdr, mAPP0, []byte{
			'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0,
		})
	}
	// DQT: one segment per used table, zigzag order, 8-bit precision.
	written := [4]bool{}
	for _, c := range f.Components {
		if written[c.TQ] {
			continue
		}
		written[c.TQ] = true
		payload := make([]byte, 65)
		payload[0] = c.TQ
		for z := 0; z < 64; z++ {
			payload[1+z] = byte(f.Quant[c.TQ][zigzagTable[z]])
		}
		hdr = appendSegment(hdr, mDQT, payload)
	}
	// SOF0.
	sof := []byte{8,
		byte(f.Height >> 8), byte(f.Height),
		byte(f.Width >> 8), byte(f.Width),
		byte(len(f.Components)),
	}
	for _, c := range f.Components {
		sof = append(sof, c.ID, byte(c.H<<4|c.V), c.TQ)
	}
	hdr = appendSegment(hdr, mSOF0, sof)
	// DHT segments.
	wdc, wac := [4]bool{}, [4]bool{}
	for _, c := range f.Components {
		if !wdc[c.TD] {
			wdc[c.TD] = true
			hdr = appendSegment(hdr, mDHT, dhtPayload(0, c.TD, f.DC[c.TD]))
		}
		if !wac[c.TA] {
			wac[c.TA] = true
			hdr = appendSegment(hdr, mDHT, dhtPayload(1, c.TA, f.AC[c.TA]))
		}
	}
	if f.RestartInterval > 0 {
		hdr = appendSegment(hdr, mDRI, []byte{
			byte(f.RestartInterval >> 8), byte(f.RestartInterval),
		})
	}
	// SOS.
	sos := []byte{byte(len(f.Components))}
	for _, c := range f.Components {
		sos = append(sos, c.ID, c.TD<<4|c.TA)
	}
	sos = append(sos, 0, 63, 0)
	hdr = appendSegment(hdr, mSOS, sos)
	return hdr
}

func dhtPayload(tc, th byte, spec *huffman.Spec) []byte {
	p := []byte{tc<<4 | th}
	p = append(p, spec.Counts[:]...)
	return append(p, spec.Symbols...)
}

// WriteBaseline synthesizes a complete baseline JPEG file from quantized
// coefficients (per component, raster block order, raster order within each
// block). The restart-marker count follows the spec: one marker every
// RestartInterval MCUs except after the last MCU.
func WriteBaseline(spec *EncodeSpec, coeff [][]int16) ([]byte, error) {
	f, err := fileFromSpec(spec)
	if err != nil {
		return nil, err
	}
	if len(coeff) != len(f.Components) {
		return nil, fmt.Errorf("jpeg: %d coefficient planes for %d components", len(coeff), len(f.Components))
	}
	for i, c := range f.Components {
		if want := c.BlocksWide * c.BlocksHigh * 64; len(coeff[i]) != want {
			return nil, fmt.Errorf("jpeg: component %d has %d coefficients, want %d", i, len(coeff[i]), want)
		}
	}
	total := f.TotalMCUs()
	rstCount := 0
	if f.RestartInterval > 0 {
		rstCount = (total - 1) / f.RestartInterval
	}
	s := &Scan{File: f, Coeff: coeff, PadBit: spec.PadBit, RSTCount: rstCount}
	scan, err := EncodeScan(s)
	if err != nil {
		return nil, err
	}
	out := buildHeader(f, spec)
	out = append(out, scan...)
	out = append(out, 0xFF, mEOI)
	return out, nil
}
