package jpeg

import (
	"errors"

	"lepton/internal/bitio"
)

// This file is the producer half of the row-window streaming pipeline
// (paper §5.1: the deployed system "streams row by row" under a hard
// memory ceiling). DecodeScanStream entropy-decodes the scan exactly like
// DecodeScanInto, but instead of materializing whole coefficient planes it
// borrows one MCU row's worth of block-row buffers from its sink at a
// time, hands each completed row over, and never looks back — per-file
// coefficient memory is one MCU row, not one image.

// RowSink receives decoded coefficient block rows from DecodeScanStream.
// Implementations route rows to the consumers that model-encode them and
// own the buffer lifecycle.
type RowSink interface {
	// GetRowBuf returns a zeroed buffer of Components[ci].BlocksWide*64
	// coefficients for one block row of component ci. The decoder writes
	// only nonzero coefficients, so the buffer must come back zeroed.
	GetRowBuf(ci int) []int16
	// EmitRow hands over the completed block row `row` (absolute index)
	// of component ci. Ownership of coeff transfers to the sink; a non-nil
	// error aborts the scan decode and is returned unwrapped.
	EmitRow(ci, row int, coeff []int16) error
}

// StreamScanInfo is the scan-wide metadata DecodeScanStream reports once
// the whole scan has been decoded — the fields of Scan that are not
// coefficients or positions.
type StreamScanInfo struct {
	PadBit   uint8
	PadSeen  bool
	RSTCount int
	Tail     []byte
}

// errSinkAbort wraps a sink error so the caller can tell producer-side scan
// corruption apart from a consumer that refused a row.
type errSinkAbort struct{ err error }

func (e errSinkAbort) Error() string { return e.err.Error() }
func (e errSinkAbort) Unwrap() error { return e.err }

// SinkErr returns the sink's own error when scan streaming was aborted by
// EmitRow, or nil when err came from the entropy decode itself.
func SinkErr(err error) error {
	var sa errSinkAbort
	if errors.As(err, &sa) {
		return sa.err
	}
	return nil
}

// DecodeScanStream entropy-decodes f's scan in MCU order, emitting each
// block row to sink as soon as its last coefficient is decoded. posAt lists
// ascending MCU indices whose entropy-decoder state (Huffman handover
// words) should be recorded into posOut, which must have the same length;
// both may be nil, and a nil posAt with posOut covering every MCU records
// them all. This is the only MCU walk in the package: DecodeScanInto is a
// slab-backed sink over it, so the buffered and streamed decoders cannot
// diverge on restart handling or pad-bit bookkeeping.
func DecodeScanStream(f *File, sink RowSink, posAt []int, posOut []MCUPos) (*StreamScanInfo, error) {
	d, err := newScanDecoder(f)
	if err != nil {
		return nil, err
	}
	total := f.TotalMCUs()

	// Effective per-component sampling factors: a single-component scan is
	// never interleaved, so its MCU is one block regardless of the SOF's
	// declared factors.
	ncomp := len(f.Components)
	hOf := make([]int, ncomp)
	vOf := make([]int, ncomp)
	for i := range f.Components {
		hOf[i], vOf[i] = f.Components[i].H, f.Components[i].V
		if ncomp == 1 {
			hOf[i], vOf[i] = 1, 1
		}
	}

	// The current MCU row's buffers: group[ci][v] is block row mcuRow*V+v.
	group := make([][][]int16, ncomp)
	for ci := range group {
		group[ci] = make([][]int16, vOf[ci])
	}
	mcuRow := -1
	openGroup := func() {
		for ci := range group {
			for v := range group[ci] {
				group[ci][v] = sink.GetRowBuf(ci)
			}
		}
	}
	emitGroup := func() error {
		for ci := range group {
			for v := range group[ci] {
				if err := sink.EmitRow(ci, mcuRow*vOf[ci]+v, group[ci][v]); err != nil {
					return errSinkAbort{err}
				}
				group[ci][v] = nil
			}
		}
		return nil
	}

	ri := f.RestartInterval
	rstSeen := 0
	rstMissing := false
	recordAll := posAt == nil && len(posOut) == total
	pi := 0
	for mcu := 0; mcu < total; mcu++ {
		if row := mcu / f.MCUsWide; row != mcuRow {
			if mcuRow >= 0 {
				if err := emitGroup(); err != nil {
					return nil, err
				}
			}
			mcuRow = row
			openGroup()
		}
		if ri > 0 && mcu > 0 && mcu%ri == 0 && !rstMissing {
			ok, err := d.tryRestart(byte(rstSeen % 8))
			if err != nil {
				return nil, err
			}
			if ok {
				rstSeen++
				d.prevDC = [MaxComponents]int16{}
			} else {
				// Cease expecting restart markers: the original file's tail
				// was likely zero-filled past the last marker (§A.3).
				rstMissing = true
			}
		}
		if recordAll {
			byteOff, bitOff := d.r.Pos()
			posOut[mcu] = MCUPos{
				ByteOff: int64(byteOff),
				BitOff:  bitOff,
				Partial: d.r.PartialByte(),
				RSTSeen: int32(rstSeen),
				PrevDC:  d.prevDC,
			}
		}
		for pi < len(posAt) && posAt[pi] == mcu {
			byteOff, bitOff := d.r.Pos()
			posOut[pi] = MCUPos{
				ByteOff: int64(byteOff),
				BitOff:  bitOff,
				Partial: d.r.PartialByte(),
				RSTSeen: int32(rstSeen),
				PrevDC:  d.prevDC,
			}
			pi++
		}
		mcuCol := mcu % f.MCUsWide
		for ci := 0; ci < ncomp; ci++ {
			for v := 0; v < vOf[ci]; v++ {
				for h := 0; h < hOf[ci]; h++ {
					bc := mcuCol*hOf[ci] + h
					if err := d.decodeBlock(ci, group[ci][v][bc*64:bc*64+64]); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if mcuRow >= 0 {
		if err := emitGroup(); err != nil {
			return nil, err
		}
	}

	// Final byte alignment: remaining bits of the last byte are padding.
	pads, npads, err := d.r.AlignSkipPad()
	if err != nil {
		if errors.Is(err, bitio.ErrTruncated) {
			// The last byte of the scan was also the last byte of data; no
			// padding present.
			npads = 0
		} else if !errors.Is(err, bitio.ErrMarker) {
			return nil, wrapEntropyErr(err)
		}
	}
	if err := d.notePad(pads[:npads]); err != nil {
		return nil, err
	}
	info := &StreamScanInfo{PadBit: 1, RSTCount: rstSeen}
	if d.padSeen {
		info.PadBit = d.padBit
	}
	info.PadSeen = d.padSeen
	info.Tail = append([]byte(nil), d.r.Remaining()...)
	return info, nil
}
