package jpeg_test

import (
	"testing"

	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

func benchFile(b *testing.B) []byte {
	b.Helper()
	data, err := imagegen.Generate(1, 800, 600)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func BenchmarkParse(b *testing.B) {
	data := benchFile(b)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := jpeg.Parse(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeScan(b *testing.B) {
	data := benchFile(b)
	f, err := jpeg.Parse(data, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(f.ScanData)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpeg.DecodeScan(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeScan(b *testing.B) {
	data := benchFile(b)
	f, _ := jpeg.Parse(data, 0)
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(f.ScanData)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpeg.EncodeScan(s); err != nil {
			b.Fatal(err)
		}
	}
}
