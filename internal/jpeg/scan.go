package jpeg

import (
	"errors"

	"lepton/internal/bitio"
	"lepton/internal/huffman"
)

// MCUPos records the entropy-decoder state at the start of one MCU: the
// position of its first bit in the raw scan bytes, the bits of that byte
// already owned by the previous MCU, the DC predictors, and how many restart
// markers precede it. This is exactly the state a "Huffman handover word"
// carries so an independent thread or chunk can resume encoding mid-stream
// (paper §3.4).
type MCUPos struct {
	ByteOff int64
	BitOff  uint8
	Partial uint8
	RSTSeen int32
	PrevDC  [MaxComponents]int16
}

// Scan holds the fully decoded entropy-coded segment of a baseline JPEG.
type Scan struct {
	File *File
	// Coeff holds quantized DCT coefficients per component, raster block
	// order, 64 int16 per block in raster (not zigzag) order within the
	// block.
	Coeff [][]int16
	// Positions has one entry per MCU.
	Positions []MCUPos
	// PadBit is the bit value the original encoder used to pad partial
	// bytes before restart markers and at the end of the scan.
	PadBit uint8
	// PadSeen reports whether any pad bits were observed; if not, PadBit
	// defaults to 1 (the common choice).
	PadSeen bool
	// RSTCount is the number of restart markers present in the scan. It can
	// be lower than the restart interval implies for corrupt files whose
	// tails were zero-filled (paper §A.3).
	RSTCount int
	// Tail holds unconsumed bytes between the end of the last MCU's data
	// (after padding) and the marker that terminates the scan — arbitrary
	// garbage that must be reproduced verbatim.
	Tail []byte
}

func extend(v uint32, s uint8) int32 {
	if s == 0 {
		return 0
	}
	if v < 1<<(s-1) {
		return int32(v) - int32(1<<s) + 1
	}
	return int32(v)
}

type scanDecoder struct {
	f     *File
	r     *bitio.Reader
	dcDec [4]*huffman.Decoder
	acDec [4]*huffman.Decoder

	prevDC  [MaxComponents]int16
	padBit  uint8
	padSeen bool
}

func newScanDecoder(f *File) (*scanDecoder, error) {
	d := &scanDecoder{f: f, r: bitio.NewReader(f.ScanData)}
	for i := 0; i < 4; i++ {
		if f.DC[i] != nil {
			dec, err := huffman.NewDecoder(f.DC[i])
			if err != nil {
				return nil, reject(ReasonUnsupported, "DC table %d: %v", i, err)
			}
			d.dcDec[i] = dec
		}
		if f.AC[i] != nil {
			dec, err := huffman.NewDecoder(f.AC[i])
			if err != nil {
				return nil, reject(ReasonUnsupported, "AC table %d: %v", i, err)
			}
			d.acDec[i] = dec
		}
	}
	return d, nil
}

// fastCode decodes one Huffman symbol and its trailing raw value bits from a
// single 24-bit peek: a code of length <= 8 from the peek table plus up to 11
// value bits (the symbol's low 4 bits for AC, the whole symbol for DC, as
// selected by sizeMask). ok is false whenever the one-load path cannot apply
// — lookahead crossing a stuffed 0xFF, a marker, the end of input, codes
// longer than the peek table, or a size beyond maxSize — and the caller must
// take the exact bit-by-bit path, whose error handling is authoritative.
func (d *scanDecoder) fastCode(tab *huffman.Decoder, sizeMask, maxSize uint8) (sym uint8, raw uint32, ok bool) {
	bits, ok := d.r.PeekBits(24)
	if !ok {
		return 0, 0, false
	}
	sym, n := tab.PeekSym(uint8(bits >> 16))
	size := sym & sizeMask
	if n == 0 || size > maxSize {
		return 0, 0, false
	}
	raw = bits >> (24 - n - size) & (uint32(1)<<size - 1)
	d.r.SkipBits(n + size)
	return sym, raw, true
}

// decodeBlock entropy-decodes one 8x8 block into out (raster order within
// the block).
func (d *scanDecoder) decodeBlock(comp int, out []int16) error {
	c := &d.f.Components[comp]
	dcTab := d.dcDec[c.TD]
	acTab := d.acDec[c.TA]

	s, raw, ok := d.fastCode(dcTab, 0xFF, 11)
	if !ok {
		var err error
		s, err = dcTab.Decode(d.r)
		if err != nil {
			return wrapEntropyErr(err)
		}
		if s > 11 {
			return reject(ReasonACRange, "DC category %d", s)
		}
		raw, err = d.r.ReadBits(s)
		if err != nil {
			return wrapEntropyErr(err)
		}
	}
	diff := extend(raw, s)
	dc := int32(d.prevDC[comp]) + diff
	if dc < -2048 || dc > 2047 {
		return reject(ReasonACRange, "DC value %d", dc)
	}
	d.prevDC[comp] = int16(dc)
	out[0] = int16(dc)

	k := 1
	for k < 64 {
		rs, raw, fast := d.fastCode(acTab, 0x0F, 10)
		if !fast {
			var err error
			rs, err = acTab.Decode(d.r)
			if err != nil {
				return wrapEntropyErr(err)
			}
		}
		run, size := rs>>4, rs&15
		if size == 0 {
			if run == 15 { // ZRL: sixteen zeros
				k += 16
				continue
			}
			break // EOB
		}
		if size > 10 {
			return reject(ReasonACRange, "AC category %d", size)
		}
		k += int(run)
		if k > 63 {
			return reject(ReasonACRange, "AC run overflows block")
		}
		if !fast {
			// The exact path defers the value-bit read until the symbol and
			// run have been validated, matching the checks' original order;
			// the fast path extracted raw from the peek already.
			var err error
			raw, err = d.r.ReadBits(size)
			if err != nil {
				return wrapEntropyErr(err)
			}
		}
		out[zigzagTable[k]] = int16(extend(raw, size))
		k++
	}
	return nil
}

func wrapEntropyErr(err error) error {
	switch {
	case errors.Is(err, bitio.ErrTruncated):
		return reject(ReasonTruncated, "entropy stream truncated")
	case errors.Is(err, bitio.ErrMarker):
		return reject(ReasonRoundtrip, "unexpected marker in entropy stream")
	default:
		return reject(ReasonRoundtrip, "entropy decode: %v", err)
	}
}

// notePad folds observed pad bits into the scan-wide pad-bit state.
func (d *scanDecoder) notePad(bits []uint8) error {
	for _, b := range bits {
		if !d.padSeen {
			d.padBit = b
			d.padSeen = true
		} else if b != d.padBit {
			return reject(ReasonRoundtrip, "inconsistent pad bits")
		}
	}
	return nil
}

// tryRestart attempts to consume a restart marker at a restart boundary.
// Returns (true, nil) if the marker was present and consumed, (false, nil)
// if absent (zero-filled tail case: decoding continues without a DC reset).
func (d *scanDecoder) tryRestart(expect byte) (bool, error) {
	save := *d.r
	pads, npads, err := d.r.AlignSkipPad()
	if err != nil {
		*d.r = save
		return false, nil
	}
	if _, err := d.r.ReadBit(); !errors.Is(err, bitio.ErrMarker) {
		*d.r = save
		return false, nil
	}
	if at, m := d.r.AtMarker(); !at || m != mRST0+expect {
		*d.r = save
		return false, nil
	}
	if _, err := d.r.SkipMarker(); err != nil {
		*d.r = save
		return false, nil
	}
	if err := d.notePad(pads[:npads]); err != nil {
		return false, err
	}
	return true, nil
}

// ScanBuffers is reusable backing storage for DecodeScanInto: one
// coefficient slab covering every component plane plus the per-MCU position
// table. Pooling these across conversions removes the two dominant
// per-encode allocations.
type ScanBuffers struct {
	Coeff []int16
	Pos   []MCUPos
}

// DecodeScan entropy-decodes the scan of a parsed file into coefficients,
// recording per-MCU handover state.
func DecodeScan(f *File) (*Scan, error) { return DecodeScanInto(f, nil) }

// slabSink adapts whole coefficient planes to the streaming decoder's
// RowSink: row buffers are handed out as consecutive slices of the planes
// (rows arrive strictly in order per component) and EmitRow has nothing
// left to do.
type slabSink struct {
	planes  [][]int16
	rowLen  []int
	nextRow []int
}

func (s *slabSink) GetRowBuf(ci int) []int16 {
	r := s.nextRow[ci]
	s.nextRow[ci] = r + 1
	w := s.rowLen[ci]
	return s.planes[ci][r*w : (r+1)*w : (r+1)*w]
}

func (s *slabSink) EmitRow(ci, row int, coeff []int16) error { return nil }

// DecodeScanInto is DecodeScan drawing coefficient and position storage from
// buf, growing it as needed; the returned Scan aliases buf, so buf must not
// be reused until the Scan is dead. A nil buf allocates fresh storage. It
// is DecodeScanStream over slab-backed rows with every position recorded —
// the buffered and streaming paths share one MCU walk.
func DecodeScanInto(f *File, buf *ScanBuffers) (*Scan, error) {
	s := &Scan{File: f}
	total := f.TotalMCUs()
	need := f.CoefficientCount()
	if buf == nil {
		buf = &ScanBuffers{}
	}
	if cap(buf.Coeff) < need {
		buf.Coeff = make([]int16, need)
	} else {
		// The entropy decoder writes only nonzero coefficients; planes
		// must start zeroed.
		buf.Coeff = buf.Coeff[:need]
		clear(buf.Coeff)
	}
	if cap(buf.Pos) < total {
		buf.Pos = make([]MCUPos, total)
	} else {
		// Every entry is assigned by the walk; no clear needed.
		buf.Pos = buf.Pos[:total]
	}
	sink := &slabSink{nextRow: make([]int, len(f.Components))}
	off := 0
	for _, c := range f.Components {
		n := c.BlocksWide * c.BlocksHigh * 64
		s.Coeff = append(s.Coeff, buf.Coeff[off:off+n:off+n])
		off += n
	}
	sink.planes = s.Coeff
	for i := range f.Components {
		sink.rowLen = append(sink.rowLen, f.Components[i].BlocksWide*64)
	}
	s.Positions = buf.Pos
	info, err := DecodeScanStream(f, sink, nil, s.Positions)
	if err != nil {
		return nil, err
	}
	s.PadBit = info.PadBit
	s.PadSeen = info.PadSeen
	s.RSTCount = info.RSTCount
	s.Tail = info.Tail
	return s, nil
}

// BlockAt returns the coefficient slice for block (row, col) of component c.
func (s *Scan) BlockAt(c, row, col int) []int16 {
	bw := s.File.Components[c].BlocksWide
	b := (row*bw + col) * 64
	return s.Coeff[c][b : b+64]
}
