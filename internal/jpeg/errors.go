// Package jpeg implements the baseline JPEG substrate Lepton depends on:
// marker parsing, Huffman entropy decoding of the scan into quantized DCT
// coefficients, and bit-exact re-encoding of those coefficients back into
// the original entropy-coded bytes (paper §3.1, §3.4).
//
// The package deliberately supports exactly what the deployed Lepton
// supports — three-color or grayscale baseline JPEG with a single
// interleaved scan — and rejects everything else with a typed reason, so
// that the §6.2 error-code distribution can be reproduced.
package jpeg

import (
	"errors"
	"fmt"
)

// Reason classifies why a file was rejected, mirroring the exit codes the
// paper reports in §6.2.
type Reason int

const (
	ReasonNone Reason = iota
	// ReasonProgressive: SOF2 progressive JPEG (3.043% in the paper).
	ReasonProgressive
	// ReasonUnsupported: structurally valid JPEG that Lepton chooses not to
	// handle — multi-scan, hierarchical, arithmetic-coded input, 12-bit
	// precision, header-only files (1.535%).
	ReasonUnsupported
	// ReasonNotImage: no JPEG structure at all (0.801%).
	ReasonNotImage
	// ReasonCMYK: four-color images (0.478%).
	ReasonCMYK
	// ReasonMemDecode: image would exceed the 24 MiB decode budget.
	ReasonMemDecode
	// ReasonMemEncode: image would exceed the 178 MiB encode budget.
	ReasonMemEncode
	// ReasonChromaSub: chroma subsampling larger than the framebuffer slice.
	ReasonChromaSub
	// ReasonACRange: coefficient magnitude outside baseline bounds.
	ReasonACRange
	// ReasonRoundtrip: decode succeeded but re-encode does not reproduce
	// the original bytes (typically mid-file corruption, §A.3).
	ReasonRoundtrip
	// ReasonTruncated: entropy stream ended prematurely.
	ReasonTruncated
)

// String returns the label used in the paper's §6.2 table.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "Success"
	case ReasonProgressive:
		return "Progressive"
	case ReasonUnsupported:
		return "Unsupported JPEG"
	case ReasonNotImage:
		return "Not an image"
	case ReasonCMYK:
		return "4 color CMYK"
	case ReasonMemDecode:
		return ">24 MiB mem decode"
	case ReasonMemEncode:
		return ">178 MiB mem encode"
	case ReasonChromaSub:
		return "Chroma subsample big"
	case ReasonACRange:
		return "AC values out of range"
	case ReasonRoundtrip:
		return "Roundtrip failed"
	case ReasonTruncated:
		return "Truncated"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Error is a typed rejection carrying the §6.2 classification.
type Error struct {
	Reason Reason
	Detail string
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return "jpeg: " + e.Reason.String()
	}
	return "jpeg: " + e.Reason.String() + ": " + e.Detail
}

func reject(r Reason, format string, args ...any) error {
	return &Error{Reason: r, Detail: fmt.Sprintf(format, args...)}
}

// ReasonOf extracts the rejection reason from an error chain, or
// ReasonUnsupported if the error is not a typed rejection.
func ReasonOf(err error) Reason {
	if err == nil {
		return ReasonNone
	}
	var je *Error
	if errors.As(err, &je) {
		return je.Reason
	}
	return ReasonUnsupported
}
