package jpeg_test

import (
	"bytes"
	"testing"

	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

// collectSink gathers streamed rows back into whole planes so the stream
// decoder can be compared against the buffered one.
type collectSink struct {
	f      *jpeg.File
	planes [][]int16
}

func newCollectSink(f *jpeg.File) *collectSink {
	s := &collectSink{f: f}
	for i := range f.Components {
		c := &f.Components[i]
		s.planes = append(s.planes, make([]int16, c.BlocksWide*c.BlocksHigh*64))
	}
	return s
}

func (s *collectSink) GetRowBuf(ci int) []int16 {
	return make([]int16, s.f.Components[ci].BlocksWide*64)
}

func (s *collectSink) EmitRow(ci, row int, coeff []int16) error {
	w := s.f.Components[ci].BlocksWide * 64
	copy(s.planes[ci][row*w:(row+1)*w], coeff)
	return nil
}

var streamCases = []struct {
	name string
	opts imagegen.Options
}{
	{"gray", imagegen.Options{Quality: 85, Grayscale: true, PadBit: 1}},
	{"color444", imagegen.Options{Quality: 85, PadBit: 1}},
	{"color420", imagegen.Options{Quality: 85, SubsampleChroma: true, PadBit: 0}},
	{"color420-rst", imagegen.Options{Quality: 85, SubsampleChroma: true, RestartInterval: 3, PadBit: 1}},
	{"color444-rst", imagegen.Options{Quality: 75, RestartInterval: 7, PadBit: 0}},
}

// TestDecodeScanStreamMatchesBuffered checks the streaming scan decoder
// produces exactly the coefficients, positions, and scan metadata of the
// buffered decoder.
func TestDecodeScanStreamMatchesBuffered(t *testing.T) {
	for _, tc := range streamCases {
		t.Run(tc.name, func(t *testing.T) {
			img := imagegen.Synthesize(11, 168, 120)
			data, err := imagegen.EncodeJPEG(img, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			f, err := jpeg.Parse(data, 0)
			if err != nil {
				t.Fatal(err)
			}
			want, err := jpeg.DecodeScan(f)
			if err != nil {
				t.Fatal(err)
			}
			sink := newCollectSink(f)
			posAt := []int{0, f.MCUsWide * (f.MCUsHigh / 2), f.MCUsWide * (f.MCUsHigh - 1)}
			posOut := make([]jpeg.MCUPos, len(posAt))
			info, err := jpeg.DecodeScanStream(f, sink, posAt, posOut)
			if err != nil {
				t.Fatal(err)
			}
			for ci := range want.Coeff {
				if !int16Equal(want.Coeff[ci], sink.planes[ci]) {
					t.Fatalf("component %d coefficients differ", ci)
				}
			}
			for i, m := range posAt {
				if posOut[i] != want.Positions[m] {
					t.Fatalf("position at MCU %d: %+v != %+v", m, posOut[i], want.Positions[m])
				}
			}
			if info.PadBit != want.PadBit || info.PadSeen != want.PadSeen ||
				info.RSTCount != want.RSTCount || !bytes.Equal(info.Tail, want.Tail) {
				t.Fatalf("scan info %+v differs from buffered scan", info)
			}
		})
	}
}

// feedPlanar drives a StreamScanEncoder from whole planes in the planar
// order the arithmetic model produces rows: every block row of component
// 0's range, then component 1's, and so on.
func feedPlanar(t *testing.T, se *jpeg.StreamScanEncoder, f *jpeg.File, s *jpeg.Scan, startRow, endRow int) {
	t.Helper()
	for ci := range f.Components {
		c := &f.Components[ci]
		v := c.V
		if len(f.Components) == 1 {
			v = 1
		}
		w := c.BlocksWide * 64
		for mr := startRow; mr < endRow; mr++ {
			rows := make([][]int16, 0, v)
			for k := 0; k < v; k++ {
				br := mr*v + k
				rows = append(rows, s.Coeff[ci][br*w:(br+1)*w])
			}
			if err := se.ConsumeGroup(ci, mr, rows); err != nil {
				t.Fatalf("ConsumeGroup(ci=%d, mcuRow=%d): %v", ci, mr, err)
			}
		}
	}
}

// TestStreamScanEncoderMatchesSequential re-encodes segment ranges through
// the planar row-fed encoder and checks the output is byte-identical to the
// sequential whole-plane encoder (and hence to the original scan bytes).
func TestStreamScanEncoderMatchesSequential(t *testing.T) {
	for _, tc := range streamCases {
		t.Run(tc.name, func(t *testing.T) {
			img := imagegen.Synthesize(23, 168, 120)
			data, err := imagegen.EncodeJPEG(img, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			f, err := jpeg.Parse(data, 0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := jpeg.DecodeScan(f)
			if err != nil {
				t.Fatal(err)
			}
			// Two segments split at an MCU-row boundary, like the engine.
			splitRow := f.MCUsHigh / 2
			ranges := [][2]int{
				{0, splitRow * f.MCUsWide},
				{splitRow * f.MCUsWide, f.TotalMCUs()},
			}
			var got []byte
			for i, r := range ranges {
				start, end := r[0], r[1]
				if start >= end {
					continue
				}
				var seed jpeg.MCUPos
				if start > 0 {
					seed = s.Positions[start]
				}
				// Sequential reference for this range.
				ref, err := jpeg.NewScanEncoder(f, s.PadBit, s.RSTCount)
				if err != nil {
					t.Fatal(err)
				}
				ref.Seed(seed)
				if err := ref.EncodeMCURange(s, start, end); err != nil {
					t.Fatal(err)
				}
				atEnd := end == f.TotalMCUs()
				if atEnd {
					ref.Finish(s.Tail)
				}
				// Streaming encoder fed planar rows.
				se, err := jpeg.NewStreamScanEncoder(f, s.PadBit, s.RSTCount, start, end, seed, nil)
				if err != nil {
					t.Fatal(err)
				}
				feedPlanar(t, se, f, s, start/f.MCUsWide, (end+f.MCUsWide-1)/f.MCUsWide)
				out, err := se.Finish(s.Tail, atEnd)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out, ref.Bytes()) {
					t.Fatalf("segment %d [%d,%d): streamed bytes differ from sequential (%d vs %d bytes)",
						i, start, end, len(out), len(ref.Bytes()))
				}
				got = append(got, out...)
			}
			if !bytes.Equal(got, f.ScanData) {
				t.Fatalf("concatenated segments differ from original scan (%d vs %d bytes)", len(got), len(f.ScanData))
			}
		})
	}
}

func int16Equal(a, b []int16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
