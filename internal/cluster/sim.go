// Package cluster is the deployment simulator: a discrete-event model of
// the blockserver fleet, its diurnal workload, the outsourcing strategies
// of §5.5, the DropSpot backfill system of §5.6, and the operational
// anomalies of §6 (transparent huge pages, the decode:encode ramp). It
// regenerates Figures 5 and 9-14 and the §5.6.1 cost analysis.
//
// Per DESIGN.md this is the documented substitution for Dropbox's
// production fleet: service-time distributions are calibrated against this
// repository's measured codec throughput, arrival processes are Poisson
// with the paper's diurnal/weekly structure, and machine capacities follow
// the paper's description (16 cores, two concurrent conversions saturate a
// box).
package cluster

import (
	"container/heap"
	"math"
	"math/rand"
)

// Strategy selects how an oversubscribed blockserver handles new work
// (§5.5).
type Strategy int

const (
	// Control runs everything locally.
	Control Strategy = iota
	// ToDedicated outsources to a dedicated Lepton cluster.
	ToDedicated
	// ToSelf outsources to another random blockserver pair, picking the
	// less loaded (power of two choices).
	ToSelf
)

// String names the strategy as in Figure 9.
func (s Strategy) String() string {
	switch s {
	case Control:
		return "Control"
	case ToDedicated:
		return "To Dedicated"
	case ToSelf:
		return "To Self"
	}
	return "?"
}

// Config parametrizes a fleet simulation.
type Config struct {
	Seed int64
	// Blockservers in the fleet.
	Blockservers int
	// DedicatedServers in the outsourcing cluster (ToDedicated only).
	DedicatedServers int
	// ConversionsPerMachine that fully utilize a machine (paper: 2 on a
	// 16-core box).
	ConversionsPerMachine int
	// Strategy and Threshold: outsource when local in-flight conversions
	// exceed Threshold (paper: >3).
	Strategy  Strategy
	Threshold int
	// EncodeService and DecodeService are base service times in seconds
	// for one conversion at full speed (calibrated from the codec's
	// measured throughput on ~1.5 MB images).
	EncodeService float64
	DecodeService float64
	// EncodesPerSecond at the weekly baseline; decode rate is derived from
	// the decode:encode ratio. This is the rate of arrival *events*; each
	// event carries a batch (camera uploads sync whole albums).
	EncodesPerSecond float64
	// BatchMean is the mean number of conversions per arrival event (>=1).
	// Bursts are what make random load balancing collide: "individual
	// blockservers will routinely get 15 encodes at once during peak"
	// (§5.5).
	BatchMean float64
	// DecodeRatio is decodes:encodes (paper: ~1.0 weekend, ~1.5 weekday,
	// much lower during early rollout).
	DecodeRatio float64
	// Duration of simulated time in seconds.
	Duration float64
	// Diurnal enables the daily sinusoidal load swing.
	Diurnal bool
	// THPFraction is the fraction of machines with transparent huge pages
	// enabled (§6.3); they suffer pre-read stalls.
	THPFraction float64
	// THPDisableAt, if positive, turns THP off fleet-wide at that time.
	THPDisableAt float64
}

// DefaultConfig mirrors the paper's description at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		Blockservers:          40,
		DedicatedServers:      10,
		ConversionsPerMachine: 2,
		Strategy:              Control,
		Threshold:             3,
		// The paper's production medians: encode ~170 ms, decode ~60 ms
		// (§4.1). The cost analysis uses this repository's measured Go
		// throughput instead; here the goal is the fleet dynamics.
		EncodeService:    0.17,
		DecodeService:    0.06,
		EncodesPerSecond: 6,  // arrival *events*; bursts below
		BatchMean:        10, // album-sized upload bursts
		DecodeRatio:      1.5,
		Duration:         24 * 3600,
		Diurnal:          true,
	}
}

// jobKind distinguishes encodes from decodes.
type jobKind int

const (
	jobEncode jobKind = iota
	jobDecode
)

// event kinds.
type evKind int

const (
	evArrival evKind = iota
	evDeparture
)

type event struct {
	t    float64
	kind evKind
	job  *job
	seq  int64
	// gen snapshots job.machine.gen at push time for departure events; a
	// mismatch at pop time marks the event stale (the machine's schedule
	// was rebuilt by a later settle).
	gen int64
}

type job struct {
	kind     jobKind
	arrive   float64
	start    float64
	machine  *machine
	service  float64 // remaining base service at full speed
	rate     float64 // current processing rate (1 = full speed)
	lastTick float64
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }

type machine struct {
	id        int
	capacity  int // conversions at full speed
	jobs      map[*job]struct{}
	dedicated bool
	thp       bool
	// gen invalidates previously scheduled departure events whenever the
	// job set (and hence every job's finish time) changes.
	gen int64
	// thpCredit counts penalty-free decodes after a defrag stall (§6.3:
	// pre-faulted huge pages are consumed over the next ~10 decodes).
	thpCredit int
}

func (m *machine) rate() float64 {
	n := len(m.jobs)
	if n <= m.capacity {
		return 1
	}
	return float64(m.capacity) / float64(n)
}

// Metrics collects simulation outputs.
type Metrics struct {
	// EncodeLatency and DecodeLatency are sojourn times in seconds.
	EncodeLatency []float64
	DecodeLatency []float64
	// LatencyTimes records the completion time of each decode latency
	// sample (for hourly bucketing, Figure 12/14).
	DecodeTimes []float64
	EncodeTimes []float64
	// ConcurrencyP99 per hour: the p99 over per-machine concurrent Lepton
	// conversions sampled each simulated minute (Figure 9).
	ConcurrencySamples []float64
	ConcurrencyTimes   []float64
	// Outsourced counts forwarded conversions.
	Outsourced int64
	// Arrivals by kind.
	Encodes, Decodes int64
}

// Sim is a fleet simulation run.
type Sim struct {
	cfg     Config
	rng     *rand.Rand
	now     float64
	seq     int64
	events  eventHeap
	fleet   []*machine
	dedic   []*machine
	metrics Metrics
}

// NewSim builds a simulation from cfg.
func NewSim(cfg Config) *Sim {
	s := &Sim{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.Blockservers; i++ {
		m := &machine{id: i, capacity: cfg.ConversionsPerMachine, jobs: map[*job]struct{}{}}
		if cfg.THPFraction > 0 && s.rng.Float64() < cfg.THPFraction {
			m.thp = true
		}
		s.fleet = append(s.fleet, m)
	}
	if cfg.Strategy == ToDedicated {
		for i := 0; i < cfg.DedicatedServers; i++ {
			s.dedic = append(s.dedic, &machine{
				id: 1000 + i, capacity: cfg.ConversionsPerMachine,
				jobs: map[*job]struct{}{}, dedicated: true,
			})
		}
	}
	return s
}

func (s *Sim) push(t float64, kind evKind, j *job) {
	s.seq++
	var gen int64
	if kind == evDeparture {
		gen = j.machine.gen
	}
	heap.Push(&s.events, &event{t: t, kind: kind, job: j, seq: s.seq, gen: gen})
}

// rateAt returns the load multiplier at time t: a daily sinusoid peaking in
// the afternoon, plus the weekday/weekend decode structure of Figure 5.
func (s *Sim) rateAt(t float64, kind jobKind) float64 {
	base := s.cfg.EncodesPerSecond
	if kind == jobDecode {
		ratio := s.cfg.DecodeRatio
		day := int(t/86400) % 7
		if day >= 5 { // weekend: users sync fewer photos to clients
			ratio *= 0.67
		}
		base *= ratio
	}
	if !s.cfg.Diurnal {
		return base
	}
	// Peak at ~15:00, trough at ~03:00; swing of ±45%.
	phase := 2 * math.Pi * (math.Mod(t, 86400)/86400 - 0.625)
	return base * (1 + 0.45*math.Cos(phase))
}

// nextArrival samples the next arrival of kind after t with a
// thinning-based nonhomogeneous Poisson process.
func (s *Sim) nextArrival(t float64, kind jobKind) float64 {
	lambdaMax := s.cfg.EncodesPerSecond * (1 + 0.45)
	if kind == jobDecode {
		lambdaMax *= s.cfg.DecodeRatio
	}
	if lambdaMax <= 0 {
		return math.Inf(1)
	}
	for {
		t += s.rng.ExpFloat64() / lambdaMax
		if s.rng.Float64() <= s.rateAt(t, kind)/lambdaMax {
			return t
		}
	}
}

// settle advances all jobs on machine m to time t at the machine's current
// processing rate, then schedules exactly one departure event — the
// earliest-finishing job's. Scheduling one event per machine instead of one
// per job keeps the event heap proportional to the fleet rather than to the
// total queued work, which is what made long oversubscribed simulations
// quadratically slow.
func (s *Sim) settle(m *machine, t float64) {
	rate := m.rate()
	m.gen++
	var next *job
	var nextT float64
	for j := range m.jobs {
		j.service -= (t - j.lastTick) * j.rate
		if j.service < 0 {
			j.service = 0
		}
		j.lastTick = t
		j.rate = rate
		if ft := t + j.service/rate; next == nil || ft < nextT {
			next, nextT = j, ft
		}
	}
	if next != nil {
		s.push(nextT, evDeparture, next)
	}
}

func (s *Sim) serviceTime(kind jobKind, m *machine) float64 {
	base := s.cfg.EncodeService
	if kind == jobDecode {
		base = s.cfg.DecodeService
	}
	// Log-normal-ish size variation around the mean.
	base *= math.Exp(s.rng.NormFloat64() * 0.35)
	if kind == jobDecode && m.thp && (s.cfg.THPDisableAt <= 0 || s.now < s.cfg.THPDisableAt) {
		// §6.3: on THP machines the kernel may spend seconds defragmenting
		// before the process reads its first byte; the pre-faulted pages
		// are then consumed without penalty over the next ~10 decodes.
		if m.thpCredit > 0 {
			m.thpCredit--
		} else if s.rng.Float64() < 0.35 {
			base += 0.4 + s.rng.ExpFloat64()*1.2
			m.thpCredit = 10
		}
	}
	return base
}

// pickMachine implements the load balancer (random) plus the outsourcing
// strategy.
func (s *Sim) pickMachine(kind jobKind) (*machine, bool) {
	m := s.fleet[s.rng.Intn(len(s.fleet))]
	if kind != jobEncode || s.cfg.Strategy == Control {
		return m, false
	}
	if len(m.jobs) <= s.cfg.Threshold {
		return m, false
	}
	switch s.cfg.Strategy {
	case ToDedicated:
		if len(s.dedic) > 0 {
			return s.dedic[s.rng.Intn(len(s.dedic))], true
		}
	case ToSelf:
		a := s.fleet[s.rng.Intn(len(s.fleet))]
		b := s.fleet[s.rng.Intn(len(s.fleet))]
		best := a
		if len(b.jobs) < len(a.jobs) {
			best = b
		}
		if len(best.jobs) < len(m.jobs) {
			return best, true
		}
	}
	return m, false
}

// Run executes the simulation and returns its metrics.
func (s *Sim) Run() *Metrics {
	heap.Init(&s.events)
	s.push(s.nextArrival(0, jobEncode), evArrival, &job{kind: jobEncode})
	s.push(s.nextArrival(0, jobDecode), evArrival, &job{kind: jobDecode})
	nextSample := 60.0

	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.t > s.cfg.Duration {
			break
		}
		s.now = e.t
		for nextSample <= s.now {
			s.sampleConcurrency(nextSample)
			nextSample += 60
		}
		switch e.kind {
		case evArrival:
			kind := e.job.kind
			// Schedule the next arrival event of this kind.
			s.push(s.nextArrival(s.now, kind), evArrival, &job{kind: kind})
			for n := s.batchSize(); n > 0; n-- {
				j := &job{kind: kind, arrive: s.now}
				if kind == jobEncode {
					s.metrics.Encodes++
				} else {
					s.metrics.Decodes++
				}
				m, outsourced := s.pickMachine(j.kind)
				j.machine = m
				j.start = s.now
				j.service = s.serviceTime(j.kind, m)
				if outsourced {
					s.metrics.Outsourced++
					// §5.5: the remote TCP hop costs ~7.9% over the local
					// Unix-domain socket.
					j.service *= 1.079
				}
				j.lastTick = s.now
				m.jobs[j] = struct{}{}
				s.settle(m, s.now)
			}
		case evDeparture:
			j := e.job
			if j.machine == nil || e.gen != j.machine.gen {
				continue // stale: the schedule was rebuilt after this push
			}
			j.service = 0
			j.lastTick = s.now
			delete(j.machine.jobs, j)
			s.settle(j.machine, s.now)
			lat := s.now - j.arrive
			if j.kind == jobEncode {
				s.metrics.EncodeLatency = append(s.metrics.EncodeLatency, lat)
				s.metrics.EncodeTimes = append(s.metrics.EncodeTimes, s.now)
			} else {
				s.metrics.DecodeLatency = append(s.metrics.DecodeLatency, lat)
				s.metrics.DecodeTimes = append(s.metrics.DecodeTimes, s.now)
			}
			j.machine = nil
		}
	}
	return &s.metrics
}

// batchSize samples the number of conversions in one arrival event
// (geometric with the configured mean).
func (s *Sim) batchSize() int {
	if s.cfg.BatchMean <= 1 {
		return 1
	}
	p := 1 / s.cfg.BatchMean
	n := 1
	for n < 64 && s.rng.Float64() > p {
		n++
	}
	return n
}

// sampleConcurrency records the p99 over machines of concurrent
// conversions at time t.
func (s *Sim) sampleConcurrency(t float64) {
	vals := make([]float64, 0, len(s.fleet))
	for _, m := range s.fleet {
		vals = append(vals, float64(len(m.jobs)))
	}
	// p99 across machines.
	idx := len(vals) - 1 - len(vals)/100
	if idx < 0 {
		idx = 0
	}
	// partial selection: simple sort-free max-ish; use full sort for
	// clarity at this scale.
	v := append([]float64(nil), vals...)
	insertionSort(v)
	s.metrics.ConcurrencySamples = append(s.metrics.ConcurrencySamples, v[idx])
	s.metrics.ConcurrencyTimes = append(s.metrics.ConcurrencyTimes, t)
}

func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
