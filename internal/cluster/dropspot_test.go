package cluster

import "testing"

func TestDropSpotValidation(t *testing.T) {
	if _, err := NewDropSpot(5, 5, 3); err == nil {
		t.Fatal("equal thresholds must be rejected")
	}
	if _, err := NewDropSpot(5, 8, 3); err == nil {
		t.Fatal("inverted thresholds must be rejected")
	}
	if _, err := NewDropSpot(5, 2, -1); err == nil {
		t.Fatal("negative reimage time must be rejected")
	}
}

func TestDropSpotAllocatesThroughPipeline(t *testing.T) {
	d, err := NewDropSpot(10, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.ObserveRoom("east-1", 20)
	// Machines must not encode before the reimage delay elapses.
	d.Step()
	if d.Encoding() != 0 || d.Imaging() != 1 {
		t.Fatalf("after 1 tick: encoding=%d imaging=%d", d.Encoding(), d.Imaging())
	}
	d.Step()
	d.Step()
	d.Step()
	if d.Encoding() == 0 {
		t.Fatalf("pipeline never completed: imaging=%d", d.Imaging())
	}
}

func TestDropSpotHysteresis(t *testing.T) {
	d, err := NewDropSpot(10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.ObserveRoom("west-2", 11)
	d.Step() // free 11 > 10: allocate -> free 10
	if d.Encoding() != 1 {
		t.Fatalf("encoding = %d", d.Encoding())
	}
	// free now 10, inside the [3,10] band: no movement either way.
	for i := 0; i < 5; i++ {
		d.Step()
	}
	if d.Encoding() != 1 {
		t.Fatalf("hysteresis band violated: encoding = %d", d.Encoding())
	}
	// Demand spike: free drops below the release threshold.
	d.ObserveRoom("west-2", 1)
	d.Step()
	if d.Encoding() != 0 {
		t.Fatalf("machine not released: encoding = %d", d.Encoding())
	}
}

func TestDropSpotReleasesPipelineFirst(t *testing.T) {
	d, _ := NewDropSpot(5, 2, 10)
	d.ObserveRoom("r", 6)
	d.Step() // one machine enters the pipeline
	if d.Imaging() != 1 {
		t.Fatalf("imaging = %d", d.Imaging())
	}
	d.ObserveRoom("r", 0)
	d.Step()
	if d.Imaging() != 0 {
		t.Fatal("pipeline machine not released first")
	}
}

func TestDropSpotMultiRoomAndReleaseAll(t *testing.T) {
	d, _ := NewDropSpot(4, 1, 0)
	d.ObserveRoom("a", 8)
	d.ObserveRoom("b", 8)
	d.ObserveRoom("c", 2)
	for i := 0; i < 4; i++ {
		d.Step()
	}
	if d.RoomEncoding("a") == 0 || d.RoomEncoding("b") == 0 {
		t.Fatalf("rooms a/b idle: %d/%d", d.RoomEncoding("a"), d.RoomEncoding("b"))
	}
	if d.RoomEncoding("c") != 0 {
		t.Fatal("room c should never allocate")
	}
	total := d.Encoding()
	d.ReleaseAll()
	if d.Encoding() != 0 || d.Imaging() != 0 {
		t.Fatal("ReleaseAll left machines allocated")
	}
	_ = total
}

func TestDropSpotDeterministicOrder(t *testing.T) {
	// Map iteration must not make allocation order nondeterministic.
	run := func() []int {
		d, _ := NewDropSpot(3, 1, 2)
		d.ObserveRoom("z", 5)
		d.ObserveRoom("a", 5)
		d.ObserveRoom("m", 5)
		var counts []int
		for i := 0; i < 6; i++ {
			d.Step()
			counts = append(counts, d.Encoding(), d.Imaging())
		}
		return counts
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at step %d: %v vs %v", i, a, b)
		}
	}
}
