package cluster

import (
	"fmt"
	"sort"
)

// DropSpot is the spare-capacity manager of §5.6: it watches free machines
// per server room, allocates a machine for Lepton backfill when a room's
// free count exceeds a high threshold, and releases machines back when free
// capacity runs low. Wiping and reimaging takes hours, so allocations pass
// through a pipeline before they contribute encoding throughput.
type DropSpot struct {
	// AllocateAbove: allocate from a room when its free-machine count
	// exceeds this.
	AllocateAbove int
	// ReleaseBelow: release back to a room when its free count drops below
	// this. Must be < AllocateAbove for hysteresis.
	ReleaseBelow int
	// ReimageTicks is how many Step calls a machine spends wiping and
	// reimaging before it encodes (paper: 2-4 hours).
	ReimageTicks int

	rooms map[string]*room
}

type room struct {
	name     string
	free     int
	imaging  []int // countdown per machine in the reimage pipeline
	encoding int
}

// NewDropSpot builds a manager with the given hysteresis thresholds.
func NewDropSpot(allocateAbove, releaseBelow, reimageTicks int) (*DropSpot, error) {
	if releaseBelow >= allocateAbove {
		return nil, fmt.Errorf("dropspot: release threshold %d must be below allocate threshold %d",
			releaseBelow, allocateAbove)
	}
	if reimageTicks < 0 {
		return nil, fmt.Errorf("dropspot: negative reimage time")
	}
	return &DropSpot{
		AllocateAbove: allocateAbove,
		ReleaseBelow:  releaseBelow,
		ReimageTicks:  reimageTicks,
		rooms:         map[string]*room{},
	}, nil
}

// ObserveRoom updates a room's current free-machine count (from the
// capacity monitoring system).
func (d *DropSpot) ObserveRoom(name string, free int) {
	r, ok := d.rooms[name]
	if !ok {
		r = &room{name: name}
		d.rooms[name] = r
	}
	r.free = free
}

// Step advances one tick: machines finish reimaging, over-provisioned
// rooms allocate one more machine into the pipeline, under-provisioned
// rooms get one encoding machine back immediately (release is fast; only
// acquisition pays the reimage cost).
func (d *DropSpot) Step() {
	for _, name := range d.roomNames() {
		r := d.rooms[name]
		// Advance the reimage pipeline.
		var still []int
		for _, ticks := range r.imaging {
			if ticks <= 1 {
				r.encoding++
			} else {
				still = append(still, ticks-1)
			}
		}
		r.imaging = still
		switch {
		case r.free > d.AllocateAbove:
			// A sufficiently diverse reserve must stay available (§5.6);
			// take one machine per tick, not all of them.
			r.free--
			if d.ReimageTicks == 0 {
				r.encoding++
			} else {
				r.imaging = append(r.imaging, d.ReimageTicks)
			}
		case r.free < d.ReleaseBelow:
			// Give capacity back: drain the pipeline first (those machines
			// were not productive yet), then encoding machines.
			if len(r.imaging) > 0 {
				r.imaging = r.imaging[:len(r.imaging)-1]
				r.free++
			} else if r.encoding > 0 {
				r.encoding--
				r.free++
			}
		}
	}
}

func (d *DropSpot) roomNames() []string {
	names := make([]string, 0, len(d.rooms))
	for n := range d.rooms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Encoding returns the total machines currently running Lepton backfill.
func (d *DropSpot) Encoding() int {
	n := 0
	for _, r := range d.rooms {
		n += r.encoding
	}
	return n
}

// Imaging returns machines in the wipe/reimage pipeline.
func (d *DropSpot) Imaging() int {
	n := 0
	for _, r := range d.rooms {
		n += len(r.imaging)
	}
	return n
}

// RoomEncoding returns one room's backfill machine count.
func (d *DropSpot) RoomEncoding(name string) int {
	if r, ok := d.rooms[name]; ok {
		return r.encoding
	}
	return 0
}

// ReleaseAll returns every machine (pipeline and encoding) to its room —
// the shutoff path.
func (d *DropSpot) ReleaseAll() {
	for _, r := range d.rooms {
		r.free += len(r.imaging) + r.encoding
		r.imaging = nil
		r.encoding = 0
	}
}
