package cluster

import (
	"math"

	"lepton/internal/stats"
)

// HourlySeries is a labeled time series with one value per hour.
type HourlySeries struct {
	Label string
	Hours []float64
	Vals  []float64
}

// ConfigOption mutates a figure's simulation Config before it runs. The
// figure functions accept options so callers (notably -short test runs)
// can scale fleets and durations down without changing the defaults every
// other consumer sees.
type ConfigOption func(*Config)

// Figure5 reproduces the weekly workload structure: hourly encode and
// decode event counts over one simulated week, each normalized to its
// weekly minimum. Weekday decode rates exceed weekend rates while encode
// rates stay flat — users shoot as many photos on weekends but sync fewer.
func Figure5(seed int64, opts ...ConfigOption) (decodes, encodes HourlySeries) {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 7 * 86400
	cfg.Blockservers = 16 // workload shape only; keep the fleet light
	cfg.BatchMean = 3
	for _, o := range opts {
		o(&cfg)
	}
	m := NewSim(cfg).Run()

	bucket := func(times []float64) []float64 {
		out := make([]float64, int(cfg.Duration/3600))
		for _, t := range times {
			h := int(t / 3600)
			if h >= 0 && h < len(out) {
				out[h]++
			}
		}
		return out
	}
	norm := func(v []float64) []float64 {
		min := math.Inf(1)
		for _, x := range v {
			if x > 0 && x < min {
				min = x
			}
		}
		if math.IsInf(min, 1) {
			return v
		}
		out := make([]float64, len(v))
		for i, x := range v {
			out[i] = x / min
		}
		return out
	}
	hours := make([]float64, int(cfg.Duration/3600))
	for i := range hours {
		hours[i] = float64(i)
	}
	return HourlySeries{Label: "decodes", Hours: hours, Vals: norm(bucket(m.DecodeTimes))},
		HourlySeries{Label: "encodes", Hours: hours, Vals: norm(bucket(m.EncodeTimes))}
}

// Figure9Row is one strategy's hourly p99 of concurrent conversions.
type Figure9Row struct {
	Strategy Strategy
	Hours    []float64
	P99      []float64
}

// Figure9 reproduces the concurrent-process comparison: the 99th percentile
// (across machines, per minute, aggregated hourly) of simultaneous Lepton
// conversions for each outsourcing strategy over one day.
func Figure9(seed int64, threshold int, opts ...ConfigOption) []Figure9Row {
	var rows []Figure9Row
	for _, strat := range []Strategy{ToSelf, ToDedicated, Control} {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Strategy = strat
		cfg.Threshold = threshold
		for _, o := range opts {
			o(&cfg)
		}
		m := NewSim(cfg).Run()
		// Aggregate minute samples into hourly p99-of-samples.
		nh := int(cfg.Duration / 3600)
		hours := make([]float64, nh)
		p99 := make([]float64, nh)
		byHour := make([][]float64, nh)
		for i, t := range m.ConcurrencyTimes {
			h := int(t / 3600)
			if h >= 0 && h < nh {
				byHour[h] = append(byHour[h], m.ConcurrencySamples[i])
			}
		}
		for h := 0; h < nh; h++ {
			hours[h] = float64(h)
			p99[h] = stats.Percentile(byHour[h], 99)
		}
		rows = append(rows, Figure9Row{Strategy: strat, Hours: hours, P99: p99})
	}
	return rows
}

// Figure10Row summarizes compression latency percentiles for one strategy
// and threshold at near-peak and peak load.
type Figure10Row struct {
	Strategy  Strategy
	Threshold int
	NearPeak  stats.Summary
	Peak      stats.Summary
}

// Figure10 reproduces the percentile timing comparison of outsourcing
// strategies with thresholds 3 and 4 (plus control).
func Figure10(seed int64, opts ...ConfigOption) []Figure10Row {
	var rows []Figure10Row
	run := func(strat Strategy, thr int) Figure10Row {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Strategy = strat
		cfg.Threshold = thr
		for _, o := range opts {
			o(&cfg)
		}
		m := NewSim(cfg).Run()
		// Peak = 13:00-17:00; near-peak = 09:00-13:00 (diurnal peak ~15:00).
		var near, peak []float64
		for i, t := range m.EncodeTimes {
			h := math.Mod(t, 86400) / 3600
			switch {
			case h >= 13 && h < 17:
				peak = append(peak, m.EncodeLatency[i])
			case h >= 9 && h < 13:
				near = append(near, m.EncodeLatency[i])
			}
		}
		return Figure10Row{Strategy: strat, Threshold: thr,
			NearPeak: stats.Summarize(near), Peak: stats.Summarize(peak)}
	}
	for _, strat := range []Strategy{ToDedicated, ToSelf} {
		for _, thr := range []int{3, 4} {
			rows = append(rows, run(strat, thr))
		}
	}
	rows = append(rows, run(Control, 1<<30))
	return rows
}

// Figure12Point is an hourly latency percentile sample.
type Figure12Point struct {
	Hour               float64
	P50, P75, P95, P99 float64
}

// Figure12 reproduces the transparent-huge-pages anomaly: hourly decode
// latency percentiles with THP enabled on most machines, disabled partway
// through (production disabled it April 13 at 03:00).
func Figure12(seed int64, opts ...ConfigOption) []Figure12Point {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 20 * 3600
	cfg.THPFraction = 0.6
	cfg.THPDisableAt = 6 * 3600
	for _, o := range opts {
		o(&cfg)
	}
	m := NewSim(cfg).Run()
	nh := int(cfg.Duration / 3600)
	byHour := make([][]float64, nh)
	for i, t := range m.DecodeTimes {
		h := int(t / 3600)
		if h >= 0 && h < nh {
			byHour[h] = append(byHour[h], m.DecodeLatency[i])
		}
	}
	var out []Figure12Point
	for h := 0; h < nh; h++ {
		s := stats.Summarize(byHour[h])
		out = append(out, Figure12Point{Hour: float64(h), P50: s.P50, P75: s.P75, P95: s.P95, P99: s.P99})
	}
	return out
}

// RolloutRatio models Figure 13: the decode:encode ratio as a function of
// days since rollout. Only content uploaded after rollout needs a Lepton
// decode, and downloads skew heavily toward recent content, so the ratio
// climbs from zero toward the steady-state decode:encode ratio as the
// Lepton-compressed fraction of *accessed* content saturates ("boiling the
// frog", §6.4).
func RolloutRatio(day float64, steadyRatio, recencyDays float64) float64 {
	if day < 0 {
		return 0
	}
	return steadyRatio * (1 - math.Exp(-day/recencyDays))
}

// Figure13 returns the ratio curve over the first n days.
func Figure13(n int) ([]float64, []float64) {
	days := make([]float64, n)
	ratio := make([]float64, n)
	for d := 0; d < n; d++ {
		days[d] = float64(d)
		ratio[d] = RolloutRatio(float64(d), 1.7, 45)
	}
	return days, ratio
}

// Figure14Point is a biweekly decode-latency percentile sample during the
// months after rollout, before outsourcing existed.
type Figure14Point struct {
	Day                float64
	P50, P75, P95, P99 float64
}

// Figure14 reproduces the slow p99 degradation of §6.4: as the
// decode:encode ratio ramps, a fleet provisioned for launch-day load
// develops multi-second tail latencies. Each sample point runs a short
// fleet simulation (no outsourcing) at that day's decode rate.
func Figure14(seed int64, days, stepDays int, opts ...ConfigOption) []Figure14Point {
	var out []Figure14Point
	for d := 0; d <= days; d += stepDays {
		cfg := DefaultConfig()
		cfg.Seed = seed + int64(d)
		cfg.Duration = 4 * 3600
		cfg.Diurnal = false
		cfg.Strategy = Control
		// The fleet was sized when decodes were rare; demand grows with
		// the rollout ramp and organic growth.
		cfg.DecodeRatio = RolloutRatio(float64(d), 2.4, 45)
		cfg.EncodesPerSecond = 5 * (1 + float64(d)/240)
		for _, o := range opts {
			o(&cfg)
		}
		m := NewSim(cfg).Run()
		s := stats.Summarize(m.DecodeLatency)
		out = append(out, Figure14Point{Day: float64(d), P50: s.P50, P75: s.P75, P95: s.P95, P99: s.P99})
	}
	return out
}
