package cluster

import (
	"math/rand"

	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
	"lepton/internal/store"
)

// ErrorCorpusMix holds the §6.2 anomaly proportions observed during the
// first two months of backfill. The corpus generator reproduces each class
// with real (not simulated) file contents so the classification exercises
// the actual codec.
var ErrorCorpusMix = []struct {
	Reason jpeg.Reason
	Frac   float64
}{
	{jpeg.ReasonNone, 0.94069},
	{jpeg.ReasonProgressive, 0.03043},
	{jpeg.ReasonUnsupported, 0.01535},
	{jpeg.ReasonNotImage, 0.00801},
	{jpeg.ReasonCMYK, 0.00478},
	{jpeg.ReasonMemDecode, 0.00024},
	{jpeg.ReasonChromaSub, 0.00003},
	{jpeg.ReasonRoundtrip, 0.00001},
}

// BuildErrorCorpus generates n files with the paper's anomaly mix (each
// class gets at least one file when n is large enough to represent it).
func BuildErrorCorpus(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	var out [][]byte
	counts := make([]int, len(ErrorCorpusMix))
	// Largest-remainder allocation so small classes appear.
	assigned := 0
	for i, mix := range ErrorCorpusMix {
		c := int(mix.Frac * float64(n))
		if c == 0 && mix.Frac > 0 && n >= 50 && i > 0 {
			c = 1
		}
		counts[i] = c
		assigned += c
	}
	counts[0] += n - assigned

	mkValid := func() []byte {
		w := 48 + rng.Intn(160)
		h := 48 + rng.Intn(160)
		data, err := imagegen.Generate(rng.Int63(), w, h)
		if err != nil {
			panic(err)
		}
		return data
	}
	for i, mix := range ErrorCorpusMix {
		for j := 0; j < counts[i]; j++ {
			switch mix.Reason {
			case jpeg.ReasonNone:
				out = append(out, mkValid())
			case jpeg.ReasonProgressive:
				out = append(out, imagegen.MakeProgressive(mkValid()))
			case jpeg.ReasonUnsupported:
				// Header-only files: "JPEG files that consist entirely of
				// a header" (§6.2).
				out = append(out, imagegen.HeaderOnly(mkValid()))
			case jpeg.ReasonNotImage:
				out = append(out, imagegen.NotImage(rng.Int63(), 512+rng.Intn(4096)))
			case jpeg.ReasonCMYK:
				out = append(out, imagegen.CMYKStub())
			case jpeg.ReasonMemDecode:
				// Since the row-window refactor, decode memory scales with
				// image width × segments instead of pixel count — a merely
				// large image now streams within budget, so the memory
				// class is a maximal-width frame whose per-segment row
				// windows alone exceed the 24 MiB ceiling.
				out = append(out, imagegen.OversizeStub(rng.Int63()))
			case jpeg.ReasonChromaSub:
				out = append(out, imagegen.BigChromaStub())
			case jpeg.ReasonRoundtrip:
				// Zero-filled tails (§A.3) with restart markers so the
				// missing-RST region breaks the round trip.
				img := imagegen.Synthesize(rng.Int63(), 160, 120)
				data, err := imagegen.EncodeJPEG(img, imagegen.Options{
					Quality: 85, SubsampleChroma: true, RestartInterval: 2, PadBit: 1,
				})
				if err != nil {
					panic(err)
				}
				out = append(out, imagegen.ZeroFillTail(data, len(data)/3))
			}
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ErrorCodeTable runs the qualification pipeline over an error corpus and
// returns the observed distribution (the §6.2 table).
func ErrorCodeTable(seed int64, n int) *store.QualReport {
	return store.Qualify(BuildErrorCorpus(seed, n))
}
