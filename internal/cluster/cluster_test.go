package cluster

import (
	"math"
	"testing"

	"lepton/internal/jpeg"
	"lepton/internal/stats"
)

func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Blockservers = 32
	cfg.Duration = 2 * 3600
	return cfg
}

// scaleDown shrinks a simulation for `go test -short`: a quarter-size fleet
// with proportionally scaled arrivals keeps per-server load — and with it
// every figure's qualitative shape (diurnal peaks, weekday/weekend
// structure, outsourcing orderings) — while cutting runtime from minutes to
// seconds. Full-scale parameters still run in the default (non-short) mode
// and in CI's full pass.
func scaleDown(t *testing.T) ConfigOption {
	t.Helper()
	if !testing.Short() {
		return func(*Config) {}
	}
	return func(cfg *Config) {
		// Shrink the fleet and the fleet-wide arrival rate by the same
		// factor: per-machine load — the quantity every figure's dynamics
		// depend on — is unchanged, while total simulated jobs (the cost
		// driver) drop proportionally.
		n := max(5, cfg.Blockservers/4)
		f := float64(cfg.Blockservers) / float64(n)
		cfg.Blockservers = n
		// Round the dedicated pool up: rounding down starves the
		// ToDedicated strategy of proportionally more capacity than the
		// fleet lost, inverting Figure 10's ordering at small scale.
		cfg.DedicatedServers = max(2, int(math.Ceil(float64(cfg.DedicatedServers)/f)))
		cfg.EncodesPerSecond /= f
	}
}

func TestSimRunsAndConserves(t *testing.T) {
	cfg := shortConfig()
	m := NewSim(cfg).Run()
	if m.Encodes == 0 || m.Decodes == 0 {
		t.Fatalf("no arrivals: %d/%d", m.Encodes, m.Decodes)
	}
	// Most jobs arriving well before the end must complete.
	done := len(m.EncodeLatency) + len(m.DecodeLatency)
	total := int(m.Encodes + m.Decodes)
	if float64(done) < 0.9*float64(total) {
		t.Fatalf("only %d of %d jobs completed", done, total)
	}
	// Latencies must be at least the base service time (minus noise floor)
	// and positive.
	for _, l := range m.EncodeLatency[:min(100, len(m.EncodeLatency))] {
		if l <= 0 {
			t.Fatalf("non-positive latency %v", l)
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	a := NewSim(shortConfig()).Run()
	b := NewSim(shortConfig()).Run()
	if a.Encodes != b.Encodes || a.Decodes != b.Decodes ||
		len(a.EncodeLatency) != len(b.EncodeLatency) {
		t.Fatal("same seed produced different runs")
	}
	for i := range a.EncodeLatency {
		if a.EncodeLatency[i] != b.EncodeLatency[i] {
			t.Fatalf("latency %d differs", i)
		}
	}
}

func TestOutsourcingReducesTail(t *testing.T) {
	// Figure 10's headline: outsourcing halves the p99 at peak.
	// Fast enough at full scale (a few seconds); the ordering margin at a
	// quarter-size fleet is too thin to assert on, so no short-mode scaling.
	p99 := func(strat Strategy) float64 {
		cfg := shortConfig()
		cfg.Duration = 4 * 3600
		cfg.Strategy = strat
		cfg.Threshold = 3
		m := NewSim(cfg).Run()
		return stats.Summarize(m.EncodeLatency).P99
	}
	control := p99(Control)
	dedicated := p99(ToDedicated)
	self := p99(ToSelf)
	if dedicated >= control {
		t.Fatalf("dedicated p99 %.3f not better than control %.3f", dedicated, control)
	}
	if self >= control {
		t.Fatalf("to-self p99 %.3f not better than control %.3f", self, control)
	}
	t.Logf("p99: control=%.2fs dedicated=%.2fs self=%.2fs", control, dedicated, self)
}

func TestOutsourcingReducesConcurrency(t *testing.T) {
	rows := Figure9(1, 4, scaleDown(t))
	avg := map[Strategy]float64{}
	for _, r := range rows {
		var sum float64
		n := 0
		for _, v := range r.P99 {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		avg[r.Strategy] = sum / float64(n)
	}
	if avg[Control] <= avg[ToDedicated] || avg[Control] <= avg[ToSelf] {
		t.Fatalf("control concurrency %.2f not worst: dedicated %.2f self %.2f",
			avg[Control], avg[ToDedicated], avg[ToSelf])
	}
	t.Logf("mean hourly p99 concurrency: control=%.1f dedicated=%.1f self=%.1f",
		avg[Control], avg[ToDedicated], avg[ToSelf])
}

func TestFigure5WeekendStructure(t *testing.T) {
	dec, enc := Figure5(2, scaleDown(t))
	if len(dec.Vals) != 7*24 || len(enc.Vals) != 7*24 {
		t.Fatalf("series lengths %d/%d", len(dec.Vals), len(enc.Vals))
	}
	// Decode:encode ratio on weekdays must exceed weekends.
	ratio := func(days []int) float64 {
		var d, e float64
		for _, day := range days {
			for h := 0; h < 24; h++ {
				d += dec.Vals[day*24+h]
				e += enc.Vals[day*24+h]
			}
		}
		return d / e
	}
	weekday := ratio([]int{0, 1, 2, 3, 4})
	weekend := ratio([]int{5, 6})
	if weekday <= weekend {
		t.Fatalf("weekday ratio %.2f not above weekend %.2f", weekday, weekend)
	}
}

func TestFigure10Shape(t *testing.T) {
	rows := Figure10(3, scaleDown(t))
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	var control, bestPeak float64
	bestPeak = math.Inf(1)
	for _, r := range rows {
		if r.Strategy == Control {
			control = r.Peak.P99
		} else if r.Peak.P99 < bestPeak {
			bestPeak = r.Peak.P99
		}
		// Peak tail must not be better than near-peak tail by much.
		if r.Peak.P99 < r.NearPeak.P99*0.5 {
			t.Errorf("%v/%d: peak p99 %.2f oddly below near-peak %.2f",
				r.Strategy, r.Threshold, r.Peak.P99, r.NearPeak.P99)
		}
	}
	if bestPeak >= control {
		t.Fatalf("no strategy beat control at peak: best %.2f vs %.2f", bestPeak, control)
	}
}

func TestFigure12THPDrop(t *testing.T) {
	pts := Figure12(4, scaleDown(t))
	if len(pts) < 12 {
		t.Fatalf("%d points", len(pts))
	}
	// p95 before the 6h disable must exceed p95 well after it.
	var before, after float64
	var nb, na int
	for _, p := range pts {
		if p.Hour < 6 {
			before += p.P95
			nb++
		} else if p.Hour >= 8 {
			after += p.P95
			na++
		}
	}
	before /= float64(nb)
	after /= float64(na)
	if before <= after*1.5 {
		t.Fatalf("THP disable had no effect: p95 before=%.3f after=%.3f", before, after)
	}
	t.Logf("p95 before=%.2fs after=%.2fs", before, after)
}

func TestFigure13Ramp(t *testing.T) {
	days, ratio := Figure13(90)
	if len(days) != 90 {
		t.Fatal("length")
	}
	if ratio[0] != 0 {
		t.Fatalf("day 0 ratio = %v", ratio[0])
	}
	for i := 1; i < len(ratio); i++ {
		if ratio[i] < ratio[i-1] {
			t.Fatalf("ratio not monotone at day %d", i)
		}
	}
	if ratio[89] < 1.0 || ratio[89] > 2.0 {
		t.Fatalf("day-89 ratio %.2f outside the paper's range", ratio[89])
	}
}

func TestFigure14Degradation(t *testing.T) {
	step := 30
	if testing.Short() {
		step = 45
	}
	pts := Figure14(5, 90, step, scaleDown(t))
	if want := 90/step + 1; len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	if pts[len(pts)-1].P99 <= pts[0].P99 {
		t.Fatalf("p99 did not degrade: day0=%.3f day90=%.3f",
			pts[0].P99, pts[len(pts)-1].P99)
	}
	t.Logf("decode p99 ramp: day0=%.2fs day90=%.2fs", pts[0].P99, pts[len(pts)-1].P99)
}

func TestFigure11OutageDrop(t *testing.T) {
	cfg := DefaultBackfillConfig()
	samples := Figure11(cfg)
	var during, outside, rateDuring float64
	var nd, no int
	for _, s := range samples {
		if s.Hour > cfg.OutageStartHour+1 && s.Hour < cfg.OutageEndHour {
			during += s.PowerKW
			rateDuring += s.CompressPerSec
			nd++
		} else if s.Hour < cfg.OutageStartHour {
			outside += s.PowerKW
			no++
		}
	}
	during /= float64(nd)
	outside /= float64(no)
	drop := outside - during
	// The paper observed a 121 kW drop; ours is ~278 kW of backfill power
	// minus base wobble — assert a large, same-order drop.
	if drop < 150 || drop > 400 {
		t.Fatalf("outage power drop %.0f kW out of range", drop)
	}
	if rateDuring/float64(nd) > 100 {
		t.Fatalf("compressions continued during outage")
	}
}

func TestCostReportMatchesPaperArithmetic(t *testing.T) {
	c := Cost(DefaultBackfillConfig())
	// Paper: one kWh ~ 72,300 conversions, ~24 GiB saved, breakeven $0.58,
	// 964 machines at 278 kW doing 5,583 chunks/s; 181.5M images and
	// ~58.8 TiB saved per machine-year; ~$9,031/yr at S3 IA pricing.
	if c.ConversionsPerKWh < 65000 || c.ConversionsPerKWh > 80000 {
		t.Fatalf("conversions/kWh = %.0f", c.ConversionsPerKWh)
	}
	if c.GiBSavedPerKWh < 20 || c.GiBSavedPerKWh > 28 {
		t.Fatalf("GiB/kWh = %.1f", c.GiBSavedPerKWh)
	}
	if c.BreakevenUSDPerKWh < 0.45 || c.BreakevenUSDPerKWh > 0.70 {
		t.Fatalf("breakeven $/kWh = %.2f", c.BreakevenUSDPerKWh)
	}
	if c.ImagesPerYearPerMachine < 1.7e8 || c.ImagesPerYearPerMachine > 1.95e8 {
		t.Fatalf("images/yr/machine = %.3g", c.ImagesPerYearPerMachine)
	}
	if c.TiBSavedPerYearPerMachine < 50 || c.TiBSavedPerYearPerMachine > 65 {
		t.Fatalf("TiB/yr/machine = %.1f", c.TiBSavedPerYearPerMachine)
	}
	if c.S3AnnualUSDPerMachine < 7500 || c.S3AnnualUSDPerMachine > 10500 {
		t.Fatalf("S3 $/yr/machine = %.0f", c.S3AnnualUSDPerMachine)
	}
}

func TestMetaserverBatches(t *testing.T) {
	ms := NewMetaserver(1, 4, 1000, 200)
	seen := 0
	for i := 0; i < 200; i++ {
		b := ms.NextBatch()
		if b.Users > 128 || b.Chunks > 16384 {
			t.Fatalf("batch limits violated: %+v", b)
		}
		seen += b.Users
	}
	if seen == 0 {
		t.Fatal("no users scanned")
	}
	if ms.Remaining() >= 4*1000 {
		t.Fatal("remaining did not shrink")
	}
}

func TestErrorCodeTable(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 60
	}
	q := ErrorCodeTable(1, n)
	if q.Total != n {
		t.Fatalf("total = %d", q.Total)
	}
	// Success dominates; each injected class is classified correctly.
	if float64(q.ByReason[jpeg.ReasonNone])/float64(q.Total) < 0.85 {
		t.Fatalf("success rate too low: %s", q)
	}
	for _, r := range []jpeg.Reason{jpeg.ReasonProgressive, jpeg.ReasonNotImage, jpeg.ReasonCMYK} {
		if q.ByReason[r] == 0 {
			t.Fatalf("reason %v missing from table: %s", r, q)
		}
	}
	if q.CrossCheckFailures != 0 {
		t.Fatalf("cross-check failures: %s", q)
	}
	t.Logf("\n%s", q)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
