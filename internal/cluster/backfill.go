package cluster

import (
	"math"
	"math/rand"
)

// BackfillConfig models the DropSpot backfill system of §5.6: spare
// datacenter machines are reimaged into Lepton encoders when free capacity
// is high and released when it is needed back; a metaserver hands workers
// batches of user ids and chunk hashes to recompress.
type BackfillConfig struct {
	Seed int64
	// TargetMachines is the full backfill allocation (paper: 964 machines
	// reaching 5,583 chunks/s).
	TargetMachines int
	// ImagesPerSecPerMachine is per-machine throughput (paper: 5.75 on a
	// Xeon E5-2650v2; override with this repository's measured rate for
	// calibrated runs).
	ImagesPerSecPerMachine float64
	// PowerPerMachineKW is chassis power per backfill machine. The paper's
	// backfill footprint was 278 kW, and disabling it dropped datacenter
	// power by 121 kW net of baseline variation.
	PowerPerMachineKW float64
	// BasePowerKW is the non-backfill datacenter load at its daily mean.
	BasePowerKW float64
	// ReimageHours is how long a machine takes to wipe and reimage before
	// it contributes (paper: 2-4 hours).
	ReimageHours float64
	// OutageStartHour / OutageEndHour bracket the incident in Figure 11
	// where backfill was disabled during an outage and later resumed.
	OutageStartHour float64
	OutageEndHour   float64
	// DurationHours of the trace.
	DurationHours float64
	// AvgImageMB and SavingsRatio drive the cost model (paper: 1.5 MB
	// average, 22.69% average savings).
	AvgImageMB   float64
	SavingsRatio float64
}

// DefaultBackfillConfig mirrors §5.6's published numbers.
func DefaultBackfillConfig() BackfillConfig {
	return BackfillConfig{
		Seed:                   1,
		TargetMachines:         964,
		ImagesPerSecPerMachine: 5.79, // 5583/964
		PowerPerMachineKW:      0.288,
		BasePowerKW:            60,
		ReimageHours:           3,
		OutageStartHour:        9,
		OutageEndHour:          16,
		DurationHours:          30,
		AvgImageMB:             1.5,
		SavingsRatio:           0.227,
	}
}

// PowerSample is one point of the Figure 11 trace.
type PowerSample struct {
	Hour           float64
	PowerKW        float64
	CompressPerSec float64
	Machines       int
}

// Figure11 simulates the backfill power trace: machines ramp up as DropSpot
// allocates spares, the outage stops backfill (releasing its power), and
// resumption ramps back through the reimage delay.
func Figure11(cfg BackfillConfig) []PowerSample {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []PowerSample
	active := float64(cfg.TargetMachines) // start at steady state
	const step = 0.1                      // hours
	for h := 0.0; h <= cfg.DurationHours; h += step {
		inOutage := h >= cfg.OutageStartHour && h < cfg.OutageEndHour
		target := float64(cfg.TargetMachines)
		if inOutage {
			target = 0
		}
		switch {
		case active > target:
			// Shutoff is fast (§5.7: seconds); model minutes.
			active = math.Max(target, active-float64(cfg.TargetMachines)*step/0.2)
		case active < target:
			// Ramp-up is limited by the reimage pipeline.
			active = math.Min(target, active+float64(cfg.TargetMachines)*step/cfg.ReimageHours)
		}
		// Non-backfill load wobbles diurnally ±10%.
		base := cfg.BasePowerKW * (1 + 0.1*math.Cos(2*math.Pi*(h/24-0.6)) + 0.01*rng.NormFloat64())
		jitter := 1 + 0.02*rng.NormFloat64()
		out = append(out, PowerSample{
			Hour:           h,
			PowerKW:        base + active*cfg.PowerPerMachineKW*jitter,
			CompressPerSec: active * cfg.ImagesPerSecPerMachine,
			Machines:       int(active),
		})
	}
	return out
}

// CostReport is the §5.6.1 cost-effectiveness analysis.
type CostReport struct {
	ClusterPowerKW            float64
	ChunksPerSecond           float64
	ConversionsPerKWh         float64
	GiBSavedPerKWh            float64
	BreakevenUSDPerKWh        float64 // vs a depowered $120 5TB drive
	ImagesPerYearPerMachine   float64
	TiBSavedPerYearPerMachine float64
	S3AnnualUSDPerMachine     float64 // S3 IA $0.0125/GiB-month
}

// Cost computes the §5.6.1 arithmetic from a backfill configuration.
func Cost(cfg BackfillConfig) CostReport {
	power := float64(cfg.TargetMachines) * cfg.PowerPerMachineKW
	rate := float64(cfg.TargetMachines) * cfg.ImagesPerSecPerMachine
	convPerKWh := rate * 3600 / power
	gibSaved := convPerKWh * cfg.AvgImageMB * cfg.SavingsRatio * 1e6 / (1 << 30)
	// $120 buys 5 TB depowered: $/GiB = 120 / (5e12/2^30).
	usdPerGiB := 120.0 / (5e12 / (1 << 30))
	imagesYear := cfg.ImagesPerSecPerMachine * 365 * 24 * 3600
	tibYear := imagesYear * cfg.AvgImageMB * cfg.SavingsRatio * 1e6 / (1 << 40)
	gibYear := tibYear * 1024
	return CostReport{
		ClusterPowerKW:            power,
		ChunksPerSecond:           rate,
		ConversionsPerKWh:         convPerKWh,
		GiBSavedPerKWh:            gibSaved,
		BreakevenUSDPerKWh:        gibSaved * usdPerGiB,
		ImagesPerYearPerMachine:   imagesYear,
		TiBSavedPerYearPerMachine: tibYear,
		S3AnnualUSDPerMachine:     gibYear * 0.0125 * 12,
	}
}

// Metaserver models §5.6's work distribution: a sharded user table; each
// request scans the next batch of users for ".jp" files and returns up to
// 16,384 chunk hashes plus a resume token.
type Metaserver struct {
	Shards            int
	UsersPerShard     int
	ChunksPerUserMean float64
	rng               *rand.Rand
	cursor            []int
}

// NewMetaserver builds a synthetic sharded user table.
func NewMetaserver(seed int64, shards, usersPerShard int, chunksPerUser float64) *Metaserver {
	return &Metaserver{
		Shards: shards, UsersPerShard: usersPerShard,
		ChunksPerUserMean: chunksPerUser,
		rng:               rand.New(rand.NewSource(seed)),
		cursor:            make([]int, shards),
	}
}

// WorkBatch is a metaserver response.
type WorkBatch struct {
	Shard     int
	Users     int
	Chunks    int
	Exhausted bool
}

// NextBatch serves a worker's request against a random shard: up to 128
// users and 16,384 chunks (§5.6).
func (ms *Metaserver) NextBatch() WorkBatch {
	shard := ms.rng.Intn(ms.Shards)
	b := WorkBatch{Shard: shard}
	const maxUsers, maxChunks = 128, 16384
	for b.Users < maxUsers && b.Chunks < maxChunks {
		if ms.cursor[shard] >= ms.UsersPerShard {
			b.Exhausted = true
			break
		}
		ms.cursor[shard]++
		b.Users++
		// Per-user photo libraries are heavy-tailed.
		n := int(ms.rng.ExpFloat64() * ms.ChunksPerUserMean)
		if b.Chunks+n > maxChunks {
			n = maxChunks - b.Chunks
		}
		b.Chunks += n
	}
	return b
}

// Remaining reports users not yet scanned.
func (ms *Metaserver) Remaining() int {
	total := 0
	for _, c := range ms.cursor {
		total += ms.UsersPerShard - c
	}
	return total
}
