package model

import (
	"lepton/internal/dct"
)

// zigzag49 lists the zigzag-ordered raster positions of the 49 interior
// (u>=1, v>=1) coefficients — the "7x7" class of A.2.1.
var zigzag49 = func() [49]uint8 {
	var out [49]uint8
	n := 0
	for _, r := range dct.Zigzag {
		if r%8 != 0 && r/8 != 0 {
			out[n] = r
			n++
		}
	}
	return out
}()

// div rounds half away from zero, deterministically (paper §5.2: identical
// on every platform and build).
func div(a, b int64) int64 {
	if b < 0 {
		a, b = -a, -b
	}
	if a >= 0 {
		return (a + b/2) / b
	}
	return -((-a + b/2) / b)
}

// div2 is div(a, 2) without the divide: adding ±1 toward the sign and
// truncating halves with identical round-half-away-from-zero results. The
// gradient extrapolations call this twice per border pair, which made the
// generic divide a measurable slice of both codec directions.
func div2(a int64) int64 {
	return (a + (a>>63 | 1)) / 2
}

// avg77 computes the 7x7 neighborhood-magnitude context of A.2.1: the
// weighted average (13|A| + 13|L| + 6|AL|)/32 of the co-located coefficients
// in the above, left, and above-left blocks.
func avg77(above, left, aboveLeft []int16, pos uint8) int32 {
	var acc int64
	if above != nil {
		a := int64(above[pos])
		if a < 0 {
			a = -a
		}
		acc += 13 * a
	}
	if left != nil {
		l := int64(left[pos])
		if l < 0 {
			l = -l
		}
		acc += 13 * l
	}
	if aboveLeft != nil {
		al := int64(aboveLeft[pos])
		if al < 0 {
			al = -al
		}
		acc += 6 * al
	}
	return int32(acc >> 5)
}

// basis00 is dct.Basis[0][0] as an untyped constant so the divisions in the
// Lakhani predictors strength-reduce to multiplies at the inlined div call
// sites (a real IDIV per edge coefficient was a measurable slice of both
// codec directions). TestBasis00Pinned keeps it honest against the table.
const basis00 = 2896

// lakhaniCol predicts the left-column coefficient F[v*8+0] (the "1x7" class)
// from the left block's full coefficients and the current block's already
// known 7x7 coefficients, assuming pixel continuity across the vertical
// block edge (A.2.2):
//
//	F̄[v,0] = (Σ_u B[u][7]·L[v,u] − Σ_{u≥1} B[u][0]·F[v,u]) / B[0][0]
//
// All inputs are quantized coefficients; the arithmetic runs dequantized and
// the result is re-quantized to the coefficient's step.
func lakhaniCol(left, cur []int16, q *[64]uint16, v int) int32 {
	var acc int64
	for u := 0; u < 8; u++ {
		acc += int64(dct.Basis[u][7]) * int64(left[v*8+u]) * int64(q[v*8+u])
	}
	for u := 1; u < 8; u++ {
		acc -= int64(dct.Basis[u][0]) * int64(cur[v*8+u]) * int64(q[v*8+u])
	}
	// acc is scaled by 2^BasisScaleBits; dividing by B[0][0] (same scale)
	// cancels the scaling. Then re-quantize.
	pred := div(acc, basis00)
	return clampCoef(div(pred, int64(q[v*8])))
}

// lakhaniRow predicts the top-row coefficient F[0*8+u] (the "7x1" class)
// from the above block, symmetric to lakhaniCol.
func lakhaniRow(above, cur []int16, q *[64]uint16, u int) int32 {
	var acc int64
	for v := 0; v < 8; v++ {
		acc += int64(dct.Basis[v][7]) * int64(above[v*8+u]) * int64(q[v*8+u])
	}
	for v := 1; v < 8; v++ {
		acc -= int64(dct.Basis[v][0]) * int64(cur[v*8+u]) * int64(q[v*8+u])
	}
	pred := div(acc, basis00)
	return clampCoef(div(pred, int64(q[u])))
}

func clampCoef(v int64) int32 {
	if v > 2047 {
		return 2047
	}
	if v < -2048 {
		return -2048
	}
	return int32(v)
}

// blockEdges computes the 16 boundary samples cached for DC prediction: the
// bottom two pixel rows and right two pixel columns of the fully decoded
// (AC+DC, dequantized) block. Values are in IDCT sample space (no +128
// shift, unclamped) and saturate int16.
type blockEdges struct {
	bottom [16]int16 // rows 6 and 7: [x] and [8+x]
	right  [16]int16 // cols 6 and 7: [y] and [8+y]
}

// acOnlyPixels computes the inverse DCT of a block's AC coefficients alone
// (DC treated as zero), dequantized. Both the DC predictor and the edge
// cache derive from this single transform — the block's full pixels are
// these plus a constant DC shift. Dequantization and the transform are
// fused, and only the border rows and columns the two consumers read are
// computed (dct.InverseBorder); px must come in zeroed, which every
// caller's fresh stack block guarantees.
func acOnlyPixels(coef []int16, q *[64]uint16, px *dct.Block) {
	dct.InverseBorder(coef, q, px)
}

// dcPixelShift is the uniform per-sample contribution of the quantized DC
// coefficient: the orthonormal basis gives each sample dc*q0/8.
func dcPixelShift(dc int32, q *[64]uint16) int32 {
	return int32(div(int64(dc)*int64(q[0]), 8))
}

// edgesFromPixels fills the edge cache from the AC-only pixels plus the DC
// shift (exactness against a reference IDCT is irrelevant; encoder/decoder
// agreement is what matters, §5.2).
func edgesFromPixels(px *dct.Block, dc int32, q *[64]uint16, e *blockEdges) {
	shift := dcPixelShift(dc, q)
	for x := 0; x < 8; x++ {
		e.bottom[x] = sat16(px[6*8+x] + shift)
		e.bottom[8+x] = sat16(px[7*8+x] + shift)
	}
	for y := 0; y < 8; y++ {
		e.right[y] = sat16(px[y*8+6] + shift)
		e.right[8+y] = sat16(px[y*8+7] + shift)
	}
}

// computeEdges is the uncached path: full block to edge samples.
func computeEdges(coef []int16, q *[64]uint16, e *blockEdges) {
	var px dct.Block
	acOnlyPixels(coef, q, &px)
	edgesFromPixels(&px, int32(coef[0]), q, e)
}

func sat16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// dcPrediction implements A.2.3: reconstruct the block's pixels from its AC
// coefficients alone, linearly extrapolate gradients from the above and left
// neighbors' last two pixel rows/columns, and solve for the DC value that
// makes the gradients meet at each of up to 16 border pairs. Returns the
// predicted quantized DC and a confidence bucket (log of the prediction
// spread).
//
// If neither neighbor is available inside this thread segment, it falls back
// to predicting the previous block's DC (prevDC), like baseline JPEG.
func dcPrediction(px *dct.Block, q *[64]uint16, above, left *blockEdges, prevDC int32) (pred int32, conf int) {
	if above == nil && left == nil {
		return prevDC, confBuckets - 1
	}
	var preds [16]int64
	n := 0
	if above != nil {
		for x := 0; x < 8; x++ {
			a6 := int64(above.bottom[x])
			a7 := int64(above.bottom[8+x])
			c0 := int64(px[x])
			c1 := int64(px[8+x])
			// Gradient continuation: a7 + (a7-a6)/2 == c0 + dc - (c1-c0)/2.
			preds[n] = a7 + div2(a7-a6) - c0 + div2(c1-c0)
			n++
		}
	}
	if left != nil {
		for y := 0; y < 8; y++ {
			l6 := int64(left.right[y])
			l7 := int64(left.right[8+y])
			c0 := int64(px[y*8])
			c1 := int64(px[y*8+1])
			preds[n] = l7 + div2(l7-l6) - c0 + div2(c1-c0)
			n++
		}
	}
	var sum, minP, maxP int64
	minP, maxP = preds[0], preds[0]
	for i := 0; i < n; i++ {
		sum += preds[i]
		if preds[i] < minP {
			minP = preds[i]
		}
		if preds[i] > maxP {
			maxP = preds[i]
		}
	}
	// n is 8 (one neighbor) or 16 (both); constant divisors let the inlined
	// div strength-reduce instead of issuing an IDIV per block.
	var avgPix int64
	if n == 16 {
		avgPix = div(sum, 16)
	} else {
		avgPix = div(sum, 8)
	}
	// A DC step of 1 shifts every sample by q0/8 (orthonormal basis), so
	// the quantized DC is avgPix*8/q0.
	predDC := clampCoef(div(avgPix*8, int64(q[0])))
	spread := div((maxP-minP)*8, int64(q[0]))
	conf = ilog2(int32(min64(spread, 1<<20)), confBuckets)
	return predDC, conf
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
