package model

import (
	"math/rand"
	"testing"

	"lepton/internal/arith"
	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

func TestSpecArithRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	planes := makePlanes(rng, 3, 5, 4)
	m := NewSpecArith()
	e := arith.NewEncoder()
	m.Encode(e, planes)
	data := e.Flush()

	out := clonePlanes(planes)
	m2 := NewSpecArith()
	if err := m2.Decode(arith.NewDecoder(data), out); err != nil {
		t.Fatal(err)
	}
	for ci := range planes {
		for j := range planes[ci].Slab() {
			if planes[ci].Slab()[j] != out[ci].Slab()[j] {
				t.Fatalf("comp %d coeff %d: %d != %d", ci, j,
					out[ci].Slab()[j], planes[ci].Slab()[j])
			}
		}
	}
}

func TestSpecArithWorseThanLepton(t *testing.T) {
	// The small model must compress worse than the full model on real
	// (spatially correlated) image coefficients — the Figure 1/2 ordering.
	// Random coefficient noise would NOT show this: the full model's edge
	// is exactly its cross-block context.
	data, err := imagegen.Generate(17, 320, 240)
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.Parse(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		t.Fatal(err)
	}
	var planes []ComponentPlane
	var rs, re []int
	for i := range f.Components {
		c := &f.Components[i]
		planes = append(planes, Plane(c.BlocksWide, c.BlocksHigh, &f.Quant[c.TQ], s.Coeff[i]))
		rs = append(rs, 0)
		re = append(re, c.BlocksHigh)
	}

	spec := NewSpecArith()
	e1 := arith.NewEncoder()
	spec.Encode(e1, planes)
	specLen := len(e1.Flush())

	full := NewCodec(planes, rs, re, DefaultFlags())
	e2 := arith.NewEncoder()
	full.EncodeSegment(e2)
	fullLen := len(e2.Flush())

	if float64(fullLen) >= 0.95*float64(specLen) {
		t.Fatalf("full model (%d) not clearly better than spec model (%d)", fullLen, specLen)
	}
}

func TestSpecArithCorruptStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	planes := makePlanes(rng, 1, 3, 3)
	m := NewSpecArith()
	e := arith.NewEncoder()
	m.Encode(e, planes)
	data := e.Flush()
	for i := 0; i < len(data); i += 2 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x5A
		out := clonePlanes(planes)
		_ = NewSpecArith().Decode(arith.NewDecoder(bad), out) // no panic
	}
}

func TestSpecArithBinCount(t *testing.T) {
	if SpecArithBins > 2000 {
		t.Fatalf("spec model too big: %d bins (paper: ~300)", SpecArithBins)
	}
	if SpecArithBins < 200 {
		t.Fatalf("spec model suspiciously small: %d bins", SpecArithBins)
	}
}
