// Package model implements Lepton's adaptive probability model (paper §3.2,
// §3.3, Appendix A.2): the arrangement of statistic bins and the predictors
// that select a bin for every binary decision. The model avoids all global
// operations (no sorting) so segments can be coded independently and in
// parallel; long-range correlation is captured by expanding the bin space
// instead (§3.2).
//
// Every bin access goes through Go's bounds-checked arrays — the moral
// equivalent of the bounds-checked bin class the paper introduced after the
// reversed-index incident (§6.1).
package model

import (
	"lepton/internal/arith"
)

const (
	// maxExp bounds the unary exponent of the Exp-Golomb code: magnitudes
	// are < 2^13 (DC error terms reach ±4095).
	maxExp = 14
	// avgBuckets is the number of log-magnitude buckets for the 7x7
	// neighborhood-average context.
	avgBuckets = 10
	// nBuckets is the number of log1.59 buckets for nonzero-count contexts.
	nBuckets = 10
	// predBuckets is the number of signed-log buckets for the Lakhani edge
	// predictor context.
	predBuckets = 22
	// confBuckets is the number of DC prediction-confidence buckets.
	confBuckets = 17
)

// magBins hold the bins for one Exp-Golomb magnitude context: unary exponent
// bits, a sign bit, and residual ("noise") bits indexed by (exponent,
// position).
type magBins struct {
	exp  [maxExp]arith.Bin
	sign arith.Bin
}

// resBins are residual-bit bins shared across a coefficient class, indexed
// by exponent and bit position.
type resBins [maxExp][13]arith.Bin

// chanBins is the full bin set for one color channel. Sizes follow A.2; the
// three-dimensional 7x7 context (zigzag index × neighborhood magnitude ×
// remaining-nonzeros bucket) is what replaces PackJPG's global sort.
type chanBins struct {
	// nz77 codes the 6-bit count of nonzero 7x7 coefficients with a binary
	// tree (63 internal nodes) per neighborhood bucket.
	nz77 [nBuckets][64]arith.Bin
	// coef77 contexts: 49 zigzag positions × avg magnitude × remaining-n.
	coef77 [49][avgBuckets][nBuckets]magBins
	res77  resBins
	// nzEdge codes the 3-bit nonzero count of each edge orientation, with
	// the current block's 7x7 count as context.
	nzEdge [2][8][8]arith.Bin
	// coefEdge contexts: orientation (0 = 7x1 row, 1 = 1x7 column) × index
	// 1..7 × Lakhani prediction bucket.
	coefEdge [2][7][predBuckets]magBins
	resEdge  resBins
	// dc contexts: prediction confidence buckets.
	dc    [confBuckets]magBins
	resDC resBins
}

// BinsPerChannel is the number of statistic bins in one channel's model,
// exported for the memory accounting in Figure 3.
const BinsPerChannel = nBuckets*64 +
	49*avgBuckets*nBuckets*(maxExp+1) +
	maxExp*13 +
	2*8*8 +
	2*7*predBuckets*(maxExp+1) +
	maxExp*13 +
	confBuckets*(maxExp+1) +
	maxExp*13

// Coefficient classes for the per-component size accounting that
// reproduces Figure 4. Nonzero-count side information is folded into the
// class it describes, matching the paper's categories.
const (
	Class77   = iota // 7x7 AC coefficients (and their count)
	ClassEdge        // 7x1 / 1x7 AC coefficients (and their counts)
	ClassDC          // DC error terms
	NumClasses
)

// ClassName labels each class as in Figure 4.
func ClassName(c int) string {
	switch c {
	case Class77:
		return "7x7 AC"
	case ClassEdge:
		return "7x1/1x7"
	case ClassDC:
		return "DC"
	}
	return "?"
}

// Stats accumulates the Shannon information (in bits) emitted per class on
// the encode path. It is observability only — never part of the stream.
type Stats struct {
	Bits [NumClasses]float64
}

// emitter is the single code path shared by encoder and decoder: exactly
// one of e or d is non-nil. Funneling every binary decision through one
// type guarantees both directions derive identical contexts — the class
// of divergence behind the paper's §6.7 "single- vs multi-threaded" alarm.
// codeVal and codeTree branch on the direction once per value rather than
// once per bit, so the inner loops call the fused arithmetic-coder bodies
// directly.
type emitter struct {
	e     *arith.Encoder
	d     *arith.Decoder
	stats *Stats
	cls   int
}

// ebit encodes one bit, accumulating Shannon information when stats
// collection is on. Encode-side only.
func (em *emitter) ebit(bin *arith.Bin, bit int) {
	if em.stats != nil {
		p0 := float64(bin.Prob()) / 4096
		p := p0
		if bit != 0 {
			p = 1 - p0
		}
		em.stats.Bits[em.cls] += -log2(p)
	}
	em.e.Encode(bin, bit)
}

func (em *emitter) bit(bin *arith.Bin, bit int) int {
	if em.e != nil {
		em.ebit(bin, bit)
		return bit
	}
	return em.d.Decode(bin)
}

// codeVal transports a signed magnitude through an Exp-Golomb layered
// binary code: unary exponent (adaptive per position), sign, then the
// exponent-1 residual bits below the implicit leading one. On decode the
// input v is ignored and the decoded value returned.
func (em *emitter) codeVal(mb *magBins, rb *resBins, v int32) int32 {
	if em.e != nil {
		return em.encodeVal(mb, rb, v)
	}
	return em.decodeVal(mb, rb)
}

func (em *emitter) encodeVal(mb *magBins, rb *resBins, v int32) int32 {
	mag := v
	neg := 0
	if mag < 0 {
		mag = -mag
		neg = 1
	}
	l := 0
	for m := mag; m != 0; m >>= 1 {
		l++
	}
	for i := 0; i < l; i++ {
		em.ebit(&mb.exp[i], 1)
	}
	if l < maxExp {
		em.ebit(&mb.exp[l], 0)
	}
	if l == 0 {
		return 0
	}
	em.ebit(&mb.sign, neg)
	for i := l - 2; i >= 0; i-- {
		em.ebit(&rb[l][i], int(mag>>uint(i))&1)
	}
	return v
}

func (em *emitter) decodeVal(mb *magBins, rb *resBins) int32 {
	d := em.d
	l := 0
	for l < maxExp {
		if d.Decode(&mb.exp[l]) == 0 {
			break
		}
		l++
	}
	if l == maxExp {
		// Only a corrupt stream reaches the unary cap (the encoder's
		// magnitudes are < 2^13). Clamp; the caller's round-trip or
		// range checks reject the block.
		l = maxExp - 1
	}
	if l == 0 {
		return 0
	}
	neg := d.Decode(&mb.sign)
	out := int32(1)
	for i := l - 2; i >= 0; i-- {
		out = out<<1 | int32(d.Decode(&rb[l][i]))
	}
	if neg == 1 {
		return -out
	}
	return out
}

// codeTree transports an n-bit integer MSB-first through a binary-tree bin
// array of size 2^n (node 1 is the root). Values are always < 2^nbits by
// construction, so the encode direction returns v unchanged.
func (em *emitter) codeTree(bins []arith.Bin, v, nbits int) int {
	if em.e != nil {
		node := 1
		for i := nbits - 1; i >= 0; i-- {
			bit := (v >> uint(i)) & 1
			em.ebit(&bins[node], bit)
			node = node<<1 | bit
		}
		return v
	}
	d := em.d
	node := 1
	out := 0
	for i := 0; i < nbits; i++ {
		bit := d.Decode(&bins[node])
		out = out<<1 | bit
		node = node<<1 | bit
	}
	return out
}

// log2 avoids importing math for one function; accuracy is ample for
// statistics.
func log2(x float64) float64 {
	// Decompose x = m * 2^e with m in [1,2), then a small series for ln m.
	if x <= 0 {
		return -64
	}
	e := 0
	for x < 1 {
		x *= 2
		e--
	}
	for x >= 2 {
		x /= 2
		e++
	}
	// ln(m) via atanh series: ln m = 2*atanh((m-1)/(m+1)).
	t := (x - 1) / (x + 1)
	t2 := t * t
	ln := 2 * t * (1 + t2/3 + t2*t2/5 + t2*t2*t2/7 + t2*t2*t2*t2/9)
	const invLn2 = 1.4426950408889634
	return float64(e) + ln*invLn2
}

// ilog159 returns floor(log base 1.59 of x), clamped to [0, nBuckets-1] —
// the bucketing function of A.2.1.
func ilog159(x int32) int {
	if x <= 0 {
		return 0
	}
	// Thresholds 1.59^k rounded: 1, 1.59, 2.5, 4.0, 6.4, 10.2, 16.2, 25.7,
	// 40.9, 65.1.
	switch {
	case x >= 65:
		return 9
	case x >= 41:
		return 8
	case x >= 26:
		return 7
	case x >= 17:
		return 6
	case x >= 11:
		return 5
	case x >= 7:
		return 4
	case x >= 4:
		return 3
	case x >= 3:
		return 2
	case x >= 2:
		return 1
	default:
		return 0
	}
}

// ilog2 returns the bit length of |x| clamped to limit-1.
func ilog2(x int32, limit int) int {
	if x < 0 {
		x = -x
	}
	l := 0
	for x != 0 {
		x >>= 1
		l++
	}
	if l >= limit {
		l = limit - 1
	}
	return l
}

// predBucket maps a predicted coefficient value to a signed-log context
// bucket in [0, predBuckets).
func predBucket(p int32) int {
	if p == 0 {
		return 0
	}
	s := ilog2(p, 11) // 1..10
	b := s * 2
	if p < 0 {
		b++
	}
	if b >= predBuckets {
		b = predBuckets - 1
	}
	return b
}
