package model

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lepton/internal/arith"
	"lepton/internal/dct"
)

func TestZigzag49(t *testing.T) {
	seen := map[uint8]bool{}
	for _, pos := range zigzag49 {
		if pos%8 == 0 || pos/8 == 0 {
			t.Fatalf("position %d is not interior", pos)
		}
		if seen[pos] {
			t.Fatalf("duplicate position %d", pos)
		}
		seen[pos] = true
	}
	if len(seen) != 49 {
		t.Fatalf("%d interior positions", len(seen))
	}
}

func TestIlog159(t *testing.T) {
	cases := map[int32]int{-5: 0, 0: 0, 1: 0, 2: 1, 3: 2, 4: 3, 6: 3, 7: 4, 10: 4, 11: 5, 49: 8, 64: 8, 65: 9, 1000: 9}
	for x, want := range cases {
		if got := ilog159(x); got != want {
			t.Fatalf("ilog159(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestPredBucketRange(t *testing.T) {
	for _, v := range []int32{-5000, -1023, -1, 0, 1, 17, 1023, 5000} {
		b := predBucket(v)
		if b < 0 || b >= predBuckets {
			t.Fatalf("predBucket(%d) = %d out of range", v, b)
		}
	}
	if predBucket(5) == predBucket(-5) {
		t.Fatal("sign must distinguish buckets")
	}
}

func TestCodeValRoundTrip(t *testing.T) {
	e := arith.NewEncoder()
	var mb magBins
	var rb resBins
	em := &emitter{e: e}
	vals := []int32{0, 1, -1, 2, -3, 17, -100, 1023, -1023, 4095, -4095, 0, 5}
	for _, v := range vals {
		em.codeVal(&mb, &rb, v)
	}
	data := e.Flush()
	d := arith.NewDecoder(data)
	var mb2 magBins
	var rb2 resBins
	dm := &emitter{d: d}
	for i, want := range vals {
		if got := dm.codeVal(&mb2, &rb2, 0); got != want {
			t.Fatalf("value %d: got %d want %d", i, got, want)
		}
	}
	if mb != mb2 {
		t.Fatal("bins diverged")
	}
}

func TestCodeValQuick(t *testing.T) {
	f := func(raw []int16) bool {
		e := arith.NewEncoder()
		var mb magBins
		var rb resBins
		em := &emitter{e: e}
		var vals []int32
		for _, r := range raw {
			v := int32(r)
			if v > 4095 {
				v = 4095
			}
			if v < -4095 {
				v = -4095
			}
			vals = append(vals, v)
			em.codeVal(&mb, &rb, v)
		}
		d := arith.NewDecoder(e.Flush())
		var mb2 magBins
		var rb2 resBins
		dm := &emitter{d: d}
		for _, want := range vals {
			if dm.codeVal(&mb2, &rb2, 0) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeTreeRoundTrip(t *testing.T) {
	e := arith.NewEncoder()
	bins := make([]arith.Bin, 64)
	em := &emitter{e: e}
	vals := []int{0, 49, 17, 63, 1, 32}
	for _, v := range vals {
		em.codeTree(bins, v, 6)
	}
	d := arith.NewDecoder(e.Flush())
	bins2 := make([]arith.Bin, 64)
	dm := &emitter{d: d}
	for i, want := range vals {
		if got := dm.codeTree(bins2, 0, 6); got != want {
			t.Fatalf("tree value %d: got %d want %d", i, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[float64]float64{1: 0, 2: 1, 4: 2, 0.5: -1, 8: 3}
	for x, want := range cases {
		if got := log2(x); got < want-0.01 || got > want+0.01 {
			t.Fatalf("log2(%v) = %v, want %v", x, got, want)
		}
	}
	if got := log2(3); got < 1.58 || got > 1.59 {
		t.Fatalf("log2(3) = %v", got)
	}
}

// makePlanes builds a random but spatially correlated coefficient plane set.
func makePlanes(rng *rand.Rand, comps int, bw, bh int) []ComponentPlane {
	var planes []ComponentPlane
	for c := 0; c < comps; c++ {
		q := dct.ScaleQuant(&dct.StdLuminanceQuant, 80)
		coeff := make([]int16, bw*bh*64)
		for b := 0; b < bw*bh; b++ {
			// Sparse coefficients with magnitude decaying by zigzag index.
			nz := rng.Intn(20)
			for j := 0; j < nz; j++ {
				k := rng.Intn(63) + 1
				pos := dct.Zigzag[k]
				mag := rng.Intn(64>>uint(min(5, k/8))) + 1
				if rng.Intn(2) == 0 {
					mag = -mag
				}
				coeff[b*64+int(pos)] = int16(mag)
			}
			coeff[b*64] = int16(rng.Intn(400) - 200)
		}
		qc := q
		planes = append(planes, Plane(bw, bh, &qc, coeff))
	}
	return planes
}

func clonePlanes(planes []ComponentPlane) []ComponentPlane {
	out := make([]ComponentPlane, len(planes))
	for i, p := range planes {
		out[i] = p
		out[i].Rows = SlabRows{Coeff: make([]int16, len(p.Slab())), Stride: p.BlocksWide * 64}
	}
	return out
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, flags := range []Flags{
		DefaultFlags(),
		{EdgePrediction: false, DCGradient: true},
		{EdgePrediction: true, DCGradient: false},
		{EdgePrediction: false, DCGradient: false},
	} {
		rng := rand.New(rand.NewSource(42))
		planes := makePlanes(rng, 3, 6, 5)
		rs := []int{0, 0, 0}
		re := []int{5, 5, 5}
		enc := NewCodec(planes, rs, re, flags)
		e := arith.NewEncoder()
		enc.EncodeSegment(e)
		data := e.Flush()

		out := clonePlanes(planes)
		dec := NewCodec(out, rs, re, flags)
		if err := dec.DecodeSegment(arith.NewDecoder(data)); err != nil {
			t.Fatalf("flags %+v: decode: %v", flags, err)
		}
		for ci := range planes {
			for j := range planes[ci].Slab() {
				if planes[ci].Slab()[j] != out[ci].Slab()[j] {
					t.Fatalf("flags %+v: comp %d coeff %d: %d != %d",
						flags, ci, j, out[ci].Slab()[j], planes[ci].Slab()[j])
				}
			}
		}
	}
}

func TestSegmentIndependence(t *testing.T) {
	// Decoding segment 2 must not require segment 1's data.
	rng := rand.New(rand.NewSource(7))
	planes := makePlanes(rng, 1, 8, 8)
	// Encode rows 0-3 and 4-7 as separate segments.
	var streams [][]byte
	for _, r := range [][2]int{{0, 4}, {4, 8}} {
		enc := NewCodec(planes, []int{r[0]}, []int{r[1]}, DefaultFlags())
		e := arith.NewEncoder()
		enc.EncodeSegment(e)
		streams = append(streams, e.Flush())
	}
	// Decode ONLY the second segment into a fresh plane.
	out := clonePlanes(planes)
	dec := NewCodec(out, []int{4}, []int{8}, DefaultFlags())
	if err := dec.DecodeSegment(arith.NewDecoder(streams[1])); err != nil {
		t.Fatal(err)
	}
	for j := 4 * 8 * 64; j < len(planes[0].Slab()); j++ {
		if planes[0].Slab()[j] != out[0].Slab()[j] {
			t.Fatalf("coeff %d mismatch decoding segment alone", j)
		}
	}
}

func TestDecodeCorruptStream(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	planes := makePlanes(rng, 1, 4, 4)
	enc := NewCodec(planes, []int{0}, []int{4}, DefaultFlags())
	e := arith.NewEncoder()
	enc.EncodeSegment(e)
	data := e.Flush()
	// Corrupt every byte aggressively and ensure no panic.
	for i := 0; i < len(data); i += 3 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0xA5
		out := clonePlanes(planes)
		dec := NewCodec(out, []int{0}, []int{4}, DefaultFlags())
		_ = dec.DecodeSegment(arith.NewDecoder(bad)) // error or garbage, no panic
	}
}

func TestStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	planes := makePlanes(rng, 1, 6, 6)
	enc := NewCodec(planes, []int{0}, []int{6}, DefaultFlags())
	enc.Stats = &Stats{}
	e := arith.NewEncoder()
	enc.EncodeSegment(e)
	data := e.Flush()
	var total float64
	for _, b := range enc.Stats.Bits {
		if b < 0 {
			t.Fatal("negative bits")
		}
		total += b
	}
	// The Shannon estimate must roughly match the actual output size.
	actual := float64(len(data) * 8)
	if total < actual*0.8 || total > actual*1.2 {
		t.Fatalf("stats estimate %.0f bits vs actual %.0f", total, actual)
	}
}

func TestBinCount(t *testing.T) {
	planes := makePlanes(rand.New(rand.NewSource(1)), 3, 2, 2)
	c := NewCodec(planes, []int{0, 0, 0}, []int{2, 2, 2}, DefaultFlags())
	if c.BinCount() != 3*BinsPerChannel {
		t.Fatalf("BinCount = %d", c.BinCount())
	}
	if BinsPerChannel < 50000 {
		t.Fatalf("model suspiciously small: %d bins/channel", BinsPerChannel)
	}
}

func TestLakhaniPerfectGradient(t *testing.T) {
	// A perfectly smooth horizontal ramp: the left block's DCT predicts the
	// current block's left-column coefficients well.
	q := [64]uint16{}
	for i := range q {
		q[i] = 1
	}
	var left, cur dct.Block
	var px dct.Block
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			px[y*8+x] = int32(x * 4) // ramp continuing into next block
		}
	}
	dct.Forward(&px, &left)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			px[y*8+x] = int32((x + 8) * 4)
		}
	}
	dct.Forward(&px, &cur)
	l16 := make([]int16, 64)
	c16 := make([]int16, 64)
	for i := 0; i < 64; i++ {
		l16[i] = int16(left[i])
		c16[i] = int16(cur[i])
	}
	for v := 1; v < 8; v++ {
		pred := lakhaniCol(l16, c16, &q, v)
		actual := int32(c16[v*8])
		diff := pred - actual
		if diff < -2 || diff > 2 {
			t.Fatalf("v=%d: pred %d vs actual %d", v, pred, actual)
		}
	}
}

func TestDCPredictionSmoothGradient(t *testing.T) {
	// Blocks sampled from one global linear ramp: prediction should land
	// very close to the true DC.
	q := [64]uint16{}
	for i := range q {
		q[i] = 1
	}
	mk := func(x0, y0 int) []int16 {
		var px, f dct.Block
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				px[y*8+x] = int32(2*(x0+x) + 3*(y0+y))
			}
		}
		dct.Forward(&px, &f)
		out := make([]int16, 64)
		for i := range f {
			out[i] = int16(f[i])
		}
		return out
	}
	above := mk(8, 0)
	left := mk(0, 8)
	cur := mk(8, 8)
	var abEd, lfEd blockEdges
	computeEdges(above, &q, &abEd)
	computeEdges(left, &q, &lfEd)
	var px dct.Block
	acOnlyPixels(cur, &q, &px)
	pred, conf := dcPrediction(&px, &q, &abEd, &lfEd, 0)
	actual := int32(cur[0])
	diff := pred - actual
	if diff < -4 || diff > 4 {
		t.Fatalf("DC pred %d vs actual %d (conf %d)", pred, actual, conf)
	}
	if conf > 8 {
		t.Fatalf("smooth gradient should be high confidence, got bucket %d", conf)
	}
	// No neighbors: falls back to prevDC.
	pred, _ = dcPrediction(&px, &q, nil, nil, 123)
	if pred != 123 {
		t.Fatalf("fallback pred = %d", pred)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCodecDoesNotAliasCallerPlanes guards the NewCodec copy semantics:
// sibling segment codecs are constructed from one shared planes slice, and a
// codec writes its comps in Reset and Release. When NewCodec aliased the
// caller's slice, those writes landed in a backing array shared across
// sibling codecs — releasing (or resetting) one corrupted the others, and
// two pooled siblings reused concurrently raced on the shared array.
func TestCodecDoesNotAliasCallerPlanes(t *testing.T) {
	var q [64]uint16
	for i := range q {
		q[i] = 1
	}
	coeff := make([]int16, 2*64)
	rng := rand.New(rand.NewSource(51))
	for i := range coeff {
		coeff[i] = int16(rng.Intn(15) - 7)
	}

	// Reference stream from a codec with its own plane slice.
	refPlanes := []ComponentPlane{Plane(2, 1, &q, coeff)}
	ref := arith.NewEncoder()
	NewCodec(refPlanes, []int{0}, []int{1}, DefaultFlags()).EncodeSegment(ref)
	want := append([]byte(nil), ref.Flush()...)

	// Two sibling codecs over one shared planes slice, as core's segment
	// fan-out builds them.
	planes := []ComponentPlane{Plane(2, 1, &q, coeff)}
	c1 := NewCodec(planes, []int{0}, []int{1}, DefaultFlags())
	c2 := NewCodec(planes, []int{0}, []int{1}, DefaultFlags())

	// Releasing c1 zeroes its component references, and the caller's slice
	// may be reused arbitrarily; neither may be visible to c2.
	c1.Release()
	planes[0] = ComponentPlane{}

	e := arith.NewEncoder()
	c2.EncodeSegment(e)
	if !bytes.Equal(e.Flush(), want) {
		t.Fatal("sibling Release or caller mutation corrupted this codec's planes: NewCodec aliased the shared slice")
	}
}
