package model

import (
	"lepton/internal/arith"
	"lepton/internal/dct"
)

// SpecArith is a deliberately small probability model (~800 bins) in the
// spirit of the JPEG specification's arithmetic-coding extension, which uses
// "about 300 bins" (paper §3.2). It is the stand-in for the "MozJPEG
// (arithmetic)" comparator in Figures 1-3: the same range coder as Lepton,
// but with no cross-block context, no Lakhani edge prediction, and no DC
// gradient modeling — so it lands between generic codecs and Lepton in
// compression, as in the paper.
type SpecArith struct {
	dc     [3][6]magBins // context: magnitude bucket of previous DC delta
	resDC  resBins
	nzflag [3][10][2]arith.Bin // context: zigzag band × previous-coef-nonzero
	ac     [3][10]magBins      // context: zigzag band
	resAC  resBins
}

// NewSpecArith returns a fresh model with 50-50 bins.
func NewSpecArith() *SpecArith { return &SpecArith{} }

// SpecArithBins is the bin count, for Figure 3's memory accounting.
const SpecArithBins = 3*6*(maxExp+1) + maxExp*13 +
	3*10*2 + 3*10*(maxExp+1) + maxExp*13

// Encode writes all planes to e.
func (m *SpecArith) Encode(e *arith.Encoder, comps []ComponentPlane) {
	m.run(&emitter{e: e}, comps)
}

// Decode fills all planes from d.
func (m *SpecArith) Decode(d *arith.Decoder, comps []ComponentPlane) error {
	return m.run(&emitter{d: d}, comps)
}

func (m *SpecArith) run(em *emitter, comps []ComponentPlane) error {
	for ci := range comps {
		cp := &comps[ci]
		cc := ci
		if cc > 2 {
			cc = 2
		}
		var prevDC, prevDelta int32
		for row := 0; row < cp.BlocksHigh; row++ {
			rowCoeff := cp.Rows.Row(row)
			if rowCoeff == nil {
				return ErrInterrupted
			}
			for col := 0; col < cp.BlocksWide; col++ {
				blk := rowCoeff[col*64 : col*64+64]
				// DC as a delta to the previous block, like baseline JPEG.
				ctx := ilog2(prevDelta, 6)
				delta := em.codeVal(&m.dc[cc][ctx], &m.resDC, int32(blk[0])-prevDC)
				dc := prevDC + delta
				if dc > 32767 || dc < -32768 {
					return ErrCorrupt
				}
				blk[0] = int16(dc)
				prevDC = dc
				prevDelta = delta
				// AC positions in zigzag order with a nonzero flag each.
				prevNZ := 0
				for k := 1; k < 64; k++ {
					pos := zigzagAll(k)
					band := ilog159(int32(k))
					flag := 0
					if em.e != nil && blk[pos] != 0 {
						flag = 1
					}
					flag = em.bit(&m.nzflag[cc][band][prevNZ], flag)
					if flag == 0 {
						blk[pos] = 0
						prevNZ = 0
						continue
					}
					v := em.codeVal(&m.ac[cc][band], &m.resAC, int32(blk[pos]))
					if v == 0 {
						// A flagged-nonzero coefficient decoded as zero means
						// the stream is corrupt.
						return ErrCorrupt
					}
					blk[pos] = int16(v)
					prevNZ = 1
				}
			}
		}
	}
	return nil
}

// zigzagAll maps a zigzag index 0..63 to its raster position.
func zigzagAll(k int) int { return int(dct.Zigzag[k]) }
