package model

import (
	"errors"
	"math/bits"

	"lepton/internal/arith"
	"lepton/internal/dct"
)

// Flags enables or disables the two headline predictors, for the §4.3
// ablation study.
type Flags struct {
	// EdgePrediction uses the Lakhani-inspired 1-D DCT continuity predictor
	// for the 7x1/1x7 coefficients; when false they use the same averaged
	// context as the 7x7 class ("baseline PackJPG" treatment).
	EdgePrediction bool
	// DCGradient uses the 16-pair gradient interpolation DC predictor; when
	// false the DC is predicted from the previous block's DC as in the 2007
	// PackJPG paper.
	DCGradient bool
}

// DefaultFlags enables everything, matching the deployed system.
func DefaultFlags() Flags { return Flags{EdgePrediction: true, DCGradient: true} }

// RowWindow is the codec's view of one component's coefficient storage: a
// source (encode) or sink (decode) of block rows. The codec touches at most
// two rows at a time — the row it is coding and the row above it — so an
// implementation only has to keep that window alive; it is free to recycle
// anything older. Row(r) returns the BlocksWide*64 coefficients of block
// row r (raster order across blocks, raster order within each block), or
// nil to abort the segment (the codec returns ErrInterrupted). The codec
// calls Row exactly once per row, in ascending order within each
// component's segment range; the slice for row r must stay valid until
// Row(r+2) is requested.
type RowWindow interface {
	Row(r int) []int16
}

// SlabRows is the whole-plane RowWindow: every row is a slice into one
// backing slab, so nothing is ever recycled. Stride is BlocksWide*64.
type SlabRows struct {
	Coeff  []int16
	Stride int
}

func (s SlabRows) Row(r int) []int16 { return s.Coeff[r*s.Stride : (r+1)*s.Stride] }

// ComponentPlane describes one color component's coefficient plane.
type ComponentPlane struct {
	BlocksWide, BlocksHigh int
	Quant                  *[64]uint16
	// Rows provides the block-row storage. Whole-plane callers use
	// SlabRows (see Plane); streaming pipelines hand the codec a sliding
	// window that retains only the rows the model predictors read.
	Rows RowWindow
}

// Plane builds a whole-plane ComponentPlane over a coefficient slab in
// raster block order, 64 coefficients per block.
func Plane(bw, bh int, q *[64]uint16, coeff []int16) ComponentPlane {
	return ComponentPlane{BlocksWide: bw, BlocksHigh: bh, Quant: q, Rows: SlabRows{Coeff: coeff, Stride: bw * 64}}
}

// Slab returns the whole-plane backing slab when the plane was built over
// one (see Plane), or nil for streaming row windows.
func (p ComponentPlane) Slab() []int16 {
	if s, ok := p.Rows.(SlabRows); ok {
		return s.Coeff
	}
	return nil
}

// Codec codes the blocks of one thread segment. Each segment gets fresh
// 50-50 bins that adapt independently, which is what makes segments
// parallel-decodable at a small compression cost (§3.4).
type Codec struct {
	flags Flags
	comps []ComponentPlane
	bins  []*chanBins

	rowStart, rowEnd []int

	// st is the per-component rolling-cache scratch, reused across
	// components and (via Reset) across conversions.
	st segState

	// sizeHint, when positive, pre-sizes the arithmetic encoder's output
	// buffer before a segment encode (see SetSizeHint).
	sizeHint int

	// OnRow, when non-nil, is called after every completed block row with
	// the component index and absolute block row. Streaming pipelines hook
	// it to consume finished rows (decode: hand the row to the scan
	// re-encoder; its error aborts the segment) before the window is
	// allowed to recycle them.
	OnRow func(ci, row int) error

	// Stats is filled on the encode path when non-nil.
	Stats *Stats
}

// ErrCorrupt is returned when a decoded symbol is structurally impossible —
// only a damaged or truncated Lepton stream produces it.
var ErrCorrupt = errors.New("model: corrupt coefficient stream")

// ErrInterrupted is returned by the *Ctx segment loops when the done channel
// closes before the segment completes. Callers translate it into their
// context's error; the codec itself stays reusable (Reset restores it to a
// fresh state exactly as after a completed segment).
var ErrInterrupted = errors.New("model: segment interrupted")

// NewCodec builds a segment codec over the given component planes. rowStart
// and rowEnd give the block-row range of this segment per component
// (rowEnd exclusive). Neighbor context never crosses the segment's top
// boundary, so segments decode independently.
func NewCodec(comps []ComponentPlane, rowStart, rowEnd []int, flags Flags) *Codec {
	c := &Codec{
		flags: flags,
		// Copy comps rather than alias the caller's slice: sibling segment
		// codecs are built from one shared planes slice, and a pooled codec
		// writes c.comps in Reset/Release — aliasing made those writes land
		// in a backing array shared across codecs, a data race once two
		// pooled siblings were reused concurrently.
		comps:    append([]ComponentPlane(nil), comps...),
		rowStart: append([]int(nil), rowStart...),
		rowEnd:   append([]int(nil), rowEnd...),
	}
	for range comps {
		c.bins = append(c.bins, &chanBins{})
	}
	return c
}

// Reset re-targets a used codec at a new set of planes, clearing the
// adaptive statistic bins so it behaves exactly like a freshly allocated
// codec while reusing the bin tables and scratch — the dominant per-segment
// allocations. Callers pooling codecs across conversions use this instead of
// NewCodec.
func (c *Codec) Reset(comps []ComponentPlane, rowStart, rowEnd []int, flags Flags) {
	c.flags = flags
	c.comps = append(c.comps[:0], comps...)
	c.rowStart = append(c.rowStart[:0], rowStart...)
	c.rowEnd = append(c.rowEnd[:0], rowEnd...)
	for len(c.bins) < len(comps) {
		c.bins = append(c.bins, &chanBins{})
	}
	for i := range comps {
		*c.bins[i] = chanBins{}
	}
	c.sizeHint = 0
	c.OnRow = nil
	c.Stats = nil
}

// SetSizeHint records an output pre-size hint in bytes, typically the
// original JPEG scan bytes covered by this codec's segment — an upper bound
// on the arithmetic-coded stream, since Lepton compresses below the Huffman
// coding it replaces. EncodeSegment grows the encoder once up front so
// steady-state segment encodes never reallocate mid-stream.
func (c *Codec) SetSizeHint(n int) { c.sizeHint = n }

// Release drops the codec's references to coefficient planes so a pooled
// codec does not pin multi-megabyte buffers between conversions. The bin
// tables and scratch stay allocated for reuse via Reset.
func (c *Codec) Release() {
	for i := range c.comps {
		c.comps[i] = ComponentPlane{}
	}
	c.comps = c.comps[:0]
	c.OnRow = nil
	c.Stats = nil
}

// BinCount returns the number of statistic bins in use by this codec.
func (c *Codec) BinCount() int { return len(c.comps) * BinsPerChannel }

// ModelBytes returns the approximate memory footprint of the bins.
func (c *Codec) ModelBytes() int { return c.BinCount() * 4 }

// segState holds the per-component rolling caches used while walking a
// segment in raster order.
type segState struct {
	nzAbove  []uint8
	nzCur    []uint8
	edAbove  []blockEdges
	edCur    []blockEdges
	hasAbove bool
	prevDC   int32
}

// reset sizes the caches for a plane w blocks wide, growing the backing
// arrays only when needed. Stale contents are harmless: nzAbove/edAbove are
// read only once hasAbove is set (after the first nextRow), and nzCur/edCur
// are written at every column before any read.
func (s *segState) reset(w int) {
	if cap(s.nzAbove) < w {
		s.nzAbove = make([]uint8, w)
		s.nzCur = make([]uint8, w)
		s.edAbove = make([]blockEdges, w)
		s.edCur = make([]blockEdges, w)
	} else {
		s.nzAbove = s.nzAbove[:w]
		s.nzCur = s.nzCur[:w]
		s.edAbove = s.edAbove[:w]
		s.edCur = s.edCur[:w]
	}
	s.hasAbove = false
	s.prevDC = 0
}

func (s *segState) nextRow() {
	s.nzAbove, s.nzCur = s.nzCur, s.nzAbove
	s.edAbove, s.edCur = s.edCur, s.edAbove
	s.hasAbove = true
	s.prevDC = 0
}

// EncodeSegment writes all blocks of the segment to e, component by
// component in raster order.
func (c *Codec) EncodeSegment(e *arith.Encoder) {
	if c.sizeHint > 0 {
		e.Grow(c.sizeHint)
	}
	em := &emitter{e: e, stats: c.Stats}
	// The shared code path returns errors only on the decode side.
	_ = c.run(em, nil)
}

// EncodeSegmentCtx is EncodeSegment with a cancellation checkpoint at every
// block row: when done closes, the loop stops and ErrInterrupted comes back.
// A nil done channel never fires, making the checkpoint free.
func (c *Codec) EncodeSegmentCtx(e *arith.Encoder, done <-chan struct{}) error {
	if c.sizeHint > 0 {
		e.Grow(c.sizeHint)
	}
	return c.run(&emitter{e: e, stats: c.Stats}, done)
}

// DecodeSegment reads all blocks of the segment from d into the coefficient
// planes.
func (c *Codec) DecodeSegment(d *arith.Decoder) error {
	return c.run(&emitter{d: d}, nil)
}

// DecodeSegmentCtx is DecodeSegment with the same per-row cancellation
// checkpoint as EncodeSegmentCtx.
func (c *Codec) DecodeSegmentCtx(d *arith.Decoder, done <-chan struct{}) error {
	return c.run(&emitter{d: d}, done)
}

func (c *Codec) run(em *emitter, done <-chan struct{}) error {
	for ci := range c.comps {
		cp := &c.comps[ci]
		st := &c.st
		st.reset(cp.BlocksWide)
		var aboveRow []int16
		for row := c.rowStart[ci]; row < c.rowEnd[ci]; row++ {
			if done != nil {
				select {
				case <-done:
					return ErrInterrupted
				default:
				}
			}
			curRow := cp.Rows.Row(row)
			if curRow == nil {
				// A streaming window aborts the segment by refusing the
				// row (producer failed or the conversion was cancelled).
				return ErrInterrupted
			}
			for col := 0; col < cp.BlocksWide; col++ {
				if err := c.codeBlock(em, ci, col, st, curRow, aboveRow); err != nil {
					return err
				}
			}
			if c.OnRow != nil {
				if err := c.OnRow(ci, row); err != nil {
					return err
				}
			}
			st.nextRow()
			aboveRow = curRow
		}
	}
	return nil
}

// codeBlock transports one block through the model in either direction.
// curRow holds the block row being coded, aboveRow the previous block row
// of the same component (nil on the segment's first row).
func (c *Codec) codeBlock(em *emitter, ci, col int, st *segState, curRow, aboveRow []int16) error {
	cp := &c.comps[ci]
	ch := c.bins[ci]
	q := cp.Quant
	cur := curRow[col*64 : col*64+64]

	var above, left, aboveLeft []int16
	if st.hasAbove {
		above = aboveRow[col*64 : col*64+64]
		if col > 0 {
			aboveLeft = aboveRow[(col-1)*64 : col*64]
		}
	}
	if col > 0 {
		left = curRow[(col-1)*64 : col*64]
	}

	// --- Nonzero count of the 7x7 class (A.2.1). ---
	var nzA, nzL int32
	if st.hasAbove {
		nzA = int32(st.nzAbove[col])
	}
	if col > 0 {
		nzL = int32(st.nzCur[col-1])
	}
	ctxN := ilog159((nzA + nzL) / 2)
	em.cls = Class77
	n77 := 0
	var nzMask uint64
	if em.e != nil {
		// One vectorized occupancy scan answers the 7x7 count here and both
		// edge counts below (encode only touches cur with idempotent writes,
		// so the mask stays valid for the whole block).
		nzMask = dct.NonzeroMask(cur)
		n77 = bits.OnesCount64(nzMask & mask49)
	}
	n77 = em.codeTree(ch.nz77[ctxN][:], n77, 6)
	if n77 > 49 {
		return ErrCorrupt
	}

	// --- 7x7 coefficients in zigzag order. ---
	em.cls = Class77
	rem := n77
	for k := 0; k < 49 && rem > 0; k++ {
		pos := zigzag49[k]
		avg := avg77(above, left, aboveLeft, pos)
		aB := ilog2(avg, avgBuckets)
		nB := ilog159(int32(rem))
		mb := &ch.coef77[k][aB][nB]
		v := em.codeVal(mb, &ch.res77, int32(cur[pos]))
		cur[pos] = int16(v)
		if v != 0 {
			rem--
		}
	}
	if rem > 0 {
		return ErrCorrupt
	}

	// --- Edge coefficients: 7x1 row then 1x7 column (A.2.2). ---
	ctxE := ilog2(int32(n77), 8)
	for orient := 0; orient < 2; orient++ {
		em.cls = ClassEdge
		nEdge := 0
		if em.e != nil {
			nEdge = bits.OnesCount64(nzMask & edgeMask[orient])
		}
		nEdge = em.codeTree(ch.nzEdge[orient][ctxE][:], nEdge, 3)
		em.cls = ClassEdge
		rem := nEdge
		for i := 1; i < 8 && rem > 0; i++ {
			pos := i // orient 0: top row, raster position u
			if orient == 1 {
				pos = i * 8 // left column, raster position v*8
			}
			var pred int32
			if c.flags.EdgePrediction {
				if orient == 0 && st.hasAbove {
					pred = lakhaniRow(above, cur, q, i)
				} else if orient == 1 && col > 0 {
					pred = lakhaniCol(left, cur, q, i)
				}
			} else {
				pred = avg77(above, left, aboveLeft, uint8(pos))
			}
			pb := predBucket(pred)
			mb := &ch.coefEdge[orient][i-1][pb]
			v := em.codeVal(mb, &ch.resEdge, int32(cur[pos]))
			cur[pos] = int16(v)
			if v != 0 {
				rem--
			}
		}
		if rem > 0 {
			return ErrCorrupt
		}
	}

	// --- DC, last, so every AC coefficient informs the prediction
	// (A.2.3). ---
	var abEd, lfEd *blockEdges
	if st.hasAbove {
		abEd = &st.edAbove[col]
	}
	if col > 0 {
		lfEd = &st.edCur[col-1]
	}
	var pred int32
	var conf int
	var px dct.Block
	if c.flags.DCGradient {
		// One inverse transform serves both the DC predictor and the edge
		// cache update below.
		acOnlyPixels(cur, q, &px)
		pred, conf = dcPrediction(&px, q, abEd, lfEd, st.prevDC)
	} else {
		pred = st.prevDC
		conf = confBuckets - 1
	}
	em.cls = ClassDC
	delta := em.codeVal(&ch.dc[conf], &ch.resDC, int32(cur[0])-pred)
	v := pred + delta
	if v > 32767 || v < -32768 {
		return ErrCorrupt
	}
	cur[0] = int16(v)

	// --- Update rolling caches. ---
	st.nzCur[col] = uint8(n77)
	if c.flags.DCGradient {
		// The edge cache feeds only the DC gradient predictor; skip it
		// entirely in the PackJPG-style configuration.
		edgesFromPixels(&px, v, q, &st.edCur[col])
	}
	st.prevDC = int32(cur[0])
	return nil
}

// The per-class nonzero counts are popcounts over dct.NonzeroMask's
// raster-order occupancy bits:
//
//	mask49      the 7x7 interior (u >= 1 and v >= 1): every row byte 1..7
//	            with its u=0 bit cleared;
//	edgeMask[0] the top row u = 1..7;
//	edgeMask[1] the left column v = 1..7 (bits 8, 16, ..., 56).
const mask49 = 0xFEFEFEFEFEFEFE00

var edgeMask = [2]uint64{0x00000000000000FE, 0x0101010101010100}
