package model

import (
	"testing"

	"lepton/internal/dct"
)

// TestBasis00Pinned keeps the basis00 constant in lockstep with the DCT
// table it mirrors; the Lakhani predictors divide by it as a compile-time
// constant for strength reduction.
func TestBasis00Pinned(t *testing.T) {
	if int64(dct.Basis[0][0]) != basis00 {
		t.Fatalf("basis00 = %d, dct.Basis[0][0] = %d", basis00, dct.Basis[0][0])
	}
}
