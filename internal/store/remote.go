package store

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lepton/internal/chunk"
	"lepton/internal/core"
)

// ErrRemoteMiss marks a replica that answered but does not hold the
// requested chunk — the read-repairable condition, as opposed to a replica
// that was unreachable (which may still hold it).
var ErrRemoteMiss = errors.New("store: chunk not found on node")

// RemoteTransport moves chunks to and from named nodes. server.Fleet
// implements it over the blockserver protocol with pooled, health-checked
// connections; tests substitute in-memory fakes.
type RemoteTransport interface {
	// Nodes returns the full, fixed node set placement hashes over;
	// temporarily unreachable nodes stay in the list so placements remain
	// stable across failures.
	Nodes() []string
	// PutCompressed uploads one compressed chunk to one node and returns
	// the content hash the node admitted it under.
	PutCompressed(ctx context.Context, addr string, compressed []byte) (Hash, error)
	// GetCompressed fetches one chunk's compressed bytes from one node; a
	// node that does not hold the chunk fails with ErrRemoteMiss (wrapped).
	GetCompressed(ctx context.Context, addr string, h Hash) ([]byte, error)
}

// RangeTransport is the optional range-read capability a RemoteTransport
// may implement (server.Fleet does, over OpGetRange): fetch bytes
// [off, off+n) of one chunk's reconstruction from one node, letting the
// node decode only the segments the range touches. A node that does not
// hold the chunk fails with ErrRemoteMiss (wrapped). Transports without the
// capability are served by the local fallback in Remote.GetRange.
type RangeTransport interface {
	GetRange(ctx context.Context, addr string, h Hash, off, n int64) ([]byte, error)
}

// RemoteCounters exposes the distributed store's operational statistics.
type RemoteCounters struct {
	Puts            int64
	Gets            int64
	ReplicaErrors   int64 // replica writes/reads lost to unreachable nodes
	Misses          int64 // replicas that answered "no such chunk"
	ReadRepairs     int64 // chunks written back to repaired replicas
	CorruptReplicas int64 // replicas whose bytes failed the content hash

	AntiEntropySweeps  int64 // background sweeps started
	AntiEntropyRepairs int64 // replica copies made by sweeps (not read-repair)

	RangeGets      int64 // chunk range reads requested
	RangeFallbacks int64 // of those, served by full-chunk fetch + local range decode
}

// Map renders the counters as a flat name→value map in the shape every
// other stats surface exports (Blockserver/Fleet StatsSnapshot), so the
// admin plane and the load harness can scrape all three uniformly.
func (c RemoteCounters) Map() map[string]int64 {
	return map[string]int64{
		"puts":                 c.Puts,
		"gets":                 c.Gets,
		"replica_errors":       c.ReplicaErrors,
		"misses":               c.Misses,
		"read_repairs":         c.ReadRepairs,
		"corrupt_replicas":     c.CorruptReplicas,
		"anti_entropy_sweeps":  c.AntiEntropySweeps,
		"anti_entropy_repairs": c.AntiEntropyRepairs,
		"range_gets":           c.RangeGets,
		"range_fallbacks":      c.RangeFallbacks,
	}
}

// Remote is the fleet-backed chunk store: content-addressed chunks placed
// on R nodes by consistent hashing, written through the blockserver store
// protocol, and read back with verification against the content hash plus
// read-repair of replicas found missing or corrupt. The codec runs client
// side (the paper's §7 deployment: compressed bytes are what crosses the
// network), so every replica stores identical bytes and any one of them
// can serve a read.
type Remote struct {
	// T moves chunks; typically a *server.Fleet.
	T RemoteTransport
	// Codec supplies pooled conversion state for local compress/decode;
	// nil allocates per call.
	Codec *core.Codec
	// Replication is R, the number of distinct nodes each chunk is placed
	// on; 0 means min(2, nodes).
	Replication int
	// ChunkSize for splitting files; 0 means the 4-MiB default.
	ChunkSize int

	// ringMu guards ring: membership changes only through RemoveNode (a
	// permanent loss shrinks placement; mere unreachability never does).
	ringMu sync.RWMutex
	ring   *hashRing

	counters RemoteCounters
}

// NewRemote builds a distributed store over t's node set.
func NewRemote(t RemoteTransport, replication int) (*Remote, error) {
	nodes := t.Nodes()
	if len(nodes) == 0 {
		return nil, errors.New("store: remote needs at least one node")
	}
	if replication <= 0 {
		replication = 2
		if len(nodes) < 2 {
			replication = len(nodes)
		}
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	return &Remote{T: t, Replication: replication, ring: newHashRing(nodes)}, nil
}

// Placement returns the R distinct node addresses that should hold h, in
// read-preference order.
func (r *Remote) Placement(h Hash) []string {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	return r.ring.placement(h, r.Replication)
}

// Put places one compressed chunk on its R replicas, written concurrently
// (the writes are independent and idempotent, so a put pays one replica
// round-trip of latency, not R). It succeeds when at least one replica
// admitted the chunk; unreachable replicas are counted and healed later by
// read-repair. The returned hash is the content address (SHA-256 of the
// compressed bytes), cross-checked against what each replica computed.
func (r *Remote) Put(ctx context.Context, compressed []byte) (Hash, error) {
	sum := sha256.Sum256(compressed)
	atomic.AddInt64(&r.counters.Puts, 1)
	replicas := r.Placement(sum)
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, addr := range replicas {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			h, err := r.T.PutCompressed(ctx, addr, compressed)
			if err != nil {
				errs[i] = err
				return
			}
			if h != sum {
				errs[i] = fmt.Errorf("store: node %s admitted chunk under %x, want %x", addr, h[:8], sum[:8])
			}
		}(i, addr)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Hash{}, err
	}
	var stored int
	var lastErr error
	for _, err := range errs {
		if err == nil {
			stored++
			continue
		}
		atomic.AddInt64(&r.counters.ReplicaErrors, 1)
		lastErr = err
	}
	if stored == 0 {
		return Hash{}, fmt.Errorf("store: put %x: no replica accepted: %w", sum[:8], lastErr)
	}
	return sum, nil
}

// GetCompressed fetches one chunk's compressed bytes from the first replica
// that both holds it and passes the content-hash check. Replicas found
// missing or corrupt along the way are repaired with the good copy —
// content-addressed writes are idempotent, so repairing is always safe.
func (r *Remote) GetCompressed(ctx context.Context, h Hash) ([]byte, error) {
	atomic.AddInt64(&r.counters.Gets, 1)
	replicas := r.Placement(h)
	var repair []string
	var lastErr error
	for _, addr := range replicas {
		cb, err := r.T.GetCompressed(ctx, addr, h)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			if errors.Is(err, ErrRemoteMiss) {
				atomic.AddInt64(&r.counters.Misses, 1)
				repair = append(repair, addr)
			} else {
				// Unreachable: it may still hold the chunk; don't rewrite.
				atomic.AddInt64(&r.counters.ReplicaErrors, 1)
			}
			continue
		}
		if sha256.Sum256(cb) != h {
			// The §5.7 checksum discipline, applied across the network: a
			// replica returning different bytes is corrupt and gets the
			// good copy written back over it.
			atomic.AddInt64(&r.counters.CorruptReplicas, 1)
			lastErr = fmt.Errorf("store: node %s returned corrupt bytes for %x", addr, h[:8])
			repair = append(repair, addr)
			continue
		}
		for _, m := range repair {
			// A repair is only a repair if the replica admitted the chunk
			// under its content address; anything else (write failure, or
			// the corrupted-admission case Put defends against) leaves the
			// replica unhealed and is counted so the cycle is visible.
			rh, err := r.T.PutCompressed(ctx, m, cb)
			if err == nil && rh == h {
				atomic.AddInt64(&r.counters.ReadRepairs, 1)
			} else {
				atomic.AddInt64(&r.counters.ReplicaErrors, 1)
			}
		}
		return cb, nil
	}
	return nil, fmt.Errorf("store: chunk %x unavailable on all %d replicas: %w", h[:8], len(replicas), lastErr)
}

// Get fetches and decodes one chunk.
func (r *Remote) Get(ctx context.Context, h Hash) ([]byte, error) {
	cb, err := r.GetCompressed(ctx, h)
	if err != nil {
		return nil, err
	}
	return r.Codec.DecodeCtx(ctx, cb, 0)
}

// GetRange fetches bytes [off, off+n) of one chunk's reconstruction,
// clamped at the chunk's size. With a range-capable transport the decode
// runs on the replica holding the chunk — only the segments the range
// touches — and the replicas are tried in placement order. A partial read
// cannot be verified against the chunk's content hash (that covers the
// whole compressed chunk), so range reads trust the replica's
// admission-time verification and perform no read-repair; when every
// replica fails, or the transport lacks the capability, the chunk is
// fetched whole through the verifying GetCompressed path and range-decoded
// locally.
func (r *Remote) GetRange(ctx context.Context, h Hash, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("store: negative range off=%d n=%d", off, n)
	}
	atomic.AddInt64(&r.counters.RangeGets, 1)
	if rt, ok := r.T.(RangeTransport); ok {
		for _, addr := range r.Placement(h) {
			b, err := rt.GetRange(ctx, addr, h, off, n)
			if err == nil {
				return b, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if errors.Is(err, ErrRemoteMiss) {
				atomic.AddInt64(&r.counters.Misses, 1)
			} else {
				atomic.AddInt64(&r.counters.ReplicaErrors, 1)
			}
		}
	}
	atomic.AddInt64(&r.counters.RangeFallbacks, 1)
	cb, err := r.GetCompressed(ctx, h)
	if err != nil {
		return nil, err
	}
	return r.Codec.DecodeRangeCtx(ctx, cb, off, n, 0)
}

// GetFileRange reads bytes [off, off+n) of a stored file, clamped at its
// size, touching only the chunks the range overlaps. Chunk k of a file
// covers exactly raw bytes [k*ChunkSize, (k+1)*ChunkSize) (the splitter
// cuts on fixed boundaries; the last chunk is short), so the mapping is
// pure arithmetic — but it requires this store's ChunkSize to match the one
// the file was stored under, which is checked against the ref's chunk
// count.
func (r *Remote) GetFileRange(ctx context.Context, ref FileRef, off, n int64) ([]byte, error) {
	size := int64(r.ChunkSize)
	if size <= 0 {
		size = chunk.DefaultChunkSize
	}
	return getFileRange(ctx, ref, off, n, size, r.GetRange)
}

// getFileRange is the chunk-arithmetic core shared by the remote and local
// stores: clamp [off, off+n) to the file, check the ref's chunk count
// against the chunk size, and fan the per-chunk sub-ranges out through
// getRange.
func getFileRange(ctx context.Context, ref FileRef, off, n, chunkSize int64,
	getRange func(ctx context.Context, h Hash, off, n int64) ([]byte, error)) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("store: negative range off=%d n=%d", off, n)
	}
	end := off + n
	if off > ref.Size {
		off = ref.Size
	}
	if end > ref.Size || end < 0 { // end < 0: off+n overflowed int64
		end = ref.Size
	}
	if end <= off {
		return []byte{}, nil
	}
	if want := (ref.Size + chunkSize - 1) / chunkSize; int64(len(ref.Chunks)) != want {
		return nil, fmt.Errorf("store: file ref has %d chunks for %d bytes at chunk size %d (stored under a different chunk size?)",
			len(ref.Chunks), ref.Size, chunkSize)
	}
	k0 := int(off / chunkSize)
	k1 := int((end + chunkSize - 1) / chunkSize)
	parts := make([][]byte, k1-k0)
	err := forEachChunk(ctx, k1-k0, func(ctx context.Context, i int) error {
		k := k0 + i
		c0 := int64(k) * chunkSize
		cEnd := c0 + chunkSize
		if cEnd > ref.Size {
			cEnd = ref.Size
		}
		a, z := off, end
		if a < c0 {
			a = c0
		}
		if z > cEnd {
			z = cEnd
		}
		b, err := getRange(ctx, ref.Chunks[k], a-c0, z-a)
		if err != nil {
			return fmt.Errorf("store: chunk %d: %w", k, err)
		}
		if int64(len(b)) != z-a {
			return fmt.Errorf("store: chunk %d range returned %d bytes, want %d", k, len(b), z-a)
		}
		parts[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, end-off)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// fileChunkConcurrency bounds how many of a file's chunks PutFile/GetFile
// move at once: chunks are independent (content-addressed, distinct
// replica sets), so fanning out cuts file latency from chunk-count round
// trips toward one, while the bound keeps a single large file from
// monopolizing the fleet's worker pools.
const fileChunkConcurrency = 4

// forEachChunk runs fn over indices 0..n-1 with bounded concurrency. The
// first failure cancels the shared context so the chunks still queued or
// in flight abort instead of running the whole file's worth of doomed
// round trips; the error returned is the lowest-index failure that was
// not itself caused by that cancellation.
func forEachChunk(ctx context.Context, n int, fn func(ctx context.Context, k int) error) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, fileChunkConcurrency)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if errs[k] = fn(cctx, k); errs[k] != nil {
				cancel()
			}
		}(k)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return fallback
}

// PutFile chunk-compresses a file locally (client-side codec, with the
// §5.7 round-trip verification) and places every chunk on its replicas,
// several chunks in flight at a time. Inputs Lepton cannot hold fall back
// to raw containers, exactly as the single-node Store does: the upload
// never fails for codec reasons.
func (r *Remote) PutFile(ctx context.Context, data []byte) (FileRef, error) {
	size := r.ChunkSize
	if size <= 0 {
		size = chunk.DefaultChunkSize
	}
	comp, err := chunk.CompressCtx(ctx, data, chunk.Options{ChunkSize: size, VerifyRoundtrip: true, Codec: r.Codec})
	if err != nil {
		if ctx.Err() != nil {
			return FileRef{}, ctx.Err()
		}
		comp = rawChunksOf(data, size)
	}
	ref := FileRef{Size: int64(len(data)), Chunks: make([]Hash, len(comp))}
	err = forEachChunk(ctx, len(comp), func(ctx context.Context, k int) error {
		h, err := r.Put(ctx, comp[k])
		if err != nil {
			return fmt.Errorf("store: chunk %d: %w", k, err)
		}
		ref.Chunks[k] = h
		return nil
	})
	if err != nil {
		return FileRef{}, err
	}
	return ref, nil
}

// GetFile reassembles a file from its reference, fetching and decoding
// several chunks concurrently and assembling them in order.
func (r *Remote) GetFile(ctx context.Context, ref FileRef) ([]byte, error) {
	parts := make([][]byte, len(ref.Chunks))
	err := forEachChunk(ctx, len(ref.Chunks), func(ctx context.Context, k int) error {
		b, err := r.Get(ctx, ref.Chunks[k])
		if err != nil {
			return err
		}
		parts[k] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, ref.Size)
	for _, p := range parts {
		out = append(out, p...)
	}
	if int64(len(out)) != ref.Size {
		return nil, fmt.Errorf("store: reassembled %d bytes, want %d", len(out), ref.Size)
	}
	return out, nil
}

// Counters returns a snapshot of operational statistics.
func (r *Remote) Counters() RemoteCounters {
	return RemoteCounters{
		Puts:            atomic.LoadInt64(&r.counters.Puts),
		Gets:            atomic.LoadInt64(&r.counters.Gets),
		ReplicaErrors:   atomic.LoadInt64(&r.counters.ReplicaErrors),
		Misses:          atomic.LoadInt64(&r.counters.Misses),
		ReadRepairs:     atomic.LoadInt64(&r.counters.ReadRepairs),
		CorruptReplicas: atomic.LoadInt64(&r.counters.CorruptReplicas),

		AntiEntropySweeps:  atomic.LoadInt64(&r.counters.AntiEntropySweeps),
		AntiEntropyRepairs: atomic.LoadInt64(&r.counters.AntiEntropyRepairs),

		RangeGets:      atomic.LoadInt64(&r.counters.RangeGets),
		RangeFallbacks: atomic.LoadInt64(&r.counters.RangeFallbacks),
	}
}

// --- consistent-hash ring -------------------------------------------------

// ringVnodes spreads each node across the ring so placement stays balanced
// with a handful of nodes.
const ringVnodes = 64

type ringPoint struct {
	pos  uint64
	node int
}

// hashRing is a fixed consistent-hash ring: chunk hashes map to positions,
// and a chunk's replicas are the first R distinct nodes walking clockwise
// from its position. Placement depends only on the node list, never on
// liveness, so every client of the same fleet computes the same replicas
// and a node's death moves no data.
type hashRing struct {
	nodes  []string
	points []ringPoint
}

func newHashRing(nodes []string) *hashRing {
	r := &hashRing{nodes: append([]string(nil), nodes...)}
	r.points = make([]ringPoint, 0, len(nodes)*ringVnodes)
	for i, addr := range r.nodes {
		for v := 0; v < ringVnodes; v++ {
			s := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", addr, v)))
			r.points = append(r.points, ringPoint{pos: binary.LittleEndian.Uint64(s[:8]), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// placement returns the first k distinct nodes clockwise from h's position.
func (r *hashRing) placement(h Hash, k int) []string {
	if k > len(r.nodes) {
		k = len(r.nodes)
	}
	pos := binary.LittleEndian.Uint64(h[:8])
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	seen := make(map[int]bool, k)
	out := make([]string, 0, k)
	for i := 0; len(out) < k && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}
