package store_test

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"lepton/internal/core"
	"lepton/internal/imagegen"
	"lepton/internal/store"
)

// fuzzCodec is shared across fuzz executions so pooled state is exercised
// under the fuzzer's input churn, exactly as a long-lived blockserver
// store would run.
var fuzzCodec = core.NewCodec()

// fuzzSeedChunks builds in-test seeds: valid Lepton chunk containers
// across layouts, a raw-mode container, and corruptions of both. The
// checked-in corpus under testdata/fuzz/ is a separate, additional seed
// set owned by `corpusgen -fuzz-seeds`; the two need not stay in sync —
// more distinct seed shapes only help the fuzzer.
func fuzzSeedChunks(tb testing.TB) [][]byte {
	tb.Helper()
	var out [][]byte
	add := func(img []byte, err error) {
		if err != nil {
			tb.Fatal(err)
		}
		res, err := core.Encode(img, core.EncodeOptions{})
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, res.Compressed)
	}
	sy := imagegen.Synthesize(5, 112, 80)
	add(imagegen.EncodeJPEG(sy, imagegen.Options{Quality: 85, PadBit: 1}))
	add(imagegen.EncodeJPEG(sy, imagegen.Options{Quality: 75, Grayscale: true, PadBit: 0}))
	add(imagegen.EncodeJPEG(sy, imagegen.Options{Quality: 70, SubsampleChroma: true, RestartInterval: 2, PadBit: 1}))
	raw := &core.Container{Mode: core.ModeRaw, Raw: []byte("raw chunk payload"), OutputSize: 17}
	rb, err := raw.Marshal()
	if err != nil {
		tb.Fatal(err)
	}
	out = append(out, rb)
	n := len(out)
	for i := 0; i < n; i++ {
		s := out[i]
		if len(s) > 64 {
			c := append([]byte(nil), s...)
			c[len(c)-9] ^= 0x2C
			out = append(out, c, s[:len(s)/2])
		}
	}
	return out
}

// FuzzStorePut feeds arbitrary bytes to the client-side-codec admission
// path (PutCompressedChunk) and, when a chunk is admitted, requires the
// §5.7 invariants to hold: the hash is the content address, the stored
// compressed bytes round-trip unchanged, and GetChunk returns exactly what
// a direct decode of the input produces. Nothing may panic or hang on
// corrupt containers.
func FuzzStorePut(f *testing.F) {
	for _, s := range fuzzSeedChunks(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st := store.New()
		st.Codec = fuzzCodec
		h, err := st.PutCompressedChunk(data)
		if err != nil {
			// Rejected: nothing may be stored under the payload's content
			// address (h is the zero Hash on error, so check the address a
			// store-then-validate regression would actually write to).
			if _, ok := st.GetCompressedChunk(sha256.Sum256(data)); ok {
				t.Fatal("rejected chunk left bytes in the store")
			}
			return
		}
		cb, ok := st.GetCompressedChunk(h)
		if !ok {
			t.Fatal("admitted chunk missing from store")
		}
		if !bytes.Equal(cb, data) {
			t.Fatal("stored compressed bytes differ from the upload")
		}
		back, err := st.GetChunk(h)
		if err != nil {
			t.Fatalf("admitted chunk failed to decode on read: %v", err)
		}
		direct, err := fuzzCodec.DecodeCtx(t.Context(), data, 0)
		if err != nil {
			t.Fatalf("chunk admitted but direct decode fails: %v", err)
		}
		if !bytes.Equal(back, direct) {
			t.Fatal("store read and direct decode disagree")
		}
	})
}
