package store_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"
	"time"

	"lepton/internal/store"
)

// ListChunks makes fakeTransport a store.ChunkLister: sorted ranged scan
// over one node's blobs, honoring the down switch.
func (t *fakeTransport) ListChunks(ctx context.Context, addr string, after store.Hash, max int) ([]store.Hash, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down[addr] {
		return nil, fmt.Errorf("connection refused")
	}
	var out []store.Hash
	for h := range t.blobs[addr] {
		if bytes.Compare(h[:], after[:]) > 0 {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out, nil
}

func (t *fakeTransport) wipe(addr string, h store.Hash) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.blobs[addr], h)
}

func (t *fakeTransport) wipeAll(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blobs[addr] = map[store.Hash][]byte{}
}

// putChunks stores n distinct chunks through the remote and returns their
// hashes.
func putChunks(t *testing.T, r *store.Remote, n int) []store.Hash {
	t.Helper()
	ctx := context.Background()
	hashes := make([]store.Hash, n)
	for i := range hashes {
		h, err := r.Put(ctx, []byte(fmt.Sprintf("chunk payload %d", i)))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		hashes[i] = h
	}
	return hashes
}

// assertFullyReplicated fails unless every hash is held by every node of
// its current placement.
func assertFullyReplicated(t *testing.T, r *store.Remote, tr *fakeTransport, hashes []store.Hash) {
	t.Helper()
	for _, h := range hashes {
		p := r.Placement(h)
		for _, addr := range p {
			if !tr.holds(addr, h) {
				t.Fatalf("chunk %x missing from placement replica %s", h[:8], addr)
			}
		}
	}
}

func TestAntiEntropyRestoresReplicationAfterNodeLoss(t *testing.T) {
	tr := newFakeTransport(4)
	r := newRemote(t, tr, 2)
	hashes := putChunks(t, r, 40)
	assertFullyReplicated(t, r, tr, hashes)

	// Permanent loss: the node dies and is removed from the ring. Its
	// chunks are now below R on the new placement until the sweep runs.
	victim := tr.nodes[1]
	tr.setDown(victim, true)
	tr.wipeAll(victim)
	r.RemoveNode(victim)

	getsBefore := r.Counters().Gets
	repaired, err := r.AntiEntropy(context.Background())
	if err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if repaired == 0 {
		t.Fatal("node loss repaired nothing — sweep found no under-replicated chunks")
	}
	assertFullyReplicated(t, r, tr, hashes)
	c := r.Counters()
	// Proactive healing, not read-repair: no client read was involved.
	if c.Gets != getsBefore {
		t.Fatalf("sweep performed %d client Gets", c.Gets-getsBefore)
	}
	if c.AntiEntropySweeps != 1 || c.AntiEntropyRepairs != int64(repaired) {
		t.Fatalf("counters: %+v, want 1 sweep / %d repairs", c, repaired)
	}
	if c.ReadRepairs != 0 {
		t.Fatalf("sweep counted as read-repair: %+v", c)
	}
	// A second sweep is a no-op: the system converged.
	repaired2, err := r.AntiEntropy(context.Background())
	if err != nil || repaired2 != 0 {
		t.Fatalf("second sweep: repaired=%d err=%v, want 0, nil", repaired2, err)
	}
}

func TestAntiEntropyHealsSingleHole(t *testing.T) {
	tr := newFakeTransport(3)
	r := newRemote(t, tr, 2)
	hashes := putChunks(t, r, 10)
	// Punch one hole: wipe one replica of one chunk.
	h := hashes[3]
	addr := r.Placement(h)[1]
	tr.wipe(addr, h)
	repaired, err := r.AntiEntropy(context.Background())
	if err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if repaired != 1 {
		t.Fatalf("repaired = %d, want 1", repaired)
	}
	if !tr.holds(addr, h) {
		t.Fatal("hole not healed")
	}
}

func TestAntiEntropySkipsUnreachableNodes(t *testing.T) {
	tr := newFakeTransport(4)
	r := newRemote(t, tr, 2)
	hashes := putChunks(t, r, 20)

	// One node is DOWN but not removed: placements keep naming it, the
	// sweep must neither fail nor write to it, and chunks whose only other
	// replica has a hole still heal.
	down := tr.nodes[2]
	tr.setDown(down, true)
	var holed []store.Hash
	for _, h := range hashes {
		p := r.Placement(h)
		if p[0] != down && p[1] != down {
			tr.wipe(p[1], h)
			holed = append(holed, h)
			if len(holed) == 3 {
				break
			}
		}
	}
	repaired, err := r.AntiEntropy(context.Background())
	if err != nil {
		t.Fatalf("AntiEntropy with a node down: %v", err)
	}
	if repaired != len(holed) {
		t.Fatalf("repaired = %d, want %d", repaired, len(holed))
	}
	for _, h := range holed {
		if tr.replicaCount(h) < 2 {
			t.Fatalf("chunk %x still under-replicated", h[:8])
		}
	}
	// The down node was never written behind its back.
	tr.mu.Lock()
	downHeld := len(tr.blobs[down])
	tr.mu.Unlock()
	tr.setDown(down, false)
	tr.mu.Lock()
	if len(tr.blobs[down]) != downHeld {
		t.Fatal("sweep wrote to an unreachable node")
	}
	tr.mu.Unlock()
}

func TestReannounceWarmRestart(t *testing.T) {
	tr := newFakeTransport(3)
	r := newRemote(t, tr, 2)
	hashes := putChunks(t, r, 30)

	// Warm restart with an intact disk: the node holds everything it
	// should, so the reannounce finds nothing to move.
	node := tr.nodes[0]
	var wantHeld int
	tr.mu.Lock()
	wantHeld = len(tr.blobs[node])
	tr.mu.Unlock()
	held, repaired, err := r.Reannounce(context.Background(), node)
	if err != nil {
		t.Fatalf("Reannounce: %v", err)
	}
	if held != wantHeld {
		t.Fatalf("held = %d, want %d", held, wantHeld)
	}
	if repaired != 0 {
		t.Fatalf("intact warm restart repaired %d chunks, want 0", repaired)
	}

	// A peer lost its copy of a chunk this node holds: the reannounce
	// notices and heals it (the node's catalog drives the check).
	var h store.Hash
	var peer string
	for _, hh := range hashes {
		p := r.Placement(hh)
		if p[0] == node {
			h, peer = hh, p[1]
			break
		}
	}
	if peer == "" {
		t.Skip("no chunk placed primary on node 0")
	}
	tr.wipe(peer, h)
	_, repaired, err = r.Reannounce(context.Background(), node)
	if err != nil {
		t.Fatalf("Reannounce: %v", err)
	}
	if repaired != 1 || !tr.holds(peer, h) {
		t.Fatalf("repaired = %d, peer holds = %v; want 1, true", repaired, tr.holds(peer, h))
	}

	// Reannouncing an unreachable node is an error, not an empty success.
	tr.setDown(node, true)
	if _, _, err := r.Reannounce(context.Background(), node); err == nil {
		t.Fatal("Reannounce of a down node succeeded")
	}
}

func TestRemoveNodeShrinksPlacement(t *testing.T) {
	tr := newFakeTransport(3)
	r := newRemote(t, tr, 2)
	victim := tr.nodes[0]
	r.RemoveNode(victim)
	for i := 0; i < 50; i++ {
		h := sha256.Sum256([]byte{byte(i)})
		for _, addr := range r.Placement(h) {
			if addr == victim {
				t.Fatal("placement still names the removed node")
			}
		}
		if got := len(r.Placement(h)); got != 2 {
			t.Fatalf("placement size %d, want 2", got)
		}
	}
	// Removing the rest is refused at the last node: a ring cannot empty.
	r.RemoveNode(tr.nodes[1])
	r.RemoveNode(tr.nodes[2])
	h := sha256.Sum256([]byte("x"))
	if got := len(r.Placement(h)); got == 0 {
		t.Fatal("ring emptied")
	}
	// Unknown addr is a no-op.
	r.RemoveNode("tcp:unknown:1")
}

func TestStartAntiEntropyBackgroundLoop(t *testing.T) {
	tr := newFakeTransport(3)
	r := newRemote(t, tr, 2)
	hashes := putChunks(t, r, 10)
	h := hashes[0]
	addr := r.Placement(h)[1]
	tr.wipe(addr, h)

	stop := r.StartAntiEntropy(10 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for !tr.holds(addr, h) {
		if time.Now().After(deadline) {
			stop()
			t.Fatal("background sweep never healed the hole")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if r.Counters().AntiEntropySweeps == 0 {
		t.Fatal("no sweeps counted")
	}
}

// listlessTransport hides fakeTransport's ListChunks to exercise the
// capability check.
type listlessTransport struct{ t *fakeTransport }

func (l listlessTransport) Nodes() []string { return l.t.Nodes() }
func (l listlessTransport) PutCompressed(ctx context.Context, addr string, cb []byte) (store.Hash, error) {
	return l.t.PutCompressed(ctx, addr, cb)
}
func (l listlessTransport) GetCompressed(ctx context.Context, addr string, h store.Hash) ([]byte, error) {
	return l.t.GetCompressed(ctx, addr, h)
}

func TestAntiEntropyNeedsLister(t *testing.T) {
	tr := newFakeTransport(2)
	r, err := store.NewRemote(listlessTransport{tr}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AntiEntropy(context.Background()); err == nil {
		t.Fatal("AntiEntropy over a transport without listing succeeded")
	}
}
