package store

import (
	"bytes"
	"fmt"

	"lepton/internal/core"
	"lepton/internal/jpeg"
)

// QualReport summarizes a qualification run: the paper requires every new
// Lepton build to compress and decompress a large corpus with identical
// results from the optimized and sanitizing decoders before deployment
// (§5.2, §5.7).
type QualReport struct {
	Total int
	// ByReason counts outcomes by §6.2 classification (ReasonNone =
	// success).
	ByReason map[jpeg.Reason]int
	// CrossCheckFailures counts files whose single-threaded and
	// multithreaded decodes disagreed — the §6.7 "second alarm" class. Any
	// nonzero value disqualifies the build.
	CrossCheckFailures int
	// BytesIn/BytesOut tally successful compressions.
	BytesIn, BytesOut int64
}

// SuccessRatio returns the fraction of inputs that compressed successfully.
func (q *QualReport) SuccessRatio() float64 {
	if q.Total == 0 {
		return 0
	}
	return float64(q.ByReason[jpeg.ReasonNone]) / float64(q.Total)
}

// String renders the §6.2-style table.
func (q *QualReport) String() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "qualification over %d files:\n", q.Total)
	order := []jpeg.Reason{
		jpeg.ReasonNone, jpeg.ReasonProgressive, jpeg.ReasonUnsupported,
		jpeg.ReasonNotImage, jpeg.ReasonCMYK, jpeg.ReasonMemDecode,
		jpeg.ReasonMemEncode, jpeg.ReasonChromaSub, jpeg.ReasonACRange,
		jpeg.ReasonRoundtrip, jpeg.ReasonTruncated,
	}
	for _, r := range order {
		if n := q.ByReason[r]; n > 0 {
			fmt.Fprintf(&buf, "  %-24s %7.3f%% (%d)\n", r.String(),
				100*float64(n)/float64(q.Total), n)
		}
	}
	if q.CrossCheckFailures > 0 {
		fmt.Fprintf(&buf, "  CROSS-CHECK FAILURES: %d (build disqualified)\n", q.CrossCheckFailures)
	}
	return buf.String()
}

// Qualify runs the qualification pipeline over a corpus: compress, decode
// with the multithreaded path, decode again with the single-threaded path,
// and verify all three agree with the input.
func Qualify(corpus [][]byte) *QualReport {
	q := &QualReport{ByReason: map[jpeg.Reason]int{}}
	for _, data := range corpus {
		q.Total++
		res, err := core.Encode(data, core.EncodeOptions{VerifyRoundtrip: true})
		if err != nil {
			q.ByReason[jpeg.ReasonOf(err)]++
			continue
		}
		multi, err1 := core.Decode(res.Compressed, 0)
		var buf bytes.Buffer
		err2 := core.DecodeTo(&buf, res.Compressed, 0)
		if err1 != nil || err2 != nil ||
			!bytes.Equal(multi, data) || !bytes.Equal(buf.Bytes(), data) {
			q.CrossCheckFailures++
			q.ByReason[jpeg.ReasonRoundtrip]++
			continue
		}
		q.ByReason[jpeg.ReasonNone]++
		q.BytesIn += int64(len(data))
		q.BytesOut += int64(len(res.Compressed))
	}
	return q
}
