package store_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"testing"

	"lepton/internal/store"
)

// fakeTransport is an in-memory RemoteTransport: one map per node, with
// switches to take nodes down and corrupt stored bytes.
type fakeTransport struct {
	nodes []string

	mu      sync.Mutex
	blobs   map[string]map[store.Hash][]byte
	down    map[string]bool
	corrupt map[string]bool // node returns flipped bytes on Get
}

func newFakeTransport(n int) *fakeTransport {
	t := &fakeTransport{
		blobs:   map[string]map[store.Hash][]byte{},
		down:    map[string]bool{},
		corrupt: map[string]bool{},
	}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("tcp:10.0.0.%d:7731", i+1)
		t.nodes = append(t.nodes, addr)
		t.blobs[addr] = map[store.Hash][]byte{}
	}
	return t
}

func (t *fakeTransport) Nodes() []string { return t.nodes }

func (t *fakeTransport) PutCompressed(ctx context.Context, addr string, cb []byte) (store.Hash, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down[addr] {
		return store.Hash{}, errors.New("connection refused")
	}
	h := sha256.Sum256(cb)
	t.blobs[addr][h] = append([]byte(nil), cb...)
	return h, nil
}

func (t *fakeTransport) GetCompressed(ctx context.Context, addr string, h store.Hash) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down[addr] {
		return nil, errors.New("connection refused")
	}
	cb, ok := t.blobs[addr][h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", store.ErrRemoteMiss, addr)
	}
	if t.corrupt[addr] {
		bad := append([]byte(nil), cb...)
		bad[len(bad)/2] ^= 0x40
		return bad, nil
	}
	return append([]byte(nil), cb...), nil
}

func (t *fakeTransport) holds(addr string, h store.Hash) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.blobs[addr][h]
	return ok
}

func (t *fakeTransport) setDown(addr string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[addr] = down
}

func (t *fakeTransport) replicaCount(h store.Hash) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, m := range t.blobs {
		if _, ok := m[h]; ok {
			n++
		}
	}
	return n
}

func newRemote(t *testing.T, tr *fakeTransport, repl int) *store.Remote {
	t.Helper()
	r, err := store.NewRemote(tr, repl)
	if err != nil {
		t.Fatal(err)
	}
	r.ChunkSize = 16 << 10
	return r
}

func TestPlacementDistinctAndStable(t *testing.T) {
	tr := newFakeTransport(5)
	r := newRemote(t, tr, 3)
	perNode := map[string]int{}
	for i := 0; i < 200; i++ {
		h := sha256.Sum256([]byte{byte(i), byte(i >> 8)})
		p := r.Placement(h)
		if len(p) != 3 {
			t.Fatalf("placement %v: want 3 replicas", p)
		}
		seen := map[string]bool{}
		for _, a := range p {
			if seen[a] {
				t.Fatalf("placement %v repeats a node", p)
			}
			seen[a] = true
			perNode[a]++
		}
		// Stable: recomputing yields the same order.
		p2 := r.Placement(h)
		for k := range p {
			if p[k] != p2[k] {
				t.Fatalf("placement not stable: %v vs %v", p, p2)
			}
		}
	}
	// Every node should carry a reasonable share of 200*3 placements.
	for _, n := range tr.Nodes() {
		if perNode[n] < 40 {
			t.Fatalf("ring is unbalanced: %v", perNode)
		}
	}
}

func TestRemotePutReplicates(t *testing.T) {
	tr := newFakeTransport(4)
	r := newRemote(t, tr, 2)
	cb := []byte("pretend-compressed-chunk")
	h, err := r.Put(context.Background(), cb)
	if err != nil {
		t.Fatal(err)
	}
	if h != sha256.Sum256(cb) {
		t.Fatal("put hash is not the content hash")
	}
	if got := tr.replicaCount(h); got != 2 {
		t.Fatalf("chunk on %d nodes, want 2", got)
	}
	for _, addr := range r.Placement(h) {
		if !tr.holds(addr, h) {
			t.Fatalf("placement node %s does not hold the chunk", addr)
		}
	}
}

func TestRemotePutSucceedsWithOneReplicaDown(t *testing.T) {
	tr := newFakeTransport(3)
	r := newRemote(t, tr, 2)
	cb := []byte("chunk-bytes-while-degraded")
	sum := sha256.Sum256(cb)
	tr.setDown(r.Placement(sum)[0], true)
	h, err := r.Put(context.Background(), cb)
	if err != nil {
		t.Fatalf("put with one replica down: %v", err)
	}
	if got := tr.replicaCount(h); got != 1 {
		t.Fatalf("chunk on %d nodes, want 1 (degraded)", got)
	}
	if r.Counters().ReplicaErrors == 0 {
		t.Fatal("degraded put recorded no replica error")
	}
}

func TestRemoteGetReadRepairsMissingReplica(t *testing.T) {
	tr := newFakeTransport(3)
	r := newRemote(t, tr, 2)
	cb := []byte("chunk-that-will-be-repaired")
	sum := sha256.Sum256(cb)
	primary := r.Placement(sum)[0]

	// Write while the primary is down: only the secondary holds the chunk.
	tr.setDown(primary, true)
	if _, err := r.Put(context.Background(), cb); err != nil {
		t.Fatal(err)
	}
	if tr.holds(primary, sum) {
		t.Fatal("down primary somehow stored the chunk")
	}

	// The primary recovers; a read must serve from the secondary and write
	// the chunk back to the primary.
	tr.setDown(primary, false)
	got, err := r.GetCompressed(context.Background(), sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cb) {
		t.Fatal("read returned wrong bytes")
	}
	if !tr.holds(primary, sum) {
		t.Fatal("read did not repair the missing replica")
	}
	if r.Counters().ReadRepairs == 0 {
		t.Fatal("repair not counted")
	}
}

func TestRemoteGetDetectsCorruptReplica(t *testing.T) {
	tr := newFakeTransport(3)
	r := newRemote(t, tr, 2)
	cb := []byte("chunk-with-one-corrupt-replica")
	h, err := r.Put(context.Background(), cb)
	if err != nil {
		t.Fatal(err)
	}
	// First replica returns flipped bytes; the read must reject them by
	// content hash and serve from the second.
	tr.corrupt[r.Placement(h)[0]] = true
	got, err := r.GetCompressed(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cb) {
		t.Fatal("corrupt replica's bytes leaked through")
	}
	if r.Counters().CorruptReplicas == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestRemoteGetFailsWhenAllReplicasGone(t *testing.T) {
	tr := newFakeTransport(2)
	r := newRemote(t, tr, 2)
	cb := []byte("doomed-chunk")
	h, err := r.Put(context.Background(), cb)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		tr.setDown(n, true)
	}
	if _, err := r.GetCompressed(context.Background(), h); err == nil {
		t.Fatal("get succeeded with every replica down")
	}
}

func TestRemotePutFileRoundtrip(t *testing.T) {
	tr := newFakeTransport(4)
	r := newRemote(t, tr, 2)
	data := gen(t, 61, 512, 384) // several 16-KiB chunks
	ref, err := r.PutFile(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Chunks) < 2 {
		t.Fatalf("only %d chunks; test wants a multi-chunk file", len(ref.Chunks))
	}
	back, err := r.GetFile(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("distributed file round trip mismatch")
	}
	// Survives any single node failure: every chunk has 2 replicas.
	tr.setDown(tr.Nodes()[0], true)
	back, err = r.GetFile(context.Background(), ref)
	if err != nil {
		t.Fatalf("get with one node down: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("degraded read mismatch")
	}
}

func TestRemotePutFileNonJPEGFallsBackToRaw(t *testing.T) {
	tr := newFakeTransport(3)
	r := newRemote(t, tr, 2)
	data := bytes.Repeat([]byte("definitely not a jpeg. "), 3000)
	ref, err := r.PutFile(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := r.GetFile(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("raw fallback round trip mismatch")
	}
}
