package store_test

import (
	"crypto/sha256"
	"testing"

	"lepton"
	"lepton/internal/imagegen"
	"lepton/internal/store"
)

func TestTimeoutQueueVerifiesHealthyChunks(t *testing.T) {
	pager := &store.Pager{}
	q := store.NewTimeoutQueue(pager)

	data := gen(t, 20, 256, 192)
	res, err := lepton.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(res.Compressed)
	q.ReportTimeout(h, res.Compressed)
	// Duplicate report must not duplicate work.
	q.ReportTimeout(h, res.Compressed)
	if q.Pending() != 1 {
		t.Fatalf("pending = %d", q.Pending())
	}
	verified, failed := q.Drain()
	if verified != 1 || failed != 0 {
		t.Fatalf("verified=%d failed=%d", verified, failed)
	}
	if q.Pending() != 0 {
		t.Fatal("queue not drained")
	}
	if len(pager.Alarms()) != 0 {
		t.Fatalf("healthy chunk paged: %+v", pager.Alarms())
	}
}

func TestTimeoutQueuePagesOnCorruptChunk(t *testing.T) {
	pager := &store.Pager{}
	q := store.NewTimeoutQueue(pager)

	data := gen(t, 21, 128, 128)
	res, err := lepton.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), res.Compressed...)
	bad[len(bad)/2] ^= 0xFF // corrupt the arithmetic stream
	h := sha256.Sum256(bad)
	q.ReportTimeout(h, bad)
	verified, failed := q.Drain()
	if failed == 0 && verified == 1 {
		// A mid-stream flip may still decode (to wrong bytes) without
		// erroring; requalification catches that case instead. Accept
		// either path here but require determinism checks ran.
		return
	}
	if failed != 1 {
		t.Fatalf("verified=%d failed=%d", verified, failed)
	}
	alarms := pager.Alarms()
	if len(alarms) == 0 {
		t.Fatal("no alarm paged")
	}
	if alarms[0].SavedData == nil {
		t.Fatal("failing data not saved for forensics")
	}
}

func TestRequalifyCleanStore(t *testing.T) {
	st := store.New()
	st.ChunkSize = 16 << 10
	data := gen(t, 22, 400, 300)
	ref, err := st.PutFile(data)
	if err != nil {
		t.Fatal(err)
	}
	pager := &store.Pager{}
	if n := st.Requalify(ref, data, pager); n != 0 {
		t.Fatalf("%d failures on clean store: %+v", n, pager.Alarms())
	}
}

func TestRequalifyDetectsWrongPlaintext(t *testing.T) {
	st := store.New()
	st.ChunkSize = 16 << 10
	data := gen(t, 23, 300, 200)
	ref, err := st.PutFile(data)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a plaintext mismatch (e.g. the file was re-encoded by an
	// incompatible build, §6.7 fourth alarm).
	wrong := append([]byte(nil), data...)
	wrong[100] ^= 1
	pager := &store.Pager{}
	if n := st.Requalify(ref, wrong, pager); n == 0 {
		t.Fatal("mismatch not detected")
	}
	found := false
	for _, a := range pager.Alarms() {
		if a.Kind == store.AlarmRequalificationFailure {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong alarm kinds: %+v", pager.Alarms())
	}
}

func TestRequalifyDetectsMissingChunk(t *testing.T) {
	st := store.New()
	ref := store.FileRef{Chunks: []store.Hash{{9, 9, 9}}, Size: 10}
	pager := &store.Pager{}
	if n := st.Requalify(ref, make([]byte, 10), pager); n != 1 {
		t.Fatalf("failures = %d", n)
	}
	if pager.Alarms()[0].Kind != store.AlarmDecodeFailure {
		t.Fatalf("kind = %v", pager.Alarms()[0].Kind)
	}
}

func TestAlarmKindStrings(t *testing.T) {
	kinds := []store.AlarmKind{
		store.AlarmDecodeFailure, store.AlarmRequalificationFailure,
		store.AlarmCrossCheckMismatch, store.AlarmTimeoutExhausted,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("bad label %q", s)
		}
		seen[s] = true
	}
}

var _ = imagegen.Generate
