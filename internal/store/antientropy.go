package store

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// The fleet's second healing path. Read-repair (remote.go) only heals
// chunks that happen to get read; a permanently lost node leaves every
// chunk it exclusively replicated sitting below R until someone asks for
// it. Anti-entropy closes that gap: walk what the nodes actually hold
// (OpListChunks), compare against what ring placement says they should
// hold, and copy chunks to the replicas missing them — proactively, with
// no client read involved. The same sweep, restricted to one node's
// catalog, is the warm-restart re-announce: a node rejoining with a disk
// full of chunks proves what it holds and gets topped up with anything
// placement assigned it while it was down.

// ChunkLister is the transport capability anti-entropy needs beyond
// RemoteTransport: the ranged scan over one node's stored hashes.
// server.Fleet implements it over OpListChunks.
type ChunkLister interface {
	// ListChunks returns up to max of addr's stored chunk hashes strictly
	// greater than after, in ascending order; an empty page ends the scan.
	ListChunks(ctx context.Context, addr string, after Hash, max int) ([]Hash, error)
}

// listPageSize is the page the sweep requests per round trip; servers cap
// pages at their own limit, so this is an upper bound, not a demand.
const listPageSize = 4096

// listAll pages through one node's full chunk listing.
func (r *Remote) listAll(ctx context.Context, lister ChunkLister, addr string) ([]Hash, error) {
	var (
		all   []Hash
		after Hash
	)
	for {
		page, err := lister.ListChunks(ctx, addr, after, listPageSize)
		if err != nil {
			return nil, err
		}
		if len(page) == 0 {
			return all, nil
		}
		all = append(all, page...)
		after = page[len(page)-1]
	}
}

// RemoveNode permanently removes addr from the placement ring: a node
// that is gone for good (not merely down) must stop being counted as a
// replica, or every chunk placed on it stays silently below R forever.
// Placement of the affected chunks moves to the next nodes clockwise;
// the following anti-entropy sweep copies the data there.
func (r *Remote) RemoveNode(addr string) {
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	var nodes []string
	for _, n := range r.ring.nodes {
		if n != addr {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == len(r.ring.nodes) || len(nodes) == 0 {
		return // unknown addr, or refusing to empty the ring
	}
	r.ring = newHashRing(nodes)
}

// nodesSnapshot returns the current ring membership.
func (r *Remote) nodesSnapshot() []string {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	return append([]string(nil), r.ring.nodes...)
}

// sweep is the shared engine behind AntiEntropy and Reannounce: list every
// ring node, take the union of the listings from catalogAddrs as the chunk
// catalog, and for each catalogued chunk copy it to any placement replica
// whose listing lacks it. Nodes that fail to list are skipped both as
// holders (cannot fetch from them) and as repair targets (a put that lands
// while the node is in an unknown state proves nothing — the next sweep
// retries); with strict set, a catalog node that fails to list is an error
// instead (a reannounce of an unreachable node is meaningless). Returns
// the catalog size and the number of replica copies made.
func (r *Remote) sweep(ctx context.Context, catalogAddrs []string, strict bool) (held, repaired int, err error) {
	lister, ok := r.T.(ChunkLister)
	if !ok {
		return 0, 0, errors.New("store: transport does not support chunk listing")
	}
	nodes := r.nodesSnapshot()
	inCatalog := make(map[string]bool, len(catalogAddrs))
	for _, a := range catalogAddrs {
		inCatalog[a] = true
	}

	holders := make(map[Hash]map[string]bool)
	listed := make(map[string]bool, len(nodes))
	catalog := make(map[Hash]bool)
	for _, addr := range nodes {
		hs, lerr := r.listAll(ctx, lister, addr)
		if lerr != nil {
			if ctx.Err() != nil {
				return 0, 0, ctx.Err()
			}
			if strict && inCatalog[addr] {
				return 0, 0, fmt.Errorf("store: list %s: %w", addr, lerr)
			}
			atomic.AddInt64(&r.counters.ReplicaErrors, 1)
			continue
		}
		listed[addr] = true
		for _, h := range hs {
			m := holders[h]
			if m == nil {
				m = make(map[string]bool, r.Replication)
				holders[h] = m
			}
			m[addr] = true
			if inCatalog[addr] {
				catalog[h] = true
			}
		}
	}

	for h := range catalog {
		if err := ctx.Err(); err != nil {
			return len(catalog), repaired, err
		}
		for _, target := range r.Placement(h) {
			if !listed[target] || holders[h][target] {
				continue
			}
			if r.repairTo(ctx, h, target, holders[h]) {
				holders[h][target] = true
				repaired++
			}
		}
	}
	return len(catalog), repaired, nil
}

// repairTo copies chunk h to target from any holder whose bytes verify
// against the content hash, reporting whether target now holds it.
func (r *Remote) repairTo(ctx context.Context, h Hash, target string, from map[string]bool) bool {
	for addr := range from {
		cb, err := r.T.GetCompressed(ctx, addr, h)
		if err != nil {
			atomic.AddInt64(&r.counters.ReplicaErrors, 1)
			continue
		}
		if sha256.Sum256(cb) != h {
			atomic.AddInt64(&r.counters.CorruptReplicas, 1)
			continue
		}
		rh, err := r.T.PutCompressed(ctx, target, cb)
		if err != nil || rh != h {
			atomic.AddInt64(&r.counters.ReplicaErrors, 1)
			return false
		}
		atomic.AddInt64(&r.counters.AntiEntropyRepairs, 1)
		return true
	}
	return false
}

// AntiEntropy runs one full sweep: every chunk any ring node holds is
// checked against its placement and copied to replicas missing it. The
// union catalog matters — after RemoveNode, placement points at nodes
// that never saw the affected chunks, so only the survivors' listings
// know what needs copying. Returns the number of replica copies made.
func (r *Remote) AntiEntropy(ctx context.Context) (int, error) {
	atomic.AddInt64(&r.counters.AntiEntropySweeps, 1)
	_, repaired, err := r.sweep(ctx, r.nodesSnapshot(), false)
	return repaired, err
}

// Reannounce runs a sweep restricted to addr's catalog — the warm-restart
// path. The rejoined node's listing proves which chunks its disk still
// holds (held); chunks placement assigned to it or its peers while it was
// down get copied (repaired). A node restarting from an intact data dir
// reports repaired == 0: nothing was lost, so nothing moves.
func (r *Remote) Reannounce(ctx context.Context, addr string) (heldChunks, repaired int, err error) {
	return r.sweep(ctx, []string{addr}, true)
}

// StartAntiEntropy launches a background sweep every interval and returns
// a stop function. Sweeps run one at a time; errors are counted in
// ReplicaErrors by the sweep itself and do not stop the loop.
func (r *Remote) StartAntiEntropy(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-done
			cancel()
		}()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_, _ = r.AntiEntropy(ctx)
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}
