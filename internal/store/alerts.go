package store

import (
	"bytes"
	"fmt"
	"sync"

	"lepton/internal/core"
)

// AlarmKind classifies the pages the Lepton team received in production
// (§5.7, §6.6, §6.7).
type AlarmKind int

const (
	// AlarmDecodeFailure: a stored chunk could not be decompressed — the
	// never-triggered nightmare case ("we have never been unable to decode
	// a stored file").
	AlarmDecodeFailure AlarmKind = iota
	// AlarmRequalificationFailure: a chunk that round-tripped at admission
	// later failed a re-verification (§5.7's automated search; four pages
	// in the paper's first year).
	AlarmRequalificationFailure
	// AlarmCrossCheckMismatch: streaming and buffered decoders disagreed
	// (§6.7 second alarm).
	AlarmCrossCheckMismatch
	// AlarmTimeoutExhausted: a chunk failed the §6.6 isolated-recheck
	// pipeline after repeated timeouts.
	AlarmTimeoutExhausted
)

// String labels the alarm.
func (k AlarmKind) String() string {
	switch k {
	case AlarmDecodeFailure:
		return "decode failure"
	case AlarmRequalificationFailure:
		return "requalification failure"
	case AlarmCrossCheckMismatch:
		return "cross-check mismatch"
	case AlarmTimeoutExhausted:
		return "timeout recheck exhausted"
	}
	return "unknown"
}

// Alarm is one page to the on-call engineer, with the failing data saved
// for forensics (as production did).
type Alarm struct {
	Kind   AlarmKind
	Chunk  Hash
	Detail string
	// SavedData is the compressed chunk preserved for investigation.
	SavedData []byte
}

// Pager collects alarms. Production paged a human; tests inspect the queue.
type Pager struct {
	mu     sync.Mutex
	alarms []Alarm
}

// Page files an alarm.
func (p *Pager) Page(a Alarm) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.alarms = append(p.alarms, a)
}

// Alarms returns a snapshot of filed alarms.
func (p *Pager) Alarms() []Alarm {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Alarm(nil), p.alarms...)
}

// TimeoutQueue implements §6.6: with thousands of servers, some decodes
// time out on unhealthy machines (swapping, overheating, broken). Such
// chunks are queued and re-verified on an isolated, healthy cluster with no
// timeout — three consecutive successful decodes with each decoder build
// delete the chunk from the queue; any failure pages a human.
type TimeoutQueue struct {
	mu      sync.Mutex
	pending map[Hash][]byte // compressed chunk bytes
	pager   *Pager

	Rechecks int // successful decodes required (paper: 3)
}

// NewTimeoutQueue builds a queue that pages into p.
func NewTimeoutQueue(p *Pager) *TimeoutQueue {
	return &TimeoutQueue{pending: map[Hash][]byte{}, pager: p, Rechecks: 3}
}

// ReportTimeout enqueues a chunk whose decode exceeded the serving
// timeout.
func (q *TimeoutQueue) ReportTimeout(h Hash, compressed []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.pending[h]; !ok {
		q.pending[h] = append([]byte(nil), compressed...)
	}
}

// Pending returns the number of queued chunks.
func (q *TimeoutQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Drain re-verifies every queued chunk on the "healthy cluster" (this
// process, no timeout): Rechecks consecutive decodes through the buffered
// path and the streaming path must succeed and agree. Verified chunks are
// removed; failures page. Returns (verified, failed).
func (q *TimeoutQueue) Drain() (verified, failed int) {
	q.mu.Lock()
	items := make(map[Hash][]byte, len(q.pending))
	for h, b := range q.pending {
		items[h] = b
	}
	q.mu.Unlock()

	for h, comp := range items {
		ok := true
		var first []byte
		for i := 0; i < q.Rechecks && ok; i++ {
			out, err := core.Decode(comp, 0)
			if err != nil {
				q.pager.Page(Alarm{Kind: AlarmTimeoutExhausted, Chunk: h,
					Detail: fmt.Sprintf("recheck %d: %v", i, err), SavedData: comp})
				ok = false
				break
			}
			var buf bytes.Buffer
			if err := core.DecodeTo(&buf, comp, 0); err != nil || !bytes.Equal(buf.Bytes(), out) {
				q.pager.Page(Alarm{Kind: AlarmCrossCheckMismatch, Chunk: h,
					Detail: "streaming and buffered decodes disagree", SavedData: comp})
				ok = false
				break
			}
			if i == 0 {
				first = out
			} else if !bytes.Equal(first, out) {
				q.pager.Page(Alarm{Kind: AlarmTimeoutExhausted, Chunk: h,
					Detail: "nondeterministic decode across rechecks", SavedData: comp})
				ok = false
			}
		}
		q.mu.Lock()
		delete(q.pending, h)
		q.mu.Unlock()
		if ok {
			verified++
		} else {
			failed++
		}
	}
	return verified, failed
}

// Requalify re-verifies stored chunks against their expected plaintext —
// the §5.7 automated process that "searches for images that succeeded in a
// round-trip once but then fail a subsequent round-trip test". Any failure
// pages with the data saved.
func (st *Store) Requalify(ref FileRef, want []byte, pager *Pager) int {
	failures := 0
	off := 0
	size := st.ChunkSize
	if size <= 0 {
		size = 4 << 20
	}
	for _, h := range ref.Chunks {
		end := off + size
		if end > len(want) {
			end = len(want)
		}
		comp, ok := st.GetCompressedChunk(h)
		if !ok {
			pager.Page(Alarm{Kind: AlarmDecodeFailure, Chunk: h, Detail: "chunk missing from store"})
			failures++
			off = end
			continue
		}
		out, err := core.Decode(comp, 0)
		if err != nil {
			pager.Page(Alarm{Kind: AlarmDecodeFailure, Chunk: h, Detail: err.Error(), SavedData: comp})
			failures++
		} else if !bytes.Equal(out, want[off:end]) {
			pager.Page(Alarm{Kind: AlarmRequalificationFailure, Chunk: h,
				Detail: "decode differs from original plaintext", SavedData: comp})
			failures++
		}
		off = end
	}
	return failures
}
