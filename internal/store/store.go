// Package store implements the content-addressed chunk store with the
// safety mechanisms of paper §5.7: round-trip admission control (no chunk
// is stored unless it decodes back to its exact input), a checksum over the
// compressed bytes compared before and after storage, a deflate fallback
// for inputs Lepton cannot hold, an optional "safety net" secondary store,
// and a shutoff switch checked before every encode.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"lepton/internal/chunk"
	"lepton/internal/core"
	"lepton/internal/jpeg"
)

// Hash is a chunk address.
type Hash = [sha256.Size]byte

// FileRef addresses a stored file as an ordered list of chunk hashes.
type FileRef struct {
	Chunks []Hash
	Size   int64
}

// Counters exposes operational statistics.
type Counters struct {
	Encodes           int64
	Decodes           int64
	LeptonChunks      int64
	DeflateChunks     int64
	RoundtripFailures int64
	BytesIn           int64
	BytesStored       int64
	ShutoffSkips      int64
}

// SafetyNet is a secondary store that receives every uploaded chunk in
// uncompressed form during ramp-up (§5.7); production deleted it after the
// S3 overload incident of §6.5.
type SafetyNet interface {
	Put(h Hash, raw []byte) error
	Get(h Hash) ([]byte, bool)
}

// MemSafetyNet is an in-memory SafetyNet.
type MemSafetyNet struct {
	mu sync.RWMutex
	m  map[Hash][]byte
	// FailPuts makes every Put fail, reproducing the §6.5 incident where
	// the safety net itself became the availability bottleneck.
	FailPuts atomic.Bool
}

// NewMemSafetyNet returns an empty safety net.
func NewMemSafetyNet() *MemSafetyNet { return &MemSafetyNet{m: map[Hash][]byte{}} }

// Put stores a raw chunk.
func (s *MemSafetyNet) Put(h Hash, raw []byte) error {
	if s.FailPuts.Load() {
		return errors.New("safety net: put failed (overloaded)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[h] = append([]byte(nil), raw...)
	return nil
}

// Get fetches a raw chunk.
func (s *MemSafetyNet) Get(h Hash) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[h]
	return v, ok
}

// Backend is the blob layer under a Store: where compressed chunks live
// once admitted. The default is the in-memory MemBackend; a blockserver
// that must survive restarts plugs in internal/diskstore (which implements
// this interface) instead. Implementations must be safe for concurrent
// use and idempotent on Put — keys are content hashes, so re-putting a
// present hash stores the same bytes.
type Backend interface {
	// Put stores data under h.
	Put(h Hash, data []byte) error
	// Get returns the stored bytes. A chunk that is absent — or that the
	// backend refuses to serve, e.g. because it failed an integrity check
	// — reads as ok=false; the error return is for I/O failures.
	Get(h Hash) ([]byte, bool, error)
	// Delete removes h; deleting an absent hash is a no-op.
	Delete(h Hash) error
	// Len returns the number of stored chunks.
	Len() int
	// HashesAfter returns up to max stored hashes strictly greater than
	// after in ascending byte order (max <= 0 means all) — the ranged
	// scan behind OpListChunks and anti-entropy.
	HashesAfter(after Hash, max int) []Hash
}

// StatsBackend is implemented by backends with durability counters worth
// exporting (segment counts, garbage bytes, quarantines, ...).
type StatsBackend interface {
	Backend
	BackendStats() map[string]int64
}

// MemBackend is the default in-memory Backend.
type MemBackend struct {
	mu    sync.RWMutex
	blobs map[Hash][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{blobs: map[Hash][]byte{}} }

// Put stores a copy of data under h.
func (m *MemBackend) Put(h Hash, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[h]; !ok {
		m.blobs[h] = append([]byte(nil), data...)
	}
	return nil
}

// Get returns the stored bytes for h.
func (m *MemBackend) Get(h Hash) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.blobs[h]
	return b, ok, nil
}

// Delete removes h.
func (m *MemBackend) Delete(h Hash) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, h)
	return nil
}

// Len returns the number of stored chunks.
func (m *MemBackend) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blobs)
}

// HashesAfter returns up to max hashes strictly greater than after,
// ascending.
func (m *MemBackend) HashesAfter(after Hash, max int) []Hash {
	m.mu.RLock()
	out := make([]Hash, 0, len(m.blobs))
	for h := range m.blobs {
		if bytes.Compare(h[:], after[:]) > 0 {
			out = append(out, h)
		}
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Store is a blockserver chunk store: admission control and codec policy
// in front of a pluggable blob Backend.
type Store struct {
	backend Backend

	counters Counters

	// ShutoffPath is checked before each Lepton encode; if the file exists
	// the encoder is bypassed and deflate used instead. Production used a
	// file in /dev/shm so a kill switch propagated in seconds rather than
	// the 15-45 minutes of a config deploy (§5.7, §6.5).
	ShutoffPath string

	// Net, when non-nil, receives every chunk's raw bytes on upload.
	Net SafetyNet

	// ChunkSize for splitting files; 0 means the 4-MiB default.
	ChunkSize int

	// Codec, when non-nil, supplies pooled conversion state shared across
	// puts and gets — a store embedded in a long-lived server passes the
	// server's codec here.
	Codec *core.Codec
}

// New returns an empty store over the in-memory backend.
func New() *Store { return &Store{backend: NewMemBackend()} }

// NewWithBackend returns a store over b — pass a *diskstore.Store for a
// store that survives restarts.
func NewWithBackend(b Backend) *Store { return &Store{backend: b} }

// Backend returns the store's blob backend.
func (st *Store) Backend() Backend { return st.backend }

// Len returns the number of stored chunks.
func (st *Store) Len() int { return st.backend.Len() }

// HashesAfter returns up to max stored chunk hashes strictly greater than
// after in ascending order — the scan OpListChunks serves so a restarted
// node can re-announce what its disk still holds.
func (st *Store) HashesAfter(after Hash, max int) []Hash {
	return st.backend.HashesAfter(after, max)
}

// BackendStats returns the backend's durability counters, or nil for
// backends without any (the in-memory default).
func (st *Store) BackendStats() map[string]int64 {
	if sb, ok := st.backend.(StatsBackend); ok {
		return sb.BackendStats()
	}
	return nil
}

// Close releases the backend if it holds resources (a disk-backed store's
// segment files and background loops); the in-memory backend is a no-op.
func (st *Store) Close() error {
	if c, ok := st.backend.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

func (st *Store) shutoff() bool {
	if st.ShutoffPath == "" {
		return false
	}
	_, err := os.Stat(st.ShutoffPath)
	return err == nil
}

// PutFile chunks, compresses, verifies, and admits a file. Chunks that fail
// the Lepton round trip are stored deflate-compressed instead — the upload
// never fails for codec reasons (§5.7).
func (st *Store) PutFile(data []byte) (FileRef, error) {
	return st.PutFileCtx(context.Background(), data)
}

// PutFileCtx is PutFile under a context: cancellation aborts the upload
// between chunks and inside each chunk's encode, and comes back as ctx.Err()
// rather than falling through to the deflate path the way codec rejections
// do. No FileRef is returned, but chunks admitted before the cancellation
// remain stored — the store is content-addressed, so a retried upload
// re-admits them under the same hashes.
func (st *Store) PutFileCtx(ctx context.Context, data []byte) (FileRef, error) {
	size := st.ChunkSize
	if size <= 0 {
		size = chunk.DefaultChunkSize
	}
	var comp [][]byte
	useLepton := !st.shutoff()
	if !useLepton {
		atomic.AddInt64(&st.counters.ShutoffSkips, 1)
	}
	if useLepton {
		var err error
		comp, err = chunk.CompressCtx(ctx, data, chunk.Options{ChunkSize: size, VerifyRoundtrip: true, Codec: st.Codec})
		if err != nil {
			if ctx.Err() != nil {
				return FileRef{}, ctx.Err()
			}
			if jpeg.ReasonOf(err) == jpeg.ReasonRoundtrip {
				atomic.AddInt64(&st.counters.RoundtripFailures, 1)
			}
			comp = nil // fall through to deflate
		}
	}
	if comp == nil {
		comp = rawChunksOf(data, size)
	}
	atomic.AddInt64(&st.counters.Encodes, 1)
	atomic.AddInt64(&st.counters.BytesIn, int64(len(data)))

	ref := FileRef{Size: int64(len(data))}
	for k, cb := range comp {
		if err := ctx.Err(); err != nil {
			return FileRef{}, err
		}
		// Checksum of the compressed bytes before admission; compared with
		// the stored copy to detect in-memory corruption (§5.7's md5sum).
		sum := sha256.Sum256(cb)
		// Admission: the chunk must decode to exactly its input slice.
		o0 := k * size
		o1 := o0 + size
		if o1 > len(data) {
			o1 = len(data)
		}
		back, err := st.Codec.DecodeCtx(ctx, cb, 0)
		if err != nil || !bytes.Equal(back, data[o0:o1]) {
			if ctx.Err() != nil {
				return FileRef{}, ctx.Err()
			}
			return FileRef{}, fmt.Errorf("store: chunk %d failed admission round trip: %v", k, err)
		}
		if err := st.backend.Put(sum, cb); err != nil {
			return FileRef{}, fmt.Errorf("store: chunk %d: %w", k, err)
		}
		stored, ok, err := st.backend.Get(sum)
		if err != nil || !ok {
			return FileRef{}, fmt.Errorf("store: chunk %d unreadable after store (ok=%v): %v", k, ok, err)
		}
		if got := sha256.Sum256(stored); got != sum {
			return FileRef{}, fmt.Errorf("store: chunk %d checksum changed after store", k)
		}
		if core.IsLepton(cb) && !isRawMode(cb) {
			atomic.AddInt64(&st.counters.LeptonChunks, 1)
		} else {
			atomic.AddInt64(&st.counters.DeflateChunks, 1)
		}
		atomic.AddInt64(&st.counters.BytesStored, int64(len(cb)))
		if st.Net != nil {
			if err := st.Net.Put(sum, data[o0:o1]); err != nil {
				// §6.5: a failing safety net degrades uploads; surface it.
				return FileRef{}, fmt.Errorf("store: safety net: %w", err)
			}
		}
		ref.Chunks = append(ref.Chunks, sum)
	}
	return ref, nil
}

func isRawMode(cb []byte) bool {
	return len(cb) >= 4 && cb[3] == core.ModeRaw
}

func rawChunksOf(data []byte, size int) [][]byte {
	n := (len(data) + size - 1) / size
	if n == 0 {
		n = 1
	}
	out := make([][]byte, 0, n)
	for k := 0; k < n; k++ {
		o0 := k * size
		o1 := o0 + size
		if o1 > len(data) {
			o1 = len(data)
		}
		c := &core.Container{Mode: core.ModeRaw, Raw: data[o0:o1], OutputSize: uint32(o1 - o0)}
		b, err := c.Marshal()
		if err != nil {
			panic("store: raw container marshal cannot fail: " + err.Error())
		}
		out = append(out, b)
	}
	return out
}

// PutCompressedChunk admits an already-compressed chunk, as uploaded by a
// client running the codec locally (the paper's §7 future work: moving
// compression to clients saves the 23% in network bandwidth too). The chunk
// must prove decodable before admission; the caller is expected to have
// verified the plaintext round trip on its side.
func (st *Store) PutCompressedChunk(cb []byte) (Hash, error) {
	return st.PutCompressedChunkCtx(context.Background(), cb)
}

// PutCompressedChunkCtx is PutCompressedChunk under a context; the
// proof-of-decodability decode aborts on cancellation.
func (st *Store) PutCompressedChunkCtx(ctx context.Context, cb []byte) (Hash, error) {
	if !core.IsLepton(cb) {
		return Hash{}, errors.New("store: not a Lepton container")
	}
	if _, err := st.Codec.DecodeCtx(ctx, cb, 0); err != nil {
		if ctx.Err() != nil {
			return Hash{}, ctx.Err()
		}
		return Hash{}, fmt.Errorf("store: chunk not decodable: %w", err)
	}
	sum := sha256.Sum256(cb)
	if err := st.backend.Put(sum, cb); err != nil {
		return Hash{}, fmt.Errorf("store: %w", err)
	}
	atomic.AddInt64(&st.counters.LeptonChunks, 1)
	atomic.AddInt64(&st.counters.BytesStored, int64(len(cb)))
	return sum, nil
}

// GetChunk decompresses one stored chunk.
func (st *Store) GetChunk(h Hash) ([]byte, error) {
	return st.GetChunkCtx(context.Background(), h)
}

// GetChunkCtx is GetChunk under a context; the decode aborts mid-segment on
// cancellation.
func (st *Store) GetChunkCtx(ctx context.Context, h Hash) ([]byte, error) {
	cb, ok, err := st.backend.Get(h)
	if err != nil {
		return nil, fmt.Errorf("store: chunk %x: %w", h[:8], err)
	}
	if !ok {
		return nil, fmt.Errorf("store: unknown chunk %x", h[:8])
	}
	atomic.AddInt64(&st.counters.Decodes, 1)
	return st.Codec.DecodeCtx(ctx, cb, 0)
}

// GetCompressedChunk returns the stored (compressed) bytes. A backend
// read failure reads as a miss: the fleet layer treats a miss as a
// repairable hole, which is exactly what an unreadable replica is.
func (st *Store) GetCompressedChunk(h Hash) ([]byte, bool) {
	cb, ok, err := st.backend.Get(h)
	if err != nil {
		return nil, false
	}
	return cb, ok
}

// GetFile reassembles a file from its reference.
func (st *Store) GetFile(ref FileRef) ([]byte, error) {
	return st.GetFileCtx(context.Background(), ref)
}

// GetFileCtx is GetFile under a context, checked chunk by chunk.
func (st *Store) GetFileCtx(ctx context.Context, ref FileRef) ([]byte, error) {
	out := make([]byte, 0, ref.Size)
	for _, h := range ref.Chunks {
		b, err := st.GetChunkCtx(ctx, h)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	if int64(len(out)) != ref.Size {
		return nil, fmt.Errorf("store: reassembled %d bytes, want %d", len(out), ref.Size)
	}
	return out, nil
}

// GetChunkRangeCtx decodes only bytes [off, off+n) of one stored chunk's
// reconstruction, clamped at the chunk's size — for an indexed container,
// only the arithmetic segments the range touches.
func (st *Store) GetChunkRangeCtx(ctx context.Context, h Hash, off, n int64) ([]byte, error) {
	cb, ok, err := st.backend.Get(h)
	if err != nil {
		return nil, fmt.Errorf("store: chunk %x: %w", h[:8], err)
	}
	if !ok {
		return nil, fmt.Errorf("store: unknown chunk %x", h[:8])
	}
	atomic.AddInt64(&st.counters.Decodes, 1)
	return st.Codec.DecodeRangeCtx(ctx, cb, off, n, 0)
}

// GetFileRangeCtx reads bytes [off, off+n) of a stored file, clamped at
// its size, decoding only the chunks (and within each chunk only the
// segments) the range overlaps. The store's ChunkSize must match the one
// the file was stored under; see Remote.GetFileRange.
func (st *Store) GetFileRangeCtx(ctx context.Context, ref FileRef, off, n int64) ([]byte, error) {
	size := int64(st.ChunkSize)
	if size <= 0 {
		size = chunk.DefaultChunkSize
	}
	return getFileRange(ctx, ref, off, n, size, st.GetChunkRangeCtx)
}

// RecoverFromSafetyNet restores a chunk's raw bytes from the safety net —
// the disaster-recovery path the team drilled but never needed (§5.7).
func (st *Store) RecoverFromSafetyNet(h Hash) ([]byte, error) {
	if st.Net == nil {
		return nil, errors.New("store: no safety net configured")
	}
	raw, ok := st.Net.Get(h)
	if !ok {
		return nil, errors.New("store: chunk not in safety net")
	}
	return raw, nil
}

// Counters returns a snapshot of operational statistics.
func (st *Store) Counters() Counters {
	return Counters{
		Encodes:           atomic.LoadInt64(&st.counters.Encodes),
		Decodes:           atomic.LoadInt64(&st.counters.Decodes),
		LeptonChunks:      atomic.LoadInt64(&st.counters.LeptonChunks),
		DeflateChunks:     atomic.LoadInt64(&st.counters.DeflateChunks),
		RoundtripFailures: atomic.LoadInt64(&st.counters.RoundtripFailures),
		BytesIn:           atomic.LoadInt64(&st.counters.BytesIn),
		BytesStored:       atomic.LoadInt64(&st.counters.BytesStored),
		ShutoffSkips:      atomic.LoadInt64(&st.counters.ShutoffSkips),
	}
}
