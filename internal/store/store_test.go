package store_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lepton/internal/imagegen"
	"lepton/internal/store"
)

func gen(t testing.TB, seed int64, w, h int) []byte {
	t.Helper()
	data, err := imagegen.Generate(seed, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPutGetFile(t *testing.T) {
	st := store.New()
	st.ChunkSize = 8 << 10
	data := gen(t, 1, 512, 384)
	ref, err := st.PutFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Chunks) != (len(data)+8<<10-1)/(8<<10) {
		t.Fatalf("%d chunks for %d bytes", len(ref.Chunks), len(data))
	}
	back, err := st.GetFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("file mismatch")
	}
	c := st.Counters()
	if c.LeptonChunks == 0 {
		t.Fatal("no chunks used Lepton")
	}
	if c.BytesStored >= c.BytesIn {
		t.Fatalf("no storage savings: %d >= %d", c.BytesStored, c.BytesIn)
	}
}

func TestNonJPEGFallsBackToDeflate(t *testing.T) {
	st := store.New()
	st.ChunkSize = 16 << 10
	data := make([]byte, 40<<10)
	rand.New(rand.NewSource(2)).Read(data)
	ref, err := st.PutFile(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := st.GetFile(ref)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("fallback roundtrip failed: %v", err)
	}
	c := st.Counters()
	if c.DeflateChunks == 0 {
		t.Fatal("expected deflate chunks")
	}
	if c.LeptonChunks != 0 {
		t.Fatal("random bytes must not take the Lepton path")
	}
}

func TestShutoffSwitch(t *testing.T) {
	st := store.New()
	st.ChunkSize = 64 << 10
	shutoff := filepath.Join(t.TempDir(), "lepton-shutoff")
	st.ShutoffPath = shutoff
	data := gen(t, 3, 256, 256)

	// No shutoff file: Lepton used.
	if _, err := st.PutFile(data); err != nil {
		t.Fatal(err)
	}
	if st.Counters().LeptonChunks == 0 {
		t.Fatal("expected Lepton before shutoff")
	}
	// Drop the shutoff file: encodes must bypass Lepton within one call
	// (production: 30 seconds fleet-wide, §5.7).
	if err := os.WriteFile(shutoff, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	before := st.Counters().LeptonChunks
	ref, err := st.PutFile(data)
	if err != nil {
		t.Fatal(err)
	}
	c := st.Counters()
	if c.LeptonChunks != before {
		t.Fatal("Lepton used despite shutoff")
	}
	if c.ShutoffSkips == 0 {
		t.Fatal("shutoff skip not counted")
	}
	// Data must still be retrievable.
	back, err := st.GetFile(ref)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatal("post-shutoff file corrupted")
	}
}

func TestSafetyNetReceivesUploads(t *testing.T) {
	st := store.New()
	st.ChunkSize = 32 << 10
	net := store.NewMemSafetyNet()
	st.Net = net
	data := gen(t, 4, 300, 200)
	ref, err := st.PutFile(data)
	if err != nil {
		t.Fatal(err)
	}
	// DRT drill (§5.7): recover every chunk from the safety net alone.
	var rebuilt []byte
	for _, h := range ref.Chunks {
		raw, err := st.RecoverFromSafetyNet(h)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt = append(rebuilt, raw...)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Fatal("safety net recovery mismatch")
	}
}

func TestSafetyNetOutageDegradesUploads(t *testing.T) {
	// §6.5: when the safety net's writes fail, uploads fail — the
	// belt-and-suspenders mechanism caused the only user-visible incident.
	st := store.New()
	net := store.NewMemSafetyNet()
	net.FailPuts.Store(true)
	st.Net = net
	if _, err := st.PutFile(gen(t, 5, 64, 64)); err == nil {
		t.Fatal("expected upload failure during safety net outage")
	}
	// Removing the safety net restores availability.
	st.Net = nil
	if _, err := st.PutFile(gen(t, 5, 64, 64)); err != nil {
		t.Fatal(err)
	}
}

func TestQualify(t *testing.T) {
	var corpus [][]byte
	for seed := int64(10); seed < 18; seed++ {
		corpus = append(corpus, gen(t, seed, 96, 96))
	}
	corpus = append(corpus,
		imagegen.MakeProgressive(corpus[0]),
		imagegen.CMYKStub(),
		imagegen.NotImage(1, 2048),
	)
	q := store.Qualify(corpus)
	if q.Total != 11 {
		t.Fatalf("total = %d", q.Total)
	}
	if q.ByReason[0] != 8 { // ReasonNone
		t.Fatalf("successes = %d, want 8: %s", q.ByReason[0], q)
	}
	if q.CrossCheckFailures != 0 {
		t.Fatalf("cross-check failures: %s", q)
	}
	if q.SuccessRatio() < 0.7 {
		t.Fatalf("success ratio %.2f", q.SuccessRatio())
	}
	if q.BytesOut >= q.BytesIn {
		t.Fatal("qualification saw no savings")
	}
}

func TestGetUnknownChunk(t *testing.T) {
	st := store.New()
	if _, err := st.GetChunk(store.Hash{1, 2, 3}); err == nil {
		t.Fatal("expected error for unknown chunk")
	}
}
