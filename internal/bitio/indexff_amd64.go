//go:build amd64 && !noasm

package bitio

import "lepton/internal/cpufeat"

var useAVX2 = cpufeat.X86.HasAVX2

// indexFF returns the index of the first 0xFF byte in b, or len(b) when
// none occurs. On AVX2 hosts the 32-bytes-per-compare kernel in
// indexff_amd64.s does the scan.
func indexFF(b []byte) int {
	if useAVX2 {
		return indexFFAVX2(b)
	}
	return indexFFGo(b)
}

// Implemented in indexff_amd64.s.
//
//go:noescape
func indexFFAVX2(b []byte) int
