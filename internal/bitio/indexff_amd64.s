//go:build amd64 && !noasm

#include "textflag.h"

// func indexFFAVX2(b []byte) int
//
// Scans 32 bytes per iteration with VPCMPEQB against an all-ones vector
// (0xFF in every lane) and a movemask; the scalar tail handles the final
// sub-vector bytes. Returns len(b) when no 0xFF occurs.
TEXT ·indexFFAVX2(SB), NOSPLIT, $0-32
	MOVQ b_base+0(FP), SI
	MOVQ b_len+8(FP), CX
	MOVQ $0, AX               // current index
	VPCMPEQB Y1, Y1, Y1       // all ones: a vector of 0xFF bytes

loop32:
	LEAQ 32(AX), DX
	CMPQ DX, CX
	JGT tail
	VMOVDQU (SI)(AX*1), Y0
	VPCMPEQB Y1, Y0, Y0
	VPMOVMSKB Y0, BX
	TESTL BX, BX
	JNE found
	MOVQ DX, AX
	JMP loop32

found:
	BSFL BX, BX               // BX is nonzero here, so BSF is defined
	ADDQ BX, AX
	MOVQ AX, ret+24(FP)
	VZEROUPPER
	RET

tail:
	CMPQ AX, CX
	JGE none
	MOVBLZX (SI)(AX*1), BX
	CMPL BX, $0xFF
	JEQ hit
	INCQ AX
	JMP tail
hit:
	MOVQ AX, ret+24(FP)
	VZEROUPPER
	RET

none:
	MOVQ CX, ret+24(FP)
	VZEROUPPER
	RET
