package bitio

import (
	"bytes"
	"testing"
)

func naiveIndexFF(b []byte) int {
	for i, c := range b {
		if c == 0xFF {
			return i
		}
	}
	return len(b)
}

func TestIndexFF(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0xFF},
		{0x00},
		bytes.Repeat([]byte{0xAB}, 31),
		bytes.Repeat([]byte{0xAB}, 32),
		bytes.Repeat([]byte{0xAB}, 33),
		append(bytes.Repeat([]byte{0x00}, 31), 0xFF),
		append(bytes.Repeat([]byte{0x00}, 32), 0xFF),
		append(bytes.Repeat([]byte{0x00}, 33), 0xFF),
		append(bytes.Repeat([]byte{0x00}, 100), 0xFF, 0xFF),
	}
	for i := 0; i < 200; i++ {
		b := make([]byte, i)
		for j := range b {
			b[j] = byte(j * 7)
		}
		cases = append(cases, b)
		if i > 0 {
			c := append([]byte(nil), b...)
			c[i*13%len(c)] = 0xFF
			cases = append(cases, c)
		}
	}
	for i, c := range cases {
		if got, want := indexFF(c), naiveIndexFF(c); got != want {
			t.Fatalf("case %d (len %d): indexFF=%d want %d", i, len(c), got, want)
		}
		if got, want := indexFFGo(c), naiveIndexFF(c); got != want {
			t.Fatalf("case %d (len %d): indexFFGo=%d want %d", i, len(c), got, want)
		}
	}
}

// TestAppendRawLimit pins the SetLimit clipping semantics of the bulk
// AppendRaw: exactly the bytes that fit are kept, and Clipped flips only
// when something was dropped.
func TestAppendRawLimit(t *testing.T) {
	w := NewRawWriter()
	w.SetLimit(4)
	w.AppendRaw([]byte{1, 2})
	if w.Clipped() {
		t.Fatal("clipped before limit reached")
	}
	w.AppendRaw([]byte{3, 4})
	if w.Clipped() {
		t.Fatal("exact fill must not clip")
	}
	w.AppendRaw([]byte{5})
	if !w.Clipped() {
		t.Fatal("overflow must clip")
	}
	if got := w.Bytes(); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("bytes = %v", got)
	}

	w2 := NewRawWriter()
	w2.SetLimit(3)
	w2.AppendRaw([]byte{1, 2, 3, 4, 5})
	if !w2.Clipped() || !bytes.Equal(w2.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("partial keep: clipped=%v bytes=%v", w2.Clipped(), w2.Bytes())
	}
}

// FuzzKernelParity cross-checks the bulk 0xFF scan against a byte loop and
// the watermarked PeekBits reader against the bit-by-bit path on arbitrary
// (stuffed, marker-laden, truncated) streams.
func FuzzKernelParity(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0xFF, 0x00, 0x56, 0xFF, 0xD9})
	f.Add(bytes.Repeat([]byte{0xFF, 0x00}, 40))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if got, want := indexFF(data), naiveIndexFF(data); got != want {
			t.Fatalf("indexFF=%d want %d", got, want)
		}
		// Drive two readers over the same stream: one through the batched
		// PeekBits/ReadBits fast path, one strictly bit-by-bit. Every read
		// and error must agree.
		fast := NewReader(data)
		slow := NewReader(data)
		for step := 0; ; step++ {
			n := uint8(1 + step*7%24)
			fv, ferr := fast.ReadBits(n)
			var sv uint32
			var serr error
			for i := uint8(0); i < n; i++ {
				var b uint8
				b, serr = slow.ReadBit()
				if serr != nil {
					break
				}
				sv = sv<<1 | uint32(b)
			}
			if (ferr != nil) != (serr != nil) {
				t.Fatalf("step %d: fast err=%v slow err=%v", step, ferr, serr)
			}
			if ferr != nil {
				if ferr != serr {
					t.Fatalf("step %d: fast err=%v slow err=%v", step, ferr, serr)
				}
				break
			}
			if fv != sv {
				t.Fatalf("step %d: fast=%#x slow=%#x (n=%d)", step, fv, sv, n)
			}
		}
	})
}
