//go:build !amd64 || noasm

package bitio

// indexFF returns the index of the first 0xFF byte in b, or len(b) when
// none occurs.
func indexFF(b []byte) int { return indexFFGo(b) }
