package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter()
	vals := []struct {
		v uint32
		n uint8
	}{
		{0x5, 3}, {0xFF, 8}, {0x0, 1}, {0x1FF, 9}, {0xABCDE, 20}, {1, 1},
	}
	for _, x := range vals {
		w.WriteBits(x.v, x.n)
	}
	w.AlignPad(1)
	r := NewReader(w.Bytes())
	for _, x := range vals {
		got, err := r.ReadBits(x.n)
		if err != nil {
			t.Fatalf("ReadBits: %v", err)
		}
		if got != x.v {
			t.Fatalf("roundtrip got %#x want %#x (n=%d)", got, x.v, x.n)
		}
	}
}

func TestByteStuffing(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFF, 8)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0x12, 8)
	got := w.Bytes()
	want := []byte{0xFF, 0x00, 0xFF, 0x00, 0x12}
	if !bytes.Equal(got, want) {
		t.Fatalf("stuffing: got % x want % x", got, want)
	}
	// Reader must remove the stuffing transparently.
	r := NewReader(got)
	for _, want := range []uint32{0xFF, 0xFF, 0x12} {
		v, err := r.ReadBits(8)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if v != want {
			t.Fatalf("unstuff got %#x want %#x", v, want)
		}
	}
}

func TestRawWriterNoStuffing(t *testing.T) {
	w := NewRawWriter()
	w.WriteBits(0xFF, 8)
	if !bytes.Equal(w.Bytes(), []byte{0xFF}) {
		t.Fatalf("raw writer stuffed: % x", w.Bytes())
	}
}

func TestMarkerDetection(t *testing.T) {
	// Data byte, then RST0 marker, then more data.
	data := []byte{0xAB, 0xFF, 0xD0, 0xCD}
	r := NewReader(data)
	if v, _ := r.ReadBits(8); v != 0xAB {
		t.Fatalf("got %#x", v)
	}
	if _, err := r.ReadBit(); err != ErrMarker {
		t.Fatalf("expected ErrMarker, got %v", err)
	}
	at, m := r.AtMarker()
	if !at || m != 0xD0 {
		t.Fatalf("marker = %v %#x", at, m)
	}
	code, err := r.SkipMarker()
	if err != nil || code != 0xD0 {
		t.Fatalf("SkipMarker = %#x, %v", code, err)
	}
	if v, _ := r.ReadBits(8); v != 0xCD {
		t.Fatalf("after marker got %#x", v)
	}
}

func TestTruncation(t *testing.T) {
	r := NewReader([]byte{0x80})
	if _, err := r.ReadBits(9); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestSeedHandover(t *testing.T) {
	// Write 13 bits in one writer; replay the last bits in a writer seeded
	// with the first writer's partial state and verify byte continuity.
	w1 := NewWriter()
	w1.WriteBits(0x1ABC>>3, 10) // first 10 bits
	partial, nbits := w1.Partial()
	if nbits != 2 {
		t.Fatalf("nbits = %d", nbits)
	}
	w2 := NewWriter()
	w2.Seed(partial, nbits)
	w2.WriteBits(0x1ABC&0x7, 3)
	w2.AlignPad(0)

	ref := NewWriter()
	ref.WriteBits(0x1ABC, 13)
	ref.AlignPad(0)
	full := append(append([]byte{}, w1.Bytes()...), w2.Bytes()...)
	if !bytes.Equal(full, ref.Bytes()) {
		t.Fatalf("handover: got % x want % x", full, ref.Bytes())
	}
}

func TestAlignPadAndPartial(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	p, n := w.Partial()
	if n != 3 || p != 0b10100000 {
		t.Fatalf("partial = %#08b n=%d", p, n)
	}
	w.AlignPad(1)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0b10111111 {
		t.Fatalf("padded = % x", got)
	}
}

func TestAlignSkipPad(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b11, 2)
	w.AlignPad(1)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(2); err != nil {
		t.Fatal(err)
	}
	pad, n, err := r.AlignSkipPad()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("pad len = %d", n)
	}
	for _, b := range pad[:n] {
		if b != 1 {
			t.Fatalf("pad bit = %d", b)
		}
	}
}

func TestSetLimitClipping(t *testing.T) {
	w := NewWriter()
	w.SetLimit(2)
	for i := 0; i < 5; i++ {
		w.WriteBits(uint32(i), 8)
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
	if !w.Clipped() {
		t.Fatal("expected clipped")
	}
}

func TestQuickWriteReadInverse(t *testing.T) {
	f := func(words []uint16, seed int64) bool {
		if len(words) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		w := NewWriter()
		var lens []uint8
		for _, v := range words {
			n := uint8(rng.Intn(16) + 1)
			lens = append(lens, n)
			w.WriteBits(uint32(v)&(1<<n-1), n)
		}
		w.AlignPad(1)
		r := NewReader(w.Bytes())
		for i, v := range words {
			got, err := r.ReadBits(lens[i])
			if err != nil {
				return false
			}
			if got != uint32(v)&(1<<lens[i]-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderPosTracking(t *testing.T) {
	// Positions must be raw-stream positions including stuffing bytes.
	w := NewWriter()
	w.WriteBits(0xFF, 8) // emits FF 00
	w.WriteBits(0xA, 4)
	w.AlignPad(0)
	raw := w.Bytes()
	r := NewReader(raw)
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	byteOff, bitOff := r.Pos()
	if byteOff != 2 || bitOff != 0 {
		t.Fatalf("pos after stuffed byte = (%d,%d), want (2,0)", byteOff, bitOff)
	}
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	byteOff, bitOff = r.Pos()
	if byteOff != 2 || bitOff != 3 {
		t.Fatalf("pos = (%d,%d), want (2,3)", byteOff, bitOff)
	}
	if pb := r.PartialByte(); pb != raw[2]&0xE0 {
		t.Fatalf("partial byte = %#x", pb)
	}
}
