package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter()
	vals := []struct {
		v uint32
		n uint8
	}{
		{0x5, 3}, {0xFF, 8}, {0x0, 1}, {0x1FF, 9}, {0xABCDE, 20}, {1, 1},
	}
	for _, x := range vals {
		w.WriteBits(x.v, x.n)
	}
	w.AlignPad(1)
	r := NewReader(w.Bytes())
	for _, x := range vals {
		got, err := r.ReadBits(x.n)
		if err != nil {
			t.Fatalf("ReadBits: %v", err)
		}
		if got != x.v {
			t.Fatalf("roundtrip got %#x want %#x (n=%d)", got, x.v, x.n)
		}
	}
}

func TestByteStuffing(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFF, 8)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0x12, 8)
	got := w.Bytes()
	want := []byte{0xFF, 0x00, 0xFF, 0x00, 0x12}
	if !bytes.Equal(got, want) {
		t.Fatalf("stuffing: got % x want % x", got, want)
	}
	// Reader must remove the stuffing transparently.
	r := NewReader(got)
	for _, want := range []uint32{0xFF, 0xFF, 0x12} {
		v, err := r.ReadBits(8)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if v != want {
			t.Fatalf("unstuff got %#x want %#x", v, want)
		}
	}
}

func TestRawWriterNoStuffing(t *testing.T) {
	w := NewRawWriter()
	w.WriteBits(0xFF, 8)
	if !bytes.Equal(w.Bytes(), []byte{0xFF}) {
		t.Fatalf("raw writer stuffed: % x", w.Bytes())
	}
}

func TestMarkerDetection(t *testing.T) {
	// Data byte, then RST0 marker, then more data.
	data := []byte{0xAB, 0xFF, 0xD0, 0xCD}
	r := NewReader(data)
	if v, _ := r.ReadBits(8); v != 0xAB {
		t.Fatalf("got %#x", v)
	}
	if _, err := r.ReadBit(); err != ErrMarker {
		t.Fatalf("expected ErrMarker, got %v", err)
	}
	at, m := r.AtMarker()
	if !at || m != 0xD0 {
		t.Fatalf("marker = %v %#x", at, m)
	}
	code, err := r.SkipMarker()
	if err != nil || code != 0xD0 {
		t.Fatalf("SkipMarker = %#x, %v", code, err)
	}
	if v, _ := r.ReadBits(8); v != 0xCD {
		t.Fatalf("after marker got %#x", v)
	}
}

func TestTruncation(t *testing.T) {
	r := NewReader([]byte{0x80})
	if _, err := r.ReadBits(9); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestSeedHandover(t *testing.T) {
	// Write 13 bits in one writer; replay the last bits in a writer seeded
	// with the first writer's partial state and verify byte continuity.
	w1 := NewWriter()
	w1.WriteBits(0x1ABC>>3, 10) // first 10 bits
	partial, nbits := w1.Partial()
	if nbits != 2 {
		t.Fatalf("nbits = %d", nbits)
	}
	w2 := NewWriter()
	w2.Seed(partial, nbits)
	w2.WriteBits(0x1ABC&0x7, 3)
	w2.AlignPad(0)

	ref := NewWriter()
	ref.WriteBits(0x1ABC, 13)
	ref.AlignPad(0)
	full := append(append([]byte{}, w1.Bytes()...), w2.Bytes()...)
	if !bytes.Equal(full, ref.Bytes()) {
		t.Fatalf("handover: got % x want % x", full, ref.Bytes())
	}
}

func TestAlignPadAndPartial(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	p, n := w.Partial()
	if n != 3 || p != 0b10100000 {
		t.Fatalf("partial = %#08b n=%d", p, n)
	}
	w.AlignPad(1)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0b10111111 {
		t.Fatalf("padded = % x", got)
	}
}

func TestAlignSkipPad(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b11, 2)
	w.AlignPad(1)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(2); err != nil {
		t.Fatal(err)
	}
	pad, n, err := r.AlignSkipPad()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("pad len = %d", n)
	}
	for _, b := range pad[:n] {
		if b != 1 {
			t.Fatalf("pad bit = %d", b)
		}
	}
}

func TestSetLimitClipping(t *testing.T) {
	w := NewWriter()
	w.SetLimit(2)
	for i := 0; i < 5; i++ {
		w.WriteBits(uint32(i), 8)
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
	if !w.Clipped() {
		t.Fatal("expected clipped")
	}
}

func TestQuickWriteReadInverse(t *testing.T) {
	f := func(words []uint16, seed int64) bool {
		if len(words) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		w := NewWriter()
		var lens []uint8
		for _, v := range words {
			n := uint8(rng.Intn(16) + 1)
			lens = append(lens, n)
			w.WriteBits(uint32(v)&(1<<n-1), n)
		}
		w.AlignPad(1)
		r := NewReader(w.Bytes())
		for i, v := range words {
			got, err := r.ReadBits(lens[i])
			if err != nil {
				return false
			}
			if got != uint32(v)&(1<<lens[i]-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderPosTracking(t *testing.T) {
	// Positions must be raw-stream positions including stuffing bytes.
	w := NewWriter()
	w.WriteBits(0xFF, 8) // emits FF 00
	w.WriteBits(0xA, 4)
	w.AlignPad(0)
	raw := w.Bytes()
	r := NewReader(raw)
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	byteOff, bitOff := r.Pos()
	if byteOff != 2 || bitOff != 0 {
		t.Fatalf("pos after stuffed byte = (%d,%d), want (2,0)", byteOff, bitOff)
	}
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	byteOff, bitOff = r.Pos()
	if byteOff != 2 || bitOff != 3 {
		t.Fatalf("pos = (%d,%d), want (2,3)", byteOff, bitOff)
	}
	if pb := r.PartialByte(); pb != raw[2]&0xE0 {
		t.Fatalf("partial byte = %#x", pb)
	}
}

// TestWriteBitsMatchesBitLoop drives batched WriteBits and a per-bit
// reference writer with identical random sequences (including unmasked high
// garbage in v) and requires byte-identical output in both stuffing modes.
func TestWriteBitsMatchesBitLoop(t *testing.T) {
	for _, stuff := range []bool{true, false} {
		rng := rand.New(rand.NewSource(21))
		var batched, reference *Writer
		if stuff {
			batched, reference = NewWriter(), NewWriter()
		} else {
			batched, reference = NewRawWriter(), NewRawWriter()
		}
		for i := 0; i < 20000; i++ {
			v := rng.Uint32()
			n := uint8(rng.Intn(25))
			batched.WriteBits(v, n)
			for j := int(n) - 1; j >= 0; j-- {
				reference.WriteBit(uint8(v>>uint(j)) & 1)
			}
		}
		batched.AlignPad(1)
		reference.AlignPad(1)
		if !bytes.Equal(batched.Bytes(), reference.Bytes()) {
			t.Fatalf("stuff=%v: batched WriteBits diverged from bit-by-bit reference", stuff)
		}
	}
}

// TestPeekBitsMatchesReadBit checks the no-0xFF fast path against the exact
// reader on streams dense with 0xFF bytes (stuffing) and partial-byte
// offsets: every successful peek must return exactly the bits ReadBit
// produces, and SkipBits must leave the reader in the identical position.
func TestPeekBitsMatchesReadBit(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	w := NewWriter()
	for i := 0; i < 4000; i++ {
		// Bias toward 0xFF-heavy output so stuffing shows up often.
		if rng.Intn(3) == 0 {
			w.WriteBits(0xFF, 8)
		} else {
			w.WriteBits(rng.Uint32(), uint8(rng.Intn(17)))
		}
	}
	w.AlignPad(1)
	data := w.Bytes()

	fast := NewReader(data)
	slow := NewReader(data)
	for {
		n := uint8(rng.Intn(24) + 1)
		v, ok := fast.PeekBits(n)
		var want uint32
		var err error
		for i := uint8(0); i < n; i++ {
			var b uint8
			b, err = slow.ReadBit()
			if err != nil {
				break
			}
			want = want<<1 | uint32(b)
		}
		if err != nil {
			if ok {
				t.Fatalf("peek succeeded where exact read failed: %v", err)
			}
			break
		}
		if ok {
			if v != want {
				t.Fatalf("PeekBits(%d) = %#x, exact read = %#x", n, v, want)
			}
			fast.SkipBits(n)
		} else {
			// Fast path declined (0xFF in window or near end): consume via
			// the exact path to stay in lockstep.
			for i := uint8(0); i < n; i++ {
				if _, err := fast.ReadBit(); err != nil {
					t.Fatalf("exact fallback read: %v", err)
				}
			}
		}
		fp, fb := fast.Pos()
		sp, sb := slow.Pos()
		if fp != sp || fb != sb {
			t.Fatalf("position diverged: fast %d.%d slow %d.%d", fp, fb, sp, sb)
		}
	}
}

// TestPeekBitsRefusesMarker ensures the fast path never reads through a
// marker: a peek whose window touches the 0xFF of a marker must decline.
func TestPeekBitsRefusesMarker(t *testing.T) {
	data := []byte{0x12, 0x34, 0xFF, 0xD0, 0x56, 0x78, 0x9A, 0xBC}
	r := NewReader(data)
	if _, ok := r.PeekBits(16); ok {
		t.Fatal("peek through a marker byte must decline")
	}
	// After consuming the leading data and skipping the marker the fast path
	// applies again.
	if _, err := r.ReadBits(16); err != nil {
		t.Fatalf("pre-marker data: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrMarker {
		t.Fatalf("expected marker, got %v", err)
	}
	if _, err := r.SkipMarker(); err != nil {
		t.Fatal(err)
	}
	v, ok := r.PeekBits(24)
	if !ok || v != 0x56789A {
		t.Fatalf("post-marker peek = %#x ok=%v, want 0x56789a", v, ok)
	}
}
