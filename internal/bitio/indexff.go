package bitio

import "bytes"

// indexFFGo is the portable bulk 0xFF scan: the index of the first 0xFF
// byte in b, or len(b) when none occurs. The Reader's watermark wants the
// "none" case as len(b), not -1, so the stdlib result is normalized.
func indexFFGo(b []byte) int {
	if i := bytes.IndexByte(b, 0xFF); i >= 0 {
		return i
	}
	return len(b)
}
