// Package bitio provides MSB-first bit readers and writers for JPEG entropy
// streams, including the byte-stuffing rule (a 0x00 byte follows every data
// byte equal to 0xFF), restart-marker alignment, and the partial-byte state
// needed to seed a writer from a Lepton "Huffman handover word".
//
// Reading and writing are batched on the hot path: PeekBits serves up to 24
// bits from a single word load whenever the lookahead window contains no
// 0xFF byte (so no stuffing or marker logic applies), SkipBits consumes a
// peeked span with one add, and WriteBits emits whole bytes instead of
// looping per bit. The bit-by-bit paths remain the single source of truth
// for every 0xFF-adjacent case.
package bitio

import (
	"errors"
	"io"
)

// ErrMarker is returned by Reader when the entropy stream is interrupted by a
// marker (0xFF followed by a non-zero, non-stuffing byte).
var ErrMarker = errors.New("bitio: marker encountered in entropy stream")

// ErrTruncated is returned when the input ends in the middle of the entropy
// stream.
var ErrTruncated = errors.New("bitio: truncated entropy stream")

// Writer writes bits MSB-first, inserting a 0x00 stuffing byte after every
// emitted 0xFF data byte when stuffing is enabled. The zero value is a Writer
// that appends to an internal buffer with stuffing enabled.
type Writer struct {
	buf     []byte
	cur     uint8 // partially filled byte
	nbits   uint8 // number of bits already in cur (0..7)
	stuff   bool
	limit   int  // maximum output length in bytes; 0 means unlimited
	clipped bool // output exceeded limit and was discarded
}

// NewWriter returns a Writer with JPEG byte stuffing enabled.
func NewWriter() *Writer { return &Writer{stuff: true} }

// NewRawWriter returns a Writer with byte stuffing disabled.
func NewRawWriter() *Writer { return &Writer{} }

// Reset clears the writer for reuse, keeping the output buffer's capacity
// and the stuffing mode.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nbits = 0, 0
	w.limit = 0
	w.clipped = false
}

// Seed initializes the writer's partial-byte state from a Huffman handover
// word: the first nbits bits of partial (counted from the MSB) have already
// been decided by the previous segment. Seed must be called before any bits
// are written.
func (w *Writer) Seed(partial uint8, nbits uint8) {
	w.cur = partial & (^uint8(0) << (8 - nbits) & 0xFF)
	if nbits == 0 {
		w.cur = 0
	}
	w.nbits = nbits
}

// SetLimit caps the number of whole bytes the writer will retain. Bytes past
// the limit are counted but discarded; Clipped reports whether that happened.
// A JPEG chunk writer uses this to stop at a 4-MiB boundary while the final
// block's bits spill into the next chunk.
func (w *Writer) SetLimit(n int) { w.limit = n }

// Clipped reports whether any output bytes were discarded due to SetLimit.
func (w *Writer) Clipped() bool { return w.clipped }

func (w *Writer) emit(b byte) {
	if w.limit > 0 && len(w.buf) >= w.limit {
		w.clipped = true
		return
	}
	w.buf = append(w.buf, b)
	if w.stuff && b == 0xFF {
		if w.limit > 0 && len(w.buf) >= w.limit {
			w.clipped = true
			return
		}
		w.buf = append(w.buf, 0x00)
	}
}

// WriteBit writes a single bit.
func (w *Writer) WriteBit(bit uint8) {
	w.cur |= (bit & 1) << (7 - w.nbits)
	w.nbits++
	if w.nbits == 8 {
		w.emit(w.cur)
		w.cur, w.nbits = 0, 0
	}
}

// WriteBits writes the low n bits of v, most significant first. n may be 0.
// Bits are gathered into whole bytes before emission, so an n-bit write
// costs at most ⌈(n+7)/8⌉ emit calls instead of n single-bit steps.
func (w *Writer) WriteBits(v uint32, n uint8) {
	if n == 0 {
		return
	}
	if n < 32 {
		v &= 1<<n - 1
	}
	for {
		free := 8 - w.nbits
		if n < free {
			w.cur |= uint8(v << (free - n))
			w.nbits += n
			return
		}
		w.emit(w.cur | uint8(v>>(n-free)))
		w.cur, w.nbits = 0, 0
		n -= free
		if n == 0 {
			return
		}
	}
}

// AlignPad pads the current byte to a boundary using the given pad bit
// (0 or 1), as a JPEG encoder does before a restart marker or EOI.
func (w *Writer) AlignPad(padBit uint8) {
	for w.nbits != 0 {
		w.WriteBit(padBit)
	}
}

// WriteMarker emits a two-byte marker (0xFF, code) without stuffing. The
// writer must be byte-aligned.
func (w *Writer) WriteMarker(code byte) {
	if w.nbits != 0 {
		panic("bitio: WriteMarker on unaligned writer")
	}
	if w.limit > 0 && len(w.buf)+2 > w.limit {
		// Emit what fits.
		if len(w.buf) < w.limit {
			w.buf = append(w.buf, 0xFF)
		}
		w.clipped = true
		return
	}
	w.buf = append(w.buf, 0xFF, code)
}

// AppendRaw appends bytes verbatim (no stuffing). The writer must be
// byte-aligned; used to reproduce arbitrary prepend/append data recorded in
// a Lepton container.
func (w *Writer) AppendRaw(b []byte) {
	if w.nbits != 0 {
		panic("bitio: AppendRaw on unaligned writer")
	}
	if w.limit > 0 && len(w.buf)+len(b) > w.limit {
		// Keep exactly the bytes that fit, as the per-byte loop did.
		if n := w.limit - len(w.buf); n > 0 {
			w.buf = append(w.buf, b[:n]...)
		}
		w.clipped = true
		return
	}
	w.buf = append(w.buf, b...)
}

// Bytes returns the completed output bytes. The partial byte, if any, is not
// included; use Partial to retrieve it.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of completed output bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Partial returns the current partial byte and the number of bits in it.
func (w *Writer) Partial() (partial uint8, nbits uint8) { return w.cur, w.nbits }

// Aligned reports whether the writer is at a byte boundary.
func (w *Writer) Aligned() bool { return w.nbits == 0 }

// Reader reads bits MSB-first from a JPEG entropy stream, transparently
// removing 0x00 stuffing bytes after 0xFF. When it encounters a marker it
// stops and returns ErrMarker from the next read.
type Reader struct {
	data []byte
	pos  int   // index of the byte containing the next unread bit
	bit  uint8 // next bit within data[pos] (0 = MSB)
	// ffAt is the 0xFF watermark: the index of the next 0xFF byte at or
	// after pos, or len(data) when none remains. It turns PeekBits'
	// four-byte window scan into a single compare (pos+4 <= ffAt means the
	// window is clean). A value below pos is stale — pos moved past it —
	// and refill rescans from pos with the bulk indexFF kernel; each
	// rescan ends where the next one starts, so the total scan work stays
	// O(len(data)) across the whole stream.
	ffAt int
	// marker handling
	atMarker bool
	marker   byte
}

// NewReader returns a Reader over the entropy-coded segment in data.
func NewReader(data []byte) *Reader { return &Reader{data: data, ffAt: -1} }

// Pos returns the raw-stream position of the next unread bit: the byte index
// (including stuffing bytes) and the bit offset within that byte. This is the
// position recorded in Huffman handover words.
func (r *Reader) Pos() (byteOff int, bitOff uint8) { return r.pos, r.bit }

// PartialByte returns the bits of the current byte that have already been
// consumed, left-aligned, with the remaining bits zeroed. Together with Pos
// this is the handover partial byte.
func (r *Reader) PartialByte() uint8 {
	if r.bit == 0 || r.pos >= len(r.data) {
		return 0
	}
	return r.data[r.pos] & (^uint8(0) << (8 - r.bit))
}

// ReadBit reads one bit. It returns ErrMarker if a marker interrupts the
// stream and ErrTruncated at end of input. A 0xFF data byte is always
// followed by a 0x00 stuffing byte; a 0xFF followed by anything else is a
// marker and none of its bits are consumed as data.
func (r *Reader) ReadBit() (uint8, error) {
	if r.atMarker {
		return 0, ErrMarker
	}
	if r.pos >= len(r.data) {
		return 0, ErrTruncated
	}
	if r.bit == 0 && r.data[r.pos] == 0xFF {
		// Starting a new byte: distinguish stuffed data from a marker.
		if r.pos+1 >= len(r.data) {
			return 0, ErrTruncated
		}
		if r.data[r.pos+1] != 0x00 {
			r.atMarker = true
			r.marker = r.data[r.pos+1]
			return 0, ErrMarker
		}
	}
	b := r.data[r.pos]
	bit := (b >> (7 - r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
		if b == 0xFF {
			r.pos++ // skip the 0x00 stuffing byte verified above
		}
	}
	return bit, nil
}

// PeekBits returns the next n (0..24) bits of the entropy stream MSB-first
// without consuming them. ok is false whenever the fast path cannot serve
// the request exactly — at a pending marker, near the end of input, or when
// any byte of the 4-byte lookahead window is 0xFF (stuffing or marker
// handling would apply) — and the caller must fall back to the bit-by-bit
// path, which is the single source of truth for those cases. After a
// successful peek, SkipBits(m) is valid for any m <= n.
func (r *Reader) PeekBits(n uint8) (v uint32, ok bool) {
	if r.pos+4 > r.ffAt {
		if !r.refill() {
			return 0, false
		}
	}
	d := r.data[r.pos : r.pos+4 : r.pos+4]
	w := uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3])
	return w << r.bit >> (32 - n), true
}

// refill is PeekBits' slow path: it re-establishes the 0xFF watermark when
// the reader has moved past it and reports whether the four-byte window at
// pos is clean. ffAt <= len(data) always holds, so a true return also
// guarantees the window is in bounds.
func (r *Reader) refill() bool {
	if r.atMarker || r.pos+4 > len(r.data) {
		return false
	}
	if r.ffAt < r.pos {
		r.ffAt = r.pos + indexFF(r.data[r.pos:])
	}
	return r.pos+4 <= r.ffAt
}

// SkipBits consumes n bits previously returned by a successful PeekBits.
// It must only follow a successful PeekBits(m) with n <= m: the single-add
// advance relies on the peeked span containing no 0xFF bytes.
func (r *Reader) SkipBits(n uint8) {
	t := r.bit + n
	r.pos += int(t >> 3)
	r.bit = t & 7
}

// ReadBits reads n bits MSB-first. n must be <= 32.
func (r *Reader) ReadBits(n uint8) (uint32, error) {
	if n <= 24 {
		if v, ok := r.PeekBits(n); ok {
			r.SkipBits(n)
			return v, nil
		}
	}
	var v uint32
	for i := uint8(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// AtMarker reports whether the reader has stopped at a marker, and returns
// the marker code (the byte following 0xFF).
func (r *Reader) AtMarker() (bool, byte) { return r.atMarker, r.marker }

// AlignSkipPad consumes pad bits up to the next byte boundary and returns
// them by value: bits[:n] holds the (at most 7) pad bits observed. JPEG
// encoders pad with all-zero or all-one bits; the caller inspects the
// returned bits to detect the pad bit in use. The by-value return keeps
// this allocation-free — it runs once per restart marker, which dominated
// the decode loop's allocation count when it returned a heap slice.
func (r *Reader) AlignSkipPad() (bits [7]uint8, n int, err error) {
	for r.bit != 0 {
		b, err := r.ReadBit()
		if err != nil {
			return bits, n, err
		}
		bits[n] = b
		n++
	}
	return bits, n, nil
}

// SkipMarker consumes the pending marker (0xFF plus code byte), allowing the
// entropy stream to continue (used for restart markers). It returns the
// marker code.
func (r *Reader) SkipMarker() (byte, error) {
	if !r.atMarker {
		return 0, errors.New("bitio: SkipMarker with no pending marker")
	}
	if r.pos+1 >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	code := r.data[r.pos+1]
	r.pos += 2
	r.bit = 0
	r.atMarker = false
	r.marker = 0
	return code, nil
}

// Remaining returns the unread suffix of the underlying data, beginning at
// the current byte. When stopped at a marker the suffix starts at the
// marker's 0xFF byte.
func (r *Reader) Remaining() []byte { return r.data[r.pos:] }
