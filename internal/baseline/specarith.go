package baseline

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"io"

	"lepton/internal/arith"
	"lepton/internal/core"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

// SpecArith re-codes the scan with the small JPEG-spec-style arithmetic
// model (~300 bins) — the "MozJPEG (arithmetic)" comparator. Unlike the real
// MozJPEG it is file-preserving, since this repository's infrastructure
// makes that easy; compression-wise it behaves like the paper's diamond:
// clearly better than generic codecs, clearly worse than Lepton.
type SpecArith struct{}

func (SpecArith) Name() string         { return "specarith" }
func (SpecArith) FilePreserving() bool { return true }

var specMagic = []byte{0x5A, 0x41} // "ZA"

func (SpecArith) Compress(data []byte) ([]byte, error) {
	f, err := jpeg.Parse(data, core.DefaultMemEncodeBudget)
	if err != nil {
		return nil, err
	}
	if err := guardPlanes(f); err != nil {
		return nil, err
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		return nil, err
	}
	m := model.NewSpecArith()
	e := arith.NewEncoder()
	m.Encode(e, planes(f, s))
	stream := e.Flush()

	var head bytes.Buffer
	put := func(b []byte) {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(b)))
		head.Write(l[:])
		head.Write(b)
	}
	put(f.Header)
	put(f.Trailer)
	put(s.Tail)
	head.WriteByte(s.PadBit)
	var rc [4]byte
	binary.LittleEndian.PutUint32(rc[:], uint32(s.RSTCount))
	head.Write(rc[:])

	var z bytes.Buffer
	zw := zlib.NewWriter(&z)
	if _, err := zw.Write(head.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}

	var out bytes.Buffer
	out.Write(specMagic)
	var zl [4]byte
	binary.LittleEndian.PutUint32(zl[:], uint32(z.Len()))
	out.Write(zl[:])
	out.Write(z.Bytes())
	out.Write(stream)
	return out.Bytes(), nil
}

func (SpecArith) Decompress(comp []byte) ([]byte, error) {
	if len(comp) < 6 || !bytes.Equal(comp[:2], specMagic) {
		return nil, errors.New("specarith: bad magic")
	}
	zlen := binary.LittleEndian.Uint32(comp[2:])
	if 6+int(zlen) > len(comp) {
		return nil, errors.New("specarith: truncated")
	}
	zr, err := zlib.NewReader(bytes.NewReader(comp[6 : 6+zlen]))
	if err != nil {
		return nil, err
	}
	head, err := io.ReadAll(io.LimitReader(zr, 64<<20))
	if err != nil {
		return nil, err
	}
	get := func() ([]byte, error) {
		if len(head) < 4 {
			return nil, errors.New("specarith: short header")
		}
		n := binary.LittleEndian.Uint32(head)
		head = head[4:]
		if int(n) > len(head) {
			return nil, errors.New("specarith: short header")
		}
		v := head[:n]
		head = head[n:]
		return v, nil
	}
	hdr, err := get()
	if err != nil {
		return nil, err
	}
	trailer, err := get()
	if err != nil {
		return nil, err
	}
	tail, err := get()
	if err != nil {
		return nil, err
	}
	if len(head) < 5 {
		return nil, errors.New("specarith: short header")
	}
	padBit := head[0]
	rstCount := binary.LittleEndian.Uint32(head[1:])

	f, err := jpeg.ParseHeader(hdr)
	if err != nil {
		return nil, err
	}
	if err := guardPlanes(f); err != nil {
		return nil, err
	}
	coeff := make([][]int16, len(f.Components))
	for i := range f.Components {
		c := &f.Components[i]
		coeff[i] = make([]int16, c.BlocksWide*c.BlocksHigh*64)
	}
	m := model.NewSpecArith()
	d := arith.NewDecoder(comp[6+zlen:])
	if err := m.Decode(d, planesRaw(f, coeff)); err != nil {
		return nil, err
	}
	s := &jpeg.Scan{File: f, Coeff: coeff, PadBit: padBit, RSTCount: int(rstCount), Tail: tail}
	scan, err := jpeg.EncodeScan(s)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), hdr...)
	out = append(out, scan...)
	return append(out, trailer...), nil
}

func planes(f *jpeg.File, s *jpeg.Scan) []model.ComponentPlane {
	return planesRaw(f, s.Coeff)
}

func planesRaw(f *jpeg.File, coeff [][]int16) []model.ComponentPlane {
	var out []model.ComponentPlane
	for i := range f.Components {
		c := &f.Components[i]
		out = append(out, model.Plane(c.BlocksWide, c.BlocksHigh, &f.Quant[c.TQ], coeff[i]))
	}
	return out
}
