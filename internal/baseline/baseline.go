// Package baseline implements the comparator codecs of the paper's
// evaluation (§2, §4, Figures 1-3): generic entropy codecs (Deflate at
// several levels, an order-1 adaptive range coder standing in for the
// LZMA/Brotli/Zstandard class), format-aware pixel-exact tools (a
// JPEGrescan-style Huffman optimizer, a JPEG-spec-style arithmetic coder),
// and the PackJPG-style configuration of the Lepton engine itself. See
// DESIGN.md for the substitution notes.
package baseline

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lepton/internal/arith"
	"lepton/internal/core"
	"lepton/internal/model"
)

// Codec is the interface the benchmark harness drives.
type Codec interface {
	// Name is the label used in figures.
	Name() string
	// Compress returns the compressed representation.
	Compress(data []byte) ([]byte, error)
	// Decompress inverts Compress. For non-file-preserving codecs it
	// returns the re-encoded (pixel-exact) file instead.
	Decompress(comp []byte) ([]byte, error)
	// FilePreserving reports whether Decompress restores the exact
	// original bytes (paper §2's taxonomy).
	FilePreserving() bool
}

// --- Generic codecs -------------------------------------------------------

// Flate wraps compress/flate at a given level (Deflate in the paper).
type Flate struct{ Level int }

func (f Flate) Name() string         { return fmt.Sprintf("deflate-%d", f.Level) }
func (f Flate) FilePreserving() bool { return true }

func (f Flate) Compress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, f.Level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (f Flate) Decompress(comp []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(comp))
	defer r.Close()
	return io.ReadAll(r)
}

// RC1 is an order-1 adaptive binary range coder over raw bytes: each byte is
// tree-coded in a context selected by the previous byte (65,536 adaptive
// bins). It is this repository's stand-in for the heavyweight generic
// entropy coders (LZMA et al.): slow, adaptive, and — like them — nearly
// useless on already-compressed JPEG scans (§2, §4.1).
type RC1 struct{}

func (RC1) Name() string         { return "rc-o1" }
func (RC1) FilePreserving() bool { return true }

// rc1Bins is the full context table. 256 contexts x 256 tree nodes.
type rc1Bins [256][256]arith.Bin

func (RC1) Compress(data []byte) ([]byte, error) {
	bins := &rc1Bins{}
	e := arith.NewEncoder()
	prev := byte(0)
	for _, b := range data {
		node := 1
		for i := 7; i >= 0; i-- {
			bit := int(b>>uint(i)) & 1
			e.Encode(&bins[prev][node], bit)
			node = node<<1 | bit
		}
		prev = b
	}
	stream := e.Flush()
	out := make([]byte, 4+len(stream))
	binary.LittleEndian.PutUint32(out, uint32(len(data)))
	copy(out[4:], stream)
	return out, nil
}

func (RC1) Decompress(comp []byte) ([]byte, error) {
	if len(comp) < 4 {
		return nil, errors.New("rc1: short input")
	}
	n := binary.LittleEndian.Uint32(comp)
	if n > 1<<30 {
		return nil, errors.New("rc1: absurd length")
	}
	bins := &rc1Bins{}
	d := arith.NewDecoder(comp[4:])
	out := make([]byte, n)
	prev := byte(0)
	for j := range out {
		node := 1
		for i := 0; i < 8; i++ {
			bit := d.Decode(&bins[prev][node])
			node = node<<1 | bit
		}
		out[j] = byte(node & 0xFF)
		prev = out[j]
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return out, nil
}

// --- Lepton-engine configurations -----------------------------------------

// Lepton is the deployed configuration: automatic thread segments, full
// model.
type Lepton struct{}

func (Lepton) Name() string         { return "lepton" }
func (Lepton) FilePreserving() bool { return true }

func (Lepton) Compress(data []byte) ([]byte, error) {
	res, err := core.Encode(data, core.EncodeOptions{})
	if err != nil {
		return nil, err
	}
	return res.Compressed, nil
}

func (Lepton) Decompress(comp []byte) ([]byte, error) { return core.Decode(comp, 0) }

// Lepton1Way is the single-threaded maximum-compression configuration of
// §4.1: statistic bins tallied across the whole image.
type Lepton1Way struct{}

func (Lepton1Way) Name() string         { return "lepton-1way" }
func (Lepton1Way) FilePreserving() bool { return true }

func (Lepton1Way) Compress(data []byte) ([]byte, error) {
	res, err := core.Encode(data, core.EncodeOptions{SingleModel: true})
	if err != nil {
		return nil, err
	}
	return res.Compressed, nil
}

func (Lepton1Way) Decompress(comp []byte) ([]byte, error) { return core.Decode(comp, 0) }

// PackJPGStyle models the 2007 PackJPG algorithm inside this engine: single
// global model (no parallel segments), uniform AC treatment, previous-DC
// prediction. Decode is single-threaded and the whole file must be buffered
// before any byte is output, which is exactly why the paper built Lepton
// instead (§2).
type PackJPGStyle struct{}

func (PackJPGStyle) Name() string         { return "packjpg-style" }
func (PackJPGStyle) FilePreserving() bool { return true }

func (PackJPGStyle) Compress(data []byte) ([]byte, error) {
	res, err := core.Encode(data, core.EncodeOptions{
		SingleModel: true,
		Flags:       &model.Flags{EdgePrediction: false, DCGradient: false},
	})
	if err != nil {
		return nil, err
	}
	return res.Compressed, nil
}

func (PackJPGStyle) Decompress(comp []byte) ([]byte, error) {
	// Whole-buffer decode; no streaming.
	var buf bytes.Buffer
	if err := core.DecodeTo(&buf, comp, 0); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LeptonPooled is the blockserver-service configuration introduced by the
// streaming/pooled codec pipeline: one long-lived core.Codec whose pools
// carry model tables, coefficient planes, and scratch across conversions.
// Output is byte-identical to Lepton; only steady-state allocation differs.
type LeptonPooled struct{}

// pooledCodec is shared by every LeptonPooled value, mirroring a process-
// wide service codec.
var pooledCodec = core.NewCodec()

func (LeptonPooled) Name() string         { return "lepton-pooled" }
func (LeptonPooled) FilePreserving() bool { return true }

func (LeptonPooled) Compress(data []byte) ([]byte, error) {
	res, err := pooledCodec.Encode(data, core.EncodeOptions{})
	if err != nil {
		return nil, err
	}
	return res.Compressed, nil
}

func (LeptonPooled) Decompress(comp []byte) ([]byte, error) {
	return pooledCodec.Decode(comp, 0)
}
