package baseline

import (
	"errors"
	"fmt"

	"lepton/internal/core"
	"lepton/internal/dct"
	"lepton/internal/huffman"
	"lepton/internal/jpeg"
)

// guardPlanes rejects geometries whose full coefficient planes would not
// fit the encode-side memory budget. The streaming core codec never
// materializes whole planes (§5.1), so jpeg.Parse's admission control only
// bounds a sliding row window — but the bench-only comparators in this
// package do materialize planes (Rescan's frequency tally and SpecArith's
// model both walk them in full), so a crafted max-dimension header
// (65504×65504 ≈ 25 GB of planes) must be rejected up front with the same
// typed reason production admission control uses (§6.2).
func guardPlanes(f *jpeg.File) error {
	var total int64
	for i := range f.Components {
		c := &f.Components[i]
		total += int64(c.BlocksWide) * int64(c.BlocksHigh) * 64 * 2
	}
	if total > core.DefaultMemEncodeBudget {
		return &jpeg.Error{Reason: jpeg.ReasonMemDecode,
			Detail: fmt.Sprintf("coefficient planes need %d bytes > %d budget", total, int64(core.DefaultMemEncodeBudget))}
	}
	return nil
}

// Rescan is the JPEGrescan/MozJPEG-style comparator: it re-optimizes the
// Huffman tables for the actual symbol statistics of the scan and rewrites
// the file as a smaller but still baseline JPEG. It is pixel-exact but not
// file-preserving (§2: "format-aware pixel-exact recompression") — the
// original entropy coding cannot be recovered, so Decompress re-decodes the
// optimized file to prove it is a valid JPEG of the same coefficients.
//
// The progressive-reordering half of JPEGrescan is out of scope; see
// DESIGN.md substitutions.
type Rescan struct{}

func (Rescan) Name() string         { return "jpegrescan-style" }
func (Rescan) FilePreserving() bool { return false }

func (Rescan) Compress(data []byte) ([]byte, error) {
	f, err := jpeg.Parse(data, core.DefaultMemEncodeBudget)
	if err != nil {
		return nil, err
	}
	if err := guardPlanes(f); err != nil {
		return nil, err
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		return nil, err
	}
	// Tally symbol frequencies per table.
	var dcFreq, acFreq [4][256]int64
	for ci := range f.Components {
		c := &f.Components[ci]
		blocks := c.BlocksWide * c.BlocksHigh
		var prevDC int16
		for b := 0; b < blocks; b++ {
			blk := s.Coeff[ci][b*64 : b*64+64]
			diff := int32(blk[0]) - int32(prevDC)
			prevDC = blk[0]
			dcFreq[c.TD][category(diff)]++
			run := 0
			for k := 1; k < 64; k++ {
				v := int32(blk[dct.Zigzag[k]])
				if v == 0 {
					run++
					continue
				}
				for run >= 16 {
					acFreq[c.TA][0xF0]++
					run -= 16
				}
				acFreq[c.TA][byte(run<<4)|category(v)]++
				run = 0
			}
			if run > 0 {
				acFreq[c.TA][0x00]++
			}
		}
	}
	// Build optimal tables for every table id in use.
	opt := *f // shallow copy; swap table pointers
	for i := 0; i < 4; i++ {
		if f.DC[i] != nil && hasAny(&dcFreq[i]) {
			spec, err := huffman.BuildOptimal(&dcFreq[i])
			if err != nil {
				return nil, err
			}
			opt.DC[i] = spec
		}
		if f.AC[i] != nil && hasAny(&acFreq[i]) {
			spec, err := huffman.BuildOptimal(&acFreq[i])
			if err != nil {
				return nil, err
			}
			opt.AC[i] = spec
		}
	}
	newHeader, err := rewriteDHT(f.Header, &opt)
	if err != nil {
		return nil, err
	}
	s2 := &jpeg.Scan{File: &opt, Coeff: s.Coeff, PadBit: s.PadBit, RSTCount: s.RSTCount, Tail: s.Tail}
	scan, err := jpeg.EncodeScan(s2)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), newHeader...)
	out = append(out, scan...)
	return append(out, f.Trailer...), nil
}

// Decompress parses and re-emits the optimized JPEG (the file itself is the
// deliverable; this measures the serving-side decode cost).
func (Rescan) Decompress(comp []byte) ([]byte, error) {
	f, err := jpeg.Parse(comp, core.DefaultMemEncodeBudget)
	if err != nil {
		return nil, err
	}
	if err := guardPlanes(f); err != nil {
		return nil, err
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		return nil, err
	}
	scan, err := jpeg.EncodeScan(s)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), f.Header...)
	out = append(out, scan...)
	return append(out, f.Trailer...), nil
}

func hasAny(freq *[256]int64) bool {
	n := 0
	for _, v := range freq {
		if v > 0 {
			n++
		}
	}
	return n >= 2 // BuildOptimal needs at least two symbols
}

func category(v int32) uint8 {
	if v < 0 {
		v = -v
	}
	var s uint8
	for v != 0 {
		v >>= 1
		s++
	}
	return s
}

// rewriteDHT replaces every DHT segment in a JPEG header with segments
// carrying the optimized tables (all tables emitted in one position,
// before SOS).
func rewriteDHT(header []byte, f *jpeg.File) ([]byte, error) {
	if len(header) < 2 || header[0] != 0xFF || header[1] != 0xD8 {
		return nil, errors.New("rescan: bad header")
	}
	out := []byte{0xFF, 0xD8}
	pos := 2
	for pos < len(header) {
		if header[pos] != 0xFF {
			return nil, errors.New("rescan: garbage in header")
		}
		for pos < len(header) && header[pos] == 0xFF {
			pos++
		}
		if pos >= len(header) {
			break
		}
		marker := header[pos]
		pos++
		if marker == 0xD8 || marker == 0x01 {
			continue
		}
		if pos+2 > len(header) {
			return nil, errors.New("rescan: truncated header segment")
		}
		l := int(header[pos])<<8 | int(header[pos+1])
		if pos+l > len(header) {
			return nil, errors.New("rescan: segment overrun")
		}
		switch marker {
		case 0xC4: // drop original DHT
		case 0xDA: // SOS: emit optimized DHTs, then the SOS segment
			wdc, wac := [4]bool{}, [4]bool{}
			for _, c := range f.Components {
				if !wdc[c.TD] {
					wdc[c.TD] = true
					out = appendDHT(out, 0, c.TD, f.DC[c.TD])
				}
				if !wac[c.TA] {
					wac[c.TA] = true
					out = appendDHT(out, 1, c.TA, f.AC[c.TA])
				}
			}
			out = append(out, 0xFF, marker)
			out = append(out, header[pos:pos+l]...)
		default:
			out = append(out, 0xFF, marker)
			out = append(out, header[pos:pos+l]...)
		}
		pos += l
	}
	return out, nil
}

func appendDHT(dst []byte, tc, th byte, spec *huffman.Spec) []byte {
	payload := []byte{tc<<4 | th}
	payload = append(payload, spec.Counts[:]...)
	payload = append(payload, spec.Symbols...)
	l := len(payload) + 2
	dst = append(dst, 0xFF, 0xC4, byte(l>>8), byte(l))
	return append(dst, payload...)
}
