package baseline_test

import (
	"bytes"
	"testing"

	"lepton/internal/baseline"
	"lepton/internal/core"
	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

func gen(t testing.TB, seed int64, w, h int) []byte {
	t.Helper()
	data, err := imagegen.Generate(seed, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFilePreservingCodecsRoundTrip(t *testing.T) {
	data := gen(t, 1, 256, 192)
	codecs := []baseline.Codec{
		baseline.Flate{Level: 1},
		baseline.Flate{Level: 6},
		baseline.Flate{Level: 9},
		baseline.RC1{},
		baseline.Lepton{},
		baseline.Lepton1Way{},
		baseline.PackJPGStyle{},
		baseline.SpecArith{},
	}
	for _, c := range codecs {
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatalf("%s: compress: %v", c.Name(), err)
		}
		back, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("%s: decompress: %v", c.Name(), err)
		}
		if !c.FilePreserving() {
			continue
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("%s: round trip mismatch", c.Name())
		}
		t.Logf("%-14s %6d -> %6d (%.1f%% savings)", c.Name(), len(data), len(comp),
			100*(1-float64(len(comp))/float64(len(data))))
	}
}

func TestCompressionOrdering(t *testing.T) {
	// The paper's Figure 2 ordering: generic codecs ~1%, specarith in
	// between, Lepton best-in-class; PackJPG-style close to Lepton.
	data := gen(t, 2, 512, 384)
	size := func(c baseline.Codec) int {
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		return len(comp)
	}
	flate := size(baseline.Flate{Level: 9})
	rc1 := size(baseline.RC1{})
	spec := size(baseline.SpecArith{})
	lep := size(baseline.Lepton{})
	lep1 := size(baseline.Lepton1Way{})

	// Generic codecs achieve almost nothing on JPEG (<5% here; ~1% in the
	// paper on real photos).
	if float64(flate) < 0.90*float64(len(data)) {
		t.Errorf("deflate suspiciously good on JPEG: %d of %d", flate, len(data))
	}
	if float64(rc1) < 0.85*float64(len(data)) {
		t.Errorf("rc-o1 suspiciously good on JPEG: %d of %d", rc1, len(data))
	}
	// The JPEG-aware codecs must beat the generic ones decisively.
	if spec >= flate {
		t.Errorf("specarith (%d) not better than deflate (%d)", spec, flate)
	}
	// Lepton must beat the small-model coder.
	if lep >= spec {
		t.Errorf("lepton (%d) not better than specarith (%d)", lep, spec)
	}
	// 1-way is at least as good as the multithreaded split.
	if lep1 > lep+lep/100 {
		t.Errorf("lepton-1way (%d) worse than lepton (%d)", lep1, lep)
	}
	t.Logf("deflate=%d rc1=%d spec=%d lepton=%d lepton1=%d orig=%d",
		flate, rc1, spec, lep, lep1, len(data))
}

func TestRescanShrinksAndStaysValid(t *testing.T) {
	data := gen(t, 3, 320, 240)
	c := baseline.Rescan{}
	comp, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(data) {
		t.Fatalf("rescan did not shrink: %d >= %d", len(comp), len(data))
	}
	// The output must be a valid baseline JPEG with identical coefficients.
	f1, err := jpeg.Parse(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := jpeg.DecodeScan(f1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := jpeg.Parse(comp, 0)
	if err != nil {
		t.Fatalf("rescan output unparseable: %v", err)
	}
	s2, err := jpeg.DecodeScan(f2)
	if err != nil {
		t.Fatalf("rescan output undecodable: %v", err)
	}
	for ci := range s1.Coeff {
		if !bytes.Equal(int16Bytes(s1.Coeff[ci]), int16Bytes(s2.Coeff[ci])) {
			t.Fatalf("component %d coefficients differ after rescan", ci)
		}
	}
	// Decompress must reproduce the optimized file.
	back, err := c.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, comp) {
		t.Fatal("rescan decompress mismatch")
	}
	t.Logf("rescan: %d -> %d (%.1f%%)", len(data), len(comp),
		100*(1-float64(len(comp))/float64(len(data))))
}

func TestRescanLeptonCompatible(t *testing.T) {
	// A rescanned file is still a baseline JPEG; Lepton must handle it.
	data := gen(t, 4, 200, 150)
	comp, err := baseline.Rescan{}.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(comp, core.EncodeOptions{VerifyRoundtrip: true})
	if err != nil {
		t.Fatalf("lepton on rescanned file: %v", err)
	}
	if len(res.Compressed) >= len(comp) {
		t.Fatalf("no savings on rescanned file")
	}
}

func TestGenericCodecsOnText(t *testing.T) {
	// Sanity: on redundant data the generic codecs must do well, proving
	// their poor JPEG showing is about the data, not the implementation.
	data := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog\n"), 500)
	for _, c := range []baseline.Codec{baseline.Flate{Level: 6}, baseline.RC1{}} {
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(comp) > len(data)/3 {
			t.Errorf("%s only reached %d of %d on text", c.Name(), len(comp), len(data))
		}
		back, err := c.Decompress(comp)
		if err != nil || !bytes.Equal(back, data) {
			t.Errorf("%s text roundtrip failed: %v", c.Name(), err)
		}
	}
}

func int16Bytes(v []int16) []byte {
	out := make([]byte, 2*len(v))
	for i, x := range v {
		out[2*i] = byte(uint16(x))
		out[2*i+1] = byte(uint16(x) >> 8)
	}
	return out
}
