package baseline_test

import (
	"testing"

	"lepton/internal/baseline"
	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

// TestOversizeRejected: the plane-materializing comparators must reject a
// structurally valid max-dimension JPEG (whose full coefficient planes
// would be ~25 GB) with the typed memory reason instead of attempting the
// allocation. Regression test for the guard the streaming core codec's
// row-window admission control does not cover.
func TestOversizeRejected(t *testing.T) {
	stub := imagegen.OversizeStub(42)
	for _, c := range []baseline.Codec{baseline.Rescan{}, baseline.SpecArith{}} {
		_, err := c.Compress(stub)
		if err == nil {
			t.Fatalf("%s: compress of oversize stub succeeded", c.Name())
		}
		if r := jpeg.ReasonOf(err); r != jpeg.ReasonMemDecode {
			t.Errorf("%s: reason = %v, want ReasonMemDecode (err: %v)", c.Name(), r, err)
		}
	}
	// Rescan's decompress path parses attacker-shaped JPEG bytes too.
	if _, err := (baseline.Rescan{}).Decompress(stub); jpeg.ReasonOf(err) != jpeg.ReasonMemDecode {
		t.Errorf("rescan decompress: reason = %v, want ReasonMemDecode", jpeg.ReasonOf(err))
	}
}
