package admin_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lepton/internal/admin"
	"lepton/internal/imagegen"
	"lepton/internal/server"
	"lepton/internal/store"
)

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestAdminEndpoints(t *testing.T) {
	s := admin.New()
	s.Register("alpha", func() map[string]int64 { return map[string]int64{"a": 1, "b": 2} })
	s.Register("beta", func() map[string]int64 { return map[string]int64{"x": -7} })
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + addr

	for _, path := range []string{"/api/stats", "/debug/vars"} {
		var all map[string]map[string]int64
		getJSON(t, base+path, &all)
		if all["alpha"]["b"] != 2 || all["beta"]["x"] != -7 {
			t.Fatalf("%s: unexpected payload %v", path, all)
		}
	}
	var one map[string]int64
	getJSON(t, base+"/api/stats/alpha", &one)
	if one["a"] != 1 {
		t.Fatalf("single-source payload: %v", one)
	}
	resp, err := http.Get(base + "/api/stats/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown source: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(page, []byte("alpha")) {
		t.Fatalf("status page: %d, contains-alpha=%v", resp.StatusCode, bytes.Contains(page, []byte("alpha")))
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// TestShutdownReleasesPort is the regression test for the blockserverd
// debug-server lifecycle bug: before the fix the debug listener had no
// shutdown at all, so its port stayed bound through (and past) the drain
// window. The admin server must release the port by the time Shutdown
// returns.
func TestShutdownReleasesPort(t *testing.T) {
	s := admin.New()
	s.Register("x", func() map[string]int64 { return map[string]int64{"n": 1} })
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err != nil {
		t.Fatalf("pre-shutdown scrape: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The exact port must be immediately rebindable.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port %s not released after Shutdown: %v", addr, err)
	}
	ln.Close()
	// Shutdown on a never-started (or already-stopped) server is a no-op.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if err := admin.New().Shutdown(ctx); err != nil {
		t.Fatalf("shutdown of never-started server: %v", err)
	}
}

// TestSlowlorisHeaderTimeout pins the ReadHeaderTimeout fix: a connection
// that trickles half a request line must be closed by the server, not hold
// a worker forever the way the old http.ListenAndServe default did.
func TestSlowlorisHeaderTimeout(t *testing.T) {
	s := admin.New()
	s.ReadHeaderTimeout = 150 * time.Millisecond
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /api/st")); err != nil {
		t.Fatal(err)
	}
	// The hardened server must terminate the connection on its own (an
	// error response and/or a close). The old behavior — holding the
	// half-open connection indefinitely — shows up as our read deadline
	// expiring instead.
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(conn)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server held the half-open connection past ReadHeaderTimeout")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("connection only terminated after %v", elapsed)
	}
	if len(got) > 0 && bytes.Contains(got, []byte("200 OK")) {
		t.Fatalf("server answered a half-sent request: %q", got)
	}
}

// TestConcurrentScrapeUnderFleetTraffic is the bugfix-hunt pass over the
// scrape path, run under -race in CI: every counter the admin plane
// exposes (Fleet.StatsSnapshot with the health loop evicting a killed
// node, FleetStore counters, per-node Blockserver.StatsSnapshot including
// shard and store stats) is scraped concurrently with live conversion and
// store traffic plus a node kill and restart. Any counter read outside
// its atomics/owning lock shows up as a race report.
func TestConcurrentScrapeUnderFleetTraffic(t *testing.T) {
	const n = 3
	stores := make([]*store.Store, n)
	nodes := make([]*server.Blockserver, n)
	addrs := make([]string, n)
	for i := range nodes {
		stores[i] = store.New()
		nodes[i] = &server.Blockserver{Store: stores[i]}
		addr, err := server.ListenAndServe("tcp:127.0.0.1:0", nodes[i])
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}
	fleet, err := server.NewFleet(addrs, &server.FleetOptions{
		HealthInterval: 20 * time.Millisecond,
		HedgeAfter:     50 * time.Millisecond,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	remote, err := store.NewRemote(fleet, 2)
	if err != nil {
		t.Fatal(err)
	}
	remote.ChunkSize = 16 << 10

	adm := admin.New()
	adm.Register("fleet", fleet.StatsSnapshot)
	adm.Register("store", func() map[string]int64 { return remote.Counters().Map() })
	for i, b := range nodes {
		adm.Register(fmt.Sprintf("node%d", i), b.StatsSnapshot)
	}
	admAddr, err := adm.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Shutdown(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	data, err := imagegen.Generate(3, 160, 120)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var trafficErrs atomic.Int64
	// Conversion + store traffic across the fleet.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				comp, err := fleet.Compress(ctx, data)
				if err != nil {
					if ctx.Err() == nil {
						trafficErrs.Add(1)
					}
					continue
				}
				if _, err := fleet.Decompress(ctx, comp); err != nil && ctx.Err() == nil {
					trafficErrs.Add(1)
				}
				if h, err := remote.Put(ctx, comp); err == nil {
					if _, err := remote.GetCompressed(ctx, h); err != nil && ctx.Err() == nil {
						trafficErrs.Add(1)
					}
				}
			}
		}(w)
	}
	// Scrapers hammering every endpoint.
	var scrapes, scrapeErrs atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/api/stats", "/debug/vars", "/api/stats/fleet", "/api/stats/node0", "/"}
			for i := 0; ctx.Err() == nil; i++ {
				resp, err := http.Get("http://" + admAddr + paths[i%len(paths)])
				if err != nil {
					if ctx.Err() == nil {
						scrapeErrs.Add(1)
					}
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					scrapeErrs.Add(1)
				} else if i%len(paths) < 4 {
					var v map[string]any
					if err := json.Unmarshal(body, &v); err != nil {
						scrapeErrs.Add(1)
					}
				}
				scrapes.Add(1)
			}
		}()
	}

	// Mid-run: hard-kill a node (the health loop's eviction writes race the
	// scrapers' StatsSnapshot reads if any counter is unprotected), then
	// restart it on the same port for the readmission path.
	time.Sleep(300 * time.Millisecond)
	_ = nodes[2].Close()
	deadline := time.Now().Add(5 * time.Second)
	for !fleet.NodeDown(addrs[2]) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	nodes[2] = &server.Blockserver{Store: stores[2]}
	if _, err := server.ListenAndServe(addrs[2], nodes[2]); err != nil {
		t.Fatalf("restart: %v", err)
	}
	time.Sleep(300 * time.Millisecond)

	cancel()
	wg.Wait()
	if scrapes.Load() == 0 {
		t.Fatal("no scrapes completed")
	}
	if e := scrapeErrs.Load(); e > 0 {
		t.Fatalf("%d scrape failures during fleet traffic", e)
	}
	// Final consistency: the snapshot must see the eviction and both nodes.
	snap := fleet.StatsSnapshot()
	if snap["evictions"] == 0 {
		t.Fatalf("fleet snapshot missed the eviction: %v", snap)
	}
	for _, b := range nodes {
		_ = b.Close()
	}
}
