// Package admin is the fleet management plane: a small HTTP/JSON server
// over named stat sources — Fleet router counters, FleetStore replication
// counters, per-node blockserver snapshots — plus a minimal human status
// page. It is the fleet-wide successor of blockserverd's per-node
// -debug-addr /debug/vars, and blockserverd itself now serves its debug
// vars through it.
//
// Unlike the expvar-on-DefaultServeMux pattern it replaces, the server
// owns its *http.Server on a private mux (no global handler collisions,
// no accidental /debug/pprof exposure from stray imports), sets a
// ReadHeaderTimeout so an idle half-open connection cannot hold a worker
// forever (Slowloris), and has a real Shutdown so a draining daemon
// releases its port instead of holding it bound until process exit.
//
// Endpoints:
//
//	/            human status page (HTML, auto-refreshing)
//	/healthz     liveness probe ("ok")
//	/api/stats   every source: {"<name>": {"<counter>": N, ...}, ...}
//	/api/stats/<name>  one source's map
//	/debug/vars  alias of /api/stats in the expvar shape, for tooling
//	             pointed at the old per-node endpoint
//
// Sources are plain func() map[string]int64 snapshots. The contract —
// enforced by the concurrent-scrape race test — is that a Source reads
// every counter via atomics or under the lock that writers hold, so a
// scrape racing live traffic or a node eviction is always safe.
package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Source snapshots one component's counters. It must be safe to call
// concurrently with the component's own activity.
type Source func() map[string]int64

// Default HTTP hardening. ReadHeaderTimeout is the Slowloris bound: a
// connection that has not finished sending headers within it is closed.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	defaultReadTimeout       = 15 * time.Second
	defaultWriteTimeout      = 30 * time.Second
	defaultIdleTimeout       = 2 * time.Minute
)

// Server serves the admin API. Register sources, then ListenAndServe (or
// mount Handler yourself); Shutdown stops accepting, drains in-flight
// scrapes, and releases the port. Safe for concurrent use.
type Server struct {
	// ReadHeaderTimeout overrides DefaultReadHeaderTimeout when positive;
	// set before ListenAndServe. Tests shorten it to pin the Slowloris
	// behavior without waiting out the production bound.
	ReadHeaderTimeout time.Duration

	mu      sync.Mutex
	sources map[string]Source
	order   []string
	hs      *http.Server
	addr    string
}

// New returns an empty admin server.
func New() *Server {
	return &Server{sources: make(map[string]Source)}
}

// Register adds (or replaces) a named source. Names appear as top-level
// keys in /api/stats and sections on the status page, in registration
// order.
func (s *Server) Register(name string, src Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sources[name]; !dup {
		s.order = append(s.order, name)
	}
	s.sources[name] = src
}

// snapshot calls every source outside the registration lock (a source may
// itself take locks shared with request paths; holding ours across that
// would couple scrape latency to registration).
func (s *Server) snapshot() (names []string, stats map[string]map[string]int64) {
	s.mu.Lock()
	names = append([]string(nil), s.order...)
	srcs := make([]Source, len(names))
	for i, n := range names {
		srcs[i] = s.sources[n]
	}
	s.mu.Unlock()
	stats = make(map[string]map[string]int64, len(names))
	for i, n := range names {
		stats[n] = srcs[i]()
	}
	return names, stats
}

// Handler returns the admin mux — private, never http.DefaultServeMux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/api/stats", s.serveAll)
	mux.HandleFunc("/api/stats/", s.serveOne)
	mux.HandleFunc("/debug/vars", s.serveAll)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // a write failure means the scraper went away
}

func (s *Server) serveAll(w http.ResponseWriter, r *http.Request) {
	_, stats := s.snapshot()
	writeJSON(w, stats)
}

func (s *Server) serveOne(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/api/stats/")
	s.mu.Lock()
	src, ok := s.sources[name]
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown source %q", name), http.StatusNotFound)
		return
	}
	writeJSON(w, src())
}

var statusTmpl = template.Must(template.New("status").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>lepton admin</title>
<style>
body{font-family:monospace;margin:2em;background:#fafafa;color:#222}
h1{font-size:1.2em} h2{font-size:1em;margin-bottom:.2em}
table{border-collapse:collapse;margin-bottom:1.2em}
td{border:1px solid #ccc;padding:2px 8px}
td.v{text-align:right}
</style></head><body>
<h1>lepton fleet admin</h1>
<p>{{.Now}} &middot; <a href="/api/stats">/api/stats</a> &middot; <a href="/debug/vars">/debug/vars</a></p>
{{range .Sections}}<h2>{{.Name}} <a href="/api/stats/{{.Name}}">json</a></h2>
<table>{{range .Rows}}<tr><td>{{.K}}</td><td class="v">{{.V}}</td></tr>{{end}}</table>
{{end}}</body></html>
`))

func (s *Server) serveStatus(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	names, stats := s.snapshot()
	type row struct {
		K string
		V int64
	}
	type section struct {
		Name string
		Rows []row
	}
	page := struct {
		Now      string
		Sections []section
	}{Now: time.Now().Format(time.RFC3339)}
	for _, n := range names {
		m := stats[n]
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sec := section{Name: n}
		for _, k := range keys {
			sec.Rows = append(sec.Rows, row{K: k, V: m[k]})
		}
		page.Sections = append(page.Sections, sec)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = statusTmpl.Execute(w, page)
}

// ListenAndServe binds addr ("host:port"; ":0" picks a free port), starts
// serving in the background, and returns the bound address. The server is
// owned: call Shutdown to stop it and release the port.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	rht := s.ReadHeaderTimeout
	if rht <= 0 {
		rht = DefaultReadHeaderTimeout
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: rht,
		ReadTimeout:       defaultReadTimeout,
		WriteTimeout:      defaultWriteTimeout,
		IdleTimeout:       defaultIdleTimeout,
	}
	s.mu.Lock()
	if s.hs != nil {
		s.mu.Unlock()
		_ = ln.Close()
		return "", fmt.Errorf("admin: server already started on %s", s.addr)
	}
	s.hs = hs
	s.addr = ln.Addr().String()
	s.mu.Unlock()
	go func() {
		// ErrServerClosed is the Shutdown path; anything else means the
		// listener died and scrapes silently stop — nothing to do here,
		// the caller notices via failed scrapes.
		_ = hs.Serve(ln)
	}()
	return s.addr, nil
}

// Addr returns the bound address, or "" before ListenAndServe.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Shutdown stops accepting, waits for in-flight scrapes up to ctx's
// deadline, then force-closes stragglers. The port is released by the time
// it returns. Safe to call on a server that never started (no-op).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	hs := s.hs
	s.hs = nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	err := hs.Shutdown(ctx)
	if err != nil {
		// Deadline expired with scrapes still in flight: close them; the
		// port must not outlive the drain window.
		_ = hs.Close()
	}
	return err
}
