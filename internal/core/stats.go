package core

import (
	"lepton/internal/dct"
	"lepton/internal/huffman"
	"lepton/internal/jpeg"
)

// bitCounter measures how many bits the original Huffman coding spends on
// each symbol class, for Figure 4's "original bytes" breakdown.
type bitCounter struct {
	f  *jpeg.File
	dc [4]*huffman.Encoder
	ac [4]*huffman.Encoder
}

func newBitCounter(f *jpeg.File) *bitCounter {
	bc := &bitCounter{f: f}
	for i := 0; i < 4; i++ {
		if f.DC[i] != nil {
			enc, err := huffman.NewEncoder(f.DC[i])
			if err != nil {
				return nil
			}
			bc.dc[i] = enc
		}
		if f.AC[i] != nil {
			enc, err := huffman.NewEncoder(f.AC[i])
			if err != nil {
				return nil
			}
			bc.ac[i] = enc
		}
	}
	return bc
}

func magnitudeCategory(v int32) uint8 {
	if v < 0 {
		v = -v
	}
	var s uint8
	for v != 0 {
		v >>= 1
		s++
	}
	return s
}

func (bc *bitCounter) dcBits(ci int, diff int32) int64 {
	cat := magnitudeCategory(diff)
	c := bc.dc[bc.f.Components[ci].TD].Lookup(cat)
	return int64(c.Len) + int64(cat)
}

func (bc *bitCounter) acBits(ci, run int, v int32) int64 {
	size := magnitudeCategory(v)
	c := bc.ac[bc.f.Components[ci].TA].Lookup(byte(run<<4) | size)
	return int64(c.Len) + int64(size)
}

func (bc *bitCounter) acSymBits(ci int, sym byte) int64 {
	return int64(bc.ac[bc.f.Components[ci].TA].Lookup(sym).Len)
}

func zigzagPos(k int) int { return int(dct.Zigzag[k]) }
