package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"lepton/internal/imagegen"
)

func genJPEG(t testing.TB, seed int64, w, h int) []byte {
	t.Helper()
	data, err := imagegen.Generate(seed, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCodecReuseByteIdentical drives one codec through many files and checks
// that every output is byte-identical to the one-shot path: pooled bins,
// planes, and scratch must leave no trace from one conversion in the next.
func TestCodecReuseByteIdentical(t *testing.T) {
	codec := NewCodec()
	for round := 0; round < 3; round++ {
		for seed := int64(1); seed <= 6; seed++ {
			w := 96 + int(seed)*40
			h := 80 + int(seed)*32
			data := genJPEG(t, seed, w, h)
			oneShot, err := Encode(data, EncodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := codec.Encode(data, EncodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(oneShot.Compressed, pooled.Compressed) {
				t.Fatalf("round %d seed %d: pooled output differs from one-shot", round, seed)
			}
			back, err := codec.Decode(pooled.Compressed, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("round %d seed %d: pooled decode mismatch", round, seed)
			}
		}
	}
}

// TestCodecPoolPoisoning interleaves files of very different shapes —
// tiny gray-ish, large multi-segment, progressive (which bypasses the
// pools), and raw fallbacks — through one codec, ensuring buffer reuse
// never corrupts a later conversion.
func TestCodecPoolPoisoning(t *testing.T) {
	codec := NewCodec()
	shapes := []struct {
		seed int64
		w, h int
	}{
		{1, 640, 480}, // large: many segments, big planes
		{2, 64, 48},   // tiny: planes shrink, stale data beyond the slice
		{3, 320, 240},
		{4, 72, 96},
		{5, 512, 384},
	}
	for round := 0; round < 2; round++ {
		for _, s := range shapes {
			data := genJPEG(t, s.seed, s.w, s.h)
			res, err := codec.Encode(data, EncodeOptions{VerifyRoundtrip: true})
			if err != nil {
				t.Fatalf("shape %dx%d: %v", s.w, s.h, err)
			}
			back, err := codec.Decode(res.Compressed, 0)
			if err != nil || !bytes.Equal(back, data) {
				t.Fatalf("shape %dx%d: decode mismatch (%v)", s.w, s.h, err)
			}
		}
		// Rejected inputs exercise the error paths between pool get/put.
		prog := imagegen.MakeProgressive(genJPEG(t, 7, 120, 90))
		if _, err := codec.Encode(prog, EncodeOptions{}); err == nil {
			t.Fatal("progressive input must be rejected by default")
		}
		if _, err := codec.Encode([]byte("not a jpeg"), EncodeOptions{}); err == nil {
			t.Fatal("garbage input must be rejected")
		}
	}
}

// TestCodecStreamsSurviveRelease guards the EncodeSegments contract: stream
// lengths recorded in the container must match the marshaled bytes even
// after encoders are recycled by later conversions.
func TestCodecEncodeTo(t *testing.T) {
	codec := NewCodec()
	data := genJPEG(t, 11, 256, 192)
	res, err := codec.Encode(data, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res2, err := codec.EncodeTo(&buf, data, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Compressed != nil {
		t.Fatal("EncodeTo must not retain the compressed bytes")
	}
	if !bytes.Equal(buf.Bytes(), res.Compressed) {
		t.Fatal("EncodeTo bytes differ from Encode")
	}
}

// TestCodecConcurrent hammers one codec from several goroutines: pools must
// never hand the same object to two conversions at once.
func TestCodecConcurrent(t *testing.T) {
	codec := NewCodec()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data := genJPEG(t, int64(20+g), 128+16*g, 120)
			for i := 0; i < 3; i++ {
				res, err := codec.Encode(data, EncodeOptions{})
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", g, err)
					return
				}
				back, err := codec.Decode(res.Compressed, 0)
				if err != nil || !bytes.Equal(back, data) {
					errs <- fmt.Errorf("worker %d: round trip mismatch (%v)", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// allocBytesPerRun measures heap bytes allocated per call of fn, averaged
// over runs, on a quiesced heap.
func allocBytesPerRun(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm-up outside the measurement
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
}

// TestCodecAllocReduction is the acceptance check for the pooled pipeline:
// steady-state compression through a reused Codec must allocate far fewer
// bytes per op than the one-shot path. (Since the row-window refactor the
// *object counts* of the two paths are close — neither materializes
// coefficient planes anymore — but the one-shot path still pays for the
// model bin tables, arithmetic coder buffers, and scan bit queues on every
// call, which the codec pools.)
func TestCodecAllocReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	data := genJPEG(t, 31, 512, 384)
	codec := NewCodec()
	// Warm the pools.
	for i := 0; i < 3; i++ {
		if _, err := codec.Encode(data, EncodeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	oneShot := allocBytesPerRun(10, func() {
		if _, err := Encode(data, EncodeOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	pooled := allocBytesPerRun(10, func() {
		if _, err := codec.Encode(data, EncodeOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("bytes/op: one-shot=%.0f pooled=%.0f (%.0f%% fewer)",
		oneShot, pooled, 100*(1-pooled/oneShot))
	if pooled > 0.5*oneShot {
		t.Fatalf("pooled path allocates %.0f B/op vs one-shot %.0f B/op; want >=50%% reduction", pooled, oneShot)
	}
}

// TestContainerOutputSize checks the cheap header peek servers use to frame
// streamed responses.
func TestContainerOutputSize(t *testing.T) {
	data := genJPEG(t, 41, 160, 120)
	res, err := Encode(data, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := ContainerOutputSize(res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(data) {
		t.Fatalf("output size %d, want %d", n, len(data))
	}
	if _, err := ContainerOutputSize([]byte{1, 2, 3}); err == nil {
		t.Fatal("short input must error")
	}
	if _, err := ContainerOutputSize(make([]byte, 64)); err == nil {
		t.Fatal("bad magic must error")
	}
}

// TestPooledResultsNotAliased guards the arith.Encoder.Flush ownership
// contract end to end: Flush returns a slice aliasing the pooled encoder's
// buffer, so EncodeSegments' streams are only valid until release, and every
// byte that escapes Encode must have been copied out (by Container
// marshaling) before the pool recycles the encoder. If a future change let
// aliased bytes escape, the later conversions here would overwrite the
// earlier results in place and their decodes would diverge.
func TestPooledResultsNotAliased(t *testing.T) {
	codec := NewCodec()
	type held struct {
		data, comp, snapshot []byte
	}
	var results []held
	for seed := int64(1); seed <= 8; seed++ {
		data := genJPEG(t, seed, 120+int(seed)*56, 96+int(seed)*40)
		res, err := codec.Encode(data, EncodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, held{
			data:     data,
			comp:     res.Compressed,
			snapshot: append([]byte(nil), res.Compressed...),
		})
	}
	for i, h := range results {
		if !bytes.Equal(h.comp, h.snapshot) {
			t.Fatalf("result %d was mutated by a later pooled conversion (aliased pool memory escaped)", i)
		}
		back, err := codec.Decode(h.comp, 0)
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if !bytes.Equal(back, h.data) {
			t.Fatalf("result %d no longer decodes to its input", i)
		}
	}
}
