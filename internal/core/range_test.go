package core_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"lepton/internal/core"
	"lepton/internal/huffman"
	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

// progressiveJPEG renders a spectral-selection progressive file for the
// fallback tests (mirrors the root-level golden fixture construction).
func progressiveJPEG(t *testing.T, seed int64, w, h int) []byte {
	t.Helper()
	img := imagegen.Synthesize(seed, w, h)
	base, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, SubsampleChroma: true, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.Parse(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		t.Fatal(err)
	}
	spec := &jpeg.ProgressiveSpec{}
	spec.Width, spec.Height = f.Width, f.Height
	for _, c := range f.Components {
		spec.Components = append(spec.Components, jpeg.Component{ID: c.ID, H: c.H, V: c.V, TQ: c.TQ})
	}
	spec.Quant = f.Quant
	spec.DC = [4]*huffman.Spec{&huffman.StdDCLuminance, &huffman.StdDCChrominance}
	spec.AC = [4]*huffman.Spec{&huffman.StdACLuminance, &huffman.StdACChrominance}
	spec.PadBit = 1
	data, err := jpeg.WriteProgressive(spec, s.Coeff)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// rangeSweep checks DecodeRange against slices of the full decode for a
// deterministic set of offsets plus seeded random probes, and returns how
// many requests it issued.
func rangeSweep(t *testing.T, comp, full []byte, seed int64) int {
	t.Helper()
	size := int64(len(full))
	type probe struct{ off, n int64 }
	probes := []probe{
		{0, 0},               // empty
		{0, 1},               // first byte
		{0, 16},              // header prefix
		{0, size},            // whole file
		{size - 1, 1},        // last byte
		{size - 1, 100},      // clamped tail
		{size, 5},            // past EOF → empty
		{size + 100, 5},      // far past EOF → empty
		{size / 2, 1},        // single mid byte
		{size / 2, 1024},     // the canonical 1 KB read
		{size / 3, size / 3}, // large interior span
		{1, size - 2},        // all but first/last byte
		{0, size + 999},      // over-long clamps to size
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 24; i++ {
		off := rng.Int63n(size)
		n := rng.Int63n(size/4 + 1)
		probes = append(probes, probe{off, n})
	}
	for _, p := range probes {
		got, err := core.DecodeRange(comp, p.off, p.n, 0)
		if err != nil {
			t.Fatalf("DecodeRange(off=%d n=%d): %v", p.off, p.n, err)
		}
		wantN, err := core.RangeLength(comp, p.off, p.n)
		if err != nil {
			t.Fatalf("RangeLength(off=%d n=%d): %v", p.off, p.n, err)
		}
		a := p.off
		if a > size {
			a = size
		}
		z := p.off + p.n
		if z > size || z < 0 {
			z = size
		}
		if z < a {
			z = a
		}
		want := full[a:z]
		if int64(len(got)) != wantN {
			t.Fatalf("DecodeRange(off=%d n=%d) returned %d bytes, RangeLength says %d",
				p.off, p.n, len(got), wantN)
		}
		if !bytes.Equal(got, want) {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			t.Fatalf("DecodeRange(off=%d n=%d) differs from full-decode slice at byte %d (lens %d vs %d)",
				p.off, p.n, i, len(got), len(want))
		}
	}
	return len(probes)
}

func TestDecodeRangeDifferential(t *testing.T) {
	cases := []struct {
		name string
		data func(t *testing.T) []byte
		opt  core.EncodeOptions
	}{
		{"color-multiseg", func(t *testing.T) []byte { return mustGen(t, 7, 640, 480) },
			core.EncodeOptions{ForceSegments: 4}},
		{"color-small", func(t *testing.T) []byte { return mustGen(t, 3, 96, 64) },
			core.EncodeOptions{}},
		{"gray", func(t *testing.T) []byte {
			img := imagegen.Synthesize(11, 200, 150)
			data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, Grayscale: true, PadBit: 1})
			if err != nil {
				t.Fatal(err)
			}
			return data
		}, core.EncodeOptions{ForceSegments: 2}},
		{"restart-markers", func(t *testing.T) []byte {
			img := imagegen.Synthesize(13, 320, 240)
			data, err := imagegen.EncodeJPEG(img, imagegen.Options{
				Quality: 85, RestartInterval: 5, PadBit: 1, SubsampleChroma: true,
				TrailerGarbage: bytes.Repeat([]byte{0xAB}, 300)})
			if err != nil {
				t.Fatal(err)
			}
			return data
		}, core.EncodeOptions{ForceSegments: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.data(t)
			res, err := core.Encode(data, tc.opt)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			full, err := core.Decode(res.Compressed, 0)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !bytes.Equal(full, data) {
				t.Fatal("full decode does not round-trip")
			}
			before := core.RangeStats()
			n := rangeSweep(t, res.Compressed, full, 42)
			after := core.RangeStats()
			if got := after["range_fast"] - before["range_fast"]; got != int64(n) {
				t.Errorf("expected all %d requests on the fast path, got %d", n, got)
			}
		})
	}
}

// TestDecodeRangeFallbacks covers every input class the fast path refuses:
// index-less containers, progressive scans, and four-component files must
// still produce byte-exact slices via the full-decode fallback, and the
// matching counter must move.
func TestDecodeRangeFallbacks(t *testing.T) {
	base := mustGen(t, 9, 320, 240)
	progressive := progressiveJPEG(t, 17, 240, 180)
	cmykImg := imagegen.Synthesize(19, 176, 144)
	cmyk, err := imagegen.EncodeJPEG(cmykImg, imagegen.Options{Quality: 85, CMYK: true, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		data    []byte
		opt     core.EncodeOptions
		counter string
	}{
		{"no-index", base, core.EncodeOptions{ForceSegments: 3, DisableSeekIndex: true},
			"range_fallback_no_index"},
		{"progressive", progressive, core.EncodeOptions{AllowProgressive: true},
			"range_fallback_unsupported"},
		{"cmyk", cmyk, core.EncodeOptions{AllowCMYK: true},
			"range_fallback_unsupported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := core.Encode(tc.data, tc.opt)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			full, err := core.Decode(res.Compressed, 0)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			before := core.RangeStats()
			rangeSweep(t, res.Compressed, full, 7)
			after := core.RangeStats()
			if after[tc.counter] <= before[tc.counter] {
				t.Errorf("counter %s did not advance (%d -> %d)",
					tc.counter, before[tc.counter], after[tc.counter])
			}
		})
	}
}

// A container whose trailing index section is damaged must silently fall
// back to full decode — never fail, never return wrong bytes.
func TestDecodeRangeCorruptIndexFallsBack(t *testing.T) {
	data := mustGen(t, 15, 400, 300)
	res, err := core.Encode(data, core.EncodeOptions{ForceSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := core.Encode(data, core.EncodeOptions{ForceSegments: 3, DisableSeekIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	streamEnd := len(bare.Compressed)
	if streamEnd >= len(res.Compressed) {
		t.Fatalf("no index section present (%d vs %d bytes)", streamEnd, len(res.Compressed))
	}
	full, err := core.Decode(res.Compressed, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte in the middle of the index section, and separately
	// truncate half the section away.
	corrupt := append([]byte(nil), res.Compressed...)
	corrupt[streamEnd+(len(corrupt)-streamEnd)/2] ^= 0x5A
	truncated := append([]byte(nil), res.Compressed[:streamEnd+(len(res.Compressed)-streamEnd)/2]...)
	for _, comp := range [][]byte{corrupt, truncated} {
		got, err := core.DecodeRange(comp, int64(len(full))/2, 512, 0)
		if err != nil {
			t.Fatalf("DecodeRange on damaged index: %v", err)
		}
		want := full[len(full)/2 : len(full)/2+512]
		if !bytes.Equal(got, want) {
			t.Fatal("DecodeRange on damaged index returned wrong bytes")
		}
	}
}

func TestDecodeRangeRawContainer(t *testing.T) {
	// Raw passthrough containers serve ranges by slicing the stored bytes.
	blob := bytes.Repeat([]byte("lepton raw range "), 400)
	c := &core.Container{Mode: core.ModeRaw, Raw: blob, OutputSize: uint32(len(blob))}
	comp, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.DecodeRange(comp, 17, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob[17:117]) {
		t.Fatal("raw range mismatch")
	}
}

func TestDecodeRangeInvalidArgs(t *testing.T) {
	data := mustGen(t, 5, 96, 64)
	res, err := core.Encode(data, core.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.DecodeRange(res.Compressed, -1, 10, 0); !errors.Is(err, core.ErrInvalidRange) {
		t.Fatalf("negative offset: got %v", err)
	}
	if _, err := core.DecodeRange(res.Compressed, 0, -10, 0); !errors.Is(err, core.ErrInvalidRange) {
		t.Fatalf("negative length: got %v", err)
	}
	if _, err := core.RangeLength(res.Compressed, -1, 1); !errors.Is(err, core.ErrInvalidRange) {
		t.Fatalf("RangeLength negative offset: got %v", err)
	}
	if _, err := core.DecodeRange([]byte("not a container"), 0, 10, 0); err == nil {
		t.Fatal("garbage container: expected error")
	}
}
