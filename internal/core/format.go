// Package core implements the Lepton container format (paper Appendix A.1)
// and the encode/decode engine: thread segmentation, Huffman handover words,
// and round-trip verification. It sits on top of the jpeg, model, and arith
// substrates and below the public API and the 4-MiB chunk layer.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lepton/internal/jpeg"
)

// Container wire constants (A.1).
const (
	Magic0  = 0xCF
	Magic1  = 0x84
	Version = 0x01

	// ModeLepton marks an arithmetic-coded baseline JPEG payload; ModeRaw
	// marks a deflate-compressed verbatim payload (the production fallback
	// for chunks Lepton cannot handle, §5.7); ModeProgressive marks an
	// arithmetic-coded spectral-selection progressive JPEG (the optional
	// capability production disabled, §6.2).
	ModeLepton      = 'Z'
	ModeRaw         = 'R'
	ModeProgressive = 'P'
)

// BuildRevision plays the role of the truncated git revision in the header
// (12 bytes).
var BuildRevision = [12]byte{'l', 'e', 'p', 't', 'o', 'n', '-', 'g', 'o', '0', '0', '1'}

// Handover is the Huffman handover word for one thread segment or chunk:
// everything a JPEG writer needs to resume mid-stream, mid-symbol (§3.4).
type Handover struct {
	BitOff  uint8
	Partial uint8
	RSTSeen uint32
	PrevDC  [jpeg.MaxComponents]int16
}

func handoverFromPos(p jpeg.MCUPos) Handover {
	return Handover{BitOff: p.BitOff, Partial: p.Partial, RSTSeen: uint32(p.RSTSeen), PrevDC: p.PrevDC}
}

func (h Handover) toPos(byteOff int64) jpeg.MCUPos {
	return jpeg.MCUPos{ByteOff: byteOff, BitOff: h.BitOff, Partial: h.Partial,
		RSTSeen: int32(h.RSTSeen), PrevDC: h.PrevDC}
}

// Segment describes one thread segment of arithmetic-coded data.
type Segment struct {
	StartMCU uint32
	Handover Handover
	// ArithLen is the length of this segment's arithmetic stream in the
	// container body.
	ArithLen uint32
}

// Container is the parsed Lepton file.
type Container struct {
	Mode byte

	// OutputSize is the exact byte length of the reconstructed output.
	OutputSize uint32

	// Raw payload (ModeRaw only).
	Raw []byte

	// ModeLepton fields.
	JPEGHeader []byte // verbatim SOI..SOS header
	Trailer    []byte // verbatim bytes after the scan (EOI onward)
	Prepend    []byte // verbatim bytes emitted before this piece's scan data
	Tail       []byte // verbatim garbage between last MCU and scan end
	PadBit     uint8
	EmitHeader bool // output begins with JPEGHeader
	EmitTail   bool // output includes Tail and Trailer after the scan
	// ModelFlags records the predictor configuration the stream was encoded
	// with (bit 0: edge prediction, bit 1: DC gradient); the decoder's model
	// must match bit for bit.
	ModelFlags uint8
	RSTCount   uint32
	MCUStart   uint32
	MCUEnd     uint32
	Segments   []Segment
	// Streams holds each segment's arithmetic-coded bytes.
	Streams [][]byte
	// SeekIndex, when non-nil, is the per-MCU-row handover table enabling
	// range decode (see seekindex.go): entry r is the scan position at the
	// start of MCU row MCUStart/MCUsWide + r. It rides an optional trailing
	// section after the streams; containers without one (all pre-index
	// files, interleaved layouts, progressive/raw modes) decode exactly as
	// before and ranges fall back to full decode.
	SeekIndex []jpeg.MCUPos
	// ProgScans describes each scan of a progressive file
	// (ModeProgressive only).
	ProgScans []ProgScanMeta
}

// ProgScanMeta records everything needed to regenerate one progressive
// scan: its verbatim inter-scan header bytes and the entropy parameters
// the decoder observed.
type ProgScanMeta struct {
	HeaderBytes []byte
	Comps       []byte // frame component indices
	Sel         []byte // per-component Td<<4|Ta selectors
	Ss, Se      uint8
	PadBit      uint8
	RSTCount    uint32
	Tail        []byte
}

// ErrBadContainer reports a malformed Lepton file.
var ErrBadContainer = errors.New("core: malformed Lepton container")

func badContainer(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadContainer, fmt.Sprintf(format, args...))
}

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putBytes(b *bytes.Buffer, p []byte) {
	putU32(b, uint32(len(p)))
	b.Write(p)
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) u8() byte {
	if r.err != nil || r.pos >= len(r.data) {
		r.err = badContainer("truncated at %d", r.pos)
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *reader) u16() uint16 {
	lo := r.u8()
	hi := r.u8()
	return uint16(lo) | uint16(hi)<<8
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.data) {
		r.err = badContainer("truncated at %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = badContainer("length %d overruns buffer", n)
		return nil
	}
	v := r.data[r.pos : r.pos+n]
	r.pos += n
	return v
}

// Marshal serializes the container.
func (c *Container) Marshal() ([]byte, error) { return c.marshal(nil) }

// marshal serializes the container, drawing scratch buffers and the zlib
// header compressor from p's pools when p is non-nil.
func (c *Container) marshal(p *Codec) ([]byte, error) {
	head := p.getBuf()
	defer p.putBuf(head)
	head.WriteByte(c.Mode)
	if c.Mode == ModeRaw {
		putBytes(head, c.Raw)
	} else {
		putBytes(head, c.JPEGHeader)
		putBytes(head, c.Trailer)
		putBytes(head, c.Prepend)
		putBytes(head, c.Tail)
		head.WriteByte(c.PadBit)
		head.WriteByte(boolByte(c.EmitHeader))
		head.WriteByte(boolByte(c.EmitTail))
		head.WriteByte(c.ModelFlags)
		putU32(head, c.RSTCount)
		putU32(head, c.MCUStart)
		putU32(head, c.MCUEnd)
		putU32(head, uint32(len(c.Segments)))
		for _, s := range c.Segments {
			putU32(head, s.StartMCU)
			head.WriteByte(s.Handover.BitOff)
			head.WriteByte(s.Handover.Partial)
			putU32(head, s.Handover.RSTSeen)
			for _, dc := range s.Handover.PrevDC {
				head.WriteByte(byte(uint16(dc)))
				head.WriteByte(byte(uint16(dc) >> 8))
			}
			putU32(head, s.ArithLen)
		}
		if c.Mode == ModeProgressive {
			putU32(head, uint32(len(c.ProgScans)))
			for _, ps := range c.ProgScans {
				putBytes(head, ps.HeaderBytes)
				putBytes(head, ps.Comps)
				putBytes(head, ps.Sel)
				head.WriteByte(ps.Ss)
				head.WriteByte(ps.Se)
				head.WriteByte(ps.PadBit)
				putU32(head, ps.RSTCount)
				putBytes(head, ps.Tail)
			}
		}
	}

	z := p.getBuf()
	defer p.putBuf(z)
	zw := p.getZlibW(z)
	if _, err := zw.Write(head.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	p.putZlibW(zw)

	streamLen := 0
	for _, s := range c.Streams {
		streamLen += len(s)
	}
	out := bytes.NewBuffer(make([]byte, 0, 28+z.Len()+streamLen))
	out.WriteByte(Magic0)
	out.WriteByte(Magic1)
	out.WriteByte(Version)
	out.WriteByte(c.Mode)
	putU32(out, uint32(len(c.Segments)))
	out.Write(BuildRevision[:])
	putU32(out, c.OutputSize)
	putU32(out, uint32(z.Len()))
	out.Write(z.Bytes())
	for _, s := range c.Streams {
		out.Write(s)
	}
	if len(c.SeekIndex) > 0 && c.Mode == ModeLepton {
		// Trailing section: invisible to the stream-length-driven reader,
		// so index-less decoders (and old binaries) are unaffected.
		appendSeekIndex(out, c.SeekIndex)
	}
	return out.Bytes(), nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// flagsByte packs model flags into the container representation.
func flagsByte(edge, dcGradient bool) uint8 {
	var v uint8
	if edge {
		v |= 1
	}
	if dcGradient {
		v |= 2
	}
	return v
}

// Unmarshal parses a serialized container.
func Unmarshal(data []byte) (*Container, error) {
	c, _, err := unmarshal(data, nil)
	return c, err
}

// unmarshal parses a serialized container, drawing the zlib reader and the
// decompressed-header buffer from p's pools when p is non-nil. The returned
// Container aliases the returned buffer's storage; the caller must
// p.putBuf it only once the container is dead.
func unmarshal(data []byte, p *Codec) (*Container, *bytes.Buffer, error) {
	if len(data) < 28 {
		return nil, nil, badContainer("too short: %d bytes", len(data))
	}
	if data[0] != Magic0 || data[1] != Magic1 {
		return nil, nil, badContainer("bad magic %#02x %#02x", data[0], data[1])
	}
	if data[2] != Version {
		return nil, nil, badContainer("unsupported version %d", data[2])
	}
	c := &Container{Mode: data[3]}
	if c.Mode != ModeLepton && c.Mode != ModeRaw && c.Mode != ModeLeptonInterleaved &&
		c.Mode != ModeProgressive {
		return nil, nil, badContainer("unknown mode %#02x", c.Mode)
	}
	nSeg := binary.LittleEndian.Uint32(data[4:])
	c.OutputSize = binary.LittleEndian.Uint32(data[20:])
	zlen := binary.LittleEndian.Uint32(data[24:])
	if 28+int(zlen) > len(data) {
		return nil, nil, badContainer("zlib section overruns file")
	}
	zr, err := p.getZlibR(bytes.NewReader(data[28 : 28+zlen]))
	if err != nil {
		return nil, nil, badContainer("zlib: %v", err)
	}
	headBuf := p.getBuf()
	if _, err := headBuf.ReadFrom(io.LimitReader(zr, 64<<20)); err != nil {
		p.putBuf(headBuf)
		return nil, nil, badContainer("zlib: %v", err)
	}
	p.putZlibR(zr)
	head := headBuf.Bytes()
	fail := func(err error) (*Container, *bytes.Buffer, error) {
		p.putBuf(headBuf)
		return nil, nil, err
	}
	r := &reader{data: head}
	mode := r.u8()
	if mode != c.Mode {
		return fail(badContainer("mode mismatch"))
	}
	if c.Mode == ModeRaw {
		c.Raw = r.bytes()
		if r.err != nil {
			return fail(r.err)
		}
		return c, headBuf, nil
	}
	c.JPEGHeader = r.bytes()
	c.Trailer = r.bytes()
	c.Prepend = r.bytes()
	c.Tail = r.bytes()
	c.PadBit = r.u8()
	c.EmitHeader = r.u8() != 0
	c.EmitTail = r.u8() != 0
	c.ModelFlags = r.u8()
	c.RSTCount = r.u32()
	c.MCUStart = r.u32()
	c.MCUEnd = r.u32()
	n := r.u32()
	if r.err != nil {
		return fail(r.err)
	}
	if n != nSeg {
		return fail(badContainer("segment count mismatch %d != %d", n, nSeg))
	}
	if n > 1024 {
		return fail(badContainer("absurd segment count %d", n))
	}
	body := 28 + int(zlen)
	var lens []uint32
	for i := uint32(0); i < n; i++ {
		var s Segment
		s.StartMCU = r.u32()
		s.Handover.BitOff = r.u8()
		s.Handover.Partial = r.u8()
		s.Handover.RSTSeen = r.u32()
		for j := range s.Handover.PrevDC {
			s.Handover.PrevDC[j] = int16(r.u16())
		}
		s.ArithLen = r.u32()
		if r.err != nil {
			return fail(r.err)
		}
		c.Segments = append(c.Segments, s)
		lens = append(lens, s.ArithLen)
		_ = i
	}
	if c.Mode == ModeProgressive {
		ns := r.u32()
		if r.err != nil {
			return fail(r.err)
		}
		if ns > 64 {
			return fail(badContainer("absurd progressive scan count %d", ns))
		}
		for i := uint32(0); i < ns; i++ {
			var ps ProgScanMeta
			ps.HeaderBytes = r.bytes()
			ps.Comps = r.bytes()
			ps.Sel = r.bytes()
			ps.Ss = r.u8()
			ps.Se = r.u8()
			ps.PadBit = r.u8()
			ps.RSTCount = r.u32()
			ps.Tail = r.bytes()
			if r.err != nil {
				return fail(r.err)
			}
			c.ProgScans = append(c.ProgScans, ps)
		}
	}
	if c.Mode == ModeLeptonInterleaved {
		streams, err := deinterleave(data[body:], lens)
		if err != nil {
			return fail(err)
		}
		c.Streams = streams
		// Normalize: downstream consumers treat the container uniformly.
		c.Mode = ModeLepton
		return c, headBuf, nil
	}
	for i, l := range lens {
		if body+int(l) > len(data) {
			return fail(badContainer("segment %d stream overruns file", i))
		}
		c.Streams = append(c.Streams, data[body:body+int(l)])
		body += int(l)
	}
	if body < len(data) {
		// Anything after the last stream is an optional seek-index section;
		// unknown or corrupt trailing bytes are ignored, as they always were.
		c.SeekIndex = parseSeekIndex(data[body:])
	}
	return c, headBuf, nil
}

// IsLepton reports whether data begins with the Lepton magic number.
func IsLepton(data []byte) bool {
	return len(data) >= 2 && data[0] == Magic0 && data[1] == Magic1
}
