package core

import (
	"bytes"
	"testing"

	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

// bigSynthetic returns a 4:4:4 JPEG whose whole coefficient planes exceed
// the 24 MiB decode budget — the class of file the pre-streaming engine
// rejected up front (cmd/corpusgen generates the same shape at the command
// line for ad-hoc runs).
func bigSynthetic(t testing.TB) []byte {
	t.Helper()
	img := imagegen.Synthesize(5, 2600, 2000)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestOverBudgetImageStreams is the regression test for the row-window
// refactor's headline: an image whose coefficient planes exceed the 24 MiB
// decode budget now streams through both directions instead of being
// rejected with a memory exit.
func TestOverBudgetImageStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megapixel conversion")
	}
	data := bigSynthetic(t)
	f, err := jpeg.Parse(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if planeBytes := int64(f.CoefficientCount()) * 2; planeBytes <= DefaultMemDecodeBudget {
		t.Fatalf("test image too small to exercise the old wall: planes %d <= budget %d",
			planeBytes, DefaultMemDecodeBudget)
	}
	res, err := Encode(data, EncodeOptions{})
	if err != nil {
		t.Fatalf("over-plane-budget image no longer encodes: %v", err)
	}
	back, err := Decode(res.Compressed, 0)
	if err != nil {
		t.Fatalf("over-plane-budget image no longer decodes: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("streamed round trip differs from input")
	}
}

// TestDecodePeakCoeffBytesUnderWindowBound asserts the streaming decoder's
// peak coefficient memory stays within the advertised row-window bound —
// the §5.1 ceiling made checkable.
func TestDecodePeakCoeffBytesUnderWindowBound(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megapixel conversion")
	}
	data := bigSynthetic(t)
	res, err := Encode(data, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.Parse(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := DecodeWindowBytes(f, res.Segments)
	ResetCoeffMemPeak()
	if _, err := Decode(res.Compressed, 0); err != nil {
		t.Fatal(err)
	}
	if inUse, _ := CoeffMemStats(); inUse != 0 {
		t.Fatalf("coefficient accounting leaked: %d bytes still in use", inUse)
	}
	_, peak := CoeffMemStats()
	if peak > bound {
		t.Fatalf("decode peak coefficient bytes %d exceed window bound %d", peak, bound)
	}
	planeBytes := int64(f.CoefficientCount()) * 2
	if peak*5 > planeBytes {
		t.Fatalf("window bound not materially below plane memory: peak %d vs planes %d (<5x)", peak, planeBytes)
	}
	t.Logf("decode peak coefficient bytes: %d (bound %d, whole planes %d, %.0fx reduction)",
		peak, bound, planeBytes, float64(planeBytes)/float64(peak))
}

// TestEncodePeakCoeffBytesUnderGate asserts the encode producer/consumer
// pipeline keeps retained coefficient rows under the memory gate's ceiling.
func TestEncodePeakCoeffBytesUnderGate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megapixel conversion")
	}
	data := bigSynthetic(t)
	f, err := jpeg.Parse(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	starts := segmentRanges(f, SegmentCountFor(len(data)), 0, f.MCUsHigh)
	ceiling := encodeMinGateBytes(f, starts, f.TotalMCUs())
	if DefaultMemEncodeBudget > ceiling {
		ceiling = DefaultMemEncodeBudget
	}
	ResetCoeffMemPeak()
	if _, err := Encode(data, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	if inUse, _ := CoeffMemStats(); inUse != 0 {
		t.Fatalf("coefficient accounting leaked: %d bytes still in use", inUse)
	}
	_, peak := CoeffMemStats()
	if peak > ceiling {
		t.Fatalf("encode peak coefficient bytes %d exceed gate ceiling %d", peak, ceiling)
	}
	t.Logf("encode peak coefficient bytes: %d (ceiling %d, whole planes %d)",
		peak, ceiling, int64(f.CoefficientCount())*2)
}

// TestTightEncodeGateStillStreams forces the encode budget below the
// structural minimum: the gate must raise itself to the deadlock-free floor
// and complete (byte-identically), not hang or reject.
func TestTightEncodeGateStillStreams(t *testing.T) {
	data := genJPEG(t, 77, 512, 384)
	want, err := Encode(data, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Small enough that the gate must sit below the structural minimum,
	// large enough to pass the parser's row-window floor.
	got, err := Encode(data, EncodeOptions{MemEncodeBudget: 64 << 10, MemDecodeBudget: DefaultMemDecodeBudget})
	if err != nil {
		t.Fatalf("tight encode gate rejected instead of streaming: %v", err)
	}
	if !bytes.Equal(got.Compressed, want.Compressed) {
		t.Fatal("tight-gate output differs from default output")
	}
}

// BenchmarkDecodeMemory reports per-decode allocations (run with -benchmem:
// B/op is the Figure-3 regression series for the streaming decoder) plus
// the peak streamed coefficient bytes as a custom metric.
func BenchmarkDecodeMemory(b *testing.B) {
	img := imagegen.Synthesize(5, 2048, 1536)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, PadBit: 1})
	if err != nil {
		b.Fatal(err)
	}
	res, err := Encode(data, EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	ResetCoeffMemPeak()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(res.Compressed, 0); err != nil {
			b.Fatal(err)
		}
	}
	_, peak := CoeffMemStats()
	b.ReportMetric(float64(peak), "peak-coeff-B")
}
