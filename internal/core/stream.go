package core

import (
	"context"
	"sync"
	"sync/atomic"

	"lepton/internal/jpeg"
)

// This file holds the row-window streaming machinery shared by the decode
// and encode pipelines (paper §3.4, §5.1): sliding windows of coefficient
// block rows, the producer/consumer feed that lets the sequential Huffman
// scan decode overlap the parallel segment encoders, the memory gate that
// turns MemEncodeBudget into a streaming ceiling, and the coefficient-
// memory accounting that makes the window bound observable in production
// and testable in CI.

// --- coefficient-memory accounting ---------------------------------------

var coeffInUse atomic.Int64
var coeffPeak atomic.Int64

func grabCoeffBytes(n int64) {
	v := coeffInUse.Add(n)
	for {
		p := coeffPeak.Load()
		if v <= p || coeffPeak.CompareAndSwap(p, v) {
			return
		}
	}
}

func dropCoeffBytes(n int64) { coeffInUse.Add(-n) }

// CoeffMemStats reports the process-wide streamed coefficient-row memory:
// bytes currently held by in-flight conversions and the high-water mark
// since the last ResetCoeffMemPeak. These count only coefficient windows
// and retained rows — the quantity the §5.1 decode ceiling bounds — not
// compressed-domain buffers, whose size follows the request payload.
func CoeffMemStats() (inUse, peak int64) {
	return coeffInUse.Load(), coeffPeak.Load()
}

// ResetCoeffMemPeak clears the coefficient-memory high-water mark (testing
// and monitoring-interval hook).
func ResetCoeffMemPeak() {
	for {
		p := coeffPeak.Load()
		if coeffPeak.CompareAndSwap(p, coeffInUse.Load()) {
			return
		}
	}
}

// --- window geometry ------------------------------------------------------

// vEff returns component ci's effective vertical sampling factor: a
// single-component scan is never interleaved, so its MCU is one block.
func vEff(f *jpeg.File, ci int) int {
	if len(f.Components) == 1 {
		return 1
	}
	return f.Components[ci].V
}

// windowRowsFor returns the ring capacity for a component with effective
// vertical sampling v: the v block rows of the MCU row being consumed by
// the scan re-encoder plus the row above them, which the model predictors
// (7x7 average, Lakhani row, DC gradient via the rolling edge caches) read.
func windowRowsFor(v int) int {
	if v < 1 {
		v = 1
	}
	return v + 1
}

func rowBytes(f *jpeg.File, ci int) int64 {
	return int64(f.Components[ci].BlocksWide) * 64 * 2
}

// DecodeWindowBytes returns the peak coefficient bytes a streaming decode
// of f holds with nSeg thread segments: one (V+1)-row ring per component
// per segment. This — not the whole coefficient planes — is what
// MemDecodeBudget bounds; it grows with image *width* and segment count,
// never with image height.
func DecodeWindowBytes(f *jpeg.File, nSeg int) int64 {
	if nSeg < 1 {
		nSeg = 1
	}
	var per int64
	for ci := range f.Components {
		per += int64(windowRowsFor(vEff(f, ci))) * rowBytes(f, ci)
	}
	return per * int64(nSeg)
}

// encodeMinGateBytes returns the smallest retained-row ceiling at which the
// streamed encode cannot deadlock: the segment arithmetic coders consume
// components in planar order while the scan decode produces rows in MCU
// order, so a segment must be able to hold every row of its later
// components plus the first component's window, plus one MCU row group in
// flight at the producer.
func encodeMinGateBytes(f *jpeg.File, starts []int, endMCU int) int64 {
	var maxSeg int64
	for i, start := range starts {
		end := endMCU
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		rs, re := rowRangesFor(f, start, end)
		var n int64
		for ci := range f.Components {
			if ci == 0 {
				n += int64(windowRowsFor(vEff(f, ci))) * rowBytes(f, ci)
			} else {
				n += int64(re[ci]-rs[ci]) * rowBytes(f, ci)
			}
		}
		if n > maxSeg {
			maxSeg = n
		}
	}
	var group int64
	for ci := range f.Components {
		group += int64(vEff(f, ci)) * rowBytes(f, ci)
	}
	return maxSeg + group
}

// --- decode-side ring window ----------------------------------------------

// ringRows is the decode-side model.RowWindow: a fixed ring of the last
// windowRowsFor(v) block rows of one component. The model decodes into the
// row returned by Row; rows older than the ring capacity are recycled (and
// re-zeroed) in place, after OnRow has handed them to the scan re-encoder.
type ringRows struct {
	bufs [][]int16
	top  int
}

func newRingRows(bufs [][]int16) *ringRows { return &ringRows{bufs: bufs, top: -1} }

func (r *ringRows) Row(row int) []int16 {
	buf := r.bufs[row%len(r.bufs)]
	if row > r.top {
		clear(buf)
		r.top = row
	}
	return buf
}

// peek returns a still-retained row without recycling anything.
func (r *ringRows) peek(row int) []int16 { return r.bufs[row%len(r.bufs)] }

// --- encode-side memory gate and feeds ------------------------------------

// memGate bounds the coefficient bytes the scan-decode producer may keep
// in flight (delivered to segment feeds but not yet consumed and
// recycled). It mirrors its balance into the global accounting and settles
// any remainder at close, so error paths cannot leak the counters.
type memGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	inUse   int64
	limit   int64
	aborted bool
}

func newMemGate(limit int64) *memGate {
	g := &memGate{limit: limit}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until n bytes fit under the ceiling (or the gate is
// aborted, returning false). The first acquisition of a conversion always
// succeeds: the ceiling is pre-raised to encodeMinGateBytes.
func (g *memGate) acquire(n int64) bool {
	g.mu.Lock()
	for !g.aborted && g.inUse+n > g.limit {
		g.cond.Wait()
	}
	ok := !g.aborted
	if ok {
		g.inUse += n
	}
	g.mu.Unlock()
	if ok {
		grabCoeffBytes(n)
	}
	return ok
}

func (g *memGate) release(n int64) {
	g.mu.Lock()
	g.inUse -= n
	g.mu.Unlock()
	dropCoeffBytes(n)
	g.cond.Broadcast()
}

func (g *memGate) abort() {
	g.mu.Lock()
	g.aborted = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// close settles the gate's remaining balance against the global counters.
func (g *memGate) close() {
	g.mu.Lock()
	rest := g.inUse
	g.inUse = 0
	g.mu.Unlock()
	if rest != 0 {
		dropCoeffBytes(rest)
	}
}

// rowRecycler is a per-component free list of row buffers for one
// conversion; rows circulate producer → feed → consumer → recycler.
type rowRecycler struct {
	mu   sync.Mutex
	free [][]int16
	n    int // row length in coefficients
	cd   *Codec
}

func (rc *rowRecycler) get() []int16 {
	rc.mu.Lock()
	var buf []int16
	if k := len(rc.free); k > 0 {
		buf = rc.free[k-1]
		rc.free = rc.free[:k-1]
	}
	rc.mu.Unlock()
	if buf == nil {
		buf = rc.cd.getRowBuf(rc.n)
	}
	clear(buf)
	return buf
}

func (rc *rowRecycler) put(buf []int16) {
	rc.mu.Lock()
	rc.free = append(rc.free, buf)
	rc.mu.Unlock()
}

// drainTo returns every idle buffer to the codec's cross-conversion pool.
func (rc *rowRecycler) drainTo(cd *Codec) {
	rc.mu.Lock()
	free := rc.free
	rc.free = nil
	rc.mu.Unlock()
	for _, b := range free {
		cd.putRowBuf(b)
	}
}

// feedRows is the encode-side model.RowWindow for one (segment, component)
// pair: the producer pushes decoded rows in ascending order, the segment's
// model encoder pulls them — blocking until delivery — and rows the model
// has moved past are recycled immediately, crediting the gate.
type feedRows struct {
	mu      sync.Mutex
	cond    *sync.Cond
	base    int // absolute block row of rows[0]
	rows    [][]int16
	next    int // next absolute row the producer will push (== base+len(rows))
	aborted bool

	free     *rowRecycler
	gate     *memGate
	rowBytes int64
}

func newFeedRows(firstRow int, free *rowRecycler, gate *memGate, rowBytes int64) *feedRows {
	fr := &feedRows{base: firstRow, next: firstRow, free: free, gate: gate, rowBytes: rowBytes}
	fr.cond = sync.NewCond(&fr.mu)
	return fr
}

// push delivers the next row (producer side; gate bytes were acquired when
// the buffer was handed out).
func (fr *feedRows) push(buf []int16) {
	fr.mu.Lock()
	fr.rows = append(fr.rows, buf)
	fr.next++
	fr.mu.Unlock()
	fr.cond.Signal()
}

// Row implements model.RowWindow: recycle everything below row-1 (the model
// still reads the row above the one it is coding), then wait for row.
func (fr *feedRows) Row(row int) []int16 {
	fr.mu.Lock()
	for fr.base < row-1 && len(fr.rows) > 0 {
		buf := fr.rows[0]
		fr.rows = fr.rows[1:]
		fr.base++
		fr.free.put(buf)
		fr.gate.release(fr.rowBytes)
	}
	for !fr.aborted && fr.next <= row {
		fr.cond.Wait()
	}
	if fr.aborted {
		fr.mu.Unlock()
		return nil
	}
	buf := fr.rows[row-fr.base]
	fr.mu.Unlock()
	return buf
}

func (fr *feedRows) abort() {
	fr.mu.Lock()
	fr.aborted = true
	fr.mu.Unlock()
	fr.cond.Broadcast()
}

// drain recycles whatever the feed still holds (segment finished or
// conversion aborted).
func (fr *feedRows) drain() {
	fr.mu.Lock()
	rows := fr.rows
	fr.rows = nil
	fr.base = fr.next
	fr.mu.Unlock()
	for _, buf := range rows {
		fr.free.put(buf)
		fr.gate.release(fr.rowBytes)
	}
}

// --- the encode producer's sink -------------------------------------------

// encodeRouter implements jpeg.RowSink for the streamed encode: it hands
// the scan decoder gate-accounted row buffers and routes each finished row
// to the feed of the segment that owns it.
type encodeRouter struct {
	f     *jpeg.File
	gate  *memGate
	recs  []*rowRecycler
	feeds [][]*feedRows // [segment][component]
	// segRowEnd[i] is the first MCU row owned by segment i+1.
	segRowEnd []int
	segOf     []int // per component: current segment cursor (rows ascend)
	rowB      []int64
	ctx       context.Context
	failed    error
}

func (rt *encodeRouter) GetRowBuf(ci int) []int16 {
	if !rt.gate.acquire(rt.rowB[ci]) {
		// Aborted: hand back a throwaway buffer and let EmitRow surface
		// the error — the scan decoder has no error path on Get.
		if rt.failed == nil {
			if rt.failed = rt.ctx.Err(); rt.failed == nil {
				rt.failed = context.Canceled
			}
		}
		return make([]int16, rt.recs[ci].n)
	}
	return rt.recs[ci].get()
}

func (rt *encodeRouter) EmitRow(ci, row int, coeff []int16) error {
	if rt.failed != nil {
		return rt.failed
	}
	if err := rt.ctx.Err(); err != nil {
		rt.gate.release(rt.rowB[ci])
		return err
	}
	mcuRow := row / vEff(rt.f, ci)
	for rt.segOf[ci]+1 < len(rt.feeds) && mcuRow >= rt.segRowEnd[rt.segOf[ci]] {
		rt.segOf[ci]++
	}
	rt.feeds[rt.segOf[ci]][ci].push(coeff)
	return nil
}
