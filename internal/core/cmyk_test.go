package core_test

import (
	"bytes"
	"testing"

	"lepton/internal/core"
	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

func cmykFile(t testing.TB, seed int64, w, h, ri int) []byte {
	t.Helper()
	img := imagegen.Synthesize(seed, w, h)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{
		Quality: 85, CMYK: true, PadBit: 1, RestartInterval: ri,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCMYKRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		w, h int
		ri   int
	}{
		{1, 120, 96, 0},
		{2, 256, 192, 0},
		{3, 64, 64, 3},
	} {
		data := cmykFile(t, tc.seed, tc.w, tc.h, tc.ri)
		res, err := core.Encode(data, core.EncodeOptions{AllowCMYK: true, VerifyRoundtrip: true})
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		back, err := core.Decode(res.Compressed, 0)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", tc.seed, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("seed %d: CMYK round trip mismatch", tc.seed)
		}
		if len(res.Compressed) >= len(data) {
			t.Fatalf("seed %d: no savings on CMYK", tc.seed)
		}
		t.Logf("seed %d: %d -> %d (%.1f%%)", tc.seed, len(data), len(res.Compressed),
			100*(1-float64(len(res.Compressed))/float64(len(data))))
	}
}

func TestCMYKRejectedByDefault(t *testing.T) {
	data := cmykFile(t, 4, 64, 64, 0)
	_, err := core.Encode(data, core.EncodeOptions{})
	if jpeg.ReasonOf(err) != jpeg.ReasonCMYK {
		t.Fatalf("reason = %v, want CMYK (production default)", jpeg.ReasonOf(err))
	}
}

func TestCMYKMultiSegment(t *testing.T) {
	data := cmykFile(t, 5, 320, 256, 0)
	res, err := core.Encode(data, core.EncodeOptions{AllowCMYK: true, ForceSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 4 {
		t.Fatalf("segments = %d", res.Segments)
	}
	back, err := core.Decode(res.Compressed, 0)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("multi-segment CMYK round trip failed: %v", err)
	}
}
