package core

import (
	"bytes"
	"io"
	"testing"

	"lepton/internal/imagegen"
)

// fuzzSeedContainers builds a spread of valid containers — whole-file
// baseline variants across color layouts and restart intervals, plus a raw
// container — whose mutations give the fuzzer a head start on the
// container grammar.
func fuzzSeedContainers(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte
	add := func(img []byte, err error) {
		if err != nil {
			f.Fatal(err)
		}
		res, err := Encode(img, EncodeOptions{})
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, res.Compressed)
	}
	sy := imagegen.Synthesize(3, 120, 88)
	add(imagegen.EncodeJPEG(sy, imagegen.Options{Quality: 85, PadBit: 1}))
	add(imagegen.EncodeJPEG(sy, imagegen.Options{Quality: 85, Grayscale: true, PadBit: 1}))
	add(imagegen.EncodeJPEG(sy, imagegen.Options{Quality: 75, SubsampleChroma: true, RestartInterval: 3, PadBit: 0}))
	raw := &Container{Mode: ModeRaw, Raw: []byte("not a jpeg"), OutputSize: 10}
	rb, err := raw.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	out = append(out, rb)
	return out
}

// FuzzDecode feeds arbitrary bytes to the container parser and streaming
// decoder. The invariants: never panic, never hang, fail cleanly on
// corrupt segments (the row-window decoder must not over-read a window),
// and — when a container does decode — the buffered and streamed decode
// paths must agree byte for byte.
func FuzzDecode(f *testing.F) {
	seeds := fuzzSeedContainers(f)
	for _, s := range seeds {
		f.Add(s)
		// Corrupt-segment variants: flip a byte inside the arithmetic
		// streams and truncate mid-body.
		if len(s) > 64 {
			c := append([]byte(nil), s...)
			c[len(c)-17] ^= 0x5A
			f.Add(c)
			f.Add(s[:3*len(s)/4])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data, 0)
		var buf bytes.Buffer
		err2 := DecodeTo(&buf, data, 0)
		if (err == nil) != (err2 == nil) {
			// DecodeTo may have written a partial prefix before failing;
			// both paths must still agree on success vs failure.
			t.Fatalf("Decode err=%v but DecodeTo err=%v", err, err2)
		}
		if err == nil && !bytes.Equal(got, buf.Bytes()) {
			t.Fatal("Decode and DecodeTo disagree on reconstructed bytes")
		}
		if inUse, _ := CoeffMemStats(); inUse != 0 {
			t.Fatalf("decode leaked %d coefficient bytes", inUse)
		}
	})
}

// FuzzDecompressRange feeds arbitrary container bytes and range bounds to
// the range decoder. Invariants: never panic or hang; whenever the full
// decode succeeds and the bounds are non-negative, the range decode must
// succeed and return exactly the matching slice of the full output
// (whether it took the indexed fast path or the fallback); coefficient
// memory must always drain.
func FuzzDecompressRange(f *testing.F) {
	seeds := fuzzSeedContainers(f)
	for i, s := range seeds {
		f.Add(s, int64(0), int64(1024))
		f.Add(s, int64(31*i+7), int64(257))
		if len(s) > 64 {
			// Flip a byte near the tail — usually inside the seek index,
			// exercising the corrupt-index fallback — and truncate.
			c := append([]byte(nil), s...)
			c[len(c)-9] ^= 0x11
			f.Add(c, int64(64), int64(512))
			f.Add(s[:7*len(s)/8], int64(0), int64(1<<20))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, off, n int64) {
		full, ferr := Decode(data, 0)
		got, rerr := DecodeRange(data, off, n, 0)
		if ferr == nil && off >= 0 && n >= 0 {
			if rerr != nil {
				t.Fatalf("full decode ok but DecodeRange(off=%d n=%d): %v", off, n, rerr)
			}
			size := int64(len(full))
			a, z := off, off+n
			if a > size {
				a = size
			}
			if z > size || z < 0 {
				z = size
			}
			if z < a {
				z = a
			}
			if !bytes.Equal(got, full[a:z]) {
				t.Fatalf("DecodeRange(off=%d n=%d) differs from full-decode slice", off, n)
			}
		}
		if inUse, _ := CoeffMemStats(); inUse != 0 {
			t.Fatalf("range decode leaked %d coefficient bytes", inUse)
		}
	})
}

// FuzzDecodeToWriterErrors decodes a valid container into a writer that
// fails partway: the pipeline must return the write error without panic or
// goroutine leak.
func FuzzDecodeToWriterErrors(f *testing.F) {
	seeds := fuzzSeedContainers(f)
	for _, s := range seeds {
		f.Add(s, 10)
	}
	f.Fuzz(func(t *testing.T, data []byte, failAt int) {
		w := &failingWriter{failAt: failAt}
		_ = DecodeTo(w, data, 0)
	})
}

type failingWriter struct {
	n      int
	failAt int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.failAt >= 0 && w.n > w.failAt {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}
