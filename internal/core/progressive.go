package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"lepton/internal/arith"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

// Progressive (SOF2, spectral selection) support: the capability production
// Lepton intentionally left disabled (§6.2). Coefficients are coded with
// the same statistic-bin model as baseline files; the container carries
// per-scan metadata so every scan's entropy coding is regenerated
// bit-exactly. Progressive files are coded as a single model segment and
// kept memory-resident, as the paper describes the binary doing.

// encodeProgressive compresses a progressive JPEG into a ModeProgressive
// container.
func encodeProgressive(ctx context.Context, data []byte, opt EncodeOptions, encBudget, decBudget int64) (*Result, error) {
	p, err := jpeg.ParseProgressive(data, encBudget)
	if err != nil {
		return nil, err
	}
	f := p.Frame
	if int64(f.CoefficientCount())*2 > decBudget {
		return nil, &jpeg.Error{Reason: jpeg.ReasonMemDecode,
			Detail: fmt.Sprintf("decode would need %d coefficient bytes", f.CoefficientCount()*2)}
	}
	coeff, err := jpeg.DecodeProgressive(p)
	if err != nil {
		return nil, err
	}

	flags := model.DefaultFlags()
	if opt.Flags != nil {
		flags = *opt.Flags
	}
	rs := make([]int, len(f.Components))
	re := make([]int, len(f.Components))
	for i := range f.Components {
		re[i] = f.Components[i].BlocksHigh
	}
	codec := model.NewCodec(planesOf(f, coeff), rs, re, flags)
	if opt.CollectStats {
		codec.Stats = &model.Stats{}
	}
	e := arith.NewEncoder()
	if err := codec.EncodeSegmentCtx(e, ctx.Done()); err != nil {
		return nil, ctx.Err()
	}
	stream := e.Flush()

	c := &Container{
		Mode:       ModeProgressive,
		OutputSize: uint32(len(data)),
		JPEGHeader: p.Header,
		Trailer:    p.Trailer,
		PadBit:     0,
		EmitHeader: true,
		EmitTail:   true,
		MCUStart:   0,
		MCUEnd:     uint32(f.TotalMCUs()),
		ModelFlags: flagsByte(flags.EdgePrediction, flags.DCGradient),
		Segments:   []Segment{{StartMCU: 0, ArithLen: uint32(len(stream))}},
		Streams:    [][]byte{stream},
	}
	for si := range p.Scans {
		scan := &p.Scans[si]
		meta := ProgScanMeta{
			HeaderBytes: scan.HeaderBytes,
			Ss:          uint8(scan.Ss),
			Se:          uint8(scan.Se),
			PadBit:      scan.PadBit,
			RSTCount:    uint32(scan.RSTCount),
			Tail:        scan.Tail,
			Sel:         scan.Sel,
		}
		for _, ci := range scan.Comps {
			meta.Comps = append(meta.Comps, byte(ci))
		}
		c.ProgScans = append(c.ProgScans, meta)
	}
	comp, err := c.Marshal()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Compressed:     comp,
		Segments:       1,
		HeaderOriginal: len(p.Header),
	}
	if codec.Stats != nil {
		res.ClassBits = codec.Stats.Bits
	}
	res.HeaderCompressed = len(comp) - len(stream)
	if opt.VerifyRoundtrip {
		back, err := (*Codec)(nil).DecodeCtx(ctx, comp, decBudget)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, &jpeg.Error{Reason: jpeg.ReasonRoundtrip, Detail: err.Error()}
		}
		if !bytes.Equal(back, data) {
			return nil, &jpeg.Error{Reason: jpeg.ReasonRoundtrip, Detail: "progressive decode differs from input"}
		}
	}
	return res, nil
}

// decodeProgressiveContainer reconstructs a progressive file from its
// container.
func decodeProgressiveContainer(ctx context.Context, w io.Writer, c *Container, memBudget int64) error {
	f, err := jpeg.ParseProgressiveHeader(c.JPEGHeader)
	if err != nil {
		return fmt.Errorf("core: stored progressive header: %w", err)
	}
	if int64(f.CoefficientCount())*2 > memBudget {
		return &jpeg.Error{Reason: jpeg.ReasonMemDecode,
			Detail: fmt.Sprintf("%d coefficient bytes exceed budget", f.CoefficientCount()*2)}
	}
	coeff := make([][]int16, len(f.Components))
	for i := range f.Components {
		comp := &f.Components[i]
		coeff[i] = make([]int16, comp.BlocksWide*comp.BlocksHigh*64)
	}
	flags := model.Flags{
		EdgePrediction: c.ModelFlags&1 != 0,
		DCGradient:     c.ModelFlags&2 != 0,
	}
	rs := make([]int, len(f.Components))
	re := make([]int, len(f.Components))
	for i := range f.Components {
		re[i] = f.Components[i].BlocksHigh
	}
	if len(c.Streams) != 1 {
		return badContainer("progressive container has %d streams", len(c.Streams))
	}
	codec := model.NewCodec(planesOf(f, coeff), rs, re, flags)
	d := arith.NewDecoder(c.Streams[0])
	if err := codec.DecodeSegmentCtx(d, ctx.Done()); err != nil {
		if errors.Is(err, model.ErrInterrupted) {
			return ctx.Err()
		}
		return fmt.Errorf("core: progressive model decode: %w", err)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("core: progressive model decode: %w", err)
	}

	p := &jpeg.ProgFile{Frame: f, Header: c.JPEGHeader, Trailer: c.Trailer}
	for _, meta := range c.ProgScans {
		scan := jpeg.ProgScan{
			HeaderBytes: meta.HeaderBytes,
			Ss:          int(meta.Ss),
			Se:          int(meta.Se),
			PadBit:      meta.PadBit,
			RSTCount:    int(meta.RSTCount),
			Tail:        meta.Tail,
			Sel:         meta.Sel,
		}
		for _, ci := range meta.Comps {
			if int(ci) >= len(f.Components) {
				return badContainer("progressive scan component %d", ci)
			}
			scan.Comps = append(scan.Comps, int(ci))
		}
		p.Scans = append(p.Scans, scan)
	}
	out, err := p.Reassemble(coeff)
	if err != nil {
		return fmt.Errorf("core: progressive reassembly: %w", err)
	}
	if len(out) != int(c.OutputSize) {
		return badContainer("progressive output %d bytes, expected %d", len(out), c.OutputSize)
	}
	_, err = w.Write(out)
	return err
}
