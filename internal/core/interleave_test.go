package core_test

import (
	"bytes"
	"testing"

	"lepton/internal/core"
)

func interleavedContainer(t *testing.T, seed int64, sectionSize int) (data, comp []byte) {
	t.Helper()
	data = mustGen(t, seed, 400, 304)
	res, err := core.Encode(data, core.EncodeOptions{ForceSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Unmarshal(res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	comp, err = c.MarshalInterleaved(sectionSize)
	if err != nil {
		t.Fatal(err)
	}
	return data, comp
}

func TestInterleavedRoundTrip(t *testing.T) {
	for _, section := range []int{64, 256, 1000, 4096, 65536} {
		data, comp := interleavedContainer(t, 30, section)
		back, err := core.Decode(comp, 0)
		if err != nil {
			t.Fatalf("section %d: %v", section, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("section %d: interleaved round trip mismatch", section)
		}
	}
}

func TestInterleavedSectionsActuallyInterleave(t *testing.T) {
	_, comp := interleavedContainer(t, 31, 128)
	c, err := core.Unmarshal(comp)
	if err != nil {
		t.Fatal(err)
	}
	// After normalization the streams must match a sequential marshal of
	// the same container.
	seq, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := core.Unmarshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Streams) != len(c2.Streams) {
		t.Fatalf("stream counts differ: %d vs %d", len(c.Streams), len(c2.Streams))
	}
	for i := range c.Streams {
		if !bytes.Equal(c.Streams[i], c2.Streams[i]) {
			t.Fatalf("stream %d differs after interleave round trip", i)
		}
	}
}

func TestInterleavedRejectsRawMode(t *testing.T) {
	c := &core.Container{Mode: core.ModeRaw, Raw: []byte("x"), OutputSize: 1}
	if _, err := c.MarshalInterleaved(0); err == nil {
		t.Fatal("raw containers cannot be interleaved")
	}
}

func TestInterleavedCorruption(t *testing.T) {
	_, comp := interleavedContainer(t, 32, 512)
	// Flipping body bytes must never panic; section framing errors must be
	// detected as bad containers.
	for i := 40; i < len(comp); i += 53 {
		bad := append([]byte(nil), comp...)
		bad[i] ^= 0xFF
		_, _ = core.Decode(bad, 0)
	}
	// Truncations.
	for _, n := range []int{29, 60, len(comp) / 2, len(comp) - 3} {
		if n < len(comp) {
			if _, err := core.Decode(comp[:n], 0); err == nil {
				t.Fatalf("truncated interleaved container at %d decoded", n)
			}
		}
	}
}
