package core_test

import (
	"bytes"
	"testing"

	"lepton/internal/core"
	"lepton/internal/huffman"
	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

// progFile wraps a synthetic image as a spectral-selection progressive
// JPEG.
func progFile(t testing.TB, seed int64, w, h int, ri int) []byte {
	t.Helper()
	img := imagegen.Synthesize(seed, w, h)
	base, err := imagegen.EncodeJPEG(img, imagegen.Options{
		Quality: 85, SubsampleChroma: true, PadBit: 1, RestartInterval: ri,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := jpeg.Parse(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		t.Fatal(err)
	}
	spec := &jpeg.ProgressiveSpec{}
	spec.Width, spec.Height = f.Width, f.Height
	for _, c := range f.Components {
		spec.Components = append(spec.Components, jpeg.Component{ID: c.ID, H: c.H, V: c.V, TQ: c.TQ})
	}
	spec.Quant = f.Quant
	spec.DC = [4]*huffman.Spec{&huffman.StdDCLuminance, &huffman.StdDCChrominance}
	spec.AC = [4]*huffman.Spec{&huffman.StdACLuminance, &huffman.StdACChrominance}
	spec.RestartInterval = ri
	spec.PadBit = 1
	data, err := jpeg.WriteProgressive(spec, s.Coeff)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestProgressiveContainerRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		w, h int
		ri   int
	}{
		{1, 160, 120, 0},
		{2, 320, 240, 0},
		{3, 96, 64, 4},
	} {
		data := progFile(t, tc.seed, tc.w, tc.h, tc.ri)
		res, err := core.Encode(data, core.EncodeOptions{AllowProgressive: true, VerifyRoundtrip: true})
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		back, err := core.Decode(res.Compressed, 0)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", tc.seed, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("seed %d: progressive container round trip mismatch", tc.seed)
		}
		if len(res.Compressed) >= len(data) {
			t.Fatalf("seed %d: no savings on progressive: %d >= %d",
				tc.seed, len(res.Compressed), len(data))
		}
		t.Logf("seed %d: %d -> %d (%.1f%% savings)", tc.seed, len(data), len(res.Compressed),
			100*(1-float64(len(res.Compressed))/float64(len(data))))
	}
}

func TestProgressiveRejectedByDefault(t *testing.T) {
	data := progFile(t, 4, 96, 96, 0)
	_, err := core.Encode(data, core.EncodeOptions{})
	if jpeg.ReasonOf(err) != jpeg.ReasonProgressive {
		t.Fatalf("reason = %v, want Progressive (production default)", jpeg.ReasonOf(err))
	}
}

func TestProgressiveContainerCorruption(t *testing.T) {
	data := progFile(t, 5, 128, 96, 0)
	res, err := core.Encode(data, core.EncodeOptions{AllowProgressive: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 30; i < len(res.Compressed); i += 37 {
		bad := append([]byte(nil), res.Compressed...)
		bad[i] ^= 0x80
		_, _ = core.Decode(bad, 0) // classified error or garbage; no panic
	}
	for _, n := range []int{10, 50, len(res.Compressed) / 2} {
		if _, err := core.Decode(res.Compressed[:n], 0); err == nil {
			t.Fatalf("truncated progressive container at %d decoded", n)
		}
	}
}

func TestProgressiveMemBudget(t *testing.T) {
	data := progFile(t, 6, 256, 192, 0)
	_, err := core.Encode(data, core.EncodeOptions{AllowProgressive: true, MemDecodeBudget: 1024})
	if jpeg.ReasonOf(err) != jpeg.ReasonMemDecode {
		t.Fatalf("reason = %v", jpeg.ReasonOf(err))
	}
}
