package core

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"io"
	"sync"

	"lepton/internal/arith"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

// Codec is a reusable encode/decode pipeline. It owns sync.Pools for the
// dominant per-conversion allocations — model statistic-bin tables (~1 MiB
// per thread segment), coefficient planes, per-segment arithmetic coders and
// rolling-cache scratch, and the zlib header compressors — so a long-lived
// codec serving many conversions reuses memory instead of re-allocating it
// on every call. That is the shape of the paper's deployment: blockservers
// run for months and per-request memory is the binding constraint (§6.2).
//
// A Codec is safe for concurrent use. A nil *Codec is also valid: every
// method falls back to fresh allocations, which is exactly the behavior of
// the package-level Encode/Decode/DecodeTo one-shot functions.
type Codec struct {
	segCodecs  sync.Pool // *model.Codec: bin tables + segment scratch
	encoders   sync.Pool // *arith.Encoder: arithmetic-coder output buffers
	rows       sync.Pool // *rowSlab: streaming window/feed row buffers
	scanBufs   sync.Pool // *jpeg.ScanBuffers: buffered-path planes + positions
	streamBufs sync.Pool // *jpeg.StreamEncBuffers: decode-side scan bit queues
	zlibWs     sync.Pool // *zlib.Writer: container header compressor
	zlibRs     sync.Pool // io.ReadCloser (+zlib.Resetter): header decompressor
	bufs       sync.Pool // *bytes.Buffer: marshal/unmarshal scratch
}

// NewCodec returns an empty codec; pools fill as it is used.
func NewCodec() *Codec { return &Codec{} }

// rowSlab is one pooled block-row buffer.
type rowSlab struct{ buf []int16 }

// --- pool accessors; every one tolerates a nil receiver ------------------

func (c *Codec) getSegCodec(comps []model.ComponentPlane, rs, re []int, flags model.Flags) *model.Codec {
	if c != nil {
		if v := c.segCodecs.Get(); v != nil {
			mc := v.(*model.Codec)
			mc.Reset(comps, rs, re, flags)
			return mc
		}
	}
	return model.NewCodec(comps, rs, re, flags)
}

func (c *Codec) putSegCodec(mc *model.Codec) {
	if c == nil || mc == nil {
		return
	}
	mc.Release()
	c.segCodecs.Put(mc)
}

func (c *Codec) getEncoder() *arith.Encoder {
	if c != nil {
		if v := c.encoders.Get(); v != nil {
			e := v.(*arith.Encoder)
			e.Reset()
			return e
		}
	}
	return arith.NewEncoder()
}

func (c *Codec) putEncoder(e *arith.Encoder) {
	if c != nil && e != nil {
		c.encoders.Put(e)
	}
}

// getRowBuf returns an uncleared block-row buffer of n coefficients from
// the pool (callers zero it as needed).
func (c *Codec) getRowBuf(n int) []int16 {
	if c != nil {
		if v := c.rows.Get(); v != nil {
			slab := v.(*rowSlab)
			if cap(slab.buf) >= n {
				return slab.buf[:n]
			}
		}
	}
	return make([]int16, n)
}

func (c *Codec) putRowBuf(buf []int16) {
	if c != nil && buf != nil {
		c.rows.Put(&rowSlab{buf: buf})
	}
}

// getStreamBufs returns pooled bit-queue storage for a segment's streaming
// scan re-encoder.
func (c *Codec) getStreamBufs() *jpeg.StreamEncBuffers {
	if c != nil {
		if v := c.streamBufs.Get(); v != nil {
			return v.(*jpeg.StreamEncBuffers)
		}
	}
	return &jpeg.StreamEncBuffers{}
}

func (c *Codec) putStreamBufs(sb *jpeg.StreamEncBuffers) {
	if c != nil && sb != nil {
		c.streamBufs.Put(sb)
	}
}

// decodeScan entropy-decodes f's scan using pooled buffers; the Scan aliases
// the returned ScanBuffers, which must be released only once the Scan is
// dead.
func (c *Codec) decodeScan(f *jpeg.File) (*jpeg.Scan, *jpeg.ScanBuffers, error) {
	var sb *jpeg.ScanBuffers
	if c != nil {
		if v := c.scanBufs.Get(); v != nil {
			sb = v.(*jpeg.ScanBuffers)
		} else {
			sb = &jpeg.ScanBuffers{}
		}
	}
	s, err := jpeg.DecodeScanInto(f, sb)
	if err != nil {
		c.putScanBufs(sb)
		return nil, nil, err
	}
	return s, sb, nil
}

func (c *Codec) putScanBufs(sb *jpeg.ScanBuffers) {
	if c != nil && sb != nil {
		c.scanBufs.Put(sb)
	}
}

func (c *Codec) getBuf() *bytes.Buffer {
	if c != nil {
		if v := c.bufs.Get(); v != nil {
			b := v.(*bytes.Buffer)
			b.Reset()
			return b
		}
	}
	return &bytes.Buffer{}
}

func (c *Codec) putBuf(b *bytes.Buffer) {
	if c != nil && b != nil {
		c.bufs.Put(b)
	}
}

func (c *Codec) getZlibW(w io.Writer) *zlib.Writer {
	if c != nil {
		if v := c.zlibWs.Get(); v != nil {
			zw := v.(*zlib.Writer)
			zw.Reset(w)
			return zw
		}
	}
	return zlib.NewWriter(w)
}

func (c *Codec) putZlibW(zw *zlib.Writer) {
	if c != nil && zw != nil {
		c.zlibWs.Put(zw)
	}
}

func (c *Codec) getZlibR(r io.Reader) (io.ReadCloser, error) {
	if c != nil {
		if v := c.zlibRs.Get(); v != nil {
			zr := v.(io.ReadCloser)
			if err := zr.(zlib.Resetter).Reset(r, nil); err != nil {
				// Reset consumed (part of) the stream header; the error IS
				// the header error. Falling through to a fresh reader here
				// would parse from a shifted offset and make the outcome
				// depend on pool state.
				return nil, err
			}
			return zr, nil
		}
	}
	return zlib.NewReader(r)
}

func (c *Codec) putZlibR(zr io.ReadCloser) {
	if c == nil || zr == nil {
		return
	}
	// Detach the reader from its source before pooling: otherwise each
	// pooled reader pins the caller's input buffer (up to a whole request
	// payload) until its next reuse. The Reset error (EOF on an empty
	// source) is expected and discarded.
	_ = zr.(zlib.Resetter).Reset(bytes.NewReader(nil), nil)
	c.zlibRs.Put(zr)
}

// MarshalContainer serializes cont, drawing marshal scratch and the zlib
// header compressor from the codec's pools. Any stream buffers released by
// an EncodeSegments release callback must not be recycled until this
// returns; callers therefore marshal first and release after.
func (c *Codec) MarshalContainer(cont *Container) ([]byte, error) {
	return cont.marshal(c)
}

// ContainerOutputSize reads the exact reconstructed size recorded in a
// container's fixed header, without unmarshaling the container. Servers use
// it to frame a response before streaming the decode.
func ContainerOutputSize(comp []byte) (uint32, error) {
	if len(comp) < 28 {
		return 0, badContainer("too short: %d bytes", len(comp))
	}
	if comp[0] != Magic0 || comp[1] != Magic1 {
		return 0, badContainer("bad magic %#02x %#02x", comp[0], comp[1])
	}
	return binary.LittleEndian.Uint32(comp[20:]), nil
}
