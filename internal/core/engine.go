package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"lepton/internal/arith"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

// Default memory budgets (paper §5.1, §6.2). Like the deployed system,
// this implementation streams row by row: per-request coefficient memory
// is a sliding window of block rows per component per thread segment, so
// MemDecodeBudget is a real streaming ceiling — it bounds the row windows
// (which scale with image width × segment count), not the pixel count, and
// a tall over-"plane-budget" image streams through instead of being
// rejected. MemEncodeBudget additionally caps the rows the encode producer
// may keep in flight ahead of the segment coders (the bounded ring). Only
// files whose windows cannot fit are rejected before allocating, with the
// memory exit code the §6.2 table exercises.
//
// Deployment shape (§5.1): production ran one Lepton process per core,
// each handling one conversion at a time, so every process kept a warm,
// private working set and never contended on shared allocator state. The
// in-process analogue is internal/server's sharded worker pool: one
// worker per GOMAXPROCS core, each owning a private Codec whose pooled
// buffers are reused across that shard's requests only. Connections hash
// to a home shard (affinity keeps the buffers cache-warm); idle shards
// steal queued work so a slow request does not strand its neighbors. The
// block-level hot paths under this engine (border IDCT, occupancy masks,
// 0xFF scans) dispatch to AVX2 kernels where the CPU has them — see
// internal/dct and internal/bitio, portable twins enforced bit-identical
// by differential fuzzing.
//
// Range serving (§3, §5.5): serving arbitrary HTTP Range requests out of
// recompressed files was the deployment's hard requirement, and the
// streaming architecture above makes it nearly free. The stream scan
// encoder already computes, at every MCU row, the exact Huffman handover
// word (scan byte/bit position, partial byte, restart count, DC
// predictors) needed to resume emission mid-file; the encoder persists
// that table as a CRC-guarded trailing section (seekindex.go) that legacy
// readers skip and DisableSeekIndex omits entirely. DecodeRange
// (rangedec.go) binary-searches it to map a byte range to an MCU-row
// interval, arith-decodes only the thread segments containing those rows
// (each seeded from its recorded handover state), and re-emits exactly
// the requested scan bytes — a 1 KB read costs roughly one segment, not
// one file. Containers the planner distrusts — progressive, CMYK, legacy
// index-less, corrupt index — take a counted fallback through the full
// decode, which is always correct, only slower.
const (
	DefaultMemDecodeBudget = 24 << 20
	DefaultMemEncodeBudget = 178 << 20
)

// EncodeOptions tunes the encoder.
type EncodeOptions struct {
	// Flags select model predictors (ablations, §4.3); nil means the
	// deployed configuration (everything on).
	Flags *model.Flags
	// ForceSegments overrides the file-size-based thread segment count
	// (1..64); 0 selects automatically (Figure 7's cutoffs).
	ForceSegments int
	// CollectStats fills Result.ClassBits for Figure 4.
	CollectStats bool
	// VerifyRoundtrip decodes the result and compares with the input
	// before returning; mismatch is reported as a roundtrip failure. This
	// mirrors production admission control (§5.7).
	VerifyRoundtrip bool
	// MemDecodeBudget / MemEncodeBudget bound coefficient memory; 0 means
	// the defaults above.
	MemDecodeBudget int64
	MemEncodeBudget int64
	// SingleModel tallies statistic bins across the whole image in one
	// segment regardless of size — the "Lepton 1-way" configuration of §4.
	SingleModel bool
	// AllowProgressive enables the spectral-selection progressive path.
	// Production kept this off (§6.2: "intentionally disabled ... for
	// simplicity"); it is the optional capability the binary had.
	AllowProgressive bool
	// AllowCMYK enables four-component files ("an extra model for the 4th
	// color channel", §6.2) — also off in production.
	AllowCMYK bool
	// DisableSeekIndex omits the trailing per-MCU-row seek index (see
	// seekindex.go), reproducing the pre-index container byte for byte.
	// Index-less files stay fully decodable; range reads on them fall back
	// to full decode.
	DisableSeekIndex bool
}

// Result is the encoder's output plus accounting.
type Result struct {
	Compressed []byte
	// Segments is the thread segment count used.
	Segments int
	// ClassBits estimates compressed bits per coefficient class (Figure 4),
	// filled when CollectStats is set.
	ClassBits [model.NumClasses]float64
	// OriginalClassBits counts the Huffman-coded bits per class in the
	// original scan (Figure 4's "original bytes" column).
	OriginalClassBits [model.NumClasses]int64
	// HeaderOriginal and HeaderCompressed are the verbatim JPEG header size
	// and its zlib-compressed size.
	HeaderOriginal   int
	HeaderCompressed int
}

// SegmentCountFor returns the automatic thread-segment count for an input
// of n bytes, following the multithreading cutoffs visible in Figures 7/8.
func SegmentCountFor(n int) int {
	switch {
	case n < 100<<10:
		return 1
	case n < 400<<10:
		return 2
	case n < 3<<20/2:
		return 4
	default:
		return 8
	}
}

// segmentRanges splits the MCU rows [startRow, endRow) into nSeg contiguous
// ranges, returning the start MCU of each segment. Fewer ranges are returned
// when there are not enough MCU rows.
func segmentRanges(f *jpeg.File, nSeg, startRow, endRow int) []int {
	rows := endRow - startRow
	if nSeg > rows {
		nSeg = rows
	}
	if nSeg < 1 {
		nSeg = 1
	}
	starts := make([]int, 0, nSeg)
	for i := 0; i < nSeg; i++ {
		r := startRow + i*rows/nSeg
		starts = append(starts, r*f.MCUsWide)
	}
	return starts
}

// SeekIndexable reports whether a parsed file can carry the range-serving
// seek index: a gray/color baseline image (CMYK range reads fall back to
// full decode — §6.2 kept the fourth channel off in production, so the
// index would be dead weight) with few enough MCU rows to keep the table
// compact. The chunk layer consults it too.
func SeekIndexable(f *jpeg.File) bool {
	return len(f.Components) < 4 && f.MCUsHigh > 0 && f.MCUsHigh <= seekIndexMaxRows
}

func seekIndexEligible(opt EncodeOptions, f *jpeg.File) bool {
	return !opt.DisableSeekIndex && SeekIndexable(f)
}

// planesOf adapts a decoded scan to the model's whole-plane view.
func planesOf(f *jpeg.File, coeff [][]int16) []model.ComponentPlane {
	var planes []model.ComponentPlane
	for i := range f.Components {
		c := &f.Components[i]
		planes = append(planes, model.Plane(c.BlocksWide, c.BlocksHigh, &f.Quant[c.TQ], coeff[i]))
	}
	return planes
}

// rowRangesFor converts an MCU range [startMCU, endMCU) (row-aligned) to
// per-component block-row ranges.
func rowRangesFor(f *jpeg.File, startMCU, endMCU int) (rs, re []int) {
	startRow := startMCU / f.MCUsWide
	endRow := (endMCU + f.MCUsWide - 1) / f.MCUsWide
	for i := range f.Components {
		c := &f.Components[i]
		v := c.V
		if len(f.Components) == 1 {
			v = 1
		}
		r0 := startRow * v
		r1 := endRow * v
		if r1 > c.BlocksHigh {
			r1 = c.BlocksHigh
		}
		rs = append(rs, r0)
		re = append(re, r1)
	}
	return rs, re
}

// Encode compresses one whole baseline JPEG into a Lepton container,
// allocating fresh state (one-shot). Long-lived callers should prefer a
// reusable Codec, which draws the model tables and scratch from pools.
func Encode(data []byte, opt EncodeOptions) (*Result, error) {
	return (*Codec)(nil).Encode(data, opt)
}

// Encode compresses one whole baseline JPEG into a Lepton container, reusing
// pooled state from earlier conversions. Output is byte-identical to the
// one-shot path.
func (c *Codec) Encode(data []byte, opt EncodeOptions) (*Result, error) {
	return c.EncodeCtx(context.Background(), data, opt)
}

// EncodeCtx is Encode under a context: cancellation is observed between
// pipeline phases and, through per-row checkpoints inside every segment
// goroutine, mid-conversion — a cancelled request stops burning CPU within
// one block row per segment, not at the next request boundary. The error is
// ctx.Err() (errors.Is context.Canceled / DeadlineExceeded); pooled state is
// recycled exactly as on success, so the codec stays reusable.
func (c *Codec) EncodeCtx(ctx context.Context, data []byte, opt EncodeOptions) (*Result, error) {
	encBudget := opt.MemEncodeBudget
	if encBudget == 0 {
		encBudget = DefaultMemEncodeBudget
	}
	decBudget := opt.MemDecodeBudget
	if decBudget == 0 {
		decBudget = DefaultMemDecodeBudget
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := jpeg.ParseOpt(data, encBudget, opt.AllowCMYK)
	if err != nil {
		if opt.AllowProgressive && jpeg.ReasonOf(err) == jpeg.ReasonProgressive {
			return encodeProgressive(ctx, data, opt, encBudget, decBudget)
		}
		return nil, err
	}
	flags := model.DefaultFlags()
	if opt.Flags != nil {
		flags = *opt.Flags
	}
	nSeg := opt.ForceSegments
	if opt.SingleModel {
		nSeg = 1
	}
	if nSeg == 0 {
		nSeg = SegmentCountFor(len(data))
	}
	total := f.TotalMCUs()
	starts := segmentRanges(f, nSeg, 0, f.MCUsHigh)
	// The decoder will hold one row window per segment: enforce its budget
	// at encode time so every stored file is decodable within budget
	// (§6.2). The bound scales with image width and segment count, never
	// with height — a tall image streams through, it is not rejected.
	if w := DecodeWindowBytes(f, len(starts)); w > decBudget {
		return nil, &jpeg.Error{Reason: jpeg.ReasonMemDecode,
			Detail: fmt.Sprintf("decode row windows need %d bytes > %d budget", w, decBudget)}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{HeaderOriginal: len(f.Header)}
	cont := &Container{
		Mode:       ModeLepton,
		OutputSize: uint32(len(data)),
		JPEGHeader: f.Header,
		Trailer:    f.Trailer,
		EmitHeader: true,
		EmitTail:   true,
		MCUStart:   0,
		MCUEnd:     uint32(total),
		ModelFlags: flagsByte(flags.EdgePrediction, flags.DCGradient),
	}

	var stats [model.NumClasses]float64
	var release func()
	if opt.CollectStats {
		// The Figure-4 statistics attribute the *original* scan's Huffman
		// bits per class, which needs the whole coefficient planes: stats
		// runs use the buffered pipeline, so (unlike the streamed path)
		// their plane bytes must fit the encode budget up front.
		if pb := int64(f.CoefficientCount()) * 2; pb > encBudget {
			return nil, &jpeg.Error{Reason: jpeg.ReasonMemEncode,
				Detail: fmt.Sprintf("stats pipeline needs %d coefficient bytes > %d budget", pb, encBudget)}
		}
		s, sb, err := c.decodeScan(f)
		if err != nil {
			return nil, err
		}
		defer c.putScanBufs(sb)
		cont.Tail, cont.PadBit, cont.RSTCount = s.Tail, s.PadBit, uint32(s.RSTCount)
		var segErr error
		cont.Segments, cont.Streams, stats, release, segErr = c.EncodeSegmentsCtx(ctx, f, s, 0, total, nSeg, flags, true)
		if segErr != nil {
			release()
			return nil, segErr
		}
		res.OriginalClassBits = originalClassBits(f, s)
		if seekIndexEligible(opt, f) {
			// The buffered pipeline recorded a position at every MCU; the
			// index wants the row starts.
			idx := make([]jpeg.MCUPos, f.MCUsHigh)
			for r := range idx {
				idx[r] = s.Positions[r*f.MCUsWide]
			}
			cont.SeekIndex = idx
		}
	} else {
		// Streamed pipeline: the sequential scan decode overlaps the
		// parallel segment encodes, row by row, under the encode budget's
		// retained-row ceiling.
		var info *jpeg.StreamScanInfo
		var rowPos []jpeg.MCUPos
		var segErr error
		cont.Segments, cont.Streams, info, rowPos, release, segErr = c.encodeSegmentsStreamed(ctx, f, starts, total, flags, encBudget)
		if segErr != nil {
			release()
			return nil, segErr
		}
		cont.Tail, cont.PadBit, cont.RSTCount = info.Tail, info.PadBit, uint32(info.RSTCount)
		if seekIndexEligible(opt, f) {
			cont.SeekIndex = rowPos
		}
	}
	res.Segments = len(cont.Segments)
	res.ClassBits = stats

	comp, err := cont.marshal(c)
	release()
	if err != nil {
		return nil, err
	}
	res.Compressed = comp
	res.HeaderCompressed = len(comp)
	for _, st := range cont.Streams {
		res.HeaderCompressed -= len(st)
	}

	if opt.VerifyRoundtrip {
		back, err := c.DecodeCtx(ctx, comp, decBudget)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, &jpeg.Error{Reason: jpeg.ReasonRoundtrip, Detail: err.Error()}
		}
		if !bytes.Equal(back, data) {
			return nil, &jpeg.Error{Reason: jpeg.ReasonRoundtrip, Detail: "decode differs from input"}
		}
	}
	return res, nil
}

// EncodeTo compresses data and writes the container to w, returning the
// accounting Result with Compressed left nil. The container format needs
// every stream length before the first byte, so the write happens once the
// encode completes; the point of EncodeTo is composing with sockets and
// files without an extra copy at the call site.
func (c *Codec) EncodeTo(w io.Writer, data []byte, opt EncodeOptions) (*Result, error) {
	return c.EncodeToCtx(context.Background(), w, data, opt)
}

// EncodeToCtx is EncodeTo under a context (see EncodeCtx).
func (c *Codec) EncodeToCtx(ctx context.Context, w io.Writer, data []byte, opt EncodeOptions) (*Result, error) {
	res, err := c.EncodeCtx(ctx, data, opt)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(res.Compressed); err != nil {
		return nil, err
	}
	res.Compressed = nil
	return res, nil
}

// EncodeSegments arithmetic-codes the MCU range [mStart, mEnd) — which must
// be MCU-row aligned — as nSeg thread segments, in parallel. It returns the
// segment descriptors (with handover words taken from the scan's recorded
// positions), the per-segment streams, and per-class bit statistics when
// collectStats is set. The chunk layer composes this into per-chunk
// containers; Encode uses it for whole files.
func EncodeSegments(f *jpeg.File, s *jpeg.Scan, mStart, mEnd, nSeg int, flags model.Flags, collectStats bool) ([]Segment, [][]byte, [model.NumClasses]float64) {
	segs, streams, stats, release := (*Codec)(nil).EncodeSegments(f, s, mStart, mEnd, nSeg, flags, collectStats)
	release()
	return segs, streams, stats
}

// EncodeSegments is the pooled variant: segment model codecs and arithmetic
// encoders come from the codec's pools. The returned streams alias pooled
// encoder buffers; the caller must call release once the stream bytes have
// been copied out (normally by Container marshaling) and must not touch
// their contents afterwards.
func (c *Codec) EncodeSegments(f *jpeg.File, s *jpeg.Scan, mStart, mEnd, nSeg int, flags model.Flags, collectStats bool) ([]Segment, [][]byte, [model.NumClasses]float64, func()) {
	segs, streams, stats, release, _ := c.EncodeSegmentsCtx(context.Background(), f, s, mStart, mEnd, nSeg, flags, collectStats)
	return segs, streams, stats, release
}

// EncodeSegmentsCtx is EncodeSegments under a context: every segment
// goroutine checks ctx at each block row and aborts mid-segment on
// cancellation. On a non-nil error (ctx.Err()) the segment and stream slices
// are nil; release must still be called (it is always non-nil) so pooled
// state is recycled — an aborted encode leaves the codec as reusable as a
// completed one.
func (c *Codec) EncodeSegmentsCtx(ctx context.Context, f *jpeg.File, s *jpeg.Scan, mStart, mEnd, nSeg int, flags model.Flags, collectStats bool) ([]Segment, [][]byte, [model.NumClasses]float64, func(), error) {
	startRow := mStart / f.MCUsWide
	endRow := (mEnd + f.MCUsWide - 1) / f.MCUsWide
	starts := segmentRanges(f, nSeg, startRow, endRow)
	planes := planesOf(f, s.Coeff)
	done := ctx.Done()

	type segOut struct {
		bytes []byte
		stats *model.Stats
	}
	outs := make([]segOut, len(starts))
	codecs := make([]*model.Codec, len(starts))
	encs := make([]*arith.Encoder, len(starts))
	var wg sync.WaitGroup
	for i := range starts {
		start := starts[i]
		end := mEnd
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		wg.Add(1)
		go func(i, start, end int) {
			defer wg.Done()
			rs, re := rowRangesFor(f, start, end)
			codec := c.getSegCodec(planes, rs, re, flags)
			codecs[i] = codec
			if collectStats {
				codec.Stats = &model.Stats{}
			}
			// Pre-size the arithmetic encoder to this segment's share of the
			// original scan bytes — an upper bound on its output — so the
			// segment encode never reallocates mid-stream.
			if t := f.TotalMCUs(); t > 0 {
				codec.SetSizeHint(len(f.ScanData) * (end - start) / t)
			}
			e := c.getEncoder()
			encs[i] = e
			if err := codec.EncodeSegmentCtx(e, done); err != nil {
				// Interrupted: drop the partial stream; the pooled encoder
				// is Reset on next get, so nothing leaks into later calls.
				return
			}
			outs[i] = segOut{bytes: e.Flush(), stats: codec.Stats}
		}(i, start, end)
	}
	wg.Wait()

	release := func() {
		for i := range codecs {
			c.putSegCodec(codecs[i])
			c.putEncoder(encs[i])
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, [model.NumClasses]float64{}, release, err
	}
	var segs []Segment
	var streams [][]byte
	var stats [model.NumClasses]float64
	for i, start := range starts {
		var h Handover
		if start > 0 {
			h = handoverFromPos(s.Positions[start])
		}
		segs = append(segs, Segment{
			StartMCU: uint32(start),
			Handover: h,
			ArithLen: uint32(len(outs[i].bytes)),
		})
		streams = append(streams, outs[i].bytes)
		if outs[i].stats != nil {
			for k, b := range outs[i].stats.Bits {
				stats[k] += b
			}
		}
	}
	return segs, streams, stats, release, nil
}

// encodeSegmentsStreamed is the whole-file encode pipeline: the sequential
// Huffman scan decode runs in the calling goroutine and feeds block rows
// through bounded per-segment windows into the parallel segment encoders,
// so scan decode overlaps model encode instead of completing first, and no
// whole coefficient plane is ever materialized. The first component's rows
// stream through a two-row window; later components' rows are retained
// until the segment's planar traversal reaches them, with the total
// retained bytes capped by the encode budget (raised to the structural
// minimum when the budget is smaller — the conversion streams rather than
// failing). Handover words are recorded at every MCU-row start — the
// segment handovers are the subset at segment-start rows, and the full
// table (returned as rowPos when the image is small enough to index) is
// the seek index that makes DecodeRange segment-sized instead of
// file-sized.
//
// On success the returned streams alias pooled encoder buffers: marshal
// first, then call release. release is non-nil on every path.
func (cd *Codec) encodeSegmentsStreamed(ctx context.Context, f *jpeg.File, starts []int, total int, flags model.Flags, encBudget int64) (segs []Segment, streams [][]byte, info *jpeg.StreamScanInfo, rowPos []jpeg.MCUPos, release func(), err error) {
	nSeg := len(starts)
	ncomp := len(f.Components)
	done := ctx.Done()

	limit := encBudget
	if min := encodeMinGateBytes(f, starts, total); limit < min {
		limit = min
	}
	gate := newMemGate(limit)
	defer gate.close()

	recs := make([]*rowRecycler, ncomp)
	rowB := make([]int64, ncomp)
	for ci := range recs {
		rowB[ci] = rowBytes(f, ci)
		recs[ci] = &rowRecycler{n: f.Components[ci].BlocksWide * 64, cd: cd}
	}

	feeds := make([][]*feedRows, nSeg)
	segRowEnd := make([]int, nSeg)
	codecs := make([]*model.Codec, nSeg)
	encs := make([]*arith.Encoder, nSeg)
	outs := make([][]byte, nSeg)
	var wg sync.WaitGroup
	for i := range starts {
		start := starts[i]
		end := total
		if i+1 < nSeg {
			end = starts[i+1]
		}
		segRowEnd[i] = (end + f.MCUsWide - 1) / f.MCUsWide
		rs, re := rowRangesFor(f, start, end)
		fs := make([]*feedRows, ncomp)
		planes := make([]model.ComponentPlane, ncomp)
		for ci := range fs {
			fs[ci] = newFeedRows(rs[ci], recs[ci], gate, rowB[ci])
			comp := &f.Components[ci]
			planes[ci] = model.ComponentPlane{BlocksWide: comp.BlocksWide,
				BlocksHigh: comp.BlocksHigh, Quant: &f.Quant[comp.TQ], Rows: fs[ci]}
		}
		feeds[i] = fs
		codec := cd.getSegCodec(planes, rs, re, flags)
		if total > 0 {
			codec.SetSizeHint(len(f.ScanData) * (end - start) / total)
		}
		codecs[i] = codec
		e := cd.getEncoder()
		encs[i] = e
		wg.Add(1)
		go func(codec *model.Codec, e *arith.Encoder, fs []*feedRows, i int) {
			defer wg.Done()
			err := codec.EncodeSegmentCtx(e, done)
			// Recycle whatever the windows still hold (the model keeps its
			// last two rows; an interrupt leaves more) so the gate frees up.
			for _, fr := range fs {
				fr.drain()
			}
			if err == nil {
				outs[i] = e.Flush()
			}
		}(codec, e, fs, i)
	}

	abortAll := func() {
		gate.abort()
		for _, fs := range feeds {
			for _, fr := range fs {
				fr.abort()
			}
		}
	}
	// Wake blocked producers and consumers when the context fires; the
	// per-row checkpoints alone cannot rouse a goroutine parked on the
	// gate or an empty feed.
	stop := make(chan struct{})
	if done != nil {
		go func() {
			select {
			case <-done:
				abortAll()
			case <-stop:
			}
		}()
	}

	router := &encodeRouter{
		f: f, gate: gate, recs: recs, feeds: feeds,
		segRowEnd: segRowEnd, segOf: make([]int, ncomp), rowB: rowB, ctx: ctx,
	}
	// Record a handover at every MCU-row start when the image is small
	// enough to index; otherwise only at segment starts, as before. Segment
	// starts are always row-aligned (segmentRanges), so the per-segment
	// handovers are a subset of the row table.
	rows := f.MCUsHigh
	indexable := rows > 0 && rows <= seekIndexMaxRows
	posAt := starts
	if indexable {
		posAt = make([]int, rows)
		for r := range posAt {
			posAt[r] = r * f.MCUsWide
		}
	}
	posOut := make([]jpeg.MCUPos, len(posAt))
	info, perr := jpeg.DecodeScanStream(f, router, posAt, posOut)
	if perr != nil {
		abortAll()
	}
	wg.Wait()
	close(stop)
	for _, rc := range recs {
		rc.drainTo(cd)
	}
	release = func() {
		for i := range codecs {
			cd.putSegCodec(codecs[i])
			cd.putEncoder(encs[i])
		}
	}
	if perr != nil {
		if sink := jpeg.SinkErr(perr); sink != nil {
			// The sink refused a row: that is this conversion's context
			// error, not scan corruption.
			perr = sink
		}
		return nil, nil, nil, nil, release, perr
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, nil, release, err
	}
	for i, start := range starts {
		pos := posOut[i]
		if indexable {
			pos = posOut[start/f.MCUsWide]
		}
		var h Handover
		if start > 0 {
			h = handoverFromPos(pos)
		}
		segs = append(segs, Segment{
			StartMCU: uint32(start),
			Handover: h,
			ArithLen: uint32(len(outs[i])),
		})
		streams = append(streams, outs[i])
	}
	if indexable {
		rowPos = posOut
	}
	return segs, streams, info, rowPos, release, nil
}

// Decode reconstructs the original bytes from a Lepton container.
// memBudget bounds coefficient memory (0 = default).
func Decode(comp []byte, memBudget int64) ([]byte, error) {
	return (*Codec)(nil).Decode(comp, memBudget)
}

// Decode reconstructs the original bytes, drawing decode state from the
// codec's pools.
func (c *Codec) Decode(comp []byte, memBudget int64) ([]byte, error) {
	return c.DecodeCtx(context.Background(), comp, memBudget)
}

// DecodeCtx is Decode under a context (see DecodeToCtx).
func (c *Codec) DecodeCtx(ctx context.Context, comp []byte, memBudget int64) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.DecodeToCtx(ctx, &buf, comp, memBudget); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTo streams the reconstruction into w segment by segment: output for
// segment k is written as soon as segments 0..k have completed, which gives
// the low time-to-first-byte the paper's file servers need (§3.4).
func DecodeTo(w io.Writer, comp []byte, memBudget int64) error {
	return (*Codec)(nil).DecodeTo(w, comp, memBudget)
}

// DecodeTo is the pooled streaming decode: coefficient planes, per-segment
// model codecs, and the container-header decompressor are reused across
// calls on the same codec.
func (cd *Codec) DecodeTo(w io.Writer, comp []byte, memBudget int64) error {
	return cd.DecodeToCtx(context.Background(), w, comp, memBudget)
}

// DecodeToCtx is the streaming decode under a context: cancellation is
// observed at every block row of the arithmetic decode in each segment
// goroutine and between emitted segments, so an abandoned decompression
// frees its worker promptly. A cancelled decode may already have written
// part of the output to w; the error is ctx.Err().
func (cd *Codec) DecodeToCtx(ctx context.Context, w io.Writer, comp []byte, memBudget int64) error {
	if memBudget == 0 {
		memBudget = DefaultMemDecodeBudget
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c, headBuf, err := unmarshal(comp, cd)
	if err != nil {
		return err
	}
	defer cd.putBuf(headBuf)
	if c.Mode == ModeRaw {
		// Enforce the recorded size before the first write: callers frame
		// responses from the container header, so a mismatch must fail
		// loudly instead of desyncing the caller's framing.
		if uint32(len(c.Raw)) != c.OutputSize {
			return badContainer("raw payload %d bytes, header says %d", len(c.Raw), c.OutputSize)
		}
		_, err := w.Write(c.Raw)
		return err
	}
	if c.Mode == ModeProgressive {
		return decodeProgressiveContainer(ctx, w, c, memBudget)
	}
	f, err := jpeg.ParseHeader(c.JPEGHeader)
	if err != nil {
		return fmt.Errorf("core: stored header: %w", err)
	}
	// The streaming decoder holds one (V+1)-row coefficient window per
	// component per segment — that is what the §5.1 ceiling bounds. Tall
	// over-"budget" images stream through; only absurd width × segment
	// products are rejected.
	if w := DecodeWindowBytes(f, len(c.Segments)); w > memBudget {
		return &jpeg.Error{Reason: jpeg.ReasonMemDecode,
			Detail: fmt.Sprintf("decode row windows need %d bytes > %d budget", w, memBudget)}
	}
	total := f.TotalMCUs()
	if c.MCUEnd > uint32(total) || c.MCUStart > c.MCUEnd {
		return badContainer("MCU range %d..%d of %d", c.MCUStart, c.MCUEnd, total)
	}
	// Every block costs at least two bits in the regenerated scan (a DC
	// code and an EOB), so a container claiming more blocks than its
	// recorded output size could hold is corrupt. Without this check a
	// crafted header could demand minutes of decode work for a tiny
	// payload — the streaming windows bound memory, this bounds CPU. One
	// MCU row of slack: a chunk's row-aligned range may legitimately spill
	// up to a row past its byte range (the spill is clipped here and
	// carried in the next chunk's prepend).
	blocks := int64(c.MCUEnd-c.MCUStart) * int64(f.BlocksPerMCU())
	rowBlocks := int64(f.MCUsWide) * int64(f.BlocksPerMCU())
	if blocks > int64(c.OutputSize)*4+rowBlocks {
		return badContainer("%d blocks cannot fit in %d output bytes", blocks, c.OutputSize)
	}

	// Every segment runs its whole pipeline fused in its own goroutine:
	// each block row is arithmetic-decoded into a sliding ring window and
	// immediately Huffman re-encoded (via the planar row queues of
	// jpeg.StreamScanEncoder), so per-segment coefficient memory is a few
	// rows, not the segment's plane. Output is streamed in segment order
	// as each completes, so the time-to-first-byte is governed by segment
	// 0 alone, not by the slowest segment (§3.4's streaming requirement).
	flags := model.Flags{
		EdgePrediction: c.ModelFlags&1 != 0,
		DCGradient:     c.ModelFlags&2 != 0,
	}
	cancelled := ctx.Done()
	done := make([]chan segResult, len(c.Segments))
	for i := range c.Segments {
		done[i] = make(chan segResult, 1)
		go func(i int) {
			start := int(c.Segments[i].StartMCU)
			end := int(c.MCUEnd)
			if i+1 < len(c.Segments) {
				end = int(c.Segments[i+1].StartMCU)
			}
			done[i] <- cd.decodeSegmentStreamed(ctx, cancelled, f, c, i, start, end, total, flags)
		}(i)
	}

	// Stream out in order as segments complete.
	written := 0
	emit := func(b []byte) error {
		if written+len(b) > int(c.OutputSize) {
			b = b[:int(c.OutputSize)-written]
		}
		n, err := w.Write(b)
		written += n
		return err
	}
	var firstErr error
	if c.EmitHeader {
		if err := emit(c.JPEGHeader); err != nil {
			firstErr = err
		}
	}
	if firstErr == nil && len(c.Prepend) > 0 {
		if err := emit(c.Prepend); err != nil {
			firstErr = err
		}
	}
	for i := range done {
		r := <-done[i]
		if firstErr != nil {
			continue // drain remaining goroutines
		}
		if r.err != nil {
			firstErr = r.err
			continue
		}
		if err := emit(r.bytes); err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if c.EmitTail {
		if err := emit(c.Trailer); err != nil {
			return err
		}
	}
	if written != int(c.OutputSize) {
		return badContainer("produced %d bytes, expected %d", written, c.OutputSize)
	}
	return nil
}

// segResult is one decoded segment's regenerated scan bytes (or error).
type segResult struct {
	bytes []byte
	err   error
}

// decodeSegmentStreamed runs one thread segment's fused pipeline: the
// arithmetic decode writes block rows into a ring window sized to the
// model's two-row context (plus the MCU row the scan re-encoder groups),
// and the OnRow hook hands every completed MCU row group straight to the
// streaming scan encoder, which recycles nothing coefficient-shaped —
// what it retains per segment is Huffman bits, roughly output-sized.
func (cd *Codec) decodeSegmentStreamed(ctx context.Context, cancelled <-chan struct{}, f *jpeg.File, c *Container, i, start, end, total int, flags model.Flags) segResult {
	rs, re := rowRangesFor(f, start, end)
	ncomp := len(f.Components)

	// Carve every component's ring out of one pooled slab.
	winBytes := DecodeWindowBytes(f, 1)
	slab := cd.getRowBuf(int(winBytes / 2))
	defer cd.putRowBuf(slab)
	grabCoeffBytes(winBytes)
	defer dropCoeffBytes(winBytes)
	rings := make([]*ringRows, ncomp)
	planes := make([]model.ComponentPlane, ncomp)
	off := 0
	for ci := 0; ci < ncomp; ci++ {
		comp := &f.Components[ci]
		n := comp.BlocksWide * 64
		bufs := make([][]int16, windowRowsFor(vEff(f, ci)))
		for k := range bufs {
			bufs[k] = slab[off : off+n : off+n]
			off += n
		}
		rings[ci] = newRingRows(bufs)
		planes[ci] = model.ComponentPlane{BlocksWide: comp.BlocksWide,
			BlocksHigh: comp.BlocksHigh, Quant: &f.Quant[comp.TQ], Rows: rings[ci]}
	}

	codec := cd.getSegCodec(planes, rs, re, flags)
	defer cd.putSegCodec(codec)
	sbufs := cd.getStreamBufs()
	se, err := jpeg.NewStreamScanEncoder(f, c.PadBit, int(c.RSTCount), start, end,
		c.Segments[i].Handover.toPos(0), sbufs)
	if err != nil {
		cd.putStreamBufs(sbufs)
		return segResult{err: err}
	}
	// Recycle the queue storage on every path, including cancelled or
	// corrupt segments — the bytes Finish returns alias the sequential
	// writer, never the queues, so release is always safe here.
	defer func() {
		se.ReleaseBuffers(sbufs)
		cd.putStreamBufs(sbufs)
	}()
	group := make([][]int16, 0, 4)
	codec.OnRow = func(ci, row int) error {
		v := vEff(f, ci)
		if (row+1)%v != 0 {
			return nil // MCU row group not complete yet
		}
		group = group[:0]
		for r := row - v + 1; r <= row; r++ {
			group = append(group, rings[ci].peek(r))
		}
		return se.ConsumeGroup(ci, row/v, group)
	}

	d := arith.NewDecoder(c.Streams[i])
	if err := codec.DecodeSegmentCtx(d, cancelled); err != nil {
		if errors.Is(err, model.ErrInterrupted) {
			return segResult{err: ctx.Err()}
		}
		return segResult{err: fmt.Errorf("core: segment decode: %w", err)}
	}
	if err := d.Err(); err != nil {
		return segResult{err: fmt.Errorf("core: segment decode: %w", err)}
	}
	if err := ctx.Err(); err != nil {
		return segResult{err: err}
	}
	// Only the true end of the scan gets padding and the verbatim tail; a
	// chunk ending mid-scan leaves its final partial byte to the next
	// chunk's prepend data.
	b, err := se.Finish(c.Tail, end == total)
	if err != nil {
		return segResult{err: fmt.Errorf("core: segment encode: %w", err)}
	}
	return segResult{bytes: b}
}

// originalClassBits attributes the original scan's Huffman bits to
// coefficient classes for Figure 4. ZRL runs are attributed to the class of
// the nonzero coefficient that follows; EOB to the 7x7 class.
func originalClassBits(f *jpeg.File, s *jpeg.Scan) [model.NumClasses]int64 {
	var out [model.NumClasses]int64
	enc := newBitCounter(f)
	if enc == nil {
		return out
	}
	for ci := range f.Components {
		c := &f.Components[ci]
		blocks := c.BlocksWide * c.BlocksHigh
		var prevDC int16
		for b := 0; b < blocks; b++ {
			blk := s.Coeff[ci][b*64 : b*64+64]
			out[model.ClassDC] += enc.dcBits(ci, int32(blk[0])-int32(prevDC))
			prevDC = blk[0]
			run := 0
			pendingZRL := int64(0)
			for k := 1; k < 64; k++ {
				pos := zigzagPos(k)
				v := int32(blk[pos])
				if v == 0 {
					run++
					continue
				}
				for run >= 16 {
					pendingZRL += enc.acSymBits(ci, 0xF0)
					run -= 16
				}
				cls := model.Class77
				if pos < 8 || pos%8 == 0 {
					cls = model.ClassEdge
				}
				out[cls] += pendingZRL + enc.acBits(ci, run, v)
				pendingZRL = 0
				run = 0
			}
			if run > 0 {
				out[model.Class77] += enc.acSymBits(ci, 0x00)
			}
		}
	}
	return out
}
