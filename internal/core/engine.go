package core

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"lepton/internal/arith"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

// Default memory budgets (paper §5.1, §6.2). The deployed system streams
// row-by-row with a 24 MiB decode ceiling; this implementation holds whole
// coefficient planes, so the budgets bound those allocations instead. The
// mechanism — reject before allocating, classified as a memory exit code —
// is what the §6.2 table exercises.
const (
	DefaultMemDecodeBudget = 24 << 20
	DefaultMemEncodeBudget = 178 << 20
)

// EncodeOptions tunes the encoder.
type EncodeOptions struct {
	// Flags select model predictors (ablations, §4.3); nil means the
	// deployed configuration (everything on).
	Flags *model.Flags
	// ForceSegments overrides the file-size-based thread segment count
	// (1..64); 0 selects automatically (Figure 7's cutoffs).
	ForceSegments int
	// CollectStats fills Result.ClassBits for Figure 4.
	CollectStats bool
	// VerifyRoundtrip decodes the result and compares with the input
	// before returning; mismatch is reported as a roundtrip failure. This
	// mirrors production admission control (§5.7).
	VerifyRoundtrip bool
	// MemDecodeBudget / MemEncodeBudget bound coefficient memory; 0 means
	// the defaults above.
	MemDecodeBudget int64
	MemEncodeBudget int64
	// SingleModel tallies statistic bins across the whole image in one
	// segment regardless of size — the "Lepton 1-way" configuration of §4.
	SingleModel bool
	// AllowProgressive enables the spectral-selection progressive path.
	// Production kept this off (§6.2: "intentionally disabled ... for
	// simplicity"); it is the optional capability the binary had.
	AllowProgressive bool
	// AllowCMYK enables four-component files ("an extra model for the 4th
	// color channel", §6.2) — also off in production.
	AllowCMYK bool
}

// Result is the encoder's output plus accounting.
type Result struct {
	Compressed []byte
	// Segments is the thread segment count used.
	Segments int
	// ClassBits estimates compressed bits per coefficient class (Figure 4),
	// filled when CollectStats is set.
	ClassBits [model.NumClasses]float64
	// OriginalClassBits counts the Huffman-coded bits per class in the
	// original scan (Figure 4's "original bytes" column).
	OriginalClassBits [model.NumClasses]int64
	// HeaderOriginal and HeaderCompressed are the verbatim JPEG header size
	// and its zlib-compressed size.
	HeaderOriginal   int
	HeaderCompressed int
}

// SegmentCountFor returns the automatic thread-segment count for an input
// of n bytes, following the multithreading cutoffs visible in Figures 7/8.
func SegmentCountFor(n int) int {
	switch {
	case n < 100<<10:
		return 1
	case n < 400<<10:
		return 2
	case n < 3<<20/2:
		return 4
	default:
		return 8
	}
}

// segmentRanges splits the MCU rows [startRow, endRow) into nSeg contiguous
// ranges, returning the start MCU of each segment. Fewer ranges are returned
// when there are not enough MCU rows.
func segmentRanges(f *jpeg.File, nSeg, startRow, endRow int) []int {
	rows := endRow - startRow
	if nSeg > rows {
		nSeg = rows
	}
	if nSeg < 1 {
		nSeg = 1
	}
	starts := make([]int, 0, nSeg)
	for i := 0; i < nSeg; i++ {
		r := startRow + i*rows/nSeg
		starts = append(starts, r*f.MCUsWide)
	}
	return starts
}

// planesOf adapts a decoded scan to the model's view.
func planesOf(f *jpeg.File, coeff [][]int16) []model.ComponentPlane {
	var planes []model.ComponentPlane
	for i := range f.Components {
		c := &f.Components[i]
		planes = append(planes, model.ComponentPlane{
			BlocksWide: c.BlocksWide,
			BlocksHigh: c.BlocksHigh,
			Quant:      &f.Quant[c.TQ],
			Coeff:      coeff[i],
		})
	}
	return planes
}

// rowRangesFor converts an MCU range [startMCU, endMCU) (row-aligned) to
// per-component block-row ranges.
func rowRangesFor(f *jpeg.File, startMCU, endMCU int) (rs, re []int) {
	startRow := startMCU / f.MCUsWide
	endRow := (endMCU + f.MCUsWide - 1) / f.MCUsWide
	for i := range f.Components {
		c := &f.Components[i]
		v := c.V
		if len(f.Components) == 1 {
			v = 1
		}
		r0 := startRow * v
		r1 := endRow * v
		if r1 > c.BlocksHigh {
			r1 = c.BlocksHigh
		}
		rs = append(rs, r0)
		re = append(re, r1)
	}
	return rs, re
}

// Encode compresses one whole baseline JPEG into a Lepton container.
func Encode(data []byte, opt EncodeOptions) (*Result, error) {
	encBudget := opt.MemEncodeBudget
	if encBudget == 0 {
		encBudget = DefaultMemEncodeBudget
	}
	decBudget := opt.MemDecodeBudget
	if decBudget == 0 {
		decBudget = DefaultMemDecodeBudget
	}
	f, err := jpeg.ParseOpt(data, encBudget, opt.AllowCMYK)
	if err != nil {
		if opt.AllowProgressive && jpeg.ReasonOf(err) == jpeg.ReasonProgressive {
			return encodeProgressive(data, opt, encBudget, decBudget)
		}
		return nil, err
	}
	// The decoder will have to hold the same planes: enforce its budget at
	// encode time so every stored file is decodable within budget (§6.2).
	if int64(f.CoefficientCount())*2 > decBudget {
		return nil, &jpeg.Error{Reason: jpeg.ReasonMemDecode,
			Detail: fmt.Sprintf("decode would need %d coefficient bytes", f.CoefficientCount()*2)}
	}
	s, err := jpeg.DecodeScan(f)
	if err != nil {
		return nil, err
	}

	flags := model.DefaultFlags()
	if opt.Flags != nil {
		flags = *opt.Flags
	}
	nSeg := opt.ForceSegments
	if opt.SingleModel {
		nSeg = 1
	}
	if nSeg == 0 {
		nSeg = SegmentCountFor(len(data))
	}
	total := f.TotalMCUs()

	res := &Result{HeaderOriginal: len(f.Header)}
	c := &Container{
		Mode:       ModeLepton,
		OutputSize: uint32(len(data)),
		JPEGHeader: f.Header,
		Trailer:    f.Trailer,
		Tail:       s.Tail,
		PadBit:     s.PadBit,
		EmitHeader: true,
		EmitTail:   true,
		RSTCount:   uint32(s.RSTCount),
		MCUStart:   0,
		MCUEnd:     uint32(total),
		ModelFlags: flagsByte(flags.EdgePrediction, flags.DCGradient),
	}

	var stats [model.NumClasses]float64
	c.Segments, c.Streams, stats = EncodeSegments(f, s, 0, total, nSeg, flags, opt.CollectStats)
	res.Segments = len(c.Segments)
	res.ClassBits = stats
	if opt.CollectStats {
		res.OriginalClassBits = originalClassBits(f, s)
	}

	comp, err := c.Marshal()
	if err != nil {
		return nil, err
	}
	res.Compressed = comp
	res.HeaderCompressed = len(comp)
	for _, st := range c.Streams {
		res.HeaderCompressed -= len(st)
	}

	if opt.VerifyRoundtrip {
		back, err := Decode(comp, decBudget)
		if err != nil {
			return nil, &jpeg.Error{Reason: jpeg.ReasonRoundtrip, Detail: err.Error()}
		}
		if !bytes.Equal(back, data) {
			return nil, &jpeg.Error{Reason: jpeg.ReasonRoundtrip, Detail: "decode differs from input"}
		}
	}
	return res, nil
}

// EncodeSegments arithmetic-codes the MCU range [mStart, mEnd) — which must
// be MCU-row aligned — as nSeg thread segments, in parallel. It returns the
// segment descriptors (with handover words taken from the scan's recorded
// positions), the per-segment streams, and per-class bit statistics when
// collectStats is set. The chunk layer composes this into per-chunk
// containers; Encode uses it for whole files.
func EncodeSegments(f *jpeg.File, s *jpeg.Scan, mStart, mEnd, nSeg int, flags model.Flags, collectStats bool) ([]Segment, [][]byte, [model.NumClasses]float64) {
	startRow := mStart / f.MCUsWide
	endRow := (mEnd + f.MCUsWide - 1) / f.MCUsWide
	starts := segmentRanges(f, nSeg, startRow, endRow)

	type segOut struct {
		bytes []byte
		stats *model.Stats
	}
	outs := make([]segOut, len(starts))
	var wg sync.WaitGroup
	for i := range starts {
		start := starts[i]
		end := mEnd
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		wg.Add(1)
		go func(i, start, end int) {
			defer wg.Done()
			rs, re := rowRangesFor(f, start, end)
			codec := model.NewCodec(planesOf(f, s.Coeff), rs, re, flags)
			if collectStats {
				codec.Stats = &model.Stats{}
			}
			e := arith.NewEncoder()
			codec.EncodeSegment(e)
			outs[i] = segOut{bytes: e.Flush(), stats: codec.Stats}
		}(i, start, end)
	}
	wg.Wait()

	var segs []Segment
	var streams [][]byte
	var stats [model.NumClasses]float64
	for i, start := range starts {
		var h Handover
		if start > 0 {
			h = handoverFromPos(s.Positions[start])
		}
		segs = append(segs, Segment{
			StartMCU: uint32(start),
			Handover: h,
			ArithLen: uint32(len(outs[i].bytes)),
		})
		streams = append(streams, outs[i].bytes)
		if outs[i].stats != nil {
			for k, b := range outs[i].stats.Bits {
				stats[k] += b
			}
		}
	}
	return segs, streams, stats
}

// Decode reconstructs the original bytes from a Lepton container.
// memBudget bounds coefficient memory (0 = default).
func Decode(comp []byte, memBudget int64) ([]byte, error) {
	var buf bytes.Buffer
	if err := DecodeTo(&buf, comp, memBudget); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTo streams the reconstruction into w segment by segment: output for
// segment k is written as soon as segments 0..k have completed, which gives
// the low time-to-first-byte the paper's file servers need (§3.4).
func DecodeTo(w io.Writer, comp []byte, memBudget int64) error {
	if memBudget == 0 {
		memBudget = DefaultMemDecodeBudget
	}
	c, err := Unmarshal(comp)
	if err != nil {
		return err
	}
	if c.Mode == ModeRaw {
		_, err := w.Write(c.Raw)
		return err
	}
	if c.Mode == ModeProgressive {
		return decodeProgressiveContainer(w, c, memBudget)
	}
	f, err := jpeg.ParseHeader(c.JPEGHeader)
	if err != nil {
		return fmt.Errorf("core: stored header: %w", err)
	}
	if int64(f.CoefficientCount())*2 > memBudget {
		return &jpeg.Error{Reason: jpeg.ReasonMemDecode,
			Detail: fmt.Sprintf("%d coefficient bytes exceed budget", f.CoefficientCount()*2)}
	}
	total := f.TotalMCUs()
	if c.MCUEnd > uint32(total) || c.MCUStart > c.MCUEnd {
		return badContainer("MCU range %d..%d of %d", c.MCUStart, c.MCUEnd, total)
	}
	coeff := make([][]int16, len(f.Components))
	for i := range f.Components {
		comp := &f.Components[i]
		coeff[i] = make([]int16, comp.BlocksWide*comp.BlocksHigh*64)
	}

	// Every segment runs its whole pipeline — arithmetic decode of
	// coefficients, then Huffman re-encode seeded from its handover word —
	// in its own goroutine. Output is streamed in segment order as each
	// completes, so the time-to-first-byte is governed by segment 0 alone,
	// not by the slowest segment (§3.4's streaming requirement).
	scan := &jpeg.Scan{File: f, Coeff: coeff, PadBit: c.PadBit, RSTCount: int(c.RSTCount), Tail: c.Tail}
	flags := model.Flags{
		EdgePrediction: c.ModelFlags&1 != 0,
		DCGradient:     c.ModelFlags&2 != 0,
	}
	type segResult struct {
		bytes []byte
		err   error
	}
	done := make([]chan segResult, len(c.Segments))
	for i := range c.Segments {
		done[i] = make(chan segResult, 1)
		go func(i int) {
			start := int(c.Segments[i].StartMCU)
			end := int(c.MCUEnd)
			if i+1 < len(c.Segments) {
				end = int(c.Segments[i+1].StartMCU)
			}
			rs, re := rowRangesFor(f, start, end)
			codec := model.NewCodec(planesOf(f, coeff), rs, re, flags)
			d := arith.NewDecoder(c.Streams[i])
			if err := codec.DecodeSegment(d); err != nil {
				done[i] <- segResult{err: fmt.Errorf("core: segment decode: %w", err)}
				return
			}
			if err := d.Err(); err != nil {
				done[i] <- segResult{err: fmt.Errorf("core: segment decode: %w", err)}
				return
			}
			e, err := jpeg.NewScanEncoder(f, c.PadBit, int(c.RSTCount))
			if err != nil {
				done[i] <- segResult{err: err}
				return
			}
			e.Seed(c.Segments[i].Handover.toPos(0))
			if err := e.EncodeMCURange(scan, start, end); err != nil {
				done[i] <- segResult{err: fmt.Errorf("core: segment encode: %w", err)}
				return
			}
			if end == total {
				// Only the true end of the scan gets padding and the
				// verbatim tail; a chunk ending mid-scan leaves its final
				// partial byte to the next chunk's prepend data.
				e.Finish(c.Tail)
			}
			done[i] <- segResult{bytes: e.Bytes()}
		}(i)
	}

	// Stream out in order as segments complete.
	written := 0
	emit := func(b []byte) error {
		if written+len(b) > int(c.OutputSize) {
			b = b[:int(c.OutputSize)-written]
		}
		n, err := w.Write(b)
		written += n
		return err
	}
	var firstErr error
	if c.EmitHeader {
		if err := emit(c.JPEGHeader); err != nil {
			firstErr = err
		}
	}
	if firstErr == nil && len(c.Prepend) > 0 {
		if err := emit(c.Prepend); err != nil {
			firstErr = err
		}
	}
	for i := range done {
		r := <-done[i]
		if firstErr != nil {
			continue // drain remaining goroutines
		}
		if r.err != nil {
			firstErr = r.err
			continue
		}
		if err := emit(r.bytes); err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if c.EmitTail {
		if err := emit(c.Trailer); err != nil {
			return err
		}
	}
	if written != int(c.OutputSize) {
		return badContainer("produced %d bytes, expected %d", written, c.OutputSize)
	}
	return nil
}

// originalClassBits attributes the original scan's Huffman bits to
// coefficient classes for Figure 4. ZRL runs are attributed to the class of
// the nonzero coefficient that follows; EOB to the 7x7 class.
func originalClassBits(f *jpeg.File, s *jpeg.Scan) [model.NumClasses]int64 {
	var out [model.NumClasses]int64
	enc := newBitCounter(f)
	if enc == nil {
		return out
	}
	for ci := range f.Components {
		c := &f.Components[ci]
		blocks := c.BlocksWide * c.BlocksHigh
		var prevDC int16
		for b := 0; b < blocks; b++ {
			blk := s.Coeff[ci][b*64 : b*64+64]
			out[model.ClassDC] += enc.dcBits(ci, int32(blk[0])-int32(prevDC))
			prevDC = blk[0]
			run := 0
			pendingZRL := int64(0)
			for k := 1; k < 64; k++ {
				pos := zigzagPos(k)
				v := int32(blk[pos])
				if v == 0 {
					run++
					continue
				}
				for run >= 16 {
					pendingZRL += enc.acSymBits(ci, 0xF0)
					run -= 16
				}
				cls := model.Class77
				if pos < 8 || pos%8 == 0 {
					cls = model.ClassEdge
				}
				out[cls] += pendingZRL + enc.acBits(ci, run, v)
				pendingZRL = 0
				run = 0
			}
			if run > 0 {
				out[model.Class77] += enc.acSymBits(ci, 0x00)
			}
		}
	}
	return out
}
