package core_test

import (
	"bytes"
	"testing"

	"lepton/internal/core"
	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

func mustGen(t testing.TB, seed int64, w, h int) []byte {
	t.Helper()
	data, err := imagegen.Generate(seed, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func roundTrip(t *testing.T, data []byte, opt core.EncodeOptions) *core.Result {
	t.Helper()
	res, err := core.Encode(data, opt)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := core.Decode(res.Compressed, 0)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(back, data) {
		i := 0
		for i < len(back) && i < len(data) && back[i] == data[i] {
			i++
		}
		t.Fatalf("round trip differs at byte %d (lens %d vs %d)", i, len(back), len(data))
	}
	return res
}

func TestEncodeDecodeBasic(t *testing.T) {
	data := mustGen(t, 1, 160, 120)
	res := roundTrip(t, data, core.EncodeOptions{})
	if len(res.Compressed) >= len(data) {
		t.Fatalf("no compression: %d >= %d", len(res.Compressed), len(data))
	}
	t.Logf("savings: %.1f%%", 100*(1-float64(len(res.Compressed))/float64(len(data))))
}

func TestEncodeDecodeMatrix(t *testing.T) {
	seeds := []int64{10, 11, 12, 13, 14, 15, 16, 17}
	sizes := [][2]int{{64, 64}, {200, 152}, {33, 57}, {400, 304}, {16, 16}}
	for _, seed := range seeds[:4] {
		for _, sz := range sizes {
			data := mustGen(t, seed, sz[0], sz[1])
			roundTrip(t, data, core.EncodeOptions{})
		}
	}
}

func TestEncodeVerifyRoundtripOption(t *testing.T) {
	data := mustGen(t, 2, 96, 96)
	if _, err := core.Encode(data, core.EncodeOptions{VerifyRoundtrip: true}); err != nil {
		t.Fatalf("verified encode failed: %v", err)
	}
}

func TestMultiSegment(t *testing.T) {
	data := mustGen(t, 3, 512, 384)
	for _, n := range []int{1, 2, 4, 8} {
		res := roundTrip(t, data, core.EncodeOptions{ForceSegments: n})
		if res.Segments != n {
			t.Fatalf("segments = %d, want %d", res.Segments, n)
		}
	}
}

func TestSegmentsReduceCompression(t *testing.T) {
	// More segments -> independent models -> slightly worse compression
	// (§3.4). Allow noise but the 1-segment version must not be bigger than
	// the 8-segment version by any meaningful margin.
	data := mustGen(t, 4, 512, 512)
	r1, err := core.Encode(data, core.EncodeOptions{ForceSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := core.Encode(data, core.EncodeOptions{ForceSegments: 8})
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(r1.Compressed)) > float64(len(r8.Compressed))*1.005 {
		t.Fatalf("1 segment (%d) much bigger than 8 segments (%d)",
			len(r1.Compressed), len(r8.Compressed))
	}
}

func TestSingleModelMode(t *testing.T) {
	data := mustGen(t, 5, 512, 384)
	res := roundTrip(t, data, core.EncodeOptions{SingleModel: true})
	if res.Segments != 1 {
		t.Fatalf("single model used %d segments", res.Segments)
	}
}

func TestAblationFlags(t *testing.T) {
	data := mustGen(t, 6, 256, 256)
	full := roundTrip(t, data, func() core.EncodeOptions { f := model.DefaultFlags(); return core.EncodeOptions{Flags: &f} }())
	noDC := roundTrip(t, data, core.EncodeOptions{Flags: &model.Flags{EdgePrediction: true, DCGradient: false}})
	noEdge := roundTrip(t, data, core.EncodeOptions{Flags: &model.Flags{EdgePrediction: false, DCGradient: true}})
	// The full model should be at least as good as each ablation on a
	// photographic image (small tolerance for noise).
	if float64(len(full.Compressed)) > 1.01*float64(len(noDC.Compressed)) {
		t.Errorf("DC gradient prediction hurt: %d vs %d", len(full.Compressed), len(noDC.Compressed))
	}
	if float64(len(full.Compressed)) > 1.01*float64(len(noEdge.Compressed)) {
		t.Errorf("edge prediction hurt: %d vs %d", len(full.Compressed), len(noEdge.Compressed))
	}
}

func TestStatsBreakdown(t *testing.T) {
	data := mustGen(t, 7, 320, 240)
	res, err := core.Encode(data, core.EncodeOptions{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	var orig, comp int64
	for c := 0; c < model.NumClasses; c++ {
		orig += res.OriginalClassBits[c]
		comp += int64(res.ClassBits[c])
	}
	if orig == 0 || comp == 0 {
		t.Fatal("empty stats")
	}
	// Compressed coefficient bits must be smaller than original Huffman
	// bits overall.
	if comp >= orig {
		t.Fatalf("no coefficient-level savings: %d >= %d", comp, orig)
	}
	// The scan account must roughly match the actual scan size.
	f, _ := jpeg.Parse(data, 0)
	scanBits := int64(len(f.ScanData)) * 8
	if orig < scanBits*8/10 || orig > scanBits*11/10 {
		t.Fatalf("original class bits %d vs scan bits %d", orig, scanBits)
	}
}

func TestDecodeRejectsCorruptContainer(t *testing.T) {
	data := mustGen(t, 8, 128, 128)
	res, err := core.Encode(data, core.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comp := res.Compressed
	// Header corruptions must error, never panic.
	for _, i := range []int{0, 1, 2, 3, 5, 20, 25} {
		if i < len(comp) {
			bad := append([]byte(nil), comp...)
			bad[i] ^= 0xFF
			_, _ = core.Decode(bad, 0)
		}
	}
	// Truncations. The container ends with an optional seek-index section
	// that readers must tolerate losing (it is advisory: a damaged index
	// falls back to full decode), so the must-fail region is everything up
	// to the end of the arithmetic streams — the index-less encoding's
	// exact length.
	noIdx, err := core.Encode(data, core.EncodeOptions{DisableSeekIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	streamEnd := len(noIdx.Compressed)
	if streamEnd >= len(comp) {
		t.Fatalf("expected a trailing seek index: %d >= %d", streamEnd, len(comp))
	}
	for _, n := range []int{0, 1, 4, 27, 40, streamEnd / 2, streamEnd - 1} {
		if n <= len(comp) {
			_, err := core.Decode(comp[:n], 0)
			if err == nil && n < streamEnd {
				t.Fatalf("truncation to %d bytes decoded successfully", n)
			}
		}
	}
	// Truncating within the trailing index must still decode — to the
	// right bytes — with the mangled index discarded.
	for _, n := range []int{streamEnd, len(comp) - 1} {
		out, err := core.Decode(comp[:n], 0)
		if err != nil {
			t.Fatalf("truncation into seek index (%d bytes): %v", n, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("truncation into seek index (%d bytes) changed output", n)
		}
	}
	// Body bit flips: must error or produce different output, never panic.
	for i := 60; i < len(comp); i += 97 {
		bad := append([]byte(nil), comp...)
		bad[i] ^= 0x10
		out, err := core.Decode(bad, 0)
		if err == nil && bytes.Equal(out, data) && i > 80 {
			// Flipping arithmetic-stream bits that still decode identically
			// would indicate the bits are ignored.
			t.Logf("note: flip at %d was inert", i)
		}
	}
}

func TestDecodeMemBudget(t *testing.T) {
	data := mustGen(t, 9, 512, 384)
	res, err := core.Encode(data, core.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Decode(res.Compressed, 1024); err == nil {
		t.Fatal("expected decode budget rejection")
	}
	r := jpeg.ReasonOf(func() error {
		_, err := core.Decode(res.Compressed, 1024)
		return err
	}())
	if r != jpeg.ReasonMemDecode {
		t.Fatalf("reason = %v", r)
	}
}

func TestEncodeMemBudget(t *testing.T) {
	data := mustGen(t, 10, 512, 384)
	_, err := core.Encode(data, core.EncodeOptions{MemDecodeBudget: 1024})
	if jpeg.ReasonOf(err) != jpeg.ReasonMemDecode {
		t.Fatalf("reason = %v, want MemDecode", jpeg.ReasonOf(err))
	}
}

func TestRawMode(t *testing.T) {
	payload := []byte("definitely not a JPEG, but must round trip verbatim")
	c := &core.Container{Mode: core.ModeRaw, Raw: payload, OutputSize: uint32(len(payload))}
	comp, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !core.IsLepton(comp) {
		t.Fatal("raw container missing magic")
	}
	back, err := core.Decode(comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("raw mode mismatch")
	}
}

func TestContainerMarshalUnmarshal(t *testing.T) {
	c := &core.Container{
		Mode:       core.ModeLepton,
		OutputSize: 12345,
		JPEGHeader: []byte{0xFF, 0xD8, 1, 2, 3},
		Trailer:    []byte{0xFF, 0xD9},
		Prepend:    []byte{9, 9},
		Tail:       []byte{0, 0, 0},
		PadBit:     1,
		EmitHeader: true,
		EmitTail:   true,
		RSTCount:   7,
		MCUStart:   3,
		MCUEnd:     99,
		Segments: []core.Segment{
			{StartMCU: 3, Handover: core.Handover{BitOff: 5, Partial: 0xA0, RSTSeen: 2, PrevDC: [4]int16{-100, 5, 0, 7}}, ArithLen: 4},
			{StartMCU: 50, Handover: core.Handover{BitOff: 0, Partial: 0, RSTSeen: 4}, ArithLen: 3},
		},
		Streams: [][]byte{{1, 2, 3, 4}, {5, 6, 7}},
	}
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.OutputSize != c.OutputSize || got.PadBit != c.PadBit ||
		got.RSTCount != c.RSTCount || got.MCUStart != c.MCUStart || got.MCUEnd != c.MCUEnd ||
		!got.EmitHeader || !got.EmitTail {
		t.Fatalf("scalar fields mismatch: %+v", got)
	}
	if !bytes.Equal(got.JPEGHeader, c.JPEGHeader) || !bytes.Equal(got.Trailer, c.Trailer) ||
		!bytes.Equal(got.Prepend, c.Prepend) || !bytes.Equal(got.Tail, c.Tail) {
		t.Fatal("byte fields mismatch")
	}
	if len(got.Segments) != 2 || got.Segments[0].Handover != c.Segments[0].Handover {
		t.Fatalf("segments mismatch: %+v", got.Segments)
	}
	if !bytes.Equal(got.Streams[1], c.Streams[1]) {
		t.Fatal("streams mismatch")
	}
}

func TestRejectionClassification(t *testing.T) {
	base := mustGen(t, 11, 96, 96)
	cases := []struct {
		name string
		data []byte
		want jpeg.Reason
	}{
		{"progressive", imagegen.MakeProgressive(base), jpeg.ReasonProgressive},
		{"cmyk", imagegen.CMYKStub(), jpeg.ReasonCMYK},
		{"notimage", imagegen.NotImage(1, 512), jpeg.ReasonNotImage},
		{"headeronly", imagegen.HeaderOnly(base), jpeg.ReasonUnsupported},
		{"bigchroma", imagegen.BigChromaStub(), jpeg.ReasonChromaSub},
	}
	for _, tc := range cases {
		_, err := core.Encode(tc.data, core.EncodeOptions{})
		if got := jpeg.ReasonOf(err); got != tc.want {
			t.Errorf("%s: reason = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRestartIntervalRoundTrip(t *testing.T) {
	img := imagegen.Synthesize(21, 320, 240)
	for _, ri := range []int{1, 2, 5, 16} {
		data, err := imagegen.EncodeJPEG(img, imagegen.Options{
			Quality: 82, SubsampleChroma: true, RestartInterval: ri, PadBit: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, data, core.EncodeOptions{ForceSegments: 4})
	}
}

func TestGrayscaleRoundTrip(t *testing.T) {
	img := imagegen.Synthesize(22, 300, 220)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, Grayscale: true, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, data, core.EncodeOptions{ForceSegments: 4})
}

func TestSingleVsMultiThreadIdentical(t *testing.T) {
	// The §6.7 "second alarm" regression: single- and multi-segment decode
	// paths must produce identical bytes.
	data := mustGen(t, 23, 384, 288)
	res, err := core.Encode(data, core.EncodeOptions{ForceSegments: 6})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Decode(res.Compressed, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.DecodeTo(&buf, res.Compressed, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, buf.Bytes()) || !bytes.Equal(a, data) {
		t.Fatal("decode paths disagree")
	}
}

func TestSegmentCountFor(t *testing.T) {
	if core.SegmentCountFor(50<<10) != 1 ||
		core.SegmentCountFor(200<<10) != 2 ||
		core.SegmentCountFor(1<<20) != 4 ||
		core.SegmentCountFor(4<<20) != 8 {
		t.Fatal("segment cutoffs changed")
	}
}

// writeRecorder captures each Write call to observe streaming behavior.
type writeRecorder struct {
	chunks [][]byte
}

func (w *writeRecorder) Write(p []byte) (int, error) {
	w.chunks = append(w.chunks, append([]byte(nil), p...))
	return len(p), nil
}

func TestDecodeToStreamsInOrder(t *testing.T) {
	data := mustGen(t, 60, 512, 384)
	res, err := core.Encode(data, core.EncodeOptions{ForceSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := &writeRecorder{}
	if err := core.DecodeTo(rec, res.Compressed, 0); err != nil {
		t.Fatal(err)
	}
	// Multiple writes (header + per-segment + trailer), concatenating to
	// the exact original: the streaming contract of §3.4.
	if len(rec.chunks) < 4 {
		t.Fatalf("only %d writes; expected per-segment streaming", len(rec.chunks))
	}
	var joined []byte
	for _, c := range rec.chunks {
		joined = append(joined, c...)
	}
	if !bytes.Equal(joined, data) {
		t.Fatal("streamed writes do not concatenate to the original")
	}
	// Every prefix of the stream is a prefix of the original file — a
	// client can start consuming immediately.
	off := 0
	for _, c := range rec.chunks {
		if !bytes.Equal(c, data[off:off+len(c)]) {
			t.Fatalf("write at offset %d is not a prefix continuation", off)
		}
		off += len(c)
	}
}
