package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"lepton/internal/arith"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

// Range decode: serve an arbitrary byte range [off, off+n) of the
// reconstructed JPEG without regenerating the whole file. The seek index
// (see seekindex.go) records the scan position at every MCU row, so a
// request maps to a row interval, the row interval to the thread segments
// containing it, and only those segments are arithmetic-decoded — a 1 KB
// read out of a large file costs roughly one segment, not one file.
//
// The fast path requires a baseline container carrying a valid index.
// Everything else — progressive scans, four-component (CMYK) files, legacy
// index-less containers, or any geometry the validator distrusts — falls
// back to a full decode that discards the bytes outside the range. The
// fallback is always correct, only slower, and each cause is counted so
// operators can see what their corpus hits. (Raw passthrough containers
// are served by slicing the stored bytes directly.)

// ErrInvalidRange reports a negative offset or length.
var ErrInvalidRange = errors.New("core: negative range offset or length")

var rangeCounters struct {
	requests            atomic.Int64
	fast                atomic.Int64
	fallbackNoIndex     atomic.Int64
	fallbackUnsupported atomic.Int64
	segmentsDecoded     atomic.Int64
}

// RangeStats returns cumulative process-wide counters for range decodes:
// how many requests were served, how many took the indexed fast path, how
// many fell back to full decode (split by cause), and how many thread
// segments the fast path decoded in total.
func RangeStats() map[string]int64 {
	return map[string]int64{
		"range_requests":             rangeCounters.requests.Load(),
		"range_fast":                 rangeCounters.fast.Load(),
		"range_fallback_no_index":    rangeCounters.fallbackNoIndex.Load(),
		"range_fallback_unsupported": rangeCounters.fallbackUnsupported.Load(),
		"range_segments_decoded":     rangeCounters.segmentsDecoded.Load(),
	}
}

// RangeLength returns the byte count a range decode of (off, n) against
// comp will produce — the clamp of [off, off+n) to the container's
// recorded output size — without decoding anything. Servers use it to
// frame streaming responses before the first payload byte.
func RangeLength(comp []byte, off, n int64) (int64, error) {
	if off < 0 || n < 0 {
		return 0, ErrInvalidRange
	}
	size, err := ContainerOutputSize(comp)
	if err != nil {
		return 0, err
	}
	return clampRange(off, n, int64(size)), nil
}

func clampRange(off, n, size int64) int64 {
	if off >= size {
		return 0
	}
	if n > size-off {
		n = size - off
	}
	return n
}

// DecodeRange decodes exactly the byte range [off, off+n) of the original
// file, clamped to its size, from the compressed container.
func DecodeRange(comp []byte, off, n int64, memBudget int64) ([]byte, error) {
	return (*Codec)(nil).DecodeRange(comp, off, n, memBudget)
}

// DecodeRange is the pooled buffered form of DecodeRangeToCtx.
func (cd *Codec) DecodeRange(comp []byte, off, n int64, memBudget int64) ([]byte, error) {
	return cd.DecodeRangeCtx(context.Background(), comp, off, n, memBudget)
}

// DecodeRangeCtx is DecodeRange under a context.
func (cd *Codec) DecodeRangeCtx(ctx context.Context, comp []byte, off, n int64, memBudget int64) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := cd.DecodeRangeToCtx(ctx, &buf, comp, off, n, memBudget); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeRangeToCtx streams the byte range [off, off+n) of the
// reconstructed file into dst and returns how many bytes it wrote (the
// clamp of the range to the file size; RangeLength predicts it). Header
// and trailer bytes are served straight from the stored verbatim copies;
// scan bytes come from re-encoding only the MCU rows the range overlaps,
// one goroutine per touched thread segment. Containers without a usable
// seek index, progressive scans, and four-component files are served by a
// full decode that skips everything outside the range.
func (cd *Codec) DecodeRangeToCtx(ctx context.Context, dst io.Writer, comp []byte, off, n int64, memBudget int64) (int64, error) {
	rangeCounters.requests.Add(1)
	if off < 0 || n < 0 {
		return 0, ErrInvalidRange
	}
	if memBudget == 0 {
		memBudget = DefaultMemDecodeBudget
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	c, headBuf, err := unmarshal(comp, cd)
	if err != nil {
		return 0, err
	}
	defer cd.putBuf(headBuf)

	size := int64(c.OutputSize)
	end := off + n
	if off > size {
		off = size
	}
	if end > size || end < 0 { // end < 0: off+n overflowed int64
		end = size
	}
	if end <= off {
		rangeCounters.fast.Add(1)
		return 0, nil
	}

	if c.Mode == ModeRaw {
		if uint32(len(c.Raw)) != c.OutputSize {
			return 0, badContainer("raw payload %d bytes, header says %d", len(c.Raw), c.OutputSize)
		}
		rangeCounters.fast.Add(1)
		m, err := dst.Write(c.Raw[off:end])
		return int64(m), err
	}
	if c.Mode == ModeProgressive {
		rangeCounters.fallbackUnsupported.Add(1)
		return cd.decodeRangeFallback(ctx, dst, comp, off, end, memBudget)
	}

	f, err := jpeg.ParseHeader(c.JPEGHeader)
	if err != nil {
		return 0, fmt.Errorf("core: stored header: %w", err)
	}
	if len(f.Components) >= 4 {
		rangeCounters.fallbackUnsupported.Add(1)
		return cd.decodeRangeFallback(ctx, dst, comp, off, end, memBudget)
	}
	pl, ok := planRange(f, c)
	if !ok {
		rangeCounters.fallbackNoIndex.Add(1)
		return cd.decodeRangeFallback(ctx, dst, comp, off, end, memBudget)
	}
	return cd.decodeRangeIndexed(ctx, dst, f, c, pl, off, end, memBudget)
}

// decodeRangeFallback serves [off, end) through the ordinary full decode,
// discarding bytes outside the window. Used whenever the fast path cannot
// run; its only cost over the fast path is time.
func (cd *Codec) decodeRangeFallback(ctx context.Context, dst io.Writer, comp []byte, off, end, memBudget int64) (int64, error) {
	sw := &sliceWriter{dst: dst, off: off, end: end}
	if err := cd.DecodeToCtx(ctx, sw, comp, memBudget); err != nil {
		return sw.written, err
	}
	if sw.written != end-off {
		return sw.written, badContainer("range fallback produced %d bytes, want %d", sw.written, end-off)
	}
	return sw.written, nil
}

// sliceWriter forwards only the bytes falling in [off, end) of the stream
// written through it.
type sliceWriter struct {
	dst      io.Writer
	off, end int64
	pos      int64
	written  int64
}

func (s *sliceWriter) Write(p []byte) (int, error) {
	n := len(p)
	a, z := s.off-s.pos, s.end-s.pos
	s.pos += int64(n)
	if a < 0 {
		a = 0
	}
	if z > int64(n) {
		z = int64(n)
	}
	if z > a {
		m, err := s.dst.Write(p[a:z])
		s.written += int64(m)
		if err != nil {
			return int(a) + m, err
		}
	}
	return n, nil
}

// rangePlan is the validated geometry of an indexed baseline container:
// output-space zone boundaries plus the container's MCU-row window. All
// distrust lives in planRange; once a plan exists the fast path treats
// any internal inconsistency as a hard container error, because by then
// bytes may already have been written.
type rangePlan struct {
	emitBase   int64 // output offset where scan bytes start
	scanEndOut int64 // output offset where scan bytes end (trailer after)
	r0, rEnd   int   // container's MCU-row window [r0, rEnd)
	total      int   // f.TotalMCUs()
}

// planRange checks that the container's seek index and segment table
// describe a geometry the fast path can trust. Any doubt returns ok=false
// and the caller falls back to full decode — which will either succeed
// (index merely missing/damaged) or report the real corruption.
func planRange(f *jpeg.File, c *Container) (rangePlan, bool) {
	var pl rangePlan
	w := f.MCUsWide
	pl.total = f.TotalMCUs()
	if len(c.SeekIndex) == 0 || w <= 0 || pl.total <= 0 {
		return pl, false
	}
	if c.MCUStart > c.MCUEnd || int(c.MCUEnd) > pl.total || int(c.MCUStart)%w != 0 {
		return pl, false
	}
	pl.r0 = int(c.MCUStart) / w
	pl.rEnd = (int(c.MCUEnd) + w - 1) / w
	if len(c.SeekIndex) != pl.rEnd-pl.r0 {
		return pl, false
	}
	if len(c.Segments) == 0 || len(c.Streams) != len(c.Segments) {
		return pl, false
	}
	prev := -1
	for i := range c.Segments {
		sm := int(c.Segments[i].StartMCU)
		if i == 0 && sm != int(c.MCUStart) {
			return pl, false
		}
		if sm%w != 0 || sm <= prev || sm >= int(c.MCUEnd) {
			return pl, false
		}
		prev = sm
	}
	hdrLen := 0
	if c.EmitHeader {
		hdrLen = len(c.JPEGHeader)
	}
	pl.emitBase = int64(hdrLen + len(c.Prepend))
	pl.scanEndOut = int64(c.OutputSize)
	if c.EmitTail {
		pl.scanEndOut -= int64(len(c.Trailer))
	}
	if pl.scanEndOut < pl.emitBase {
		return pl, false
	}
	return pl, true
}

// rangeUnit is the slice of one thread segment a range decode must
// regenerate: global MCU rows [u0, u1) intersected with the segment's MCU
// span [segStart, segEnd).
type rangeUnit struct {
	seg              int
	u0, u1           int // global MCU rows
	segStart, segEnd int // the segment's full MCU span (model decode span)
	encStart, encEnd int // MCUs actually re-encoded
}

// decodeRangeIndexed is the fast path: binary-search the seek index for
// the MCU rows overlapping the scan portion of [off, end), decode only
// the thread segments containing them, and stitch the output from the
// verbatim header/prepend, the regenerated row bytes, and the verbatim
// trailer.
func (cd *Codec) decodeRangeIndexed(ctx context.Context, dst io.Writer, f *jpeg.File, c *Container, pl rangePlan, off, end, memBudget int64) (int64, error) {
	idx := c.SeekIndex
	base0 := idx[0].ByteOff
	w := f.MCUsWide

	var units []rangeUnit
	s0, s1 := off, end
	if s0 < pl.emitBase {
		s0 = pl.emitBase
	}
	if s1 > pl.scanEndOut {
		s1 = pl.scanEndOut
	}
	if s1 > s0 {
		// Map the output window into scan space and find the covering rows:
		// the last row starting at or before z0 through the first row
		// starting at or after z1.
		z0 := s0 - pl.emitBase + base0
		z1 := s1 - pl.emitBase + base0
		k0 := sort.Search(len(idx), func(k int) bool { return idx[k].ByteOff > z0 }) - 1
		if k0 < 0 {
			k0 = 0
		}
		k1 := sort.Search(len(idx), func(k int) bool { return idx[k].ByteOff >= z1 })
		gr0, gr1 := pl.r0+k0, pl.r0+k1
		for i := range c.Segments {
			segStart := int(c.Segments[i].StartMCU)
			segEnd := int(c.MCUEnd)
			if i+1 < len(c.Segments) {
				segEnd = int(c.Segments[i+1].StartMCU)
			}
			u0, u1 := gr0, gr1
			if sr := segStart / w; u0 < sr {
				u0 = sr
			}
			if er := (segEnd + w - 1) / w; u1 > er {
				u1 = er
			}
			if u1 <= u0 {
				continue
			}
			encStart, encEnd := u0*w, u1*w
			if encStart < segStart {
				encStart = segStart
			}
			if encEnd > segEnd {
				encEnd = segEnd
			}
			units = append(units, rangeUnit{seg: i, u0: u0, u1: u1,
				segStart: segStart, segEnd: segEnd, encStart: encStart, encEnd: encEnd})
		}
		if wb := DecodeWindowBytes(f, len(units)); wb > memBudget {
			return 0, &jpeg.Error{Reason: jpeg.ReasonMemDecode,
				Detail: fmt.Sprintf("decode row windows need %d bytes > %d budget", wb, memBudget)}
		}
		rangeCounters.segmentsDecoded.Add(int64(len(units)))
	}

	cancelled := ctx.Done()
	done := make([]chan segResult, len(units))
	for j := range units {
		done[j] = make(chan segResult, 1)
		go func(j int) {
			done[j] <- cd.decodeSegmentRange(ctx, cancelled, f, c, units[j], pl)
		}(j)
	}

	var written int64
	write := func(b []byte) error {
		m, err := dst.Write(b)
		written += int64(m)
		return err
	}
	// Prefix zone: verbatim header then prepend bytes.
	var firstErr error
	if off < pl.emitBase {
		var hdr []byte
		if c.EmitHeader {
			hdr = c.JPEGHeader
		}
		pos := int64(0)
		for _, b := range [][]byte{hdr, c.Prepend} {
			a, z := off-pos, end-pos
			if a < 0 {
				a = 0
			}
			if z > int64(len(b)) {
				z = int64(len(b))
			}
			if z > a {
				if err := write(b[a:z]); err != nil {
					firstErr = err
					break
				}
			}
			pos += int64(len(b))
		}
	}
	// Scan zone: regenerated rows, emitted in segment order as they land.
	for j := range done {
		r := <-done[j]
		if firstErr != nil {
			continue // drain remaining goroutines
		}
		if r.err != nil {
			firstErr = r.err
			continue
		}
		u := units[j]
		// A unit that stops before the container's last row must land
		// exactly on the next row's recorded offset, or the index lied.
		if u.u1 < pl.rEnd {
			want := idx[u.u1-pl.r0].ByteOff - idx[u.u0-pl.r0].ByteOff
			if int64(len(r.bytes)) != want {
				firstErr = badContainer("seek index: rows %d..%d produced %d scan bytes, index says %d",
					u.u0, u.u1, len(r.bytes), want)
				continue
			}
		}
		pos := pl.emitBase + (idx[u.u0-pl.r0].ByteOff - base0)
		a, z := s0-pos, s1-pos
		if a < 0 {
			a = 0
		}
		if z > int64(len(r.bytes)) {
			z = int64(len(r.bytes))
		}
		if z > a {
			if err := write(r.bytes[a:z]); err != nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return written, firstErr
	}
	// Trailer zone.
	if end > pl.scanEndOut {
		a := off - pl.scanEndOut
		if a < 0 {
			a = 0
		}
		if err := write(c.Trailer[a : end-pl.scanEndOut]); err != nil {
			return written, err
		}
	}
	if err := ctx.Err(); err != nil {
		return written, err
	}
	if written != end-off {
		return written, badContainer("range decode produced %d bytes, want %d", written, end-off)
	}
	rangeCounters.fast.Add(1)
	return written, nil
}

// decodeSegmentRange is decodeSegmentStreamed restricted to one unit: the
// arithmetic decode still starts at the segment boundary (that is where
// the model and encoder handover state were recorded), but only the MCU
// rows in [u0, u1) are fed to the scan re-encoder, the encoder is seeded
// from the seek index entry at u0, and the decode early-exits after the
// last component finishes row u1 — the planar traversal visits components
// in order, so clipping only the last component's row range stops the
// stream right after the final row the range needs while leaving every
// earlier component's (preceding) bits fully consumed.
func (cd *Codec) decodeSegmentRange(ctx context.Context, cancelled <-chan struct{}, f *jpeg.File, c *Container, u rangeUnit, pl rangePlan) segResult {
	rs, re := rowRangesFor(f, u.segStart, u.segEnd)
	ncomp := len(f.Components)
	last := ncomp - 1
	if clip := u.u1 * vEff(f, last); clip < re[last] {
		re[last] = clip
	}

	winBytes := DecodeWindowBytes(f, 1)
	slab := cd.getRowBuf(int(winBytes / 2))
	defer cd.putRowBuf(slab)
	grabCoeffBytes(winBytes)
	defer dropCoeffBytes(winBytes)
	rings := make([]*ringRows, ncomp)
	planes := make([]model.ComponentPlane, ncomp)
	off := 0
	for ci := 0; ci < ncomp; ci++ {
		comp := &f.Components[ci]
		n := comp.BlocksWide * 64
		bufs := make([][]int16, windowRowsFor(vEff(f, ci)))
		for k := range bufs {
			bufs[k] = slab[off : off+n : off+n]
			off += n
		}
		rings[ci] = newRingRows(bufs)
		planes[ci] = model.ComponentPlane{BlocksWide: comp.BlocksWide,
			BlocksHigh: comp.BlocksHigh, Quant: &f.Quant[comp.TQ], Rows: rings[ci]}
	}

	flags := model.Flags{
		EdgePrediction: c.ModelFlags&1 != 0,
		DCGradient:     c.ModelFlags&2 != 0,
	}
	codec := cd.getSegCodec(planes, rs, re, flags)
	defer cd.putSegCodec(codec)
	sbufs := cd.getStreamBufs()
	seed := c.SeekIndex[u.u0-pl.r0]
	se, err := jpeg.NewStreamScanEncoder(f, c.PadBit, int(c.RSTCount), u.encStart, u.encEnd, seed, sbufs)
	if err != nil {
		cd.putStreamBufs(sbufs)
		return segResult{err: err}
	}
	defer func() {
		se.ReleaseBuffers(sbufs)
		cd.putStreamBufs(sbufs)
	}()
	group := make([][]int16, 0, 4)
	codec.OnRow = func(ci, row int) error {
		v := vEff(f, ci)
		if (row+1)%v != 0 {
			return nil // MCU row group not complete yet
		}
		mr := row / v
		if mr < u.u0 || mr >= u.u1 {
			return nil // outside the requested rows: decode, don't re-encode
		}
		group = group[:0]
		for r := row - v + 1; r <= row; r++ {
			group = append(group, rings[ci].peek(r))
		}
		return se.ConsumeGroup(ci, mr, group)
	}

	d := arith.NewDecoder(c.Streams[u.seg])
	if err := codec.DecodeSegmentCtx(d, cancelled); err != nil {
		if errors.Is(err, model.ErrInterrupted) {
			return segResult{err: ctx.Err()}
		}
		return segResult{err: fmt.Errorf("core: segment range decode: %w", err)}
	}
	if err := d.Err(); err != nil {
		return segResult{err: fmt.Errorf("core: segment range decode: %w", err)}
	}
	if err := ctx.Err(); err != nil {
		return segResult{err: err}
	}
	b, err := se.Finish(c.Tail, u.encEnd == pl.total)
	if err != nil {
		return segResult{err: fmt.Errorf("core: segment range encode: %w", err)}
	}
	return segResult{bytes: b}
}
