package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Appendix A.1 frames the arithmetic-coded data as interleaved sections:
//
//	Thread Segment Id (1 byte)
//	Length selector   (256 | 4096 | 65536 | arbitrary)
//	Arithmetic coded data
//	... repeated ...
//
// Interleaving lets the encoder emit output while slower thread segments
// are still coding, and lets a decoder begin feeding early segments before
// the container is fully read. This file implements that framing as an
// alternative body layout: containers written with MarshalInterleaved are
// detected and reassembled transparently by Unmarshal.

// Section length selectors (A.1's fixed sizes avoid length fields for
// common cases).
const (
	secLen256   = 0
	secLen4096  = 1
	secLen65536 = 2
	secLenVar   = 3 // followed by a u32 length
)

// interleavedMode is the container mode byte for A.1-style bodies.
const ModeLeptonInterleaved = 'I'

// MarshalInterleaved serializes the container with the A.1 interleaved
// body: sections are emitted round-robin across thread segments in
// sectionSize units (0 means 4096), so no segment's output is held back
// until another finishes.
func (c *Container) MarshalInterleaved(sectionSize int) ([]byte, error) {
	if c.Mode != ModeLepton {
		return nil, fmt.Errorf("core: interleaved marshal requires ModeLepton, have %c", c.Mode)
	}
	if len(c.Segments) > 255 {
		return nil, fmt.Errorf("core: %d segments exceed the 1-byte segment id", len(c.Segments))
	}
	if sectionSize <= 0 {
		sectionSize = 4096
	}
	// Serialize the standard header with the interleaved mode byte, then
	// replace the body.
	saved := c.Mode
	c.Mode = ModeLeptonInterleaved
	defer func() { c.Mode = saved }()

	streams := c.Streams
	c.Streams = nil // header only; body appended below
	head, err := c.marshalHeaderOnly()
	c.Streams = streams
	if err != nil {
		return nil, err
	}

	var body bytes.Buffer
	offsets := make([]int, len(streams))
	for {
		wrote := false
		for id, s := range streams {
			off := offsets[id]
			if off >= len(s) {
				continue
			}
			n := len(s) - off
			if n > sectionSize {
				n = sectionSize
			}
			body.WriteByte(byte(id))
			writeSectionLen(&body, n)
			body.Write(s[off : off+n])
			offsets[id] = off + n
			wrote = true
		}
		if !wrote {
			break
		}
	}
	return append(head, body.Bytes()...), nil
}

func writeSectionLen(b *bytes.Buffer, n int) {
	switch n {
	case 256:
		b.WriteByte(secLen256)
	case 4096:
		b.WriteByte(secLen4096)
	case 65536:
		b.WriteByte(secLen65536)
	default:
		b.WriteByte(secLenVar)
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], uint32(n))
		b.Write(tmp[:])
	}
}

// marshalHeaderOnly emits the fixed header + zlib section without a body.
func (c *Container) marshalHeaderOnly() ([]byte, error) {
	out, err := c.Marshal()
	if err != nil {
		return nil, err
	}
	// Marshal appends Streams after the zlib section; with Streams nil the
	// output is exactly the header.
	return out, nil
}

// deinterleave reconstructs per-segment streams from an A.1 interleaved
// body. lens gives each segment's expected total length (from the header).
func deinterleave(body []byte, lens []uint32) ([][]byte, error) {
	streams := make([][]byte, len(lens))
	for i, l := range lens {
		streams[i] = make([]byte, 0, l)
	}
	pos := 0
	for pos < len(body) {
		id := int(body[pos])
		pos++
		if id >= len(streams) {
			return nil, badContainer("section for segment %d of %d", id, len(streams))
		}
		if pos >= len(body) {
			return nil, badContainer("truncated section header")
		}
		var n int
		switch body[pos] {
		case secLen256:
			n = 256
			pos++
		case secLen4096:
			n = 4096
			pos++
		case secLen65536:
			n = 65536
			pos++
		case secLenVar:
			if pos+5 > len(body) {
				return nil, badContainer("truncated variable section length")
			}
			n = int(binary.LittleEndian.Uint32(body[pos+1:]))
			pos += 5
		default:
			return nil, badContainer("bad section length selector %d", body[pos])
		}
		if n < 0 || pos+n > len(body) {
			return nil, badContainer("section of %d bytes overruns body", n)
		}
		if len(streams[id])+n > int(lens[id]) {
			return nil, badContainer("segment %d sections exceed declared length", id)
		}
		streams[id] = append(streams[id], body[pos:pos+n]...)
		pos += n
	}
	for i := range streams {
		if len(streams[i]) != int(lens[i]) {
			return nil, badContainer("segment %d has %d of %d bytes", i, len(streams[i]), lens[i])
		}
	}
	return streams, nil
}
