//go:build race

package core

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count assertions are meaningless there.
const raceEnabled = true
