package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"

	"lepton/internal/jpeg"
)

// The seek index is the range-serving companion of the container (paper
// §3, §5.5: recompressed files must serve arbitrary HTTP Range requests
// without decoding the whole image). During compression the stream scan
// decoder already computes a Huffman handover word at every MCU row —
// byte/bit position in the original scan, the partially emitted byte, the
// restart-marker count, and the DC predictors. Persisting that table lets
// DecodeRange later binary-search the rows overlapping a byte range,
// arith-decode only the thread segments containing them, and re-emit
// exactly the requested scan bytes.
//
// The index is appended AFTER the arithmetic streams as a self-contained
// trailing section. Old readers never see it: the plain-ModeLepton
// unmarshal slices streams by their recorded lengths and ignored trailing
// bytes long before the index existed. New readers treat a missing,
// truncated, or corrupt section as "no index" and fall back to full
// decode — the index can optimize a decode but never fail one. The
// interleaved layout (ModeLeptonInterleaved) consumes every body byte
// during deinterleaving, so those containers never carry an index.
//
// Per-segment arithmetic input offsets are not duplicated here: they are
// prefix sums of the ArithLen fields already in the zlib head section,
// and the per-segment handover words are the subset of this table at
// segment-start rows.
//
// Section layout (little-endian), following the last arithmetic stream:
//
//	+-------------------+----------------------------------------------+
//	| magic  "LS"       | 2 bytes: 0x4C 0x53                           |
//	| version           | 1 byte:  0x01                                |
//	| nRows             | u32: MCU rows covered by the container       |
//	| row record × nRows| 18 bytes each:                               |
//	|   byteOff   u32   |   scan-relative offset of the row's first bit|
//	|   bitOff    u8    |   bits already emitted into that byte        |
//	|   partial   u8    |   the partially emitted byte                 |
//	|   rstSeen   u32   |   restart markers consumed before the row    |
//	|   prevDC    4×i16 |   DC predictors at the row boundary          |
//	| crc32             | u32: IEEE CRC over everything above          |
//	+-------------------+----------------------------------------------+
const (
	seekIndexMagic0  = 'L'
	seekIndexMagic1  = 'S'
	seekIndexVersion = 0x01

	// seekIndexMaxRows bounds the table (a 65k-row image is ~1.2 MiB of
	// index on a file that is at least tens of MiB); taller images simply
	// do not get an index and keep the full-decode path.
	seekIndexMaxRows = 1 << 16

	seekIndexRowSize = 4 + 1 + 1 + 4 + 2*jpeg.MaxComponents
	seekIndexMinSize = 2 + 1 + 4 + 4
)

// appendSeekIndex serializes idx onto out. Row byte offsets are stored as
// u32: OutputSize is itself a u32, so every representable scan offset
// fits.
func appendSeekIndex(out *bytes.Buffer, idx []jpeg.MCUPos) {
	start := out.Len()
	out.WriteByte(seekIndexMagic0)
	out.WriteByte(seekIndexMagic1)
	out.WriteByte(seekIndexVersion)
	putU32(out, uint32(len(idx)))
	var rec [seekIndexRowSize]byte
	for _, p := range idx {
		binary.LittleEndian.PutUint32(rec[0:], uint32(p.ByteOff))
		rec[4] = p.BitOff
		rec[5] = p.Partial
		binary.LittleEndian.PutUint32(rec[6:], uint32(p.RSTSeen))
		for j, dc := range p.PrevDC {
			binary.LittleEndian.PutUint16(rec[10+2*j:], uint16(dc))
		}
		out.Write(rec[:])
	}
	putU32(out, crc32.ChecksumIEEE(out.Bytes()[start:]))
}

// parseSeekIndex decodes a trailing index section. Any deviation — wrong
// magic or version, size mismatch, CRC failure, non-monotonic offsets —
// returns nil: the container stays fully decodable either way, so a bad
// index is discarded, never reported.
func parseSeekIndex(data []byte) []jpeg.MCUPos {
	if len(data) < seekIndexMinSize ||
		data[0] != seekIndexMagic0 || data[1] != seekIndexMagic1 ||
		data[2] != seekIndexVersion {
		return nil
	}
	nRows := binary.LittleEndian.Uint32(data[3:])
	if nRows == 0 || nRows > seekIndexMaxRows {
		return nil
	}
	want := seekIndexMinSize + int(nRows)*seekIndexRowSize
	if len(data) != want {
		return nil
	}
	body := data[:want-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[want-4:]) {
		return nil
	}
	idx := make([]jpeg.MCUPos, nRows)
	off := 7
	for i := range idx {
		rec := data[off : off+seekIndexRowSize]
		idx[i] = jpeg.MCUPos{
			ByteOff: int64(binary.LittleEndian.Uint32(rec[0:])),
			BitOff:  rec[4],
			Partial: rec[5],
			RSTSeen: int32(binary.LittleEndian.Uint32(rec[6:])),
		}
		for j := range idx[i].PrevDC {
			idx[i].PrevDC[j] = int16(binary.LittleEndian.Uint16(rec[10+2*j:]))
		}
		if i > 0 && idx[i].ByteOff < idx[i-1].ByteOff {
			return nil
		}
		off += seekIndexRowSize
	}
	return idx
}
