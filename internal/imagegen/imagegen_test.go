package imagegen_test

import (
	"bytes"
	"testing"

	"lepton/internal/imagegen"
	"lepton/internal/jpeg"
)

func TestSynthesizeDeterministic(t *testing.T) {
	a := imagegen.Synthesize(5, 64, 48)
	b := imagegen.Synthesize(5, 64, 48)
	if !bytes.Equal(a.Y.Pix, b.Y.Pix) || !bytes.Equal(a.Cb.Pix, b.Cb.Pix) {
		t.Fatal("same seed produced different images")
	}
	c := imagegen.Synthesize(6, 64, 48)
	if bytes.Equal(a.Y.Pix, c.Y.Pix) {
		t.Fatal("different seeds produced identical images")
	}
}

func TestSynthesizeHasStructure(t *testing.T) {
	img := imagegen.Synthesize(7, 128, 128)
	// The image must not be flat: neighboring pixels correlate but the
	// plane has real variance.
	var sum, sumSq float64
	for _, p := range img.Y.Pix {
		sum += float64(p)
		sumSq += float64(p) * float64(p)
	}
	n := float64(len(img.Y.Pix))
	variance := sumSq/n - (sum/n)*(sum/n)
	if variance < 100 {
		t.Fatalf("luma variance %.1f too low — no image structure", variance)
	}
	// Spatial correlation: adjacent-pixel delta much smaller than global
	// std dev (photographic property Lepton's predictors rely on).
	var adj float64
	for i := 1; i < len(img.Y.Pix); i++ {
		d := float64(img.Y.Pix[i]) - float64(img.Y.Pix[i-1])
		adj += d * d
	}
	adj /= n - 1
	if adj > variance {
		t.Fatalf("no spatial correlation: adjacent MSE %.1f vs variance %.1f", adj, variance)
	}
}

func TestGenerateValidJPEG(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		data, err := imagegen.Generate(seed, 96, 80)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		f, err := jpeg.Parse(data, 0)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if _, err := jpeg.DecodeScan(f); err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
	}
}

func TestSubsample(t *testing.T) {
	p := imagegen.NewPlane(4, 4)
	for i := range p.Pix {
		p.Pix[i] = uint8(i * 16)
	}
	s := imagegen.Subsample(p, 2, 2)
	if s.W != 2 || s.H != 2 {
		t.Fatalf("subsampled dims %dx%d", s.W, s.H)
	}
	// Top-left 2x2 block: pixels 0,16,64,80 -> mean 40.
	if s.Pix[0] != 40 {
		t.Fatalf("box filter got %d, want 40", s.Pix[0])
	}
	// Identity when factors are 1.
	if imagegen.Subsample(p, 1, 1) != p {
		t.Fatal("1x1 subsample must be identity")
	}
}

func TestSubsampleOddDimensions(t *testing.T) {
	p := imagegen.NewPlane(5, 3)
	for i := range p.Pix {
		p.Pix[i] = 200
	}
	s := imagegen.Subsample(p, 2, 2)
	if s.W != 3 || s.H != 2 {
		t.Fatalf("dims %dx%d", s.W, s.H)
	}
	for _, v := range s.Pix {
		if v != 200 {
			t.Fatalf("edge handling changed constant plane: %d", v)
		}
	}
}

func TestPlaneAtClamps(t *testing.T) {
	p := imagegen.NewPlane(2, 2)
	p.Pix = []uint8{1, 2, 3, 4}
	if p.At(-5, 0) != 1 || p.At(5, 0) != 2 || p.At(0, 5) != 3 || p.At(9, 9) != 4 {
		t.Fatal("At does not clamp to edges")
	}
}

func TestEncodeJPEGOptionMatrix(t *testing.T) {
	img := imagegen.Synthesize(9, 72, 56)
	opts := []imagegen.Options{
		{Quality: 1, PadBit: 1},
		{Quality: 100, PadBit: 1},
		{Quality: 85, SubsampleChroma: true, PadBit: 0},
		{Quality: 85, Grayscale: true, RestartInterval: 2, PadBit: 1},
	}
	for i, o := range opts {
		data, err := imagegen.EncodeJPEG(img, o)
		if err != nil {
			t.Fatalf("opt %d: %v", i, err)
		}
		if _, err := jpeg.Parse(data, 0); err != nil {
			t.Fatalf("opt %d: parse: %v", i, err)
		}
	}
}

func TestCorruptionsAreClassifiable(t *testing.T) {
	base, err := imagegen.Generate(10, 96, 96)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"progressive": imagegen.MakeProgressive(base),
		"cmyk":        imagegen.CMYKStub(),
		"notimage":    imagegen.NotImage(1, 256),
		"headeronly":  imagegen.HeaderOnly(base),
		"bigchroma":   imagegen.BigChromaStub(),
		"truncated":   imagegen.Truncate(base, 0.3),
		"zerotail":    imagegen.ZeroFillTail(base, 40),
	}
	for name, data := range cases {
		// Every corruption must be parseable-or-rejected without panic.
		f, err := jpeg.Parse(data, 0)
		if err == nil {
			_, _ = jpeg.DecodeScan(f)
		}
		_ = name
	}
}

func TestAppendSecondImageKeepsFirstIntact(t *testing.T) {
	a, _ := imagegen.Generate(11, 64, 64)
	b, _ := imagegen.Generate(12, 32, 32)
	combo := imagegen.AppendSecondImage(a, b)
	if !bytes.HasPrefix(combo, a) || len(combo) != len(a)+len(b) {
		t.Fatal("concatenation broken")
	}
}
