// Package imagegen synthesizes the evaluation corpus: procedurally generated
// photographic-looking images encoded as baseline JPEG with this
// repository's own encoder, plus the corrupted variants the paper's §6.2
// error-code table is built from.
//
// The paper evaluated on 233,376 randomly sampled Dropbox chunks; that data
// is unavailable, so this generator is the documented substitution
// (DESIGN.md). Multi-octave value noise plus gradients and hard-edged shapes
// produce DCT statistics with the properties Lepton's model exploits:
// spatial correlation between neighboring blocks, smooth DC gradients, and
// edge-aligned 7x1/1x7 energy.
package imagegen

import (
	"math/rand"

	"lepton/internal/dct"
	"lepton/internal/huffman"
	"lepton/internal/jpeg"
)

// Plane is a single-channel image.
type Plane struct {
	W, H int
	Pix  []uint8
}

// NewPlane allocates a W×H plane.
func NewPlane(w, h int) *Plane {
	return &Plane{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y), clamping coordinates to the plane.
func (p *Plane) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= p.W {
		x = p.W - 1
	}
	if y >= p.H {
		y = p.H - 1
	}
	return p.Pix[y*p.W+x]
}

// Image is a YCbCr image at full resolution.
type Image struct {
	Y, Cb, Cr *Plane
}

// valueNoise generates smooth noise by bilinear interpolation of a coarse
// random lattice.
func valueNoise(rng *rand.Rand, w, h, cell int, amp float64, dst []float64) {
	gw := w/cell + 2
	gh := h/cell + 2
	grid := make([]float64, gw*gh)
	for i := range grid {
		grid[i] = rng.Float64()*2 - 1
	}
	for y := 0; y < h; y++ {
		gy := y / cell
		fy := float64(y%cell) / float64(cell)
		for x := 0; x < w; x++ {
			gx := x / cell
			fx := float64(x%cell) / float64(cell)
			a := grid[gy*gw+gx]
			b := grid[gy*gw+gx+1]
			c := grid[(gy+1)*gw+gx]
			d := grid[(gy+1)*gw+gx+1]
			v := a*(1-fx)*(1-fy) + b*fx*(1-fy) + c*(1-fx)*fy + d*fx*fy
			dst[y*w+x] += v * amp
		}
	}
}

// Synthesize renders a deterministic pseudo-photograph of the given size.
func Synthesize(seed int64, w, h int) *Image {
	rng := rand.New(rand.NewSource(seed))
	luma := make([]float64, w*h)
	cb := make([]float64, w*h)
	cr := make([]float64, w*h)

	// Base vertical gradient (sky-to-ground) with random orientation.
	g0 := rng.Float64()*120 - 60
	g1 := rng.Float64()*120 - 60
	for y := 0; y < h; y++ {
		v := g0 + (g1-g0)*float64(y)/float64(max(h-1, 1))
		for x := 0; x < w; x++ {
			luma[y*w+x] = v
		}
	}
	// Noise octaves: large structures down to fine grain.
	for _, oct := range []struct {
		cell int
		amp  float64
	}{{96, 40}, {32, 25}, {12, 14}, {4, 7}, {2, 2.5}} {
		if oct.cell < w && oct.cell < h {
			valueNoise(rng, w, h, oct.cell, oct.amp, luma)
		}
	}
	// Chroma varies slowly.
	for _, oct := range []struct {
		cell int
		amp  float64
	}{{128, 25}, {48, 12}} {
		if oct.cell < w && oct.cell < h {
			valueNoise(rng, w, h, oct.cell, oct.amp, cb)
			valueNoise(rng, w, h, oct.cell, oct.amp, cr)
		}
	}
	// Hard-edged shapes give the 7x1/1x7 predictors something to chew on.
	nShapes := 3 + rng.Intn(8)
	for i := 0; i < nShapes; i++ {
		x0 := rng.Intn(w)
		y0 := rng.Intn(h)
		sw := rng.Intn(w/2+1) + 4
		sh := rng.Intn(h/2+1) + 4
		dv := rng.Float64()*140 - 70
		dcb := rng.Float64()*40 - 20
		dcr := rng.Float64()*40 - 20
		for y := y0; y < min(y0+sh, h); y++ {
			for x := x0; x < min(x0+sw, w); x++ {
				luma[y*w+x] += dv
				cb[y*w+x] += dcb
				cr[y*w+x] += dcr
			}
		}
	}
	img := &Image{Y: NewPlane(w, h), Cb: NewPlane(w, h), Cr: NewPlane(w, h)}
	for i := 0; i < w*h; i++ {
		img.Y.Pix[i] = clamp8(128 + luma[i])
		img.Cb.Pix[i] = clamp8(128 + cb[i])
		img.Cr.Pix[i] = clamp8(128 + cr[i])
	}
	return img
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Subsample box-filters a plane by factors (sx, sy).
func Subsample(p *Plane, sx, sy int) *Plane {
	if sx == 1 && sy == 1 {
		return p
	}
	w := (p.W + sx - 1) / sx
	h := (p.H + sy - 1) / sy
	out := NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum, n int
			for dy := 0; dy < sy; dy++ {
				for dx := 0; dx < sx; dx++ {
					px := x*sx + dx
					py := y*sy + dy
					if px < p.W && py < p.H {
						sum += int(p.Pix[py*p.W+px])
						n++
					}
				}
			}
			out.Pix[y*w+x] = uint8((sum + n/2) / n)
		}
	}
	return out
}

// planeToCoefficients converts a plane to quantized DCT coefficients for a
// component of the given block geometry (edge pixels replicated).
func planeToCoefficients(p *Plane, blocksWide, blocksHigh int, q *[64]uint16) []int16 {
	out := make([]int16, blocksWide*blocksHigh*64)
	var px, freq, quant dct.Block
	for br := 0; br < blocksHigh; br++ {
		for bc := 0; bc < blocksWide; bc++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					px[y*8+x] = int32(p.At(bc*8+x, br*8+y)) - 128
				}
			}
			dct.Forward(&px, &freq)
			dct.Quantize(&freq, q, &quant)
			base := (br*blocksWide + bc) * 64
			for i := 0; i < 64; i++ {
				v := quant[i]
				// Clamp to baseline-representable magnitudes.
				if i == 0 {
					if v > 2047 {
						v = 2047
					}
					if v < -2048 {
						v = -2048
					}
				} else {
					if v > 1023 {
						v = 1023
					}
					if v < -1023 {
						v = -1023
					}
				}
				out[base+i] = int16(v)
			}
		}
	}
	return out
}

// Options controls JPEG synthesis.
type Options struct {
	Quality         int  // 1..100
	SubsampleChroma bool // 4:2:0 when true, 4:4:4 otherwise
	Grayscale       bool
	// CMYK emits a four-component file (components C,M,Y,K all 1x1); the
	// K plane is derived from inverted luma. Production Lepton rejected
	// these (§6.2); the optional 4th-channel model accepts them.
	CMYK            bool
	RestartInterval int
	PadBit          uint8
	// TrailerGarbage appends bytes after EOI (thumbnail-style junk, §A.3).
	TrailerGarbage []byte
}

// EncodeJPEG renders img to a baseline JPEG per opts using this repository's
// encoder.
func EncodeJPEG(img *Image, opts Options) ([]byte, error) {
	lq := dct.ScaleQuant(&dct.StdLuminanceQuant, opts.Quality)
	cq := dct.ScaleQuant(&dct.StdChrominanceQuant, opts.Quality)
	spec := &jpeg.EncodeSpec{
		Width:           img.Y.W,
		Height:          img.Y.H,
		RestartInterval: opts.RestartInterval,
		PadBit:          opts.PadBit,
	}
	spec.Quant[0] = lq
	spec.Quant[1] = cq
	spec.DC[0] = &huffman.StdDCLuminance
	spec.AC[0] = &huffman.StdACLuminance
	spec.DC[1] = &huffman.StdDCChrominance
	spec.AC[1] = &huffman.StdACChrominance

	var coeff [][]int16
	if opts.CMYK {
		spec.Components = []jpeg.Component{
			{ID: 'C', H: 1, V: 1, TQ: 0, TD: 0, TA: 0},
			{ID: 'M', H: 1, V: 1, TQ: 1, TD: 1, TA: 1},
			{ID: 'Y', H: 1, V: 1, TQ: 1, TD: 1, TA: 1},
			{ID: 'K', H: 1, V: 1, TQ: 0, TD: 0, TA: 0},
		}
		bw := (img.Y.W + 7) / 8
		bh := (img.Y.H + 7) / 8
		// Derive a K plane from inverted luma.
		k := NewPlane(img.Y.W, img.Y.H)
		for i, v := range img.Y.Pix {
			k.Pix[i] = 255 - v
		}
		coeff = [][]int16{
			planeToCoefficients(img.Y, bw, bh, &lq),
			planeToCoefficients(img.Cb, bw, bh, &cq),
			planeToCoefficients(img.Cr, bw, bh, &cq),
			planeToCoefficients(k, bw, bh, &lq),
		}
	} else if opts.Grayscale {
		spec.Components = []jpeg.Component{{ID: 1, H: 1, V: 1, TQ: 0, TD: 0, TA: 0}}
		bw := (img.Y.W + 7) / 8
		bh := (img.Y.H + 7) / 8
		coeff = [][]int16{planeToCoefficients(img.Y, bw, bh, &lq)}
	} else {
		sh, sv := 1, 1
		if opts.SubsampleChroma {
			sh, sv = 2, 2
		}
		spec.Components = []jpeg.Component{
			{ID: 1, H: sh, V: sv, TQ: 0, TD: 0, TA: 0},
			{ID: 2, H: 1, V: 1, TQ: 1, TD: 1, TA: 1},
			{ID: 3, H: 1, V: 1, TQ: 1, TD: 1, TA: 1},
		}
		mcuW := (img.Y.W + 8*sh - 1) / (8 * sh)
		mcuH := (img.Y.H + 8*sv - 1) / (8 * sv)
		coeff = [][]int16{
			planeToCoefficients(img.Y, mcuW*sh, mcuH*sv, &lq),
			planeToCoefficients(Subsample(img.Cb, sh, sv), mcuW, mcuH, &cq),
			planeToCoefficients(Subsample(img.Cr, sh, sv), mcuW, mcuH, &cq),
		}
	}
	data, err := jpeg.WriteBaseline(spec, coeff)
	if err != nil {
		return nil, err
	}
	if len(opts.TrailerGarbage) > 0 {
		data = append(data, opts.TrailerGarbage...)
	}
	return data, nil
}

// Generate produces a deterministic synthetic JPEG: seed selects content,
// size and encoding parameters.
func Generate(seed int64, w, h int) ([]byte, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x1ef7a9))
	img := Synthesize(seed, w, h)
	opts := Options{
		Quality:         []int{60, 72, 77, 83, 88, 92, 95}[rng.Intn(7)],
		SubsampleChroma: rng.Intn(3) != 0, // 2/3 of photos are 4:2:0
		Grayscale:       rng.Intn(12) == 0,
		PadBit:          1,
	}
	if rng.Intn(4) == 0 {
		opts.RestartInterval = []int{1, 2, 4, 8, 16, 64}[rng.Intn(6)]
	}
	if rng.Intn(10) == 0 {
		opts.PadBit = 0
	}
	if rng.Intn(16) == 0 {
		junk := make([]byte, rng.Intn(512)+16)
		rng.Read(junk)
		opts.TrailerGarbage = junk
	}
	return EncodeJPEG(img, opts)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
