package imagegen

import (
	"bytes"
	"math/rand"
)

// Corruptions reproduce the anomaly taxonomy of paper §6.2 and §A.3 so the
// error-code distribution table can be regenerated against this codec.

// MakeProgressive rewrites the SOF0 marker of a baseline JPEG to SOF2,
// producing a file Lepton must reject as Progressive.
func MakeProgressive(data []byte) []byte {
	out := append([]byte(nil), data...)
	if i := bytes.Index(out, []byte{0xFF, 0xC0}); i >= 0 {
		out[i+1] = 0xC2
	}
	return out
}

// CMYKStub builds a file whose SOF declares four components, as scanned
// CMYK TIFF-in-JPEG files do.
func CMYKStub() []byte {
	var b []byte
	b = append(b, 0xFF, 0xD8) // SOI
	// Minimal DQT (table 0, all ones).
	dqt := make([]byte, 0, 69)
	dqt = append(dqt, 0xFF, 0xDB, 0x00, 0x43, 0x00)
	for i := 0; i < 64; i++ {
		dqt = append(dqt, 1)
	}
	b = append(b, dqt...)
	// SOF0 with 4 components.
	sof := []byte{0xFF, 0xC0, 0x00, 0x14, 8, 0x00, 0x10, 0x00, 0x10, 4,
		1, 0x11, 0, 2, 0x11, 0, 3, 0x11, 0, 4, 0x11, 0}
	b = append(b, sof...)
	b = append(b, 0xFF, 0xD9)
	return b
}

// OversizeStub builds a structurally valid baseline JPEG whose decode
// would exceed the memory ceiling even streamed: the frame is as wide as
// the format allows (the row window scales with width × segment count) and
// the file is padded past the encoder's 8-segment size cutoff with trailer
// bytes, as real camera files with appended data blobs are. The scan
// itself is empty — admission control rejects on the header geometry
// before ever reading a coefficient, exactly like production (§6.2).
func OversizeStub(seed int64) []byte {
	var b []byte
	b = append(b, 0xFF, 0xD8) // SOI
	// DQT table 0, all ones.
	b = append(b, 0xFF, 0xDB, 0x00, 0x43, 0x00)
	for i := 0; i < 64; i++ {
		b = append(b, 1)
	}
	// SOF0: 8-bit, 65504x65504, three 4:4:4 components on table 0.
	b = append(b, 0xFF, 0xC0, 0x00, 0x11, 8, 0xFF, 0xE0, 0xFF, 0xE0, 3,
		1, 0x11, 0, 2, 0x11, 0, 3, 0x11, 0)
	// DHT: one 1-bit code, symbol 0, for DC table 0 and AC table 0.
	b = append(b, 0xFF, 0xC4, 0x00, 0x14, 0x00, 1)
	b = append(b, make([]byte, 15)...)
	b = append(b, 0x00)
	b = append(b, 0xFF, 0xC4, 0x00, 0x14, 0x10, 1)
	b = append(b, make([]byte, 15)...)
	b = append(b, 0x00)
	// SOS over all three components, then an empty scan terminated by EOI.
	b = append(b, 0xFF, 0xDA, 0x00, 0x0C, 3, 1, 0x00, 2, 0x00, 3, 0x00, 0, 63, 0)
	b = append(b, 0xFF, 0xD9)
	// Trailer blob pushing the file size over the 8-thread-segment cutoff.
	rng := rand.New(rand.NewSource(seed))
	junk := make([]byte, 1600<<10)
	rng.Read(junk)
	return append(b, junk...)
}

// NotImage produces bytes that begin with the JPEG start-of-image marker but
// contain no JPEG structure — the "chunk sampled by SOI magic" false
// positives in the paper's benchmark set.
func NotImage(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	out[0], out[1] = 0xFF, 0xD8
	// Ensure the byte after SOI is not a plausible marker prefix.
	if out[2] == 0xFF {
		out[2] = 0x42
	}
	return out
}

// HeaderOnly strips everything from the SOS marker on and terminates with
// EOI: a JPEG "consisting entirely of a header" (§6.2, Unsupported).
func HeaderOnly(data []byte) []byte {
	if i := bytes.Index(data, []byte{0xFF, 0xDA}); i >= 0 {
		out := append([]byte(nil), data[:i]...)
		return append(out, 0xFF, 0xD9)
	}
	return data
}

// Truncate cuts the file after frac of its bytes, as an interrupted upload
// or unsynced disk page would.
func Truncate(data []byte, frac float64) []byte {
	n := int(float64(len(data)) * frac)
	if n < 2 {
		n = 2
	}
	if n > len(data) {
		n = len(data)
	}
	return append([]byte(nil), data[:n]...)
}

// ZeroFillTail overwrites the last n bytes before EOI with zeros — the most
// prevalent corruption the paper saw (failing hardware writing unsynced
// pages, §A.3). Depending on restart markers the file may or may not
// round-trip.
func ZeroFillTail(data []byte, n int) []byte {
	out := append([]byte(nil), data...)
	end := len(out)
	if end >= 2 && out[end-2] == 0xFF && out[end-1] == 0xD9 {
		end -= 2
	}
	start := end - n
	if start < 0 {
		start = 0
	}
	for i := start; i < end; i++ {
		out[i] = 0
	}
	return out
}

// AppendSecondImage concatenates a second JPEG after the first (thumbnail +
// full image files, §A.3); Lepton compresses only the first and must
// reproduce the rest verbatim.
func AppendSecondImage(first, second []byte) []byte {
	out := append([]byte(nil), first...)
	return append(out, second...)
}

// BigChromaStub builds a file whose chroma subsampling ratio exceeds what
// the deployed Lepton's framebuffer slice supports (§6.2 "Chroma subsample
// big"): luma sampled 4x4 against 1x1 chroma.
func BigChromaStub() []byte {
	var b []byte
	b = append(b, 0xFF, 0xD8)
	dqt := append([]byte{0xFF, 0xDB, 0x00, 0x43, 0x00}, bytes.Repeat([]byte{1}, 64)...)
	b = append(b, dqt...)
	sof := []byte{0xFF, 0xC0, 0x00, 0x11, 8, 0x00, 0x40, 0x00, 0x40, 3,
		1, 0x44, 0, 2, 0x11, 0, 3, 0x11, 0}
	b = append(b, sof...)
	b = append(b, 0xFF, 0xD9)
	return b
}
