//go:build amd64 && !noasm

package dct

import (
	"lepton/internal/cpufeat"
)

// useAVX2 gates the assembly kernels; cpufeat is an imported package, so
// its CPUID probe runs before this initializer.
var useAVX2 = cpufeat.X86.HasAVX2

// InverseBorder computes the border samples of the AC-only inverse DCT;
// see inverseBorderGo for the full contract. On AVX2 hosts the assembly
// kernel wins at every block density — its row skipping keeps the
// near-empty case cheap while dense blocks amortize the vector width — so
// dispatch is unconditional (measured 2.0x at 1 nonzero, 3.5x at 8); it is
// bit-identical to the scalar path (differential-tested and fuzzed).
func InverseBorder(coef []int16, q *[64]uint16, dst *Block) {
	_ = coef[:64]
	if useAVX2 {
		inverseBorderAVX2(&coef[0], q, dst)
		return
	}
	inverseBorderGo(coef, q, dst)
}

// NonzeroMask returns the raster-order occupancy mask of 64 coefficients:
// bit i set iff coef[i] != 0 (bit 0 = DC).
func NonzeroMask(coef []int16) uint64 {
	_ = coef[:64]
	if useAVX2 {
		return nonzeroMask64AVX2(&coef[0])
	}
	return nonzeroMaskGo(coef)
}

// NonzeroMask32 is NonzeroMask over an int32 sample/coefficient block.
func NonzeroMask32(b *Block) uint64 {
	if useAVX2 {
		return nonzeroMask32AVX2(b)
	}
	return nonzeroMask32Go(b)
}

// Implemented in dct_amd64.s. The noescape promises keep caller blocks on
// their stacks: without them every &block passed in is forced to the heap,
// one allocation per coded block.
//
//go:noescape
func inverseBorderAVX2(coef *int16, q *[64]uint16, dst *Block)

//go:noescape
func nonzeroMask64AVX2(coef *int16) uint64

//go:noescape
func nonzeroMask32AVX2(b *Block) uint64
