// Package dct implements the 8x8 discrete cosine transform used by baseline
// JPEG, in deterministic fixed-point integer arithmetic, together with the
// zigzag scan order and quantization helpers.
//
// Determinism matters more than speed here: Lepton's DC predictor runs the
// inverse transform on both the encode and decode paths and the two must
// agree bit-for-bit on every platform (paper §5.2). All math is int32/int64
// with explicit scaling; no floating point.
package dct

// Zigzag maps zigzag scan position -> raster position within an 8x8 block.
var Zigzag = [64]uint8{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Unzigzag maps raster position -> zigzag scan position.
var Unzigzag [64]uint8

func init() {
	for z, r := range Zigzag {
		Unzigzag[r] = uint8(z)
	}
}

// BasisScaleBits is the fixed-point scale of the Basis table.
const BasisScaleBits = 13

// Basis holds the orthonormal 8-point DCT basis B[u][x] =
// s(u)*cos((2x+1)uπ/16) with s(0)=sqrt(1/8), s(u>0)=1/2, scaled by
// 2^BasisScaleBits and rounded to nearest. Pixel values of a block are
// P(x,y) = Σ_u Σ_v B[u][x] B[v][y] F[v*8+u] (with F in natural raster order,
// u horizontal). Lepton's Lakhani edge predictor solves linear equations in
// these basis values (paper A.2.2).
var Basis = [8][8]int32{
	{2896, 2896, 2896, 2896, 2896, 2896, 2896, 2896},
	{4017, 3406, 2276, 799, -799, -2276, -3406, -4017},
	{3784, 1567, -1567, -3784, -3784, -1567, 1567, 3784},
	{3406, -799, -4017, -2276, 2276, 4017, 799, -3406},
	{2896, -2896, -2896, 2896, 2896, -2896, -2896, 2896},
	{2276, -4017, 799, 3406, -3406, -799, 4017, -2276},
	{1567, -3784, 3784, -1567, -1567, 3784, -3784, 1567},
	{799, -2276, 3406, -4017, 4017, -3406, 2276, -799},
}

// Block is an 8x8 block of DCT coefficients or samples in raster order.
type Block [64]int32

// Forward computes the 2-D orthonormal DCT of the 64 samples in src (raster
// order, typically level-shifted pixel values) into dst. dst[v*8+u] is the
// coefficient of horizontal frequency u and vertical frequency v.
func Forward(src, dst *Block) {
	var tmp Block
	// Rows: 1-D DCT along x for each y.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var acc int64
			for x := 0; x < 8; x++ {
				acc += int64(Basis[u][x]) * int64(src[y*8+x])
			}
			tmp[y*8+u] = int32(round(acc, BasisScaleBits))
		}
	}
	// Columns: 1-D DCT along y for each u.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var acc int64
			for y := 0; y < 8; y++ {
				acc += int64(Basis[v][y]) * int64(tmp[y*8+u])
			}
			dst[v*8+u] = int32(round(acc, BasisScaleBits))
		}
	}
}

// Inverse computes the 2-D inverse orthonormal DCT of the coefficients in
// src into dst (raster-order samples, not level-shifted or clamped).
//
// Rounding is a simple biased shift, deterministic across platforms; this
// is the hot path of Lepton's DC predictor, which only needs encoder and
// decoder to agree exactly, not to match a reference IDCT.
func Inverse(src, dst *Block) {
	const half = 1 << (BasisScaleBits - 1)
	// Columns first: sum over v, skipping zero coefficients — quantized
	// blocks are sparse, and the cost of this pass scales with the number
	// of nonzeros.
	var acc [64]int64
	for v := 0; v < 8; v++ {
		row := src[v*8 : v*8+8]
		b := &Basis[v]
		for u := 0; u < 8; u++ {
			c := int64(row[u])
			if c == 0 {
				continue
			}
			for y := 0; y < 8; y++ {
				acc[y*8+u] += int64(b[y]) * c
			}
		}
	}
	var tmp Block
	for i := range tmp {
		tmp[i] = int32((acc[i] + half) >> BasisScaleBits)
	}
	// Rows: sum over u, skipping zero intermediates the same way — a column
	// with no nonzero coefficient contributes exactly zero to every sample
	// (the +half bias rounds a zero sum to zero), so dropping its term
	// leaves the int64 accumulation bit-identical while the cost again
	// scales with the number of occupied columns.
	for y := 0; y < 8; y++ {
		t := tmp[y*8 : y*8+8]
		var a [8]int64
		for u := 0; u < 8; u++ {
			c := int64(t[u])
			if c == 0 {
				continue
			}
			b := &Basis[u]
			for x := 0; x < 8; x++ {
				a[x] += int64(b[x]) * c
			}
		}
		for x := 0; x < 8; x++ {
			dst[y*8+x] = int32((a[x] + half) >> BasisScaleBits)
		}
	}
}

// inverseBorderGo is the portable implementation of InverseBorder (see the
// build-tagged wrappers): the inverse transform of a block's dequantized AC
// coefficients (coef[i]*q[i], index 0 treated as zero), restricted to the
// frame samples consumed by Lepton's DC predictor and edge caches: every
// sample of rows 0, 1, 6, 7 and columns 0, 1, 6, 7. The 16 interior samples
// (x and y both in 2..5) are left untouched — callers pass a zeroed block
// and never read them. Dequantization is fused into the column pass so the
// sparse common case touches only the nonzero coefficients; computed
// samples are bit-identical to dequantizing into a block and running
// Inverse, so encoder and decoder stay in exact agreement (paper §5.2).
//
// The AVX2 kernel in dct_amd64.s computes the same samples densely (the
// sparse skips here only ever drop exact-zero contributions, and the +half
// biased shift maps a zero sum to zero, so dense and sparse evaluation are
// bit-identical); the dispatch wrapper routes dense blocks to it and keeps
// near-empty blocks here, where skipping wins.
func inverseBorderGo(coef []int16, q *[64]uint16, dst *Block) {
	const half = 1 << (BasisScaleBits - 1)
	var acc [64]int64
	var occ [8]bool // columns with any nonzero coefficient
	for v := 0; v < 8; v++ {
		row := coef[v*8 : v*8+8]
		qr := q[v*8 : v*8+8]
		b := &Basis[v]
		u := 0
		if v == 0 {
			u = 1 // AC only: the DC coefficient is treated as zero
		}
		for ; u < 8; u++ {
			if row[u] == 0 {
				continue
			}
			c := int64(row[u]) * int64(qr[u])
			occ[u] = true
			for y := 0; y < 8; y++ {
				acc[y*8+u] += int64(b[y]) * c
			}
		}
	}
	// Intermediates of untouched columns are exactly zero ((0+half)>>scale),
	// so only occupied columns need converting into the zeroed tmp.
	var tmp Block
	for u := 0; u < 8; u++ {
		if !occ[u] {
			continue
		}
		for y := 0; y < 8; y++ {
			tmp[y*8+u] = int32((acc[y*8+u] + half) >> BasisScaleBits)
		}
	}
	for y := 0; y < 8; y++ {
		t := tmp[y*8 : y*8+8]
		var a [8]int64
		if y >= 2 && y <= 5 {
			// Interior rows: only the left and right column pairs are read.
			for u := 0; u < 8; u++ {
				c := int64(t[u])
				if c == 0 {
					continue
				}
				b := &Basis[u]
				a[0] += int64(b[0]) * c
				a[1] += int64(b[1]) * c
				a[6] += int64(b[6]) * c
				a[7] += int64(b[7]) * c
			}
			dst[y*8+0] = int32((a[0] + half) >> BasisScaleBits)
			dst[y*8+1] = int32((a[1] + half) >> BasisScaleBits)
			dst[y*8+6] = int32((a[6] + half) >> BasisScaleBits)
			dst[y*8+7] = int32((a[7] + half) >> BasisScaleBits)
			continue
		}
		for u := 0; u < 8; u++ {
			c := int64(t[u])
			if c == 0 {
				continue
			}
			b := &Basis[u]
			for x := 0; x < 8; x++ {
				a[x] += int64(b[x]) * c
			}
		}
		for x := 0; x < 8; x++ {
			dst[y*8+x] = int32((a[x] + half) >> BasisScaleBits)
		}
	}
}

func round(v int64, bits uint) int64 {
	if v >= 0 {
		return (v + 1<<(bits-1)) >> bits
	}
	return -((-v + 1<<(bits-1)) >> bits)
}

// Quantize divides coefficients by the quantization table (raster order)
// with round-to-nearest, as a JPEG encoder does.
func Quantize(coeffs *Block, q *[64]uint16, out *Block) {
	for i := 0; i < 64; i++ {
		d := int64(q[i])
		out[i] = int32(round2(int64(coeffs[i]), d))
	}
}

func round2(v, d int64) int64 {
	if v >= 0 {
		return (v + d/2) / d
	}
	return -((-v + d/2) / d)
}

// Dequantize multiplies quantized coefficients by the quantization table.
func Dequantize(coeffs *Block, q *[64]uint16, out *Block) {
	for i := 0; i < 64; i++ {
		out[i] = coeffs[i] * int32(q[i])
	}
}

// StdLuminanceQuant and StdChrominanceQuant are the example quantization
// tables from JPEG Annex K, in raster order, at quality 50.
var StdLuminanceQuant = [64]uint16{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

var StdChrominanceQuant = [64]uint16{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// ScaleQuant scales an Annex K table to the libjpeg quality convention
// (1..100) and clamps entries to [1, 255] so they fit 8-bit DQT precision.
func ScaleQuant(base *[64]uint16, quality int) [64]uint16 {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - quality*2
	}
	var out [64]uint16
	for i, v := range base {
		q := (int(v)*scale + 50) / 100
		if q < 1 {
			q = 1
		}
		if q > 255 {
			q = 255
		}
		out[i] = uint16(q)
	}
	return out
}
