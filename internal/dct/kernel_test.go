package dct

import (
	"math/rand"
	"testing"
)

// randCoef fills a 64-coefficient block with n nonzeros at random raster
// positions, values spanning the full int16 range.
func randCoef(rng *rand.Rand, n int) []int16 {
	coef := make([]int16, 64)
	for i := 0; i < n; i++ {
		coef[rng.Intn(64)] = int16(rng.Intn(1<<16) - 1<<15)
	}
	return coef
}

func randQuant(rng *rand.Rand) *[64]uint16 {
	var q [64]uint16
	for i := range q {
		q[i] = uint16(rng.Intn(1 << 16))
	}
	return &q
}

// TestInverseBorderParity drives the dispatched InverseBorder against the
// portable implementation across the sparsity spectrum, including the
// extreme magnitudes where intermediate sums need all of int64 and the
// int32 conversion wraps.
func TestInverseBorderParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 5000; iter++ {
		coef := randCoef(rng, iter%65)
		q := randQuant(rng)
		var got, want Block
		InverseBorder(coef, q, &got)
		inverseBorderGo(coef, q, &want)
		if got != want {
			t.Fatalf("iter %d: InverseBorder diverges from portable path\ncoef=%v\nq=%v\ngot=%v\nwant=%v", iter, coef, q, got, want)
		}
	}
}

func TestNonzeroMaskParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 5000; iter++ {
		coef := randCoef(rng, iter%65)
		if got, want := NonzeroMask(coef), nonzeroMaskGo(coef); got != want {
			t.Fatalf("iter %d: NonzeroMask=%#x, portable=%#x, coef=%v", iter, got, want, coef)
		}
	}
}

func TestNonzeroMask32Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 5000; iter++ {
		var b Block
		for i := 0; i < iter%65; i++ {
			b[rng.Intn(64)] = rng.Int31() - 1<<30
		}
		if got, want := NonzeroMask32(&b), nonzeroMask32Go(&b); got != want {
			t.Fatalf("iter %d: NonzeroMask32=%#x, portable=%#x, block=%v", iter, got, want, b)
		}
	}
}

func TestZigzagMask(t *testing.T) {
	for z := 0; z < 64; z++ {
		if got := ZigzagMask(1 << Zigzag[z]); got != 1<<uint(z) {
			t.Fatalf("ZigzagMask(1<<Zigzag[%d]) = %#x, want %#x", z, got, 1<<uint(z))
		}
	}
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 1000; iter++ {
		raster := rng.Uint64()
		var want uint64
		for z := 0; z < 64; z++ {
			if raster&(1<<Zigzag[z]) != 0 {
				want |= 1 << uint(z)
			}
		}
		if got := ZigzagMask(raster); got != want {
			t.Fatalf("ZigzagMask(%#x) = %#x, want %#x", raster, got, want)
		}
	}
}

// FuzzKernelParity cross-checks every SIMD kernel in this package against
// its pure-Go twin on fuzzer-chosen blocks and quantization tables. On
// builds without the kernels the dispatch wrappers are the portable code
// and the comparison is trivially green — the target still runs, so a CI
// matrix with and without asm exercises both sides.
func FuzzKernelParity(f *testing.F) {
	f.Add(make([]byte, 256), uint8(0))
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed, uint8(255))
	f.Fuzz(func(t *testing.T, raw []byte, salt uint8) {
		if len(raw) < 256 {
			return
		}
		coef := make([]int16, 64)
		var q [64]uint16
		var b32 Block
		for i := 0; i < 64; i++ {
			coef[i] = int16(raw[2*i]) | int16(raw[2*i+1])<<8
			q[i] = uint16(raw[128+i]) | uint16(salt)<<8
			b32[i] = int32(coef[i]) * int32(q[i])
		}
		var got, want Block
		InverseBorder(coef, &q, &got)
		inverseBorderGo(coef, &q, &want)
		if got != want {
			t.Fatalf("InverseBorder diverges from portable path\ncoef=%v\nq=%v", coef, q)
		}
		if g, w := NonzeroMask(coef), nonzeroMaskGo(coef); g != w {
			t.Fatalf("NonzeroMask=%#x portable=%#x coef=%v", g, w, coef)
		}
		if g, w := NonzeroMask32(&b32), nonzeroMask32Go(&b32); g != w {
			t.Fatalf("NonzeroMask32=%#x portable=%#x block=%v", g, w, b32)
		}
	})
}

// BenchmarkInverseBorder measures the dispatched border-IDCT path (AVX2 on
// capable amd64 hosts, pure Go otherwise); it is untagged so the noasm CI
// bench-smoke exercises the fallback kernel.
func BenchmarkInverseBorder(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	q := ScaleQuant(&StdLuminanceQuant, 75)
	for _, n := range []int{2, 8, 32} {
		coef := randCoef(rng, n)
		b.Run(string(rune('0'+n/10))+string(rune('0'+n%10))+"nz", func(b *testing.B) {
			var dst Block
			for i := 0; i < b.N; i++ {
				InverseBorder(coef, &q, &dst)
			}
		})
	}
}
