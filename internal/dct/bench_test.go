package dct

import (
	"math/rand"
	"testing"
)

func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var src, dst Block
	for i := range src {
		src[i] = int32(rng.Intn(256) - 128)
	}
	for i := 0; i < b.N; i++ {
		Forward(&src, &dst)
	}
}

func BenchmarkInverseDense(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var src, dst Block
	for i := range src {
		src[i] = int32(rng.Intn(2048) - 1024)
	}
	for i := 0; i < b.N; i++ {
		Inverse(&src, &dst)
	}
}

func BenchmarkInverseSparse(b *testing.B) {
	// Typical quantized block: ~10 nonzero coefficients. The first IDCT
	// pass skips zeros, so this should run well under the dense time.
	rng := rand.New(rand.NewSource(3))
	var src, dst Block
	for j := 0; j < 10; j++ {
		src[Zigzag[rng.Intn(20)]] = int32(rng.Intn(200) - 100)
	}
	for i := 0; i < b.N; i++ {
		Inverse(&src, &dst)
	}
}
