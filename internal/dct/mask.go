package dct

// Nonzero masks and the zigzag bit permutation.
//
// Lepton's per-block model spends a surprising share of its time just
// *finding* the nonzero coefficients: the 7x7 count walks 49 scattered
// raster positions, the edge counts walk two more strides, and the baseline
// scan encoder walks all 63 AC positions in zigzag order even when a block
// holds three nonzeros. A single 64-bit occupancy mask answers all of those
// with popcounts and trailing-zero iteration, and on amd64 the mask itself
// is produced by an AVX2 compare+movemask kernel (see dct_amd64.s).

// nonzeroMaskGo is the portable NonzeroMask: bit i set iff coef[i] != 0,
// raster order, bit 0 = DC.
func nonzeroMaskGo(coef []int16) uint64 {
	_ = coef[:64]
	var m uint64
	for i := 0; i < 64; i++ {
		if coef[i] != 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// nonzeroMask32Go is the portable NonzeroMask32 over an int32 block.
func nonzeroMask32Go(b *Block) uint64 {
	var m uint64
	for i := 0; i < 64; i++ {
		if b[i] != 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// zigzagMaskTab[i][b] is the zigzag-order image of raster-mask byte i
// holding bits b: OR over set bits j of 1 << Unzigzag[i*8+j]. Eight lookups
// permute a full 64-bit mask. 16 KiB, built once at init.
var zigzagMaskTab [8][256]uint64

func init() {
	for i := 0; i < 8; i++ {
		for b := 0; b < 256; b++ {
			var m uint64
			for j := 0; j < 8; j++ {
				if b&(1<<uint(j)) != 0 {
					m |= 1 << Unzigzag[i*8+j]
				}
			}
			zigzagMaskTab[i][b] = m
		}
	}
}

// ZigzagMask permutes a raster-order 64-bit block mask (bit r = raster
// position r) into zigzag order (bit z set iff bit Zigzag[z] was set).
func ZigzagMask(raster uint64) uint64 {
	return zigzagMaskTab[0][raster&0xFF] |
		zigzagMaskTab[1][raster>>8&0xFF] |
		zigzagMaskTab[2][raster>>16&0xFF] |
		zigzagMaskTab[3][raster>>24&0xFF] |
		zigzagMaskTab[4][raster>>32&0xFF] |
		zigzagMaskTab[5][raster>>40&0xFF] |
		zigzagMaskTab[6][raster>>48&0xFF] |
		zigzagMaskTab[7][raster>>56&0xFF]
}
