package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZigzagIsPermutation(t *testing.T) {
	var seen [64]bool
	for _, r := range Zigzag {
		if r >= 64 || seen[r] {
			t.Fatalf("zigzag not a permutation at %d", r)
		}
		seen[r] = true
	}
	for z, r := range Zigzag {
		if Unzigzag[r] != uint8(z) {
			t.Fatalf("unzigzag mismatch at %d", z)
		}
	}
}

func TestZigzagKnownPrefix(t *testing.T) {
	// First entries of the standard zigzag order.
	want := []uint8{0, 1, 8, 16, 9, 2, 3, 10, 17, 24}
	for i, w := range want {
		if Zigzag[i] != w {
			t.Fatalf("Zigzag[%d] = %d, want %d", i, Zigzag[i], w)
		}
	}
	if Zigzag[63] != 63 {
		t.Fatalf("Zigzag[63] = %d", Zigzag[63])
	}
}

func TestBasisOrthonormal(t *testing.T) {
	// Rows of the basis must be orthonormal within fixed-point tolerance.
	scale := float64(int64(1) << BasisScaleBits)
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var dot float64
			for x := 0; x < 8; x++ {
				dot += float64(Basis[u][x]) * float64(Basis[v][x])
			}
			dot /= scale * scale
			want := 0.0
			if u == v {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-3 {
				t.Fatalf("basis rows %d,%d: dot = %v", u, v, dot)
			}
		}
	}
}

func TestDCOfConstantBlock(t *testing.T) {
	var src, dst Block
	for i := range src {
		src[i] = 100
	}
	Forward(&src, &dst)
	// Orthonormal DCT of a constant c has DC = 8c and zero AC.
	if dst[0] != 800 {
		t.Fatalf("DC = %d, want 800", dst[0])
	}
	for i := 1; i < 64; i++ {
		if dst[i] < -1 || dst[i] > 1 {
			t.Fatalf("AC[%d] = %d, want ~0", i, dst[i])
		}
	}
}

func TestForwardInverseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var src, freq, back Block
		for i := range src {
			src[i] = int32(rng.Intn(256) - 128)
		}
		Forward(&src, &freq)
		Inverse(&freq, &back)
		for i := range src {
			d := src[i] - back[i]
			if d < -2 || d > 2 {
				t.Fatalf("trial %d: sample %d: %d -> %d", trial, i, src[i], back[i])
			}
		}
	}
}

func TestInverseDeterministic(t *testing.T) {
	// The DC predictor depends on Inverse being bit-identical between
	// encode and decode; run it twice on the same input.
	rng := rand.New(rand.NewSource(3))
	var src, a, b Block
	for i := range src {
		src[i] = int32(rng.Intn(2048) - 1024)
	}
	Inverse(&src, &a)
	Inverse(&src, &b)
	if a != b {
		t.Fatal("Inverse is not deterministic")
	}
}

func TestQuantizeDequantize(t *testing.T) {
	q := StdLuminanceQuant
	var src, quant, deq Block
	src[0] = 1000
	src[1] = -57
	src[63] = 99
	Quantize(&src, &q, &quant)
	if quant[0] != 63 { // 1000/16 = 62.5 -> 63 round to nearest
		t.Fatalf("quant[0] = %d", quant[0])
	}
	if quant[1] != -5 { // -57/11 = -5.18 -> -5
		t.Fatalf("quant[1] = %d", quant[1])
	}
	if quant[63] != 1 { // 99/99 = 1
		t.Fatalf("quant[63] = %d", quant[63])
	}
	Dequantize(&quant, &q, &deq)
	if deq[0] != 63*16 || deq[1] != -55 {
		t.Fatalf("dequant = %d, %d", deq[0], deq[1])
	}
}

func TestQuantizeRoundsAwayTies(t *testing.T) {
	q := [64]uint16{}
	for i := range q {
		q[i] = 2
	}
	var src, out Block
	src[0] = 3  // 1.5 -> 2
	src[1] = -3 // -1.5 -> -2
	Quantize(&src, &q, &out)
	if out[0] != 2 || out[1] != -2 {
		t.Fatalf("tie rounding: %d, %d", out[0], out[1])
	}
}

func TestScaleQuantQualityMonotone(t *testing.T) {
	q50 := ScaleQuant(&StdLuminanceQuant, 50)
	q90 := ScaleQuant(&StdLuminanceQuant, 90)
	q10 := ScaleQuant(&StdLuminanceQuant, 10)
	for i := 0; i < 64; i++ {
		if q90[i] > q50[i] {
			t.Fatalf("q90[%d]=%d > q50[%d]=%d", i, q90[i], i, q50[i])
		}
		if q10[i] < q50[i] {
			t.Fatalf("q10[%d]=%d < q50[%d]=%d", i, q10[i], i, q50[i])
		}
		if q90[i] < 1 || q10[i] > 255 {
			t.Fatalf("quant bounds violated at %d", i)
		}
	}
	if q50 != StdLuminanceQuant {
		t.Fatal("quality 50 must be the base table")
	}
}

func TestQuickForwardInverseWithinQuantBounds(t *testing.T) {
	// Property: quantize-dequantize-inverse reconstructs pixels within the
	// quantization error bound (loose: sum of q/2 energy).
	q := ScaleQuant(&StdLuminanceQuant, 90)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var src, freq, qf, dq, back Block
		for i := range src {
			src[i] = int32(rng.Intn(256) - 128)
		}
		Forward(&src, &freq)
		Quantize(&freq, &q, &qf)
		Dequantize(&qf, &q, &dq)
		Inverse(&dq, &back)
		for i := range src {
			d := float64(src[i] - back[i])
			if math.Abs(d) > 40 { // generous bound for q90
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestInverseBorderMatchesInverse drives the fused dequantize-and-transform
// against dequantizing by hand and running the full Inverse, with random
// sparse and dense blocks, and requires bit-identical samples everywhere
// InverseBorder is specified to compute (rows and columns 0, 1, 6, 7), and
// untouched zeros in the interior. The model's DC predictor and edge caches
// rely on exactly this agreement (paper §5.2).
func TestInverseBorderMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5000; trial++ {
		coef := make([]int16, 64)
		var q [64]uint16
		for i := range q {
			q[i] = uint16(rng.Intn(65535) + 1)
		}
		// Mix densities: from near-empty (the common quantized case) to full.
		// Magnitudes stay below 2^13, the model's coded-magnitude cap.
		n := rng.Intn(64)
		for i := 0; i < n; i++ {
			coef[rng.Intn(64)] = int16(rng.Intn(1<<14) - 1<<13)
		}
		var src Block
		for i := 1; i < 64; i++ {
			src[i] = int32(coef[i]) * int32(q[i])
		}
		var full, border Block
		Inverse(&src, &full)
		InverseBorder(coef, &q, &border)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				interior := y >= 2 && y <= 5 && x >= 2 && x <= 5
				if interior {
					if border[y*8+x] != 0 {
						t.Fatalf("trial %d: interior sample (%d,%d) written: %d", trial, x, y, border[y*8+x])
					}
					continue
				}
				if border[y*8+x] != full[y*8+x] {
					t.Fatalf("trial %d: sample (%d,%d) = %d, Inverse = %d", trial, x, y, border[y*8+x], full[y*8+x])
				}
			}
		}
	}
}
