//go:build amd64 && !noasm

package dct

import (
	"math/rand"
	"testing"
)

// TestInverseBorderAVX2Direct bypasses the sparsity dispatch and runs the
// assembly kernel on every density, including the near-empty blocks the
// wrapper would route to the scalar path — the kernel must be bit-identical
// everywhere, not just where dispatch happens to send work today.
func TestInverseBorderAVX2Direct(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 5000; iter++ {
		coef := randCoef(rng, iter%65)
		q := randQuant(rng)
		var got, want Block
		inverseBorderAVX2(&coef[0], q, &got)
		inverseBorderGo(coef, q, &want)
		if got != want {
			t.Fatalf("iter %d: asm kernel diverges\ncoef=%v\nq=%v\ngot=%v\nwant=%v", iter, coef, q, got, want)
		}
	}
}

// TestInverseBorderAVX2Extremes pins the overflow corners: saturated
// coefficients against saturated quantizers drive column sums past 2^45
// and the int32 intermediate conversion into wraparound; the kernel's
// 64-bit lanes and low-dword extracts must wrap exactly like the Go code.
func TestInverseBorderAVX2Extremes(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	var q [64]uint16
	for i := range q {
		q[i] = 65535
	}
	cases := [][]int16{
		func() []int16 {
			c := make([]int16, 64)
			for i := range c {
				c[i] = 32767
			}
			return c
		}(),
		func() []int16 {
			c := make([]int16, 64)
			for i := range c {
				c[i] = -32768
			}
			return c
		}(),
		func() []int16 {
			c := make([]int16, 64)
			for i := range c {
				if i%2 == 0 {
					c[i] = 32767
				} else {
					c[i] = -32768
				}
			}
			return c
		}(),
	}
	for i, coef := range cases {
		var got, want Block
		inverseBorderAVX2(&coef[0], &q, &got)
		inverseBorderGo(coef, &q, &want)
		if got != want {
			t.Fatalf("extreme case %d: asm kernel diverges\ngot=%v\nwant=%v", i, got, want)
		}
	}
}

func BenchmarkInverseBorderGo(b *testing.B) {
	benchInverseBorder(b, func(coef []int16, q *[64]uint16, dst *Block) { inverseBorderGo(coef, q, dst) })
}

func BenchmarkInverseBorderAVX2(b *testing.B) {
	if !useAVX2 {
		b.Skip("no AVX2 on this host")
	}
	benchInverseBorder(b, func(coef []int16, q *[64]uint16, dst *Block) { inverseBorderAVX2(&coef[0], q, dst) })
}

func benchInverseBorder(b *testing.B, fn func([]int16, *[64]uint16, *Block)) {
	rng := rand.New(rand.NewSource(6))
	q := ScaleQuant(&StdLuminanceQuant, 75)
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		coef := randCoef(rng, n)
		b.Run(string(rune('0'+n/10))+string(rune('0'+n%10))+"nz", func(b *testing.B) {
			var dst Block
			for i := 0; i < b.N; i++ {
				fn(coef, &q, &dst)
			}
		})
	}
}
