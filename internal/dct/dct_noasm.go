//go:build !amd64 || noasm

package dct

// InverseBorder computes the border samples of the AC-only inverse DCT;
// see inverseBorderGo for the full contract. This build has no assembly
// kernels, so it is the scalar path directly.
func InverseBorder(coef []int16, q *[64]uint16, dst *Block) {
	inverseBorderGo(coef, q, dst)
}

// NonzeroMask returns the raster-order occupancy mask of 64 coefficients:
// bit i set iff coef[i] != 0 (bit 0 = DC).
func NonzeroMask(coef []int16) uint64 { return nonzeroMaskGo(coef) }

// NonzeroMask32 is NonzeroMask over an int32 sample/coefficient block.
func NonzeroMask32(b *Block) uint64 { return nonzeroMask32Go(b) }
