//go:build amd64 && !noasm

#include "textflag.h"
#include "funcdata.h"

// AVX2 kernels for the per-block hot path. Bit-identity with the scalar
// code in dct.go is load-bearing (paper §5.2: encoder and decoder must
// agree exactly), so the arithmetic here mirrors it operation for
// operation:
//
//   - products and sums are evaluated in 64-bit lanes (a dequantized
//     coefficient reaches +/-2^31 and a basis-weighted sum 2^46, so 32-bit
//     accumulation would wrap differently than the Go code's int64);
//   - the biased rounding shift int32((acc + 4096) >> 13) needs only bits
//     13..44 of the 64-bit sum, so a *logical* 64-bit shift followed by a
//     low-dword extract reproduces the arithmetic-shift-then-truncate
//     exactly (AVX2 has no 64-bit arithmetic shift, but none is needed);
//   - the scalar code's sparse skips only ever drop exact-zero
//     contributions, and (0 + 4096) >> 13 == 0, so evaluating densely
//     yields bit-identical samples.

// lowIdx gathers the low dwords of four 64-bit lanes into the low xmm half.
DATA lowIdx<>+0(SB)/4, $0
DATA lowIdx<>+4(SB)/4, $2
DATA lowIdx<>+8(SB)/4, $4
DATA lowIdx<>+12(SB)/4, $6
DATA lowIdx<>+16(SB)/4, $0
DATA lowIdx<>+20(SB)/4, $0
DATA lowIdx<>+24(SB)/4, $0
DATA lowIdx<>+28(SB)/4, $0
GLOBL lowIdx<>(SB), RODATA|NOPTR, $32

// hiIdx gathers the low dwords of 64-bit lanes 2 and 3 (samples x=6,7).
DATA hiIdx<>+0(SB)/4, $4
DATA hiIdx<>+4(SB)/4, $6
DATA hiIdx<>+8(SB)/4, $0
DATA hiIdx<>+12(SB)/4, $0
DATA hiIdx<>+16(SB)/4, $0
DATA hiIdx<>+20(SB)/4, $0
DATA hiIdx<>+24(SB)/4, $0
DATA hiIdx<>+28(SB)/4, $0
GLOBL hiIdx<>(SB), RODATA|NOPTR, $32

// halfQ is the rounding bias 1<<(BasisScaleBits-1) in each int64 lane.
DATA halfQ<>+0(SB)/8, $4096
DATA halfQ<>+8(SB)/8, $4096
DATA halfQ<>+16(SB)/8, $4096
DATA halfQ<>+24(SB)/8, $4096
GLOBL halfQ<>(SB), RODATA|NOPTR, $32

// dcMask clears the DC lane (u=0) of the v=0 coefficient row.
DATA dcMask<>+0(SB)/4, $0x00000000
DATA dcMask<>+4(SB)/4, $0xFFFFFFFF
DATA dcMask<>+8(SB)/4, $0xFFFFFFFF
DATA dcMask<>+12(SB)/4, $0xFFFFFFFF
GLOBL dcMask<>(SB), RODATA|NOPTR, $16

// packIdx reorders the doubly-interleaved VPACKSSDW+VPACKSSWB byte groups
// of nonzeroMask32AVX2 back into source order.
DATA packIdx<>+0(SB)/4, $0
DATA packIdx<>+4(SB)/4, $4
DATA packIdx<>+8(SB)/4, $1
DATA packIdx<>+12(SB)/4, $5
DATA packIdx<>+16(SB)/4, $2
DATA packIdx<>+20(SB)/4, $6
DATA packIdx<>+24(SB)/4, $3
DATA packIdx<>+28(SB)/4, $7
GLOBL packIdx<>(SB), RODATA|NOPTR, $32

// func inverseBorderAVX2(coef *int16, q *[64]uint16, dst *Block)
//
// Column pass: acc[y][u] = sum_v Basis[v][y] * (coef[v][u]*q[v][u]) with
// the DC term masked out, evaluated four columns (one u half) at a time in
// eight int64 accumulator vectors; all-zero coefficient rows are skipped
// (they contribute exactly zero). tmp[y][u] = low32((acc+4096)>>13) is
// spilled to the frame. Row pass: for each y, a[x] = sum_u Basis[u][x] *
// tmp[y][u] over the nonzero tmp entries, again in int64 lanes, and the
// rounded samples are stored to the border cells only — full rows for y in
// {0,1,6,7}, x in {0,1,6,7} for interior rows — exactly the cells the
// scalar path writes.
TEXT ·inverseBorderAVX2(SB), $768-24
	NO_LOCAL_POINTERS
	MOVQ dst+16(FP), DI
	MOVQ $0, R13              // u half: 0 = columns 0..3, 1 = columns 4..7

halfloop:
	MOVQ coef+0(FP), SI
	MOVQ q+8(FP), DX
	LEAQ (SI)(R13*8), SI      // + half offset (4 int16 = 8 bytes)
	LEAQ (DX)(R13*8), DX
	MOVQ $·Basis(SB), BX
	VPXOR Y0, Y0, Y0          // acc[0][uhalf] .. acc[7][uhalf]
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
	MOVQ $0, R8               // v

colv:
	VPMOVSXWD (SI), X9        // 4 coefficients, sign-extended
	VPMOVZXWD (DX), X10       // 4 quantizer steps, zero-extended
	VPMULLD X10, X9, X9       // dequantized: fits int32 (32767*65535 < 2^31)
	TESTQ R8, R8
	JNE nodc
	TESTQ R13, R13
	JNE nodc
	VPAND dcMask<>(SB), X9, X9 // AC only: DC lane contributes nothing
nodc:
	VPTEST X9, X9
	JEQ colskip               // all-zero row: contributes exactly zero
	VPMOVSXDQ X9, Y9          // int64 lanes, value in the even dwords
	VPBROADCASTD 0(BX), Y10   // Basis[v][0]
	VPMULDQ Y10, Y9, Y10
	VPADDQ Y10, Y0, Y0
	VPBROADCASTD 4(BX), Y10
	VPMULDQ Y10, Y9, Y10
	VPADDQ Y10, Y1, Y1
	VPBROADCASTD 8(BX), Y10
	VPMULDQ Y10, Y9, Y10
	VPADDQ Y10, Y2, Y2
	VPBROADCASTD 12(BX), Y10
	VPMULDQ Y10, Y9, Y10
	VPADDQ Y10, Y3, Y3
	VPBROADCASTD 16(BX), Y10
	VPMULDQ Y10, Y9, Y10
	VPADDQ Y10, Y4, Y4
	VPBROADCASTD 20(BX), Y10
	VPMULDQ Y10, Y9, Y10
	VPADDQ Y10, Y5, Y5
	VPBROADCASTD 24(BX), Y10
	VPMULDQ Y10, Y9, Y10
	VPADDQ Y10, Y6, Y6
	VPBROADCASTD 28(BX), Y10
	VPMULDQ Y10, Y9, Y10
	VPADDQ Y10, Y7, Y7
colskip:
	ADDQ $16, SI              // next coefficient row
	ADDQ $16, DX
	ADDQ $32, BX              // next basis row
	INCQ R8
	CMPQ R8, $8
	JLT colv

	// tmp[y][uhalf] = low32((acc + 4096) >> 13)
	LEAQ tmp-768(SP), R11
	MOVQ R13, R14
	SHLQ $4, R14
	ADDQ R14, R11             // &tmp[0*8 + uhalf*4]
	VMOVDQU lowIdx<>(SB), Y14
	VPADDQ halfQ<>(SB), Y0, Y0
	VPSRLQ $13, Y0, Y0
	VPERMD Y0, Y14, Y0
	VMOVDQU X0, 0(R11)
	VPADDQ halfQ<>(SB), Y1, Y1
	VPSRLQ $13, Y1, Y1
	VPERMD Y1, Y14, Y1
	VMOVDQU X1, 32(R11)
	VPADDQ halfQ<>(SB), Y2, Y2
	VPSRLQ $13, Y2, Y2
	VPERMD Y2, Y14, Y2
	VMOVDQU X2, 64(R11)
	VPADDQ halfQ<>(SB), Y3, Y3
	VPSRLQ $13, Y3, Y3
	VPERMD Y3, Y14, Y3
	VMOVDQU X3, 96(R11)
	VPADDQ halfQ<>(SB), Y4, Y4
	VPSRLQ $13, Y4, Y4
	VPERMD Y4, Y14, Y4
	VMOVDQU X4, 128(R11)
	VPADDQ halfQ<>(SB), Y5, Y5
	VPSRLQ $13, Y5, Y5
	VPERMD Y5, Y14, Y5
	VMOVDQU X5, 160(R11)
	VPADDQ halfQ<>(SB), Y6, Y6
	VPSRLQ $13, Y6, Y6
	VPERMD Y6, Y14, Y6
	VMOVDQU X6, 192(R11)
	VPADDQ halfQ<>(SB), Y7, Y7
	VPSRLQ $13, Y7, Y7
	VPERMD Y7, Y14, Y7
	VMOVDQU X7, 224(R11)
	INCQ R13
	CMPQ R13, $2
	JLT halfloop

	// Spread each Basis row into int64 lanes once; the row pass reuses
	// them as direct VPMULDQ memory operands.
	MOVQ $·Basis(SB), BX
	LEAQ bspread-512(SP), R11
	MOVQ $8, R9
bsp:
	VPMOVSXDQ 0(BX), Y9       // Basis[u][0..3]
	VMOVDQU Y9, 0(R11)
	VPMOVSXDQ 16(BX), Y9      // Basis[u][4..7]
	VMOVDQU Y9, 32(R11)
	ADDQ $32, BX
	ADDQ $64, R11
	DECQ R9
	JNE bsp

	// Row pass.
	VMOVDQU lowIdx<>(SB), Y14
	VMOVDQU hiIdx<>(SB), Y15
	VMOVDQU halfQ<>(SB), Y13
	LEAQ tmp-768(SP), R11
	MOVQ $0, R10              // y
rowy:
	VPXOR Y0, Y0, Y0          // a[0..3]
	VPXOR Y1, Y1, Y1          // a[4..7]
	LEAQ bspread-512(SP), R15
	MOVQ $0, R8               // u
rowu:
	MOVL (R11)(R8*4), AX
	TESTL AX, AX
	JEQ rowskip               // zero intermediate: contributes exactly zero
	VPBROADCASTD (R11)(R8*4), Y9
	VPMULDQ 0(R15), Y9, Y10
	VPADDQ Y10, Y0, Y0
	VPMULDQ 32(R15), Y9, Y10
	VPADDQ Y10, Y1, Y1
rowskip:
	ADDQ $64, R15
	INCQ R8
	CMPQ R8, $8
	JLT rowu
	VPADDQ Y13, Y0, Y0
	VPSRLQ $13, Y0, Y0
	VPADDQ Y13, Y1, Y1
	VPSRLQ $13, Y1, Y1
	LEAQ -2(R10), AX
	CMPQ AX, $4
	JCS interior              // y in 2..5: only x = 0,1,6,7 are read
	VPERMD Y0, Y14, Y0
	VMOVDQU X0, 0(DI)
	VPERMD Y1, Y14, Y1
	VMOVDQU X1, 16(DI)
	JMP rownext
interior:
	VPERMD Y0, Y14, Y0
	VMOVQ X0, 0(DI)           // x = 0, 1
	VPERMD Y1, Y15, Y1
	VMOVQ X1, 24(DI)          // x = 6, 7
rownext:
	ADDQ $32, R11
	ADDQ $32, DI
	INCQ R10
	CMPQ R10, $8
	JLT rowy
	VZEROUPPER
	RET

// func nonzeroMask64AVX2(coef *int16) uint64
//
// Raster-order occupancy mask of 64 int16 coefficients: compare words
// against zero, pack to bytes (fixing the in-lane interleave with VPERMQ),
// movemask, invert.
TEXT ·nonzeroMask64AVX2(SB), NOSPLIT, $0-16
	MOVQ coef+0(FP), SI
	VPXOR Y2, Y2, Y2
	VMOVDQU 0(SI), Y0         // words 0..15
	VMOVDQU 32(SI), Y1        // words 16..31
	VPCMPEQW Y2, Y0, Y0
	VPCMPEQW Y2, Y1, Y1
	VPACKSSWB Y1, Y0, Y0
	VPERMQ $0xD8, Y0, Y0
	VPMOVMSKB Y0, AX          // bit per word, set where zero
	VMOVDQU 64(SI), Y0        // words 32..47
	VMOVDQU 96(SI), Y1        // words 48..63
	VPCMPEQW Y2, Y0, Y0
	VPCMPEQW Y2, Y1, Y1
	VPACKSSWB Y1, Y0, Y0
	VPERMQ $0xD8, Y0, Y0
	VPMOVMSKB Y0, CX
	SHLQ $32, CX
	ORQ CX, AX
	NOTQ AX
	MOVQ AX, ret+8(FP)
	VZEROUPPER
	RET

// func nonzeroMask32AVX2(b *Block) uint64
//
// Same mask over 64 int32 samples: compare dwords, pack twice (dword ->
// word -> byte), undo the double interleave with VPERMD, movemask, invert.
TEXT ·nonzeroMask32AVX2(SB), NOSPLIT, $0-16
	MOVQ b+0(FP), SI
	VPXOR Y2, Y2, Y2
	VMOVDQU packIdx<>(SB), Y5
	VMOVDQU 0(SI), Y0         // dwords 0..7
	VMOVDQU 32(SI), Y1        // dwords 8..15
	VMOVDQU 64(SI), Y3        // dwords 16..23
	VMOVDQU 96(SI), Y4        // dwords 24..31
	VPCMPEQD Y2, Y0, Y0
	VPCMPEQD Y2, Y1, Y1
	VPCMPEQD Y2, Y3, Y3
	VPCMPEQD Y2, Y4, Y4
	VPACKSSDW Y1, Y0, Y0
	VPACKSSDW Y4, Y3, Y3
	VPACKSSWB Y3, Y0, Y0
	VPERMD Y0, Y5, Y0
	VPMOVMSKB Y0, AX          // bit per dword, set where zero
	VMOVDQU 128(SI), Y0       // dwords 32..39
	VMOVDQU 160(SI), Y1       // dwords 40..47
	VMOVDQU 192(SI), Y3       // dwords 48..55
	VMOVDQU 224(SI), Y4       // dwords 56..63
	VPCMPEQD Y2, Y0, Y0
	VPCMPEQD Y2, Y1, Y1
	VPCMPEQD Y2, Y3, Y3
	VPCMPEQD Y2, Y4, Y4
	VPACKSSDW Y1, Y0, Y0
	VPACKSSDW Y4, Y3, Y3
	VPACKSSWB Y3, Y0, Y0
	VPERMD Y0, Y5, Y0
	VPMOVMSKB Y0, CX
	SHLQ $32, CX
	ORQ CX, AX
	NOTQ AX
	MOVQ AX, ret+8(FP)
	VZEROUPPER
	RET
