package diskstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testOptions disables background loops and fsync so unit tests are fast
// and deterministic; durability-specific tests override.
func testOptions() Options {
	return Options{SyncInterval: -1, CompactInterval: -1}
}

func chunk(seed, n int) (Hash, []byte) {
	data := make([]byte, n)
	r := rand.New(rand.NewSource(int64(seed)))
	r.Read(data)
	return sha256.Sum256(data), data
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, h Hash, data []byte) {
	t.Helper()
	if err := s.Put(h, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
}

func mustGet(t *testing.T, s *Store, h Hash, want []byte) {
	t.Helper()
	got, ok, err := s.Get(h)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !ok {
		t.Fatalf("Get: chunk %x missing", h[:8])
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get: chunk %x: got %d bytes, want %d (content differs)", h[:8], len(got), len(want))
	}
}

func TestPutGetDeleteReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())

	const n = 50
	hashes := make([]Hash, n)
	blobs := make([][]byte, n)
	for i := range hashes {
		hashes[i], blobs[i] = chunk(i, 100+i*37)
		mustPut(t, s, hashes[i], blobs[i])
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	// Idempotent re-put.
	mustPut(t, s, hashes[0], blobs[0])
	if s.Len() != n {
		t.Fatalf("Len after re-put = %d, want %d", s.Len(), n)
	}
	// Delete a few.
	for i := 0; i < 5; i++ {
		if err := s.Delete(hashes[i]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if _, ok, _ := s.Get(hashes[0]); ok {
		t.Fatal("deleted chunk still readable")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: replay must rebuild exactly the live set.
	s = mustOpen(t, dir, testOptions())
	defer s.Close()
	if s.Len() != n-5 {
		t.Fatalf("Len after reopen = %d, want %d", s.Len(), n-5)
	}
	for i := 0; i < 5; i++ {
		if _, ok, _ := s.Get(hashes[i]); ok {
			t.Fatalf("deleted chunk %d resurrected by replay", i)
		}
	}
	for i := 5; i < n; i++ {
		mustGet(t, s, hashes[i], blobs[i])
	}
	st := s.Stats()
	if st.TruncatedTails != 0 || st.QuarantinedRecords != 0 {
		t.Fatalf("clean replay reported damage: %+v", st)
	}
}

func TestEmptyAndMissing(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	h, _ := chunk(1, 10)
	if _, ok, err := s.Get(h); ok || err != nil {
		t.Fatalf("Get on empty store: ok=%v err=%v", ok, err)
	}
	if err := s.Delete(h); err != nil {
		t.Fatalf("Delete of absent hash: %v", err)
	}
	// Zero-length chunk is legal.
	zh := sha256.Sum256(nil)
	mustPut(t, s, zh, nil)
	got, ok, err := s.Get(zh)
	if !ok || err != nil || len(got) != 0 {
		t.Fatalf("zero-length chunk: got %v ok=%v err=%v", got, ok, err)
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	h1, b1 := chunk(1, 200)
	h2, b2 := chunk(2, 300)
	mustPut(t, s, h1, b1)
	mustPut(t, s, h2, b2)
	s.Close()

	path := segPath(dir, 1)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec1Len := int64(headerSize + len(b1))

	// Cut the file at every byte boundary inside the second record: replay
	// must keep chunk 1, lose chunk 2, and truncate the tail cleanly.
	for _, cut := range []int64{rec1Len + 1, rec1Len + headerSize - 1, rec1Len + headerSize, rec1Len + headerSize + 10, int64(len(full)) - 1} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s := mustOpen(t, dir, testOptions())
		mustGet(t, s, h1, b1)
		if _, ok, _ := s.Get(h2); ok {
			t.Fatalf("cut=%d: torn chunk still readable", cut)
		}
		if st := s.Stats(); st.TruncatedTails == 0 {
			t.Fatalf("cut=%d: no truncation counted", cut)
		}
		// The torn bytes are gone from disk: a second replay is clean.
		s.Close()
		s = mustOpen(t, dir, testOptions())
		if st := s.Stats(); st.TruncatedTails != 0 {
			t.Fatalf("cut=%d: second replay still truncating (%+v)", cut, st)
		}
		mustGet(t, s, h1, b1)
		// And the store still accepts writes.
		mustPut(t, s, h2, b2)
		mustGet(t, s, h2, b2)
		s.Close()
	}
}

func TestBitFlipQuarantineOnReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	h1, b1 := chunk(1, 200)
	h2, b2 := chunk(2, 300)
	h3, b3 := chunk(3, 150)
	mustPut(t, s, h1, b1)
	mustPut(t, s, h2, b2)
	mustPut(t, s, h3, b3)
	s.Close()

	// Flip a bit inside record 2's payload: replay must quarantine just
	// that record and keep walking to record 3.
	path := segPath(dir, 1)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(headerSize+len(b1)) + headerSize + 10
	full[off] ^= 0x40
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, testOptions())
	defer s.Close()
	mustGet(t, s, h1, b1)
	mustGet(t, s, h3, b3)
	if _, ok, _ := s.Get(h2); ok {
		t.Fatal("bit-flipped chunk served")
	}
	st := s.Stats()
	if st.QuarantinedRecords != 1 {
		t.Fatalf("QuarantinedRecords = %d, want 1", st.QuarantinedRecords)
	}
	if st.GarbageBytes == 0 {
		t.Fatal("quarantined record not counted as garbage")
	}
	// A repair write re-admits the chunk.
	mustPut(t, s, h2, b2)
	mustGet(t, s, h2, b2)
}

func TestBitFlipQuarantineOnRead(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	h1, b1 := chunk(1, 4096)
	mustPut(t, s, h1, b1)

	// Corrupt the payload on disk underneath the open store.
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, headerSize+100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, ok, err := s.Get(h1); ok || err != nil {
		t.Fatalf("corrupt read: ok=%v err=%v (want miss, nil)", ok, err)
	}
	if st := s.Stats(); st.QuarantinedRecords != 1 {
		t.Fatalf("QuarantinedRecords = %d, want 1", st.QuarantinedRecords)
	}
	// Quarantine dropped it from the index, so a repair put works.
	mustPut(t, s, h1, b1)
	mustGet(t, s, h1, b1)
	s.Close()
}

func TestGarbageFramingTruncates(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	h1, b1 := chunk(1, 100)
	mustPut(t, s, h1, b1)
	s.Close()

	// Append garbage that parses as an impossible header (bad kind, then a
	// huge length): replay must truncate, not chase a bogus length.
	for _, garbage := range [][]byte{
		{0xde, 0xad, 0xbe, 0xef, 0x77},
		func() []byte {
			g := make([]byte, headerSize)
			g[4] = kindPut
			binary.LittleEndian.PutUint32(g[37:], 1<<31)
			return g
		}(),
	} {
		full, err := os.ReadFile(segPath(dir, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(dir, 1), append(full, garbage...), 0o644); err != nil {
			t.Fatal(err)
		}
		s := mustOpen(t, dir, testOptions())
		mustGet(t, s, h1, b1)
		if st := s.Stats(); st.TruncatedTails == 0 {
			t.Fatal("garbage tail not truncated")
		}
		s.Close()
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.SegmentTargetSize = 4 << 10 // force many small segments
	opts.CompactMinGarbage = 1
	opts.CompactFraction = 0.3
	s := mustOpen(t, dir, opts)

	const n = 64
	hashes := make([]Hash, n)
	blobs := make([][]byte, n)
	for i := range hashes {
		hashes[i], blobs[i] = chunk(i, 512)
		mustPut(t, s, hashes[i], blobs[i])
	}
	st := s.Stats()
	if st.Segments < 4 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}

	// Delete most of the early chunks, making early segments garbage-heavy.
	for i := 0; i < n/2; i++ {
		if err := s.Delete(hashes[i]); err != nil {
			t.Fatal(err)
		}
	}
	for {
		did, err := s.Compact()
		if err != nil {
			t.Fatalf("Compact: %v", err)
		}
		if !did {
			break
		}
	}
	st2 := s.Stats()
	if st2.Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	if st2.Segments >= st.Segments {
		t.Fatalf("compaction did not reduce segments: %d -> %d", st.Segments, st2.Segments)
	}
	if st2.LastCompactionUnix == 0 {
		t.Fatal("LastCompactionUnix not stamped")
	}
	// Live data intact, deletes still deleted — including after replay, so
	// tombstone re-append worked.
	check := func(s *Store) {
		t.Helper()
		for i := 0; i < n/2; i++ {
			if _, ok, _ := s.Get(hashes[i]); ok {
				t.Fatalf("deleted chunk %d visible after compaction", i)
			}
		}
		for i := n / 2; i < n; i++ {
			mustGet(t, s, hashes[i], blobs[i])
		}
	}
	check(s)
	s.Close()
	s = mustOpen(t, dir, opts)
	defer s.Close()
	check(s)
}

func TestHashesAfterPaging(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	want := make(map[Hash]bool)
	for i := 0; i < 100; i++ {
		h, b := chunk(i, 64)
		mustPut(t, s, h, b)
		want[h] = true
	}
	// Page through with size 7; union must be exactly the live set, each
	// page strictly ascending and past the cursor.
	var (
		after Hash
		got   = make(map[Hash]bool)
	)
	for {
		page := s.HashesAfter(after, 7)
		if len(page) == 0 {
			break
		}
		if len(page) > 7 {
			t.Fatalf("page of %d > max 7", len(page))
		}
		prev := after
		for _, h := range page {
			if !greaterThan(h, prev) {
				t.Fatalf("page not strictly ascending past cursor")
			}
			prev = h
			if got[h] {
				t.Fatalf("hash %x listed twice", h[:8])
			}
			got[h] = true
		}
		after = page[len(page)-1]
	}
	if len(got) != len(want) {
		t.Fatalf("paged %d hashes, want %d", len(got), len(want))
	}
	for h := range want {
		if !got[h] {
			t.Fatalf("hash %x never listed", h[:8])
		}
	}
	if all := s.HashesAfter(Hash{}, 0); len(all) != 100 {
		t.Fatalf("HashesAfter(zero, 0) = %d hashes, want 100", len(all))
	}
}

func TestGroupCommitDurability(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SyncInterval: 0, CompactInterval: -1} // group commit
	s := mustOpen(t, dir, opts)
	var wg sync.WaitGroup
	const n = 32
	hashes := make([]Hash, n)
	blobs := make([][]byte, n)
	for i := 0; i < n; i++ {
		hashes[i], blobs[i] = chunk(i, 256)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Put(hashes[i], blobs[i]); err != nil {
				t.Errorf("Put: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Syncs == 0 {
		t.Fatal("group commit issued no fsyncs")
	}
	// Group commit should have coalesced: far fewer fsyncs than puts is
	// the point, but with 1 core we can only assert it synced at all and
	// everything survives a reopen.
	s.Close()
	s = mustOpen(t, dir, opts)
	defer s.Close()
	for i := 0; i < n; i++ {
		mustGet(t, s, hashes[i], blobs[i])
	}
}

func TestPeriodicSyncFlushOnClose(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SyncInterval: time.Hour, CompactInterval: -1}
	s := mustOpen(t, dir, opts)
	h, b := chunk(1, 128)
	mustPut(t, s, h, b) // returns before any fsync
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s = mustOpen(t, dir, testOptions())
	defer s.Close()
	mustGet(t, s, h, b)
}

func TestConcurrentPutGet(t *testing.T) {
	opts := testOptions()
	opts.SegmentTargetSize = 8 << 10
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h, b := chunk(g*1000+i, 300)
				if err := s.Put(h, b); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, ok, err := s.Get(h)
				if err != nil || !ok || !bytes.Equal(got, b) {
					t.Errorf("Get after Put: ok=%v err=%v", ok, err)
					return
				}
			}
		}(g)
	}
	// Concurrent lister + compactor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.HashesAfter(Hash{}, 100)
			if _, err := s.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
			}
		}
	}()
	wg.Wait()
	if s.Len() != 8*50 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*50)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	h, b := chunk(1, 10)
	mustPut(t, s, h, b)
	s.Close()
	if err := s.Put(h, b); err != ErrClosed {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if err := s.Delete(h); err != ErrClosed {
		t.Fatalf("Delete after Close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestBackendStatsKeys(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	h, b := chunk(1, 100)
	mustPut(t, s, h, b)
	m := s.BackendStats()
	for _, key := range []string{
		"chunks", "segments", "live_bytes", "garbage_bytes",
		"quarantined_records", "truncated_tails", "compactions",
		"last_compaction_unix", "syncs",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("BackendStats missing %q", key)
		}
	}
	if m["chunks"] != 1 || m["segments"] != 1 || m["live_bytes"] == 0 {
		t.Fatalf("implausible stats: %v", m)
	}
}

func TestOversizeChunkRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	var h Hash
	if err := s.Put(h, make([]byte, maxRecordPayload+1)); err == nil {
		t.Fatal("oversize chunk accepted")
	}
}

func TestIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "seg-bogus.log", "seg-00000000.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := mustOpen(t, dir, testOptions())
	defer s.Close()
	h, b := chunk(1, 50)
	mustPut(t, s, h, b)
	mustGet(t, s, h, b)
}

func TestManySegmentsReplayStress(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.SegmentTargetSize = 2 << 10
	s := mustOpen(t, dir, opts)
	type kv struct {
		h Hash
		b []byte
	}
	var live []kv
	for i := 0; i < 200; i++ {
		h, b := chunk(i, 200+i%17)
		mustPut(t, s, h, b)
		if i%3 == 0 {
			if err := s.Delete(h); err != nil {
				t.Fatal(err)
			}
		} else {
			live = append(live, kv{h, b})
		}
	}
	s.Close()
	s = mustOpen(t, dir, opts)
	defer s.Close()
	if s.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(live))
	}
	for _, e := range live {
		mustGet(t, s, e.h, e.b)
	}
}

func TestLogfReceivesDiagnostics(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	h, b := chunk(1, 100)
	mustPut(t, s, h, b)
	s.Close()
	full, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir, 1), full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	opts := testOptions()
	opts.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	s = mustOpen(t, dir, opts)
	s.Close()
	if len(logged) == 0 {
		t.Fatal("torn-tail truncation produced no diagnostics")
	}
}
