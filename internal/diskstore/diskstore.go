// Package diskstore is the durable, log-structured chunk store a
// blockserver keeps its replicas in: the missing layer between the paper's
// in-process conversion service and its deployment claim that compressed
// chunks live in durable block storage and survive machine restarts.
//
// The design is the classic append-only log plus in-memory index:
//
//   - Chunks are appended to segment files (seg-<seq>.log) as CRC32C-framed
//     put/delete records; nothing is ever rewritten in place.
//   - The only index is an in-memory hash -> (segment, offset, length) map,
//     rebuilt by replaying the segments on Open. A torn tail record — the
//     signature of a crash mid-append — truncates cleanly instead of
//     failing; a record whose checksum does not match is quarantined
//     (skipped and counted), never served and never a panic.
//   - Durability is batched: with SyncInterval zero every Put is group
//     committed (it returns only after an fsync covers it, but concurrent
//     puts share one fsync); a positive interval trades a bounded window of
//     un-synced acknowledgements for fewer fsyncs; a negative interval
//     disables syncing for tests.
//   - Deletes and quarantined records leave garbage behind; a background
//     compactor rewrites the live records out of the most garbage-heavy
//     sealed segment and deletes the old file.
//
// Keys are expected to be the SHA-256 of the value (the store is content
// addressed, which is what makes Put idempotent and re-replication safe),
// but the package only relies on "same key means same bytes".
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Hash is a chunk address: the SHA-256 of the chunk's bytes, by convention
// of the callers (the package itself only requires same-key-same-bytes).
type Hash = [32]byte

// Record framing. Every record is
//
//	[4]  CRC32C (Castagnoli) over everything after this field
//	[1]  kind (kindPut | kindDelete)
//	[32] hash
//	[4]  payload length, little endian (0 for deletes)
//	[n]  payload
//
// so a record is self-checking: replay and every read verify the CRC
// before trusting a byte of the payload.
const (
	kindPut    = byte(1)
	kindDelete = byte(2)

	headerSize = 4 + 1 + 32 + 4

	// maxRecordPayload bounds a framed payload; anything larger in a
	// header is corrupt framing, not a big record (the wire protocol caps
	// chunks at 8 MiB).
	maxRecordPayload = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("diskstore: store is closed")

// Options tunes a Store. The zero value is production-shaped: group-commit
// durability, 64-MiB segments, compaction of sealed segments that are at
// least half garbage, checked every 15 seconds.
type Options struct {
	// SyncInterval controls fsync batching. Zero group-commits: a Put
	// returns only after an fsync covers its record, with concurrent puts
	// sharing one fsync. Positive batches harder: fsyncs happen at most
	// this often and puts return immediately, so a crash can lose up to
	// one interval of acknowledged records. Negative disables syncing
	// entirely (tests).
	SyncInterval time.Duration
	// SegmentTargetSize seals the active segment once it reaches this many
	// bytes; 0 means 64 MiB.
	SegmentTargetSize int64
	// CompactFraction is the garbage fraction (garbage/total) at which a
	// sealed segment becomes a compaction candidate; 0 means 0.5.
	CompactFraction float64
	// CompactMinGarbage is the minimum garbage bytes before a segment is
	// worth rewriting; 0 means 1 MiB.
	CompactMinGarbage int64
	// CompactInterval is how often the background compactor looks for a
	// candidate; 0 means 15s, negative disables the loop (Compact may
	// still be called directly).
	CompactInterval time.Duration
	// Logf, when set, receives diagnostics (quarantines, truncations,
	// compactions).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SegmentTargetSize == 0 {
		o.SegmentTargetSize = 64 << 20
	}
	if o.CompactFraction == 0 {
		o.CompactFraction = 0.5
	}
	if o.CompactMinGarbage == 0 {
		o.CompactMinGarbage = 1 << 20
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = 15 * time.Second
	}
	return o
}

// recordLoc addresses one live record inside a segment.
type recordLoc struct {
	seg uint64
	off int64
	n   int32 // payload length
}

// segment is one on-disk log file. The file handle stays open read-write
// for the active segment and read-only semantics for sealed ones (reads
// use ReadAt, which is safe concurrently).
type segment struct {
	seq     uint64
	path    string
	f       *os.File
	size    int64
	garbage int64 // bytes of records no longer reachable from the index
}

// Stats is a point-in-time view of the store's durability state.
type Stats struct {
	Chunks       int   // live chunks in the index
	Segments     int   // on-disk segment files
	LiveBytes    int64 // bytes of live records (headers included)
	GarbageBytes int64 // bytes reclaimable by compaction

	QuarantinedRecords int64 // CRC-mismatched records skipped (replay + reads)
	TruncatedTails     int64 // torn tail records truncated on replay
	Compactions        int64 // completed segment rewrites
	LastCompactionUnix int64 // wall-clock seconds of the last compaction
	Syncs              int64 // fsync calls issued
}

// Store is a disk-backed chunk store. Safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu     sync.RWMutex // guards index, segs, active, tombs, file writes
	index  map[Hash]recordLoc
	segs   map[uint64]*segment
	order  []uint64 // segment seqs, ascending; last is active
	active *segment
	tombs  map[Hash]struct{} // deleted hashes whose tombstones must survive compaction
	failed error             // a sync/write failure poisons the store
	closed bool

	// Group-commit state: appended counts records written, synced counts
	// records covered by an fsync; puts wait on cond until synced catches
	// up to their record.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	appended uint64
	synced   uint64
	syncErr  error

	stopCh chan struct{}
	bg     sync.WaitGroup

	quarantined    atomic.Int64
	truncatedTails atomic.Int64
	compactions    atomic.Int64
	lastCompaction atomic.Int64
	syncs          atomic.Int64
}

// Open opens (creating if needed) a store rooted at dir and rebuilds the
// index by replaying every segment: later records win, torn tails are
// truncated, CRC-mismatched records are quarantined. Background syncing
// and compaction start according to opts.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &Store{
		dir:    dir,
		opt:    opts,
		index:  make(map[Hash]recordLoc),
		segs:   make(map[uint64]*segment),
		tombs:  make(map[Hash]struct{}),
		stopCh: make(chan struct{}),
	}
	s.syncCond = sync.NewCond(&s.syncMu)

	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, seq := range seqs {
		if err := s.replaySegment(seq); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	if len(s.order) == 0 {
		if err := s.addSegment(1); err != nil {
			return nil, err
		}
	}
	s.active = s.segs[s.order[len(s.order)-1]]

	if opts.SyncInterval >= 0 {
		s.bg.Add(1)
		go s.syncLoop()
	}
	if opts.CompactInterval > 0 {
		s.bg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// listSegments returns the segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.ParseUint(name[len("seg-"):len(name)-len(".log")], 10, 64)
		if err != nil || seq == 0 {
			continue // not ours
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.log", seq))
}

// addSegment creates and registers an empty segment file, fsyncing the
// directory so the new name itself survives a crash.
func (s *Store) addSegment(seq uint64) error {
	f, err := os.OpenFile(segPath(s.dir, seq), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	seg := &segment{seq: seq, path: segPath(s.dir, seq), f: f}
	s.segs[seq] = seg
	s.order = append(s.order, seq)
	return nil
}

// syncDir fsyncs a directory so entry creations/removals are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("diskstore: sync %s: %w", dir, err)
	}
	return nil
}

// --- replay ----------------------------------------------------------------

// replaySegment opens one segment file and walks its records into the
// index. Framing damage at the tail (short header, payload past EOF, or an
// impossible length) is a torn write: the file is truncated at the last
// good record and replay of this segment stops. A full record whose CRC
// does not match is a quarantined bit flip: skipped, counted, and the
// bytes left as garbage for compaction.
func (s *Store) replaySegment(seq uint64) error {
	path := segPath(s.dir, seq)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	size := st.Size()
	seg := &segment{seq: seq, path: path, f: f}

	var (
		off    int64
		hdr    [headerSize]byte
		truncs int
	)
	for off < size {
		if size-off < headerSize {
			truncs++
			break // torn header
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			f.Close()
			return fmt.Errorf("diskstore: replay %s: %w", path, err)
		}
		kind := hdr[4]
		n := int64(binary.LittleEndian.Uint32(hdr[37:]))
		if (kind != kindPut && kind != kindDelete) || n > maxRecordPayload {
			// Corrupt framing: the length cannot be trusted, so nothing
			// after this offset can be either. Treat as a torn tail.
			truncs++
			break
		}
		recLen := headerSize + n
		if off+recLen > size {
			truncs++
			break // torn payload
		}
		rec := make([]byte, recLen)
		if _, err := f.ReadAt(rec, off); err != nil {
			f.Close()
			return fmt.Errorf("diskstore: replay %s: %w", path, err)
		}
		if crc32.Checksum(rec[4:], castagnoli) != binary.LittleEndian.Uint32(rec[:4]) {
			// A bit flip inside a well-framed record: quarantine it. The
			// chunk (if any) reads as missing and heals from replicas.
			s.quarantined.Add(1)
			s.logf("diskstore: quarantined record at %s+%d (%d bytes, crc mismatch)", path, off, recLen)
			seg.garbage += recLen
			off += recLen
			continue
		}
		var h Hash
		copy(h[:], rec[5:37])
		switch kind {
		case kindPut:
			if old, ok := s.index[h]; ok {
				s.addGarbage(old)
			}
			delete(s.tombs, h)
			s.index[h] = recordLoc{seg: seq, off: off, n: int32(n)}
		case kindDelete:
			if old, ok := s.index[h]; ok {
				s.addGarbage(old)
				delete(s.index, h)
			}
			s.tombs[h] = struct{}{}
		}
		off += recLen
	}
	if off < size {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return fmt.Errorf("diskstore: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("diskstore: %w", err)
		}
		s.truncatedTails.Add(int64(truncs))
		s.logf("diskstore: truncated torn tail of %s at %d (was %d)", path, off, size)
	}
	seg.size = off
	s.segs[seq] = seg
	s.order = append(s.order, seq)
	return nil
}

// addGarbage marks a superseded record's bytes reclaimable. Called with
// s.mu held (or during single-threaded replay).
func (s *Store) addGarbage(loc recordLoc) {
	if seg, ok := s.segs[loc.seg]; ok {
		seg.garbage += headerSize + int64(loc.n)
	}
}

// --- writes ----------------------------------------------------------------

func encodeRecord(kind byte, h Hash, payload []byte) []byte {
	rec := make([]byte, headerSize+len(payload))
	rec[4] = kind
	copy(rec[5:37], h[:])
	binary.LittleEndian.PutUint32(rec[37:], uint32(len(payload)))
	copy(rec[headerSize:], payload)
	binary.LittleEndian.PutUint32(rec[:4], crc32.Checksum(rec[4:], castagnoli))
	return rec
}

// appendLocked writes one record to the active segment, rotating first if
// the active segment is full. Returns the record's location and its
// group-commit sequence. Caller holds s.mu.
func (s *Store) appendLocked(rec []byte) (recordLoc, uint64, error) {
	if s.failed != nil {
		return recordLoc{}, 0, s.failed
	}
	if s.active.size >= s.opt.SegmentTargetSize {
		if err := s.rotateLocked(); err != nil {
			return recordLoc{}, 0, err
		}
	}
	seg := s.active
	off := seg.size
	if _, err := seg.f.WriteAt(rec, off); err != nil {
		s.failed = fmt.Errorf("diskstore: append: %w", err)
		return recordLoc{}, 0, s.failed
	}
	seg.size += int64(len(rec))
	s.syncMu.Lock()
	s.appended++
	seq := s.appended
	s.syncCond.Broadcast() // wake the syncer: there is work
	s.syncMu.Unlock()
	return recordLoc{seg: seg.seq, off: off, n: int32(len(rec) - headerSize)}, seq, nil
}

// rotateLocked seals the active segment (fsyncing it so nothing in a
// sealed segment is ever un-synced) and opens the next one.
func (s *Store) rotateLocked() error {
	if err := s.active.f.Sync(); err != nil {
		s.failed = fmt.Errorf("diskstore: seal %s: %w", s.active.path, err)
		return s.failed
	}
	s.syncs.Add(1)
	if err := s.addSegment(s.active.seq + 1); err != nil {
		s.failed = err
		return err
	}
	s.active = s.segs[s.order[len(s.order)-1]]
	return nil
}

// Put stores data under h. Content addressing makes it idempotent: a hash
// already present is a no-op (same key, same bytes), which is what makes
// re-replication and read-repair writes safe to repeat. With SyncInterval
// zero, Put returns only once an fsync covers the record — the chunk is
// acknowledged durable.
func (s *Store) Put(h Hash, data []byte) error {
	if int64(len(data)) > maxRecordPayload {
		return fmt.Errorf("diskstore: %d-byte chunk exceeds the %d-byte record limit", len(data), maxRecordPayload)
	}
	rec := encodeRecord(kindPut, h, data)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, ok := s.index[h]; ok {
		s.mu.Unlock()
		return nil
	}
	loc, seq, err := s.appendLocked(rec)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.index[h] = loc
	delete(s.tombs, h)
	s.mu.Unlock()
	return s.waitDurable(seq)
}

// Delete removes h, appending a tombstone so the deletion survives replay.
// Deleting an absent hash is a no-op.
func (s *Store) Delete(h Hash) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	old, ok := s.index[h]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	rec := encodeRecord(kindDelete, h, nil)
	_, seq, err := s.appendLocked(rec)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	delete(s.index, h)
	s.tombs[h] = struct{}{}
	s.addGarbage(old)
	s.mu.Unlock()
	return s.waitDurable(seq)
}

// waitDurable blocks (group-commit mode only) until an fsync covers record
// seq.
func (s *Store) waitDurable(seq uint64) error {
	if s.opt.SyncInterval != 0 {
		return nil // periodic or disabled: acknowledged before the fsync
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	for s.synced < seq && s.syncErr == nil {
		s.syncCond.Wait()
	}
	return s.syncErr
}

// --- reads -----------------------------------------------------------------

// Get returns the chunk stored under h. Every read re-verifies the
// record's CRC before returning a byte: a record rotted on disk reads as
// missing (ok=false, quarantined and dropped from the index so a repair
// write can re-admit it) rather than serving corrupt bytes. The error
// return is reserved for I/O failures.
func (s *Store) Get(h Hash) ([]byte, bool, error) {
	s.mu.RLock()
	loc, ok := s.index[h]
	if !ok {
		s.mu.RUnlock()
		return nil, false, nil
	}
	seg := s.segs[loc.seg]
	rec := make([]byte, headerSize+int64(loc.n))
	_, err := seg.f.ReadAt(rec, loc.off)
	s.mu.RUnlock()
	if err != nil {
		return nil, false, fmt.Errorf("diskstore: read %s+%d: %w", seg.path, loc.off, err)
	}
	if crc32.Checksum(rec[4:], castagnoli) != binary.LittleEndian.Uint32(rec[:4]) {
		s.quarantineRead(h, loc)
		return nil, false, nil
	}
	return rec[headerSize:], true, nil
}

// quarantineRead drops a record that failed its read-time CRC check, so
// the hash reads as missing and replication can heal it.
func (s *Store) quarantineRead(h Hash, loc recordLoc) {
	s.mu.Lock()
	if cur, ok := s.index[h]; ok && cur == loc {
		delete(s.index, h)
		s.addGarbage(loc)
		s.quarantined.Add(1)
		s.logf("diskstore: quarantined chunk %x on read (crc mismatch)", h[:8])
	}
	s.mu.Unlock()
}

// Has reports whether h is present (without verifying the record bytes).
func (s *Store) Has(h Hash) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[h]
	return ok
}

// Len returns the number of live chunks.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// HashesAfter returns up to max hashes strictly greater than after, in
// ascending byte order — the ranged scan behind OpListChunks: page with a
// zero Hash first, then the last hash of each page. max <= 0 means all.
func (s *Store) HashesAfter(after Hash, max int) []Hash {
	s.mu.RLock()
	out := make([]Hash, 0, len(s.index))
	for h := range s.index {
		if greaterThan(h, after) {
			out = append(out, h)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return lessThan(out[i], out[j]) })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

func lessThan(a, b Hash) bool    { return string(a[:]) < string(b[:]) }
func greaterThan(a, b Hash) bool { return string(a[:]) > string(b[:]) }

// --- syncing ---------------------------------------------------------------

// syncLoop is the single fsync issuer: it wakes when records are appended
// (group-commit mode) or on the configured interval, fsyncs the active
// segment, and publishes how far durability reaches. Sealed segments were
// fsynced at rotation, so syncing the active file always covers every
// appended-but-unsynced record.
func (s *Store) syncLoop() {
	defer s.bg.Done()
	interval := s.opt.SyncInterval
	// One reused timer serves every periodic wait: the old per-iteration
	// time.After allocated a fresh runtime timer each tick, so a long-lived
	// periodic-sync store generated garbage forever just by idling. Reset
	// is safe without draining since Go 1.23 (unbuffered timer channels),
	// and only this goroutine ever receives from tick.C.
	var tick *time.Timer
	if interval > 0 {
		tick = time.NewTimer(interval)
		defer tick.Stop()
	}
	// sleep waits one interval on the reused timer; false means stopCh
	// fired first.
	sleep := func() bool {
		tick.Reset(interval)
		select {
		case <-s.stopCh:
			return false
		case <-tick.C:
			return true
		}
	}
	for {
		s.syncMu.Lock()
		for s.appended == s.synced {
			select {
			case <-s.stopCh:
				s.syncMu.Unlock()
				return
			default:
			}
			if interval > 0 {
				// Periodic mode: poll on the interval; cond waits would
				// need a waker per append, which group commit already has.
				s.syncMu.Unlock()
				if !sleep() {
					return
				}
				s.syncMu.Lock()
				continue
			}
			s.syncCond.Wait()
		}
		target := s.appended
		s.syncMu.Unlock()

		if interval > 0 {
			// On stop, fall through and sync now: Close's final sync path
			// relies on it.
			_ = sleep()
		}
		err := s.syncActive()

		s.syncMu.Lock()
		s.synced = target
		if err != nil && s.syncErr == nil {
			s.syncErr = err
		}
		s.syncCond.Broadcast()
		s.syncMu.Unlock()
		if err != nil {
			s.mu.Lock()
			if s.failed == nil {
				s.failed = err
			}
			s.mu.Unlock()
			return
		}
	}
}

// syncActive fsyncs the current active segment. Records counted in
// `appended` before the call are fully written (WriteAt completes before
// the counter bumps), so they are covered.
func (s *Store) syncActive() error {
	s.mu.RLock()
	f := s.active.f
	s.mu.RUnlock()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("diskstore: fsync: %w", err)
	}
	s.syncs.Add(1)
	return nil
}

// Sync forces an fsync of the active segment (flushing the periodic
// mode's window) and returns once everything appended so far is durable.
func (s *Store) Sync() error {
	s.syncMu.Lock()
	target := s.appended
	s.syncMu.Unlock()
	if err := s.syncActive(); err != nil {
		return err
	}
	s.syncMu.Lock()
	if target > s.synced {
		s.synced = target
	}
	s.syncCond.Broadcast()
	s.syncMu.Unlock()
	return nil
}

// --- compaction ------------------------------------------------------------

func (s *Store) compactLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.opt.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			if _, err := s.Compact(); err != nil && !errors.Is(err, ErrClosed) {
				s.logf("diskstore: compaction: %v", err)
			}
		}
	}
}

// Compact rewrites the live records of the most garbage-heavy sealed
// segment into the active log and deletes the old file; it reports whether
// a segment was rewritten. Candidates need at least CompactMinGarbage
// garbage bytes making up at least CompactFraction of the segment.
// Tombstones whose deletions must still shadow older segments are
// re-appended so a replay after compaction cannot resurrect deleted
// chunks.
func (s *Store) Compact() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	if s.failed != nil {
		return false, s.failed
	}

	var victim *segment
	for _, seq := range s.order {
		seg := s.segs[seq]
		if seg == s.active || seg.size == 0 {
			continue
		}
		if seg.garbage < s.opt.CompactMinGarbage {
			continue
		}
		if float64(seg.garbage) < s.opt.CompactFraction*float64(seg.size) {
			continue
		}
		if victim == nil || seg.garbage > victim.garbage {
			victim = seg
		}
	}
	if victim == nil {
		return false, nil
	}

	// Walk the victim's records; copy the ones the index still points at.
	var (
		off   int64
		hdr   [headerSize]byte
		moved int
	)
	for off < victim.size {
		if _, err := victim.f.ReadAt(hdr[:], off); err != nil {
			return false, fmt.Errorf("diskstore: compact %s: %w", victim.path, err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[37:]))
		recLen := headerSize + n
		var h Hash
		copy(h[:], hdr[5:37])
		if loc, ok := s.index[h]; ok && loc.seg == victim.seq && loc.off == off {
			rec := make([]byte, recLen)
			if _, err := victim.f.ReadAt(rec, off); err != nil {
				return false, fmt.Errorf("diskstore: compact %s: %w", victim.path, err)
			}
			if crc32.Checksum(rec[4:], castagnoli) != binary.LittleEndian.Uint32(rec[:4]) {
				// Rotted since replay: quarantine rather than copying
				// corruption forward.
				s.quarantined.Add(1)
				delete(s.index, h)
			} else {
				newLoc, _, err := s.appendLocked(rec)
				if err != nil {
					return false, err
				}
				s.index[h] = newLoc
				moved++
			}
		}
		off += recLen
	}
	// Tombstones still shadowing older segments must survive: re-append
	// them all (bounded by the store's delete count; deletes are rare in a
	// content-addressed store).
	for h := range s.tombs {
		if _, _, err := s.appendLocked(encodeRecord(kindDelete, h, nil)); err != nil {
			return false, err
		}
	}
	// Make the copies durable before the originals disappear.
	if err := s.active.f.Sync(); err != nil {
		s.failed = fmt.Errorf("diskstore: compact sync: %w", err)
		return false, s.failed
	}
	s.syncs.Add(1)

	victim.f.Close()
	if err := os.Remove(victim.path); err != nil {
		return false, fmt.Errorf("diskstore: compact remove: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return false, err
	}
	delete(s.segs, victim.seq)
	for i, seq := range s.order {
		if seq == victim.seq {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.compactions.Add(1)
	s.lastCompaction.Store(time.Now().Unix())
	s.logf("diskstore: compacted %s (%d live records moved, %d garbage bytes reclaimed)",
		victim.path, moved, victim.garbage)
	return true, nil
}

// --- stats and lifecycle ---------------------------------------------------

// Stats returns a snapshot of the store's durability state.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Chunks:   len(s.index),
		Segments: len(s.order),
	}
	for _, seg := range s.segs {
		st.LiveBytes += seg.size - seg.garbage
		st.GarbageBytes += seg.garbage
	}
	s.mu.RUnlock()
	st.QuarantinedRecords = s.quarantined.Load()
	st.TruncatedTails = s.truncatedTails.Load()
	st.Compactions = s.compactions.Load()
	st.LastCompactionUnix = s.lastCompaction.Load()
	st.Syncs = s.syncs.Load()
	return st
}

// BackendStats is Stats flattened for expvar/JSON export; the blockserver
// merges it into StatsSnapshot under store_* keys.
func (s *Store) BackendStats() map[string]int64 {
	st := s.Stats()
	return map[string]int64{
		"chunks":               int64(st.Chunks),
		"segments":             int64(st.Segments),
		"live_bytes":           st.LiveBytes,
		"garbage_bytes":        st.GarbageBytes,
		"quarantined_records":  st.QuarantinedRecords,
		"truncated_tails":      st.TruncatedTails,
		"compactions":          st.Compactions,
		"last_compaction_unix": st.LastCompactionUnix,
		"syncs":                st.Syncs,
	}
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		_ = seg.f.Close()
	}
}

// Close stops the background loops, fsyncs the active segment, and closes
// every file. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.stopCh)
	s.syncMu.Lock()
	s.syncCond.Broadcast()
	s.syncMu.Unlock()
	s.bg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.failed == nil && s.opt.SyncInterval >= 0 {
		if serr := s.active.f.Sync(); serr != nil {
			err = fmt.Errorf("diskstore: close sync: %w", serr)
		} else {
			s.syncs.Add(1)
		}
	}
	s.closeFiles()
	return err
}
