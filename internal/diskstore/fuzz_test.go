package diskstore

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSegmentReplay throws arbitrary bytes at segment replay — the code
// path that must never panic, because it runs against whatever a crash
// left on disk. Whatever Open salvages must behave like a store: every
// listed hash readable, the salvage stable across a reopen, and fresh
// writes accepted. Seed corpus lives in testdata/fuzz/FuzzSegmentReplay
// (regenerate with `go run ./cmd/corpusgen -fuzz-seeds`).
func FuzzSegmentReplay(f *testing.F) {
	// Seeds beyond the checked-in corpus: empty, a valid record, and a
	// valid record with a torn tail.
	h := sha256.Sum256([]byte("seed"))
	rec := encodeRecord(kindPut, h, []byte("seed payload"))
	f.Add([]byte{})
	f.Add(rec)
	f.Add(append(append([]byte{}, rec...), rec[:headerSize+3]...))
	f.Add(append(append([]byte{}, rec...), encodeRecord(kindDelete, h, nil)...))

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{SyncInterval: -1, CompactInterval: -1})
		if err != nil {
			// I/O-level failure is acceptable; panics are not (the fuzz
			// harness catches those itself).
			return
		}
		hashes := s.HashesAfter(Hash{}, 0)
		salvaged := make(map[Hash][]byte, len(hashes))
		for _, h := range hashes {
			b, ok, err := s.Get(h)
			if err != nil {
				t.Fatalf("Get(%x) after replay: %v", h[:8], err)
			}
			if !ok {
				t.Fatalf("listed hash %x not readable", h[:8])
			}
			salvaged[h] = b
		}
		// The store must accept new writes after any salvage.
		nh := sha256.Sum256([]byte("post-replay"))
		if err := s.Put(nh, []byte("post-replay")); err != nil {
			t.Fatalf("Put after replay: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close after replay: %v", err)
		}

		// Replay of the salvaged log is deterministic: same live set.
		s2, err := Open(dir, Options{SyncInterval: -1, CompactInterval: -1})
		if err != nil {
			t.Fatalf("reopen after salvage: %v", err)
		}
		defer s2.Close()
		if got := s2.Len(); got != len(salvaged)+1 {
			t.Fatalf("reopen Len = %d, want %d", got, len(salvaged)+1)
		}
		for h, want := range salvaged {
			b, ok, err := s2.Get(h)
			if err != nil || !ok || !bytes.Equal(b, want) {
				t.Fatalf("chunk %x changed across reopen (ok=%v err=%v)", h[:8], ok, err)
			}
		}
	})
}
