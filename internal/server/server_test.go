package server_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lepton/internal/core"
	"lepton/internal/imagegen"
	"lepton/internal/server"
	"lepton/internal/store"
)

func gen(t testing.TB, seed int64, w, h int) []byte {
	t.Helper()
	data, err := imagegen.Generate(seed, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func startServer(t *testing.T, addr string, b *server.Blockserver) string {
	t.Helper()
	bound, err := server.ListenAndServe(addr, b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return bound
}

func TestUnixSocketCompressDecompress(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "lepton.sock")
	b := &server.Blockserver{}
	addr := startServer(t, "unix:"+sock, b)

	data := gen(t, 1, 256, 192)
	comp, err := server.Do(addr, server.OpCompress, data, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(data) {
		t.Fatalf("no savings over socket: %d >= %d", len(comp), len(data))
	}
	back, err := server.Do(addr, server.OpDecompress, comp, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("socket round trip mismatch")
	}
	if c, d := b.Stats.Compresses.Load(), b.Stats.Decompresses.Load(); c != 1 || d != 1 {
		t.Fatalf("stats: compresses=%d decompresses=%d", c, d)
	}
}

func TestTCPCompress(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	data := gen(t, 2, 128, 128)
	comp, err := server.Do(addr, server.OpCompress, data, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Decode(comp, 0)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatal("TCP compress result undecodable")
	}
}

func TestUnsupportedInputGetsRawContainer(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	payload := []byte("not a jpeg at all")
	comp, err := server.Do(addr, server.OpCompress, payload, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Decode(comp, 0)
	if err != nil || !bytes.Equal(back, payload) {
		t.Fatal("raw fallback mismatch")
	}
}

func TestLoadProbe(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	resp, err := server.Do(addr, server.OpLoad, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 4 {
		t.Fatalf("load response %d bytes", len(resp))
	}
}

func TestOutsourcingToDedicated(t *testing.T) {
	// A dedicated worker and a frontend with threshold 0: every compress
	// must be outsourced.
	worker := &server.Blockserver{}
	workerAddr := startServer(t, "tcp:127.0.0.1:0", worker)

	front := &server.Blockserver{
		Outsource:          server.NewDedicatedPool([]string{workerAddr}, 1),
		OutsourceThreshold: -1, // always over threshold
	}
	frontAddr := startServer(t, "tcp:127.0.0.1:0", front)

	data := gen(t, 3, 200, 150)
	comp, err := server.Do(frontAddr, server.OpCompress, data, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	back, _ := core.Decode(comp, 0)
	if !bytes.Equal(back, data) {
		t.Fatal("outsourced result mismatch")
	}
	if front.Stats.Outsourced.Load() == 0 {
		t.Fatal("frontend did not outsource")
	}
	if worker.Stats.Compresses.Load() == 0 {
		t.Fatal("worker saw no work")
	}
}

func TestOutsourcingPowerOfTwoPrefersIdlePeer(t *testing.T) {
	// Peer A is artificially busy (we hold connections open); peer B idle.
	// The PeerPool must route to B.
	busy := &server.Blockserver{}
	busyAddr := startServer(t, "tcp:127.0.0.1:0", busy)
	idle := &server.Blockserver{}
	idleAddr := startServer(t, "tcp:127.0.0.1:0", idle)

	// Saturate 'busy' with slow decompress requests of a large image.
	big := gen(t, 4, 640, 480)
	res, err := core.Encode(big, core.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_, _ = server.Do(busyAddr, server.OpDecompress, res.Compressed, 10*time.Second)
			}
		}()
	}

	pool := server.NewPeerPool([]string{busyAddr, idleAddr}, 7)
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		addr, ok := pool.Target()
		if !ok {
			t.Fatal("no target")
		}
		counts[addr]++
	}
	wg.Wait()
	if counts[idleAddr] < counts[busyAddr] {
		t.Fatalf("power-of-two picked busy peer more often: %v", counts)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "bs.sock")
	b := &server.Blockserver{}
	addr := startServer(t, "unix:"+sock, b)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := gen(t, int64(100+i), 96+8*i, 96)
			comp, err := server.Do(addr, server.OpCompress, data, 20*time.Second)
			if err != nil {
				errs <- fmt.Errorf("compress %d: %w", i, err)
				return
			}
			back, err := server.Do(addr, server.OpDecompress, comp, 20*time.Second)
			if err != nil {
				errs <- fmt.Errorf("decompress %d: %w", i, err)
				return
			}
			if !bytes.Equal(back, data) {
				errs <- fmt.Errorf("mismatch %d", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestBadAddress(t *testing.T) {
	if _, err := server.Do("bogus", server.OpLoad, nil, time.Second); err == nil {
		t.Fatal("expected address error")
	}
}

func TestStoreBackedOps(t *testing.T) {
	st := store.New()
	st.ChunkSize = 64 << 10
	b := &server.Blockserver{Store: st}
	addr := startServer(t, "tcp:127.0.0.1:0", b)

	raw := gen(t, 50, 200, 150)
	// Server-side path.
	h, err := server.Do(addr, server.OpPutChunkRaw, raw, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 32 {
		t.Fatalf("hash length %d", len(h))
	}
	back, err := server.Do(addr, server.OpGetChunkRaw, h, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, raw) {
		t.Fatal("server-side store round trip mismatch")
	}
	// Client-side path.
	res, err := core.Encode(raw, core.EncodeOptions{VerifyRoundtrip: true})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := server.Do(addr, server.OpPutChunkCompressed, res.Compressed, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := server.Do(addr, server.OpGetChunkCompressed, h2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb, res.Compressed) {
		t.Fatal("compressed chunk changed in store")
	}
	out, err := core.Decode(cb, 0)
	if err != nil || !bytes.Equal(out, raw) {
		t.Fatal("client-side decode mismatch")
	}
}

func TestStoreOpsWithoutStore(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	if _, err := server.Do(addr, server.OpPutChunkRaw, []byte("x"), 5*time.Second); err == nil {
		t.Fatal("expected error without a store")
	}
}

func TestPutCompressedRejectsGarbage(t *testing.T) {
	st := store.New()
	b := &server.Blockserver{Store: st}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	if _, err := server.Do(addr, server.OpPutChunkCompressed, []byte("not lepton"), 5*time.Second); err == nil {
		t.Fatal("expected rejection of non-Lepton payload")
	}
}

func TestGetChunkBadHash(t *testing.T) {
	st := store.New()
	b := &server.Blockserver{Store: st}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	if _, err := server.Do(addr, server.OpGetChunkRaw, []byte{1, 2}, 5*time.Second); err == nil {
		t.Fatal("expected error for short hash")
	}
	var missing [32]byte
	if _, err := server.Do(addr, server.OpGetChunkRaw, missing[:], 5*time.Second); err == nil {
		t.Fatal("expected error for unknown hash")
	}
}
