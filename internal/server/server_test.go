package server_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lepton/internal/core"
	"lepton/internal/imagegen"
	"lepton/internal/server"
	"lepton/internal/store"
)

func gen(t testing.TB, seed int64, w, h int) []byte {
	t.Helper()
	data, err := imagegen.Generate(seed, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func startServer(t *testing.T, addr string, b *server.Blockserver) string {
	t.Helper()
	bound, err := server.ListenAndServe(addr, b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return bound
}

func TestUnixSocketCompressDecompress(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "lepton.sock")
	b := &server.Blockserver{}
	addr := startServer(t, "unix:"+sock, b)

	data := gen(t, 1, 256, 192)
	comp, err := server.Do(addr, server.OpCompress, data, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(data) {
		t.Fatalf("no savings over socket: %d >= %d", len(comp), len(data))
	}
	back, err := server.Do(addr, server.OpDecompress, comp, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("socket round trip mismatch")
	}
	if c, d := b.Stats.Compresses.Load(), b.Stats.Decompresses.Load(); c != 1 || d != 1 {
		t.Fatalf("stats: compresses=%d decompresses=%d", c, d)
	}
	snap := b.StatsSnapshot()
	if snap["compresses"] != 1 || snap["decompresses"] != 1 || snap["in_flight"] != 0 {
		t.Fatalf("snapshot: %v", snap)
	}
	if snap["coeff_window_bytes_peak"] <= 0 {
		t.Fatalf("snapshot did not observe streamed coefficient windows: %v", snap)
	}
	if _, ok := snap["cancelled"]; !ok {
		t.Fatalf("snapshot missing cancelled counter: %v", snap)
	}
}

func TestTCPCompress(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	data := gen(t, 2, 128, 128)
	comp, err := server.Do(addr, server.OpCompress, data, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Decode(comp, 0)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatal("TCP compress result undecodable")
	}
}

func TestUnsupportedInputGetsRawContainer(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	payload := []byte("not a jpeg at all")
	comp, err := server.Do(addr, server.OpCompress, payload, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Decode(comp, 0)
	if err != nil || !bytes.Equal(back, payload) {
		t.Fatal("raw fallback mismatch")
	}
}

func TestLoadProbe(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	resp, err := server.Do(addr, server.OpLoad, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 4 {
		t.Fatalf("load response %d bytes", len(resp))
	}
}

func TestOutsourcingToDedicated(t *testing.T) {
	// A dedicated worker and a frontend with threshold 0: every compress
	// must be outsourced.
	worker := &server.Blockserver{}
	workerAddr := startServer(t, "tcp:127.0.0.1:0", worker)

	front := &server.Blockserver{
		Outsource:          server.NewDedicatedPool([]string{workerAddr}, 1),
		OutsourceThreshold: -1, // always over threshold
	}
	frontAddr := startServer(t, "tcp:127.0.0.1:0", front)

	data := gen(t, 3, 200, 150)
	comp, err := server.Do(frontAddr, server.OpCompress, data, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	back, _ := core.Decode(comp, 0)
	if !bytes.Equal(back, data) {
		t.Fatal("outsourced result mismatch")
	}
	if front.Stats.Outsourced.Load() == 0 {
		t.Fatal("frontend did not outsource")
	}
	if worker.Stats.Compresses.Load() == 0 {
		t.Fatal("worker saw no work")
	}
}

// fakeLoadPeer serves the load-probe protocol with a fixed load value, so
// power-of-two-choices tests are deterministic instead of racing real work.
func fakeLoadPeer(t *testing.T, load uint32) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					op, _, err := server.ReadRequest(conn)
					if err != nil {
						return
					}
					if op != server.OpLoad {
						_ = server.WriteResponse(conn, server.StatusError, []byte("fake peer"))
						continue
					}
					var resp [4]byte
					binary.LittleEndian.PutUint32(resp[:], load)
					if server.WriteResponse(conn, server.StatusOK, resp[:]) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return "tcp:" + ln.Addr().String()
}

func TestOutsourcingPowerOfTwoPrefersIdlePeer(t *testing.T) {
	// One peer reports a fixed high load, the other zero. With both
	// candidates probed, the pool must pick the idle peer; only the draws
	// where the rng picks the same peer twice go to the busy one, so over
	// many trials the idle peer wins by a wide margin.
	busyAddr := fakeLoadPeer(t, 8)
	idleAddr := fakeLoadPeer(t, 0)

	pool := server.NewPeerPool([]string{busyAddr, idleAddr}, 7)
	const trials = 40
	counts := map[string]int{}
	for i := 0; i < trials; i++ {
		addr, ok := pool.Target()
		if !ok {
			t.Fatal("no target")
		}
		counts[addr]++
	}
	// Expected idle share is 75% (50% both-distinct draws always go idle,
	// plus half of the 50% same-peer draws); require well above parity to
	// tolerate the seeded rng's draw sequence.
	if counts[idleAddr] < trials*60/100 {
		t.Fatalf("power-of-two did not prefer the idle peer: %v", counts)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "bs.sock")
	b := &server.Blockserver{}
	addr := startServer(t, "unix:"+sock, b)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := gen(t, int64(100+i), 96+8*i, 96)
			comp, err := server.Do(addr, server.OpCompress, data, 20*time.Second)
			if err != nil {
				errs <- fmt.Errorf("compress %d: %w", i, err)
				return
			}
			back, err := server.Do(addr, server.OpDecompress, comp, 20*time.Second)
			if err != nil {
				errs <- fmt.Errorf("decompress %d: %w", i, err)
				return
			}
			if !bytes.Equal(back, data) {
				errs <- fmt.Errorf("mismatch %d", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestBadAddress(t *testing.T) {
	if _, err := server.Do("bogus", server.OpLoad, nil, time.Second); err == nil {
		t.Fatal("expected address error")
	}
}

func TestStoreBackedOps(t *testing.T) {
	st := store.New()
	st.ChunkSize = 64 << 10
	b := &server.Blockserver{Store: st}
	addr := startServer(t, "tcp:127.0.0.1:0", b)

	raw := gen(t, 50, 200, 150)
	// Server-side path.
	h, err := server.Do(addr, server.OpPutChunkRaw, raw, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 32 {
		t.Fatalf("hash length %d", len(h))
	}
	back, err := server.Do(addr, server.OpGetChunkRaw, h, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, raw) {
		t.Fatal("server-side store round trip mismatch")
	}
	// Client-side path.
	res, err := core.Encode(raw, core.EncodeOptions{VerifyRoundtrip: true})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := server.Do(addr, server.OpPutChunkCompressed, res.Compressed, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := server.Do(addr, server.OpGetChunkCompressed, h2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb, res.Compressed) {
		t.Fatal("compressed chunk changed in store")
	}
	out, err := core.Decode(cb, 0)
	if err != nil || !bytes.Equal(out, raw) {
		t.Fatal("client-side decode mismatch")
	}
}

func TestStoreOpsWithoutStore(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	if _, err := server.Do(addr, server.OpPutChunkRaw, []byte("x"), 5*time.Second); err == nil {
		t.Fatal("expected error without a store")
	}
}

func TestPutCompressedRejectsGarbage(t *testing.T) {
	st := store.New()
	b := &server.Blockserver{Store: st}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	if _, err := server.Do(addr, server.OpPutChunkCompressed, []byte("not lepton"), 5*time.Second); err == nil {
		t.Fatal("expected rejection of non-Lepton payload")
	}
}

func TestGetChunkBadHash(t *testing.T) {
	st := store.New()
	b := &server.Blockserver{Store: st}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	if _, err := server.Do(addr, server.OpGetChunkRaw, []byte{1, 2}, 5*time.Second); err == nil {
		t.Fatal("expected error for short hash")
	}
	var missing [32]byte
	if _, err := server.Do(addr, server.OpGetChunkRaw, missing[:], 5*time.Second); err == nil {
		t.Fatal("expected error for unknown hash")
	}
}

// TestPersistentConnectionManyRequests issues well over 100 sequential
// compress/decompress exchanges over one TCP connection — the
// persistent-connection contract of this PR's server refactor.
func TestPersistentConnectionManyRequests(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)

	cl, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A few distinct files so pooled state is exercised across shapes.
	var datas [][]byte
	var comps [][]byte
	for i := 0; i < 4; i++ {
		data := gen(t, int64(200+i), 96+16*i, 96)
		comp, err := cl.Do(server.OpCompress, data, 20*time.Second)
		if err != nil {
			t.Fatalf("compress %d: %v", i, err)
		}
		datas = append(datas, data)
		comps = append(comps, comp)
	}
	const rounds = 120
	for i := 0; i < rounds; i++ {
		k := i % len(datas)
		if i%2 == 0 {
			comp, err := cl.Do(server.OpCompress, datas[k], 20*time.Second)
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if !bytes.Equal(comp, comps[k]) {
				t.Fatalf("request %d: compressed bytes changed across requests", i)
			}
		} else {
			back, err := cl.Do(server.OpDecompress, comps[k], 20*time.Second)
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if !bytes.Equal(back, datas[k]) {
				t.Fatalf("request %d: decompress mismatch", i)
			}
		}
	}
	if got := b.Stats.Compresses.Load() + b.Stats.Decompresses.Load(); got < rounds {
		t.Fatalf("server saw %d conversions, want >= %d", got, rounds)
	}
}

// TestPersistentConnectionMixedOps drives load probes and store ops through
// the same persistent connection as conversions.
func TestPersistentConnectionMixedOps(t *testing.T) {
	st := store.New()
	st.ChunkSize = 64 << 10
	b := &server.Blockserver{Store: st}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	cl, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	data := gen(t, 210, 160, 120)
	for i := 0; i < 5; i++ {
		if _, err := cl.Do(server.OpLoad, nil, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		h, err := cl.Do(server.OpPutChunkRaw, data, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		back, err := cl.Do(server.OpGetChunkRaw, h, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("store round trip over persistent connection mismatch")
		}
	}
	// A remote error (garbage decompress payload) must not poison the
	// connection for later requests.
	if _, err := cl.Do(server.OpDecompress, []byte("junk"), 5*time.Second); err == nil {
		t.Fatal("garbage decompress should fail")
	}
	if _, err := cl.Do(server.OpLoad, nil, 5*time.Second); err != nil {
		t.Fatalf("connection unusable after remote error: %v", err)
	}
}

// TestWorkerPoolBounded serves many concurrent conversions through a
// one-slot worker pool: everything must still complete (queued, not
// rejected), and the load probe must see the backlog.
func TestWorkerPoolBounded(t *testing.T) {
	b := &server.Blockserver{MaxConcurrent: 1}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := gen(t, int64(300+i), 128, 96)
			comp, err := server.Do(addr, server.OpCompress, data, 60*time.Second)
			if err != nil {
				errs <- fmt.Errorf("compress %d: %w", i, err)
				return
			}
			back, err := core.Decode(comp, 0)
			if err != nil || !bytes.Equal(back, data) {
				errs <- fmt.Errorf("round trip %d failed (%v)", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if b.InFlight() != 0 {
		t.Fatalf("in-flight count leaked: %d", b.InFlight())
	}
}
