package server_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"lepton/internal/core"
	"lepton/internal/server"
	"lepton/internal/store"
)

// putTestChunk stores one raw payload as a single chunk via OpPutChunkRaw
// and returns its content hash.
func putTestChunk(t *testing.T, addr string, raw []byte) [32]byte {
	t.Helper()
	resp, err := server.Do(addr, server.OpPutChunkRaw, raw, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var h [32]byte
	if len(resp) != len(h) {
		t.Fatalf("hash length %d", len(resp))
	}
	copy(h[:], resp)
	return h
}

// TestGetRangeOp exercises OpGetRange end to end against a store-backed
// server: every probed range must equal the matching slice of the chunk's
// raw bytes, the stored chunk's seek index must carry the reads on the fast
// path, and the counters must advance.
func TestGetRangeOp(t *testing.T) {
	st := store.New()
	b := &server.Blockserver{Store: st}
	addr := startServer(t, "tcp:127.0.0.1:0", b)

	raw := gen(t, 61, 320, 240)
	h := putTestChunk(t, addr, raw)

	cl, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	size := int64(len(raw))
	before := core.RangeStats()
	probes := [][2]int64{
		{0, 1}, {0, 1024}, {0, size}, {size / 2, 512},
		{size - 7, 7}, {size - 1, 100}, {size, 10}, {size + 99, 5},
		{size / 3, 0},
	}
	for _, p := range probes {
		got, err := cl.GetRange(ctx, h, p[0], p[1])
		if err != nil {
			t.Fatalf("GetRange(off=%d n=%d): %v", p[0], p[1], err)
		}
		a, z := p[0], p[0]+p[1]
		if a > size {
			a = size
		}
		if z > size {
			z = size
		}
		if z < a {
			z = a
		}
		if !bytes.Equal(got, raw[a:z]) {
			t.Fatalf("GetRange(off=%d n=%d): %d bytes differ from raw slice", p[0], p[1], len(got))
		}
	}
	after := core.RangeStats()
	if after["range_fast"]-before["range_fast"] == 0 {
		t.Error("no range read took the indexed fast path")
	}
	if got := b.Stats.GetRanges.Load(); got != int64(len(probes)) {
		t.Fatalf("GetRanges counter = %d, want %d", got, len(probes))
	}
	snap := b.StatsSnapshot()
	if snap["get_ranges"] != int64(len(probes)) {
		t.Fatalf("snapshot get_ranges = %d", snap["get_ranges"])
	}
	if _, ok := snap["range_fast"]; !ok {
		t.Fatalf("snapshot missing range_fast counter: %v", snap)
	}

	// Unknown chunk: StatusNotFound, surfaced as RemoteError.NotFound.
	var missing [32]byte
	_, err = cl.GetRange(ctx, missing, 0, 16)
	var re *server.RemoteError
	if !errors.As(err, &re) || !re.NotFound {
		t.Fatalf("missing chunk: got %v, want RemoteError with NotFound", err)
	}

	// Malformed request body: deterministic rejection, connection stays up.
	if _, err := server.Do(addr, server.OpGetRange, h[:], 5*time.Second); err == nil {
		t.Fatal("expected error for short get-range request")
	}
	if _, err := cl.GetRange(ctx, h, -1, 16); err == nil {
		t.Fatal("expected client-side rejection of negative offset")
	}
	if got, err := cl.GetRange(ctx, h, 0, 32); err != nil || !bytes.Equal(got, raw[:32]) {
		t.Fatalf("connection unusable after rejected requests: %v", err)
	}
}

// TestGetRangeFallbackContainer stores a chunk the fast path cannot index
// (a raw-mode container) and checks OpGetRange still serves exact slices.
func TestGetRangeFallbackContainer(t *testing.T) {
	st := store.New()
	b := &server.Blockserver{Store: st}
	addr := startServer(t, "tcp:127.0.0.1:0", b)

	blob := []byte("definitely not a jpeg, stored verbatim as a raw container ........")
	h := putTestChunk(t, addr, blob)

	cl, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got, err := cl.GetRange(context.Background(), h, 11, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob[11:20]) {
		t.Fatalf("raw-container range = %q", got)
	}
}

// TestFleetGetRange places a chunk on one node of a two-node fleet and
// checks both read paths: the node-addressed GetRange (miss surfaces as
// store.ErrRemoteMiss, hit serves the slice) and the routed GetRangeAny,
// which must retry a NotFound on the other node instead of giving up.
func TestFleetGetRange(t *testing.T) {
	nodes := startTestFleet(t, 2)
	f := newTestFleet(t, nodes, nil)
	ctx := context.Background()

	raw := gen(t, 62, 200, 150)
	h := putTestChunk(t, nodes[0].addr, raw)

	// Node-addressed: the holding node serves, the other reports a miss.
	got, err := f.GetRange(ctx, nodes[0].addr, h, 5, 100)
	if err != nil || !bytes.Equal(got, raw[5:105]) {
		t.Fatalf("node-addressed GetRange: %v", err)
	}
	if _, err := f.GetRange(ctx, nodes[1].addr, h, 5, 100); !errors.Is(err, store.ErrRemoteMiss) {
		t.Fatalf("miss: got %v, want ErrRemoteMiss", err)
	}

	// Routed: whichever node load-routing picks first, a miss there must be
	// retried on the other node. Sweep several offsets so both orderings
	// occur across the rng stream.
	for i := int64(0); i < 8; i++ {
		off := i * 997
		got, err := f.GetRangeAny(ctx, h, off, 64)
		if err != nil {
			t.Fatalf("GetRangeAny(off=%d): %v", off, err)
		}
		a, z := off, off+64
		if a > int64(len(raw)) {
			a = int64(len(raw))
		}
		if z > int64(len(raw)) {
			z = int64(len(raw))
		}
		if !bytes.Equal(got, raw[a:z]) {
			t.Fatalf("GetRangeAny(off=%d) mismatch", off)
		}
	}

	// A chunk no node holds: the routed read reports the miss after trying
	// everywhere.
	var missing [32]byte
	_, err = f.GetRangeAny(ctx, missing, 0, 16)
	var re *server.RemoteError
	if !errors.As(err, &re) || !re.NotFound {
		t.Fatalf("routed miss: got %v, want RemoteError with NotFound", err)
	}
}

// TestRemoteStoreRange drives store.Remote.GetRange and GetFileRange over a
// live fleet: replica-ordered range reads, the whole-chunk local fallback
// accounting, and the chunk-arithmetic file ranges.
func TestRemoteStoreRange(t *testing.T) {
	nodes := startTestFleet(t, 3)
	f := newTestFleet(t, nodes, nil)
	r, err := store.NewRemote(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.ChunkSize = 32 << 10
	ctx := context.Background()

	data := gen(t, 63, 640, 480)
	ref, err := r.PutFile(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Chunks) < 2 {
		t.Fatalf("want a multi-chunk file, got %d chunks", len(ref.Chunks))
	}

	size := int64(len(data))
	for _, p := range [][2]int64{
		{0, 1}, {0, 4096}, {size / 2, 1024}, {size - 33, 33},
		{int64(r.ChunkSize) - 10, 20}, // straddles the first chunk boundary
		{0, size}, {size, 5}, {size / 3, 0},
	} {
		got, err := r.GetFileRange(ctx, ref, p[0], p[1])
		if err != nil {
			t.Fatalf("GetFileRange(off=%d n=%d): %v", p[0], p[1], err)
		}
		a, z := p[0], p[0]+p[1]
		if a > size {
			a = size
		}
		if z > size {
			z = size
		}
		if z < a {
			z = a
		}
		if !bytes.Equal(got, data[a:z]) {
			t.Fatalf("GetFileRange(off=%d n=%d) differs from file slice", p[0], p[1])
		}
	}
	c := r.Counters()
	if c.RangeGets == 0 {
		t.Fatal("no range gets counted")
	}
	if c.RangeFallbacks != 0 {
		t.Fatalf("range reads over a range-capable fleet fell back %d times", c.RangeFallbacks)
	}

	// A mismatched chunk size must be refused, not silently misread.
	r.ChunkSize = 16 << 10
	if _, err := r.GetFileRange(ctx, ref, 0, 64); err == nil {
		t.Fatal("expected chunk-size mismatch error")
	}
	r.ChunkSize = 32 << 10

	// A transport without the range capability serves through the verified
	// whole-chunk fallback.
	r2, err := store.NewRemote(rangelessTransport{f}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2.ChunkSize = 32 << 10
	got, err := r2.GetRange(ctx, ref.Chunks[0], 100, 200)
	if err != nil || !bytes.Equal(got, data[100:300]) {
		t.Fatalf("rangeless transport fallback: %v", err)
	}
	if c2 := r2.Counters(); c2.RangeFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", c2.RangeFallbacks)
	}
}

// rangelessTransport hides the fleet's RangeTransport capability so the
// local-fallback path is reachable in tests.
type rangelessTransport struct{ f *server.Fleet }

func (rt rangelessTransport) Nodes() []string { return rt.f.Nodes() }
func (rt rangelessTransport) PutCompressed(ctx context.Context, addr string, cb []byte) (store.Hash, error) {
	return rt.f.PutCompressed(ctx, addr, cb)
}
func (rt rangelessTransport) GetCompressed(ctx context.Context, addr string, h store.Hash) ([]byte, error) {
	return rt.f.GetCompressed(ctx, addr, h)
}
