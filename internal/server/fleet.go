// Fleet is the client-side router over a set of live blockservers: the
// piece that turns one server plus a simulator into a deployable
// multi-node system. It keeps a small pool of persistent Clients per node,
// picks targets by the power of two random choices using real Load probes
// (probed concurrently under one shared context, §5.5), retries transport
// failures on a different node with the failed node excluded, hedges a
// second request onto another node after a configurable latency threshold
// (first response wins, the loser is cancelled through its context), and
// runs a health loop that evicts unreachable nodes and re-admits them once
// probes succeed again.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lepton/internal/store"
)

// Fleet routing defaults.
const (
	// DefaultProbeTimeout bounds one target-selection probe round. Probes
	// are cheap OpLoad exchanges on pooled connections; a peer that cannot
	// answer within this budget is treated as unreachable.
	DefaultProbeTimeout = 250 * time.Millisecond
	// DefaultDialTimeout bounds establishing a new connection to a node.
	DefaultDialTimeout = 2 * time.Second
	// DefaultHealthInterval is how often the health loop probes every node.
	DefaultHealthInterval = 500 * time.Millisecond
	// DefaultMaxIdlePerNode caps the per-node pool of idle persistent
	// connections.
	DefaultMaxIdlePerNode = 4
)

// ErrNoNodes is returned when every fleet node is excluded or unreachable.
var ErrNoNodes = errors.New("server: fleet has no reachable nodes")

// ErrNodeDown is returned (wrapped) by DoNode when the addressed node is
// currently evicted; placement-routed callers skip to the next replica.
var ErrNodeDown = errors.New("server: fleet node is down")

// FleetOptions tunes a Fleet. The zero value selects the defaults above,
// with hedging disabled.
type FleetOptions struct {
	// ProbeTimeout bounds one power-of-two probe round (both candidates
	// share it); 0 means DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// DialTimeout bounds new connections; 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// HedgeAfter, when positive, launches a second copy of a request on a
	// different node if the first has not answered within this duration;
	// the first response wins and the loser is cancelled.
	HedgeAfter time.Duration
	// HealthInterval is the eviction/re-admission probe period; 0 means
	// DefaultHealthInterval, negative disables the loop (tests drive
	// HealthCheck directly). With the loop disabled, an evicted node is
	// also re-admitted whenever it answers a probe or serves a request —
	// which routed traffic only causes once no healthy node remains — so
	// callers disabling the loop own calling HealthCheck for timely
	// recovery.
	HealthInterval time.Duration
	// MaxIdlePerNode caps pooled idle connections per node; 0 means
	// DefaultMaxIdlePerNode.
	MaxIdlePerNode int
	// MaxAttempts bounds how many nodes one request may try (the first
	// attempt included); 0 means one attempt per node.
	MaxAttempts int
	// Seed fixes the candidate-selection rng for reproducible tests; 0
	// seeds from the clock.
	Seed int64
	// Logf, when set, receives routing diagnostics.
	Logf func(format string, args ...any)
}

// FleetStats counts routing activity.
type FleetStats struct {
	Requests      atomic.Int64
	Retries       atomic.Int64
	Hedged        atomic.Int64
	HedgeWins     atomic.Int64
	Evictions     atomic.Int64
	Readmissions  atomic.Int64
	ProbeFailures atomic.Int64
	DialFailures  atomic.Int64
}

// fleetNode is one blockserver as the router sees it: an address, a pool of
// idle persistent clients, and a health flag.
type fleetNode struct {
	addr string

	mu   sync.Mutex
	idle []*Client
	down bool
	// healthFails counts consecutive failed health-loop probes; the loop
	// evicts only after healthEvictAfter of them, because one missed probe
	// deadline can mean saturation rather than death (see pick).
	healthFails int

	// rtt is the probe RTT EWMA: fed by every successful OpLoad probe
	// (target selection, health loop, ProbeNode), exported through
	// StatsSnapshot and NodeRTT so the backfill pacer's inputs are
	// operator-visible. Request exchanges do not feed it — a conversion's
	// latency measures the payload, not the wire.
	rtt RTTEstimator
	// evictions counts how many times this node specifically was evicted.
	evictions atomic.Int64
}

func (n *fleetNode) isDown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// Fleet routes requests across a fixed set of blockservers. Safe for
// concurrent use.
type Fleet struct {
	opts   FleetOptions
	nodes  []*fleetNode
	byAddr map[string]*fleetNode

	rngMu sync.Mutex
	rng   *rand.Rand

	Stats FleetStats

	stopOnce sync.Once
	stopCh   chan struct{}
	healthWG sync.WaitGroup
	closed   atomic.Bool
}

// NewFleet builds a router over addrs ("tcp:<host:port>" or
// "unix:<path>"), deduplicated, and starts the health loop. opts may be
// nil. Callers own Close.
func NewFleet(addrs []string, opts *FleetOptions) (*Fleet, error) {
	f := &Fleet{byAddr: map[string]*fleetNode{}, stopCh: make(chan struct{})}
	if opts != nil {
		f.opts = *opts
	}
	if f.opts.ProbeTimeout <= 0 {
		f.opts.ProbeTimeout = DefaultProbeTimeout
	}
	if f.opts.DialTimeout <= 0 {
		f.opts.DialTimeout = DefaultDialTimeout
	}
	if f.opts.MaxIdlePerNode <= 0 {
		f.opts.MaxIdlePerNode = DefaultMaxIdlePerNode
	}
	seed := f.opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	f.rng = rand.New(rand.NewSource(seed))
	for _, addr := range addrs {
		if _, _, err := splitAddr(addr); err != nil {
			return nil, fmt.Errorf("fleet node %q: %w", addr, err)
		}
		if _, dup := f.byAddr[addr]; dup {
			continue
		}
		n := &fleetNode{addr: addr}
		f.nodes = append(f.nodes, n)
		f.byAddr[addr] = n
	}
	if len(f.nodes) == 0 {
		return nil, errors.New("server: fleet needs at least one node")
	}
	if f.opts.MaxAttempts <= 0 {
		f.opts.MaxAttempts = len(f.nodes)
	}
	interval := f.opts.HealthInterval
	if interval == 0 {
		interval = DefaultHealthInterval
	}
	if interval > 0 {
		f.healthWG.Add(1)
		go f.healthLoop(interval)
	}
	return f, nil
}

func (f *Fleet) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// Nodes returns every configured node address, up or down.
func (f *Fleet) Nodes() []string {
	out := make([]string, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.addr
	}
	return out
}

// NodeDown reports whether addr is currently evicted.
func (f *Fleet) NodeDown(addr string) bool {
	n, ok := f.byAddr[addr]
	return ok && n.isDown()
}

// StatsSnapshot returns a point-in-time view of the router's counters plus
// the current up/down node split, mirroring Blockserver.StatsSnapshot.
func (f *Fleet) StatsSnapshot() map[string]int64 {
	var up, down int64
	for _, n := range f.nodes {
		if n.isDown() {
			down++
		} else {
			up++
		}
	}
	snap := map[string]int64{
		"requests":       f.Stats.Requests.Load(),
		"retries":        f.Stats.Retries.Load(),
		"hedged":         f.Stats.Hedged.Load(),
		"hedge_wins":     f.Stats.HedgeWins.Load(),
		"evictions":      f.Stats.Evictions.Load(),
		"readmissions":   f.Stats.Readmissions.Load(),
		"probe_failures": f.Stats.ProbeFailures.Load(),
		"dial_failures":  f.Stats.DialFailures.Load(),
		"nodes_up":       up,
		"nodes_down":     down,
	}
	for i, n := range f.nodes {
		st := n.rtt.Stat()
		snap[fmt.Sprintf("node%d_srtt_us", i)] = st.SRTT.Microseconds()
		snap[fmt.Sprintf("node%d_rttvar_us", i)] = st.RTTVar.Microseconds()
		snap[fmt.Sprintf("node%d_rto_us", i)] = st.RTO.Microseconds()
		snap[fmt.Sprintf("node%d_rtt_samples", i)] = st.Samples
		snap[fmt.Sprintf("node%d_evictions", i)] = n.evictions.Load()
		var downFlag int64
		if n.isDown() {
			downFlag = 1
		}
		snap[fmt.Sprintf("node%d_down", i)] = downFlag
	}
	return snap
}

// NodeRTT returns the RTT estimate for addr, fed by load probes and served
// requests — the signal the backfill pacer times its window against.
func (f *Fleet) NodeRTT(addr string) (RTTStat, bool) {
	n, ok := f.byAddr[addr]
	if !ok {
		return RTTStat{}, false
	}
	return n.rtt.Stat(), true
}

// --- per-node connection pool --------------------------------------------

// getClient pops an idle persistent client or dials a fresh one; fresh
// skips the pool entirely, so a retry after a stale pooled connection
// cannot just pop the next stale one. fromPool tells the caller whether a
// transport failure might mean the pooled connection went stale (worth one
// fresh redial) rather than the node being dead.
func (f *Fleet) getClient(ctx context.Context, n *fleetNode, fresh bool) (c *Client, fromPool bool, err error) {
	if !fresh {
		n.mu.Lock()
		if k := len(n.idle); k > 0 {
			c = n.idle[k-1]
			n.idle = n.idle[:k-1]
			n.mu.Unlock()
			return c, true, nil
		}
		n.mu.Unlock()
	}
	dctx, cancel := context.WithTimeout(ctx, f.opts.DialTimeout)
	defer cancel()
	c, err = DialContext(dctx, n.addr)
	if err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// putClient returns a healthy client to the node's idle pool, or closes it
// when the pool is full or the node was evicted meanwhile.
func (f *Fleet) putClient(n *fleetNode, c *Client) {
	n.mu.Lock()
	if !n.down && len(n.idle) < f.opts.MaxIdlePerNode && !f.closed.Load() {
		n.idle = append(n.idle, c)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	_ = c.Close()
}

// evict marks a node down and drops its pooled connections. Idempotent.
func (f *Fleet) evict(n *fleetNode, why string) {
	n.mu.Lock()
	already := n.down
	n.down = true
	idle := n.idle
	n.idle = nil
	n.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
	if !already {
		f.Stats.Evictions.Add(1)
		n.evictions.Add(1)
		f.logf("fleet: evicted %s (%s)", n.addr, why)
	}
}

// readmit marks a node healthy again and clears its probe-failure streak.
// Idempotent.
func (f *Fleet) readmit(n *fleetNode) {
	n.mu.Lock()
	was := n.down
	n.down = false
	n.healthFails = 0
	n.mu.Unlock()
	if was {
		f.Stats.Readmissions.Add(1)
		f.logf("fleet: readmitted %s", n.addr)
	}
}

// --- probing and target selection ----------------------------------------

// probe asks a node for its in-flight load on a pooled connection, redialing
// once if the pooled connection had gone stale.
func (f *Fleet) probe(ctx context.Context, n *fleetNode) (uint32, error) {
	for attempt := 0; ; attempt++ {
		c, fromPool, err := f.getClient(ctx, n, attempt > 0)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		load, err := c.Load(ctx)
		if err == nil {
			n.rtt.Observe(time.Since(start))
			// A node that answers is alive, whatever the health loop last
			// concluded; readmitting here (before pooling the client, which
			// a down node would refuse) keeps DoNode usable even when the
			// loop is disabled (HealthInterval < 0).
			f.readmit(n)
			f.putClient(n, c)
			return load, nil
		}
		_ = c.Close()
		if fromPool && attempt == 0 && ctx.Err() == nil {
			continue // stale pooled connection; one fresh dial decides
		}
		return 0, err
	}
}

// probePair probes two candidates concurrently under one shared context —
// the whole pair, not each probe, pays at most the context's deadline —
// and picks the less loaded: it returns the winning index (0 or 1), or -1
// when both probes fail, plus each probe's error for the caller's
// accounting. Shared by Fleet.pick and PeerPool.TargetCtx, the two
// power-of-two-choices selectors.
func probePair(ctx context.Context, probe func(ctx context.Context, i int) (uint32, error)) (int, [2]error) {
	type res struct {
		load uint32
		err  error
	}
	var ch [2]chan res
	for i := range ch {
		ch[i] = make(chan res, 1)
		go func(i int) {
			l, err := probe(ctx, i)
			ch[i] <- res{l, err}
		}(i)
	}
	r0, r1 := <-ch[0], <-ch[1]
	errs := [2]error{r0.err, r1.err}
	switch {
	case r0.err != nil && r1.err != nil:
		return -1, errs
	case r0.err != nil:
		return 1, errs
	case r1.err != nil:
		return 0, errs
	case r1.load < r0.load:
		return 1, errs
	default:
		return 0, errs
	}
}

// twoRandom picks two distinct candidate indices (or twice the same when
// only one candidate remains).
func (f *Fleet) twoRandom(n int) (int, int) {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	i := f.rng.Intn(n)
	if n == 1 {
		return i, i
	}
	j := f.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}

// pick selects a target by the power of two random choices over the nodes
// not excluded: both candidates are probed concurrently under one shared
// ProbeTimeout context and the less loaded wins. A failed probe only
// deprioritizes its candidate for this selection — under heavy load a
// saturated (but alive) node can miss the probe deadline, and evicting on
// that signal lets one overloaded moment take the whole fleet out; actual
// eviction is reserved for dial/transport failures and the health loop.
// When every healthy node is excluded, down nodes get a chance (they may
// have recovered before the health loop noticed), and when probing
// eliminated everyone, the last probe-failed candidate is returned
// unprobed: attempting the request beats failing it, since a genuinely
// dead node fails fast and the retry loop moves on.
func (f *Fleet) pick(ctx context.Context, exclude map[*fleetNode]bool) (*fleetNode, error) {
	local := make(map[*fleetNode]bool)
	var lastResort *fleetNode
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var cands []*fleetNode
		for _, n := range f.nodes {
			if !exclude[n] && !local[n] && !n.isDown() {
				cands = append(cands, n)
			}
		}
		if len(cands) == 0 {
			for _, n := range f.nodes {
				if !exclude[n] && !local[n] {
					cands = append(cands, n)
				}
			}
		}
		if len(cands) == 0 {
			if lastResort != nil {
				return lastResort, nil
			}
			return nil, ErrNoNodes
		}
		if len(cands) == 1 {
			return cands[0], nil
		}
		i, j := f.twoRandom(len(cands))
		pair := [2]*fleetNode{cands[i], cands[j]}
		pctx, cancel := context.WithTimeout(ctx, f.opts.ProbeTimeout)
		win, errs := probePair(pctx, func(ctx context.Context, k int) (uint32, error) {
			return f.probe(ctx, pair[k])
		})
		cancel()
		if err := ctx.Err(); err != nil {
			// The caller's context was cancelled (a lost hedge, a dead
			// client): the probe failures say nothing about the nodes.
			return nil, err
		}
		for k, err := range errs {
			if err != nil {
				f.Stats.ProbeFailures.Add(1)
				local[pair[k]] = true
				lastResort = pair[k]
			}
		}
		if win < 0 {
			continue // neither answered; re-pick among the rest
		}
		return pair[win], nil
	}
}

// --- request execution ----------------------------------------------------

// try performs one exchange against one node. Remote (StatusError) failures
// keep the connection pooled and are returned as *RemoteError; transport
// failures close the connection, evict the node (unless our own context
// caused them), and are worth retrying elsewhere. A stale pooled connection
// gets one same-node redial before the node is blamed: every protocol op is
// idempotent (conversions are pure, store puts are content-addressed), so
// the repeat is safe.
func (f *Fleet) try(ctx context.Context, n *fleetNode, op byte, payload []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		c, fromPool, err := f.getClient(ctx, n, attempt > 0)
		if err != nil {
			if ctx.Err() == nil {
				f.Stats.DialFailures.Add(1)
				f.evict(n, fmt.Sprintf("dial: %v", err))
			}
			return nil, err
		}
		resp, err := c.DoCtx(ctx, op, payload)
		if err == nil {
			f.readmit(n) // it served: alive even if marked down meanwhile
			f.putClient(n, c)
			return resp, nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			f.readmit(n)
			f.putClient(n, c)
			return nil, err
		}
		_ = c.Close()
		var sbe *StreamBodyError
		if errors.As(err, &sbe) {
			// A response that died mid-body proves the node alive and the
			// connection fresh (it framed this response): no same-node
			// redial — the repeat conversion would fail identically — and
			// no eviction, or one poisoned payload would take the fleet
			// out node by node as it is retried.
			return nil, err
		}
		if fromPool && attempt == 0 && ctx.Err() == nil {
			continue
		}
		if ctx.Err() == nil {
			f.evict(n, fmt.Sprintf("%v", err))
		}
		return nil, err
	}
}

// tryHedged runs one routed attempt with optional hedging: if the primary
// node has not answered within HedgeAfter, the same request is launched on
// a second node and the first response wins; the loser's context is
// cancelled so its conversion aborts server-side at the next checkpoint.
// Nodes that failed are recorded in exclude so the caller's retry loop
// skips them.
func (f *Fleet) tryHedged(ctx context.Context, primary *fleetNode, op byte, payload []byte, exclude map[*fleetNode]bool) ([]byte, error) {
	type result struct {
		resp  []byte
		err   error
		n     *fleetNode
		hedge bool
	}
	ch := make(chan result, 2)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		resp, err := f.try(pctx, primary, op, payload)
		ch <- result{resp, err, primary, false}
	}()

	var timerC <-chan time.Time
	if f.opts.HedgeAfter > 0 && len(f.nodes) > 1 {
		timer := time.NewTimer(f.opts.HedgeAfter)
		defer timer.Stop()
		timerC = timer.C
	}
	var cancels []context.CancelFunc
	cancelAll := func() {
		for _, c := range cancels {
			c()
		}
	}
	defer cancelAll()

	inFlight := 1
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timerC:
			timerC = nil
			// Pick and launch the hedge off the event loop: pick probes
			// candidates (each round bounded by ProbeTimeout), and running
			// it here would delay delivering a primary response that has
			// already landed in ch. The exclude set is copied synchronously
			// — the loop keeps writing it as results arrive.
			hx := map[*fleetNode]bool{primary: true}
			for n := range exclude {
				hx[n] = true
			}
			hctx, hcancel := context.WithCancel(ctx)
			cancels = append(cancels, hcancel)
			inFlight++
			go func() {
				n2, err := f.pick(hctx, hx)
				if err != nil {
					// Nowhere to hedge; a nil node tells the loop this slot
					// produced no verdict on any node.
					ch <- result{nil, err, nil, true}
					return
				}
				f.Stats.Hedged.Add(1)
				resp, err := f.try(hctx, n2, op, payload)
				ch <- result{resp, err, n2, true}
			}()
		case r := <-ch:
			inFlight--
			if r.n == nil {
				// The hedge was abandoned before reaching a node (no
				// candidate, or cancelled); it says nothing about the
				// request — keep waiting on whatever is still in flight.
				if inFlight == 0 {
					if firstErr == nil {
						firstErr = r.err
					}
					return nil, firstErr
				}
				continue
			}
			if r.err == nil {
				if r.hedge {
					f.Stats.HedgeWins.Add(1)
				}
				// Cancel the loser; its client tears down and the server
				// aborts the duplicate conversion at its next checkpoint.
				pcancel()
				cancelAll()
				return r.resp, nil
			}
			var re *RemoteError
			if errors.As(r.err, &re) && !re.Transient && !re.NotFound {
				// Deterministic in-band rejection: the other copy would be
				// rejected identically, so don't wait for it (or let it
				// burn a worker slot to completion). A transient decline
				// (StatusRetry) falls through: another node may serve it —
				// as does NotFound, which is deterministic only for the
				// answering node (a store read's chunk may well live on the
				// other copy's node).
				pcancel()
				cancelAll()
				return nil, r.err
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if ctx.Err() == nil {
				exclude[r.n] = true
			}
			if inFlight == 0 {
				// Nothing left in flight (and no point arming a hedge for a
				// request that already failed): report the failure and let
				// the caller's retry loop re-route.
				return nil, firstErr
			}
		}
	}
}

// Do routes one request through the fleet: pick a node by loaded-probe
// power-of-two choices, hedge if configured, and retry transport failures
// and node-local declines (StatusRetry: per-request timeouts, drain
// force-cancels) on different nodes until MaxAttempts is exhausted.
// Deterministic rejections (StatusError) are returned immediately — the
// server rejected the payload itself, so another node would too.
func (f *Fleet) Do(ctx context.Context, op byte, payload []byte) ([]byte, error) {
	if f.closed.Load() {
		return nil, errors.New("server: fleet is closed")
	}
	if err := checkPayloadSize(payload); err != nil {
		return nil, err
	}
	f.Stats.Requests.Add(1)
	exclude := make(map[*fleetNode]bool)
	var lastErr error
	for attempt := 0; attempt < f.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := f.pick(ctx, exclude)
		if err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		if attempt > 0 {
			f.Stats.Retries.Add(1)
		}
		resp, err := f.tryHedged(ctx, n, op, payload, exclude)
		if err == nil {
			return resp, nil
		}
		var re *RemoteError
		if errors.As(err, &re) && !re.Transient {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctxOr(ctx, err)
		}
		lastErr = err
		exclude[n] = true
	}
	return nil, lastErr
}

// DoNode performs one exchange against a specific node, bypassing load
// routing — the placement-addressed path store.Remote uses. A node
// currently evicted fails fast with ErrNodeDown (wrapped) so replicated
// callers move on to the next replica.
func (f *Fleet) DoNode(ctx context.Context, addr string, op byte, payload []byte) ([]byte, error) {
	if f.closed.Load() {
		return nil, errors.New("server: fleet is closed")
	}
	if err := checkPayloadSize(payload); err != nil {
		return nil, err
	}
	n, ok := f.byAddr[addr]
	if !ok {
		return nil, fmt.Errorf("server: %q is not a fleet node", addr)
	}
	if n.isDown() {
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, addr)
	}
	return f.try(ctx, n, op, payload)
}

// ProbeNode asks one node for its in-flight load on a pooled connection —
// the live-traffic-priority signal the backfill engine polls — updating the
// node's probe RTT estimate as a side effect. A node that answers is
// readmitted if it had been evicted.
func (f *Fleet) ProbeNode(ctx context.Context, addr string) (uint32, error) {
	if f.closed.Load() {
		return 0, errors.New("server: fleet is closed")
	}
	n, ok := f.byAddr[addr]
	if !ok {
		return 0, fmt.Errorf("server: %q is not a fleet node", addr)
	}
	return f.probe(ctx, n)
}

// Compress routes one whole-file compression through the fleet.
func (f *Fleet) Compress(ctx context.Context, data []byte) ([]byte, error) {
	return f.Do(ctx, OpCompress, data)
}

// Decompress routes one container reconstruction through the fleet.
func (f *Fleet) Decompress(ctx context.Context, comp []byte) ([]byte, error) {
	return f.Do(ctx, OpDecompress, comp)
}

// --- health loop ----------------------------------------------------------

func (f *Fleet) healthLoop(interval time.Duration) {
	defer f.healthWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-f.stopCh:
			return
		case <-t.C:
			f.HealthCheck(context.Background())
		}
	}
}

// healthEvictAfter is how many consecutive health probes a node may fail
// before the loop evicts it. A single missed deadline often means the node
// (or this host) is saturated, not dead — evicting the whole fleet on one
// slow tick would drop every pooled connection exactly when load peaks —
// while genuinely dead nodes are usually evicted sooner anyway by a
// request's dial/transport failure.
const healthEvictAfter = 2

// HealthCheck probes every node once, concurrently: healthy nodes are
// evicted after healthEvictAfter consecutive failed probes, evicted nodes
// that answer are re-admitted. The health loop calls it on every tick;
// tests may call it directly.
func (f *Fleet) HealthCheck(ctx context.Context) {
	var wg sync.WaitGroup
	for _, n := range f.nodes {
		wg.Add(1)
		go func(n *fleetNode) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, f.opts.ProbeTimeout)
			defer cancel()
			_, err := f.probe(pctx, n)
			switch {
			case err == nil:
				f.readmit(n) // also clears the failure streak
			case ctx.Err() != nil:
				// The caller's context expired; no verdict on the node.
			default:
				f.Stats.ProbeFailures.Add(1)
				n.mu.Lock()
				n.healthFails++
				fails := n.healthFails
				n.mu.Unlock()
				if fails >= healthEvictAfter {
					f.evict(n, fmt.Sprintf("%d health probes: %v", fails, err))
				}
			}
		}(n)
	}
	wg.Wait()
}

// Close stops the health loop and closes every pooled connection. In-flight
// requests finish (their clients are simply not returned to the pools).
func (f *Fleet) Close() error {
	f.stopOnce.Do(func() {
		f.closed.Store(true)
		close(f.stopCh)
	})
	f.healthWG.Wait()
	for _, n := range f.nodes {
		n.mu.Lock()
		idle := n.idle
		n.idle = nil
		n.mu.Unlock()
		for _, c := range idle {
			_ = c.Close()
		}
	}
	return nil
}

// --- store transport adapter ---------------------------------------------

// PutCompressed uploads one already-compressed chunk to a specific node and
// returns its content hash; with GetCompressed it implements
// store.RemoteTransport, so a store.Remote can place replicas through the
// fleet's pooled, health-checked connections.
func (f *Fleet) PutCompressed(ctx context.Context, addr string, compressed []byte) (store.Hash, error) {
	resp, err := f.DoNode(ctx, addr, OpPutChunkCompressed, compressed)
	if err != nil {
		return store.Hash{}, err
	}
	var h store.Hash
	if len(resp) != len(h) {
		return store.Hash{}, fmt.Errorf("server: put returned %d-byte hash", len(resp))
	}
	copy(h[:], resp)
	return h, nil
}

// GetCompressed fetches one chunk's stored compressed bytes from a specific
// node. A node that answered StatusNotFound comes back as
// store.ErrRemoteMiss (wrapped) so the replicated reader can distinguish
// "not there" (read-repairable) from "unreachable" or otherwise failing
// (which may still hold the chunk — e.g. a node running without a store
// must not be flooded with futile repair writes).
func (f *Fleet) GetCompressed(ctx context.Context, addr string, h store.Hash) ([]byte, error) {
	resp, err := f.DoNode(ctx, addr, OpGetChunkCompressed, h[:])
	if err != nil {
		var re *RemoteError
		if errors.As(err, &re) && re.NotFound {
			return nil, fmt.Errorf("%w: %s", store.ErrRemoteMiss, addr)
		}
		return nil, err
	}
	return resp, nil
}

// GetRange fetches bytes [off, off+n) of the reconstruction of the chunk
// stored under h from a specific node via OpGetRange — the
// placement-addressed read store.Remote range reads use. The node decodes
// only the arithmetic segments the range touches when the chunk carries a
// seek index. A node that answered StatusNotFound comes back as
// store.ErrRemoteMiss (wrapped), like GetCompressed, so replicated readers
// move on to the next replica.
func (f *Fleet) GetRange(ctx context.Context, addr string, h store.Hash, off, n int64) ([]byte, error) {
	req, err := encodeGetRange(h, off, n)
	if err != nil {
		return nil, err
	}
	resp, err := f.DoNode(ctx, addr, OpGetRange, req)
	if err != nil {
		var re *RemoteError
		if errors.As(err, &re) && re.NotFound {
			return nil, fmt.Errorf("%w: %s", store.ErrRemoteMiss, addr)
		}
		return nil, err
	}
	return resp, nil
}

// GetRangeAny routes a chunk range read through the fleet without placement
// knowledge: nodes are picked by loaded-probe power-of-two choices, hedged
// like any routed request, and — unlike Do — a node answering
// StatusNotFound is excluded and the read retried elsewhere, because a miss
// is deterministic only for the node that answered it. When every attempted
// node missed, the last miss is returned (a *RemoteError with NotFound
// set).
func (f *Fleet) GetRangeAny(ctx context.Context, h store.Hash, off, n int64) ([]byte, error) {
	if f.closed.Load() {
		return nil, errors.New("server: fleet is closed")
	}
	req, err := encodeGetRange(h, off, n)
	if err != nil {
		return nil, err
	}
	f.Stats.Requests.Add(1)
	exclude := make(map[*fleetNode]bool)
	var lastErr error
	for attempt := 0; attempt < f.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		node, err := f.pick(ctx, exclude)
		if err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		if attempt > 0 {
			f.Stats.Retries.Add(1)
		}
		resp, err := f.tryHedged(ctx, node, OpGetRange, req, exclude)
		if err == nil {
			return resp, nil
		}
		var re *RemoteError
		if errors.As(err, &re) && !re.Transient && !re.NotFound {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctxOr(ctx, err)
		}
		lastErr = err
		exclude[node] = true
	}
	return nil, lastErr
}

// ListChunks pages through one node's stored chunk hashes via OpListChunks
// (exclusive-start cursor, ascending), implementing store.ChunkLister — the
// capability behind warm-restart re-announce and anti-entropy sweeps.
func (f *Fleet) ListChunks(ctx context.Context, addr string, after store.Hash, max int) ([]store.Hash, error) {
	if max <= 0 || max > ListChunksPageMax {
		max = ListChunksPageMax
	}
	req := make([]byte, 36)
	copy(req, after[:])
	binary.LittleEndian.PutUint32(req[32:], uint32(max))
	resp, err := f.DoNode(ctx, addr, OpListChunks, req)
	if err != nil {
		return nil, err
	}
	if len(resp)%32 != 0 {
		return nil, fmt.Errorf("server: list-chunks response of %d bytes is not hash-aligned", len(resp))
	}
	hashes := make([]store.Hash, len(resp)/32)
	for i := range hashes {
		copy(hashes[i][:], resp[i*32:])
	}
	return hashes, nil
}

var (
	_ store.RemoteTransport = (*Fleet)(nil)
	_ store.ChunkLister     = (*Fleet)(nil)
	_ store.RangeTransport  = (*Fleet)(nil)
)
