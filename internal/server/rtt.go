// RTT estimation in the Jacobson/Karels shape (RFC 6298): a smoothed
// round-trip EWMA plus a mean-deviation term feeding a retransmission
// timeout that backs off exponentially under repeated failure. The fleet
// router keeps one estimator per node fed by successful load probes, and
// the backfill pacer reuses the same machinery — fed by its own request
// completions — to time out low-priority work without guessing deadlines.
package server

import (
	"sync"
	"time"
)

// RTT estimator defaults. The gains are the classic 1/8 (srtt) and 1/4
// (rttvar); the RTO is srtt + 4*rttvar clamped into [min, max].
const (
	// DefaultRTOMin keeps the timeout from collapsing below scheduler
	// jitter on loopback-fast paths.
	DefaultRTOMin = 20 * time.Millisecond
	// DefaultRTOMax bounds the exponential backoff.
	DefaultRTOMax = 10 * time.Second
	// initialRTO is used before the first sample (RFC 6298 §2.1 says 1s).
	initialRTO = time.Second
)

// RTTStat is a point-in-time view of an estimator.
type RTTStat struct {
	SRTT    time.Duration // smoothed round-trip EWMA
	RTTVar  time.Duration // smoothed mean deviation
	RTO     time.Duration // current timeout, backoff included
	Samples int64         // successful round trips observed
}

// RTTEstimator tracks one peer's round-trip time. Safe for concurrent use.
// The zero value is usable and uses the default RTO bounds.
type RTTEstimator struct {
	mu       sync.Mutex
	srtt     time.Duration
	rttvar   time.Duration
	rto      time.Duration
	samples  int64
	min, max time.Duration
}

// NewRTTEstimator builds an estimator with explicit RTO clamps; zero picks
// the defaults.
func NewRTTEstimator(min, max time.Duration) *RTTEstimator {
	return &RTTEstimator{min: min, max: max}
}

func (e *RTTEstimator) bounds() (time.Duration, time.Duration) {
	min, max := e.min, e.max
	if min <= 0 {
		min = DefaultRTOMin
	}
	if max <= 0 {
		max = DefaultRTOMax
	}
	return min, max
}

func (e *RTTEstimator) clampLocked(d time.Duration) time.Duration {
	min, max := e.bounds()
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// Observe folds one successful round trip into the estimate and resets any
// backoff: a fresh sample is proof the peer answers at this pace.
func (e *RTTEstimator) Observe(sample time.Duration) {
	if sample < 0 {
		sample = 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		dev := e.srtt - sample
		if dev < 0 {
			dev = -dev
		}
		e.rttvar = (3*e.rttvar + dev) / 4
		e.srtt = (7*e.srtt + sample) / 8
	}
	e.samples++
	e.rto = e.clampLocked(e.srtt + 4*e.rttvar)
}

// Backoff doubles the timeout (clamped to the max) after a loss or expiry,
// so repeated failures probe the peer ever more gently.
func (e *RTTEstimator) Backoff() {
	e.mu.Lock()
	defer e.mu.Unlock()
	rto := e.rto
	if rto <= 0 {
		rto = initialRTO
	}
	e.rto = e.clampLocked(2 * rto)
}

// RTO returns the current timeout: the Jacobson formula after samples, the
// conventional 1 second before any (clamped either way).
func (e *RTTEstimator) RTO() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rto <= 0 {
		return e.clampLocked(initialRTO)
	}
	return e.rto
}

// Stat snapshots the estimator.
func (e *RTTEstimator) Stat() RTTStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	rto := e.rto
	if rto <= 0 {
		rto = e.clampLocked(initialRTO)
	}
	return RTTStat{SRTT: e.srtt, RTTVar: e.rttvar, RTO: rto, Samples: e.samples}
}
