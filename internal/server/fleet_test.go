package server_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"lepton/internal/chunk"
	"lepton/internal/server"
	"lepton/internal/store"
)

// --- in-process multi-node harness ---------------------------------------
//
// startTestFleet spins N real blockservers on loopback TCP, each with its
// own chunk store, and hands back kill/restart controls. kill() is the
// fault injector: it RSTs every accepted connection (SetLinger(0) before
// Close turns the teardown abortive, the genuine "machine died" signal)
// and closes the listener, exactly the failure the router must survive.

// connTracker records the connections a listener accepts so kill() can
// abort them mid-request.
type connTracker struct {
	net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func (ct *connTracker) Accept() (net.Conn, error) {
	c, err := ct.Listener.Accept()
	if err != nil {
		return nil, err
	}
	ct.mu.Lock()
	ct.conns[c] = struct{}{}
	ct.mu.Unlock()
	return c, nil
}

// abortAll RSTs every accepted connection: linger 0 discards unsent data
// and sends a reset instead of a FIN.
func (ct *connTracker) abortAll() {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for c := range ct.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = c.Close()
	}
}

// testNode is one fleet member under test control.
type testNode struct {
	addr string // "tcp:127.0.0.1:<port>", stable across restarts
	st   *store.Store
	// dataDir, when set, marks a disk-backed node: kill() closes the
	// store's backend with the node, and restart() reopens the same
	// directory — a machine rebooting against its disk.
	dataDir      string
	syncInterval time.Duration
	mu           sync.Mutex
	b            *server.Blockserver
	tr           *connTracker
	alive        bool
}

func (n *testNode) snapshot() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.b.StatsSnapshot()
}

// kill hard-stops the node: in-flight connections are RST, the listener
// closes, running conversions are cancelled.
func (n *testNode) kill() {
	n.mu.Lock()
	b, tr := n.b, n.tr
	n.alive = false
	n.mu.Unlock()
	tr.abortAll()
	_ = b.Close()
	if n.dataDir != "" {
		// The process dies, the disk stays: requests racing the kill see
		// the backend closed and fail, exactly like a crashing machine's.
		_ = n.st.Close()
	}
}

// restart brings the node back on the same address with the same store —
// a machine rebooting with its disk intact. A disk-backed node reopens its
// data dir, replaying the segment logs into a fresh index.
func (n *testNode) restart(t *testing.T) {
	t.Helper()
	if n.dataDir != "" {
		n.st = newDiskNodeStore(t, n.dataDir, n.syncInterval)
	}
	ln, err := net.Listen("tcp", trimScheme(n.addr))
	if err != nil {
		t.Fatalf("restart %s: %v", n.addr, err)
	}
	n.start(ln)
}

func (n *testNode) start(ln net.Listener) {
	tr := &connTracker{Listener: ln, conns: map[net.Conn]struct{}{}}
	b := &server.Blockserver{Store: n.st, MaxConcurrent: 4}
	n.mu.Lock()
	n.b = b
	n.tr = tr
	n.alive = true
	n.mu.Unlock()
	go func() { _ = b.Serve(tr) }()
}

func trimScheme(addr string) string { return addr[len("tcp:"):] }

// startTestFleet starts n blockservers on loopback, each with a 32-KiB
// chunk store, and registers cleanup.
func startTestFleet(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		st := store.New()
		st.ChunkSize = 32 << 10
		nd := &testNode{addr: "tcp:" + ln.Addr().String(), st: st}
		nd.start(ln)
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.mu.Lock()
			b, alive := nd.b, nd.alive
			nd.mu.Unlock()
			if alive {
				_ = b.Close()
			}
		}
	})
	return nodes
}

func fleetAddrs(nodes []*testNode) []string {
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.addr
	}
	return addrs
}

// newTestFleet builds a router over the harness nodes with probing and
// health tuned for loopback tests.
func newTestFleet(t *testing.T, nodes []*testNode, opts *server.FleetOptions) *server.Fleet {
	t.Helper()
	if opts == nil {
		opts = &server.FleetOptions{}
	}
	if opts.ProbeTimeout == 0 {
		opts.ProbeTimeout = 500 * time.Millisecond
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 25 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	opts.Logf = t.Logf
	f, err := server.NewFleet(fleetAddrs(nodes), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

// fleetCorpus is a small Figure-2-style corpus: a spread of synthetic
// baseline JPEGs across sizes, shared by the fleet tests.
func fleetCorpus(t *testing.T, n int) [][]byte {
	t.Helper()
	corpus := make([][]byte, n)
	for i := range corpus {
		corpus[i] = gen(t, int64(700+i), 96+16*(i%4), 72+12*(i%3))
	}
	return corpus
}

// --- e2e: concurrent roundtrips spread across live nodes ------------------

// TestFleetConcurrentRoundtrips pushes 64 concurrent compress+decompress
// roundtrips from the corpus through a 4-node fleet: every roundtrip must
// be byte-identical, and StatsSnapshot must show the work spread across
// every node.
func TestFleetConcurrentRoundtrips(t *testing.T) {
	nodes := startTestFleet(t, 4)
	f := newTestFleet(t, nodes, nil)
	corpus := fleetCorpus(t, 6)

	const workers = 64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := corpus[i%len(corpus)]
			ctx := context.Background()
			comp, err := f.Compress(ctx, data)
			if err != nil {
				errs <- fmt.Errorf("worker %d compress: %w", i, err)
				return
			}
			back, err := f.Decompress(ctx, comp)
			if err != nil {
				errs <- fmt.Errorf("worker %d decompress: %w", i, err)
				return
			}
			if !bytes.Equal(back, data) {
				errs <- fmt.Errorf("worker %d: roundtrip not byte-identical", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var total int64
	for i, nd := range nodes {
		snap := nd.snapshot()
		work := snap["compresses"] + snap["decompresses"]
		if work == 0 {
			t.Errorf("node %d saw no conversions; load did not spread: %v", i, snap)
		}
		total += work
	}
	if total < 2*workers {
		t.Fatalf("fleet served %d conversions, want >= %d", total, 2*workers)
	}
	snap := f.StatsSnapshot()
	if snap["requests"] < 2*workers {
		t.Fatalf("router snapshot undercounts requests: %v", snap)
	}
	// Under -race-grade CPU saturation the health loop may transiently
	// mark a slow-to-probe node down; once the load drains, every node
	// must converge back to healthy.
	waitFor(t, 10*time.Second, func() bool {
		s := f.StatsSnapshot()
		return s["nodes_up"] == 4 && s["nodes_down"] == 0
	}, "all nodes healthy after the load drains")
}

// --- fault injection: node killed mid-traffic -----------------------------

// TestFleetSurvivesNodeKillMidTraffic is the acceptance test: a 4-node
// fleet serving 64 concurrent workers has one node hard-killed (listener
// closed, in-flight connections RST) mid-traffic. Every roundtrip must
// still succeed byte-identically — the router retries transport failures
// on surviving nodes — and the dead node must be evicted.
func TestFleetSurvivesNodeKillMidTraffic(t *testing.T) {
	nodes := startTestFleet(t, 4)
	f := newTestFleet(t, nodes, nil)
	corpus := fleetCorpus(t, 6)

	const workers = 64
	const roundsPerWorker = 3
	var started sync.WaitGroup
	started.Add(workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers*roundsPerWorker)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			first := true
			for r := 0; r < roundsPerWorker; r++ {
				data := corpus[(i+r)%len(corpus)]
				ctx := context.Background()
				comp, err := f.Compress(ctx, data)
				if first {
					// Signal after the first request is in flight so the
					// kill lands mid-traffic.
					started.Done()
					first = false
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d compress: %w", i, r, err)
					return
				}
				back, err := f.Decompress(ctx, comp)
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d decompress: %w", i, r, err)
					return
				}
				if !bytes.Equal(back, data) {
					errs <- fmt.Errorf("worker %d round %d: corrupted roundtrip", i, r)
					return
				}
			}
		}(i)
	}

	// Kill node 2 once every worker has traffic in flight.
	started.Wait()
	nodes[2].kill()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	waitFor(t, 10*time.Second, func() bool { return f.NodeDown(nodes[2].addr) },
		"dead node to be evicted")
	snap := f.StatsSnapshot()
	if snap["evictions"] == 0 {
		t.Fatalf("no eviction recorded after node kill: %v", snap)
	}
	if snap["nodes_down"] == 0 {
		t.Fatalf("killed node still reported up: %v", snap)
	}
	// The survivors carried the load.
	var surviving int64
	for i, nd := range nodes {
		if i == 2 {
			continue
		}
		s := nd.snapshot()
		surviving += s["compresses"] + s["decompresses"]
	}
	if surviving == 0 {
		t.Fatal("surviving nodes served nothing")
	}
}

// TestFleetNodeRejoinsAfterRestart kills a node, waits for eviction, brings
// it back on the same address, and requires the health loop to re-admit it
// and the router to send it traffic again.
func TestFleetNodeRejoinsAfterRestart(t *testing.T) {
	nodes := startTestFleet(t, 3)
	f := newTestFleet(t, nodes, nil)
	data := gen(t, 720, 128, 96)

	// Prove the fleet serves, then kill node 0.
	if _, err := f.Compress(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	nodes[0].kill()
	waitFor(t, 10*time.Second, func() bool { return f.NodeDown(nodes[0].addr) },
		"killed node to be evicted")

	// The fleet still serves while degraded.
	comp, err := f.Compress(context.Background(), data)
	if err != nil {
		t.Fatalf("compress while degraded: %v", err)
	}

	// Restart on the same address; the health loop must re-admit it.
	nodes[0].restart(t)
	waitFor(t, 10*time.Second, func() bool { return !f.NodeDown(nodes[0].addr) },
		"restarted node to be readmitted")
	if f.StatsSnapshot()["readmissions"] == 0 {
		t.Fatal("no readmission recorded")
	}

	// Drive enough traffic that the rejoined node sees some of it.
	before := nodes[0].snapshot()["compresses"] + nodes[0].snapshot()["decompresses"]
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			back, err := f.Decompress(context.Background(), comp)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(back, data) {
				errs <- fmt.Errorf("roundtrip mismatch after rejoin")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	after := nodes[0].snapshot()["compresses"] + nodes[0].snapshot()["decompresses"]
	if after == before {
		t.Fatal("rejoined node received no traffic")
	}
}

// --- hedging --------------------------------------------------------------

// stubServer speaks the blockserver protocol with canned behavior: OpLoad
// answers immediately with a fixed load, every other op echoes its payload
// after a configurable delay. It lets the hedge test steer the router
// deterministically: the "attractive" node (load 0) is slow to serve, the
// "busy-looking" node (higher load) is fast.
type stubServer struct {
	load  uint32
	delay time.Duration
}

func startStubServer(t *testing.T, load uint32, delay time.Duration) (string, *stubServer) {
	t.Helper()
	s := &stubServer{load: load, delay: delay}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return "tcp:" + ln.Addr().String(), s
}

func (s *stubServer) serve(conn net.Conn) {
	defer conn.Close()
	for {
		op, payload, err := server.ReadRequest(conn)
		if err != nil {
			return
		}
		if op == server.OpLoad {
			var resp [4]byte
			binary.LittleEndian.PutUint32(resp[:], s.load)
			if server.WriteResponse(conn, server.StatusOK, resp[:]) != nil {
				return
			}
			continue
		}
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		if err := server.WriteResponse(conn, server.StatusOK, payload); err != nil {
			return
		}
	}
}

// TestFleetHedgesSlowNode routes through two stub nodes: the slow one
// advertises zero load (so power-of-two choices always picks it as the
// primary) and the fast one advertises a higher load. With HedgeAfter well
// under the slow node's delay, the hedged copy must win and the request
// must complete far sooner than the slow node would allow.
func TestFleetHedgesSlowNode(t *testing.T) {
	slowAddr, _ := startStubServer(t, 0, 3*time.Second)
	fastAddr, _ := startStubServer(t, 5, 0)

	f, err := server.NewFleet([]string{slowAddr, fastAddr}, &server.FleetOptions{
		ProbeTimeout:   500 * time.Millisecond,
		HedgeAfter:     50 * time.Millisecond,
		HealthInterval: -1, // probes via pick only; keep the test deterministic
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	payload := []byte("hedge-me")
	start := time.Now()
	resp, err := f.Do(context.Background(), server.OpCompress, payload)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Fatal("stub echo mismatch")
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("request took %v; hedge did not rescue it", elapsed)
	}
	snap := f.StatsSnapshot()
	if snap["hedged"] == 0 || snap["hedge_wins"] == 0 {
		t.Fatalf("hedging not recorded: %v", snap)
	}
}

// TestFleetRemoteErrorNotRetried: an application-level StatusError must be
// returned to the caller without burning retries on other nodes — the
// rejection is deterministic.
func TestFleetRemoteErrorNotRetried(t *testing.T) {
	nodes := startTestFleet(t, 3)
	f := newTestFleet(t, nodes, nil)
	// Garbage decompress payload: every node would reject it identically.
	_, err := f.Decompress(context.Background(), []byte("junk"))
	if err == nil {
		t.Fatal("garbage decompress succeeded")
	}
	if got := f.StatsSnapshot()["retries"]; got != 0 {
		t.Fatalf("deterministic rejection consumed %d retries", got)
	}
	// The fleet remains fully healthy — no eviction for an app error.
	if got := f.StatsSnapshot()["evictions"]; got != 0 {
		t.Fatalf("remote error evicted a node: %d evictions", got)
	}
}

// --- distributed chunk store over a real fleet ----------------------------

// TestRemoteStoreOverFleet is the distributed-store acceptance test: files
// chunked and replicated across a live 3-node fleet survive a node kill
// byte-identically, and chunks written while a node was down are
// read-repaired onto it after it rejoins.
func TestRemoteStoreOverFleet(t *testing.T) {
	nodes := startTestFleet(t, 3)
	f := newTestFleet(t, nodes, nil)
	r, err := store.NewRemote(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.ChunkSize = 8 << 10

	data := gen(t, 730, 512, 384) // several 8-KiB chunks
	ref, err := r.PutFile(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Chunks) < 2 {
		t.Fatalf("file produced %d chunks; want a multi-chunk file", len(ref.Chunks))
	}
	back, err := r.GetFile(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("distributed file round trip mismatch")
	}

	// Kill one node: every chunk still has a replica elsewhere (R=2 of 3),
	// so the file must remain retrievable, byte-identical.
	nodes[1].kill()
	waitFor(t, 10*time.Second, func() bool { return f.NodeDown(nodes[1].addr) },
		"killed node to be evicted")
	back, err = r.GetFile(context.Background(), ref)
	if err != nil {
		t.Fatalf("get with one node down: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("degraded read not byte-identical")
	}

	// Bring the first casualty back before the read-repair phase.
	nodes[1].restart(t)
	waitFor(t, 10*time.Second, func() bool { return !f.NodeDown(nodes[1].addr) },
		"restarted node to be readmitted")

	// Read-repair, deterministically: compress the second file client-side
	// first (chunk output is byte-identical to what PutFile will produce),
	// find which node is the *first* replica of its first chunk, and kill
	// exactly that node before the put. After it rejoins, the first read of
	// that chunk must miss on it, serve from the second replica, and write
	// the chunk back.
	data2 := gen(t, 731, 384, 288)
	pre, err := chunk.CompressCtx(context.Background(), data2,
		chunk.Options{ChunkSize: r.ChunkSize, VerifyRoundtrip: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := r.Placement(sha256.Sum256(pre[0]))[0]
	var vnode *testNode
	for _, nd := range nodes {
		if nd.addr == victim {
			vnode = nd
		}
	}
	vnode.kill()
	waitFor(t, 10*time.Second, func() bool { return f.NodeDown(victim) },
		"victim node to be evicted")
	ref2, err := r.PutFile(context.Background(), data2)
	if err != nil {
		t.Fatalf("put while degraded: %v", err)
	}
	vnode.restart(t)
	waitFor(t, 10*time.Second, func() bool { return !f.NodeDown(victim) },
		"victim node to be readmitted")
	back2, err := r.GetFile(context.Background(), ref2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back2, data2) {
		t.Fatal("post-rejoin read mismatch")
	}
	if c := r.Counters(); c.ReadRepairs == 0 {
		t.Fatalf("first-replica miss did not read-repair: %+v", c)
	}
	// And the repaired replica really holds the chunk now: ask it directly.
	cb, err := f.GetCompressed(context.Background(), victim, ref2.Chunks[0])
	if err != nil {
		t.Fatalf("repaired node does not hold the chunk: %v", err)
	}
	if sha256.Sum256(cb) != ref2.Chunks[0] {
		t.Fatal("repaired replica holds wrong bytes")
	}
}

// TestFleetRetriesNodeLocalTimeouts: a node whose per-request timeout
// kills every conversion answers compressions in-band with StatusRetry —
// a node-local decline, not a verdict on the payload — and the router must
// retry those on the healthy nodes with zero client-visible failures and
// without evicting the declining node (its connection never failed).
// Compress-only traffic first, because a *decompress* that times out
// mid-stream cannot be declined in-band (the response header already went
// out): the server tears the connection down, which rightly looks like a
// transport failure and may evict — exercised in the second phase, where
// the roundtrips must still all succeed.
func TestFleetRetriesNodeLocalTimeouts(t *testing.T) {
	flaky := &server.Blockserver{RequestTimeout: time.Millisecond}
	flakyAddr := startServer(t, "tcp:127.0.0.1:0", flaky)
	healthy := startTestFleet(t, 2)

	f, err := server.NewFleet(append([]string{flakyAddr}, fleetAddrs(healthy)...),
		&server.FleetOptions{ProbeTimeout: 500 * time.Millisecond, HealthInterval: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	data := gen(t, 760, 128, 96)
	var comps [][]byte
	for i := 0; i < 12; i++ {
		comp, err := f.Compress(context.Background(), data)
		if err != nil {
			t.Fatalf("compress %d through a fleet with one timing-out node: %v", i, err)
		}
		comps = append(comps, comp)
	}
	snap := f.StatsSnapshot()
	if flaky.Stats.Cancelled.Load() > 0 && snap["retries"] == 0 {
		t.Fatalf("flaky node declined conversions but nothing was retried: %v", snap)
	}
	if snap["evictions"] != 0 {
		t.Fatalf("in-band compress declines evicted a node: %v", snap)
	}
	for i, comp := range comps {
		back, err := f.Decompress(context.Background(), comp)
		if err != nil {
			t.Fatalf("decompress %d: %v", i, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("roundtrip %d mismatch", i)
		}
	}
}

// TestFleetGetCompressedMissClassification: only the server's "unknown
// chunk" answer is a read-repairable miss; a node rejecting store ops
// outright (no -store) must not be classified as missing the chunk, or
// every read would flood it with futile repair writes.
func TestFleetGetCompressedMissClassification(t *testing.T) {
	withStore := startTestFleet(t, 1)[0]
	noStore := &server.Blockserver{} // no Store configured
	noStoreAddr := startServer(t, "tcp:127.0.0.1:0", noStore)

	f, err := server.NewFleet([]string{withStore.addr, noStoreAddr}, &server.FleetOptions{
		ProbeTimeout: 500 * time.Millisecond, HealthInterval: -1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var h store.Hash
	h[0] = 0xAB
	_, err = f.GetCompressed(context.Background(), withStore.addr, h)
	if !errors.Is(err, store.ErrRemoteMiss) {
		t.Fatalf("unknown chunk on a store node: err = %v, want ErrRemoteMiss", err)
	}
	_, err = f.GetCompressed(context.Background(), noStoreAddr, h)
	if err == nil || errors.Is(err, store.ErrRemoteMiss) {
		t.Fatalf("store-less node classified as a miss: %v", err)
	}
}

// TestFleetStoreConcurrentClients drives the distributed store from many
// goroutines at once — puts and gets interleaved — as the race job's
// workout for the placement, pooling, and repair paths.
func TestFleetStoreConcurrentClients(t *testing.T) {
	nodes := startTestFleet(t, 3)
	f := newTestFleet(t, nodes, nil)
	r, err := store.NewRemote(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.ChunkSize = 32 << 10

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := gen(t, int64(740+i), 160+16*(i%3), 120)
			ref, err := r.PutFile(context.Background(), data)
			if err != nil {
				errs <- fmt.Errorf("worker %d put: %w", i, err)
				return
			}
			for k := 0; k < 3; k++ {
				back, err := r.GetFile(context.Background(), ref)
				if err != nil {
					errs <- fmt.Errorf("worker %d get %d: %w", i, k, err)
					return
				}
				if !bytes.Equal(back, data) {
					errs <- fmt.Errorf("worker %d get %d: mismatch", i, k)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// --- PeerPool probe accounting (the serve-path selection fix) -------------

// TestPeerPoolCountsProbeFailures: with one dead peer, Target must still
// pick the live one, count the failed probe, and the owning blockserver's
// StatsSnapshot must surface the count.
func TestPeerPoolCountsProbeFailures(t *testing.T) {
	live := fakeLoadPeer(t, 0)
	// A dead address: listen, grab the port, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "tcp:" + ln.Addr().String()
	_ = ln.Close()

	pool := server.NewPeerPool([]string{live, dead}, 3)
	pool.ProbeTimeout = 500 * time.Millisecond
	pickedLive := false
	for i := 0; i < 20; i++ {
		addr, ok := pool.Target()
		if !ok {
			// The rng drew the dead peer twice and its probe failed —
			// correctly reported as "no target" rather than a dead pick.
			continue
		}
		if addr == dead {
			t.Fatal("selected the dead peer")
		}
		if addr == live {
			pickedLive = true
		}
	}
	if !pickedLive {
		t.Fatal("never picked the live peer")
	}
	if pool.ProbeFailures() == 0 {
		t.Fatal("dead-peer probes not counted")
	}

	b := &server.Blockserver{Outsource: pool}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	if _, err := server.Do(addr, server.OpLoad, nil, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	snap := b.StatsSnapshot()
	if snap["probe_failures"] == 0 {
		t.Fatalf("snapshot missing probe failures: %v", snap)
	}
}

// TestPeerPoolSelectionLatencyBoundedByOneTimeout: both candidate probes
// share one context, so a selection against two dead peers costs one probe
// timeout, not two — the serve-path stall this PR removes.
func TestPeerPoolSelectionLatencyBoundedByOneTimeout(t *testing.T) {
	// Two black-hole peers: listeners that accept and never respond, so the
	// probes genuinely wait out the shared timeout.
	blackhole := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ln.Close() })
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				defer c.Close()
			}
		}()
		return "tcp:" + ln.Addr().String()
	}
	a, b := blackhole(), blackhole()
	pool := server.NewPeerPool([]string{a, b}, 9)
	pool.ProbeTimeout = 300 * time.Millisecond
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, ok := pool.TargetCtx(context.Background()); ok {
			t.Fatal("black-hole peer selected")
		}
	}
	elapsed := time.Since(start)
	// Three selections, each bounded by ~one 300ms shared timeout; the old
	// sequential-1s-per-peer path would take 6s here.
	if elapsed > 2*time.Second {
		t.Fatalf("3 selections against dead peers took %v; probes not sharing one timeout", elapsed)
	}
}
