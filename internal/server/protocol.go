// Package server implements the blockserver network service of paper §5.5:
// Lepton listens on a Unix-domain socket or TCP and speaks a simple
// length-prefixed stream protocol; overloaded blockservers "outsource"
// conversions over TCP to other machines chosen by the power of two random
// choices.
//
// Connections are persistent: because every request and response is length
// framed, a client may issue any number of sequential requests on one
// connection (see Client). The original one-shot exchange — request
// written, write side shut down, response read back, as the deployed
// system did — remains fully supported: the server simply sees EOF on the
// next read and closes its side.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Operation codes.
const (
	OpCompress   = byte('C')
	OpDecompress = byte('D')
	OpLoad       = byte('L') // load probe for power-of-two choices

	// Store-backed operations (require Blockserver.Store). The pair of
	// chunk paths implements both deployment modes: server-side codec
	// (client moves raw bytes) and client-side codec (client moves
	// compressed bytes — the §7 bandwidth saving).
	OpPutChunkRaw        = byte('P') // body: raw chunk -> server compresses, returns 32-byte hash
	OpPutChunkCompressed = byte('U') // body: Lepton chunk -> server verifies+stores, returns hash
	OpGetChunkRaw        = byte('G') // body: hash -> server decompresses, returns raw bytes
	OpGetChunkCompressed = byte('H') // body: hash -> returns stored compressed bytes

	// OpListChunks is the ranged scan behind warm restart and anti-entropy:
	// body is a 32-byte exclusive-start hash plus a 4-byte LE page limit;
	// the response is the node's stored hashes greater than the cursor, in
	// ascending order, concatenated 32 bytes each. An empty response means
	// the scan is complete. Paging keeps each response under maxPayload no
	// matter how many chunks a disk holds.
	OpListChunks = byte('S')

	// OpGetRange serves a byte range of one chunk's reconstruction without
	// decoding the whole chunk: body is a 32-byte hash, an 8-byte LE byte
	// offset, and a 4-byte LE length; the response is exactly the requested
	// slice of the raw bytes (clamped at the chunk's reconstructed size, so
	// a range past the end returns an empty body, like an HTTP suffix read).
	// Indexed containers decode only the arithmetic segments the range
	// touches; legacy containers fall back to a full decode server-side.
	OpGetRange = byte('R')
)

// getRangeReqLen is the fixed OpGetRange body: hash + u64 offset + u32 len.
const getRangeReqLen = 32 + 8 + 4

// encodeGetRange builds an OpGetRange request body, rejecting bounds the
// protocol cannot carry (negative, or a length no response frame can hold)
// before any bytes go on the wire.
func encodeGetRange(h [32]byte, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("server: negative range off=%d n=%d", off, n)
	}
	if n > maxPayload {
		return nil, fmt.Errorf("server: range of %d bytes exceeds the %d-byte response limit", n, maxPayload)
	}
	req := make([]byte, getRangeReqLen)
	copy(req, h[:])
	binary.LittleEndian.PutUint64(req[32:], uint64(off))
	binary.LittleEndian.PutUint32(req[40:], uint32(n))
	return req, nil
}

// ListChunksPageMax caps an OpListChunks page: the largest hash count
// whose response still fits a frame, rounded down to a tidy number.
const ListChunksPageMax = (maxPayload / 32) / 2

// Response status codes. StatusError marks a deterministic rejection (the
// same payload would be rejected by any node); StatusRetry marks a
// node-local decline — a per-request timeout, a drain force-cancel, a
// cancelled queue wait — where the identical request may well succeed on
// another node, so routed clients retry those elsewhere; StatusNotFound
// marks a store read for a chunk this node does not hold, the signal
// replicated readers key read-repair on (a status byte, not error prose,
// so mixed-version fleets mid-rollout cannot misclassify it).
const (
	StatusOK       = byte(0)
	StatusError    = byte(1)
	StatusRetry    = byte(2)
	StatusNotFound = byte(3)
)

// maxPayload bounds a request body (a chunk plus slack).
const maxPayload = 8 << 20

// ErrPayloadTooLarge marks a request body over the protocol limit: a
// deterministic refusal that indicts the payload, not the node — batch
// callers (the backfill engine) quarantine the file instead of retrying.
var ErrPayloadTooLarge = errors.New("server: request exceeds the protocol payload limit")

// checkPayloadSize rejects a request body the server would refuse for
// size before any bytes go on the wire. The server's refusal is a
// connection teardown (ReadRequest cannot answer in-band without draining
// the oversized body), which routed clients would misread as a node
// failure — one over-limit JPEG must not evict the fleet node by node.
func checkPayloadSize(payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: %d bytes > %d", ErrPayloadTooLarge, len(payload), maxPayload)
	}
	return nil
}

// WriteFrame sends op+payload, leaving the write side open so further
// requests can follow on the same connection. Header and payload go out in
// one vectored write (a single writev syscall on TCP and Unix sockets, and
// a single TCP segment for small frames — the header no longer rides
// alone).
func WriteFrame(conn net.Conn, op byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if len(payload) == 0 {
		_, err := conn.Write(hdr[:])
		return err
	}
	bufs := net.Buffers{hdr[:], payload}
	_, err := bufs.WriteTo(conn)
	return err
}

// WriteRequest sends op+payload and half-closes the write side, signaling
// end of request exactly as the production protocol did ("the file is
// complete once the socket is shut down for writing"). Persistent clients
// use WriteFrame instead.
func WriteRequest(conn net.Conn, op byte, payload []byte) error {
	if err := WriteFrame(conn, op, payload); err != nil {
		return err
	}
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := conn.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return nil
}

// ReadRequest reads one request from a connection (any io.Reader over the
// framed stream).
func ReadRequest(conn io.Reader) (op byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("server: request of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// WriteResponse sends status+payload as one vectored write (see
// WriteFrame).
func WriteResponse(conn net.Conn, status byte, payload []byte) error {
	if len(payload) == 0 {
		return WriteResponseHeader(conn, status, 0)
	}
	var hdr [5]byte
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	bufs := net.Buffers{hdr[:], payload}
	_, err := bufs.WriteTo(conn)
	return err
}

// WriteResponseHeader sends only the status+length header; exactly n body
// bytes must follow. Servers use it to stream a decode into the connection
// as segments complete instead of buffering the whole reconstruction.
func WriteResponseHeader(conn net.Conn, status byte, n uint32) error {
	var hdr [5]byte
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:], n)
	_, err := conn.Write(hdr[:])
	return err
}

// StreamBodyError marks a response that died after its header arrived:
// the peer was alive enough to frame a response, so the failure is
// request-scoped — a mid-stream decode abort (the server's only way to
// signal a shortfall on an already-framed response is tearing the
// connection down) or a payload that fails the same way everywhere.
// Routed clients retry elsewhere but do not evict the node for it.
type StreamBodyError struct{ Err error }

func (e *StreamBodyError) Error() string { return "server: response died mid-body: " + e.Err.Error() }
func (e *StreamBodyError) Unwrap() error { return e.Err }

// ReadResponse reads a response.
func ReadResponse(conn net.Conn) (status byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("server: response of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return 0, nil, &StreamBodyError{Err: err}
	}
	return hdr[0], payload, nil
}

// Do performs one request against addr ("unix:/path" or "tcp:host:port")
// with a deadline.
func Do(addr string, op byte, payload []byte, timeout time.Duration) ([]byte, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return DoCtx(ctx, addr, op, payload)
}

// DoCtx performs one one-shot request under a context: the dial, request
// write, and response read are all abandoned when ctx is cancelled or its
// deadline passes, and the error is ctx.Err().
func DoCtx(ctx context.Context, addr string, op byte, payload []byte) ([]byte, error) {
	if err := checkPayloadSize(payload); err != nil {
		return nil, err
	}
	network, address, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, address)
	if err != nil {
		return nil, ctxOr(ctx, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	stop := watchCtx(ctx, conn)
	defer stop()
	if err := WriteRequest(conn, op, payload); err != nil {
		return nil, ctxOr(ctx, err)
	}
	status, resp, err := ReadResponse(conn)
	if err != nil {
		return nil, ctxOr(ctx, err)
	}
	if status != StatusOK {
		return nil, &RemoteError{Msg: string(resp), Transient: status == StatusRetry, NotFound: status == StatusNotFound}
	}
	return resp, nil
}

// watchCtx interrupts conn's blocking I/O when ctx is cancelled by moving
// its deadline into the past; the returned stop func releases the watcher.
// A ctx that can never be cancelled costs nothing.
func watchCtx(ctx context.Context, conn net.Conn) (stop func()) {
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	go func() {
		select {
		case <-done:
			_ = conn.SetDeadline(time.Now().Add(-time.Second))
		case <-stopCh:
		}
	}()
	return func() { close(stopCh) }
}

// ctxOr prefers the context's error over the I/O error it caused.
func ctxOr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

func splitAddr(addr string) (network, address string, err error) {
	switch {
	case len(addr) > 5 && addr[:5] == "unix:":
		return "unix", addr[5:], nil
	case len(addr) > 4 && addr[:4] == "tcp:":
		return "tcp", addr[4:], nil
	default:
		return "", "", errors.New("server: address must be unix:<path> or tcp:<host:port>")
	}
}
