package server_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"lepton/internal/server"
)

// TestConnectionShardAffinity: a connection's serial requests all run on
// the shard it was pinned to at accept — with every worker idle there is
// never a reason to steal.
func TestConnectionShardAffinity(t *testing.T) {
	b := &server.Blockserver{Shards: 2}
	addr := startServer(t, "tcp:127.0.0.1:0", b)

	data := gen(t, 7, 128, 96)
	for i := 0; i < 3; i++ {
		if _, err := server.Do(addr, server.OpCompress, data, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	snap := b.StatsSnapshot()
	// Each Do dials a fresh connection; round-robin affinity alternates
	// shards 0,1,0, and idle-worker wakeups honor the pinning.
	if snap["shard0_done"] != 2 || snap["shard1_done"] != 1 {
		t.Fatalf("shard done counts %d/%d, want 2/1 (snap %v)",
			snap["shard0_done"], snap["shard1_done"], snap)
	}
	if snap["shard0_steals"] != 0 || snap["shard1_steals"] != 0 {
		t.Fatalf("unexpected steals: %v", snap)
	}
}

// TestShardedDrainWithQueue: with one shard and several concurrent
// requests, the backlog queues on the shard; a graceful Shutdown must let
// queued and running conversions alike finish with OK responses.
func TestShardedDrainWithQueue(t *testing.T) {
	b := &server.Blockserver{Shards: 1}
	addr := startServer(t, "tcp:127.0.0.1:0", b)

	data := gen(t, 8, 512, 384)
	const n = 4
	results := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = server.Do(addr, server.OpCompress, data, 30*time.Second)
		}(i)
	}
	// Let every request land (three queued behind the single shard), then
	// drain gracefully while they are all still in flight. The image is
	// big enough that the first conversion cannot finish before the last
	// request arrives.
	deadline := time.Now().Add(10 * time.Second)
	for b.InFlight() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests in flight", b.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed across drain: %v", i, errs[i])
		}
		if len(results[i]) == 0 || bytes.Equal(results[i], data) {
			t.Fatalf("request %d returned a non-conversion", i)
		}
	}
	snap := b.StatsSnapshot()
	if snap["shard0_done"] != n {
		t.Fatalf("shard0_done = %d, want %d", snap["shard0_done"], n)
	}
}
