package server

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a persistent connection to a blockserver. Unlike the one-shot
// Do, it issues any number of sequential requests over a single TCP or Unix
// connection, which removes the per-request dial/teardown that dominated
// small-request latency at peak (§5.5's outsourcing overhead). A Client is
// safe for concurrent use; requests are serialized on the connection.
//
// The conversion methods take a context. Cancelling it mid-exchange tears
// the connection down (the stream position is unknown, so a retry could
// read a stale response as its own) and the server, seeing the disconnect,
// cancels the conversion on its side too.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// RemoteError is a failure the server reported in-band: the exchange
// completed and the connection remains usable. Transient distinguishes a
// node-local decline (StatusRetry: per-request timeout, drain
// force-cancel — the same request may succeed on another node, and the
// Fleet retries it there) from a deterministic rejection (StatusError: any
// node would reject the payload identically, so retrying is futile).
// NotFound (StatusNotFound) marks a store read for a chunk the node does
// not hold — deterministic for that node, but the read-repairable signal
// for replicated readers. Transport failures (dial errors, broken
// framing, deadlines) are returned as ordinary errors instead.
type RemoteError struct {
	Msg       string
	Transient bool
	NotFound  bool
}

func (e *RemoteError) Error() string { return "server: remote error: " + e.Msg }

// Dial connects to addr ("unix:<path>" or "tcp:<host:port>").
func Dial(addr string, timeout time.Duration) (*Client, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return DialContext(ctx, addr)
}

// DialContext connects to addr under a context.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	network, address, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, address)
	if err != nil {
		return nil, ctxOr(ctx, err)
	}
	return &Client{conn: conn}, nil
}

// Do performs one request/response exchange on the persistent connection.
// A transport-level failure (broken framing, deadline) closes the
// connection — the stream position is unknown, so a retry could read a
// stale response as its own; subsequent calls report the client closed.
// Remote errors reported with StatusError leave the connection usable.
func (c *Client) Do(op byte, payload []byte, timeout time.Duration) ([]byte, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return c.DoCtx(ctx, op, payload)
}

// DoCtx performs one exchange under a context: cancellation interrupts the
// blocked I/O, tears the connection down, and returns ctx.Err().
func (c *Client) DoCtx(ctx context.Context, op byte, payload []byte) ([]byte, error) {
	if err := checkPayloadSize(payload); err != nil {
		// Refusing client-side beats burning the upload: the server's only
		// answer to an over-limit body is tearing the connection down.
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, fmt.Errorf("server: client is closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	stop := watchCtx(ctx, c.conn)
	defer stop()
	if err := WriteFrame(c.conn, op, payload); err != nil {
		c.teardown()
		return nil, ctxOr(ctx, err)
	}
	status, resp, err := ReadResponse(c.conn)
	if err != nil {
		c.teardown()
		return nil, ctxOr(ctx, err)
	}
	if status != StatusOK {
		return nil, &RemoteError{Msg: string(resp), Transient: status == StatusRetry, NotFound: status == StatusNotFound}
	}
	return resp, nil
}

// Compress asks the server to compress one whole JPEG payload and returns
// the Lepton container (or a raw-mode fallback container for unsupported
// inputs, matching the production service contract).
func (c *Client) Compress(ctx context.Context, data []byte) ([]byte, error) {
	return c.DoCtx(ctx, OpCompress, data)
}

// Decompress asks the server to reconstruct a container's original bytes.
func (c *Client) Decompress(ctx context.Context, comp []byte) ([]byte, error) {
	return c.DoCtx(ctx, OpDecompress, comp)
}

// GetRange asks the server for bytes [off, off+n) of the reconstruction of
// the chunk stored under h, clamped at the chunk's size. The server decodes
// only the arithmetic segments the range touches when the chunk carries a
// seek index; n is capped at what one response frame can carry.
func (c *Client) GetRange(ctx context.Context, h [32]byte, off, n int64) ([]byte, error) {
	req, err := encodeGetRange(h, off, n)
	if err != nil {
		return nil, err
	}
	return c.DoCtx(ctx, OpGetRange, req)
}

// Load probes the server's in-flight conversion count — the power-of-two
// choices signal (§5.5).
func (c *Client) Load(ctx context.Context) (uint32, error) {
	resp, err := c.DoCtx(ctx, OpLoad, nil)
	if err != nil {
		return 0, err
	}
	if len(resp) < 4 {
		return 0, fmt.Errorf("server: short load response (%d bytes)", len(resp))
	}
	return binary.LittleEndian.Uint32(resp), nil
}

// teardown closes and clears the connection; callers hold c.mu.
func (c *Client) teardown() {
	_ = c.conn.Close()
	c.conn = nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
