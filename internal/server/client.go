package server

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a persistent connection to a blockserver. Unlike the one-shot
// Do, it issues any number of sequential requests over a single TCP or Unix
// connection, which removes the per-request dial/teardown that dominated
// small-request latency at peak (§5.5's outsourcing overhead). A Client is
// safe for concurrent use; requests are serialized on the connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to addr ("unix:<path>" or "tcp:<host:port>").
func Dial(addr string, timeout time.Duration) (*Client, error) {
	network, address, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout(network, address, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Do performs one request/response exchange on the persistent connection.
// A transport-level failure (broken framing, deadline) closes the
// connection — the stream position is unknown, so a retry could read a
// stale response as its own; subsequent calls report the client closed.
// Remote errors reported with StatusError leave the connection usable.
func (c *Client) Do(op byte, payload []byte, timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, fmt.Errorf("server: client is closed")
	}
	if timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(timeout))
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	if err := WriteFrame(c.conn, op, payload); err != nil {
		c.teardown()
		return nil, err
	}
	status, resp, err := ReadResponse(c.conn)
	if err != nil {
		c.teardown()
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("server: remote error: %s", resp)
	}
	return resp, nil
}

// teardown closes and clears the connection; callers hold c.mu.
func (c *Client) teardown() {
	_ = c.conn.Close()
	c.conn = nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
