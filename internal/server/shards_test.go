package server

import (
	"context"
	"testing"
	"time"
)

// waitParked blocks until every worker in p is idle on its condition
// variable, so submissions in the tests below are deterministic about
// which worker runs them.
func waitParked(t *testing.T, p *shardPool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		all := true
		for i := range p.shards {
			if !p.shards[i].waiting {
				all = false
			}
		}
		p.mu.Unlock()
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("workers never parked")
		}
		time.Sleep(time.Millisecond)
	}
}

func submitFunc(t *testing.T, p *shardPool, shard int, fn func() bool) *shardJob {
	t.Helper()
	j := &shardJob{kind: jobFunc, fn: fn, shard: shard, done: make(chan struct{}, 1)}
	if err := p.submit(context.Background(), j); err != nil {
		t.Fatalf("submit: %v", err)
	}
	return j
}

// TestShardPoolAffinity: with every worker idle, a job lands on its
// preferred shard's worker — never a steal.
func TestShardPoolAffinity(t *testing.T) {
	p := newShardPool(2)
	defer p.close()
	for round := 0; round < 3; round++ {
		for s := 0; s < 2; s++ {
			waitParked(t, p)
			j := submitFunc(t, p, s, func() bool { return true })
			if !j.ok {
				t.Fatal("job failed")
			}
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for s := 0; s < 2; s++ {
		if p.shards[s].jobs != 3 {
			t.Errorf("shard %d ran %d jobs, want 3", s, p.shards[s].jobs)
		}
		if p.shards[s].steals != 0 {
			t.Errorf("shard %d stole %d jobs, want 0", s, p.shards[s].steals)
		}
	}
}

// TestShardPoolStealing: with shard 0's worker pinned by a running job, a
// job queued for shard 0 is stolen and completed by shard 1's worker.
func TestShardPoolStealing(t *testing.T) {
	p := newShardPool(2)
	defer p.close()
	waitParked(t, p)

	started := make(chan struct{})
	release := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		submitFunc(t, p, 0, func() bool {
			close(started)
			<-release
			return true
		})
	}()
	<-started

	// Worker 0 is pinned; this must complete via worker 1.
	done := make(chan *shardJob, 1)
	go func() {
		done <- submitFunc(t, p, 0, func() bool { return true })
	}()
	select {
	case j := <-done:
		if !j.ok {
			t.Fatal("stolen job failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job queued behind a pinned shard was never stolen")
	}

	close(release)
	<-blockerDone
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.shards[1].steals != 1 {
		t.Errorf("shard 1 steals = %d, want 1", p.shards[1].steals)
	}
	if p.shards[0].jobs != 1 || p.shards[1].jobs != 1 {
		t.Errorf("jobs = %d/%d, want 1/1", p.shards[0].jobs, p.shards[1].jobs)
	}
}

// TestShardPoolCancelWhileQueued: cancelling a submitter whose job is
// still queued withdraws the job; it never runs.
func TestShardPoolCancelWhileQueued(t *testing.T) {
	p := newShardPool(1)
	defer p.close()
	waitParked(t, p)

	release := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		submitFunc(t, p, 0, func() bool { <-release; return true })
	}()
	// Wait for the blocker to be running, then queue a second job behind it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		running := !p.shards[0].waiting && p.shards[0].depth() == 0
		p.mu.Unlock()
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	ran := false
	j := &shardJob{kind: jobFunc, fn: func() bool { ran = true; return true }, shard: 0, done: make(chan struct{}, 1)}
	go func() { errc <- p.submit(ctx, j) }()
	for {
		p.mu.Lock()
		queued := p.shards[0].depth() == 1
		p.mu.Unlock()
		if queued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("submit returned %v, want context.Canceled", err)
	}
	close(release)
	<-blockerDone
	if ran {
		t.Fatal("withdrawn job ran anyway")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if d := p.shards[0].depth(); d != 0 {
		t.Fatalf("queue depth %d after withdrawal, want 0", d)
	}
}

// TestRunOnShardZeroAlloc: steady-state dispatch through the connection's
// embedded job record must not allocate — the job, its completion channel,
// and the queue slots are all reused.
func TestRunOnShardZeroAlloc(t *testing.T) {
	b := &Blockserver{Shards: 1}
	b.init()
	defer b.pool.close()
	sc := &srvConn{affinity: 0}
	sc.job.fn = func() bool { return true }
	ctx := context.Background()
	run := func() {
		ok, err := b.runOnShard(ctx, sc, jobFunc, nil)
		if err != nil || !ok {
			t.Fatalf("runOnShard: ok=%v err=%v", ok, err)
		}
	}
	run() // warm up: allocate the done channel and queue backing
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("shard dispatch allocates %.1f per request, want 0", allocs)
	}
}

// TestShardStatsKeys: the snapshot surfaces per-shard queue depths and
// steal counters alongside the writev batch count.
func TestShardStatsKeys(t *testing.T) {
	b := &Blockserver{Shards: 2}
	b.init()
	defer b.pool.close()
	snap := b.StatsSnapshot()
	if snap["shards"] != 2 {
		t.Fatalf("shards = %d, want 2", snap["shards"])
	}
	for _, k := range []string{"shard0_depth", "shard0_done", "shard0_steals",
		"shard1_depth", "shard1_done", "shard1_steals", "writevs"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %q: %v", k, snap)
		}
	}
}
