package server

import (
	"context"
	"sync"

	"lepton/internal/core"
	"lepton/internal/store"
)

// This file implements the per-core sharded worker pool that replaced the
// shared counting semaphore. Each shard owns one worker goroutine and one
// private core.Codec, and every connection is pinned to a shard
// (round-robin at accept): under steady load a connection's conversions
// always run on the same worker, so the codec's model tables, coefficient
// planes, and scratch buffers stay hot in that core's cache instead of
// migrating through a global sync.Pool. When a shard's worker is busy and
// another is idle, the idle worker steals the queued job — sharding is an
// affinity preference, not a throughput limit.
//
// Dispatch is allocation-free in steady state: the job record lives inside
// the srvConn (the protocol is strictly one request in flight per
// connection), the per-shard queues reuse their backing arrays, and
// completion is signaled by sending on a reusable buffered channel rather
// than closing one.

// jobKind selects the work a shard worker performs; the dispatch switch in
// run keeps the job record closure-free (a closure per request would
// allocate on every dispatch).
type jobKind uint8

const (
	jobFunc jobKind = iota // test hook: runs shardJob.fn
	jobCompress
	jobDecompress
	jobPutRaw
	jobPutCompressed
	jobGetRaw
	jobGetRange
)

// jobState tracks where a job is in its lifecycle, guarded by the pool
// mutex. The queued→running transition decides who owns cancellation: a
// job still queued can be withdrawn by its submitter; once running, the
// submitter must wait for the worker (the conversion itself aborts at its
// next context checkpoint).
type jobState uint8

const (
	jobIdle jobState = iota
	jobQueued
	jobRunning
)

// shardJob is the reusable per-connection work record. One lives inside
// each srvConn; runOnShard fills it, enqueues it, and waits.
type shardJob struct {
	b       *Blockserver
	sc      *srvConn
	kind    jobKind
	ctx     context.Context
	payload []byte
	hash    store.Hash // jobGetRaw/jobGetRange: parsed before submit, on the conn goroutine
	off, n  int64      // jobGetRange bounds, parsed with the hash

	fn func() bool // jobFunc (tests)

	state jobState
	shard int // queue the job waits in while jobQueued
	ok    bool
	done  chan struct{} // buffered(1); completion is a send, never a close
}

// run executes the job on a worker, with the worker's private codec.
func (j *shardJob) run(cd *core.Codec) bool {
	switch j.kind {
	case jobCompress:
		return j.b.compressLocal(j.ctx, cd, j.sc.conn, j.payload)
	case jobDecompress:
		return j.b.decompressLocal(j.ctx, cd, j.sc, j.payload)
	case jobPutRaw:
		return j.b.putRawLocal(j.ctx, j.sc.conn, j.payload)
	case jobPutCompressed:
		return j.b.putCompressedLocal(j.ctx, j.sc.conn, j.payload)
	case jobGetRaw:
		return j.b.getRawLocal(j.ctx, j.sc.conn, j.hash)
	case jobGetRange:
		return j.b.getRangeLocal(j.ctx, cd, j.sc, j.hash, j.off, j.n)
	case jobFunc:
		return j.fn()
	}
	return false
}

// shard is one worker's slice of the pool: a FIFO of queued jobs, the
// worker's private codec, and its counters. The queue is a slice+head ring
// so pops are O(1) and the backing array is reused once drained.
type shard struct {
	q    []*shardJob
	head int

	codec   *core.Codec
	cond    *sync.Cond // this worker's wait point (shares the pool mutex)
	waiting bool       // worker is parked on cond

	jobs   int64 // jobs this worker completed
	steals int64 // of those, jobs taken from another shard's queue
}

func (s *shard) push(j *shardJob) {
	s.q = append(s.q, j)
}

func (s *shard) pop() *shardJob {
	if s.head == len(s.q) {
		return nil
	}
	j := s.q[s.head]
	s.q[s.head] = nil
	s.head++
	if s.head == len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	return j
}

// remove withdraws a still-queued job (submitter cancellation).
func (s *shard) remove(j *shardJob) {
	for i := s.head; i < len(s.q); i++ {
		if s.q[i] == j {
			copy(s.q[i:], s.q[i+1:])
			s.q[len(s.q)-1] = nil
			s.q = s.q[:len(s.q)-1]
			if s.head == len(s.q) {
				s.q = s.q[:0]
				s.head = 0
			}
			return
		}
	}
}

func (s *shard) depth() int { return len(s.q) - s.head }

// shardPool runs one worker goroutine per shard. A single mutex guards
// every queue — the critical sections are a few pointer moves, so
// contention is negligible next to a conversion — but each worker parks on
// its own condition variable, which is what makes affinity deterministic:
// a submitter wakes the home worker when it is idle, and only falls back
// to waking some other idle worker (which will find the job by scanning
// the other queues — a steal) when the home worker is busy.
type shardPool struct {
	mu     sync.Mutex
	shards []shard
	closed bool
	wg     sync.WaitGroup
}

func newShardPool(n int) *shardPool {
	if n < 1 {
		n = 1
	}
	p := &shardPool{shards: make([]shard, n)}
	for i := range p.shards {
		p.shards[i].codec = core.NewCodec()
		p.shards[i].cond = sync.NewCond(&p.mu)
	}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker(i)
	}
	return p
}

// take pops the worker's own queue first, then scans the others in ring
// order. The bool reports whether the job came from the worker's own shard.
func (p *shardPool) take(i int) (*shardJob, bool) {
	if j := p.shards[i].pop(); j != nil {
		return j, true
	}
	n := len(p.shards)
	for k := 1; k < n; k++ {
		if j := p.shards[(i+k)%n].pop(); j != nil {
			return j, false
		}
	}
	return nil, false
}

func (p *shardPool) worker(i int) {
	defer p.wg.Done()
	s := &p.shards[i]
	p.mu.Lock()
	for {
		j, home := p.take(i)
		if j == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			s.waiting = true
			s.cond.Wait()
			s.waiting = false
			continue
		}
		j.state = jobRunning
		p.mu.Unlock()
		j.ok = j.run(s.codec)
		p.mu.Lock()
		s.jobs++
		if !home {
			s.steals++
		}
		j.state = jobIdle
		j.done <- struct{}{}
	}
}

// submit enqueues j on its preferred shard and blocks until a worker
// completes it. If ctx is cancelled while the job is still queued, the job
// is withdrawn and ctx.Err() returned; once running, the conversion's own
// context checkpoints bound the wait.
func (p *shardPool) submit(ctx context.Context, j *shardJob) error {
	s := j.shard
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return context.Canceled
	}
	j.state = jobQueued
	p.shards[s].push(j)
	// Wake the home worker when idle (affinity); otherwise any idle worker,
	// which will find the job by scanning — the work-stealing path.
	if p.shards[s].waiting {
		p.shards[s].cond.Signal()
	} else {
		for i := range p.shards {
			if p.shards[i].waiting {
				p.shards[i].cond.Signal()
				break
			}
		}
	}
	p.mu.Unlock()
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		if j.state == jobQueued {
			p.shards[s].remove(j)
			j.state = jobIdle
			p.mu.Unlock()
			return ctx.Err()
		}
		p.mu.Unlock()
		// Already running (or just finished): the worker owns the job until
		// it signals done; the conversion aborts at its next checkpoint.
		<-j.done
		return nil
	}
}

// close stops the workers after the current jobs finish. The server only
// calls it after every connection handler has unwound, so no submitter can
// be waiting and the queues are empty. Idempotent.
func (p *shardPool) close() {
	p.mu.Lock()
	p.closed = true
	for i := range p.shards {
		p.shards[i].cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// runOnShard runs one request on the connection's shard through the
// connection's embedded job record — zero allocations in steady state. The
// in-flight gauge covers the queued wait as well as the conversion, so
// load probes and the outsourcing trigger keep seeing backlog exactly as
// they did with the semaphore.
func (b *Blockserver) runOnShard(ctx context.Context, sc *srvConn, kind jobKind, payload []byte) (bool, error) {
	b.inFlight.Add(1)
	defer b.inFlight.Add(-1)
	j := &sc.job
	if j.done == nil {
		j.done = make(chan struct{}, 1)
	}
	j.b = b
	j.sc = sc
	j.kind = kind
	j.ctx = ctx
	j.payload = payload
	j.shard = sc.affinity
	err := b.pool.submit(ctx, j)
	j.ctx = nil // do not pin the request context between requests
	if err != nil {
		return false, err
	}
	return j.ok, nil
}
