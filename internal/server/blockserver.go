package server

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lepton/internal/core"
	"lepton/internal/jpeg"
	"lepton/internal/store"
)

// Outsourcer selects a target address for an outsourced conversion, or
// reports that none is available.
type Outsourcer interface {
	Target() (addr string, ok bool)
}

// DedicatedPool outsources to a dedicated Lepton cluster — the paper's
// best-performing strategy at peak (§5.5.1): a random member is picked.
type DedicatedPool struct {
	Addrs []string
	rng   *rand.Rand
	mu    sync.Mutex
}

// NewDedicatedPool builds a pool with a deterministic selector.
func NewDedicatedPool(addrs []string, seed int64) *DedicatedPool {
	return &DedicatedPool{Addrs: addrs, rng: rand.New(rand.NewSource(seed))}
}

// Target returns a random pool member.
func (p *DedicatedPool) Target() (string, bool) {
	if len(p.Addrs) == 0 {
		return "", false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Addrs[p.rng.Intn(len(p.Addrs))], true
}

// PeerPool outsources to other blockservers ("To Self" in Figure 9) using
// the power of two random choices: probe the load of two random peers and
// pick the less loaded one (§5.5, [Mitzenmacher et al.]).
type PeerPool struct {
	Addrs        []string
	ProbeTimeout time.Duration
	rng          *rand.Rand
	mu           sync.Mutex
}

// NewPeerPool builds a peer pool with a deterministic selector.
func NewPeerPool(addrs []string, seed int64) *PeerPool {
	return &PeerPool{Addrs: addrs, ProbeTimeout: time.Second, rng: rand.New(rand.NewSource(seed))}
}

// Target probes two random peers and returns the less loaded.
func (p *PeerPool) Target() (string, bool) {
	if len(p.Addrs) == 0 {
		return "", false
	}
	p.mu.Lock()
	a := p.Addrs[p.rng.Intn(len(p.Addrs))]
	b := p.Addrs[p.rng.Intn(len(p.Addrs))]
	p.mu.Unlock()
	if a == b {
		return a, true
	}
	la, erra := probeLoad(a, p.ProbeTimeout)
	lb, errb := probeLoad(b, p.ProbeTimeout)
	switch {
	case erra != nil && errb != nil:
		return "", false
	case erra != nil:
		return b, true
	case errb != nil:
		return a, true
	case lb < la:
		return b, true
	default:
		return a, true
	}
}

func probeLoad(addr string, timeout time.Duration) (uint32, error) {
	resp, err := Do(addr, OpLoad, nil, timeout)
	if err != nil || len(resp) < 4 {
		return 0, err
	}
	return binary.LittleEndian.Uint32(resp), nil
}

// Stats counts blockserver activity.
type Stats struct {
	Compresses   atomic.Int64
	Decompresses atomic.Int64
	Outsourced   atomic.Int64
	Errors       atomic.Int64
}

// Blockserver serves Lepton conversions on a listener. It mirrors the
// production setup: a 16-core box where two concurrent Lepton jobs saturate
// the machine, so jobs beyond OutsourceThreshold are forwarded elsewhere
// when an Outsourcer is configured (§5.5).
type Blockserver struct {
	// Outsource, when non-nil, receives compression jobs arriving while
	// more than OutsourceThreshold conversions are in flight.
	Outsource Outsourcer
	// OutsourceThreshold is the concurrent-conversion limit; the paper used
	// "more than three conversions at a time".
	OutsourceThreshold int
	// EncodeOptions configures the codec.
	EncodeOptions core.EncodeOptions
	// Store, when non-nil, enables the store-backed chunk operations
	// (OpPutChunk*/OpGetChunk*).
	Store *store.Store
	// Logf, when set, receives diagnostics.
	Logf func(format string, args ...any)

	Stats Stats

	inFlight atomic.Int32
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
}

// Serve accepts connections until the listener is closed.
func (b *Blockserver) Serve(ln net.Listener) error {
	b.ln = ln
	if b.OutsourceThreshold == 0 {
		b.OutsourceThreshold = 3
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if b.closed.Load() {
				return nil
			}
			return err
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handle(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight requests.
func (b *Blockserver) Close() error {
	b.closed.Store(true)
	var err error
	if b.ln != nil {
		err = b.ln.Close()
	}
	b.wg.Wait()
	return err
}

// InFlight returns the number of conversions currently running.
func (b *Blockserver) InFlight() int { return int(b.inFlight.Load()) }

func (b *Blockserver) logf(format string, args ...any) {
	if b.Logf != nil {
		b.Logf(format, args...)
	}
}

func (b *Blockserver) handle(conn net.Conn) {
	defer conn.Close()
	op, payload, err := ReadRequest(conn)
	if err != nil {
		b.Stats.Errors.Add(1)
		return
	}
	switch op {
	case OpLoad:
		var resp [4]byte
		binary.LittleEndian.PutUint32(resp[:], uint32(b.inFlight.Load()))
		_ = WriteResponse(conn, StatusOK, resp[:])
		return
	case OpCompress:
		// Outsource when oversubscribed (§5.5): a blockserver handling
		// many cheap requests can be randomly assigned too many Lepton
		// conversions at once.
		if b.Outsource != nil && int(b.inFlight.Load()) >= b.OutsourceThreshold {
			if addr, ok := b.Outsource.Target(); ok {
				resp, err := Do(addr, OpCompress, payload, 30*time.Second)
				if err == nil {
					b.Stats.Outsourced.Add(1)
					_ = WriteResponse(conn, StatusOK, resp)
					return
				}
				b.logf("outsource to %s failed: %v; handling locally", addr, err)
			}
		}
		b.inFlight.Add(1)
		defer b.inFlight.Add(-1)
		b.Stats.Compresses.Add(1)
		res, err := core.Encode(payload, withVerify(b.EncodeOptions))
		if err != nil {
			// Unsupported inputs are service-level successes with a
			// fallback marker: production stored them with Deflate.
			if jpeg.ReasonOf(err) != jpeg.ReasonNone {
				raw, merr := rawContainer(payload)
				if merr == nil {
					_ = WriteResponse(conn, StatusOK, raw)
					return
				}
			}
			b.Stats.Errors.Add(1)
			_ = WriteResponse(conn, StatusError, []byte(err.Error()))
			return
		}
		_ = WriteResponse(conn, StatusOK, res.Compressed)
	case OpDecompress:
		b.inFlight.Add(1)
		defer b.inFlight.Add(-1)
		b.Stats.Decompresses.Add(1)
		out, err := core.Decode(payload, 0)
		if err != nil {
			b.Stats.Errors.Add(1)
			_ = WriteResponse(conn, StatusError, []byte(err.Error()))
			return
		}
		_ = WriteResponse(conn, StatusOK, out)
	case OpPutChunkRaw, OpPutChunkCompressed, OpGetChunkRaw, OpGetChunkCompressed:
		b.handleStoreOp(conn, op, payload)
	default:
		b.Stats.Errors.Add(1)
		_ = WriteResponse(conn, StatusError, []byte("unknown op"))
	}
}

func (b *Blockserver) handleStoreOp(conn net.Conn, op byte, payload []byte) {
	if b.Store == nil {
		b.Stats.Errors.Add(1)
		_ = WriteResponse(conn, StatusError, []byte("no store configured"))
		return
	}
	fail := func(err error) {
		b.Stats.Errors.Add(1)
		_ = WriteResponse(conn, StatusError, []byte(err.Error()))
	}
	switch op {
	case OpPutChunkRaw:
		// Server-side codec: the production deployment's shape.
		b.inFlight.Add(1)
		defer b.inFlight.Add(-1)
		b.Stats.Compresses.Add(1)
		ref, err := b.Store.PutFile(payload)
		if err != nil {
			fail(err)
			return
		}
		if len(ref.Chunks) != 1 {
			fail(fmt.Errorf("chunk payload produced %d chunks", len(ref.Chunks)))
			return
		}
		h := ref.Chunks[0]
		_ = WriteResponse(conn, StatusOK, h[:])
	case OpPutChunkCompressed:
		// Client-side codec (§7): only verification runs here.
		h, err := b.Store.PutCompressedChunk(payload)
		if err != nil {
			fail(err)
			return
		}
		_ = WriteResponse(conn, StatusOK, h[:])
	case OpGetChunkRaw:
		h, err := hashOf(payload)
		if err != nil {
			fail(err)
			return
		}
		b.inFlight.Add(1)
		defer b.inFlight.Add(-1)
		b.Stats.Decompresses.Add(1)
		out, err := b.Store.GetChunk(h)
		if err != nil {
			fail(err)
			return
		}
		_ = WriteResponse(conn, StatusOK, out)
	case OpGetChunkCompressed:
		h, err := hashOf(payload)
		if err != nil {
			fail(err)
			return
		}
		cb, ok := b.Store.GetCompressedChunk(h)
		if !ok {
			fail(fmt.Errorf("unknown chunk"))
			return
		}
		_ = WriteResponse(conn, StatusOK, cb)
	}
}

func hashOf(payload []byte) (store.Hash, error) {
	var h store.Hash
	if len(payload) != len(h) {
		return h, fmt.Errorf("hash must be %d bytes, got %d", len(h), len(payload))
	}
	copy(h[:], payload)
	return h, nil
}

func withVerify(opt core.EncodeOptions) core.EncodeOptions {
	opt.VerifyRoundtrip = true
	return opt
}

func rawContainer(payload []byte) ([]byte, error) {
	c := &core.Container{Mode: core.ModeRaw, Raw: payload, OutputSize: uint32(len(payload))}
	return c.Marshal()
}

// ListenAndServe starts a blockserver on addr ("unix:<path>" or
// "tcp:<host:port>") and returns it with the bound address; callers own
// Close.
func ListenAndServe(addr string, b *Blockserver) (bound string, err error) {
	network, address, err := splitAddr(addr)
	if err != nil {
		return "", err
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return "", err
	}
	go func() {
		if err := b.Serve(ln); err != nil {
			log.Printf("blockserver: serve: %v", err)
		}
	}()
	if network == "unix" {
		return "unix:" + ln.Addr().String(), nil
	}
	return "tcp:" + ln.Addr().String(), nil
}
