package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lepton/internal/core"
	"lepton/internal/jpeg"
	"lepton/internal/store"
)

// Outsourcer selects a target address for an outsourced conversion, or
// reports that none is available.
type Outsourcer interface {
	Target() (addr string, ok bool)
}

// ctxOutsourcer is the context-aware selection an Outsourcer may optionally
// implement (PeerPool does): the serve path passes the request context so a
// cancelled request stops probing immediately.
type ctxOutsourcer interface {
	TargetCtx(ctx context.Context) (addr string, ok bool)
}

// probeFailureCounter is optionally implemented by an Outsourcer whose
// selection involves load probes; StatsSnapshot surfaces the count.
type probeFailureCounter interface {
	ProbeFailures() int64
}

// probeRTTReporter is optionally implemented by an Outsourcer that tracks
// per-peer probe round-trip estimates (PeerPool does); StatsSnapshot
// exports them as peer<i>_srtt_us/_rttvar_us/_rtt_samples in the peer
// list's address order, making the pacing inputs visible on -debug-addr.
type probeRTTReporter interface {
	ProbeRTTs() map[string]RTTStat
}

// outsourceTarget selects a target through the configured Outsourcer,
// preferring its context-aware form.
func (b *Blockserver) outsourceTarget(ctx context.Context) (string, bool) {
	if co, ok := b.Outsource.(ctxOutsourcer); ok {
		return co.TargetCtx(ctx)
	}
	return b.Outsource.Target()
}

// DedicatedPool outsources to a dedicated Lepton cluster — the paper's
// best-performing strategy at peak (§5.5.1): a random member is picked.
type DedicatedPool struct {
	Addrs []string
	rng   *rand.Rand
	mu    sync.Mutex
}

// NewDedicatedPool builds a pool with a deterministic selector.
func NewDedicatedPool(addrs []string, seed int64) *DedicatedPool {
	return &DedicatedPool{Addrs: addrs, rng: rand.New(rand.NewSource(seed))}
}

// Target returns a random pool member.
func (p *DedicatedPool) Target() (string, bool) {
	if len(p.Addrs) == 0 {
		return "", false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Addrs[p.rng.Intn(len(p.Addrs))], true
}

// PeerPool outsources to other blockservers ("To Self" in Figure 9) using
// the power of two random choices: probe the load of two random peers and
// pick the less loaded one (§5.5, [Mitzenmacher et al.]).
type PeerPool struct {
	Addrs        []string
	ProbeTimeout time.Duration
	rng          *rand.Rand
	mu           sync.Mutex

	probeFailures atomic.Int64

	// rtts holds one probe RTT EWMA per peer, surfaced through ProbeRTTs
	// and the owning blockserver's StatsSnapshot (peer<i>_srtt_us).
	rttMu sync.Mutex
	rtts  map[string]*RTTEstimator
}

// NewPeerPool builds a peer pool with a deterministic selector.
func NewPeerPool(addrs []string, seed int64) *PeerPool {
	return &PeerPool{Addrs: addrs, ProbeTimeout: time.Second, rng: rand.New(rand.NewSource(seed)),
		rtts: make(map[string]*RTTEstimator)}
}

// observeRTT folds one successful probe round trip into addr's estimator.
func (p *PeerPool) observeRTT(addr string, d time.Duration) {
	p.rttMu.Lock()
	e := p.rtts[addr]
	if e == nil {
		if p.rtts == nil {
			p.rtts = make(map[string]*RTTEstimator)
		}
		e = &RTTEstimator{}
		p.rtts[addr] = e
	}
	p.rttMu.Unlock()
	e.Observe(d)
}

// ProbeRTTs returns the per-peer probe RTT estimates accumulated by
// TargetCtx selections, keyed by peer address.
func (p *PeerPool) ProbeRTTs() map[string]RTTStat {
	p.rttMu.Lock()
	defer p.rttMu.Unlock()
	out := make(map[string]RTTStat, len(p.rtts))
	for addr, e := range p.rtts {
		out[addr] = e.Stat()
	}
	return out
}

// Target selects a peer without an external context; see TargetCtx.
func (p *PeerPool) Target() (string, bool) {
	return p.TargetCtx(context.Background())
}

// TargetCtx probes two random peers concurrently under one shared context
// (bounded by ProbeTimeout) and returns the less loaded. The shared context
// keeps the selection latency at a single probe round even when a peer is
// dead — the whole selection, not each probe, pays at most one timeout —
// and it sits on the critical path of every outsourced conversion, so the
// caller's request context cancels the probes too.
func (p *PeerPool) TargetCtx(ctx context.Context) (string, bool) {
	if len(p.Addrs) == 0 {
		return "", false
	}
	p.mu.Lock()
	a := p.Addrs[p.rng.Intn(len(p.Addrs))]
	b := p.Addrs[p.rng.Intn(len(p.Addrs))]
	p.mu.Unlock()
	timeout := p.ProbeTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	if a == b {
		// Same peer drawn twice: one probe decides — a dead peer must not
		// be selected just because the rng collapsed the pair.
		start := time.Now()
		if _, err := probeLoad(pctx, a); err != nil {
			if ctx.Err() == nil {
				// Not our own cancellation: a real verdict on the peer.
				p.probeFailures.Add(1)
			}
			return "", false
		}
		p.observeRTT(a, time.Since(start))
		return a, true
	}
	pair := [2]string{a, b}
	win, errs := probePair(pctx, func(ctx context.Context, k int) (uint32, error) {
		start := time.Now()
		load, err := probeLoad(ctx, pair[k])
		if err == nil {
			p.observeRTT(pair[k], time.Since(start))
		}
		return load, err
	})
	if ctx.Err() != nil {
		// The request was cancelled mid-probe; no verdict on the peers.
		return "", false
	}
	for _, err := range errs {
		if err != nil {
			p.probeFailures.Add(1)
		}
	}
	if win < 0 {
		return "", false
	}
	return pair[win], true
}

// ProbeFailures reports how many load probes have failed; a Blockserver
// exposes it as "probe_failures" in StatsSnapshot.
func (p *PeerPool) ProbeFailures() int64 { return p.probeFailures.Load() }

func probeLoad(ctx context.Context, addr string) (uint32, error) {
	resp, err := DoCtx(ctx, addr, OpLoad, nil)
	if err != nil {
		return 0, err
	}
	if len(resp) < 4 {
		return 0, fmt.Errorf("server: short load response (%d bytes)", len(resp))
	}
	return binary.LittleEndian.Uint32(resp), nil
}

// Stats counts blockserver activity.
type Stats struct {
	Compresses   atomic.Int64
	Decompresses atomic.Int64
	// GetRanges counts OpGetRange requests served (fast path and fallback
	// alike; the split lives in core.RangeStats, merged into StatsSnapshot).
	GetRanges  atomic.Int64
	Outsourced atomic.Int64
	Errors     atomic.Int64
	// Cancelled counts conversions aborted mid-flight by a per-request
	// context: peer disconnect, RequestTimeout, or a forced drain.
	Cancelled atomic.Int64
	// Writevs counts the vectored write batches issued by streamed
	// decompress responses — each is one writev syscall on TCP and Unix
	// sockets, covering up to vecMaxIOV decoder segments that previously
	// took a write call apiece.
	Writevs atomic.Int64
}

// StatsSnapshot returns a point-in-time view of the server's counters plus
// the process-wide streamed-coefficient memory gauges (current and peak
// row-window bytes — the §5.1 ceiling as actually observed), in a form
// ready for expvar/JSON export; see cmd/blockserverd's -debug-addr.
func (b *Blockserver) StatsSnapshot() map[string]int64 {
	inUse, peak := core.CoeffMemStats()
	snap := map[string]int64{
		"compresses":                b.Stats.Compresses.Load(),
		"decompresses":              b.Stats.Decompresses.Load(),
		"get_ranges":                b.Stats.GetRanges.Load(),
		"outsourced":                b.Stats.Outsourced.Load(),
		"errors":                    b.Stats.Errors.Load(),
		"cancelled":                 b.Stats.Cancelled.Load(),
		"in_flight":                 int64(b.InFlight()),
		"writevs":                   b.Stats.Writevs.Load(),
		"coeff_window_bytes_in_use": inUse,
		"coeff_window_bytes_peak":   peak,
	}
	// Process-wide range-decode counters (fast path vs fallback split),
	// same process-global scope as the coefficient gauges above.
	for k, v := range core.RangeStats() {
		snap[k] = v
	}
	if pf, ok := b.Outsource.(probeFailureCounter); ok {
		snap["probe_failures"] = pf.ProbeFailures()
	}
	if rr, ok := b.Outsource.(probeRTTReporter); ok {
		rtts := rr.ProbeRTTs()
		addrs := make([]string, 0, len(rtts))
		for addr := range rtts {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		for i, addr := range addrs {
			st := rtts[addr]
			snap[fmt.Sprintf("peer%d_srtt_us", i)] = st.SRTT.Microseconds()
			snap[fmt.Sprintf("peer%d_rttvar_us", i)] = st.RTTVar.Microseconds()
			snap[fmt.Sprintf("peer%d_rtt_samples", i)] = st.Samples
		}
	}
	if b.Store != nil {
		// Durability counters from a stats-capable backend (the disk
		// store): segment count, live/garbage bytes, quarantines,
		// compactions — the healing signals leptonload graphs.
		for k, v := range b.Store.BackendStats() {
			snap["store_"+k] = v
		}
	}
	b.connMu.Lock()
	p := b.pool
	b.connMu.Unlock()
	if p != nil {
		p.mu.Lock()
		snap["shards"] = int64(len(p.shards))
		for i := range p.shards {
			s := &p.shards[i]
			snap[fmt.Sprintf("shard%d_depth", i)] = int64(s.depth())
			snap[fmt.Sprintf("shard%d_done", i)] = s.jobs
			snap[fmt.Sprintf("shard%d_steals", i)] = s.steals
		}
		p.mu.Unlock()
	}
	return snap
}

// Blockserver serves Lepton conversions on a listener. It mirrors the
// production setup: a 16-core box where a few concurrent Lepton jobs
// saturate the machine, so conversions run on a fixed set of per-core
// worker shards (Shards, default GOMAXPROCS) and jobs arriving beyond
// OutsourceThreshold are forwarded elsewhere when an Outsourcer is
// configured (§5.5).
//
// Connections are persistent: each serves a request loop until the client
// closes or a streaming failure forces a teardown. Every connection is
// pinned to a shard whose worker owns a private core.Codec, so a
// connection's steady-state conversions reuse model tables, coefficient
// planes, and scratch buffers that stay resident on one core; idle workers
// steal from busy shards, so the pinning never strands throughput (see
// shards.go).
//
// Every conversion runs under a context derived from its connection: a
// peer that disconnects mid-request, or a RequestTimeout that expires,
// cancels the conversion at its next block-row checkpoint instead of
// letting it burn a worker slot to completion (the paper's per-request
// deadline discipline, §5.7). Shutdown drains the server gracefully.
type Blockserver struct {
	// Outsource, when non-nil, receives compression jobs arriving while
	// more than OutsourceThreshold conversions are in flight.
	Outsource Outsourcer
	// OutsourceThreshold is the concurrent-conversion limit; the paper used
	// "more than three conversions at a time".
	OutsourceThreshold int
	// Shards is the number of worker shards — the bound on conversions
	// running at once. 0 defers to MaxConcurrent, then to GOMAXPROCS.
	// Requests beyond the bound queue on their connection's shard; InFlight
	// counts queued and running conversions alike so load probes and the
	// outsourcing trigger see the backlog.
	Shards int
	// MaxConcurrent is the pre-sharding name for the same bound, kept so
	// existing configurations keep their worker count; Shards wins when
	// both are set. 0 (with Shards 0) means one shard per core.
	MaxConcurrent int
	// WriteTimeout bounds how long one response may take to reach the
	// client; 0 means DefaultWriteTimeout. Because conversions hold a
	// worker-pool slot through their response write, a client that stops
	// reading would otherwise pin a slot forever — the deadline converts
	// that into a connection teardown.
	WriteTimeout time.Duration
	// RequestTimeout, when positive, bounds each conversion end to end: the
	// per-request context expires after this much time and the conversion
	// aborts at its next checkpoint with a StatusError response.
	RequestTimeout time.Duration
	// Codec is the pooled conversion pipeline shared by every connection;
	// nil gets a private codec on first Serve.
	Codec *core.Codec
	// EncodeOptions configures the codec.
	EncodeOptions core.EncodeOptions
	// Store, when non-nil, enables the store-backed chunk operations
	// (OpPutChunk*/OpGetChunk*).
	Store *store.Store
	// Logf, when set, receives diagnostics.
	Logf func(format string, args ...any)

	Stats Stats

	inFlight atomic.Int32
	pool     *shardPool
	connSeq  atomic.Uint32 // round-robin shard affinity for new connections
	wg       sync.WaitGroup
	closed   atomic.Bool
	draining atomic.Bool

	initOnce  sync.Once
	baseCtx   context.Context // parent of every request context
	cancelAll context.CancelFunc

	connMu sync.Mutex
	ln     net.Listener
	conns  map[*srvConn]struct{}
}

// DefaultMaxConcurrent matches the paper's observation that a handful of
// conversions saturate a blockserver; beyond this they queue (or are
// outsourced when a pool is configured). Since the worker-pool sharding it
// is only a conventional value for explicit configuration (blockserverd's
// -max-concurrent flag default); an unconfigured Blockserver runs one
// shard per core.
const DefaultMaxConcurrent = 4

// DefaultWriteTimeout is generous against slow networks while still
// bounding how long a stalled client can hold a worker-pool slot.
const DefaultWriteTimeout = 2 * time.Minute

// srvConn wraps one accepted connection with the read-ahead state the
// request watchdog shares with the request loop, and the serving flag
// Shutdown consults to tell requests in flight from idle keepalives.
type srvConn struct {
	conn net.Conn
	// pend holds bytes the watchdog read ahead of the request loop (the
	// first byte of a pipelined next request); eof records a clean
	// half-close. Both are only touched by the watchdog goroutine and, after
	// it finishes, by the request loop — never concurrently.
	pend    []byte
	eof     bool
	serving atomic.Bool

	// affinity is the connection's preferred worker shard, assigned
	// round-robin at accept.
	affinity int
	// job is the reusable dispatch record (one request in flight per
	// connection), so steady-state shard dispatch allocates nothing.
	job shardJob
	// rbuf is the connection's reusable request-payload buffer: readRequest
	// decodes every request in place instead of allocating per request. The
	// payload handed to a job aliases it and dies at the response.
	rbuf []byte
	// fw is the reusable vectored frame writer for streamed decompress
	// responses. Only the worker running this connection's job touches it.
	fw vecFrameWriter
}

// readRequest reads one framed request into the connection's reusable
// buffer. The returned payload aliases sc.rbuf and is only valid until the
// next readRequest: every consumer either finishes with it before the
// response completes (the codec paths) or copies it (the store puts).
func (sc *srvConn) readRequest() (op byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(sc, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[1:]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("server: request of %d bytes exceeds limit", n)
	}
	if cap(sc.rbuf) < n {
		sc.rbuf = make([]byte, n)
	}
	payload = sc.rbuf[:n]
	if _, err := io.ReadFull(sc, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Read hands back watchdog read-ahead first, then the connection; a clean
// EOF observed by the watchdog is replayed once the read-ahead drains.
func (sc *srvConn) Read(p []byte) (int, error) {
	if len(sc.pend) > 0 {
		n := copy(p, sc.pend)
		sc.pend = sc.pend[n:]
		return n, nil
	}
	if sc.eof {
		return 0, io.EOF
	}
	return sc.conn.Read(p)
}

func (b *Blockserver) init() {
	b.initOnce.Do(func() {
		b.baseCtx, b.cancelAll = context.WithCancel(context.Background())
		b.conns = make(map[*srvConn]struct{})
		if b.OutsourceThreshold == 0 {
			b.OutsourceThreshold = 3
		}
		if b.Codec == nil {
			b.Codec = core.NewCodec()
		}
		if b.Store != nil && b.Store.Codec == nil {
			// Store-backed conversions share the server's pools.
			b.Store.Codec = b.Codec
		}
		n := b.Shards
		if n <= 0 {
			n = b.MaxConcurrent
		}
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		// Published under connMu so StatsSnapshot can read the pool
		// concurrently with a lazy init from another goroutine's Serve.
		b.connMu.Lock()
		b.pool = newShardPool(n)
		b.connMu.Unlock()
	})
}

// Serve accepts connections until the listener is closed (Close/Shutdown).
func (b *Blockserver) Serve(ln net.Listener) error {
	b.init()
	b.connMu.Lock()
	b.ln = ln
	b.connMu.Unlock()
	if b.closed.Load() {
		// Shutdown won the race with Serve: refuse to start.
		_ = ln.Close()
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if b.closed.Load() {
				return nil
			}
			return err
		}
		// Register under connMu so the Add is ordered against Shutdown's
		// closed-flag publication: either the handler is counted before the
		// drain's wg.Wait begins, or the closed flag is already visible here
		// and the connection is refused. Without this ordering a
		// just-accepted connection could call wg.Add concurrently with
		// wg.Wait on a zero counter — the documented WaitGroup misuse.
		b.connMu.Lock()
		if b.closed.Load() {
			b.connMu.Unlock()
			_ = conn.Close()
			continue
		}
		b.wg.Add(1)
		b.connMu.Unlock()
		go func() {
			defer b.wg.Done()
			b.handle(conn)
		}()
	}
}

// Close stops the server immediately: the listener closes, every
// connection is torn down, and in-flight conversions are cancelled at
// their next checkpoint. Prefer Shutdown for a graceful drain.
func (b *Blockserver) Close() error {
	b.init()
	err := b.beginDrain()
	b.cancelAll()
	b.closeConns(true)
	b.wg.Wait()
	b.pool.close()
	return err
}

// beginDrain publishes the closed/draining flags and closes the listener
// under connMu, ordering the flags against Serve's accept-time wg.Add (see
// Serve). Idempotent: a Close after a Shutdown (or a double Close) must not
// re-close the listener and report a phantom net.ErrClosed.
func (b *Blockserver) beginDrain() error {
	b.connMu.Lock()
	defer b.connMu.Unlock()
	if b.closed.Load() {
		return nil
	}
	b.closed.Store(true)
	b.draining.Store(true)
	if b.ln == nil {
		return nil
	}
	return b.ln.Close()
}

// Shutdown drains the server gracefully: the listener closes immediately
// (new connections are refused), idle persistent connections are closed,
// and requests already in flight run to completion. If ctx expires before
// the drain finishes, the stragglers' request contexts are cancelled —
// conversions abort at their next block-row checkpoint — and their
// connections closed; Shutdown still waits for every handler to unwind
// before returning ctx.Err(). A nil error means a clean drain.
func (b *Blockserver) Shutdown(ctx context.Context) error {
	b.init()
	_ = b.beginDrain()
	b.closeConns(false)
	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		b.pool.close()
		return nil
	case <-ctx.Done():
		b.cancelAll()
		b.closeConns(true)
		<-done
		b.pool.close()
		return ctx.Err()
	}
}

// closeConns closes tracked connections — all of them, or only those with
// no request currently being served.
func (b *Blockserver) closeConns(includeServing bool) {
	b.connMu.Lock()
	defer b.connMu.Unlock()
	for sc := range b.conns {
		if includeServing || !sc.serving.Load() {
			_ = sc.conn.Close()
		}
	}
}

func (b *Blockserver) track(sc *srvConn) {
	b.connMu.Lock()
	b.conns[sc] = struct{}{}
	b.connMu.Unlock()
}

func (b *Blockserver) untrack(sc *srvConn) {
	b.connMu.Lock()
	delete(b.conns, sc)
	b.connMu.Unlock()
}

// beginServing flips the connection into serving state unless a drain has
// started; taken under connMu so Shutdown's idle-connection sweep cannot
// interleave with the transition.
func (b *Blockserver) beginServing(sc *srvConn) bool {
	b.connMu.Lock()
	defer b.connMu.Unlock()
	if b.draining.Load() {
		return false
	}
	sc.serving.Store(true)
	return true
}

// InFlight returns the number of conversions currently queued or running.
func (b *Blockserver) InFlight() int { return int(b.inFlight.Load()) }

func (b *Blockserver) logf(format string, args ...any) {
	if b.Logf != nil {
		b.Logf(format, args...)
	}
}

// handle runs one connection's request loop: requests are served in order
// until the peer closes (or half-closes, as the one-shot protocol does), a
// mid-stream failure makes the framing unrecoverable, or a drain begins.
func (b *Blockserver) handle(conn net.Conn) {
	sc := &srvConn{conn: conn}
	sc.affinity = int(b.connSeq.Add(1)-1) % len(b.pool.shards)
	b.track(sc)
	defer b.untrack(sc)
	defer conn.Close()
	for {
		if b.draining.Load() {
			return
		}
		op, payload, err := sc.readRequest()
		if err != nil {
			// EOF here is the normal end of a persistent connection.
			if !errors.Is(err, io.EOF) && !b.draining.Load() {
				b.Stats.Errors.Add(1)
			}
			return
		}
		if !b.beginServing(sc) {
			return
		}
		ok := b.serveOne(sc, op, payload)
		sc.serving.Store(false)
		if !ok {
			return
		}
	}
}

// withRequestCtx runs one conversion under a context derived from the
// server's base context (cancelled on forced shutdown) and the connection:
// a watchdog goroutine reads the connection while the conversion runs. The
// protocol is strictly request/response, so nothing should arrive from the
// peer before our response — a byte means the client pipelined its next
// request (kept for the next ReadRequest), a clean EOF is the one-shot
// protocol's half-close (not an abort), and a read error is a genuine
// disconnect: the request context is cancelled so the conversion stops
// burning a worker slot for a client that is gone. RequestTimeout, when
// set, bounds the whole conversion.
func (b *Blockserver) withRequestCtx(sc *srvConn, fn func(ctx context.Context) bool) bool {
	ctx, cancel := context.WithCancel(b.baseCtx)
	defer cancel()
	if b.RequestTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, b.RequestTimeout)
		defer tcancel()
	}
	var peerGone atomic.Bool
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		var one [1]byte
		for {
			n, err := sc.conn.Read(one[:])
			if n > 0 {
				sc.pend = append(sc.pend, one[0])
				return
			}
			if err != nil {
				switch {
				case errors.Is(err, io.EOF):
					sc.eof = true
				case errors.Is(err, os.ErrDeadlineExceeded):
					// Not a disconnect. The server never sets read deadlines
					// today (serveOne sets only the write deadline), but if
					// one is ever introduced, a timeout must stop the watch
					// without cancelling a healthy conversion.
				default:
					peerGone.Store(true)
					cancel()
				}
				return
			}
		}
	}()
	ok := fn(ctx)
	// The response is written: what remains is waiting for the peer's next
	// byte, which is idle time — clear serving so a drain may close the
	// connection out from under the wait. The store-then-check order pairs
	// with Shutdown's set-draining-then-sweep: whichever side runs second
	// sees the other's flag, so a request finishing mid-drain always gets
	// its connection closed.
	sc.serving.Store(false)
	if !ok || b.draining.Load() {
		// Teardown required (framing unrecoverable, or a drain is in
		// progress); closing also unblocks the watchdog if the peer is
		// still connected but silent.
		_ = sc.conn.Close()
	}
	<-watchDone
	return ok && !peerGone.Load()
}

// respondErr reports a conversion failure in-band. A context abort — the
// per-request timeout, a drain force-cancel, a cancelled queue wait — is a
// node-local condition, answered with StatusRetry so routed clients try
// another node; everything else is a deterministic StatusError.
func (b *Blockserver) respondErr(conn net.Conn, err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		b.Stats.Cancelled.Add(1)
		return WriteResponse(conn, StatusRetry, []byte(err.Error())) == nil
	}
	b.Stats.Errors.Add(1)
	return WriteResponse(conn, StatusError, []byte(err.Error())) == nil
}

// serveOne dispatches one request and reports whether the connection can
// serve another (false after a write failure or a decode error discovered
// mid-stream, when the only correct signal left is closing the
// connection).
func (b *Blockserver) serveOne(sc *srvConn, op byte, payload []byte) bool {
	conn := sc.conn
	// Bound the whole serve+respond; a client that stops reading must not
	// pin a worker-pool slot past the deadline.
	wt := b.WriteTimeout
	if wt == 0 {
		wt = DefaultWriteTimeout
	}
	if wt > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(wt))
	}
	switch op {
	case OpLoad:
		var resp [4]byte
		binary.LittleEndian.PutUint32(resp[:], uint32(b.inFlight.Load()))
		return WriteResponse(conn, StatusOK, resp[:]) == nil
	case OpCompress:
		return b.withRequestCtx(sc, func(ctx context.Context) bool {
			return b.serveCompress(ctx, sc, payload)
		})
	case OpDecompress:
		return b.withRequestCtx(sc, func(ctx context.Context) bool {
			return b.serveDecompress(ctx, sc, payload)
		})
	case OpPutChunkRaw, OpPutChunkCompressed, OpGetChunkRaw, OpGetChunkCompressed, OpListChunks, OpGetRange:
		return b.withRequestCtx(sc, func(ctx context.Context) bool {
			return b.handleStoreOp(ctx, sc, op, payload)
		})
	default:
		b.Stats.Errors.Add(1)
		return WriteResponse(conn, StatusError, []byte("unknown op")) == nil
	}
}

func (b *Blockserver) serveCompress(ctx context.Context, sc *srvConn, payload []byte) bool {
	conn := sc.conn
	// Outsource when oversubscribed (§5.5): a blockserver handling
	// many cheap requests can be randomly assigned too many Lepton
	// conversions at once. The remote round trip runs here on the
	// connection goroutine, never on a shard worker.
	if b.Outsource != nil && int(b.inFlight.Load()) >= b.OutsourceThreshold {
		if addr, ok := b.outsourceTarget(ctx); ok {
			octx, ocancel := context.WithTimeout(ctx, 30*time.Second)
			resp, err := DoCtx(octx, addr, OpCompress, payload)
			ocancel()
			if err == nil {
				b.Stats.Outsourced.Add(1)
				return WriteResponse(conn, StatusOK, resp) == nil
			}
			if ctx.Err() != nil {
				return b.respondErr(conn, ctx.Err())
			}
			b.logf("outsource to %s failed: %v; handling locally", addr, err)
		}
	}
	ok, err := b.runOnShard(ctx, sc, jobCompress, payload)
	if err != nil {
		return b.respondErr(conn, err)
	}
	return ok
}

// compressLocal runs on a shard worker with the shard's private codec.
func (b *Blockserver) compressLocal(ctx context.Context, cd *core.Codec, conn net.Conn, payload []byte) bool {
	b.Stats.Compresses.Add(1)
	res, err := cd.EncodeCtx(ctx, payload, withVerify(b.EncodeOptions))
	if err != nil {
		if ctx.Err() != nil {
			return b.respondErr(conn, ctx.Err())
		}
		// Unsupported inputs are service-level successes with a
		// fallback marker: production stored them with Deflate.
		if jpeg.ReasonOf(err) != jpeg.ReasonNone {
			raw, merr := rawContainer(payload)
			if merr == nil {
				return WriteResponse(conn, StatusOK, raw) == nil
			}
		}
		return b.respondErr(conn, err)
	}
	return WriteResponse(conn, StatusOK, res.Compressed) == nil
}

func (b *Blockserver) serveDecompress(ctx context.Context, sc *srvConn, payload []byte) bool {
	ok, err := b.runOnShard(ctx, sc, jobDecompress, payload)
	if err != nil {
		return b.respondErr(sc.conn, err)
	}
	return ok
}

// decompressLocal runs on a shard worker with the shard's private codec.
//
// The container header records the exact output size, so the response can
// be framed up front and the reconstruction streamed into the connection
// segment by segment (§3.4) instead of being buffered whole. Output goes
// through the connection's vectored frame writer, which batches the frame
// header and the decoder's segments into a handful of writev calls; the
// queued slices alias codec-pooled buffers, which is safe precisely
// because the codec is shard-private — nothing can recycle those pools
// until this worker finishes this job, and the final flush happens before
// it does. As long as nothing has hit the wire yet, any failure — all of
// pre-stream validation, and mid-stream aborts whose output is still
// queued — can still be answered in-band on an intact connection; after
// the first flush, the header has promised size bytes and a shortfall can
// only be signaled by tearing the connection down.
func (b *Blockserver) decompressLocal(ctx context.Context, cd *core.Codec, sc *srvConn, payload []byte) bool {
	conn := sc.conn
	b.Stats.Decompresses.Add(1)
	size, err := core.ContainerOutputSize(payload)
	if err != nil {
		b.Stats.Errors.Add(1)
		return WriteResponse(conn, StatusError, []byte(err.Error())) == nil
	}
	w := &sc.fw
	w.reset(conn, size, &b.Stats.Writevs)
	if err := cd.DecodeToCtx(ctx, w, payload, 0); err != nil {
		if !w.wrote {
			w.discard()
			return b.respondErr(conn, err)
		}
		if ctx.Err() != nil {
			b.Stats.Cancelled.Add(1)
		} else {
			b.Stats.Errors.Add(1)
		}
		w.discard()
		b.logf("decompress stream failed: %v", err)
		return false
	}
	if !w.wrote && w.pending == 0 {
		// Zero-length output (empty raw chunk): frame it now.
		return WriteResponseHeader(conn, StatusOK, size) == nil
	}
	if err := w.Flush(); err != nil {
		// A response write failure: the connection is done either way.
		b.Stats.Errors.Add(1)
		return false
	}
	return true
}

func (b *Blockserver) handleStoreOp(ctx context.Context, sc *srvConn, op byte, payload []byte) bool {
	conn := sc.conn
	if b.Store == nil {
		b.Stats.Errors.Add(1)
		return WriteResponse(conn, StatusError, []byte("no store configured")) == nil
	}
	fail := func(err error) bool {
		return b.respondErr(conn, err)
	}
	switch op {
	case OpPutChunkRaw:
		// Server-side codec: the production deployment's shape.
		ok, err := b.runOnShard(ctx, sc, jobPutRaw, payload)
		if err != nil {
			return fail(err)
		}
		return ok
	case OpPutChunkCompressed:
		// Client-side codec (§7): "only" verification runs here — but that
		// is a full decode, so it takes a shard worker like any other
		// conversion; otherwise fleet-store puts would bypass the worker
		// bound and stay invisible to the load probes routing them.
		ok, err := b.runOnShard(ctx, sc, jobPutCompressed, payload)
		if err != nil {
			return fail(err)
		}
		return ok
	case OpGetChunkRaw:
		h, err := hashOf(payload)
		if err != nil {
			return fail(err)
		}
		sc.job.hash = h
		ok, rerr := b.runOnShard(ctx, sc, jobGetRaw, nil)
		if rerr != nil {
			return fail(rerr)
		}
		return ok
	case OpGetRange:
		// A range decode is a (partial) conversion, so it takes a shard
		// worker like OpGetChunkRaw; the fixed-size request is parsed here
		// on the connection goroutine.
		if len(payload) != getRangeReqLen {
			return fail(fmt.Errorf("get-range request is %d bytes, want %d", len(payload), getRangeReqLen))
		}
		h, err := hashOf(payload[:32])
		if err != nil {
			return fail(err)
		}
		off := int64(binary.LittleEndian.Uint64(payload[32:]))
		if off < 0 {
			return fail(core.ErrInvalidRange)
		}
		sc.job.hash = h
		sc.job.off = off
		sc.job.n = int64(binary.LittleEndian.Uint32(payload[40:]))
		ok, rerr := b.runOnShard(ctx, sc, jobGetRange, nil)
		if rerr != nil {
			return fail(rerr)
		}
		return ok
	case OpGetChunkCompressed:
		h, err := hashOf(payload)
		if err != nil {
			return fail(err)
		}
		cb, ok := b.Store.GetCompressedChunk(h)
		if !ok {
			// A miss is answered with its own status byte so replicated
			// readers can key read-repair on it without parsing error
			// prose; it still counts as an error for this node's stats.
			b.Stats.Errors.Add(1)
			return WriteResponse(conn, StatusNotFound, []byte("unknown chunk")) == nil
		}
		return WriteResponse(conn, StatusOK, cb) == nil
	case OpListChunks:
		// An index walk, not a conversion: served inline like the
		// compressed-get path, no shard worker.
		if len(payload) != 36 {
			return fail(fmt.Errorf("list-chunks request is %d bytes, want 36", len(payload)))
		}
		var after store.Hash
		copy(after[:], payload[:32])
		max := int(binary.LittleEndian.Uint32(payload[32:]))
		if max <= 0 || max > ListChunksPageMax {
			max = ListChunksPageMax
		}
		hashes := b.Store.HashesAfter(after, max)
		resp := make([]byte, 0, len(hashes)*32)
		for _, h := range hashes {
			resp = append(resp, h[:]...)
		}
		return WriteResponse(conn, StatusOK, resp) == nil
	}
	return true
}

// putRawLocal runs OpPutChunkRaw on a shard worker. The store paths go
// through the Store's own codec (its budgets and shutoff switch are store
// configuration); the shard still bounds their concurrency.
func (b *Blockserver) putRawLocal(ctx context.Context, conn net.Conn, payload []byte) bool {
	b.Stats.Compresses.Add(1)
	ref, err := b.Store.PutFileCtx(ctx, payload)
	if err != nil {
		return b.respondErr(conn, err)
	}
	if len(ref.Chunks) != 1 {
		return b.respondErr(conn, fmt.Errorf("chunk payload produced %d chunks", len(ref.Chunks)))
	}
	h := ref.Chunks[0]
	return WriteResponse(conn, StatusOK, h[:]) == nil
}

// putCompressedLocal runs OpPutChunkCompressed on a shard worker.
func (b *Blockserver) putCompressedLocal(ctx context.Context, conn net.Conn, payload []byte) bool {
	h, err := b.Store.PutCompressedChunkCtx(ctx, payload)
	if err != nil {
		return b.respondErr(conn, err)
	}
	return WriteResponse(conn, StatusOK, h[:]) == nil
}

// getRawLocal runs OpGetChunkRaw on a shard worker.
func (b *Blockserver) getRawLocal(ctx context.Context, conn net.Conn, h store.Hash) bool {
	b.Stats.Decompresses.Add(1)
	out, err := b.Store.GetChunkCtx(ctx, h)
	if err != nil {
		return b.respondErr(conn, err)
	}
	return WriteResponse(conn, StatusOK, out) == nil
}

// getRangeLocal runs OpGetRange on a shard worker: decode only the chunk
// rows overlapping [off, off+n) and stream exactly those bytes. The range
// decoder reports the response length up front (RangeLength clamps against
// the container's recorded output size), so the response rides the same
// vectored frame writer as a full decompress — header framed lazily,
// failures before the first flush still answered in-band, a shortfall after
// it signaled by connection teardown.
func (b *Blockserver) getRangeLocal(ctx context.Context, cd *core.Codec, sc *srvConn, h store.Hash, off, n int64) bool {
	conn := sc.conn
	b.Stats.GetRanges.Add(1)
	cb, ok := b.Store.GetCompressedChunk(h)
	if !ok {
		b.Stats.Errors.Add(1)
		return WriteResponse(conn, StatusNotFound, []byte("unknown chunk")) == nil
	}
	rlen, err := core.RangeLength(cb, off, n)
	if err != nil {
		b.Stats.Errors.Add(1)
		return WriteResponse(conn, StatusError, []byte(err.Error())) == nil
	}
	if rlen > maxPayload {
		// The client's ReadResponse caps a frame at maxPayload; a range this
		// large should be fetched as the whole chunk instead.
		b.Stats.Errors.Add(1)
		return WriteResponse(conn, StatusError,
			[]byte(fmt.Sprintf("range of %d bytes exceeds the %d-byte response limit", rlen, maxPayload))) == nil
	}
	w := &sc.fw
	w.reset(conn, uint32(rlen), &b.Stats.Writevs)
	if _, err := cd.DecodeRangeToCtx(ctx, w, cb, off, n, 0); err != nil {
		if !w.wrote {
			w.discard()
			return b.respondErr(conn, err)
		}
		if ctx.Err() != nil {
			b.Stats.Cancelled.Add(1)
		} else {
			b.Stats.Errors.Add(1)
		}
		w.discard()
		b.logf("get-range stream failed: %v", err)
		return false
	}
	if !w.wrote && w.pending == 0 {
		// Empty range (off at or past the end): frame the zero-length body.
		return WriteResponseHeader(conn, StatusOK, uint32(rlen)) == nil
	}
	if err := w.Flush(); err != nil {
		b.Stats.Errors.Add(1)
		return false
	}
	return true
}

// vecFrameWriter batches a streamed decompress response — frame header
// plus decoder output segments — into vectored writes (net.Buffers, one
// writev per flush on TCP and Unix sockets) instead of a write syscall per
// segment. Queued slices are only aliases; see decompressLocal for why
// they stay valid until the flush. A small decode's entire response ships
// in a single writev.
//
// The header is queued with the first payload byte but reaches the wire
// only at the first flush, so every failure before then — not just
// pre-stream validation, as with the old unbuffered lazy writer — can
// still be reported as a StatusError on an intact connection.
type vecFrameWriter struct {
	conn    net.Conn
	size    uint32
	hdr     [5]byte
	bufs    net.Buffers
	pending int  // payload bytes queued and not yet flushed
	wrote   bool // something reached the wire; the response is committed
	writevs *atomic.Int64
}

// Flush thresholds: enough batching to collapse a typical multi-segment
// decode into a few syscalls, low enough that a large reconstruction
// streams instead of accumulating (and stays well under the kernel's 1024
// iovec ceiling).
const (
	vecFlushBytes = 256 << 10
	vecMaxIOV     = 64
)

func (w *vecFrameWriter) reset(conn net.Conn, size uint32, writevs *atomic.Int64) {
	w.conn = conn
	w.size = size
	w.pending = 0
	w.wrote = false
	w.writevs = writevs
	w.bufs = w.bufs[:0]
}

func (w *vecFrameWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if len(w.bufs) == 0 && !w.wrote {
		w.hdr[0] = StatusOK
		binary.LittleEndian.PutUint32(w.hdr[1:], w.size)
		w.bufs = append(w.bufs, w.hdr[:])
	}
	w.bufs = append(w.bufs, p)
	w.pending += len(p)
	if w.pending >= vecFlushBytes || len(w.bufs) >= vecMaxIOV {
		if err := w.Flush(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// Flush writes everything queued in one vectored write.
func (w *vecFrameWriter) Flush() error {
	if len(w.bufs) == 0 {
		return nil
	}
	w.wrote = true
	if w.writevs != nil {
		w.writevs.Add(1)
	}
	// WriteTo consumes a copy of the slice header; w.bufs keeps the full
	// backing view so discard() below can release the aliased segments.
	v := w.bufs
	_, err := v.WriteTo(w.conn)
	w.discard()
	return err
}

// discard drops queued-but-unflushed output and releases the aliases.
func (w *vecFrameWriter) discard() {
	for i := range w.bufs {
		w.bufs[i] = nil
	}
	w.bufs = w.bufs[:0]
	w.pending = 0
}

func hashOf(payload []byte) (store.Hash, error) {
	var h store.Hash
	if len(payload) != len(h) {
		return h, fmt.Errorf("hash must be %d bytes, got %d", len(h), len(payload))
	}
	copy(h[:], payload)
	return h, nil
}

func withVerify(opt core.EncodeOptions) core.EncodeOptions {
	opt.VerifyRoundtrip = true
	return opt
}

func rawContainer(payload []byte) ([]byte, error) {
	c := &core.Container{Mode: core.ModeRaw, Raw: payload, OutputSize: uint32(len(payload))}
	return c.Marshal()
}

// ListenAndServe starts a blockserver on addr ("unix:<path>" or
// "tcp:<host:port>") and returns it with the bound address; callers own
// Close (or Shutdown for a graceful drain).
func ListenAndServe(addr string, b *Blockserver) (bound string, err error) {
	network, address, err := splitAddr(addr)
	if err != nil {
		return "", err
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return "", err
	}
	go func() {
		if err := b.Serve(ln); err != nil {
			log.Printf("blockserver: serve: %v", err)
		}
	}()
	if network == "unix" {
		return "unix:" + ln.Addr().String(), nil
	}
	return "tcp:" + ln.Addr().String(), nil
}
