package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lepton/internal/core"
	"lepton/internal/jpeg"
	"lepton/internal/store"
)

// Outsourcer selects a target address for an outsourced conversion, or
// reports that none is available.
type Outsourcer interface {
	Target() (addr string, ok bool)
}

// DedicatedPool outsources to a dedicated Lepton cluster — the paper's
// best-performing strategy at peak (§5.5.1): a random member is picked.
type DedicatedPool struct {
	Addrs []string
	rng   *rand.Rand
	mu    sync.Mutex
}

// NewDedicatedPool builds a pool with a deterministic selector.
func NewDedicatedPool(addrs []string, seed int64) *DedicatedPool {
	return &DedicatedPool{Addrs: addrs, rng: rand.New(rand.NewSource(seed))}
}

// Target returns a random pool member.
func (p *DedicatedPool) Target() (string, bool) {
	if len(p.Addrs) == 0 {
		return "", false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Addrs[p.rng.Intn(len(p.Addrs))], true
}

// PeerPool outsources to other blockservers ("To Self" in Figure 9) using
// the power of two random choices: probe the load of two random peers and
// pick the less loaded one (§5.5, [Mitzenmacher et al.]).
type PeerPool struct {
	Addrs        []string
	ProbeTimeout time.Duration
	rng          *rand.Rand
	mu           sync.Mutex
}

// NewPeerPool builds a peer pool with a deterministic selector.
func NewPeerPool(addrs []string, seed int64) *PeerPool {
	return &PeerPool{Addrs: addrs, ProbeTimeout: time.Second, rng: rand.New(rand.NewSource(seed))}
}

// Target probes two random peers concurrently and returns the less loaded.
// Probing in parallel keeps the selection latency at one probe RTT instead
// of two — it sits on the critical path of every outsourced conversion.
func (p *PeerPool) Target() (string, bool) {
	if len(p.Addrs) == 0 {
		return "", false
	}
	p.mu.Lock()
	a := p.Addrs[p.rng.Intn(len(p.Addrs))]
	b := p.Addrs[p.rng.Intn(len(p.Addrs))]
	p.mu.Unlock()
	if a == b {
		return a, true
	}
	type probe struct {
		load uint32
		err  error
	}
	ra := make(chan probe, 1)
	rb := make(chan probe, 1)
	go func() {
		l, err := probeLoad(a, p.ProbeTimeout)
		ra <- probe{l, err}
	}()
	go func() {
		l, err := probeLoad(b, p.ProbeTimeout)
		rb <- probe{l, err}
	}()
	pa, pb := <-ra, <-rb
	la, erra := pa.load, pa.err
	lb, errb := pb.load, pb.err
	switch {
	case erra != nil && errb != nil:
		return "", false
	case erra != nil:
		return b, true
	case errb != nil:
		return a, true
	case lb < la:
		return b, true
	default:
		return a, true
	}
}

func probeLoad(addr string, timeout time.Duration) (uint32, error) {
	resp, err := Do(addr, OpLoad, nil, timeout)
	if err != nil || len(resp) < 4 {
		return 0, err
	}
	return binary.LittleEndian.Uint32(resp), nil
}

// Stats counts blockserver activity.
type Stats struct {
	Compresses   atomic.Int64
	Decompresses atomic.Int64
	Outsourced   atomic.Int64
	Errors       atomic.Int64
}

// Blockserver serves Lepton conversions on a listener. It mirrors the
// production setup: a 16-core box where a few concurrent Lepton jobs
// saturate the machine, so conversions run through a bounded shared worker
// pool (MaxConcurrent) and jobs arriving beyond OutsourceThreshold are
// forwarded elsewhere when an Outsourcer is configured (§5.5).
//
// Connections are persistent: each serves a request loop until the client
// closes or a streaming failure forces a teardown, and all connections
// share one pooled core.Codec so steady-state conversions reuse model
// tables and coefficient planes instead of re-allocating them per request.
type Blockserver struct {
	// Outsource, when non-nil, receives compression jobs arriving while
	// more than OutsourceThreshold conversions are in flight.
	Outsource Outsourcer
	// OutsourceThreshold is the concurrent-conversion limit; the paper used
	// "more than three conversions at a time".
	OutsourceThreshold int
	// MaxConcurrent bounds conversions running at once across all
	// connections (the worker pool); 0 means DefaultMaxConcurrent.
	// Requests beyond the bound queue; InFlight counts queued and running
	// conversions alike so load probes and the outsourcing trigger see the
	// backlog.
	MaxConcurrent int
	// WriteTimeout bounds how long one response may take to reach the
	// client; 0 means DefaultWriteTimeout. Because conversions hold a
	// worker-pool slot through their response write, a client that stops
	// reading would otherwise pin a slot forever — the deadline converts
	// that into a connection teardown.
	WriteTimeout time.Duration
	// Codec is the pooled conversion pipeline shared by every connection;
	// nil gets a private codec on first Serve.
	Codec *core.Codec
	// EncodeOptions configures the codec.
	EncodeOptions core.EncodeOptions
	// Store, when non-nil, enables the store-backed chunk operations
	// (OpPutChunk*/OpGetChunk*).
	Store *store.Store
	// Logf, when set, receives diagnostics.
	Logf func(format string, args ...any)

	Stats Stats

	inFlight atomic.Int32
	sem      chan struct{}
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
}

// DefaultMaxConcurrent matches the paper's observation that a handful of
// conversions saturate a blockserver; beyond this they queue (or are
// outsourced when a pool is configured).
const DefaultMaxConcurrent = 4

// DefaultWriteTimeout is generous against slow networks while still
// bounding how long a stalled client can hold a worker-pool slot.
const DefaultWriteTimeout = 2 * time.Minute

// Serve accepts connections until the listener is closed.
func (b *Blockserver) Serve(ln net.Listener) error {
	b.ln = ln
	if b.OutsourceThreshold == 0 {
		b.OutsourceThreshold = 3
	}
	if b.Codec == nil {
		b.Codec = core.NewCodec()
	}
	if b.Store != nil && b.Store.Codec == nil {
		// Store-backed conversions share the server's pools.
		b.Store.Codec = b.Codec
	}
	if b.sem == nil {
		n := b.MaxConcurrent
		if n <= 0 {
			n = DefaultMaxConcurrent
		}
		b.sem = make(chan struct{}, n)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if b.closed.Load() {
				return nil
			}
			return err
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handle(conn)
		}()
	}
}

// acquire admits one conversion into the shared worker pool. InFlight is
// incremented before the semaphore so queued work is visible to load
// probes and the outsourcing trigger.
func (b *Blockserver) acquire() {
	b.inFlight.Add(1)
	b.sem <- struct{}{}
}

func (b *Blockserver) release() {
	<-b.sem
	b.inFlight.Add(-1)
}

// Close stops the listener and waits for in-flight requests.
func (b *Blockserver) Close() error {
	b.closed.Store(true)
	var err error
	if b.ln != nil {
		err = b.ln.Close()
	}
	b.wg.Wait()
	return err
}

// InFlight returns the number of conversions currently running.
func (b *Blockserver) InFlight() int { return int(b.inFlight.Load()) }

func (b *Blockserver) logf(format string, args ...any) {
	if b.Logf != nil {
		b.Logf(format, args...)
	}
}

// handle runs one connection's request loop: requests are served in order
// until the peer closes (or half-closes, as the one-shot protocol does) or
// a mid-stream failure makes the framing unrecoverable.
func (b *Blockserver) handle(conn net.Conn) {
	defer conn.Close()
	for {
		op, payload, err := ReadRequest(conn)
		if err != nil {
			// EOF here is the normal end of a persistent connection.
			if !errors.Is(err, io.EOF) {
				b.Stats.Errors.Add(1)
			}
			return
		}
		if !b.serveOne(conn, op, payload) {
			return
		}
	}
}

// serveOne dispatches one request and reports whether the connection can
// serve another (false after a write failure or a decode error discovered
// mid-stream, when the only correct signal left is closing the
// connection).
func (b *Blockserver) serveOne(conn net.Conn, op byte, payload []byte) bool {
	// Bound the whole serve+respond; a client that stops reading must not
	// pin a worker-pool slot past the deadline.
	wt := b.WriteTimeout
	if wt == 0 {
		wt = DefaultWriteTimeout
	}
	if wt > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(wt))
	}
	switch op {
	case OpLoad:
		var resp [4]byte
		binary.LittleEndian.PutUint32(resp[:], uint32(b.inFlight.Load()))
		return WriteResponse(conn, StatusOK, resp[:]) == nil
	case OpCompress:
		// Outsource when oversubscribed (§5.5): a blockserver handling
		// many cheap requests can be randomly assigned too many Lepton
		// conversions at once.
		if b.Outsource != nil && int(b.inFlight.Load()) >= b.OutsourceThreshold {
			if addr, ok := b.Outsource.Target(); ok {
				resp, err := Do(addr, OpCompress, payload, 30*time.Second)
				if err == nil {
					b.Stats.Outsourced.Add(1)
					return WriteResponse(conn, StatusOK, resp) == nil
				}
				b.logf("outsource to %s failed: %v; handling locally", addr, err)
			}
		}
		b.acquire()
		defer b.release()
		b.Stats.Compresses.Add(1)
		res, err := b.Codec.Encode(payload, withVerify(b.EncodeOptions))
		if err != nil {
			// Unsupported inputs are service-level successes with a
			// fallback marker: production stored them with Deflate.
			if jpeg.ReasonOf(err) != jpeg.ReasonNone {
				raw, merr := rawContainer(payload)
				if merr == nil {
					return WriteResponse(conn, StatusOK, raw) == nil
				}
			}
			b.Stats.Errors.Add(1)
			return WriteResponse(conn, StatusError, []byte(err.Error())) == nil
		}
		return WriteResponse(conn, StatusOK, res.Compressed) == nil
	case OpDecompress:
		b.acquire()
		defer b.release()
		b.Stats.Decompresses.Add(1)
		// The container header records the exact output size, so the
		// response can be framed up front and the reconstruction streamed
		// into the connection segment by segment (§3.4) instead of being
		// buffered whole. The frame header is written lazily, on the
		// decoder's first output byte: DecodeTo validates everything —
		// container structure, stored JPEG header, budgets, sizes —
		// before producing output, so malformed containers come back as
		// ordinary StatusError responses; once payload bytes flow, only
		// genuine mid-stream corruption can force a teardown.
		size, err := core.ContainerOutputSize(payload)
		if err != nil {
			b.Stats.Errors.Add(1)
			return WriteResponse(conn, StatusError, []byte(err.Error())) == nil
		}
		lw := &lazyFrameWriter{conn: conn, size: size}
		if err := b.Codec.DecodeTo(lw, payload, 0); err != nil {
			b.Stats.Errors.Add(1)
			if !lw.started {
				return WriteResponse(conn, StatusError, []byte(err.Error())) == nil
			}
			// The header promised size bytes; a shortfall can only be
			// signaled by tearing the connection down.
			b.logf("decompress stream failed: %v", err)
			return false
		}
		if !lw.started {
			// Zero-length output (empty raw chunk): frame it now.
			return WriteResponseHeader(conn, StatusOK, size) == nil
		}
		return true
	case OpPutChunkRaw, OpPutChunkCompressed, OpGetChunkRaw, OpGetChunkCompressed:
		return b.handleStoreOp(conn, op, payload)
	default:
		b.Stats.Errors.Add(1)
		return WriteResponse(conn, StatusError, []byte("unknown op")) == nil
	}
}

func (b *Blockserver) handleStoreOp(conn net.Conn, op byte, payload []byte) bool {
	if b.Store == nil {
		b.Stats.Errors.Add(1)
		return WriteResponse(conn, StatusError, []byte("no store configured")) == nil
	}
	fail := func(err error) bool {
		b.Stats.Errors.Add(1)
		return WriteResponse(conn, StatusError, []byte(err.Error())) == nil
	}
	switch op {
	case OpPutChunkRaw:
		// Server-side codec: the production deployment's shape.
		b.acquire()
		defer b.release()
		b.Stats.Compresses.Add(1)
		ref, err := b.Store.PutFile(payload)
		if err != nil {
			return fail(err)
		}
		if len(ref.Chunks) != 1 {
			return fail(fmt.Errorf("chunk payload produced %d chunks", len(ref.Chunks)))
		}
		h := ref.Chunks[0]
		return WriteResponse(conn, StatusOK, h[:]) == nil
	case OpPutChunkCompressed:
		// Client-side codec (§7): only verification runs here.
		h, err := b.Store.PutCompressedChunk(payload)
		if err != nil {
			return fail(err)
		}
		return WriteResponse(conn, StatusOK, h[:]) == nil
	case OpGetChunkRaw:
		h, err := hashOf(payload)
		if err != nil {
			return fail(err)
		}
		b.acquire()
		defer b.release()
		b.Stats.Decompresses.Add(1)
		out, err := b.Store.GetChunk(h)
		if err != nil {
			return fail(err)
		}
		return WriteResponse(conn, StatusOK, out) == nil
	case OpGetChunkCompressed:
		h, err := hashOf(payload)
		if err != nil {
			return fail(err)
		}
		cb, ok := b.Store.GetCompressedChunk(h)
		if !ok {
			return fail(fmt.Errorf("unknown chunk"))
		}
		return WriteResponse(conn, StatusOK, cb) == nil
	}
	return true
}

// lazyFrameWriter defers the StatusOK response header until the decoder's
// first output byte, so every pre-stream validation failure can still be
// reported as a StatusError on an intact connection.
type lazyFrameWriter struct {
	conn    net.Conn
	size    uint32
	started bool
}

func (w *lazyFrameWriter) Write(p []byte) (int, error) {
	if !w.started {
		if err := WriteResponseHeader(w.conn, StatusOK, w.size); err != nil {
			return 0, err
		}
		w.started = true
	}
	return w.conn.Write(p)
}

func hashOf(payload []byte) (store.Hash, error) {
	var h store.Hash
	if len(payload) != len(h) {
		return h, fmt.Errorf("hash must be %d bytes, got %d", len(h), len(payload))
	}
	copy(h[:], payload)
	return h, nil
}

func withVerify(opt core.EncodeOptions) core.EncodeOptions {
	opt.VerifyRoundtrip = true
	return opt
}

func rawContainer(payload []byte) ([]byte, error) {
	c := &core.Container{Mode: core.ModeRaw, Raw: payload, OutputSize: uint32(len(payload))}
	return c.Marshal()
}

// ListenAndServe starts a blockserver on addr ("unix:<path>" or
// "tcp:<host:port>") and returns it with the bound address; callers own
// Close.
func ListenAndServe(addr string, b *Blockserver) (bound string, err error) {
	network, address, err := splitAddr(addr)
	if err != nil {
		return "", err
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return "", err
	}
	go func() {
		if err := b.Serve(ln); err != nil {
			log.Printf("blockserver: serve: %v", err)
		}
	}()
	if network == "unix" {
		return "unix:" + ln.Addr().String(), nil
	}
	return "tcp:" + ln.Addr().String(), nil
}
