package server_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"lepton/internal/core"
	"lepton/internal/server"
)

// bigJPEG returns an input whose conversion takes long enough to overlap
// with a drain or a disconnect (hundreds of milliseconds of encode) while
// staying inside the decode memory budget at any chroma subsampling the
// generator picks.
func bigJPEG(t testing.TB, seed int64) []byte {
	t.Helper()
	return gen(t, seed, 2048, 1536)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestShutdownDrainsInFlight is the drain acceptance test: a request in
// flight when Shutdown begins completes with a valid response, the drain
// reports clean, and new connections are refused afterwards.
func TestShutdownDrainsInFlight(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	data := bigJPEG(t, 400)

	type result struct {
		comp []byte
		err  error
	}
	res := make(chan result, 1)
	go func() {
		comp, err := server.Do(addr, server.OpCompress, data, 60*time.Second)
		res <- result{comp, err}
	}()
	waitFor(t, 10*time.Second, func() bool { return b.InFlight() > 0 }, "request to start")

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during drainable load: %v", err)
	}

	r := <-res
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	back, err := core.Decode(r.comp, 0)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("drained response undecodable: %v", err)
	}
	if got := b.Stats.Cancelled.Load(); got != 0 {
		t.Fatalf("clean drain cancelled %d conversions", got)
	}

	// New connections must be refused now, and a belt-and-braces Close
	// after a clean Shutdown must not report a phantom listener error.
	if _, err := server.Do(addr, server.OpLoad, nil, 2*time.Second); err == nil {
		t.Fatal("request succeeded after Shutdown")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close after clean Shutdown: %v", err)
	}
}

// TestShutdownClosesIdleConnections: a persistent client with no request in
// flight must not hold up the drain.
func TestShutdownClosesIdleConnections(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	cl, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Prove the connection is live, then leave it idle.
	if _, err := cl.Load(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown blocked on an idle connection: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain of an idle server took %v", elapsed)
	}
}

// TestShutdownExpiredCtxForceCancels: when the drain deadline passes, the
// in-flight conversion's context is cancelled, Shutdown returns the ctx
// error promptly, and the server records the cancellation.
func TestShutdownExpiredCtxForceCancels(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	data := bigJPEG(t, 401)

	errc := make(chan error, 1)
	go func() {
		_, err := server.Do(addr, server.OpCompress, data, 60*time.Second)
		errc <- err
	}()
	waitFor(t, 10*time.Second, func() bool { return b.InFlight() > 0 }, "request to start")

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	err := b.Shutdown(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown: err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("forced Shutdown took %v; stragglers not cancelled", elapsed)
	}
	if err := <-errc; err == nil {
		t.Fatal("force-cancelled request reported success")
	}
	if got := b.Stats.Cancelled.Load(); got == 0 {
		t.Fatal("forced drain recorded no cancelled conversions")
	}
}

// TestPeerDisconnectCancelsConversion: an abortive client disconnect (RST)
// mid-conversion cancels the request context so the worker slot frees
// before the encode would have finished.
func TestPeerDisconnectCancelsConversion(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	data := bigJPEG(t, 402)

	raw, err := net.Dial("tcp", strings.TrimPrefix(addr, "tcp:"))
	if err != nil {
		t.Fatal(err)
	}
	if err := server.WriteFrame(raw, server.OpCompress, data); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return b.InFlight() > 0 }, "request to start")

	// SetLinger(0) turns Close into an RST — the genuine "peer is gone"
	// signal (a plain FIN is indistinguishable from the one-shot protocol's
	// half-close and must not cancel).
	if err := raw.(*net.TCPConn).SetLinger(0); err != nil {
		t.Fatal(err)
	}
	if err := raw.Close(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 10*time.Second, func() bool { return b.Stats.Cancelled.Load() > 0 },
		"conversion to be cancelled after disconnect")
	waitFor(t, 10*time.Second, func() bool { return b.InFlight() == 0 }, "worker slot to free")
}

// TestRequestTimeoutCancelsConversion: a per-request deadline aborts the
// conversion with a StatusError and leaves the connection usable.
func TestRequestTimeoutCancelsConversion(t *testing.T) {
	b := &server.Blockserver{RequestTimeout: 5 * time.Millisecond}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	data := bigJPEG(t, 403)

	cl, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Compress(context.Background(), data); err == nil {
		t.Fatal("compress succeeded despite a 5ms request timeout")
	}
	if got := b.Stats.Cancelled.Load(); got == 0 {
		t.Fatal("request timeout recorded no cancellation")
	}
	// The error was reported in-band: the connection must still serve.
	if _, err := cl.Load(context.Background()); err != nil {
		t.Fatalf("connection unusable after request timeout: %v", err)
	}
}

// TestClientDoCtxCancelled: cancelling the client-side context interrupts
// the blocked exchange and closes the client.
func TestClientDoCtxCancelled(t *testing.T) {
	b := &server.Blockserver{}
	addr := startServer(t, "tcp:127.0.0.1:0", b)
	data := bigJPEG(t, 404)

	cl, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := cl.Compress(ctx, data); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled client exchange: err = %v, want context.Canceled", err)
	}
	// Mid-exchange cancellation means the stream position is unknown: the
	// client must refuse further use instead of desyncing.
	if _, err := cl.Load(context.Background()); err == nil {
		t.Fatal("client usable after mid-exchange cancellation")
	}
}

// TestServeAfterShutdownRefuses: Shutdown before Serve wins — Serve must
// not start accepting.
func TestServeAfterShutdownRefuses(t *testing.T) {
	b := &server.Blockserver{}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Serve(ln); err != nil {
		t.Fatalf("Serve after Shutdown: %v", err)
	}
	if _, err := server.Do("tcp:"+ln.Addr().String(), server.OpLoad, nil, time.Second); err == nil {
		t.Fatal("request served after Shutdown")
	}
}
