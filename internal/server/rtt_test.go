package server_test

import (
	"context"
	"testing"
	"time"

	"lepton/internal/server"
)

func TestRTTEstimatorInitialRTO(t *testing.T) {
	var e server.RTTEstimator
	if got := e.RTO(); got != time.Second {
		t.Fatalf("pre-sample RTO = %v, want 1s", got)
	}
	st := e.Stat()
	if st.Samples != 0 || st.SRTT != 0 {
		t.Fatalf("zero estimator has state: %+v", st)
	}
}

func TestRTTEstimatorJacobson(t *testing.T) {
	var e server.RTTEstimator
	e.Observe(100 * time.Millisecond)
	st := e.Stat()
	if st.SRTT != 100*time.Millisecond || st.RTTVar != 50*time.Millisecond {
		t.Fatalf("first sample seeding wrong: %+v", st)
	}
	// RFC 6298: RTO = srtt + 4*rttvar.
	if st.RTO != 300*time.Millisecond {
		t.Fatalf("RTO after first sample = %v, want 300ms", st.RTO)
	}
	// A long run of identical samples converges srtt to the sample and
	// rttvar toward zero, dragging the RTO down to the clamp floor.
	for i := 0; i < 100; i++ {
		e.Observe(100 * time.Millisecond)
	}
	st = e.Stat()
	if st.SRTT < 99*time.Millisecond || st.SRTT > 101*time.Millisecond {
		t.Fatalf("srtt did not converge: %v", st.SRTT)
	}
	if st.RTTVar > 5*time.Millisecond {
		t.Fatalf("rttvar did not decay: %v", st.RTTVar)
	}
	if st.Samples != 101 {
		t.Fatalf("samples = %d, want 101", st.Samples)
	}
}

func TestRTTEstimatorBackoffAndRecovery(t *testing.T) {
	e := server.NewRTTEstimator(20*time.Millisecond, 2*time.Second)
	e.Observe(50 * time.Millisecond)
	base := e.RTO()
	e.Backoff()
	if got := e.RTO(); got != 2*base {
		t.Fatalf("one backoff: RTO = %v, want %v", got, 2*base)
	}
	// Repeated backoff saturates at the configured max.
	for i := 0; i < 10; i++ {
		e.Backoff()
	}
	if got := e.RTO(); got != 2*time.Second {
		t.Fatalf("saturated RTO = %v, want clamp max 2s", got)
	}
	// One fresh sample discards the backoff: the peer answers again.
	e.Observe(50 * time.Millisecond)
	if got := e.RTO(); got >= 2*time.Second {
		t.Fatalf("sample did not reset backoff: RTO = %v", got)
	}
}

func TestRTTEstimatorClampFloor(t *testing.T) {
	var e server.RTTEstimator
	for i := 0; i < 50; i++ {
		e.Observe(10 * time.Microsecond) // loopback-fast
	}
	if got := e.RTO(); got < server.DefaultRTOMin {
		t.Fatalf("RTO %v under the floor %v", got, server.DefaultRTOMin)
	}
}

// TestFleetExportsPacerInputs covers the operator-visibility satellite: the
// per-node probe RTT estimate, eviction count, and down flag must appear in
// StatsSnapshot, and NodeRTT must answer for a known address.
func TestFleetExportsPacerInputs(t *testing.T) {
	nodes := startTestFleet(t, 2)
	f := newTestFleet(t, nodes, &server.FleetOptions{HealthInterval: -1})

	ctx := context.Background()
	for _, nd := range nodes {
		if _, err := f.ProbeNode(ctx, nd.addr); err != nil {
			t.Fatalf("probe %s: %v", nd.addr, err)
		}
	}

	st, ok := f.NodeRTT(nodes[0].addr)
	if !ok || st.Samples == 0 {
		t.Fatalf("NodeRTT after probe: ok=%v stat=%+v", ok, st)
	}
	if _, ok := f.NodeRTT("tcp:10.0.0.1:1"); ok {
		t.Fatal("NodeRTT answered for an unknown address")
	}

	snap := f.StatsSnapshot()
	for _, key := range []string{
		"node0_srtt_us", "node0_rto_us", "node0_rtt_samples",
		"node0_evictions", "node0_down", "node1_rtt_samples",
	} {
		if _, present := snap[key]; !present {
			t.Fatalf("StatsSnapshot missing %q: %v", key, snap)
		}
	}
	if snap["node0_rtt_samples"] == 0 {
		t.Fatalf("node0 probe RTT not recorded: %v", snap)
	}
	if snap["node0_down"] != 0 {
		t.Fatalf("healthy node reported down: %v", snap)
	}

	// Kill node 1 and address it directly so the dial failure evicts it;
	// the per-node eviction counter and down flag must follow.
	nodes[1].kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _ = f.DoNode(ctx, nodes[1].addr, server.OpCompress, []byte("x"))
		snap = f.StatsSnapshot()
		if snap["node1_evictions"] > 0 && snap["node1_down"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed node never showed in stats: %v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
