package server_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lepton/internal/diskstore"
	"lepton/internal/server"
	"lepton/internal/store"
)

// The disk-backed extension of the PR-5 fault-injection harness: nodes
// whose chunk stores are log-structured segment files on disk, so kill()
// followed by restart() is a machine crashing and rebooting against its
// data — the durability story the in-memory harness could not tell.

func newDiskNodeStore(t *testing.T, dir string, sync time.Duration) *store.Store {
	t.Helper()
	ds, err := diskstore.Open(dir, diskstore.Options{
		SyncInterval:    sync,
		CompactInterval: -1, // deterministic tests: no background rewrites
	})
	if err != nil {
		t.Fatalf("diskstore.Open(%s): %v", dir, err)
	}
	st := store.NewWithBackend(ds)
	st.ChunkSize = 32 << 10
	return st
}

// startDiskTestFleet is startTestFleet with durable stores: each node gets
// its own data dir that survives kill()/restart().
func startDiskTestFleet(t *testing.T, n int, sync time.Duration) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("node%d", i))
		nd := &testNode{
			addr:         "tcp:" + ln.Addr().String(),
			st:           newDiskNodeStore(t, dir, sync),
			dataDir:      dir,
			syncInterval: sync,
		}
		nd.start(ln)
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.mu.Lock()
			b, alive := nd.b, nd.alive
			nd.mu.Unlock()
			if alive {
				_ = b.Close()
			}
			_ = nd.st.Close()
		}
	})
	return nodes
}

// nodeHolds checks a node's store directly (no fleet read, no counters).
func nodeHolds(nd *testNode, h store.Hash) bool {
	_, ok := nd.st.GetCompressedChunk(h)
	return ok
}

// listNodeChunks pages a node's full listing through the wire protocol.
func listNodeChunks(t *testing.T, f *server.Fleet, addr string, pageSize int) map[store.Hash]bool {
	t.Helper()
	out := map[store.Hash]bool{}
	var after store.Hash
	for {
		page, err := f.ListChunks(context.Background(), addr, after, pageSize)
		if err != nil {
			t.Fatalf("ListChunks(%s): %v", addr, err)
		}
		if len(page) == 0 {
			return out
		}
		for _, h := range page {
			out[h] = true
		}
		after = page[len(page)-1]
	}
}

func refChunks(refs []store.FileRef) []store.Hash {
	seen := map[store.Hash]bool{}
	var out []store.Hash
	for _, ref := range refs {
		for _, h := range ref.Chunks {
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	return out
}

// TestFleetKillRestartDiskZeroLoss is the crash-recovery acceptance test:
// a disk-backed node killed mid-workload and restarted against its data
// dir serves every chunk it acknowledged — proven by wiping the OTHER
// replica and reading everything back through the fleet, so the restarted
// node's disk is the only possible source of the bytes.
func TestFleetKillRestartDiskZeroLoss(t *testing.T) {
	// Group commit (SyncInterval 0): a put is acknowledged only once an
	// fsync covers it — the durability contract under test.
	nodes := startDiskTestFleet(t, 2, 0)
	f := newTestFleet(t, nodes, nil)
	r, err := store.NewRemote(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.ChunkSize = 8 << 10
	ctx := context.Background()

	// Phase A: a settled workload, fully replicated (R = 2 over 2 nodes,
	// zero replica errors means both replicas acknowledged every chunk).
	corpus := fleetCorpus(t, 6)
	var refsA []store.FileRef
	for _, data := range corpus {
		ref, err := r.PutFile(ctx, data)
		if err != nil {
			t.Fatalf("phase A put: %v", err)
		}
		refsA = append(refsA, ref)
	}
	if c := r.Counters(); c.ReplicaErrors != 0 {
		t.Fatalf("phase A not fully replicated: %+v", c)
	}
	chunksA := refChunks(refsA)

	// Phase B: keep putting while the node dies mid-workload. Puts still
	// succeed through the surviving replica; requests racing the kill may
	// fail on the dying node, which is the point.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				data := gen(t, int64(900+w*10+i), 128, 96)
				_, _ = r.PutFile(ctx, data)
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	nodes[1].kill()
	wg.Wait()

	// Reboot against the same data dir; the health loop re-admits it.
	nodes[1].restart(t)
	waitFor(t, 5*time.Second, func() bool { return !f.NodeDown(nodes[1].addr) }, "node 1 readmission")

	// Replay must have rebuilt everything phase A acknowledged — verified
	// over the wire via the OpListChunks scan.
	listed := listNodeChunks(t, f, nodes[1].addr, 7)
	for _, h := range chunksA {
		if !listed[h] {
			t.Fatalf("restarted node lost acknowledged chunk %x", h[:8])
		}
	}

	// Warm restart: the node's disk is intact, so the re-announce sweep
	// finds nothing to move for the chunks it holds.
	held, repaired, err := r.Reannounce(ctx, nodes[1].addr)
	if err != nil {
		t.Fatalf("Reannounce: %v", err)
	}
	if held < len(chunksA) {
		t.Fatalf("reannounce saw %d chunks, want >= %d", held, len(chunksA))
	}
	if repaired != 0 {
		t.Fatalf("warm restart repaired %d chunks, want 0 (nothing was lost)", repaired)
	}

	// The proof: wipe the OTHER node (fresh empty data dir) and read every
	// phase-A file back. The restarted node's disk is now the only place
	// the bytes exist; read-repair may re-fill node 0, but the source of
	// every byte is node 1's replayed segments.
	nodes[0].kill()
	nodes[0].dataDir = filepath.Join(t.TempDir(), "node0-wiped")
	nodes[0].restart(t)
	waitFor(t, 5*time.Second, func() bool { return !f.NodeDown(nodes[0].addr) }, "node 0 readmission")
	if got := nodes[0].st.Len(); got != 0 {
		t.Fatalf("wiped node reports %d chunks", got)
	}

	for i, ref := range refsA {
		back, err := r.GetFile(ctx, ref)
		if err != nil {
			t.Fatalf("file %d unreadable after wipe: %v", i, err)
		}
		if !bytes.Equal(back, corpus[i]) {
			t.Fatalf("file %d not byte-identical after crash recovery", i)
		}
	}
	if c := r.Counters(); c.CorruptReplicas != 0 {
		t.Fatalf("corrupt replicas served during recovery: %+v", c)
	}
}

// TestFleetAntiEntropyRestoresReplication is the proactive-healing
// acceptance test: after a node is permanently lost and removed from the
// ring, the background sweep alone — no client reads — restores every
// affected chunk to replication R on the survivors.
func TestFleetAntiEntropyRestoresReplication(t *testing.T) {
	nodes := startDiskTestFleet(t, 4, -1)
	f := newTestFleet(t, nodes, nil)
	r, err := store.NewRemote(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.ChunkSize = 8 << 10
	ctx := context.Background()

	corpus := fleetCorpus(t, 4)
	var refs []store.FileRef
	for _, data := range corpus {
		ref, err := r.PutFile(ctx, data)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		refs = append(refs, ref)
	}
	if c := r.Counters(); c.ReplicaErrors != 0 {
		t.Fatalf("workload not fully replicated: %+v", c)
	}
	chunks := refChunks(refs)

	// Permanent loss: the machine is gone and operations removes it. Pick
	// the victim as a node placement actually uses, so at least one chunk
	// is guaranteed to drop below R and need proactive healing.
	allByAddr := map[string]*testNode{}
	for _, nd := range nodes {
		allByAddr[nd.addr] = nd
	}
	victim := allByAddr[r.Placement(chunks[0])[0]]
	victim.kill()
	r.RemoveNode(victim.addr)
	var survivors []*testNode
	for _, nd := range nodes {
		if nd != victim {
			survivors = append(survivors, nd)
		}
	}
	// Sanity: the new placement of chunk 0 includes a replica that does
	// not hold it yet — the hole the sweep must fill.
	hole := false
	for _, addr := range r.Placement(chunks[0]) {
		if !nodeHolds(allByAddr[addr], chunks[0]) {
			hole = true
		}
	}
	if !hole {
		t.Fatal("victim removal left no replication hole; test setup broken")
	}

	getsBefore := r.Counters().Gets
	stop := r.StartAntiEntropy(25 * time.Millisecond)
	defer stop()

	// Every chunk must converge to its (new) full placement on the
	// survivors, checked against their stores directly — no fleet reads.
	byAddr := map[string]*testNode{}
	for _, nd := range survivors {
		byAddr[nd.addr] = nd
	}
	// The repair counter is part of the predicate: a copy lands on the
	// target before the sweeping client increments AntiEntropyRepairs, so
	// checking the counter only after observing convergence races.
	waitFor(t, 15*time.Second, func() bool {
		if r.Counters().AntiEntropyRepairs == 0 {
			return false
		}
		for _, h := range chunks {
			for _, addr := range r.Placement(h) {
				if !nodeHolds(byAddr[addr], h) {
					return false
				}
			}
		}
		return true
	}, "anti-entropy to restore replication R")

	c := r.Counters()
	if c.Gets != getsBefore {
		t.Fatalf("healing involved %d client reads, want 0", c.Gets-getsBefore)
	}
	if c.ReadRepairs != 0 {
		t.Fatalf("read-repair fired without reads: %+v", c)
	}

	// And the data is actually servable afterwards.
	for i, ref := range refs {
		back, err := r.GetFile(ctx, ref)
		if err != nil || !bytes.Equal(back, corpus[i]) {
			t.Fatalf("file %d wrong after healing (err=%v)", i, err)
		}
	}
}

// TestOpListChunksPaging exercises the wire-level ranged scan: small pages
// walk the full set exactly once, in ascending order, and a malformed
// request is rejected in-band without poisoning the connection.
func TestOpListChunksPaging(t *testing.T) {
	nodes := startTestFleet(t, 1)
	f := newTestFleet(t, nodes, nil)
	r, err := store.NewRemote(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.ChunkSize = 8 << 10
	ctx := context.Background()

	ref, err := r.PutFile(ctx, gen(t, 777, 512, 384))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Chunks) < 3 {
		t.Fatalf("corpus too small: %d chunks", len(ref.Chunks))
	}

	listed := listNodeChunks(t, f, nodes[0].addr, 2)
	if len(listed) != nodes[0].st.Len() {
		t.Fatalf("paged %d chunks, store holds %d", len(listed), nodes[0].st.Len())
	}
	for _, h := range ref.Chunks {
		if !listed[h] {
			t.Fatalf("chunk %x not listed", h[:8])
		}
	}

	// Pages are ascending and respect the cursor.
	var after store.Hash
	page, err := f.ListChunks(ctx, nodes[0].addr, after, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(page); i++ {
		if bytes.Compare(page[i-1][:], page[i][:]) >= 0 {
			t.Fatal("page not strictly ascending")
		}
	}

	// Malformed request: in-band error, connection survives.
	if _, err := f.DoNode(ctx, nodes[0].addr, server.OpListChunks, []byte("short")); err == nil {
		t.Fatal("malformed list request accepted")
	}
	if _, err := f.ListChunks(ctx, nodes[0].addr, after, 3); err != nil {
		t.Fatalf("connection poisoned by malformed request: %v", err)
	}
}
