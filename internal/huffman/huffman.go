// Package huffman implements the canonical Huffman codes used by baseline
// JPEG: decoder tables built from a DHT-style specification (code counts per
// length plus symbol list), matching encoder tables, and optimal table
// construction from symbol frequencies (used by the JPEGrescan-style
// baseline).
//
// Decoding is peek-table driven: a single 2^8-entry lookup maps the next
// eight lookahead bits to (symbol, code length) for every code of length
// <= 8 — which covers the overwhelming majority of symbols in real DHT
// tables — and the canonical bit-by-bit walk remains as the slow path for
// longer codes and for lookaheads the bit reader cannot serve cheaply
// (stuffed 0xFF bytes, markers, end of input).
package huffman

import (
	"errors"
	"fmt"

	"lepton/internal/bitio"
)

// MaxCodeLength is the longest Huffman code permitted by baseline JPEG.
const MaxCodeLength = 16

// Spec is the DHT wire representation of a Huffman table: the number of
// codes of each length 1..16 and the symbol values in code order.
type Spec struct {
	Counts  [MaxCodeLength]uint8
	Symbols []byte
}

// Validate checks the structural validity of a Spec: the code space must not
// be oversubscribed and the symbol list must match the counts. Baseline JPEG
// Huffman tables for scans must also leave one codepoint free (the all-ones
// prefix rule), but many real encoders violate that, so it is not enforced.
func (s *Spec) Validate() error {
	total := 0
	for _, c := range s.Counts {
		total += int(c)
	}
	code := 0
	for l := 1; l <= MaxCodeLength; l++ {
		code += int(s.Counts[l-1])
		if code > 1<<l {
			return fmt.Errorf("huffman: oversubscribed code space at length %d", l)
		}
		code <<= 1
	}
	if total != len(s.Symbols) {
		return fmt.Errorf("huffman: counts sum %d != %d symbols", total, len(s.Symbols))
	}
	if total == 0 {
		return errors.New("huffman: empty table")
	}
	if total > 256 {
		return fmt.Errorf("huffman: too many symbols: %d", total)
	}
	return nil
}

// Code is a canonical Huffman codeword.
type Code struct {
	Bits uint16
	Len  uint8
}

// Encoder maps symbols to codewords.
type Encoder struct {
	codes [256]Code
}

// Decoder decodes codewords bit by bit using a fast 8-bit first-level lookup
// table with a slow path for longer codes.
type Decoder struct {
	// fast[b] holds, for an 8-bit lookahead b, the decoded symbol and code
	// length if the code is <= 8 bits; length 0 means slow path.
	fast [256]struct {
		sym byte
		len uint8
	}
	// Canonical decoding state for the slow path.
	minCode  [MaxCodeLength + 1]int32
	maxCode  [MaxCodeLength + 1]int32 // -1 if no codes of this length
	valPtr   [MaxCodeLength + 1]int32
	symbols  []byte
	maxLen   uint8
	numCodes int
}

// NewEncoder builds encoder codewords from a validated Spec.
func NewEncoder(s *Spec) (*Encoder, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e := &Encoder{}
	code := uint16(0)
	k := 0
	for l := 1; l <= MaxCodeLength; l++ {
		for i := 0; i < int(s.Counts[l-1]); i++ {
			e.codes[s.Symbols[k]] = Code{Bits: code, Len: uint8(l)}
			code++
			k++
		}
		code <<= 1
	}
	return e, nil
}

// Lookup returns the codeword for sym. A zero-length code means the symbol
// is not in the table.
func (e *Encoder) Lookup(sym byte) Code { return e.codes[sym] }

// Encode writes the codeword for sym to w. It returns an error if sym has no
// code in the table.
func (e *Encoder) Encode(w *bitio.Writer, sym byte) error {
	c := e.codes[sym]
	if c.Len == 0 {
		return fmt.Errorf("huffman: symbol %#02x has no code", sym)
	}
	w.WriteBits(uint32(c.Bits), c.Len)
	return nil
}

// NewDecoder builds decoding tables from a validated Spec.
func NewDecoder(s *Spec) (*Decoder, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d := &Decoder{symbols: append([]byte(nil), s.Symbols...)}
	code := int32(0)
	k := int32(0)
	for l := 1; l <= MaxCodeLength; l++ {
		d.valPtr[l] = k
		d.minCode[l] = code
		if s.Counts[l-1] == 0 {
			d.maxCode[l] = -1
		} else {
			code += int32(s.Counts[l-1])
			k += int32(s.Counts[l-1])
			d.maxCode[l] = code - 1
			d.maxLen = uint8(l)
		}
		code <<= 1
	}
	d.numCodes = int(k)
	// Fast table for codes of length <= 8.
	code = 0
	k = 0
	for l := 1; l <= 8; l++ {
		for i := 0; i < int(s.Counts[l-1]); i++ {
			sym := s.Symbols[k]
			lo := code << (8 - l)
			hi := lo + 1<<(8-l)
			for b := lo; b < hi; b++ {
				d.fast[b].sym = sym
				d.fast[b].len = uint8(l)
			}
			code++
			k++
		}
		code <<= 1
	}
	return d, nil
}

// PeekSym looks up the symbol for an 8-bit lookahead b. A zero returned
// length means the code is longer than eight bits (or b is not a valid
// prefix) and the caller must take the canonical slow path. Callers fuse
// this with bitio.Reader.PeekBits to decode symbol and value bits from one
// lookahead word.
func (d *Decoder) PeekSym(b uint8) (sym byte, n uint8) {
	f := &d.fast[b]
	return f.sym, f.len
}

// Decode reads one symbol from r: a single peek-table lookup when the reader
// can serve an 8-bit lookahead, the canonical bit-by-bit walk otherwise.
func (d *Decoder) Decode(r *bitio.Reader) (byte, error) {
	if b, ok := r.PeekBits(8); ok {
		if f := &d.fast[b]; f.len != 0 {
			r.SkipBits(f.len)
			return f.sym, nil
		}
	}
	return d.decodeSlow(r)
}

// decodeSlow is the canonical bit-by-bit decode, used for codes longer than
// the peek table covers and wherever the lookahead crosses stuffing bytes,
// markers, or end of input — its error handling is authoritative.
func (d *Decoder) decodeSlow(r *bitio.Reader) (byte, error) {
	code := int32(0)
	for l := 1; l <= int(d.maxLen); l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(b)
		if d.maxCode[l] >= 0 && code <= d.maxCode[l] {
			return d.symbols[d.valPtr[l]+code-d.minCode[l]], nil
		}
	}
	return 0, errors.New("huffman: invalid code")
}

// NumCodes returns the number of symbols in the table.
func (d *Decoder) NumCodes() int { return d.numCodes }

// BuildOptimal constructs a length-limited canonical Huffman Spec from symbol
// frequencies, following the JPEG Annex K.2 procedure (including the
// reserved all-ones codepoint, which is why a dummy frequency-1 symbol 256 is
// added). Symbols with zero frequency are omitted. This is the core of the
// JPEGrescan/MozJPEG-style "optimize Huffman tables" baseline.
func BuildOptimal(freq *[256]int64) (*Spec, error) {
	var f [257]int64
	for i, v := range freq {
		if v < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", i)
		}
		f[i] = v
	}
	f[256] = 1 // reserve one codepoint so no real symbol is all ones
	var codesize [257]int
	var others [257]int
	for i := range others {
		others[i] = -1
	}
	// Repeatedly merge the two least-frequent nonzero entries. Ties prefer
	// the larger index so the reserved symbol 256 sinks to the deepest leaf.
	for {
		v1 := -1
		for i := 0; i <= 256; i++ {
			if f[i] != 0 && (v1 < 0 || f[i] <= f[v1]) {
				v1 = i
			}
		}
		v2 := -1
		for i := 0; i <= 256; i++ {
			if i != v1 && f[i] != 0 && (v2 < 0 || f[i] <= f[v2]) {
				v2 = i
			}
		}
		if v2 < 0 {
			break // one tree left
		}
		if v2 > v1 {
			v1, v2 = v2, v1
		}
		f[v1] += f[v2]
		f[v2] = 0
		codesize[v1]++
		for others[v1] >= 0 {
			v1 = others[v1]
			codesize[v1]++
		}
		others[v1] = v2
		codesize[v2]++
		for others[v2] >= 0 {
			v2 = others[v2]
			codesize[v2]++
		}
	}
	var bits [64]int // count of codes per length, generous headroom
	maxLen := 0
	for i := 0; i <= 256; i++ {
		if codesize[i] > 0 {
			if codesize[i] >= len(bits) {
				return nil, errors.New("huffman: pathological code length")
			}
			bits[codesize[i]]++
			if codesize[i] > maxLen {
				maxLen = codesize[i]
			}
		}
	}
	// Limit code lengths to 16 (Annex K.3 adjust_bits).
	for l := maxLen; l > MaxCodeLength; l-- {
		for bits[l] > 0 {
			j := l - 2
			for bits[j] == 0 {
				j--
			}
			bits[l] -= 2
			bits[l-1]++
			bits[j+1] += 2
			bits[j]--
		}
	}
	// Remove the reserved codepoint from the longest used length.
	for l := MaxCodeLength; l >= 1; l-- {
		if bits[l] > 0 {
			bits[l]--
			break
		}
	}
	// Sort symbols by (code length, symbol value).
	spec := &Spec{}
	for l := 1; l <= MaxCodeLength; l++ {
		spec.Counts[l-1] = uint8(bits[l])
	}
	for l := 1; l <= MaxCodeLength; l++ {
		for s := 0; s < 256; s++ {
			if codesize[s] == l {
				spec.Symbols = append(spec.Symbols, byte(s))
			}
		}
	}
	// The reserved symbol 256 is dropped; recount lengths to stay consistent
	// after the K.3 adjustment moved codes between lengths.
	total := 0
	for _, c := range spec.Counts {
		total += int(c)
	}
	if total != len(spec.Symbols) {
		// The adjustment redistributed lengths; rebuild the symbol order by
		// assigning the shortest codes to the most frequent symbols.
		type fs struct {
			sym  int
			freq int64
		}
		var syms []fs
		for s := 0; s < 256; s++ {
			if freq[s] > 0 {
				syms = append(syms, fs{s, freq[s]})
			}
		}
		// Insertion sort by descending frequency, then ascending symbol.
		for i := 1; i < len(syms); i++ {
			for j := i; j > 0 && (syms[j].freq > syms[j-1].freq ||
				(syms[j].freq == syms[j-1].freq && syms[j].sym < syms[j-1].sym)); j-- {
				syms[j], syms[j-1] = syms[j-1], syms[j]
			}
		}
		if total != len(syms) {
			return nil, fmt.Errorf("huffman: internal length mismatch %d != %d", total, len(syms))
		}
		spec.Symbols = spec.Symbols[:0]
		for _, s := range syms {
			spec.Symbols = append(spec.Symbols, byte(s.sym))
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
