package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lepton/internal/bitio"
)

// stdDCLuminance is the Annex K.3.1 typical DC luminance table.
var stdDCLuminance = Spec{
	Counts:  [16]uint8{0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
	Symbols: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
}

// stdACLuminance is the Annex K.3.2 typical AC luminance table.
var stdACLuminance = Spec{
	Counts: [16]uint8{0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D},
	Symbols: []byte{
		0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
		0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
		0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
		0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0,
		0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16,
		0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
		0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
		0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
		0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
		0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
		0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
		0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
		0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
		0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
		0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
		0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5,
		0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4,
		0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
		0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea,
		0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
		0xf9, 0xfa,
	},
}

func TestValidateStdTables(t *testing.T) {
	if err := stdDCLuminance.Validate(); err != nil {
		t.Fatalf("DC table: %v", err)
	}
	if err := stdACLuminance.Validate(); err != nil {
		t.Fatalf("AC table: %v", err)
	}
}

func TestValidateRejectsOversubscribed(t *testing.T) {
	bad := Spec{Counts: [16]uint8{3}, Symbols: []byte{1, 2, 3}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected oversubscription error")
	}
	mismatch := Spec{Counts: [16]uint8{0, 2}, Symbols: []byte{1}}
	if err := mismatch.Validate(); err == nil {
		t.Fatal("expected count/symbol mismatch error")
	}
	empty := Spec{}
	if err := empty.Validate(); err == nil {
		t.Fatal("expected empty table error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, spec := range []*Spec{&stdDCLuminance, &stdACLuminance} {
		enc, err := NewEncoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		w := bitio.NewWriter()
		var syms []byte
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			s := spec.Symbols[rng.Intn(len(spec.Symbols))]
			syms = append(syms, s)
			if err := enc.Encode(w, s); err != nil {
				t.Fatal(err)
			}
		}
		w.AlignPad(1)
		r := bitio.NewReader(w.Bytes())
		for i, want := range syms {
			got, err := dec.Decode(r)
			if err != nil {
				t.Fatalf("decode %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("symbol %d: got %#x want %#x", i, got, want)
			}
		}
	}
}

func TestEncodeUnknownSymbol(t *testing.T) {
	enc, _ := NewEncoder(&stdDCLuminance)
	w := bitio.NewWriter()
	if err := enc.Encode(w, 0x55); err == nil {
		t.Fatal("expected error for symbol not in table")
	}
}

func TestPrefixFree(t *testing.T) {
	enc, _ := NewEncoder(&stdACLuminance)
	var codes []Code
	for _, s := range stdACLuminance.Symbols {
		codes = append(codes, enc.Lookup(s))
	}
	for i, a := range codes {
		for j, b := range codes {
			if i == j {
				continue
			}
			if a.Len <= b.Len {
				if b.Bits>>(b.Len-a.Len) == a.Bits {
					t.Fatalf("code %d is a prefix of code %d", i, j)
				}
			}
		}
	}
}

func TestBuildOptimal(t *testing.T) {
	var freq [256]int64
	freq[0] = 1000
	freq[1] = 500
	freq[2] = 250
	freq[3] = 125
	freq[4] = 5
	freq[255] = 1
	spec, err := BuildOptimal(&freq)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	// More frequent symbols must not get longer codes.
	if enc.Lookup(0).Len > enc.Lookup(4).Len {
		t.Fatalf("frequent symbol got longer code: %d > %d",
			enc.Lookup(0).Len, enc.Lookup(4).Len)
	}
	// Every nonzero-frequency symbol must be codeable, and roundtrip.
	dec, err := NewDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter()
	input := []byte{0, 1, 2, 3, 4, 255, 0, 0, 1}
	for _, s := range input {
		if err := enc.Encode(w, s); err != nil {
			t.Fatalf("symbol %d: %v", s, err)
		}
	}
	w.AlignPad(1)
	r := bitio.NewReader(w.Bytes())
	for i, want := range input {
		got, err := dec.Decode(r)
		if err != nil || got != want {
			t.Fatalf("roundtrip %d: got %v,%v want %v", i, got, err, want)
		}
	}
}

func TestBuildOptimalSkewed(t *testing.T) {
	// Extremely skewed frequencies force the length-limiting path.
	var freq [256]int64
	v := int64(1)
	for i := 0; i < 40; i++ {
		freq[i] = v
		v *= 2
		if v > 1<<40 {
			v = 1 << 40
		}
	}
	spec, err := BuildOptimal(&freq)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		c := enc.Lookup(byte(i))
		if c.Len == 0 || c.Len > MaxCodeLength {
			t.Fatalf("symbol %d: code length %d", i, c.Len)
		}
	}
}

func TestBuildOptimalQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		var freq [256]int64
		n := 0
		for i, v := range raw {
			if i >= 256 {
				break
			}
			freq[i] = int64(v)
			if v > 0 {
				n++
			}
		}
		if n < 2 {
			return true
		}
		spec, err := BuildOptimal(&freq)
		if err != nil {
			return false
		}
		if err := spec.Validate(); err != nil {
			return false
		}
		enc, err := NewEncoder(spec)
		if err != nil {
			return false
		}
		for i := 0; i < 256; i++ {
			if freq[i] > 0 && enc.Lookup(byte(i)).Len == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInvalidCode(t *testing.T) {
	// A table that uses only codes 0 and 10 (lengths 1 and 2): the input
	// 11... is invalid.
	spec := Spec{Counts: [16]uint8{1, 1}, Symbols: []byte{7, 9}}
	dec, err := NewDecoder(&spec)
	if err != nil {
		t.Fatal(err)
	}
	r := bitio.NewReader([]byte{0b11111110})
	if _, err := dec.Decode(r); err == nil {
		t.Fatal("expected invalid code error")
	}
}

// TestDecodeFastMatchesSlow streams random symbols (biased toward the long
// tail of the AC table so >8-bit codes appear) through both the peek-table
// Decode and the canonical slow path, on stuffing-heavy data, and requires
// identical symbols and reader positions.
func TestDecodeFastMatchesSlow(t *testing.T) {
	enc, err := NewEncoder(&StdACLuminance)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&StdACLuminance)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	w := bitio.NewWriter()
	var syms []byte
	for i := 0; i < 30000; i++ {
		s := StdACLuminance.Symbols[rng.Intn(len(StdACLuminance.Symbols))]
		syms = append(syms, s)
		if err := enc.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	w.AlignPad(1)

	fast := bitio.NewReader(w.Bytes())
	slow := bitio.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := dec.Decode(fast)
		if err != nil {
			t.Fatalf("symbol %d: fast decode: %v", i, err)
		}
		ref, err := dec.decodeSlow(slow)
		if err != nil {
			t.Fatalf("symbol %d: slow decode: %v", i, err)
		}
		if got != want || ref != want {
			t.Fatalf("symbol %d: fast=%#x slow=%#x want %#x", i, got, ref, want)
		}
		fp, fb := fast.Pos()
		sp, sb := slow.Pos()
		if fp != sp || fb != sb {
			t.Fatalf("symbol %d: position diverged fast %d.%d slow %d.%d", i, fp, fb, sp, sb)
		}
	}
}

// TestPeekSymCoversShortCodes checks the peek table against Lookup for every
// symbol with a code of length <= 8.
func TestPeekSymCoversShortCodes(t *testing.T) {
	enc, err := NewEncoder(&StdACLuminance)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&StdACLuminance)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range StdACLuminance.Symbols {
		c := enc.Lookup(s)
		if c.Len > 8 {
			// Long codes must miss the table for every lookahead they prefix.
			lo := uint32(c.Bits) >> (c.Len - 8)
			if _, n := dec.PeekSym(uint8(lo)); n != 0 {
				t.Fatalf("symbol %#x: %d-bit code unexpectedly in peek table", s, c.Len)
			}
			continue
		}
		lo := uint32(c.Bits) << (8 - c.Len)
		hi := lo + 1<<(8-c.Len)
		for b := lo; b < hi; b++ {
			sym, n := dec.PeekSym(uint8(b))
			if sym != s || n != c.Len {
				t.Fatalf("peek[%#02x] = (%#x, %d), want (%#x, %d)", b, sym, n, s, c.Len)
			}
		}
	}
}

// BenchmarkScanDecode is the Huffman-symbol regression series for the
// entropy hot path: decoding a realistic mix of AC symbols through the
// peek-table decoder, independent of the Figure-2 corpus.
func BenchmarkScanDecode(b *testing.B) {
	enc, err := NewEncoder(&StdACLuminance)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := NewDecoder(&StdACLuminance)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	w := bitio.NewWriter()
	const nsyms = 1 << 15
	for i := 0; i < nsyms; i++ {
		// Mostly common (short-code) symbols, as in real scans.
		var s byte
		if rng.Intn(10) == 0 {
			s = StdACLuminance.Symbols[rng.Intn(len(StdACLuminance.Symbols))]
		} else {
			s = StdACLuminance.Symbols[rng.Intn(16)]
		}
		if err := enc.Encode(w, s); err != nil {
			b.Fatal(err)
		}
	}
	w.AlignPad(1)
	data := w.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(data)
		for j := 0; j < nsyms; j++ {
			if _, err := dec.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/nsyms, "ns/sym")
}
