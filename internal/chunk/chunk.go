// Package chunk implements the 4-MiB chunk layer: the Dropbox back-end
// stores files in independent chunks spread across servers, and Lepton must
// be able to decompress any chunk of a JPEG without access to the others
// (paper §1, §3.4).
//
// Chunk boundaries fall at arbitrary byte offsets — mid-Huffman-symbol, mid
// restart marker, even mid-header. Each chunk's container therefore carries:
//
//   - the full JPEG header (for the entropy tables), never emitted except by
//     chunk 0 — the paper's "original Huffman probability model at the start
//     of each chunk";
//   - a Huffman handover word for the first MCU the chunk owns;
//   - verbatim "prepend" bytes covering the gap between the chunk's start
//     offset and the first bit of its first owned MCU (the previous chunk's
//     spill-over);
//   - an exact output size, clipping the final MCU's spill into the next
//     chunk (which stores those bytes in its own prepend).
//
// Ownership is rounded to MCU-row boundaries, which keeps the model's
// row-based thread segmentation intact at the cost of a slightly longer
// verbatim prepend.
package chunk

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"lepton/internal/core"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

// DefaultChunkSize is the Dropbox block size.
const DefaultChunkSize = 4 << 20

// Options configures chunked compression.
type Options struct {
	// ChunkSize in bytes; 0 means DefaultChunkSize.
	ChunkSize int
	// SegmentsPerChunk forces the thread-segment count per chunk (0 = by
	// chunk payload size, as in core.SegmentCountFor).
	SegmentsPerChunk int
	// Flags selects model predictors; nil means the deployed configuration.
	Flags *model.Flags
	// VerifyRoundtrip decompresses every chunk and compares against the
	// original bytes before returning (production admission, §5.7).
	VerifyRoundtrip bool
	// Codec, when non-nil, supplies pooled encode/decode state shared with
	// other conversions; nil allocates fresh state per chunk (one-shot).
	Codec *core.Codec
	// BufferLimit bounds how much of a stream CompressFrom holds in memory
	// while deciding whether the input is a compressible JPEG; 0 means the
	// deployed encode budget (core.DefaultMemEncodeBudget). Streams larger
	// than the limit are chunk-compressed incrementally in raw (deflate)
	// mode with O(ChunkSize) memory — the same treatment production gave
	// files over the memory budget (§6.2).
	BufferLimit int64
	// DisableSeekIndex omits the per-MCU-row seek index from each chunk
	// container, reproducing the pre-index chunk bytes exactly. Range
	// reads of index-less chunks fall back to decoding the whole chunk.
	DisableSeekIndex bool
}

// Compress splits data into chunks and compresses each one independently.
// If the data is not a JPEG that Lepton supports, every chunk is stored in
// raw (deflate) mode — the caller can inspect Mode to know which path was
// taken. The error return reports only internal failures; unsupported
// inputs are not errors at this layer.
func Compress(data []byte, opt Options) ([][]byte, error) {
	return CompressCtx(context.Background(), data, opt)
}

// CompressCtx is Compress under a context: cancellation is observed between
// chunks and, through the core encoder's per-row checkpoints, inside each
// chunk's segment encode.
func CompressCtx(ctx context.Context, data []byte, opt Options) ([][]byte, error) {
	size := opt.ChunkSize
	if size <= 0 {
		size = DefaultChunkSize
	}
	nChunks := (len(data) + size - 1) / size
	if nChunks == 0 {
		nChunks = 1
	}
	out := make([][]byte, 0, nChunks)
	err := compressAll(ctx, data, opt, func(chunk []byte) error {
		out = append(out, chunk)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CompressFrom chunk-compresses the stream r incrementally, calling emit
// with each finished chunk in order. It buffers at most
// Options.BufferLimit bytes: a stream that fits is treated exactly like
// Compress (JPEGs get the full Lepton treatment, with output identical to
// CompressChunks on the same bytes); a larger stream — which could never
// pass the encoder's memory admission check anyway — is deflated chunk by
// chunk without ever holding the whole input, so files larger than memory
// stream through in constant space.
func CompressFrom(r io.Reader, opt Options, emit func(chunk []byte) error) error {
	return CompressFromCtx(context.Background(), r, opt, emit)
}

// CompressFromCtx is CompressFrom under a context; cancellation is checked
// before each chunk is read, compressed, and emitted.
func CompressFromCtx(ctx context.Context, r io.Reader, opt Options, emit func(chunk []byte) error) error {
	size := opt.ChunkSize
	if size <= 0 {
		size = DefaultChunkSize
	}
	limit := opt.BufferLimit
	if limit <= 0 {
		limit = core.DefaultMemEncodeBudget
	}
	// The buffering phase can read up to the whole encode budget from a
	// slow source, so it must observe cancellation too — per read, via the
	// wrapping reader (a read already blocked in r is not interruptible;
	// that is io.Reader's contract, not ours).
	cr := &ctxReader{ctx: ctx, r: r}
	// Read one byte past the limit so "exactly at the limit" still takes
	// the whole-file path.
	buf, err := io.ReadAll(io.LimitReader(cr, limit+1))
	if err != nil {
		return err
	}
	if int64(len(buf)) <= limit {
		return compressAll(ctx, buf, opt, emit)
	}
	// Over budget: raw-chunk the buffered prefix and the rest of the
	// stream without further buffering.
	src := io.MultiReader(bytes.NewReader(buf), cr)
	chunkBuf := make([]byte, size)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := io.ReadFull(src, chunkBuf)
		if n > 0 {
			c, merr := rawContainerPooled(chunkBuf[:n], opt.Codec)
			if merr != nil {
				return merr
			}
			if err := emit(c); err != nil {
				return err
			}
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// ctxReader fails reads with the context's error once it is cancelled.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (cr *ctxReader) Read(p []byte) (int, error) {
	if err := cr.ctx.Err(); err != nil {
		return 0, err
	}
	return cr.r.Read(p)
}

// compressAll is the shared whole-input path behind Compress and
// CompressFrom, emitting chunks in order as they are produced.
func compressAll(ctx context.Context, data []byte, opt Options, emit func(chunk []byte) error) error {
	size := opt.ChunkSize
	if size <= 0 {
		size = DefaultChunkSize
	}
	nChunks := (len(data) + size - 1) / size
	if nChunks == 0 {
		nChunks = 1
	}
	codec := opt.Codec

	f, err := jpeg.Parse(data, core.DefaultMemEncodeBudget)
	var s *jpeg.Scan
	if err == nil {
		// Every stored chunk must be decodable within the streaming decode
		// ceiling: chunks carry at most 8 thread segments, so bound the
		// row windows at that count. The chunk *encoder*, unlike the
		// whole-file path, still materializes the scan's coefficient
		// planes (chunk boundaries need every row-start position), so its
		// plane bytes must additionally fit the encode budget — Parse no
		// longer bounds whole planes, only row windows.
		switch {
		case core.DecodeWindowBytes(f, 8) > core.DefaultMemDecodeBudget:
			err = fmt.Errorf("over decode budget")
		case int64(f.CoefficientCount())*2 > core.DefaultMemEncodeBudget:
			err = fmt.Errorf("over encode budget")
		default:
			s, err = jpeg.DecodeScan(f)
		}
	}
	if err != nil {
		// Not a (supported) JPEG: raw chunks.
		return emitRawChunks(data, size, emit)
	}

	flags := model.DefaultFlags()
	if opt.Flags != nil {
		flags = *opt.Flags
	}

	scanStart := int64(len(f.Header))
	scanEnd := scanStart + int64(len(f.ScanData))
	total := f.TotalMCUs()
	// absPos(m) = absolute file offset of MCU m's first bit's byte.
	absPos := func(m int) int64 {
		if m >= total {
			return scanEnd
		}
		return scanStart + s.Positions[m].ByteOff
	}
	// rowStartMCU(k) = first row-aligned MCU whose position is >= offset.
	rowStartAtOrAfter := func(off int64) int {
		lo, hi := 0, f.MCUsHigh
		for lo < hi {
			mid := (lo + hi) / 2
			if absPos(mid*f.MCUsWide) >= off {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo * f.MCUsWide
	}

	for k := 0; k < nChunks; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		o0 := int64(k) * int64(size)
		o1 := o0 + int64(size)
		if o1 > int64(len(data)) {
			o1 = int64(len(data))
		}
		chunkBytes, err := compressOne(ctx, data, f, s, flags, opt, k, o0, o1,
			scanStart, scanEnd, total, absPos, rowStartAtOrAfter)
		if err != nil {
			return err
		}
		if opt.VerifyRoundtrip {
			back, err := codec.DecodeCtx(ctx, chunkBytes, 0)
			if err != nil || !bytes.Equal(back, data[o0:o1]) {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return &jpeg.Error{Reason: jpeg.ReasonRoundtrip,
					Detail: fmt.Sprintf("chunk %d does not round trip", k)}
			}
		}
		if err := emit(chunkBytes); err != nil {
			return err
		}
	}
	return nil
}

func compressOne(ctx context.Context, data []byte, f *jpeg.File, s *jpeg.Scan, flags model.Flags,
	opt Options, k int, o0, o1, scanStart, scanEnd int64, total int,
	absPos func(int) int64, rowStartAtOrAfter func(int64) int) ([]byte, error) {

	// Chunks entirely outside the scan hold verbatim data.
	if o1 <= scanStart || o0 >= scanEnd {
		return rawContainerPooled(data[o0:o1], opt.Codec)
	}
	mStart := rowStartAtOrAfter(o0)
	mEnd := rowStartAtOrAfter(o1)
	if mEnd > total {
		mEnd = total
	}
	if o1 >= scanEnd {
		mEnd = total
	}
	if mStart >= mEnd {
		// No MCU row starts inside this chunk; store it verbatim.
		return rawContainerPooled(data[o0:o1], opt.Codec)
	}

	prependFrom := o0
	if k == 0 {
		prependFrom = scanStart // the header is emitted structurally
	}
	prependTo := absPos(mStart)
	if prependTo > o1 {
		prependTo = o1
	}

	c := &core.Container{
		Mode:       core.ModeLepton,
		OutputSize: uint32(o1 - o0),
		JPEGHeader: f.Header,
		PadBit:     s.PadBit,
		EmitHeader: k == 0,
		RSTCount:   uint32(s.RSTCount),
		MCUStart:   uint32(mStart),
		MCUEnd:     uint32(mEnd),
		ModelFlags: flagsByteOf(flags),
		Prepend:    data[prependFrom:prependTo],
	}
	if mEnd == total {
		// This chunk reaches the end of the scan: it owns the tail garbage
		// and whatever part of the trailer falls inside it (the output-size
		// clip cuts the rest; later chunks carry the remainder verbatim).
		c.EmitTail = true
		c.Tail = s.Tail
		trailerWant := o1 - scanEnd
		if trailerWant < 0 {
			trailerWant = 0
		}
		if trailerWant > int64(len(f.Trailer)) {
			trailerWant = int64(len(f.Trailer))
		}
		c.Trailer = f.Trailer[:trailerWant]
	}

	nSeg := opt.SegmentsPerChunk
	if nSeg == 0 {
		nSeg = core.SegmentCountFor(int(o1 - o0))
	}
	segs, streams, _, release, err := opt.Codec.EncodeSegmentsCtx(ctx, f, s, mStart, mEnd, nSeg, flags, false)
	if err != nil {
		release()
		return nil, err
	}
	c.Segments = segs
	c.Streams = streams
	if !opt.DisableSeekIndex && core.SeekIndexable(f) {
		// The chunk covers MCU rows [mStart/W, ceil(mEnd/W)); the scan
		// decode above recorded a position at every MCU, so the row table
		// is a stride over it. With it, a range read inside this chunk
		// decodes only the overlapping thread segments instead of the
		// whole chunk.
		w := f.MCUsWide
		r0, rEnd := mStart/w, (mEnd+w-1)/w
		idx := make([]jpeg.MCUPos, rEnd-r0)
		for i := range idx {
			idx[i] = s.Positions[(r0+i)*w]
		}
		c.SeekIndex = idx
	}
	b, err := opt.Codec.MarshalContainer(c)
	release()
	return b, err
}

func flagsByteOf(flags model.Flags) uint8 {
	var v uint8
	if flags.EdgePrediction {
		v |= 1
	}
	if flags.DCGradient {
		v |= 2
	}
	return v
}

func emitRawChunks(data []byte, size int, emit func([]byte) error) error {
	n := (len(data) + size - 1) / size
	if n == 0 {
		n = 1
	}
	for k := 0; k < n; k++ {
		o0 := k * size
		o1 := o0 + size
		if o1 > len(data) {
			o1 = len(data)
		}
		b, err := rawContainer(data[o0:o1])
		if err != nil {
			// Marshal of a raw container cannot fail; defensive only.
			panic(err)
		}
		if err := emit(b); err != nil {
			return err
		}
	}
	return nil
}

func rawContainer(payload []byte) ([]byte, error) {
	return rawContainerPooled(payload, nil)
}

func rawContainerPooled(payload []byte, codec *core.Codec) ([]byte, error) {
	c := &core.Container{Mode: core.ModeRaw, Raw: payload, OutputSize: uint32(len(payload))}
	return codec.MarshalContainer(c)
}

// Decompress reconstructs one chunk's original bytes. Chunks are fully
// independent: no other chunk's data is needed.
func Decompress(chunkData []byte) ([]byte, error) {
	return core.Decode(chunkData, 0)
}

// Reassemble decompresses all chunks and concatenates them.
func Reassemble(chunks [][]byte) ([]byte, error) {
	return ReassembleWith(nil, chunks)
}

// ReassembleWith is Reassemble drawing decode state from codec's pools
// (nil codec = one-shot).
func ReassembleWith(codec *core.Codec, chunks [][]byte) ([]byte, error) {
	return ReassembleCtx(context.Background(), codec, chunks)
}

// ReassembleCtx is ReassembleWith under a context, checked per chunk and
// inside each chunk's segment decode.
func ReassembleCtx(ctx context.Context, codec *core.Codec, chunks [][]byte) ([]byte, error) {
	var out []byte
	for i, ch := range chunks {
		b, err := codec.DecodeCtx(ctx, ch, 0)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		out = append(out, b...)
	}
	return out, nil
}
