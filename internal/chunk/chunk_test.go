package chunk_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lepton/internal/chunk"
	"lepton/internal/core"
	"lepton/internal/imagegen"
)

func gen(t testing.TB, seed int64, w, h int) []byte {
	t.Helper()
	data, err := imagegen.Generate(seed, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testChunked(t *testing.T, data []byte, chunkSize int) [][]byte {
	t.Helper()
	chunks, err := chunk.Compress(data, chunk.Options{ChunkSize: chunkSize})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	wantChunks := (len(data) + chunkSize - 1) / chunkSize
	if len(chunks) != wantChunks {
		t.Fatalf("%d chunks, want %d", len(chunks), wantChunks)
	}
	back, err := chunk.Reassemble(chunks)
	if err != nil {
		t.Fatalf("Reassemble: %v", err)
	}
	if !bytes.Equal(back, data) {
		i := 0
		for i < len(back) && i < len(data) && back[i] == data[i] {
			i++
		}
		t.Fatalf("reassembly differs at byte %d (lens %d vs %d)", i, len(back), len(data))
	}
	return chunks
}

func TestChunkedRoundTrip(t *testing.T) {
	data := gen(t, 1, 512, 384)
	for _, size := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, len(data) + 100} {
		testChunked(t, data, size)
	}
}

func TestChunkIndependence(t *testing.T) {
	// Decompress chunks in random order, one at a time, and verify each
	// against its slice of the original — no shared state allowed.
	data := gen(t, 2, 640, 480)
	size := 8 << 10
	chunks := testChunked(t, data, size)
	order := rand.New(rand.NewSource(3)).Perm(len(chunks))
	for _, k := range order {
		b, err := chunk.Decompress(chunks[k])
		if err != nil {
			t.Fatalf("chunk %d: %v", k, err)
		}
		o0 := k * size
		o1 := o0 + size
		if o1 > len(data) {
			o1 = len(data)
		}
		if !bytes.Equal(b, data[o0:o1]) {
			t.Fatalf("chunk %d content mismatch", k)
		}
	}
}

func TestChunkedNonJPEG(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 50<<10)
	rng.Read(data)
	chunks, err := chunk.Compress(data, chunk.Options{ChunkSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	back, err := chunk.Reassemble(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("raw chunk mismatch")
	}
}

func TestChunkedCompressible(t *testing.T) {
	data := gen(t, 5, 512, 512)
	chunks := testChunked(t, data, 8<<10)
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	if total >= len(data) {
		t.Fatalf("chunked compression expanded: %d >= %d", total, len(data))
	}
	t.Logf("chunked savings: %.1f%% over %d chunks",
		100*(1-float64(total)/float64(len(data))), len(chunks))
}

func TestChunkedWithRestartsAndTrailer(t *testing.T) {
	img := imagegen.Synthesize(6, 400, 300)
	junk := make([]byte, 3000)
	rand.New(rand.NewSource(7)).Read(junk)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{
		Quality: 88, SubsampleChroma: true, RestartInterval: 3, PadBit: 0,
		TrailerGarbage: junk,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{2 << 10, 7 << 10, 31 << 10} {
		testChunked(t, data, size)
	}
}

func TestChunkedTinyChunks(t *testing.T) {
	// Chunks far smaller than an MCU row: most become verbatim, round trip
	// must still hold.
	data := gen(t, 8, 256, 192)
	testChunked(t, data, 512)
}

func TestChunkedVerifyOption(t *testing.T) {
	data := gen(t, 9, 300, 200)
	if _, err := chunk.Compress(data, chunk.Options{ChunkSize: 8 << 10, VerifyRoundtrip: true}); err != nil {
		t.Fatalf("verified chunk compress failed: %v", err)
	}
}

func TestChunkHeaderOnlyFirstChunk(t *testing.T) {
	// Chunk size smaller than the JPEG header: chunk 0 must fall back to
	// verbatim and everything still reassembles.
	data := gen(t, 10, 128, 96)
	testChunked(t, data, 300)
}

func TestChunksAreLeptonContainers(t *testing.T) {
	data := gen(t, 11, 256, 256)
	chunks := testChunked(t, data, 8<<10)
	for i, c := range chunks {
		if !core.IsLepton(c) {
			t.Fatalf("chunk %d is not a Lepton container", i)
		}
	}
}

func TestChunkGrayscale(t *testing.T) {
	img := imagegen.Synthesize(12, 320, 240)
	data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 80, Grayscale: true, PadBit: 1})
	if err != nil {
		t.Fatal(err)
	}
	testChunked(t, data, 6<<10)
}

func TestChunkQuickRandomSizes(t *testing.T) {
	// Property: for any chunk size, compress+reassemble is the identity and
	// every chunk decodes independently to its exact slice.
	data := gen(t, 40, 360, 270)
	f := func(rawSize uint16) bool {
		size := int(rawSize)%20000 + 700
		chunks, err := chunk.Compress(data, chunk.Options{ChunkSize: size})
		if err != nil {
			return false
		}
		for k, cb := range chunks {
			part, err := chunk.Decompress(cb)
			if err != nil {
				return false
			}
			o0 := k * size
			o1 := o0 + size
			if o1 > len(data) {
				o1 = len(data)
			}
			if !bytes.Equal(part, data[o0:o1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressFromMatchesCompress checks the streaming entry point produces
// byte-identical chunks to the in-memory path for a stream that fits the
// buffer limit, both with and without a shared pooled codec.
func TestCompressFromMatchesCompress(t *testing.T) {
	data := gen(t, 61, 512, 384)
	opt := chunk.Options{ChunkSize: 32 << 10}
	want, err := chunk.Compress(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []*core.Codec{nil, core.NewCodec()} {
		o := opt
		o.Codec = codec
		var got [][]byte
		err = chunk.CompressFrom(bytes.NewReader(data), o, func(c []byte) error {
			got = append(got, append([]byte(nil), c...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk count %d != %d", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("chunk %d differs between CompressFrom and Compress", i)
			}
		}
	}
}

// TestCompressFromOverBudgetStreamsRaw feeds a stream larger than the buffer
// limit: it must be chunked incrementally in raw mode and still reassemble
// exactly.
func TestCompressFromOverBudgetStreamsRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 300<<10)
	rng.Read(data)
	opt := chunk.Options{ChunkSize: 32 << 10, BufferLimit: 64 << 10, Codec: core.NewCodec()}
	var chunks [][]byte
	err := chunk.CompressFrom(bytes.NewReader(data), opt, func(c []byte) error {
		chunks = append(chunks, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := (len(data) + (32 << 10) - 1) / (32 << 10); len(chunks) != want {
		t.Fatalf("chunk count %d, want %d", len(chunks), want)
	}
	back, err := chunk.Reassemble(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("over-budget stream did not reassemble")
	}
}

// TestCompressWithSharedCodec runs the chunk path repeatedly through one
// codec and cross-checks outputs against the one-shot path.
func TestCompressWithSharedCodec(t *testing.T) {
	codec := core.NewCodec()
	for seed := int64(71); seed < 74; seed++ {
		data := gen(t, seed, 320, 240)
		want, err := chunk.Compress(data, chunk.Options{ChunkSize: 16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		got, err := chunk.Compress(data, chunk.Options{ChunkSize: 16 << 10, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("seed %d chunk %d: pooled chunk differs", seed, i)
			}
		}
		back, err := chunk.Reassemble(got)
		if err != nil || !bytes.Equal(back, data) {
			t.Fatalf("seed %d: reassembly failed (%v)", seed, err)
		}
	}
}
