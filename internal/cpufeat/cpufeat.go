// Package cpufeat detects the CPU features the hand-written assembly
// kernels in this repository dispatch on. The repo deliberately has zero
// module dependencies, so the CPUID/XGETBV probing is done here instead of
// pulling in golang.org/x/sys/cpu.
//
// On amd64 without the noasm build tag, init fills X86 from CPUID; on every
// other platform (and under -tags noasm) the fields stay false and callers
// take their portable pure-Go paths.
package cpufeat

// X86 reports the vector features of the running amd64 CPU. All fields are
// false on other architectures and under the noasm build tag.
var X86 struct {
	// HasAVX2 is true when the CPU supports AVX2 *and* the OS has enabled
	// saving the YMM state (OSXSAVE + XCR0 bits 1-2), which is the gate the
	// AVX2 kernels in internal/dct and internal/bitio require.
	HasAVX2 bool
}
