//go:build amd64 && !noasm

package cpufeat

// cpuid executes the CPUID instruction with the given leaf and subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled state mask).
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return
	}
	// XCR0 bits 1 (SSE state) and 2 (AVX state) must both be OS-enabled or
	// executing a VEX.256 instruction faults.
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	X86.HasAVX2 = ebx7&(1<<5) != 0
}
