package backfill

import (
	"testing"
	"time"
)

func TestPacerStartsAtFloor(t *testing.T) {
	p := NewPacer(2, 16)
	if !p.Launch() || !p.Launch() {
		t.Fatal("floor window refused admissions")
	}
	if p.Launch() {
		t.Fatal("admitted past the floor window with no successes")
	}
	if got := p.InFlight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
}

func TestPacerCubicGrowth(t *testing.T) {
	p := NewPacer(1, 64)
	// Backdate the epoch so the cubic has had (virtual) seconds to grow;
	// white-box: the clock input to the cubic is time since p.epoch.
	p.mu.Lock()
	p.epoch = time.Now().Add(-4 * time.Second)
	p.mu.Unlock()
	if !p.Launch() {
		t.Fatal("no admission at floor")
	}
	p.Done(time.Millisecond, true)
	st := p.Stat()
	// target = C*(t-K)^3 + wMax ≈ 0.4*64 + 1 ≈ 26 at t=4s, K=0.
	if st.Window < 10 {
		t.Fatalf("window after 4 virtual seconds = %d, want cubic growth", st.Window)
	}
	if st.Window > 64 {
		t.Fatalf("window %d exceeds cap", st.Window)
	}
}

func TestPacerCapsAtCap(t *testing.T) {
	p := NewPacer(1, 8)
	p.mu.Lock()
	p.epoch = time.Now().Add(-time.Hour)
	p.mu.Unlock()
	p.Launch()
	p.Done(time.Millisecond, true)
	if st := p.Stat(); st.Window != 8 {
		t.Fatalf("window = %d, want cap 8", st.Window)
	}
}

func TestPacerLossShrinksMultiplicatively(t *testing.T) {
	p := NewPacer(1, 64)
	p.mu.Lock()
	p.wnd, p.wMax = 20, 20
	p.mu.Unlock()
	p.Launch()
	p.Done(0, false)
	st := p.Stat()
	if st.Window != 14 { // 20 * 0.7
		t.Fatalf("window after loss = %d, want 14", st.Window)
	}
	if st.WMax != 20 {
		t.Fatalf("wMax after loss = %v, want 20 (the pre-loss window)", st.WMax)
	}
	// Repeated losses converge on the floor, never below.
	for i := 0; i < 20; i++ {
		p.Launch()
		p.Done(0, false)
	}
	if st := p.Stat(); st.Window < 1 {
		t.Fatalf("window fell under the floor: %d", st.Window)
	}
}

func TestPacerConcaveRecoveryTowardWMax(t *testing.T) {
	p := NewPacer(1, 64)
	p.mu.Lock()
	p.wnd, p.wMax = 32, 32
	p.mu.Unlock()
	p.Launch()
	p.Done(0, false) // drop to ~22, wMax=32, K = cbrt((32-22.4)/0.4) ≈ 2.9s
	p.mu.Lock()
	p.epoch = time.Now().Add(-3 * time.Second) // roughly at the inflection
	p.mu.Unlock()
	p.Launch()
	p.Done(time.Millisecond, true)
	st := p.Stat()
	// Near t≈K the cubic passes through wMax: the window recovers to the
	// old operating point, not past it.
	if st.Window < 28 || st.Window > 36 {
		t.Fatalf("window near inflection = %d, want ≈ wMax (32)", st.Window)
	}
}

func TestPacerYieldShrink(t *testing.T) {
	p := NewPacer(1, 64)
	p.mu.Lock()
	p.wnd, p.wMax = 40, 40
	p.mu.Unlock()
	p.YieldShrink()
	st := p.Stat()
	if st.Window != 20 {
		t.Fatalf("window after yield = %d, want 20", st.Window)
	}
	if st.WMax != 20 {
		t.Fatalf("yield must forget the old operating point: wMax = %v", st.WMax)
	}
	for i := 0; i < 10; i++ {
		p.YieldShrink()
	}
	if st := p.Stat(); st.Window != 1 {
		t.Fatalf("yield floor = %d, want 1", st.Window)
	}
}

func TestPacerPause(t *testing.T) {
	p := NewPacer(4, 16)
	p.SetPaused(true)
	if p.Launch() {
		t.Fatal("paused pacer admitted a request")
	}
	if st := p.Stat(); !st.Paused {
		t.Fatal("Stat does not report paused")
	}
	p.SetPaused(false)
	if !p.Launch() {
		t.Fatal("unpaused pacer refused admission")
	}
}

func TestPacerCancelReleasesWithoutGrowth(t *testing.T) {
	p := NewPacer(1, 16)
	if !p.Launch() {
		t.Fatal("no admission")
	}
	before := p.Stat().Window
	p.Cancel()
	st := p.Stat()
	if st.InFlight != 0 {
		t.Fatalf("inflight after cancel = %d", st.InFlight)
	}
	if st.Window != before {
		t.Fatalf("cancel moved the window: %d -> %d", before, st.Window)
	}
	if st.RTT.Samples != 0 {
		t.Fatal("cancel fed the RTT estimator")
	}
}

func TestPacerRTOTracksEstimator(t *testing.T) {
	p := NewPacer(1, 16)
	if got := p.RTO(); got != time.Second {
		t.Fatalf("pre-sample RTO = %v, want 1s", got)
	}
	p.Launch()
	p.Done(50*time.Millisecond, true)
	if got := p.RTO(); got >= time.Second {
		t.Fatalf("RTO did not adapt to samples: %v", got)
	}
	p.Launch()
	p.Done(0, false)
	st := p.Stat()
	if st.RTT.Samples != 1 {
		t.Fatalf("loss must not add an RTT sample: %+v", st.RTT)
	}
}
