// The engine wires the pieces into the paper's backfill pipeline: a shared
// dispenser hands out manifest positions (retries first, then a sequential
// scan bounded to MaxAhead past the cursor, so out-of-order completion —
// and therefore post-crash duplicate work — stays bounded); one lane per
// fleet node pulls from it as fast as that node's pacer admits; every
// completion is verified against the input's content hash before the
// position is committed; a checkpointer cuts durable progress records on a
// timer and a commit-count kick; and a yield poller probes each node's
// in-flight depth, pausing or shrinking lanes the moment live traffic
// shows up. Kill the process anywhere and a restarted engine replays from
// the last checkpoint: committed work is skipped, uncommitted work is
// re-done, and nothing acknowledged is ever lost.
package backfill

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lepton/internal/core"
	"lepton/internal/server"
)

// Transport is the slice of *server.Fleet the engine drives: node
// enumeration, placement-addressed exchanges, and load probes.
type Transport interface {
	Nodes() []string
	NodeDown(addr string) bool
	DoNode(ctx context.Context, addr string, op byte, payload []byte) ([]byte, error)
	ProbeNode(ctx context.Context, addr string) (uint32, error)
}

// Config tunes one engine. The zero value of every field picks a sane
// default; Shards=0 means an unsharded (1-of-1) run.
type Config struct {
	// Shard/Shards split the manifest across workers: this engine owns
	// manifest indices ≡ Shard (mod Shards).
	Shard, Shards int

	// WindowFloor and WindowCap bound each node's congestion window
	// (defaults 1 and 32).
	WindowFloor, WindowCap int

	// MaxAhead bounds how far past the cursor the dispenser will hand out
	// work (default 1024). It caps both the done-ahead set and the
	// duplicate work a crash can cause.
	MaxAhead int

	// CheckpointEvery and CheckpointFiles cut a checkpoint on whichever
	// fires first: the timer (default 500ms) or this many commits since
	// the last cut (default 256).
	CheckpointEvery time.Duration
	CheckpointFiles int

	// YieldLow/YieldHigh are foreground in-flight thresholds per node:
	// at YieldLow the window shrinks toward its floor, at YieldHigh the
	// lane pauses outright (defaults 2 and 8). YieldPoll is the probe
	// cadence (default 50ms; negative disables yielding).
	YieldLow, YieldHigh int
	YieldPoll           time.Duration

	// Verify round-trips every compressed result through a local decode
	// and compares content hashes before committing — the production
	// verify-before-commit step. Costs a decode per file.
	Verify bool

	// Codec used for Verify decodes; nil uses the stateless default.
	Codec *core.Codec

	// MaxAttempts quarantines a file after this many failed tries of the
	// kinds that plausibly indict the file (default 3). Pure transport
	// failures retry forever — they indict the node, not the file.
	MaxAttempts int

	// Logf receives progress and anomaly lines; nil discards them.
	Logf func(string, ...any)
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.Shards <= 0 {
		d.Shards, d.Shard = 1, 0
	}
	if d.WindowFloor <= 0 {
		d.WindowFloor = 1
	}
	if d.WindowCap <= 0 {
		d.WindowCap = 32
	}
	if d.MaxAhead <= 0 {
		d.MaxAhead = 1024
	}
	if d.CheckpointEvery <= 0 {
		d.CheckpointEvery = 500 * time.Millisecond
	}
	if d.CheckpointFiles <= 0 {
		d.CheckpointFiles = 256
	}
	if d.YieldHigh <= 0 {
		d.YieldHigh = 8
	}
	if d.YieldLow <= 0 {
		d.YieldLow = 2
	}
	if d.YieldPoll == 0 {
		d.YieldPoll = 50 * time.Millisecond
	}
	if d.MaxAttempts <= 0 {
		d.MaxAttempts = 3
	}
	if d.Logf == nil {
		d.Logf = func(string, ...any) {}
	}
	return d
}

// Result summarizes a Run. Counters prefixed "total" are cumulative across
// resumes (restored from the checkpoint); the rest cover this run only.
type Result struct {
	Resumed      bool
	Files        uint64   // committed this run
	TotalFiles   uint64   // committed across all runs
	TotalIn      uint64   // original bytes, cumulative
	TotalOut     uint64   // compressed bytes, cumulative
	Quarantined  []uint64 // global manifest indices, cumulative, sorted
	Retries      uint64   // requeues this run
	Checkpoints  uint64   // checkpoints cut this run
	YieldShrinks uint64   // yield-signal window shrinks this run
	YieldPauses  uint64   // yield-signal pauses this run
	Complete     bool     // every owned position handled
}

// laneIdle is how long a lane naps when the pacer or dispenser has nothing
// for it.
const laneIdle = time.Millisecond

type item struct {
	pos      uint64 // shard-local position
	attempts int    // file-indicting failures so far
}

// Engine runs one shard of one backfill. Build with New, drive with Run
// (single use).
type Engine struct {
	cfg   Config
	t     Transport
	src   Source
	cs    CheckpointStore
	m     Manifest
	nodes []string

	shardLen uint64
	pacers   []*Pacer

	mu          sync.Mutex
	cursor      uint64
	done        map[uint64]struct{} // handled positions ≥ cursor
	quarantined map[uint64]struct{} // global manifest indices
	nextPos     uint64
	retry       []item
	inflight    int
	seq         uint64 // last durably saved checkpoint seq
	dirty       int    // commits since last checkpoint

	totalFiles, totalIn, totalOut uint64 // cumulative, checkpointed

	filesRun, retries, ckpts  atomic.Uint64
	yieldShrinks, yieldPauses atomic.Uint64

	resumed  bool
	ckptKick chan struct{}
}

// New builds an engine over the manifest shard cfg selects, resuming from
// the newest valid checkpoint in cs if one exists.
func New(cfg Config, t Transport, src Source, cs CheckpointStore, m Manifest) (*Engine, error) {
	c := cfg.withDefaults()
	if c.Shard < 0 || c.Shard >= c.Shards {
		return nil, fmt.Errorf("backfill: shard %d out of range of %d", c.Shard, c.Shards)
	}
	nodes := t.Nodes()
	if len(nodes) == 0 {
		return nil, errors.New("backfill: transport has no nodes")
	}
	e := &Engine{
		cfg:         c,
		t:           t,
		src:         src,
		cs:          cs,
		m:           m,
		nodes:       nodes,
		done:        make(map[uint64]struct{}),
		quarantined: make(map[uint64]struct{}),
		ckptKick:    make(chan struct{}, 1),
	}
	n := uint64(len(m.Entries))
	k := uint64(c.Shards)
	s := uint64(c.Shard)
	if n > s {
		e.shardLen = (n - s + k - 1) / k
	}
	for range nodes {
		e.pacers = append(e.pacers, NewPacer(c.WindowFloor, c.WindowCap))
	}
	ck, ok, err := LoadCheckpoint(cs, m, uint32(c.Shard), uint32(c.Shards))
	if err != nil {
		return nil, err
	}
	if ok {
		e.resumed = true
		e.seq = ck.Seq
		e.cursor = ck.Cursor
		e.nextPos = ck.Cursor
		for _, p := range ck.Done {
			if p >= ck.Cursor {
				e.done[p] = struct{}{}
			}
		}
		for _, g := range ck.Quarantined {
			e.quarantined[g] = struct{}{}
		}
		e.totalFiles = ck.FilesDone
		e.totalIn = ck.BytesIn
		e.totalOut = ck.BytesOut
		c.Logf("backfill: resumed shard %d/%d at cursor %d/%d (seq %d, %d done-ahead, %d quarantined)",
			c.Shard, c.Shards, ck.Cursor, e.shardLen, ck.Seq, len(e.done), len(e.quarantined))
	}
	return e, nil
}

// globalIndex maps a shard-local position to its manifest index.
func (e *Engine) globalIndex(pos uint64) uint64 {
	return pos*uint64(e.cfg.Shards) + uint64(e.cfg.Shard)
}

// next hands out the next pending position: requeued work first, then the
// sequential scan, held back whenever it would run more than MaxAhead past
// the cursor (bounding post-crash duplicates and the done-ahead set).
func (e *Engine) next() (item, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.retry); n > 0 {
		it := e.retry[n-1]
		e.retry = e.retry[:n-1]
		e.inflight++
		return it, true
	}
	for e.nextPos < e.shardLen && e.nextPos < e.cursor+uint64(e.cfg.MaxAhead) {
		p := e.nextPos
		e.nextPos++
		if _, ok := e.done[p]; ok || p < e.cursor {
			continue
		}
		e.inflight++
		return item{pos: p}, true
	}
	return item{}, false
}

// handledLocked marks pos complete and slides the cursor over any now-
// contiguous run of done positions.
func (e *Engine) handledLocked(pos uint64) {
	e.done[pos] = struct{}{}
	for {
		if _, ok := e.done[e.cursor]; !ok {
			break
		}
		delete(e.done, e.cursor)
		e.cursor++
	}
}

func (e *Engine) kickCheckpoint() {
	select {
	case e.ckptKick <- struct{}{}:
	default:
	}
}

// commit acknowledges one verified file.
func (e *Engine) commit(pos uint64, in, out int) {
	e.mu.Lock()
	e.inflight--
	e.handledLocked(pos)
	e.totalFiles++
	e.totalIn += uint64(in)
	e.totalOut += uint64(out)
	e.dirty++
	kick := e.dirty >= e.cfg.CheckpointFiles
	e.mu.Unlock()
	e.filesRun.Add(1)
	if kick {
		e.kickCheckpoint()
	}
}

// quarantine permanently sets a file aside: it counts as handled for the
// cursor but never as committed, and its manifest index is checkpointed so
// resumes skip it too.
func (e *Engine) quarantine(pos uint64, why error) {
	g := e.globalIndex(pos)
	e.mu.Lock()
	e.inflight--
	e.handledLocked(pos)
	e.quarantined[g] = struct{}{}
	e.dirty++
	e.mu.Unlock()
	e.cfg.Logf("backfill: quarantined file %d: %v", g, why)
}

func (e *Engine) requeue(it item) {
	e.mu.Lock()
	e.inflight--
	e.retry = append(e.retry, it)
	e.mu.Unlock()
	e.retries.Add(1)
}

func (e *Engine) finished() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cursor >= e.shardLen && len(e.retry) == 0 && e.inflight == 0
}

// snapshotLocked builds the next checkpoint record from current progress.
func (e *Engine) snapshotLocked() Checkpoint {
	c := Checkpoint{
		ManifestDigest: e.m.Digest(),
		ManifestLen:    uint64(len(e.m.Entries)),
		Shard:          uint32(e.cfg.Shard),
		Shards:         uint32(e.cfg.Shards),
		Seq:            e.seq + 1,
		Cursor:         e.cursor,
		FilesDone:      e.totalFiles,
		BytesIn:        e.totalIn,
		BytesOut:       e.totalOut,
	}
	for p := range e.done {
		c.Done = append(c.Done, p)
	}
	sort.Slice(c.Done, func(i, j int) bool { return c.Done[i] < c.Done[j] })
	for g := range e.quarantined {
		c.Quarantined = append(c.Quarantined, g)
	}
	sort.Slice(c.Quarantined, func(i, j int) bool { return c.Quarantined[i] < c.Quarantined[j] })
	return c
}

// checkpoint cuts and durably writes a progress record. Write failures are
// reported but non-fatal: the engine keeps recompressing and retries on the
// next tick — losing checkpoint freshness costs bounded duplicate work on
// the next resume, whereas stopping would cost the whole run.
func (e *Engine) checkpoint(force bool) error {
	e.mu.Lock()
	if e.dirty == 0 && !force {
		e.mu.Unlock()
		return nil
	}
	c := e.snapshotLocked()
	e.dirty = 0
	e.mu.Unlock()

	if err := SaveCheckpoint(e.cs, &c); err != nil {
		return err
	}
	e.mu.Lock()
	if c.Seq > e.seq {
		e.seq = c.Seq
	}
	e.mu.Unlock()
	e.ckpts.Add(1)
	return nil
}

// lane drives one node: admit through the pacer, pull from the dispenser,
// process concurrently up to the window.
func (e *Engine) lane(ctx context.Context, idx int) {
	p := e.pacers[idx]
	addr := e.nodes[idx]
	var inner sync.WaitGroup
	defer inner.Wait()
	for ctx.Err() == nil {
		if e.finished() {
			return
		}
		if !p.Launch() {
			sleepCtx(ctx, laneIdle)
			continue
		}
		it, ok := e.next()
		if !ok {
			p.Cancel()
			sleepCtx(ctx, laneIdle)
			continue
		}
		inner.Add(1)
		go func(it item) {
			defer inner.Done()
			e.process(ctx, addr, p, it)
		}(it)
	}
}

// process runs one file end to end against one node and classifies the
// outcome: commit, requeue (node's fault — retried forever), or quarantine
// (file's fault — after MaxAttempts, or immediately on a deterministic
// remote rejection).
func (e *Engine) process(ctx context.Context, addr string, p *Pacer, it item) {
	entry := e.m.Entries[e.globalIndex(it.pos)]
	data, err := e.src.Fetch(ctx, entry)
	if err != nil {
		p.Cancel()
		if ctx.Err() != nil {
			e.requeue(it)
			return
		}
		e.quarantine(it.pos, fmt.Errorf("source: %w", err))
		return
	}

	rto := p.RTO()
	cctx, cancel := context.WithTimeout(ctx, rto)
	start := time.Now()
	comp, err := e.t.DoNode(cctx, addr, server.OpCompress, data)
	cancel()
	elapsed := time.Since(start)

	if err != nil {
		if ctx.Err() != nil {
			// Engine shutdown, not a node verdict.
			p.Cancel()
			e.requeue(it)
			return
		}
		var re *server.RemoteError
		var se *server.StreamBodyError
		switch {
		case errors.Is(err, server.ErrPayloadTooLarge):
			// Over the protocol limit: no node will ever take it.
			p.Cancel()
			e.quarantine(it.pos, err)
		case errors.As(err, &re) && !re.Transient:
			// The node answered promptly and rejected the file for
			// good: that is a healthy node and a bad file.
			p.Done(elapsed, true)
			e.quarantine(it.pos, err)
		case errors.As(err, &re):
			// Overload pushback (StatusRetry): the node is alive but
			// shedding load — the clearest congestion signal there is.
			// Shrink the window and retry the file later.
			p.Done(0, false)
			e.requeue(it)
		case errors.As(err, &se):
			// Died mid-response — could be the file tripping the
			// server or the connection dying under it. Give the file
			// a few chances before blaming it.
			p.Done(0, false)
			it.attempts++
			if it.attempts >= e.cfg.MaxAttempts {
				e.quarantine(it.pos, err)
			} else {
				e.requeue(it)
			}
		default:
			// Timeout / connect failure / evicted node: the file was
			// never judged. Back off and retry indefinitely.
			p.Done(0, false)
			e.requeue(it)
		}
		return
	}

	if e.cfg.Verify {
		raw, derr := e.cfg.Codec.DecodeCtx(ctx, comp, 0)
		if derr != nil || sha256.Sum256(raw) != sha256.Sum256(data) {
			if ctx.Err() != nil {
				p.Cancel()
				e.requeue(it)
				return
			}
			if derr == nil {
				derr = errors.New("round-trip hash mismatch")
			}
			// The exchange itself succeeded; don't punish the window.
			p.Done(elapsed, true)
			it.attempts++
			if it.attempts >= e.cfg.MaxAttempts {
				e.quarantine(it.pos, fmt.Errorf("verify: %w", derr))
			} else {
				e.requeue(it)
			}
			return
		}
	}

	p.Done(elapsed, true)
	e.commit(it.pos, len(data), len(comp))
}

// yieldLoop is the live-traffic-priority poller: per node, foreground load
// is the probed in-flight depth minus this engine's own outstanding
// requests there. Crossing YieldLow shrinks the window toward its floor;
// crossing YieldHigh pauses the lane until the node quiets down.
func (e *Engine) yieldLoop(ctx context.Context) {
	tick := time.NewTicker(e.cfg.YieldPoll)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for i, addr := range e.nodes {
			pctx, cancel := context.WithTimeout(ctx, e.cfg.YieldPoll*4)
			load, err := e.t.ProbeNode(pctx, addr)
			cancel()
			if err != nil {
				continue // lane failures already pace a sick node
			}
			fg := int(load) - e.pacers[i].InFlight()
			switch {
			case fg >= e.cfg.YieldHigh:
				e.pacers[i].SetPaused(true)
				e.yieldPauses.Add(1)
				e.cfg.Logf("backfill: pausing %s (foreground in-flight %d)", addr, fg)
			case fg >= e.cfg.YieldLow:
				e.pacers[i].SetPaused(false)
				e.pacers[i].YieldShrink()
				e.yieldShrinks.Add(1)
			default:
				e.pacers[i].SetPaused(false)
			}
		}
	}
}

// checkpointLoop cuts checkpoints on the timer and on commit-count kicks.
func (e *Engine) checkpointLoop(ctx context.Context) {
	tick := time.NewTicker(e.cfg.CheckpointEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		case <-e.ckptKick:
		}
		if err := e.checkpoint(false); err != nil {
			e.cfg.Logf("backfill: checkpoint failed (will retry): %v", err)
		}
	}
}

// Run executes the backfill until the shard completes or ctx is cancelled,
// then cuts a final checkpoint either way. The returned Result is valid
// even when err is non-nil.
func (e *Engine) Run(ctx context.Context) (Result, error) {
	aux, stopAux := context.WithCancel(ctx)
	var auxWG sync.WaitGroup
	auxWG.Add(1)
	go func() { defer auxWG.Done(); e.checkpointLoop(aux) }()
	if e.cfg.YieldPoll > 0 {
		auxWG.Add(1)
		go func() { defer auxWG.Done(); e.yieldLoop(aux) }()
	}

	var laneWG sync.WaitGroup
	for i := range e.nodes {
		laneWG.Add(1)
		go func(i int) { defer laneWG.Done(); e.lane(ctx, i) }(i)
	}
	laneWG.Wait()
	stopAux()
	auxWG.Wait()

	if err := e.checkpoint(true); err != nil {
		e.cfg.Logf("backfill: final checkpoint failed: %v", err)
	}

	res := e.result()
	if err := ctx.Err(); err != nil && !res.Complete {
		return res, err
	}
	return res, nil
}

func (e *Engine) result() Result {
	e.mu.Lock()
	res := Result{
		Resumed:    e.resumed,
		TotalFiles: e.totalFiles,
		TotalIn:    e.totalIn,
		TotalOut:   e.totalOut,
		Complete:   e.cursor >= e.shardLen && len(e.retry) == 0 && e.inflight == 0,
	}
	for g := range e.quarantined {
		res.Quarantined = append(res.Quarantined, g)
	}
	e.mu.Unlock()
	sort.Slice(res.Quarantined, func(i, j int) bool { return res.Quarantined[i] < res.Quarantined[j] })
	res.Files = e.filesRun.Load()
	res.Retries = e.retries.Load()
	res.Checkpoints = e.ckpts.Load()
	res.YieldShrinks = e.yieldShrinks.Load()
	res.YieldPauses = e.yieldPauses.Load()
	return res
}

// Stats snapshots engine progress and per-node pacer state in the flat
// counter style the server packages use.
func (e *Engine) Stats() map[string]int64 {
	e.mu.Lock()
	snap := map[string]int64{
		"cursor":         int64(e.cursor),
		"shard_len":      int64(e.shardLen),
		"done_ahead":     int64(len(e.done)),
		"retry_queue":    int64(len(e.retry)),
		"inflight":       int64(e.inflight),
		"total_files":    int64(e.totalFiles),
		"total_in":       int64(e.totalIn),
		"total_out":      int64(e.totalOut),
		"quarantined":    int64(len(e.quarantined)),
		"checkpoint_seq": int64(e.seq),
	}
	e.mu.Unlock()
	snap["files_run"] = int64(e.filesRun.Load())
	snap["retries"] = int64(e.retries.Load())
	snap["checkpoints"] = int64(e.ckpts.Load())
	snap["yield_shrinks"] = int64(e.yieldShrinks.Load())
	snap["yield_pauses"] = int64(e.yieldPauses.Load())
	for i := range e.pacers {
		s := e.pacers[i].Stat()
		pfx := fmt.Sprintf("node%d_", i)
		snap[pfx+"window"] = int64(s.Window)
		snap[pfx+"inflight"] = int64(s.InFlight)
		snap[pfx+"srtt_us"] = s.RTT.SRTT.Microseconds()
		snap[pfx+"rto_us"] = s.RTT.RTO.Microseconds()
		if s.Paused {
			snap[pfx+"paused"] = 1
		} else {
			snap[pfx+"paused"] = 0
		}
	}
	return snap
}

// sleepCtx naps without outliving the context.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
